// Social-network scenario (the paper's soc-LiveJournal / as-skitter
// motivation): the diameter measures how closely connected a community
// is ("degrees of separation"), and the vertices realizing it form the
// network's periphery. Small-world graphs are F-Diam's best case: the
// initial Winnow typically removes >99% of the vertices (paper Table 4).
//
//   ./social_network [vertices]

#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "core/eccentricity.hpp"
#include "core/fdiam.hpp"
#include "gen/generators.hpp"
#include "graph/stats.hpp"

int main(int argc, char** argv) {
  using namespace fdiam;

  const vid_t n = argc > 1 ? static_cast<vid_t>(std::atoll(argv[1])) : 200000;
  std::cout << "Simulating a social network with " << n << " members...\n";
  const Csr g = make_rmat(
      [](vid_t v) {
        int s = 1;
        while ((vid_t{1} << s) < v) ++s;
        return s;
      }(n),
      9.0, 0.57, 0.19, 0.19, /*seed=*/99);
  const GraphStats stats = compute_stats(g);
  std::cout << "  " << stats.vertices << " vertices, " << g.num_edges()
            << " friendships, most-connected member has "
            << stats.max_degree << " contacts\n\n";

  FDiam solver(g);
  const DiameterResult r = solver.run();

  std::cout << "Degrees of separation (diameter of the largest community): "
            << r.diameter << "\n";
  if (!r.connected) {
    std::cout << "The network is fragmented into several communities "
              << "(true diameter infinite; " << stats.num_components
              << " components, largest has " << stats.largest_component
              << " members).\n";
  }

  const double winnowed_pct =
      100.0 * static_cast<double>(r.stats.removed_by_winnow) /
      static_cast<double>(std::max<vid_t>(1, stats.vertices));
  std::cout << "\nWinnow pruned " << winnowed_pct
            << "% of all members after just 2 BFS traversals — only "
            << r.stats.evaluated
            << " members ever needed an exact eccentricity.\n";

  // The periphery: evaluated vertices whose eccentricity equals the
  // diameter (the "most remote" members of the community).
  std::cout << "Most remote members (eccentricity = diameter):";
  int shown = 0;
  for (vid_t v = 0; v < g.num_vertices() && shown < 5; ++v) {
    if (solver.state()[v] == r.diameter &&
        eccentricity(g, v) == r.diameter) {
      std::cout << ' ' << v;
      ++shown;
    }
  }
  std::cout << "\n";
  return 0;
}
