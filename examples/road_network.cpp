// Road-network scenario (the paper's USA-road-d / europe_osm motivation):
// in a communication or transport network, the diameter is the worst-case
// number of hops between any two locations. Road graphs are the hard case
// for diameter codes — huge diameter, no hubs, long degree-2 chains — and
// the case where F-Diam's Chain Processing shines.
//
//   ./road_network [grid_side]

#include <cstdlib>
#include <iostream>

#include "core/diametral_path.hpp"
#include "core/eccentricity.hpp"
#include "core/fdiam.hpp"
#include "core/two_sweep.hpp"
#include "gen/generators.hpp"
#include "graph/stats.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace fdiam;

  RoadOptions opt;
  opt.grid_width = opt.grid_height =
      argc > 1 ? static_cast<vid_t>(std::atoi(argv[1])) : 220;
  opt.keep_extra = 0.35;
  opt.max_subdivisions = 3;
  opt.dead_end_fraction = 0.03;

  std::cout << "Synthesizing a road network (" << opt.grid_width << "x"
            << opt.grid_height << " intersections)...\n";
  const Csr g = make_road_network(opt, /*seed=*/2024);
  const GraphStats stats = compute_stats(g);
  std::cout << "  " << stats.vertices << " vertices, avg degree "
            << stats.avg_degree << ", " << stats.degree1
            << " dead ends, " << stats.degree2 << " polyline vertices\n\n";

  // A cheap approximation first: the 2-sweep lower bound.
  BfsEngine engine(g);
  Timer t_sweep;
  const TwoSweepResult sweep = two_sweep(engine, g.max_degree_vertex());
  std::cout << "2-sweep lower bound:  " << sweep.lower_bound << "  ("
            << t_sweep.seconds() << " s, 2 BFS)\n";

  // The exact answer.
  Timer t_exact;
  const DiameterResult r = fdiam_diameter(g);
  std::cout << "Exact diameter:       " << r.diameter << "  ("
            << t_exact.seconds() << " s, " << r.stats.bfs_calls
            << " BFS)\n\n";

  std::cout << "Worst-case route between any two locations crosses "
            << r.diameter << " road segments.\n";
  std::cout << "Chain Processing removed " << r.stats.removed_by_chain
            << " vertices ("
            << 100.0 * static_cast<double>(r.stats.removed_by_chain) /
                   static_cast<double>(stats.vertices)
            << "% — dead-end spurs and their surroundings) without a single "
               "BFS.\n";

  // The actual worst route, materialized.
  const DiametralPath route = diametral_path_from(g, r.witness);
  std::cout << "One such worst route: " << route.path.front() << " -> ... ("
            << route.path.size() - 2 << " intermediate junctions) ... -> "
            << route.path.back() << "\n";

  // Radius estimate: eccentricity of the 4-sweep center — a good proxy for
  // the best place to put a depot/data center.
  const FourSweepResult center = four_sweep(engine, g.max_degree_vertex());
  const dist_t center_ecc = eccentricity(g, center.center);
  std::cout << "Near-central vertex " << center.center
            << " reaches everything within " << center_ecc
            << " segments (diameter/2 = " << r.diameter / 2
            << " is the theoretical floor).\n";
  return 0;
}
