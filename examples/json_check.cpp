// json_check: validate that each argument file (or stdin, with "-") is a
// single well-formed JSON document, using the library's dependency-free
// validator. Exit status 0 iff every input validates. The verify-telemetry
// and verify-audit ctests use this to check fdiam_cli's --json-report and
// --trace-out outputs without requiring python or an external JSON tool.
//
// Documents carrying a run report's "provenance" block additionally get a
// semantic pass (schema tag, closed stage-tag set, monotone contiguous
// bound timeline, non-increasing alive counts) with a named diagnostic
// like "provenance.bound_timeline.2: bound not increasing". The same
// treatment applies to the "profile" (sampling profiler) and
// "utilization" (parallel-region accounting) blocks.
//
//   ./json_check report.json trace.json
//   ./fdiam_cli --input grid --json-report - | ./json_check -

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/json.hpp"
#include "obs/prof/prof_report.hpp"
#include "obs/provenance.hpp"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: json_check <file|-> [more files...]\n";
    return 2;
  }
  int failures = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string path = argv[i];
    std::ostringstream buf;
    if (path == "-") {
      buf << std::cin.rdbuf();
    } else {
      std::ifstream in(path, std::ios::binary);
      if (!in) {
        std::cerr << path << ": cannot open\n";
        ++failures;
        continue;
      }
      buf << in.rdbuf();
    }
    const std::string text = buf.str();
    if (const auto diag = fdiam::obs::json_diagnose(text)) {
      std::cerr << path << ": INVALID JSON: " << *diag << "\n";
      ++failures;
    } else if (const auto prov =
                   fdiam::obs::diagnose_provenance_block(text)) {
      // Structurally valid, but the provenance block (when present)
      // violates its schema — nullopt means valid or absent.
      std::cerr << path << ": INVALID PROVENANCE: " << *prov << "\n";
      ++failures;
    } else if (const auto prof =
                   fdiam::obs::diagnose_profile_block(text)) {
      std::cerr << path << ": INVALID PROFILE: " << *prof << "\n";
      ++failures;
    } else if (const auto util =
                   fdiam::obs::diagnose_utilization_block(text)) {
      std::cerr << path << ": INVALID UTILIZATION: " << *util << "\n";
      ++failures;
    } else {
      std::cout << path << ": valid JSON (" << text.size() << " bytes)\n";
    }
  }
  return failures == 0 ? 0 : 1;
}
