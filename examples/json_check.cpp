// json_check: validate that each argument file (or stdin, with "-") is a
// single well-formed JSON document, using the library's dependency-free
// validator. Exit status 0 iff every input validates. The verify-telemetry,
// verify-audit, and verify-metrics ctests use this to check fdiam_cli's
// --json-report / --trace-out / --metrics-out / --log-out outputs without
// requiring python or an external JSON tool.
//
// Documents carrying a run report's "provenance" block additionally get a
// semantic pass (schema tag, closed stage-tag set, monotone contiguous
// bound timeline, non-increasing alive counts) with a named diagnostic
// like "provenance.bound_timeline.2: bound not increasing". The same
// treatment applies to the "profile" (sampling profiler), "utilization"
// (parallel-region accounting), and "histograms" (fdiam.metrics/v1)
// blocks — plus cross-block consistency: the per-stage BFS histogram
// counts must sum to stages.counts.bfs_calls, and the utilization busy
// totals must fit inside wall time x threads.
//
// Two extra modes switch the validation grammar for the remaining files:
//   --jsonl        every non-empty LINE must be a JSON document
//                  (structured-log streams from --log-out)
//   --openmetrics  OpenMetrics text exposition lint (--metrics-out files)
//
//   ./json_check report.json trace.json
//   ./json_check --jsonl run.log --openmetrics m.prom
//   ./fdiam_cli --input grid --json-report - | ./json_check -

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>

#include "obs/json.hpp"
#include "obs/metrics/metrics_report.hpp"
#include "obs/metrics/openmetrics.hpp"
#include "obs/prof/prof_report.hpp"
#include "obs/provenance.hpp"

namespace {

enum class Mode { kJson, kJsonLines, kOpenMetrics };

/// Whole-document JSON + every semantic block validator we have.
bool check_json(const std::string& path, const std::string& text) {
  if (const auto diag = fdiam::obs::json_diagnose(text)) {
    std::cerr << path << ": INVALID JSON: " << *diag << "\n";
    return false;
  }
  // Structurally valid; each block validator returns nullopt when its
  // block is valid or absent (every block is opt-in).
  if (const auto prov = fdiam::obs::diagnose_provenance_block(text)) {
    std::cerr << path << ": INVALID PROVENANCE: " << *prov << "\n";
    return false;
  }
  if (const auto prof = fdiam::obs::diagnose_profile_block(text)) {
    std::cerr << path << ": INVALID PROFILE: " << *prof << "\n";
    return false;
  }
  if (const auto util = fdiam::obs::diagnose_utilization_block(text)) {
    std::cerr << path << ": INVALID UTILIZATION: " << *util << "\n";
    return false;
  }
  if (const auto hist = fdiam::obs::diagnose_metrics_block(text)) {
    std::cerr << path << ": INVALID HISTOGRAMS: " << *hist << "\n";
    return false;
  }
  if (const auto mem = fdiam::obs::diagnose_memory_block(text)) {
    std::cerr << path << ": INVALID MEMORY: " << *mem << "\n";
    return false;
  }
  if (const auto cross = fdiam::obs::diagnose_report_consistency(text)) {
    std::cerr << path << ": INCONSISTENT REPORT: " << *cross << "\n";
    return false;
  }
  std::cout << path << ": valid JSON (" << text.size() << " bytes)\n";
  return true;
}

/// JSON-lines: every non-empty line is its own document (log streams).
bool check_jsonl(const std::string& path, const std::string& text) {
  std::size_t line_no = 0;
  std::size_t records = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string_view line(
        text.data() + pos,
        (eol == std::string::npos ? text.size() : eol) - pos);
    ++line_no;
    pos = (eol == std::string::npos) ? text.size() + 1 : eol + 1;
    if (line.empty()) continue;
    if (const auto diag = fdiam::obs::json_diagnose(std::string(line))) {
      std::cerr << path << ": INVALID JSONL: line " << line_no << ": "
                << *diag << "\n";
      return false;
    }
    ++records;
  }
  std::cout << path << ": valid JSON lines (" << records << " records)\n";
  return true;
}

bool check_openmetrics(const std::string& path, const std::string& text) {
  if (const auto diag = fdiam::obs::openmetrics_lint(text)) {
    std::cerr << path << ": INVALID OPENMETRICS: " << *diag << "\n";
    return false;
  }
  std::cout << path << ": valid OpenMetrics (" << text.size() << " bytes)\n";
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: json_check [--jsonl|--openmetrics|--json] "
                 "<file|-> [more files/modes...]\n";
    return 2;
  }
  Mode mode = Mode::kJson;
  int failures = 0;
  int checked = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") { mode = Mode::kJson; continue; }
    if (arg == "--jsonl") { mode = Mode::kJsonLines; continue; }
    if (arg == "--openmetrics") { mode = Mode::kOpenMetrics; continue; }
    std::ostringstream buf;
    if (arg == "-") {
      buf << std::cin.rdbuf();
    } else {
      std::ifstream in(arg, std::ios::binary);
      if (!in) {
        std::cerr << arg << ": cannot open\n";
        ++failures;
        ++checked;
        continue;
      }
      buf << in.rdbuf();
    }
    const std::string text = buf.str();
    bool ok = false;
    switch (mode) {
      case Mode::kJson: ok = check_json(arg, text); break;
      case Mode::kJsonLines: ok = check_jsonl(arg, text); break;
      case Mode::kOpenMetrics: ok = check_openmetrics(arg, text); break;
    }
    if (!ok) ++failures;
    ++checked;
  }
  if (checked == 0) {
    std::cerr << "json_check: no input files\n";
    return 2;
  }
  return failures == 0 ? 0 : 1;
}
