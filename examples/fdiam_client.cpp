// fdiam_client: command-line client for a running fdiam_serve daemon.
//
//   fdiam_client --socket /tmp/fdiam.sock diameter [graph]
//   fdiam_client --socket /tmp/fdiam.sock ecc <u> [graph]
//   fdiam_client --socket /tmp/fdiam.sock dist <u> <v> [graph]
//   fdiam_client --socket /tmp/fdiam.sock path [graph]
//   fdiam_client --socket /tmp/fdiam.sock stats | reload [graph] |
//                ping | shutdown
//   fdiam_client --socket /tmp/fdiam.sock --raw '{"op":"ping"}'
//
// Prints the raw response JSON on stdout. Exit codes: 0 = server said
// ok, 1 = server returned an error response, 2 = usage or transport
// failure — so shell scripts (and cmake/verify_serve.cmake) can assert
// on outcomes without parsing.

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

#include "obs/json.hpp"
#include "serve/client.hpp"
#include "util/cli.hpp"

namespace {

fdiam::vid_t parse_vertex(const std::string& s) {
  char* end = nullptr;
  unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0' || v > UINT32_MAX) {
    throw std::runtime_error("bad vertex id \"" + s + "\"");
  }
  return static_cast<fdiam::vid_t>(v);
}

}  // namespace

int main(int argc, char** argv) {
  fdiam::Cli cli;
  cli.add_option("socket", "UNIX socket path of the daemon");
  cli.add_option("raw", "send this JSON payload verbatim");
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "error: %s\n%s", cli.error().c_str(),
                 cli.usage("fdiam_client").c_str());
    return 2;
  }
  if (cli.help_requested()) {
    std::fprintf(stdout,
                 "%s\nverbs: ping | diameter [graph] | ecc <u> [graph] | "
                 "dist <u> <v> [graph] |\n       path [graph] | stats | "
                 "reload [graph] | shutdown\n",
                 cli.usage("fdiam_client").c_str());
    return 0;
  }
  const std::string socket = cli.get("socket");
  if (socket.empty()) {
    std::fprintf(stderr, "error: --socket is required\n");
    return 2;
  }

  fdiam::serve::Client client;
  if (!client.connect(socket)) {
    std::fprintf(stderr, "fdiam_client: %s\n", client.error().c_str());
    return 2;
  }

  std::string response;
  try {
    const std::string raw = cli.get("raw");
    const auto& args = cli.positional();
    if (!raw.empty()) {
      if (!client.call(raw, response)) response.clear();
    } else if (args.empty()) {
      std::fprintf(stderr, "error: no verb given (try --help)\n");
      return 2;
    } else {
      const std::string& verb = args[0];
      auto graph_arg = [&args](std::size_t i) {
        return args.size() > i ? args[i] : std::string();
      };
      if (verb == "ping") {
        response = client.ping();
      } else if (verb == "diameter") {
        response = client.diameter(graph_arg(1));
      } else if (verb == "ecc" || verb == "eccentricity") {
        if (args.size() < 2) throw std::runtime_error("ecc needs <u>");
        response = client.eccentricity(parse_vertex(args[1]), graph_arg(2));
      } else if (verb == "dist" || verb == "distance") {
        if (args.size() < 3) throw std::runtime_error("dist needs <u> <v>");
        response = client.distance(parse_vertex(args[1]),
                                   parse_vertex(args[2]), graph_arg(3));
      } else if (verb == "path") {
        response = client.diametral_path(graph_arg(1));
      } else if (verb == "stats") {
        response = client.stats();
      } else if (verb == "reload") {
        response = client.reload(graph_arg(1));
      } else if (verb == "shutdown") {
        response = client.shutdown();
      } else {
        std::fprintf(stderr, "error: unknown verb \"%s\"\n", verb.c_str());
        return 2;
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fdiam_client: %s\n", e.what());
    return 2;
  }
  if (response.empty()) {
    std::fprintf(stderr, "fdiam_client: %s\n", client.error().c_str());
    return 2;
  }
  std::fprintf(stdout, "%s\n", response.c_str());
  std::optional<std::string_view> ok = fdiam::obs::json_lookup(response, "ok");
  return ok.has_value() && *ok == "true" ? 0 : 1;
}
