// fdiam_cli: command-line diameter tool over the library's public API.
//
// Computes the exact diameter of a graph loaded from any supported file
// format (.gr DIMACS, .txt/.el/.snap edge list, .mtx MatrixMarket,
// .csrbin binary) or generated from the built-in suite, with full control
// over the F-Diam feature toggles — handy for reproducing any single cell
// of the paper's tables by hand.
//
//   ./fdiam_cli --file path/to/graph.mtx
//   ./fdiam_cli --input europe_osm --scale 0.2 --no-winnow --serial
//
// Telemetry (docs/OBSERVABILITY.md):
//   --json-report r.json   fdiam.run_report/v1 report ('-' = stdout)
//   --trace-out t.json     Chrome trace_event file for Perfetto
//   --trace-levels         add one span per BFS level to the trace
//   --progress             live progress line on stderr
//   --stats                per-stage table + BFS traversal counters
//   --provenance           per-vertex pruning provenance in the report
//   --audit-log p.bin      binary provenance log for tools/fdiam_audit
//   --heartbeat N          progress heartbeat every N seconds (+ SIGUSR1)
//   --utilization          per-parallel-region utilization accounting
//   --profile              attach the sampling profiler (implies above)
//   --profile-out f        folded-stack output path (tools/fdiam_prof)
//   --log-level L          structured JSON-lines logging threshold
//   --log-out f            structured-log destination (default stderr)
//   --metrics-out f        OpenMetrics text exposition of the registry
//   --heartbeat-format F   heartbeat rendering: text | json
//   --flight-recorder      crash flight recorder + fatal-signal dumps
//   --crash-dump f         crash-dump file (implies --flight-recorder)
//
// Progress and heartbeat lines go to stderr and are suppressed when
// stderr is not a TTY (piped runs stay machine-clean); --force-progress
// overrides the suppression. SIGUSR1 snapshots always print.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>

#include "core/fdiam.hpp"
#include "gen/suite.hpp"
#include "graph/reorder.hpp"
#include "graph/stats.hpp"
#include "graph/stream_builder.hpp"
#include "io/io.hpp"
#include "obs/counters.hpp"
#include "obs/log/flight.hpp"
#include "obs/log/log.hpp"
#include "obs/log/log_sink.hpp"
#include "obs/metrics/metrics_report.hpp"
#include "obs/metrics/openmetrics.hpp"
#include "obs/prof/sampler.hpp"
#include "obs/provenance.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "util/cli.hpp"
#include "util/memory.hpp"
#include "util/table.hpp"

namespace {

using namespace fdiam;

/// Renders the FDiamEvent stream as a live stderr line: milestones get
/// their own lines, the per-eccentricity firehose overwrites one line.
FDiamTrace make_progress_printer() {
  auto ecc_seen = std::make_shared<std::uint64_t>(0);
  return [ecc_seen](const FDiamEvent& e) {
    using Kind = FDiamEvent::Kind;
    switch (e.kind) {
      case Kind::kStart:
        std::fprintf(stderr, "[fdiam] start: %d vertices, u=%u\n",
                     e.value, e.vertex);
        break;
      case Kind::kInitialBound:
        std::fprintf(stderr, "[fdiam] initial bound %d (2-sweep, %.3f s)\n",
                     e.value, e.seconds);
        break;
      case Kind::kWinnow:
        std::fprintf(stderr,
                     "[fdiam] winnow radius %d around v=%u (%.3f s)\n",
                     e.value, e.vertex, e.seconds);
        break;
      case Kind::kChainsProcessed:
        std::fprintf(stderr,
                     "[fdiam] chains: %d vertices removed around %d "
                     "anchor(s) (%.3f s)\n",
                     e.value, e.extra, e.seconds);
        break;
      case Kind::kEccentricity:
        ++*ecc_seen;
        std::fprintf(stderr, "\r[fdiam] ecc #%llu: v=%u ecc=%d (%.3f s)   ",
                     static_cast<unsigned long long>(*ecc_seen), e.vertex,
                     e.value, e.seconds);
        break;
      case Kind::kBoundRaised:
        std::fprintf(stderr, "\n[fdiam] bound raised %d -> %d by v=%u\n",
                     e.extra, e.value, e.vertex);
        break;
      case Kind::kEliminate:
      case Kind::kExtendRegions:
        break;  // too chatty for a progress line; the trace has them
      case Kind::kDone:
        std::fprintf(stderr, "\r[fdiam] done: diameter %d in %.3f s%12s\n",
                     e.value, e.seconds, "");
        break;
    }
  };
}

int run_cli(int argc, char** argv) {
  Cli cli;
  cli.add_option("file", "graph file (.gr/.txt/.el/.snap/.mtx/.csrbin)");
  cli.add_option("input", "built-in suite input name (see --list)");
  cli.add_option("scale", "suite size multiplier", "0.1");
  cli.add_option("seed", "generator seed", "1");
  cli.add_option("budget", "time budget in seconds (0 = unlimited)", "0");
  cli.add_option("reorder",
                 "cache-aware vertex relabeling before the run: "
                 "none|degree|bfs|random (results are id-translated back)",
                 "none");
  cli.add_option("save", "write the loaded/generated graph to this file");
  cli.add_flag("mmap",
               "zero-copy load: mmap the .csrbin input instead of reading "
               "it into anonymous memory (out-of-core tier)");
  cli.add_option("stream-build",
                 "build a v2 .csrbin at this path from the edge-list "
                 "--file via the bounded-RAM external-memory builder, "
                 "then solve the built file");
  cli.add_option("mem-budget",
                 "streaming-builder memory budget in MiB", "256");
  cli.add_option("numa",
                 "NUMA placement for the big arrays: none|interleave|local",
                 "none");
  cli.add_option("huge-pages",
                 "transparent-huge-page advice for the big arrays: "
                 "auto|on|off",
                 "auto");
  cli.add_option("json-report",
                 "write a fdiam.run_report/v1 JSON report ('-' = stdout)");
  cli.add_option("trace-out",
                 "write a Chrome trace_event JSON file (open in Perfetto)");
  cli.add_flag("trace-levels",
               "include one span per BFS level in the trace (high volume)");
  cli.add_flag("progress", "print live progress to stderr");
  cli.add_flag("provenance",
               "record per-vertex pruning provenance and embed the "
               "stage histogram + bound timeline in --json-report");
  cli.add_option("audit-log",
                 "write a binary provenance log for tools/fdiam_audit "
                 "(implies --provenance)");
  cli.add_option("heartbeat",
                 "print a progress heartbeat to stderr every N seconds "
                 "(0 = off; SIGUSR1 always dumps a snapshot)",
                 "0");
  cli.add_option("heartbeat-format",
                 "heartbeat rendering: text (classic stderr line) or json "
                 "(one structured record through the logger)",
                 "text");
  cli.add_option("log-level",
                 "structured JSON-lines log threshold: "
                 "trace|debug|info|warn|error|off (default: FDIAM_LOG "
                 "env, else off)");
  cli.add_option("log-out",
                 "structured-log destination file (default: FDIAM_LOG_OUT "
                 "env, else stderr)");
  cli.add_option("metrics-out",
                 "write an OpenMetrics text exposition of the run's "
                 "counters, gauges, and latency histograms");
  cli.add_flag("flight-recorder",
               "keep a crash flight recorder of recent telemetry events "
               "and dump it from fatal-signal handlers");
  cli.add_option("crash-dump",
                 "also write fatal-signal flight-recorder dumps to this "
                 "file (implies --flight-recorder)");
  cli.add_flag("utilization",
               "collect per-parallel-region utilization telemetry "
               "(busy/idle/imbalance tables; embedded in --json-report)");
  cli.add_flag("profile",
               "attach the in-process sampling profiler for the run "
               "(implies --utilization)");
  cli.add_option("profile-rate", "profiler sampling rate in Hz", "197");
  cli.add_option("profile-out",
                 "folded-stack output path (render with tools/fdiam_prof)",
                 "fdiam.folded");
  cli.add_flag("force-progress",
               "emit --progress/--heartbeat output even when stderr "
               "is not a TTY");
  cli.add_flag("list", "list the built-in suite inputs and exit");
  cli.add_flag("serial", "disable the parallel BFS");
  cli.add_flag("no-winnow", "disable Winnow (ablation)");
  cli.add_flag("no-eliminate", "disable Eliminate (ablation)");
  cli.add_flag("no-chain", "disable Chain Processing (ablation)");
  cli.add_flag("no-u", "start from vertex 0 instead of max-degree (ablation)");
  cli.add_flag("center-start",
               "anchor Winnow at a 4-sweep center (extension ablation)");
  cli.add_flag("stats", "print per-stage statistics and BFS counters");
  cli.add_flag("hw-counters",
               "collect hardware perf counters + memory watermarks "
               "(implied by --stats/--json-report)");

  if (!cli.parse(argc, argv)) {
    std::cerr << cli.error() << "\n" << cli.usage("fdiam_cli");
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.usage("fdiam_cli");
    return 0;
  }
  if (cli.get_bool("list")) {
    for (const SuiteEntry& e : input_suite()) {
      std::cout << e.name << "  (" << e.type << "; " << e.analogue << ")\n";
    }
    return 0;
  }

  // Structured logging: flags override the FDIAM_LOG / FDIAM_LOG_OUT
  // environment (which already configured instance() on first use).
  obs::Logger& logger = obs::Logger::instance();
  if (cli.has("log-level")) {
    const auto lvl = obs::log_level_from_name(cli.get("log-level"));
    if (!lvl) {
      std::cerr << "unknown --log-level '" << cli.get("log-level")
                << "' (expected trace|debug|info|warn|error|off)\n";
      return 1;
    }
    logger.set_level(*lvl);
  }
  if (cli.has("log-out") && !logger.open_output(cli.get("log-out"))) {
    std::cerr << "fdiam_cli: cannot open --log-out " << cli.get("log-out")
              << "\n";
    return 1;
  }
  const std::string hb_format = cli.get("heartbeat-format", "text");
  if (hb_format != "text" && hb_format != "json") {
    std::cerr << "unknown --heartbeat-format '" << hb_format
              << "' (expected text|json)\n";
    return 1;
  }

  // Crash flight recorder: ring + fatal-signal dump handlers. The ring
  // is fed by the logger mirror, the heartbeat, and the trace sink below;
  // on SIGSEGV/SIGBUS/SIGABRT the handlers dump it with the current
  // stage and diameter bounds, then re-raise.
  const bool want_flight =
      cli.get_bool("flight-recorder") || cli.has("crash-dump");
  obs::FlightRecorder flight;
  if (want_flight) {
    obs::FlightRecorder::install(&flight);
    const std::string dump_path =
        cli.has("crash-dump") ? cli.get("crash-dump") : std::string();
    if (!obs::FlightRecorder::install_crash_handlers(dump_path)) {
      std::cerr << "fdiam_cli: cannot open --crash-dump " << dump_path
                << " (crash dumps will go to stderr only)\n";
    }
  }

  // Memory placement must be installed before the graph is built or
  // mapped — the policy is applied as the big arrays are sized.
  util::MemoryPolicy mem_policy;
  if (!util::parse_numa_mode(cli.get("numa", "none"), mem_policy.numa)) {
    std::cerr << "unknown --numa mode '" << cli.get("numa")
              << "' (expected none|interleave|local)\n";
    return 1;
  }
  if (!util::parse_huge_page_mode(cli.get("huge-pages", "auto"),
                                  mem_policy.huge_pages)) {
    std::cerr << "unknown --huge-pages mode '" << cli.get("huge-pages")
              << "' (expected auto|on|off)\n";
    return 1;
  }
  util::set_memory_policy(mem_policy);

  const auto reorder_mode = parse_reorder_mode(cli.get("reorder", "none"));
  if (!reorder_mode) {
    std::cerr << "unknown --reorder mode '" << cli.get("reorder")
              << "' (expected none|degree|bfs|random)\n";
    return 1;
  }

  const bool want_trace = cli.has("trace-out");
  const bool want_report = cli.has("json-report");
  // With the report on stdout, keep stdout pure JSON (pipeable into jq)
  // and move the human-readable output to stderr.
  const bool report_to_stdout = want_report && cli.get("json-report") == "-";
  std::ostream& human = report_to_stdout ? std::cerr : std::cout;
  obs::TraceSession session;

  const bool want_mmap = cli.get_bool("mmap");
  Csr g;
  std::string graph_name;
  if (cli.has("stream-build")) {
    // Out-of-core path: edge-list text -> external-memory build straight
    // to a v2 .csrbin on disk -> (optionally zero-copy) load of that file.
    if (!cli.has("file")) {
      std::cerr << "--stream-build needs an edge-list --file input\n";
      return 1;
    }
    const std::filesystem::path built = cli.get("stream-build");
    StreamBuildOptions sopt;
    sopt.mem_budget_bytes =
        static_cast<std::uint64_t>(
            std::max<std::int64_t>(1, cli.get_int("mem-budget", 256))) << 20;
    StreamBuildStats sb;
    {
      const auto build_span = session.span("stream_build");
      Timer build_timer;
      sb = stream_build_snap(cli.get("file"), built, sopt);
      human << "stream-build: " << Table::fmt_count(sb.edges_unique)
            << " unique edges over " << Table::fmt_count(sb.num_vertices)
            << " vertices, " << sb.chunks_spilled << " spilled run(s), "
            << Table::fmt_count(sb.spill_bytes) << " spill bytes -> "
            << built << " (" << Table::fmt_count(sb.output_bytes)
            << " bytes) in " << Table::fmt_double(build_timer.seconds(), 3)
            << " s\n";
    }
    const auto load_span = session.span("load_graph");
    graph_name = built.string();
    // The builder's own output needs no O(m) re-verification.
    g = want_mmap ? io::map_binary(built, {}, /*verify_neighbors=*/false)
                  : io::read_binary(built);
  } else if (cli.has("file")) {
    const auto load_span = session.span("load_graph");
    graph_name = cli.get("file");
    if (want_mmap) {
      if (std::filesystem::path(graph_name).extension() != ".csrbin") {
        std::cerr << "--mmap needs a .csrbin input (got " << graph_name
                  << "); convert with --save first\n";
        return 1;
      }
      g = io::map_binary(graph_name);
    } else {
      g = io::load_graph(graph_name);
    }
  } else if (cli.has("input")) {
    const auto gen_span = session.span("generate_graph");
    graph_name = cli.get("input");
    g = build_suite_input(graph_name, cli.get_double("scale", 0.1),
                          static_cast<std::uint64_t>(cli.get_int("seed", 1)));
  } else {
    std::cerr << "need --file or --input\n" << cli.usage("fdiam_cli");
    return 1;
  }
  if (cli.has("save")) {
    const std::filesystem::path out = cli.get("save");
    const std::string ext = out.extension().string();
    if (ext == ".gr") io::write_dimacs(g, out);
    else if (ext == ".mtx") io::write_matrix_market(g, out);
    else if (ext == ".csrbin") io::write_binary(g, out);
    else io::write_snap(g, out);
    human << "saved graph to " << out << "\n";
  }

  // Cache-aware relabeling (paper §6.2): solve on the permuted CSR and
  // translate the diametral witness back afterwards, so every reported
  // quantity stays in the caller's id space.
  Permutation reorder_inverse;
  if (*reorder_mode != ReorderMode::kNone) {
    const auto reorder_span = session.span("reorder_graph");
    Timer reorder_timer;
    const Permutation new_id = make_order(
        g, *reorder_mode, static_cast<std::uint64_t>(cli.get_int("seed", 1)));
    reorder_inverse = inverse_permutation(new_id);
    g = apply_permutation(g, new_id);
    human << "reorder: applied " << reorder_mode_name(*reorder_mode)
          << " order in " << Table::fmt_double(reorder_timer.seconds(), 3)
          << " s\n";
  }

  const GraphStats s = compute_stats(g);
  human << "graph: " << Table::fmt_count(s.vertices) << " vertices, "
        << Table::fmt_count(s.arcs) << " arcs, avg degree "
        << Table::fmt_double(s.avg_degree, 1) << ", max degree "
        << Table::fmt_count(s.max_degree) << ", " << s.num_components
        << " component(s)\n";

  FDiamOptions opt;
  opt.parallel = !cli.get_bool("serial");
  opt.use_winnow = !cli.get_bool("no-winnow");
  opt.use_eliminate = !cli.get_bool("no-eliminate");
  opt.use_chain = !cli.get_bool("no-chain");
  opt.start_policy = cli.get_bool("no-u") ? StartPolicy::kVertexZero
                                           : StartPolicy::kMaxDegree;
  if (cli.get_bool("center-start")) opt.start_policy = StartPolicy::kFourSweepCenter;
  opt.time_budget_seconds = cli.get_double("budget", 0.0);
  // Counters are opt-in at the library level; any observability consumer
  // here wants them (they degrade to "unavailable", never fail a run).
  opt.hw_counters =
      cli.get_bool("hw-counters") || cli.get_bool("stats") || want_report;

  // Utilization accounting (opt-in, solver-lifetime): the collector is
  // installed by FDiam::run() and its snapshot lands in r.stats.util.
  // --profile implies it so the flame graph and the busy/idle numbers
  // always describe the same run.
  const bool want_profile = cli.get_bool("profile");
  const bool want_util = cli.get_bool("utilization") || want_profile;
  UtilCollector util;
  if (want_util) opt.utilization = &util;

  // Pruning provenance (opt-in): collected whenever the report should
  // embed it or a binary audit log was requested.
  const bool want_prov =
      cli.get_bool("provenance") || cli.has("audit-log");
  obs::ProvenanceCollector collector;
  if (want_prov) opt.provenance = &collector;

  // Live heartbeat: periodic beats only when asked for (and TTY-gated
  // inside ProgressHeartbeat); the SIGUSR1 snapshot path is always armed
  // so a stuck run can be poked regardless of flags.
  const bool force_progress = cli.get_bool("force-progress");
  obs::ProgressHeartbeat heartbeat(cli.get_double("heartbeat", 0.0),
                                   force_progress);
  if (hb_format == "json") {
    heartbeat.set_format(obs::HeartbeatFormat::kJson);
    // A JSON beat is a logger record; an off logger would swallow it.
    if (logger.level() == obs::LogLevel::kOff) {
      logger.set_level(obs::LogLevel::kInfo);
    }
  }
  obs::ProgressHeartbeat::install_signal_handler();
  opt.heartbeat = &heartbeat;

  // Fan the solver's event stream out to every requested consumer. The
  // live progress line is interactive-only unless forced: a piped stderr
  // (CI logs, CSV benches) must not fill up with \r-animation frames.
  std::vector<FDiamTrace> sinks;
  if (cli.get_bool("progress") && (force_progress || obs::stderr_is_tty())) {
    sinks.push_back(make_progress_printer());
  }
  if (want_trace) sinks.push_back(session.fdiam_sink());
  // Structured-log + flight-recorder bridge: milestones as info records,
  // per-vertex events as debug. Installed whenever either consumer is
  // live — the sink feeds the crash ring even when the logger is off.
  if (logger.level() != obs::LogLevel::kOff || want_flight) {
    sinks.push_back(obs::make_log_trace_sink());
  }
  // Utilization counter track: at every stage-closing event, snapshot the
  // collector and record cumulative busy-ratio/idle-fraction counters so
  // Perfetto shows parallel efficiency evolving alongside the stage spans.
  if (want_trace && want_util) {
    UtilCollector* u = &util;
    obs::TraceSession* tsp = &session;
    sinks.push_back([u, tsp](const FDiamEvent& e) {
      using Kind = FDiamEvent::Kind;
      switch (e.kind) {
        case Kind::kInitialBound:
        case Kind::kWinnow:
        case Kind::kChainsProcessed:
        case Kind::kEliminate:
        case Kind::kExtendRegions:
        case Kind::kDone: {
          const UtilStats snap = u->snapshot();
          tsp->counter("util.busy_ratio", snap.total.busy_ratio());
          tsp->counter("util.idle_fraction", snap.total.idle_fraction());
          tsp->counter("util.imbalance", snap.total.imbalance());
          break;
        }
        default:
          break;  // per-eccentricity firehose: too hot to snapshot
      }
    });
  }
  if (!sinks.empty()) {
    opt.trace = [sinks](const FDiamEvent& e) {
      for (const FDiamTrace& sink : sinks) sink(e);
    };
  }

  // Per-level profiling: the trace gets the full span firehose when asked
  // for; otherwise a report run folds the direction decisions into the
  // metric registry so they land in the report's "metrics" block.
  obs::MetricRegistry& registry = obs::metrics();

  // Latency/size histograms (fdiam.metrics/v1): recorded whenever a
  // consumer exists — the OpenMetrics exposition or the JSON report's
  // "histograms" block.
  const bool want_metrics = cli.has("metrics-out");
  std::optional<obs::SolveHistograms> solve_hist;
  if (want_report || want_metrics) {
    solve_hist.emplace(registry);
    opt.histograms = &*solve_hist;
  }

  if (want_trace && cli.get_bool("trace-levels")) {
    opt.level_profile = session.bfs_level_sink();
  } else if (want_report) {
    obs::Counter& topdown = registry.counter("bfs.levels.topdown");
    obs::Counter& bottomup = registry.counter("bfs.levels.bottomup");
    obs::Counter& edges = registry.counter("bfs.level_edges");
    obs::Gauge& widest = registry.gauge("bfs.widest_frontier");
    opt.level_profile = [&](const BfsLevelProfile& p) {
      (p.bottom_up ? bottomup : topdown).inc();
      edges.inc(static_cast<std::int64_t>(p.edges));
      if (static_cast<double>(p.frontier) > widest.get()) {
        widest.set(static_cast<double>(p.frontier));
      }
    };
  }

  // The sampler brackets exactly the solver run so overhead and sample
  // counts are attributable to it. A failed start degrades to an
  // unprofiled run — the summary records the reason, never aborts.
  prof::Sampler& sampler = prof::Sampler::instance();
  prof::ProfileSummary profile_summary;
  if (want_profile) {
    prof::SamplerOptions popt;
    popt.rate_hz = cli.get_double("profile-rate", 197.0);
    if (!sampler.start(popt)) {
      std::cerr << "fdiam_cli: profiler unavailable: " << sampler.reason()
                << "\n";
    }
  }

  DiameterResult r = fdiam_diameter(g, opt);

  if (want_profile) {
    sampler.stop();
    profile_summary = sampler.summary();
  }
  if (!reorder_inverse.empty()) {
    r.witness = reorder_inverse[r.witness];  // back to the input's ids
    // Provenance was collected in permuted-id space; translate it the
    // same way so audit logs always match the input graph's ids.
    if (want_prov) collector.translate(reorder_inverse);
  }

  if (!r.connected) {
    human << "graph is DISCONNECTED: true diameter is infinite\n";
    human << "largest eccentricity in any connected component: ";
  } else {
    human << "diameter: ";
  }
  human << r.diameter << (r.timed_out ? " (LOWER BOUND - timed out)" : "")
        << "\n";
  human << "time: " << Table::fmt_double(r.stats.time_total, 3)
        << " s, BFS traversals: " << r.stats.bfs_calls << "\n";

  if (cli.get_bool("stats")) {
    const FDiamStats& st = r.stats;
    const double n = std::max<double>(1.0, s.vertices);
    Table t({"stage", "vertices removed", "% of graph", "time (s)"});
    t.add_row({"winnow", Table::fmt_count(st.removed_by_winnow),
               Table::fmt_percent(st.removed_by_winnow / n),
               Table::fmt_double(st.time_winnow, 4)});
    t.add_row({"eliminate", Table::fmt_count(st.removed_by_eliminate),
               Table::fmt_percent(st.removed_by_eliminate / n),
               Table::fmt_double(st.time_eliminate, 4)});
    t.add_row({"chain", Table::fmt_count(st.removed_by_chain),
               Table::fmt_percent(st.removed_by_chain / n),
               Table::fmt_double(st.time_chain, 4)});
    t.add_row({"degree-0", Table::fmt_count(st.degree0_vertices),
               Table::fmt_percent(st.degree0_vertices / n), "-"});
    t.add_row({"evaluated (BFS)", Table::fmt_count(st.evaluated),
               Table::fmt_percent(st.evaluated / n),
               Table::fmt_double(st.time_ecc, 4)});
    t.print(human);

    // Traversal-level counters (Table 3's numbers, straight from the CLI).
    const BfsStats& bfs = r.bfs;
    Table b({"BFS counter", "value"});
    b.add_row({"traversals", Table::fmt_count(bfs.traversals)});
    b.add_row({"levels", Table::fmt_count(bfs.levels)});
    b.add_row({"top-down levels", Table::fmt_count(bfs.topdown_levels)});
    b.add_row({"bottom-up levels", Table::fmt_count(bfs.bottomup_levels)});
    b.add_row({"edges examined", Table::fmt_count(bfs.edges_examined)});
    b.add_row({"vertices visited", Table::fmt_count(bfs.vertices_visited)});
    b.print(human);

    // Hardware efficiency: what the traversal cost the machine, not just
    // the clock. Every row degrades to "-" when its counter was refused.
    const obs::HwCounters& hw = r.hardware;
    if (hw.any()) {
      const double edges = std::max<double>(1.0, bfs.edges_examined);
      const auto fmt_opt = [](const std::optional<double>& v, int digits) {
        return v ? Table::fmt_double(*v, digits) : std::string("-");
      };
      Table h({"hardware metric", "value"});
      for (std::size_t i = 0; i < obs::kHwEventCount; ++i) {
        const auto ev = static_cast<obs::HwEvent>(i);
        h.add_row({std::string(obs::hw_event_name(ev)),
                   hw.has(ev) ? Table::fmt_count(hw.get(ev))
                              : std::string("-")});
      }
      h.add_row({"ipc", fmt_opt(hw.ipc(), 3)});
      h.add_row({"cache miss rate", fmt_opt(hw.cache_miss_rate(), 4)});
      h.add_row({"cycles / edge", fmt_opt(hw.per(obs::HwEvent::kCycles, edges), 2)});
      h.add_row({"instructions / edge",
                 fmt_opt(hw.per(obs::HwEvent::kInstructions, edges), 2)});
      h.add_row({"cache misses / edge",
                 fmt_opt(hw.per(obs::HwEvent::kCacheMisses, edges), 4)});
      if (r.hw_multiplex_scale > 1.0) {
        h.add_row({"multiplex scale",
                   Table::fmt_double(r.hw_multiplex_scale, 3)});
      }
      h.print(human);
      if (!r.hw_unavailable_reason.empty()) {
        human << "note: some counters unavailable ("
              << r.hw_unavailable_reason << ")\n";
      }
    } else {
      human << "hardware counters unavailable"
            << (r.hw_unavailable_reason.empty()
                    ? std::string()
                    : " (" + r.hw_unavailable_reason + ")")
            << "\n";
    }
    if (r.memory.available) {
      const double n_bytes = std::max<double>(1.0, s.vertices);
      Table m({"memory metric", "value"});
      m.add_row({"peak RSS (bytes)", Table::fmt_count(r.memory.peak_rss_bytes)});
      m.add_row({"RSS delta (bytes)",
                 Table::fmt_count(r.memory.rss_delta_bytes())});
      m.add_row({"peak RSS bytes / vertex",
                 Table::fmt_double(
                     static_cast<double>(r.memory.peak_rss_bytes) / n_bytes,
                     1)});
      m.print(human);
    }
  }

  // Utilization tables: what fraction of the thread-seconds capacity each
  // stage actually used, and where the barrier time went. Printed for
  // --utilization or --stats runs that collected the data.
  if (r.stats.util.enabled &&
      (cli.get_bool("utilization") || cli.get_bool("stats"))) {
    const UtilStats& u = r.stats.util;
    const auto agg_row = [](std::string name, const UtilAgg& a) {
      return std::vector<std::string>{
          std::move(name), Table::fmt_count(a.regions),
          Table::fmt_count(a.items), Table::fmt_percent(a.busy_ratio()),
          Table::fmt_percent(a.idle_fraction()),
          Table::fmt_double(a.imbalance(), 2),
          Table::fmt_double(a.barrier_wait_s(), 4)};
    };
    Table ut({"stage", "regions", "items", "busy", "idle", "imbalance",
              "barrier wait (s)"});
    for (std::size_t i = 0; i < kUtilStageCount; ++i) {
      if (u.stages[i].regions == 0) continue;
      ut.add_row(agg_row(
          std::string(util_stage_name(static_cast<UtilStage>(i))),
          u.stages[i]));
    }
    ut.add_row(agg_row("total", u.total));
    human << "parallel utilization (" << u.threads << " thread(s)):\n";
    ut.print(human);

    Table rt({"region kind", "regions", "items", "busy", "idle",
              "imbalance", "barrier wait (s)"});
    for (std::size_t i = 0; i < kRegionKindCount; ++i) {
      if (u.kinds[i].regions == 0) continue;
      rt.add_row(agg_row(
          std::string(region_kind_name(static_cast<RegionKind>(i))),
          u.kinds[i]));
    }
    rt.print(human);

    Table tt({"thread", "regions", "items", "busy (s)"});
    for (std::size_t t = 0; t < u.per_thread.size(); ++t) {
      tt.add_row({std::to_string(t),
                  Table::fmt_count(u.per_thread[t].regions),
                  Table::fmt_count(u.per_thread[t].items),
                  Table::fmt_double(u.per_thread[t].busy_s, 4)});
    }
    tt.print(human);
  }

  if (want_profile) {
    if (profile_summary.available) {
      human << "profile: " << profile_summary.samples << " samples at "
            << Table::fmt_double(profile_summary.rate_hz, 0) << " Hz over "
            << profile_summary.threads << " thread(s) ("
            << profile_summary.dropped << " dropped)\n";
      if (cli.get_bool("stats") && !profile_summary.top.empty()) {
        Table pt({"frame (top self samples)", "self", "total"});
        for (const auto& f : profile_summary.top) {
          pt.add_row({f.name, Table::fmt_count(f.self),
                      Table::fmt_count(f.total)});
        }
        pt.print(human);
      }
      const std::string ppath = cli.get("profile-out", "fdiam.folded");
      std::ofstream pout(ppath, std::ios::trunc);
      if (!pout) {
        std::cerr << "cannot write folded profile to " << ppath << "\n";
        return 1;
      }
      sampler.folded().write(pout);
      pout.flush();
      if (!pout.good()) {
        std::cerr << "cannot write folded profile to " << ppath << "\n";
        return 1;
      }
      human << "wrote folded profile to " << ppath
            << " (render with tools/fdiam_prof --svg out.svg " << ppath
            << ")\n";
    } else {
      human << "profile: unavailable ("
            << profile_summary.unavailable_reason << ")\n";
    }
  }

  if (cli.has("audit-log")) {
    const std::string path = cli.get("audit-log");
    collector.log().write_file(path);
    human << "wrote provenance log to " << path
          << " (verify with tools/fdiam_audit)\n";
  }

  // Output-artifact write discipline: every file write is flushed and
  // checked, so an ENOSPC/EIO that only surfaces at flush time (or a
  // path that never opened) fails the run with an error log record
  // instead of leaving a silently truncated artifact behind.
  const auto write_error = [](std::string_view what, const std::string& path,
                              std::string_view detail) {
    obs::Logger::instance().log(
        obs::LogLevel::kError, "cli", "output write failed",
        {{"artifact", what}, {"path", path}, {"detail", detail}});
    std::cerr << "fdiam_cli: cannot write " << what << " to " << path << " ("
              << detail << ")\n";
    return 1;
  };
  const auto finish_write = [](std::ofstream& out) {
    out.flush();
    return out.good();
  };

  if (want_report) {
    obs::RunReport report = obs::make_run_report(graph_name, s, opt, r);
    report.metrics = registry.snapshot();
    report.histograms = registry.snapshot_histograms();
    if (want_prov) report.provenance = &collector.log();
    if (want_profile) report.profile = &profile_summary;
    const std::string path = cli.get("json-report");
    if (path == "-") {
      report.write_json(std::cout);
    } else {
      std::ofstream out(path, std::ios::trunc);
      if (!out) return write_error("JSON report", path, "open failed");
      report.write_json(out);
      if (!finish_write(out)) {
        return write_error("JSON report", path, "write failed");
      }
      human << "wrote run report to " << path << "\n";
    }
  }
  if (want_metrics) {
    const std::string path = cli.get("metrics-out");
    std::ofstream out(path, std::ios::trunc);
    if (!out) return write_error("OpenMetrics exposition", path, "open failed");
    obs::write_openmetrics(out, registry);
    if (!finish_write(out)) {
      return write_error("OpenMetrics exposition", path, "write failed");
    }
    human << "wrote OpenMetrics exposition to " << path << "\n";
  }
  if (want_trace) {
    const std::string path = cli.get("trace-out");
    std::ofstream out(path, std::ios::trunc);
    if (!out) return write_error("trace", path, "open failed");
    session.write(out);
    if (!finish_write(out)) return write_error("trace", path, "write failed");
    human << "wrote " << session.size() << " trace events to " << path
          << " (open in https://ui.perfetto.dev)\n";
  }
  // The structured log is an output artifact too: a failed write to
  // --log-out must not exit 0.
  logger.flush();
  if (!logger.ok()) {
    std::cerr << "fdiam_cli: error writing structured log\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Malformed graph files and bad flag values throw std::runtime_error
  // with a descriptive message; surface it as a clean CLI error instead of
  // an uncaught-exception abort.
  try {
    return run_cli(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "fdiam_cli: error: " << e.what() << "\n";
    return 1;
  }
}
