// fdiam_cli: command-line diameter tool over the library's public API.
//
// Computes the exact diameter of a graph loaded from any supported file
// format (.gr DIMACS, .txt/.el/.snap edge list, .mtx MatrixMarket,
// .csrbin binary) or generated from the built-in suite, with full control
// over the F-Diam feature toggles — handy for reproducing any single cell
// of the paper's tables by hand.
//
//   ./fdiam_cli --file path/to/graph.mtx
//   ./fdiam_cli --input europe_osm --scale 0.2 --no-winnow --serial

#include <iostream>

#include "core/fdiam.hpp"
#include "gen/suite.hpp"
#include "graph/stats.hpp"
#include "io/io.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace fdiam;

  Cli cli;
  cli.add_option("file", "graph file (.gr/.txt/.el/.snap/.mtx/.csrbin)");
  cli.add_option("input", "built-in suite input name (see --list)");
  cli.add_option("scale", "suite size multiplier", "0.1");
  cli.add_option("seed", "generator seed", "1");
  cli.add_option("budget", "time budget in seconds (0 = unlimited)", "0");
  cli.add_option("save", "write the loaded/generated graph to this file");
  cli.add_flag("list", "list the built-in suite inputs and exit");
  cli.add_flag("serial", "disable the parallel BFS");
  cli.add_flag("no-winnow", "disable Winnow (ablation)");
  cli.add_flag("no-eliminate", "disable Eliminate (ablation)");
  cli.add_flag("no-chain", "disable Chain Processing (ablation)");
  cli.add_flag("no-u", "start from vertex 0 instead of max-degree (ablation)");
  cli.add_flag("center-start",
               "anchor Winnow at a 4-sweep center (extension ablation)");
  cli.add_flag("stats", "print per-stage statistics");

  if (!cli.parse(argc, argv)) {
    std::cerr << cli.error() << "\n" << cli.usage("fdiam_cli");
    return 1;
  }
  if (cli.help_requested()) {
    std::cout << cli.usage("fdiam_cli");
    return 0;
  }
  if (cli.get_bool("list")) {
    for (const SuiteEntry& e : input_suite()) {
      std::cout << e.name << "  (" << e.type << "; " << e.analogue << ")\n";
    }
    return 0;
  }

  Csr g;
  if (cli.has("file")) {
    g = io::load_graph(cli.get("file"));
  } else if (cli.has("input")) {
    g = build_suite_input(cli.get("input"), cli.get_double("scale", 0.1),
                          static_cast<std::uint64_t>(cli.get_int("seed", 1)));
  } else {
    std::cerr << "need --file or --input\n" << cli.usage("fdiam_cli");
    return 1;
  }
  if (cli.has("save")) {
    const std::filesystem::path out = cli.get("save");
    const std::string ext = out.extension().string();
    if (ext == ".gr") io::write_dimacs(g, out);
    else if (ext == ".mtx") io::write_matrix_market(g, out);
    else if (ext == ".csrbin") io::write_binary(g, out);
    else io::write_snap(g, out);
    std::cout << "saved graph to " << out << "\n";
  }

  const GraphStats s = compute_stats(g);
  std::cout << "graph: " << Table::fmt_count(s.vertices) << " vertices, "
            << Table::fmt_count(s.arcs) << " arcs, avg degree "
            << Table::fmt_double(s.avg_degree, 1) << ", max degree "
            << Table::fmt_count(s.max_degree) << ", " << s.num_components
            << " component(s)\n";

  FDiamOptions opt;
  opt.parallel = !cli.get_bool("serial");
  opt.use_winnow = !cli.get_bool("no-winnow");
  opt.use_eliminate = !cli.get_bool("no-eliminate");
  opt.use_chain = !cli.get_bool("no-chain");
  opt.start_policy = cli.get_bool("no-u") ? StartPolicy::kVertexZero
                                           : StartPolicy::kMaxDegree;
  if (cli.get_bool("center-start")) opt.start_policy = StartPolicy::kFourSweepCenter;
  opt.time_budget_seconds = cli.get_double("budget", 0.0);

  const DiameterResult r = fdiam_diameter(g, opt);

  if (!r.connected) {
    std::cout << "graph is DISCONNECTED: true diameter is infinite\n";
    std::cout << "largest eccentricity in any connected component: ";
  } else {
    std::cout << "diameter: ";
  }
  std::cout << r.diameter << (r.timed_out ? " (LOWER BOUND - timed out)" : "")
            << "\n";
  std::cout << "time: " << Table::fmt_double(r.stats.time_total, 3)
            << " s, BFS traversals: " << r.stats.bfs_calls << "\n";

  if (cli.get_bool("stats")) {
    const FDiamStats& st = r.stats;
    const double n = std::max<double>(1.0, s.vertices);
    Table t({"stage", "vertices removed", "% of graph", "time (s)"});
    t.add_row({"winnow", Table::fmt_count(st.removed_by_winnow),
               Table::fmt_percent(st.removed_by_winnow / n),
               Table::fmt_double(st.time_winnow, 4)});
    t.add_row({"eliminate", Table::fmt_count(st.removed_by_eliminate),
               Table::fmt_percent(st.removed_by_eliminate / n),
               Table::fmt_double(st.time_eliminate, 4)});
    t.add_row({"chain", Table::fmt_count(st.removed_by_chain),
               Table::fmt_percent(st.removed_by_chain / n),
               Table::fmt_double(st.time_chain, 4)});
    t.add_row({"degree-0", Table::fmt_count(st.degree0_vertices),
               Table::fmt_percent(st.degree0_vertices / n), "-"});
    t.add_row({"evaluated (BFS)", Table::fmt_count(st.evaluated),
               Table::fmt_percent(st.evaluated / n),
               Table::fmt_double(st.time_ecc, 4)});
    t.print(std::cout);
  }
  return 0;
}
