// Full metric analysis of a network: diameter, radius, center, and
// periphery in one pass — the broader analytics picture the paper's
// introduction motivates (worst-case message delay, best broadcast
// position, most remote nodes).
//
//   ./network_metrics [suite-input-name] [scale]
//   e.g. ./network_metrics internet 0.2

#include <cstdlib>
#include <iostream>
#include <string>

#include "core/fdiam.hpp"
#include "core/metrics.hpp"
#include "gen/suite.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace fdiam;

  const std::string name = argc > 1 ? argv[1] : "internet";
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.1;

  std::cout << "Input: " << name << " (scale " << scale << ")\n";
  const Csr g = build_suite_input(name, scale);
  std::cout << "  " << g.num_vertices() << " vertices, " << g.num_edges()
            << " edges\n\n";

  // Diameter alone: F-Diam (the fast path).
  Timer t_fdiam;
  const DiameterResult fd = fdiam_diameter(g);
  std::cout << "F-Diam diameter:          " << fd.diameter << "  ("
            << Table::fmt_double(t_fdiam.seconds(), 3) << " s, "
            << fd.stats.bfs_calls << " BFS)\n";

  // The full metric suite: exact eccentricity of every vertex.
  Timer t_metrics;
  const GraphMetrics m = graph_metrics(g);
  std::cout << "All-eccentricity pass:    " << m.bfs_calls << " BFS in "
            << Table::fmt_double(t_metrics.seconds(), 3) << " s\n\n";

  if (m.diameter != fd.diameter) {
    std::cerr << "BUG: metric pass disagrees with F-Diam!\n";
    return 1;
  }

  std::cout << "diameter  " << m.diameter
            << "   (worst-case separation"
            << (m.connected ? "" : "; graph disconnected, largest CC") << ")\n";
  std::cout << "radius    " << m.radius
            << "   (best-case worst distance: a center vertex reaches "
               "everything within this)\n";
  std::cout << "center    " << m.center.size() << " vertices";
  for (std::size_t i = 0; i < std::min<std::size_t>(5, m.center.size()); ++i) {
    std::cout << (i ? "," : ":") << ' ' << m.center[i];
  }
  std::cout << "\nperiphery " << m.periphery.size() << " vertices";
  for (std::size_t i = 0; i < std::min<std::size_t>(5, m.periphery.size());
       ++i) {
    std::cout << (i ? "," : ":") << ' ' << m.periphery[i];
  }
  std::cout << "\n\nTheorem 3 check: radius " << m.radius << " >= diameter/2 "
            << m.diameter / 2 << "  ["
            << (2 * m.radius >= m.diameter ? "ok" : "VIOLATED") << "]\n";
  return 0;
}
