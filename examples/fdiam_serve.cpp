// fdiam_serve: diameter-as-a-service daemon (docs/SERVICE.md).
//
// Loads one or more .csrbin graphs read-only via mmap and answers
// diameter / eccentricity / distance / diametral-path queries over a
// UNIX-domain socket. Concurrent point queries are batched onto shared
// MS-BFS sweeps (up to 64 sources per traversal). SIGHUP or the
// `reload` verb re-maps graphs from disk without dropping in-flight
// queries; SIGINT/SIGTERM or the `shutdown` verb stop gracefully and,
// with --metrics-out, leave an OpenMetrics dump behind.
//
//   fdiam_serve --socket /tmp/fdiam.sock --graph web=web.csrbin \
//               --graph road=road.csrbin --metrics-out serve.om.txt

#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "obs/log/log.hpp"
#include "serve/server.hpp"
#include "util/cli.hpp"

namespace {

using fdiam::obs::LogLevel;

LogLevel parse_level(const std::string& s) {
  if (s == "trace") return LogLevel::kTrace;
  if (s == "debug") return LogLevel::kDebug;
  if (s == "info") return LogLevel::kInfo;
  if (s == "warn") return LogLevel::kWarn;
  if (s == "error") return LogLevel::kError;
  if (s == "off") return LogLevel::kOff;
  throw std::runtime_error("unknown --log-level \"" + s + "\"");
}

}  // namespace

int main(int argc, char** argv) {
  fdiam::Cli cli;
  cli.add_option("socket", "UNIX socket path to listen on");
  cli.add_option("graph",
                 "graph to serve as name=path.csrbin (repeatable via "
                 "comma-separated list)");
  cli.add_option("max-batch", "MS-BFS sources per sweep (1..64)", "64");
  cli.add_flag("no-batch",
               "answer each point query with its own BFS (baseline mode)");
  cli.add_flag("serial", "disable OpenMP parallelism inside sweeps/solves");
  cli.add_option("metrics-out", "write OpenMetrics here at shutdown");
  cli.add_option("log-level", "trace|debug|info|warn|error|off", "info");
  cli.add_option("log-out", "structured-log destination (default stderr)");
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "error: %s\n%s", cli.error().c_str(),
                 cli.usage("fdiam_serve").c_str());
    return 2;
  }
  if (cli.help_requested()) {
    std::fprintf(stdout, "%s", cli.usage("fdiam_serve").c_str());
    return 0;
  }
  try {
    const std::string socket = cli.get("socket");
    const std::string graphs = cli.get("graph");
    if (socket.empty() || graphs.empty()) {
      std::fprintf(stderr, "error: --socket and --graph are required\n%s",
                   cli.usage("fdiam_serve").c_str());
      return 2;
    }

    fdiam::obs::Logger& logger = fdiam::obs::Logger::instance();
    logger.set_level(parse_level(cli.get("log-level", "info")));
    const std::string log_out = cli.get("log-out");
    if (!log_out.empty() && !logger.open_output(log_out)) {
      std::fprintf(stderr, "error: cannot open --log-out %s\n",
                   log_out.c_str());
      return 2;
    }

    fdiam::serve::ServerOptions opt;
    opt.socket_path = socket;
    opt.max_batch = static_cast<int>(cli.get_int("max-batch", 64));
    opt.batching = !cli.get_bool("no-batch", false);
    opt.parallel = !cli.get_bool("serial", false);
    opt.metrics_out = cli.get("metrics-out");

    fdiam::serve::Server server(opt);
    // name=path entries, comma-separated.
    std::string rest = graphs;
    while (!rest.empty()) {
      std::size_t comma = rest.find(',');
      std::string entry = rest.substr(0, comma);
      rest = comma == std::string::npos ? "" : rest.substr(comma + 1);
      std::size_t eq = entry.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == entry.size()) {
        std::fprintf(stderr,
                     "error: --graph entry \"%s\" is not name=path\n",
                     entry.c_str());
        return 2;
      }
      server.add_graph(entry.substr(0, eq), entry.substr(eq + 1));
    }

    fdiam::serve::install_server_signal_handlers();
    server.start();
    server.join();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fdiam_serve: %s\n", e.what());
    return 1;
  }
  return 0;
}
