// Side-by-side comparison of every diameter algorithm in the library on
// one input — a miniature of the paper's Table 2 / Table 3 on a single
// graph, including the naive APSP and Korf baselines the full benchmark
// harness omits for being too slow.
//
//   ./compare_algorithms [suite-input-name] [scale]
//   e.g. ./compare_algorithms rmat16.sym 0.1

#include <cstdlib>
#include <iostream>
#include <string>

#include "baselines/baselines.hpp"
#include "bfs/msbfs.hpp"
#include "core/fdiam.hpp"
#include "gen/suite.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace fdiam;

  const std::string name = argc > 1 ? argv[1] : "rmat16.sym";
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.05;
  const double budget = 30.0;

  std::cout << "Input: " << name << " (scale " << scale << ")\n";
  const Csr g = build_suite_input(name, scale);
  std::cout << "  " << g.num_vertices() << " vertices, " << g.num_arcs()
            << " arcs\n\n";

  Table table({"algorithm", "diameter", "BFS calls", "time (s)", "status"});

  auto add = [&](const std::string& algo, dist_t diameter,
                 std::uint64_t calls, double seconds, bool timed_out) {
    table.add_row({algo,
                   timed_out ? ">=" + std::to_string(diameter)
                             : std::to_string(diameter),
                   Table::fmt_count(calls), Table::fmt_double(seconds, 3),
                   timed_out ? "TIMEOUT" : "ok"});
  };

  {
    Timer t;
    FDiamOptions opt;
    opt.time_budget_seconds = budget;
    const DiameterResult r = fdiam_diameter(g, opt);
    add("F-Diam (parallel)", r.diameter, r.stats.bfs_calls, t.seconds(),
        r.timed_out);
  }
  {
    Timer t;
    FDiamOptions opt;
    opt.parallel = false;
    opt.time_budget_seconds = budget;
    const DiameterResult r = fdiam_diameter(g, opt);
    add("F-Diam (serial)", r.diameter, r.stats.bfs_calls, t.seconds(),
        r.timed_out);
  }
  const struct {
    const char* algo;
    BaselineResult (*run)(const Csr&, BaselineOptions);
  } baselines[] = {
      {"iFUB", ifub_diameter},
      {"Graph-Diameter", graph_diameter},
      {"Korf partial-BFS", korf_diameter},
      {"naive APSP", apsp_diameter},
  };
  for (const auto& b : baselines) {
    Timer t;
    BaselineOptions opt;
    opt.time_budget_seconds = budget;
    const BaselineResult r = b.run(g, opt);
    add(b.algo, r.diameter, r.bfs_calls, t.seconds(), r.timed_out);
  }
  {
    // Exhaustive like APSP, but 64 traversals per bit-parallel sweep.
    Timer t;
    const MsbfsDiameter r = msbfs_diameter(g);
    add("MS-BFS APSP (64x)", r.diameter, r.sweeps, t.seconds(), false);
  }

  table.print(std::cout);
  std::cout << "\nAll non-timeout rows must agree on the diameter; BFS-call\n"
               "counts show where each algorithm's work goes (paper §6.3:\n"
               "fewer traversals is not automatically faster — iFUB's fringe\n"
               "bookkeeping is expensive, F-Diam's Winnow is nearly free).\n";
  return 0;
}
