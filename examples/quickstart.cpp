// Quickstart: the smallest useful F-Diam program.
//
// Builds a graph (here: a random power-law network), computes its exact
// diameter with F-Diam, and prints what the solver did. Swap the
// generator for io::load_graph("my_graph.mtx") to run on your own file.
//
//   ./quickstart [vertices]

#include <cstdlib>
#include <iostream>

#include "core/fdiam.hpp"
#include "gen/generators.hpp"

int main(int argc, char** argv) {
  using namespace fdiam;

  const vid_t n = argc > 1 ? static_cast<vid_t>(std::atoll(argv[1])) : 100000;
  int scale = 1;
  while ((vid_t{1} << scale) < n) ++scale;

  std::cout << "Generating an RMAT graph with " << (vid_t{1} << scale)
            << " vertices...\n";
  const Csr g = make_rmat(scale, 8.0, 0.45, 0.15, 0.15, /*seed=*/7);
  std::cout << "  " << g.num_vertices() << " vertices, " << g.num_edges()
            << " undirected edges, max degree " << g.max_degree() << "\n\n";

  const DiameterResult r = fdiam_diameter(g);

  std::cout << "Exact diameter: " << r.diameter
            << (r.connected ? "" : " (largest component; graph is "
                                   "disconnected, true diameter infinite)")
            << "\n";
  std::cout << "BFS traversals: " << r.stats.bfs_calls << " (vs "
            << g.num_vertices()
            << " for the naive one-BFS-per-vertex approach)\n";
  std::cout << "  eccentricity computations: " << r.stats.ecc_computations
            << "\n  winnow calls:              " << r.stats.winnow_calls
            << "\n";
  std::cout << "Vertices pruned without any BFS:\n"
            << "  by Winnow:    " << r.stats.removed_by_winnow << "\n"
            << "  by Eliminate: " << r.stats.removed_by_eliminate << "\n"
            << "  by Chains:    " << r.stats.removed_by_chain << "\n";
  std::cout << "Total time: " << r.stats.time_total << " s\n";
  return 0;
}
