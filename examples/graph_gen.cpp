// graph_gen: generator CLI — materialize any of the library's synthetic
// families (or a paper-suite analogue) into a graph file for use with
// fdiam_cli or external tools.
//
//   ./graph_gen --family rmat --scale-log2 16 --ef 8 --out g.mtx
//   ./graph_gen --family road --side 300 --out road.gr
//   ./graph_gen --suite amazon0601 --suite-scale 0.5 --out amazon.csrbin

#include <iostream>

#include "gen/generators.hpp"
#include "gen/suite.hpp"
#include "graph/stats.hpp"
#include "io/io.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

void save(const fdiam::Csr& g, const std::filesystem::path& out) {
  const std::string ext = out.extension().string();
  if (ext == ".gr") fdiam::io::write_dimacs(g, out);
  else if (ext == ".mtx") fdiam::io::write_matrix_market(g, out);
  else if (ext == ".metis" || ext == ".graph") fdiam::io::write_metis(g, out);
  else if (ext == ".csrbin") fdiam::io::write_binary(g, out);
  else fdiam::io::write_snap(g, out);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fdiam;

  Cli cli;
  cli.add_option("family",
                 "grid|rmat|kronecker|ba|er|ws|geometric|delaunay|road");
  cli.add_option("suite", "paper-suite analogue name instead of a family");
  cli.add_option("suite-scale", "suite size multiplier", "1.0");
  cli.add_option("out", "output file (.gr/.txt/.mtx/.metis/.csrbin)",
                 "graph.txt");
  cli.add_option("seed", "RNG seed", "1");
  cli.add_option("n", "vertex count (ba/er/ws/geometric/delaunay)", "100000");
  cli.add_option("m", "edge count (er)", "400000");
  cli.add_option("scale-log2", "log2 vertex count (rmat/kronecker)", "16");
  cli.add_option("ef", "edge factor (rmat/kronecker)", "8");
  cli.add_option("side", "grid/road side length", "256");
  cli.add_option("k", "ws neighbors per side", "3");
  cli.add_option("beta", "ws rewiring probability", "0.1");
  cli.add_option("radius", "geometric connection radius", "0.01");
  cli.add_option("tendrils", "tendrils per vertex appended afterwards", "0");
  cli.add_option("tendril-len", "max tendril length", "10");

  if (!cli.parse(argc, argv) || cli.help_requested()) {
    std::cout << cli.usage("graph_gen");
    return cli.help_requested() ? 0 : 1;
  }

  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const auto n = static_cast<vid_t>(cli.get_int("n", 100000));
  Csr g;
  if (cli.has("suite")) {
    g = build_suite_input(cli.get("suite"),
                          cli.get_double("suite-scale", 1.0), seed);
  } else {
    const std::string family = cli.get("family", "rmat");
    const auto side = static_cast<vid_t>(cli.get_int("side", 256));
    const int scale = static_cast<int>(cli.get_int("scale-log2", 16));
    const double ef = cli.get_double("ef", 8.0);
    if (family == "grid") {
      g = make_grid(side, side);
    } else if (family == "rmat") {
      g = make_rmat(scale, ef, 0.45, 0.15, 0.15, seed);
    } else if (family == "kronecker") {
      g = make_kronecker(scale, ef, seed);
    } else if (family == "ba") {
      g = make_barabasi_albert(n, cli.get_double("ef", 4.0), seed);
    } else if (family == "er") {
      g = make_erdos_renyi(n, static_cast<eid_t>(cli.get_int("m", 400000)),
                           seed);
    } else if (family == "ws") {
      g = make_watts_strogatz(n, static_cast<vid_t>(cli.get_int("k", 3)),
                              cli.get_double("beta", 0.1), seed);
    } else if (family == "geometric") {
      g = make_random_geometric(n, cli.get_double("radius", 0.01), seed);
    } else if (family == "delaunay") {
      g = make_delaunay(n, seed);
    } else if (family == "road") {
      RoadOptions opt;
      opt.grid_width = opt.grid_height = side;
      g = make_road_network(opt, seed);
    } else {
      std::cerr << "unknown family: " << family << "\n";
      return 1;
    }
  }

  const double tendrils = cli.get_double("tendrils", 0.0);
  if (tendrils > 0.0) {
    TendrilOptions opt;
    opt.per_vertex = tendrils;
    opt.max_len = static_cast<vid_t>(cli.get_int("tendril-len", 10));
    g = attach_tendrils(g, opt, seed + 1);
  }

  const GraphStats s = compute_stats(g);
  std::cout << "generated: " << Table::fmt_count(s.vertices) << " vertices, "
            << Table::fmt_count(s.arcs / 2) << " edges, avg degree "
            << Table::fmt_double(s.avg_degree, 2) << ", "
            << s.num_components << " component(s)\n";
  const std::filesystem::path out = cli.get("out", "graph.txt");
  save(g, out);
  std::cout << "wrote " << out << "\n";
  return 0;
}
