// fdiam_prof: post-processor for the sampling profiler's folded-stack
// output (docs/OBSERVABILITY.md, "Profiling and utilization").
//
// Merges one or more folded files (the format fdiam_cli --profile writes:
// root-first ';'-joined frames, space, sample count — Brendan Gregg's
// "folded" interchange format), prints a top-N self/total sample table,
// and optionally renders a standalone SVG flame graph. No external
// dependencies: the SVG is emitted by the library's own writer, so the
// whole profile workflow works on a bare build machine.
//
//   ./fdiam_cli --input 2d-2e20.sym --profile --profile-out run.folded
//   ./fdiam_prof run.folded                       # top table
//   ./fdiam_prof --svg flame.svg run.folded       # + flame graph
//   ./fdiam_prof --merge-out all.folded a.folded b.folded
//
// Exit status: 0 = ok, 1 = write failure, 2 = usage / unreadable or
// malformed input.

#include <fstream>
#include <iostream>
#include <sstream>

#include "obs/prof/folded.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using fdiam::Cli;
using fdiam::Table;
using fdiam::prof::FoldedProfile;

int run_prof(int argc, char** argv) {
  Cli cli;
  cli.add_option("top", "rows in the self-time table (0 = hide)", "20");
  cli.add_option("svg", "render a standalone SVG flame graph to this path");
  cli.add_option("title", "flame graph title", "fdiam profile");
  cli.add_option("merge-out",
                 "write the merged folded profile to this path");
  cli.add_flag("quiet", "suppress the summary line and table");

  if (!cli.parse(argc, argv)) {
    std::cerr << cli.error() << "\n" << cli.usage("fdiam_prof");
    return 2;
  }
  if (cli.help_requested()) {
    std::cout << cli.usage("fdiam_prof");
    return 0;
  }
  if (cli.positional().empty()) {
    std::cerr << "need at least one folded file (or '-' for stdin)\n"
              << cli.usage("fdiam_prof");
    return 2;
  }

  // Parse + merge. FoldedProfile::parse throws on malformed lines with a
  // line-numbered message; surface it with the offending file name.
  FoldedProfile profile;
  for (const std::string& path : cli.positional()) {
    try {
      if (path == "-") {
        profile.parse(std::cin);
      } else {
        std::ifstream in(path, std::ios::binary);
        if (!in) {
          std::cerr << "fdiam_prof: cannot open " << path << "\n";
          return 2;
        }
        profile.parse(in);
      }
    } catch (const std::exception& e) {
      std::cerr << "fdiam_prof: " << path << ": " << e.what() << "\n";
      return 2;
    }
  }
  if (profile.empty()) {
    std::cerr << "fdiam_prof: no samples in input\n";
    return 2;
  }

  const bool quiet = cli.get_bool("quiet");
  if (!quiet) {
    std::cout << profile.total() << " samples across " << profile.size()
              << " unique stack(s)\n";
    const auto top = static_cast<int>(cli.get_int("top", 20));
    if (top > 0) {
      const double total = static_cast<double>(profile.total());
      Table t({"frame", "self", "self %", "total", "total %"});
      int rows = 0;
      for (const auto& f : profile.frame_totals()) {
        if (rows++ >= top) break;
        t.add_row({f.name, Table::fmt_count(f.self),
                   Table::fmt_percent(static_cast<double>(f.self) / total),
                   Table::fmt_count(f.total),
                   Table::fmt_percent(static_cast<double>(f.total) / total)});
      }
      t.print(std::cout);
    }
  }

  if (cli.has("merge-out")) {
    const std::string out_path = cli.get("merge-out");
    std::ofstream out(out_path, std::ios::trunc);
    if (!out) {
      std::cerr << "fdiam_prof: cannot write " << out_path << "\n";
      return 1;
    }
    profile.write(out);
    if (!quiet) std::cout << "wrote merged profile to " << out_path << "\n";
  }

  if (cli.has("svg")) {
    const std::string svg_path = cli.get("svg");
    std::ofstream out(svg_path, std::ios::trunc);
    if (!out) {
      std::cerr << "fdiam_prof: cannot write " << svg_path << "\n";
      return 1;
    }
    profile.write_svg(out, cli.get("title", "fdiam profile"));
    if (!quiet) std::cout << "wrote flame graph to " << svg_path << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run_prof(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "fdiam_prof: error: " << e.what() << "\n";
    return 2;
  }
}
