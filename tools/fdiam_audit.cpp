// fdiam_audit: independent invariant auditor for F-Diam provenance logs.
//
// Loads (or regenerates) the graph a provenance-enabled run solved, reads
// the binary log the run wrote with --audit-log, recomputes ground-truth
// eccentricities with one plain BFS per vertex, and checks every removal
// record and bound-timeline entry against the paper's theorems
// (obs/audit.hpp lists the full invariant set). The auditor shares zero
// pruning logic with the solver — that independence is the point.
//
//   ./fdiam_cli   --input 2d-2e20.sym --scale 0.05 --audit-log prov.bin
//   ./fdiam_audit --input 2d-2e20.sym --scale 0.05 --log prov.bin
//
// Exit status: 0 = every invariant holds, 1 = violations found,
// 2 = usage / unreadable graph / corrupted log.

#include <cstdio>
#include <iostream>

#include "gen/suite.hpp"
#include "graph/stats.hpp"
#include "io/io.hpp"
#include "obs/audit.hpp"
#include "obs/provenance.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

namespace {

using namespace fdiam;

int run_audit(int argc, char** argv) {
  Cli cli;
  cli.add_option("log", "binary provenance log written by --audit-log");
  cli.add_option("file", "graph file the audited run solved");
  cli.add_option("input", "built-in suite input name the audited run used");
  cli.add_option("scale", "suite size multiplier (must match the run)",
                 "0.1");
  cli.add_option("seed", "generator seed (must match the run)", "1");
  cli.add_option("max-errors",
                 "report at most this many violations (0 = all)", "25");

  if (!cli.parse(argc, argv)) {
    std::cerr << cli.error() << "\n" << cli.usage("fdiam_audit");
    return 2;
  }
  if (cli.help_requested()) {
    std::cout << cli.usage("fdiam_audit");
    return 0;
  }
  if (!cli.has("log")) {
    std::cerr << "need --log\n" << cli.usage("fdiam_audit");
    return 2;
  }

  // The generators are deterministic in (name, scale, seed), so a suite
  // run can be audited without ever serializing the graph itself.
  Csr g;
  if (cli.has("file")) {
    g = io::load_graph(cli.get("file"));
  } else if (cli.has("input")) {
    g = build_suite_input(cli.get("input"), cli.get_double("scale", 0.1),
                          static_cast<std::uint64_t>(cli.get_int("seed", 1)));
  } else {
    std::cerr << "need --file or --input\n" << cli.usage("fdiam_audit");
    return 2;
  }

  const obs::ProvenanceLog log = obs::ProvenanceLog::read_file(cli.get("log"));
  std::cerr << "auditing " << log.records.size() << " records and "
            << log.timeline.size() << " timeline entries against "
            << g.num_vertices() << "-vertex ground truth...\n";

  obs::AuditOptions opt;
  opt.max_errors = static_cast<std::size_t>(cli.get_int("max-errors", 25));
  Timer t;
  const obs::AuditResult res = obs::audit_provenance(g, log, opt);

  for (const std::string& e : res.errors) {
    std::cout << "VIOLATION: " << e << "\n";
  }
  char elapsed[32];
  std::snprintf(elapsed, sizeof elapsed, "%.3f", t.seconds());
  std::cout << (res.ok ? "AUDIT PASSED" : "AUDIT FAILED") << ": "
            << res.records_checked << " records, " << res.timeline_checked
            << " timeline entries, " << res.bfs_traversals
            << " ground-truth BFS traversals, true diameter "
            << res.true_diameter << " (" << res.errors.size()
            << " violation(s), " << elapsed << " s)\n";
  return res.ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  // Corrupted logs and unreadable graphs throw with a precise message;
  // surface it cleanly and distinguish it (exit 2) from a failed audit.
  try {
    return run_audit(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "fdiam_audit: error: " << e.what() << "\n";
    return 2;
  }
}
