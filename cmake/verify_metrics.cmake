# verify-metrics ctest driver (run via `cmake -P`): exercises the
# structured-logging + histogram-metrics surface end-to-end and validates
# every produced artifact with the in-tree json_check tool — no python,
# promtool, or other external utilities required. Variables passed by the
# add_test() invocation:
#   FDIAM_CLI   path to the fdiam_cli binary
#   JSON_CHECK  path to the json_check binary
#   WORK_DIR    scratch directory for the emitted files

set(report "${WORK_DIR}/metrics_report.json")
set(log "${WORK_DIR}/metrics_run.log")
set(prom "${WORK_DIR}/metrics_run.prom")

# One production-telemetry run: info-level JSON-lines logging to a file,
# OpenMetrics exposition, JSON report with the fdiam.metrics/v1 block,
# JSON heartbeats forced on so the log carries heartbeat records too.
execute_process(
  COMMAND "${FDIAM_CLI}" --input 2d-2e20.sym --scale 0.05
          --log-level info --log-out "${log}"
          --metrics-out "${prom}" --json-report "${report}"
          --heartbeat 0.001 --heartbeat-format json --force-progress
  RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "fdiam_cli metrics run failed (exit ${rc})")
endif()

# Report: structural JSON + every semantic block validator, including the
# fdiam.metrics/v1 histograms block and the cross-block consistency pass
# (histogram BFS counts vs bfs_calls). Log: every line parses as JSON.
# Exposition: the OpenMetrics lint.
execute_process(
  COMMAND "${JSON_CHECK}" "${report}" --jsonl "${log}" --openmetrics "${prom}"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "metrics artifacts failed validation (exit ${rc})")
endif()

# Cheap content smoke checks on top of structural validity.
file(READ "${report}" report_text)
foreach(needle "fdiam.metrics/v1" "fdiam.bfs.seconds[stage=" "\"p99\"")
  string(FIND "${report_text}" "${needle}" found)
  if(found EQUAL -1)
    message(FATAL_ERROR "run report is missing ${needle}")
  endif()
endforeach()
file(READ "${prom}" prom_text)
foreach(needle "# TYPE fdiam_bfs_seconds histogram" "le=\"+Inf\"" "# EOF")
  string(FIND "${prom_text}" "${needle}" found)
  if(found EQUAL -1)
    message(FATAL_ERROR "OpenMetrics exposition is missing ${needle}")
  endif()
endforeach()
file(READ "${log}" log_text)
string(FIND "${log_text}" "\"sub\":\"heartbeat\"" found)
if(found EQUAL -1)
  message(FATAL_ERROR "structured log is missing JSON heartbeat records")
endif()

# Negative cases: the lint must actually reject malformed expositions —
# a linter that accepts everything would pass the positive check above.
set(bad1 "${WORK_DIR}/metrics_bad1.prom")
file(WRITE "${bad1}" "fdiam_x_total 1\n")  # no # EOF terminator
set(bad2 "${WORK_DIR}/metrics_bad2.prom")
file(WRITE "${bad2}" "# TYPE fdiam_h histogram
fdiam_h_bucket{le=\"2.0\"} 5
fdiam_h_bucket{le=\"1.0\"} 6
fdiam_h_bucket{le=\"+Inf\"} 6
fdiam_h_sum 3.0
fdiam_h_count 6
# EOF
")  # le not ascending
set(bad3 "${WORK_DIR}/metrics_bad3.prom")
file(WRITE "${bad3}" "# TYPE fdiam_c counter
fdiam_c_total 5
fdiam_c_total 4
# TYPE fdiam_c counter
# EOF
")  # duplicate TYPE for one family
foreach(bad "${bad1}" "${bad2}" "${bad3}")
  execute_process(
    COMMAND "${JSON_CHECK}" --openmetrics "${bad}"
    RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
  if(rc EQUAL 0)
    message(FATAL_ERROR "lint accepted malformed exposition ${bad}")
  endif()
endforeach()

# Write-failure discipline: pointing --metrics-out (and the other output
# artifacts) into a nonexistent directory must exit nonzero, not succeed
# with a missing file.
execute_process(
  COMMAND "${FDIAM_CLI}" --input 2d-2e20.sym --scale 0.05
          --metrics-out "${WORK_DIR}/no_such_dir/m.prom"
  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "fdiam_cli exited 0 despite an unwritable --metrics-out")
endif()
execute_process(
  COMMAND "${FDIAM_CLI}" --input 2d-2e20.sym --scale 0.05
          --json-report "${WORK_DIR}/no_such_dir/r.json"
  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "fdiam_cli exited 0 despite an unwritable --json-report")
endif()
