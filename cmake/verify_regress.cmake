# verify-regress ctest driver (run via `cmake -P`): exercises the
# regression-benchmark pipeline end-to-end. Produces a BENCH_<n>.json with
# bench_regress, validates it with json_check, and bench_compares it
# against itself — which must pass with zero diff, proving the
# deterministic metrics really are deterministic and the comparator's
# parse/threshold logic accepts its own producer. Variables passed by the
# add_test() invocation:
#   BENCH_REGRESS  path to the bench_regress binary
#   BENCH_COMPARE  path to the bench_compare binary
#   JSON_CHECK     path to the json_check binary
#   WORK_DIR       scratch directory for the emitted files

# Fresh scratch dir so the slot counter always starts at BENCH_1.json.
file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

execute_process(
  COMMAND "${BENCH_REGRESS}" --reps 1 --out-dir "${WORK_DIR}"
  RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "bench_regress failed (exit ${rc})")
endif()

file(GLOB reports "${WORK_DIR}/BENCH_*.json")
list(LENGTH reports n_reports)
if(NOT n_reports EQUAL 1)
  message(FATAL_ERROR
          "expected exactly one BENCH_<n>.json, found ${n_reports}")
endif()
list(GET reports 0 report)

execute_process(COMMAND "${JSON_CHECK}" "${report}" RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "bench_regress report failed JSON validation")
endif()

# Schema smoke checks: schema tag, cases array, and the hardware/memory
# blocks (present even when degraded to available=false).
file(READ "${report}" report_text)
foreach(needle "fdiam.bench_report/v1" "\"cases\"" "\"hardware\""
        "\"memory\"" "\"seconds_median\"")
  string(FIND "${report_text}" "${needle}" found)
  if(found EQUAL -1)
    message(FATAL_ERROR "regress report is missing ${needle}")
  endif()
endforeach()

execute_process(
  COMMAND "${BENCH_COMPARE}" "${report}" "${report}"
  RESULT_VARIABLE rc OUTPUT_VARIABLE cmp_out ERROR_VARIABLE cmp_err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
          "self-compare reported a regression (exit ${rc}):\n"
          "${cmp_out}${cmp_err}")
endif()
if(NOT cmp_out MATCHES "0 regression")
  message(FATAL_ERROR "self-compare summary missing: ${cmp_out}")
endif()
