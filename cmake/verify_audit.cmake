# verify-audit ctest driver (run via `cmake -P`): end-to-end check of the
# pruning-provenance pipeline. For each (suite input x engine mode) the
# solver runs with --provenance/--audit-log, json_check validates the
# embedded provenance block, and fdiam_audit regenerates the same seeded
# graph and replays the binary log against per-vertex BFS ground truth.
# Variables passed by the add_test() invocation:
#   FDIAM_CLI    path to the fdiam_cli binary
#   FDIAM_AUDIT  path to the fdiam_audit binary
#   JSON_CHECK   path to the json_check binary
#   WORK_DIR     scratch directory for the emitted files

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

set(scale 0.05)
set(seed 1)
set(inputs "2d-2e20.sym" "rmat16.sym")
# Engine-mode matrix: default parallel, serial + vertex-0 start, and the
# degree-reordered path (exercises the provenance id translation).
set(mode_names default serial_no_u reorder_degree)
set(mode_default "")
set(mode_serial_no_u --serial --no-u)
set(mode_reorder_degree --reorder degree)

set(case_idx 0)
foreach(input IN LISTS inputs)
  foreach(mode IN LISTS mode_names)
    math(EXPR case_idx "${case_idx} + 1")
    set(log "${WORK_DIR}/prov_${case_idx}.bin")
    set(report "${WORK_DIR}/report_${case_idx}.json")

    execute_process(
      COMMAND "${FDIAM_CLI}" --input "${input}" --scale "${scale}"
              --seed "${seed}" --audit-log "${log}"
              --json-report "${report}" ${mode_${mode}}
      RESULT_VARIABLE rc OUTPUT_QUIET)
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR
              "fdiam_cli failed on ${input} / ${mode} (exit ${rc})")
    endif()

    execute_process(COMMAND "${JSON_CHECK}" "${report}" RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR
              "provenance report failed validation on ${input} / ${mode}")
    endif()
    file(READ "${report}" report_text)
    foreach(needle "fdiam.provenance/v1" "\"bound_timeline\""
            "\"stage_counts\"")
      string(FIND "${report_text}" "${needle}" found)
      if(found EQUAL -1)
        message(FATAL_ERROR
                "report on ${input} / ${mode} is missing ${needle}")
      endif()
    endforeach()

    # The generators are deterministic in (input, scale, seed): the
    # auditor rebuilds the exact graph the solver pruned.
    execute_process(
      COMMAND "${FDIAM_AUDIT}" --input "${input}" --scale "${scale}"
              --seed "${seed}" --log "${log}"
      RESULT_VARIABLE rc OUTPUT_VARIABLE audit_out ERROR_VARIABLE audit_err)
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR
              "fdiam_audit found violations on ${input} / ${mode} "
              "(exit ${rc}):\n${audit_out}${audit_err}")
    endif()
    if(NOT audit_out MATCHES "AUDIT PASSED")
      message(FATAL_ERROR
              "fdiam_audit summary missing on ${input} / ${mode}: "
              "${audit_out}")
    endif()
  endforeach()
endforeach()

# A truncated log must fail loudly (exit 2 + precise message), never audit
# garbage silently. CMake's file() cannot write raw bytes, so the prefix
# copy uses dd when available; without it this leg is skipped (the unit
# tests in tests/test_provenance.cpp cover corruption in-process too).
set(good_log "${WORK_DIR}/prov_1.bin")
set(bad_log "${WORK_DIR}/prov_truncated.bin")
file(SIZE "${good_log}" log_size)
math(EXPR trunc_size "${log_size} / 2")
find_program(DD_TOOL dd)
if(DD_TOOL)
  execute_process(
    COMMAND "${DD_TOOL}" "if=${good_log}" "of=${bad_log}" bs=1
            "count=${trunc_size}"
    RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
  if(rc EQUAL 0)
    execute_process(
      COMMAND "${FDIAM_AUDIT}" --input 2d-2e20.sym --scale "${scale}"
              --seed "${seed}" --log "${bad_log}"
      RESULT_VARIABLE rc OUTPUT_QUIET ERROR_VARIABLE audit_err)
    if(NOT rc EQUAL 2)
      message(FATAL_ERROR
              "truncated log: expected exit 2, got ${rc}")
    endif()
    if(NOT audit_err MATCHES "truncated")
      message(FATAL_ERROR
              "truncated log: error message not precise: ${audit_err}")
    endif()
  endif()
endif()
