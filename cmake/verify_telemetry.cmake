# verify-telemetry ctest driver (run via `cmake -P`): exercises the
# telemetry surface end-to-end and validates every produced file as JSON
# with the in-tree json_check tool — no python or external JSON utilities
# required. Variables passed by the add_test() invocation:
#   FDIAM_CLI   path to the fdiam_cli binary
#   BENCH       path to a bench binary accepting --json (bench_table1_inputs)
#   JSON_CHECK  path to the json_check binary
#   WORK_DIR    scratch directory for the emitted files

set(report "${WORK_DIR}/verify_report.json")
set(trace "${WORK_DIR}/verify_trace.json")
set(bench_json "${WORK_DIR}/verify_bench.json")

execute_process(
  COMMAND "${FDIAM_CLI}" --input 2d-2e20.sym --scale 0.05
          --json-report "${report}" --trace-out "${trace}" --trace-levels
  RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "fdiam_cli telemetry run failed (exit ${rc})")
endif()

execute_process(
  COMMAND "${BENCH}" --inputs 2d-2e20.sym --scale 0.05 --reps 1 --budget 30
          --json "${bench_json}"
  RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "bench --json run failed (exit ${rc})")
endif()

execute_process(
  COMMAND "${JSON_CHECK}" "${report}" "${trace}" "${bench_json}"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "telemetry output failed JSON validation (exit ${rc})")
endif()

# Cheap schema smoke checks on top of structural validity.
file(READ "${report}" report_text)
foreach(needle "fdiam.run_report/v1" "\"diameter\"" "\"times_s\"" "\"env\""
        "\"bfs\"")
  string(FIND "${report_text}" "${needle}" found)
  if(found EQUAL -1)
    message(FATAL_ERROR "run report is missing ${needle}")
  endif()
endforeach()
file(READ "${bench_json}" bench_text)
string(FIND "${bench_text}" "fdiam.bench_report/v1" found)
if(found EQUAL -1)
  message(FATAL_ERROR "bench report is missing its schema tag")
endif()
