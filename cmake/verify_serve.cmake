# verify-serve ctest driver (run via `cmake -P`): boots a real fdiam_serve
# daemon on a temp socket, drives it with fdiam_client over the wire —
# happy-path queries, a malformed request, a live reload — then shuts it
# down via the protocol verb and validates the OpenMetrics dump the
# daemon leaves behind. Variables passed by the add_test() invocation:
#   GRAPH_GEN    path to the graph_gen binary (produces the .csrbin)
#   FDIAM_SERVE  path to the fdiam_serve binary
#   FDIAM_CLIENT path to the fdiam_client binary
#   JSON_CHECK   path to the json_check binary
#   WORK_DIR     scratch directory (socket, graph, metrics, log)

find_program(SH_PROGRAM sh)
if(NOT SH_PROGRAM)
  message(FATAL_ERROR "verify-serve needs a POSIX sh to background the daemon")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")
set(graph "${WORK_DIR}/serve_graph.csrbin")
set(socket "${WORK_DIR}/serve.sock")
set(prom "${WORK_DIR}/serve.om.txt")
set(log "${WORK_DIR}/serve.log")
set(pidfile "${WORK_DIR}/serve.pid")

# A small but non-trivial graph for the daemon to serve.
execute_process(
  COMMAND "${GRAPH_GEN}" --family rmat --scale-log2 10 --ef 8
          --out "${graph}"
  RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "graph_gen failed (exit ${rc})")
endif()

# Background the daemon through sh so the test can keep driving it; the
# pidfile lets the cleanup path kill a daemon that outlives a failure.
execute_process(
  COMMAND "${SH_PROGRAM}" -c
    "'${FDIAM_SERVE}' --socket '${socket}' --graph demo='${graph}' \
     --metrics-out '${prom}' --log-level info --log-out '${log}' \
     </dev/null >/dev/null 2>&1 & echo $! > '${pidfile}'"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "failed to launch fdiam_serve (exit ${rc})")
endif()
file(READ "${pidfile}" daemon_pid)
string(STRIP "${daemon_pid}" daemon_pid)

function(kill_daemon)
  execute_process(COMMAND "${SH_PROGRAM}" -c
                  "kill ${daemon_pid} 2>/dev/null" ERROR_QUIET)
endfunction()

# Wait for the socket to come up: retry ping until it answers.
set(up FALSE)
foreach(attempt RANGE 100)
  execute_process(
    COMMAND "${FDIAM_CLIENT}" --socket "${socket}" ping
    RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
  if(rc EQUAL 0)
    set(up TRUE)
    break()
  endif()
  execute_process(COMMAND "${CMAKE_COMMAND}" -E sleep 0.1)
endforeach()
if(NOT up)
  kill_daemon()
  message(FATAL_ERROR "daemon never answered ping on ${socket}")
endif()

# Happy path: every query verb answers ok=true with sane payloads.
execute_process(
  COMMAND "${FDIAM_CLIENT}" --socket "${socket}" diameter
  RESULT_VARIABLE rc OUTPUT_VARIABLE diameter_out)
if(NOT rc EQUAL 0)
  kill_daemon()
  message(FATAL_ERROR "diameter query failed (exit ${rc}): ${diameter_out}")
endif()
string(FIND "${diameter_out}" "\"diameter\":" found)
if(found EQUAL -1)
  kill_daemon()
  message(FATAL_ERROR "diameter response missing field: ${diameter_out}")
endif()

execute_process(
  COMMAND "${FDIAM_CLIENT}" --socket "${socket}" ecc 0
  RESULT_VARIABLE rc OUTPUT_VARIABLE ecc_out)
if(NOT rc EQUAL 0)
  kill_daemon()
  message(FATAL_ERROR "eccentricity query failed (exit ${rc}): ${ecc_out}")
endif()

execute_process(
  COMMAND "${FDIAM_CLIENT}" --socket "${socket}" dist 0 1
  RESULT_VARIABLE rc OUTPUT_VARIABLE dist_out)
if(NOT rc EQUAL 0)
  kill_daemon()
  message(FATAL_ERROR "distance query failed (exit ${rc}): ${dist_out}")
endif()

execute_process(
  COMMAND "${FDIAM_CLIENT}" --socket "${socket}" path demo
  RESULT_VARIABLE rc OUTPUT_VARIABLE path_out)
if(NOT rc EQUAL 0)
  kill_daemon()
  message(FATAL_ERROR "diametral_path query failed (exit ${rc}): ${path_out}")
endif()

execute_process(
  COMMAND "${FDIAM_CLIENT}" --socket "${socket}" stats
  RESULT_VARIABLE rc OUTPUT_VARIABLE stats_out)
if(NOT rc EQUAL 0)
  kill_daemon()
  message(FATAL_ERROR "stats query failed (exit ${rc}): ${stats_out}")
endif()
string(FIND "${stats_out}" "fdiam.serve/v1" found)
if(found EQUAL -1)
  kill_daemon()
  message(FATAL_ERROR "stats response missing protocol tag: ${stats_out}")
endif()

# Malformed requests fail the REQUEST (exit 1, error field), not the
# daemon: garbage JSON, an unknown op, an out-of-range vertex.
foreach(bad "{not json" "{\"op\":\"frobnicate\"}" "{\"op\":\"eccentricity\"}")
  execute_process(
    COMMAND "${FDIAM_CLIENT}" --socket "${socket}" --raw "${bad}"
    RESULT_VARIABLE rc OUTPUT_VARIABLE bad_out)
  if(NOT rc EQUAL 1)
    kill_daemon()
    message(FATAL_ERROR
            "malformed request ${bad} should exit 1, got ${rc}: ${bad_out}")
  endif()
  string(FIND "${bad_out}" "\"error\":" found)
  if(found EQUAL -1)
    kill_daemon()
    message(FATAL_ERROR "malformed request got no error field: ${bad_out}")
  endif()
endforeach()
execute_process(
  COMMAND "${FDIAM_CLIENT}" --socket "${socket}" dist 0 999999999
  RESULT_VARIABLE rc OUTPUT_VARIABLE range_out)
if(NOT rc EQUAL 1)
  kill_daemon()
  message(FATAL_ERROR "out-of-range vertex should exit 1, got ${rc}")
endif()

# Reload bumps the generation and the daemon keeps answering.
execute_process(
  COMMAND "${FDIAM_CLIENT}" --socket "${socket}" reload demo
  RESULT_VARIABLE rc OUTPUT_VARIABLE reload_out)
if(NOT rc EQUAL 0)
  kill_daemon()
  message(FATAL_ERROR "reload failed (exit ${rc}): ${reload_out}")
endif()
execute_process(
  COMMAND "${FDIAM_CLIENT}" --socket "${socket}" dist 1 2
  RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  kill_daemon()
  message(FATAL_ERROR "query after reload failed (exit ${rc})")
endif()

# Graceful shutdown via the protocol verb; wait for the process to exit
# and the metrics dump to appear.
execute_process(
  COMMAND "${FDIAM_CLIENT}" --socket "${socket}" shutdown
  RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  kill_daemon()
  message(FATAL_ERROR "shutdown verb failed (exit ${rc})")
endif()
set(gone FALSE)
foreach(attempt RANGE 100)
  execute_process(COMMAND "${SH_PROGRAM}" -c "kill -0 ${daemon_pid} 2>/dev/null"
                  RESULT_VARIABLE alive)
  if(NOT alive EQUAL 0)
    set(gone TRUE)
    break()
  endif()
  execute_process(COMMAND "${CMAKE_COMMAND}" -E sleep 0.1)
endforeach()
if(NOT gone)
  kill_daemon()
  message(FATAL_ERROR "daemon did not exit after the shutdown verb")
endif()

# The shutdown dump: lint-clean OpenMetrics carrying the serve counters,
# and a structured log that parses as JSON-lines.
if(NOT EXISTS "${prom}")
  message(FATAL_ERROR "daemon exited without writing ${prom}")
endif()
execute_process(
  COMMAND "${JSON_CHECK}" --openmetrics "${prom}" --jsonl "${log}"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "serve artifacts failed validation (exit ${rc})")
endif()
file(READ "${prom}" prom_text)
foreach(needle "serve_requests_diameter" "serve_connections" "serve_reloads")
  string(FIND "${prom_text}" "${needle}" found)
  if(found EQUAL -1)
    message(FATAL_ERROR "OpenMetrics dump is missing ${needle}")
  endif()
endforeach()

message(STATUS "verify-serve: all protocol, reload, and shutdown checks passed")
