# verify-scale ctest driver (run via `cmake -P`): smoke-runs the
# out-of-core pipeline end to end at a CI-sized input — bench_scale at
# --scale 17 --edge-factor 8 generates ~10^6 RMAT edges, streams them
# through the external-memory builder under a deliberately tight 8 MiB
# budget, mmap-loads the v2 .csrbin, solves it, and self-asserts the
# peak-RSS bounds (a violated bound exits nonzero). The JSON sidecar is
# then schema-checked with json_check. The full 10^8-edge tier is the
# same binary at its defaults. Variables passed by add_test():
#   BENCH_SCALE  path to the bench_scale binary
#   JSON_CHECK   path to the json_check binary
#   WORK_DIR     scratch directory for the build output and report
#   SKIP_RSS     ON under sanitizers (shadow memory voids the RSS bounds)

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

set(extra_args)
if(SKIP_RSS)
  list(APPEND extra_args --no-check)
endif()
execute_process(
  COMMAND "${BENCH_SCALE}" --scale 17 --edge-factor 8 --mem-budget 8
          --work-dir "${WORK_DIR}" --out "${WORK_DIR}/scale.json"
          ${extra_args}
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "bench_scale smoke failed (exit ${rc}):\n${out}${err}")
endif()
if(NOT SKIP_RSS AND NOT out MATCHES "RSS assertions: ok")
  message(FATAL_ERROR
          "bench_scale did not confirm its RSS assertions:\n${out}${err}")
endif()

execute_process(COMMAND "${JSON_CHECK}" "${WORK_DIR}/scale.json"
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "bench_scale report failed JSON validation")
endif()

# Schema smoke checks on the sidecar: the three phases, the stream-build
# counters, and a clean failure count.
file(READ "${WORK_DIR}/scale.json" report_text)
foreach(needle "fdiam.scale_report/v1" "\"build\"" "\"load\"" "\"solve\""
        "\"spill_bytes\"" "\"mapped_bytes\"" "\"failures\": 0")
  string(FIND "${report_text}" "${needle}" found)
  if(found EQUAL -1)
    message(FATAL_ERROR "scale report is missing ${needle}")
  endif()
endforeach()
