# verify-profile ctest driver (run via `cmake -P`): end-to-end check of
# the sampling-profiler + utilization pipeline. One fdiam_cli run with
# --profile --utilization must produce (a) a run report whose "profile"
# and "utilization" blocks pass json_check's semantic validators, (b) a
# non-empty folded-stack file, and (c) an SVG flame graph rendered from it
# by fdiam_prof. A second leg checks the negative paths: fdiam_prof must
# reject malformed and empty folded input with exit 2.
# Variables passed by the add_test() invocation:
#   FDIAM_CLI   path to the fdiam_cli binary
#   FDIAM_PROF  path to the fdiam_prof binary
#   JSON_CHECK  path to the json_check binary
#   WORK_DIR    scratch directory for the emitted files

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

set(report "${WORK_DIR}/report.json")
set(folded "${WORK_DIR}/run.folded")
set(svg "${WORK_DIR}/flame.svg")

# Scale chosen so the run lasts long enough for the 197 Hz sampler to land
# a handful of samples even on a fast machine; the assertions below only
# require the files to be structurally sound, not a minimum sample count
# (a sampler that captured zero samples still writes a valid summary).
execute_process(
  COMMAND "${FDIAM_CLI}" --input 2d-2e20.sym --scale 0.2 --seed 1
          --profile --utilization --profile-out "${folded}"
          --json-report "${report}"
  RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "fdiam_cli --profile failed (exit ${rc})")
endif()

# Structural + semantic validation: json_check runs diagnose_profile_block
# and diagnose_utilization_block on every report it sees.
execute_process(COMMAND "${JSON_CHECK}" "${report}" RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "profile report failed json_check validation")
endif()
file(READ "${report}" report_text)
foreach(needle "fdiam.profile/v1" "fdiam.utilization/v1"
        "\"busy_ratio\"" "\"per_thread\"" "\"samples\"")
  string(FIND "${report_text}" "${needle}" found)
  if(found EQUAL -1)
    message(FATAL_ERROR "profile report is missing ${needle}")
  endif()
endforeach()

if(NOT EXISTS "${folded}")
  message(FATAL_ERROR "fdiam_cli --profile wrote no folded file")
endif()

# Post-process: merge/table plus the SVG renderer. On a machine where the
# run finished before the first timer expiry the folded file can be empty;
# fdiam_prof reports that as exit 2 with a precise message, which is also
# an acceptable outcome for this leg — but when samples exist, the full
# pipeline must produce a well-formed SVG.
file(SIZE "${folded}" folded_size)
if(folded_size GREATER 0)
  execute_process(
    COMMAND "${FDIAM_PROF}" --svg "${svg}" --top 5 "${folded}"
    RESULT_VARIABLE rc OUTPUT_VARIABLE prof_out ERROR_VARIABLE prof_err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR
            "fdiam_prof failed on ${folded} (exit ${rc}):\n"
            "${prof_out}${prof_err}")
  endif()
  if(NOT prof_out MATCHES "samples across")
    message(FATAL_ERROR "fdiam_prof summary line missing: ${prof_out}")
  endif()
  file(READ "${svg}" svg_text)
  if(NOT svg_text MATCHES "</svg>")
    message(FATAL_ERROR "flame graph SVG is not well-formed")
  endif()
  string(FIND "${svg_text}" "fdiam" found)
  if(found EQUAL -1)
    message(FATAL_ERROR "flame graph contains no fdiam frames")
  endif()
endif()

# Negative paths: malformed counts and empty input must fail loudly with
# exit 2, never render garbage.
file(WRITE "${WORK_DIR}/bad.folded" "main;fdiam::FDiam::run banana\n")
execute_process(
  COMMAND "${FDIAM_PROF}" "${WORK_DIR}/bad.folded"
  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR "malformed folded input: expected exit 2, got ${rc}")
endif()

file(WRITE "${WORK_DIR}/empty.folded" "")
execute_process(
  COMMAND "${FDIAM_PROF}" "${WORK_DIR}/empty.folded"
  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR "empty folded input: expected exit 2, got ${rc}")
endif()
