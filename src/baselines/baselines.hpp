#pragma once
// Competitor algorithms the paper evaluates against (§5), reimplemented
// from their publications since the original binaries are not available
// offline:
//   * iFUB (Crescenzi, Grossi, Habib, Lanzi & Marino, 2013) — 4-sweep
//     start + fringe sets, serial and parallel-BFS variants.
//   * Graph-Diameter (Akiba, Iwata & Kawata, 2015) — double sweep plus
//     per-vertex eccentricity upper bounds via the triangle inequality,
//     skipping vertices whose bound falls under the diameter lower bound.
//   * Korf (2021) — partial BFS over a shrinking candidate set (related
//     work §2; implemented as an extra comparison point).
//   * Naive APSP — one BFS per vertex; the test suite's ground truth.
//
// All baselines handle disconnected inputs the way the paper requires:
// they report the largest eccentricity over all connected components and
// flag the infinite true diameter via `connected = false`.

#include <cstdint>

#include "graph/csr.hpp"
#include "util/types.hpp"

namespace fdiam {

struct BaselineOptions {
  /// Parallel BFS inside each traversal (iFUB par) or parallel over
  /// sources (APSP). Graph-Diameter and Korf are serial like the originals.
  bool parallel = false;
  /// Abort after this many seconds (0 = unlimited). The paper capped every
  /// run at 2.5 hours.
  double time_budget_seconds = 0.0;
};

struct BaselineResult {
  dist_t diameter = 0;  ///< largest eccentricity over all components
  bool connected = true;
  bool timed_out = false;  ///< budget hit; diameter is only a lower bound
  std::uint64_t bfs_calls = 0;
};

/// Exact diameter via one BFS per vertex. O(nm); ground truth for tests.
BaselineResult apsp_diameter(const Csr& g, BaselineOptions opt = {});

/// iFUB with 4-sweep start vertex and fringe-set processing.
BaselineResult ifub_diameter(const Csr& g, BaselineOptions opt = {});

/// Akiba-style eccentricity-bounding diameter computation.
BaselineResult graph_diameter(const Csr& g, BaselineOptions opt = {});

/// Korf's partial-BFS diameter computation over a shrinking active set.
BaselineResult korf_diameter(const Csr& g, BaselineOptions opt = {});

}  // namespace fdiam
