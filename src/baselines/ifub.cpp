// iFUB — iterative Fringe Upper Bound (Crescenzi et al. 2013), the first
// of the paper's two main comparison codes (§2, §5).
//
// From a near-central vertex u (found with a 4-sweep), the BFS tree of u
// partitions the component into fringe sets F_i = vertices at distance i
// from u. Key bound: every vertex in fringe <= i-1 has eccentricity at
// most 2*(i-1), so after evaluating the eccentricity of every vertex in
// fringe i the algorithm may stop as soon as the best lower bound exceeds
// 2*(i-1) — the remaining (inner) vertices cannot beat it.
//
// Disconnected inputs are handled by running iFUB inside each component
// (BFS never leaves a component, so no subgraph extraction is needed) and
// reporting the maximum, per the paper's disconnected-graph semantics.

#include <algorithm>
#include <vector>

#include "baselines/baselines.hpp"
#include "bfs/bfs.hpp"
#include "core/two_sweep.hpp"
#include "graph/components.hpp"
#include "util/timer.hpp"

namespace fdiam {

namespace {

struct IfubRun {
  dist_t diameter = 0;
  bool timed_out = false;
};

// iFUB on the component containing `rep`.
IfubRun ifub_component(const Csr& g, BfsEngine& engine, vid_t rep,
                       const Timer& timer, double budget,
                       std::uint64_t& bfs_calls) {
  IfubRun run;
  if (g.degree(rep) == 0) return run;  // isolated vertex: ecc 0

  // 4-sweep for a near-central start vertex and an initial lower bound.
  const FourSweepResult sweep = four_sweep(engine, rep);
  bfs_calls += 4;

  std::vector<dist_t> dist;
  const dist_t ecc_u = engine.distances(sweep.center, dist);
  ++bfs_calls;

  dist_t lb = std::max(sweep.lower_bound, ecc_u);
  dist_t ub = 2 * ecc_u;

  // Bucket the component's vertices into fringe sets by BFS level.
  std::vector<std::vector<vid_t>> fringe(static_cast<std::size_t>(ecc_u) + 1);
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    if (dist[v] >= 0) fringe[static_cast<std::size_t>(dist[v])].push_back(v);
  }

  for (dist_t i = ecc_u; ub > lb && i > 0; --i) {
    for (const vid_t v : fringe[static_cast<std::size_t>(i)]) {
      if (budget > 0.0 && timer.seconds() > budget) {
        run.timed_out = true;
        run.diameter = lb;
        return run;
      }
      lb = std::max(lb, engine.eccentricity(v));
      ++bfs_calls;
    }
    if (lb > 2 * (i - 1)) break;  // inner fringes cannot exceed lb
    ub = 2 * (i - 1);
  }
  run.diameter = lb;
  return run;
}

}  // namespace

BaselineResult ifub_diameter(const Csr& g, BaselineOptions opt) {
  const vid_t n = g.num_vertices();
  BaselineResult result;
  if (n == 0) return result;

  Timer timer;
  BfsEngine engine(g, BfsConfig{opt.parallel, opt.parallel, 0.1});
  const Components cc = connected_components(g);
  result.connected = cc.connected();

  // Process components largest-first so a timeout still covers the
  // dominant component (the one the paper's "CC diameter" comes from).
  std::vector<std::uint32_t> order(cc.count());
  for (std::uint32_t c = 0; c < cc.count(); ++c) order[c] = c;
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return cc.size[a] > cc.size[b];
  });
  std::vector<vid_t> rep(cc.count(), 0);
  std::vector<bool> seen(cc.count(), false);
  for (vid_t v = 0; v < n; ++v) {
    // Representative: highest-degree vertex of each component.
    const std::uint32_t c = cc.label[v];
    if (!seen[c] || g.degree(v) > g.degree(rep[c])) {
      rep[c] = v;
      seen[c] = true;
    }
  }

  for (const std::uint32_t c : order) {
    if (cc.size[c] <= 1) continue;  // singleton: eccentricity 0
    const IfubRun run = ifub_component(g, engine, rep[c], timer,
                                       opt.time_budget_seconds,
                                       result.bfs_calls);
    result.diameter = std::max(result.diameter, run.diameter);
    if (run.timed_out) {
      result.timed_out = true;
      break;
    }
  }
  return result;
}

}  // namespace fdiam
