// Graph-Diameter — the eccentricity-bounding exact algorithm of Akiba,
// Iwata & Kawata (2015), the paper's second main comparison code (§2, §5).
//
// A double sweep yields the initial diameter lower bound. Every further
// BFS from a vertex w produces (a) its exact eccentricity, raising the
// lower bound, and (b) via the triangle inequality
// ecc(v) <= d(v, w) + ecc(w) an upper bound for every other vertex.
// Vertices whose upper bound sinks to or below the lower bound are skipped
// ("the algorithm ... skipping vertices whose upper bounds are less than
// the lower bound of the diameter"). We evaluate the active vertex with
// the largest upper bound first, which drives the bounds together fast.
//
// The original targets directed graphs via SCC decomposition; on an
// undirected graph the decomposition degenerates to connected components,
// which is how the paper runs it ("it also works on undirected graphs in
// CSR format").

#include <algorithm>
#include <vector>

#include "baselines/baselines.hpp"
#include "bfs/bfs.hpp"
#include "util/timer.hpp"

namespace fdiam {

BaselineResult graph_diameter(const Csr& g, BaselineOptions opt) {
  const vid_t n = g.num_vertices();
  BaselineResult result;
  if (n == 0) return result;

  Timer timer;
  BfsEngine engine(g, BfsConfig{opt.parallel, opt.parallel, 0.1});
  std::vector<dist_t> dist;

  constexpr dist_t kInfinity = INT32_MAX;
  std::vector<dist_t> ub(n, kInfinity);
  dist_t lb = 0;

  // Double sweep from the highest-degree vertex.
  {
    engine.distances(g.max_degree_vertex(), dist);
    const vid_t a = engine.last_frontier()[0];
    const dist_t ecc_a = engine.distances(a, dist);
    result.bfs_calls += 2;
    lb = ecc_a;
    ub[a] = ecc_a;
    for (vid_t v = 0; v < n; ++v) {
      if (dist[v] >= 0) ub[v] = std::min(ub[v], dist[v] + ecc_a);
    }
  }
  if (engine.last_visited_count() < n) result.connected = false;

  while (true) {
    // Pick the active vertex with the largest upper bound.
    vid_t next = n;
    dist_t best = lb;
    for (vid_t v = 0; v < n; ++v) {
      if (ub[v] > best) {
        best = ub[v];
        next = v;
      }
    }
    if (next == n) break;  // every vertex satisfies ub <= lb: done
    if (opt.time_budget_seconds > 0.0 &&
        timer.seconds() > opt.time_budget_seconds) {
      result.timed_out = true;
      break;
    }

    const dist_t ecc = engine.distances(next, dist);
    ++result.bfs_calls;
    lb = std::max(lb, ecc);
    ub[next] = ecc;
    for (vid_t v = 0; v < n; ++v) {
      if (dist[v] >= 0) ub[v] = std::min(ub[v], dist[v] + ecc);
    }
    // Vertices in other components keep ub = infinity until one of their
    // own vertices is evaluated, so disconnected inputs are covered too.
    if (engine.last_visited_count() < n) result.connected = false;
  }

  result.diameter = lb;
  return result;
}

}  // namespace fdiam
