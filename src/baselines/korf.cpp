// Korf (2021): exact diameter via partial breadth-first searches over a
// shrinking candidate set (related work §2).
//
// Observation: a larger eccentricity can only be realized between two
// vertices that have not yet been BFS starting vertices. Keeping the set S
// of not-yet-started vertices, the BFS from v may terminate as soon as
// every member of S has been visited — only distances to S members can
// still improve the diameter — and v is removed from S afterwards. The
// paper's authors evaluated this early termination for F-Diam but rejected
// it because it conflicts with Winnowing; we keep it as an extra baseline.

#include <algorithm>
#include <vector>

#include "baselines/baselines.hpp"
#include "bfs/frontier.hpp"
#include "bfs/visited.hpp"
#include "util/timer.hpp"

namespace fdiam {

BaselineResult korf_diameter(const Csr& g, BaselineOptions opt) {
  const vid_t n = g.num_vertices();
  BaselineResult result;
  if (n == 0) return result;

  Timer timer;
  EpochVisited visited(n);
  std::vector<vid_t> cur, next;
  std::vector<std::uint8_t> in_set(n, 1);
  vid_t set_size = n;
  dist_t diameter = 0;

  for (vid_t s = 0; s < n; ++s) {
    if (opt.time_budget_seconds > 0.0 &&
        timer.seconds() > opt.time_budget_seconds) {
      result.timed_out = true;
      break;
    }
    ++result.bfs_calls;

    visited.new_epoch();
    visited.visit(s);
    // Members of S still to find in this traversal (excluding the source).
    vid_t remaining = set_size - (in_set[s] ? 1 : 0);

    cur.clear();
    cur.push_back(s);
    dist_t level = 0;
    vid_t reached = 1;
    while (!cur.empty() && remaining > 0) {
      ++level;
      next.clear();
      for (const vid_t v : cur) {
        for (const vid_t w : g.neighbors(v)) {
          if (!visited.is_visited(w)) {
            visited.visit(w);
            ++reached;
            if (in_set[w]) {
              --remaining;
              diameter = std::max(diameter, level);
            }
            next.push_back(w);
          }
        }
      }
      cur.swap(next);
    }
    if (remaining > 0 && reached < n) result.connected = false;

    if (in_set[s]) {
      in_set[s] = 0;
      --set_size;
    }
  }

  result.diameter = diameter;
  return result;
}

}  // namespace fdiam
