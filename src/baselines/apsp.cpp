// Naive all-pairs diameter: one full BFS per vertex, parallelized over
// sources. This is the O(nm) approach the paper's introduction argues is
// impractical for large graphs — here it provides the exact ground truth
// the test suite validates every other algorithm against.

#include <algorithm>
#include <atomic>

#include "baselines/baselines.hpp"
#include "bfs/bfs.hpp"
#include "util/timer.hpp"

namespace fdiam {

BaselineResult apsp_diameter(const Csr& g, BaselineOptions opt) {
  const vid_t n = g.num_vertices();
  BaselineResult result;
  if (n == 0) return result;

  Timer timer;
  std::atomic<dist_t> diameter{0};
  std::atomic<bool> disconnected{false};
  std::atomic<bool> timed_out{false};
  std::atomic<std::uint64_t> calls{0};

#pragma omp parallel if (opt.parallel)
  {
    std::vector<dist_t> dist;  // per-thread scratch
#pragma omp for schedule(dynamic, 16)
    for (std::int64_t vi = 0; vi < static_cast<std::int64_t>(n); ++vi) {
      if (timed_out.load(std::memory_order_relaxed)) continue;
      if (opt.time_budget_seconds > 0.0 &&
          timer.seconds() > opt.time_budget_seconds) {
        timed_out.store(true, std::memory_order_relaxed);
        continue;
      }
      const auto v = static_cast<vid_t>(vi);
      const dist_t ecc = bfs_distances_serial(g, v, dist);
      calls.fetch_add(1, std::memory_order_relaxed);

      dist_t seen = diameter.load(std::memory_order_relaxed);
      while (ecc > seen &&
             !diameter.compare_exchange_weak(seen, ecc,
                                             std::memory_order_relaxed)) {
      }
      if (!disconnected.load(std::memory_order_relaxed) &&
          std::count(dist.begin(), dist.end(), kUnreached) > 0) {
        disconnected.store(true, std::memory_order_relaxed);
      }
    }
  }

  result.diameter = diameter.load();
  result.connected = !disconnected.load();
  result.timed_out = timed_out.load();
  result.bfs_calls = calls.load();
  return result;
}

}  // namespace fdiam
