#include "util/rng.hpp"

namespace fdiam {

std::uint64_t Rng::below(std::uint64_t bound) {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless bounded generation.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

}  // namespace fdiam
