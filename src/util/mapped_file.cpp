#include "util/mapped_file.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#if defined(__linux__) || defined(__APPLE__)
#define FDIAM_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#include <cstdio>
#endif

#include "util/memory.hpp"

namespace fdiam::util {

namespace {

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw std::runtime_error(what + " " + path + ": " + std::strerror(errno));
}

}  // namespace

MappedFile& MappedFile::operator=(MappedFile&& o) noexcept {
  if (this != &o) {
    reset();
    data_ = std::exchange(o.data_, nullptr);
    size_ = std::exchange(o.size_, 0);
    mapped_ = std::exchange(o.mapped_, false);
    fallback_ = std::move(o.fallback_);
    path_ = std::move(o.path_);
  }
  return *this;
}

MappedFile MappedFile::open(const std::filesystem::path& path,
                            Options options) {
  MappedFile m;
  m.path_ = path.string();
#ifdef FDIAM_HAVE_MMAP
  const int fd = ::open(m.path_.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) fail("cannot open", m.path_);
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    fail("cannot stat", m.path_);
  }
  m.size_ = static_cast<std::size_t>(st.st_size);
  if (m.size_ == 0) {
    ::close(fd);
    return m;
  }
  void* p = ::mmap(nullptr, m.size_, PROT_READ, MAP_PRIVATE, fd, 0);
  if (p != MAP_FAILED) {
    m.data_ = static_cast<const std::byte*>(p);
    m.mapped_ = true;
#ifdef MADV_SEQUENTIAL
    if (options.sequential) (void)::madvise(p, m.size_, MADV_SEQUENTIAL);
#endif
#ifdef MADV_WILLNEED
    if (options.willneed) (void)::madvise(p, m.size_, MADV_WILLNEED);
#endif
    add_mapped_bytes(m.size_);
    ::close(fd);  // the mapping keeps its own reference
    return m;
  }
  if (!options.allow_fallback) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    fail("cannot mmap", m.path_);
  }
  // Graceful fallback: mmap refused (filesystem without mmap support,
  // address-space exhaustion) — same bytes, heap-owned, zero-copy lost.
  m.fallback_ = std::make_unique<std::byte[]>(m.size_);
  std::size_t off = 0;
  while (off < m.size_) {
    const ssize_t got =
        ::read(fd, m.fallback_.get() + off, m.size_ - off);
    if (got < 0 && errno == EINTR) continue;
    if (got <= 0) {
      const int saved = errno;
      ::close(fd);
      errno = saved == 0 ? EIO : saved;
      fail("short read of", m.path_);
    }
    off += static_cast<std::size_t>(got);
  }
  ::close(fd);
  m.data_ = m.fallback_.get();
  m.mapped_ = false;
  return m;
#else
  (void)options;
  std::FILE* f = std::fopen(m.path_.c_str(), "rb");
  if (f == nullptr) fail("cannot open", m.path_);
  std::fseek(f, 0, SEEK_END);
  const long end = std::ftell(f);
  if (end < 0) {
    std::fclose(f);
    fail("cannot stat", m.path_);
  }
  m.size_ = static_cast<std::size_t>(end);
  std::rewind(f);
  m.fallback_ = std::make_unique<std::byte[]>(m.size_);
  if (m.size_ != 0 &&
      std::fread(m.fallback_.get(), 1, m.size_, f) != m.size_) {
    std::fclose(f);
    fail("short read of", m.path_);
  }
  std::fclose(f);
  m.data_ = m.size_ ? m.fallback_.get() : nullptr;
  return m;
#endif
}

void MappedFile::drop_cache() const {
#if defined(FDIAM_HAVE_MMAP) && defined(MADV_DONTNEED)
  if (mapped_ && data_ != nullptr && size_ != 0) {
    (void)::madvise(const_cast<std::byte*>(data_), size_, MADV_DONTNEED);
  }
#endif
}

void MappedFile::reset() {
#ifdef FDIAM_HAVE_MMAP
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<std::byte*>(data_), size_);
    sub_mapped_bytes(size_);
  }
#endif
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
  fallback_.reset();
  path_.clear();
}

}  // namespace fdiam::util
