#include "util/cli.hpp"

#include <cstdlib>
#include <sstream>

namespace fdiam {

void Cli::add_option(std::string name, std::string help, std::string def) {
  decls_[std::move(name)] = Decl{std::move(help), std::move(def), false};
}

void Cli::add_flag(std::string name, std::string help) {
  decls_[std::move(name)] = Decl{std::move(help), "", true};
}

bool Cli::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string key = arg.substr(2);
    std::string value;
    bool have_value = false;
    if (auto eq = key.find('='); eq != std::string::npos) {
      value = key.substr(eq + 1);
      key = key.substr(0, eq);
      have_value = true;
    }
    auto it = decls_.find(key);
    if (it == decls_.end()) {
      error_ = "unknown option --" + key;
      return false;
    }
    if (it->second.is_flag) {
      values_[key] = have_value ? value : "true";
    } else if (have_value) {
      values_[key] = value;
    } else if (i + 1 < argc) {
      values_[key] = argv[++i];
    } else {
      error_ = "option --" + key + " requires a value";
      return false;
    }
  }
  return true;
}

bool Cli::has(const std::string& key) const { return values_.count(key) > 0; }

std::string Cli::get(const std::string& key, const std::string& def) const {
  auto it = values_.find(key);
  return it == values_.end() ? def : it->second;
}

std::int64_t Cli::get_int(const std::string& key, std::int64_t def) const {
  auto it = values_.find(key);
  return it == values_.end() ? def : std::strtoll(it->second.c_str(), nullptr, 10);
}

double Cli::get_double(const std::string& key, double def) const {
  auto it = values_.find(key);
  return it == values_.end() ? def : std::strtod(it->second.c_str(), nullptr);
}

bool Cli::get_bool(const std::string& key, bool def) const {
  auto it = values_.find(key);
  if (it == values_.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::string Cli::usage(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [options]\n";
  for (const auto& [name, decl] : decls_) {
    os << "  --" << name;
    if (!decl.is_flag) os << " <value>";
    os << "\n      " << decl.help;
    if (!decl.def.empty()) os << " (default: " << decl.def << ")";
    os << "\n";
  }
  return os.str();
}

}  // namespace fdiam
