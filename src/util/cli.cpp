#include "util/cli.hpp"

#include <charconv>
#include <sstream>
#include <stdexcept>

namespace fdiam {

namespace {

// Typed accessors validate the WHOLE value with std::from_chars and throw
// naming the flag. The old std::strtoll path silently read "--threads=abc"
// as 0 and "--seed=1e9" as 1 — a mistyped benchmark flag produced a wrong
// run instead of an error.
[[noreturn]] void bad_value(const std::string& key, const std::string& value,
                            const char* expected) {
  throw std::runtime_error("invalid value for --" + key + ": '" + value +
                           "' is not " + expected);
}

}  // namespace

void Cli::add_option(std::string name, std::string help, std::string def) {
  decls_[std::move(name)] = Decl{std::move(help), std::move(def), false};
}

void Cli::add_flag(std::string name, std::string help) {
  decls_[std::move(name)] = Decl{std::move(help), "", true};
}

bool Cli::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string key = arg.substr(2);
    std::string value;
    bool have_value = false;
    if (auto eq = key.find('='); eq != std::string::npos) {
      value = key.substr(eq + 1);
      key = key.substr(0, eq);
      have_value = true;
    }
    auto it = decls_.find(key);
    if (it == decls_.end()) {
      error_ = "unknown option --" + key;
      return false;
    }
    if (it->second.is_flag) {
      values_[key] = have_value ? value : "true";
    } else if (have_value) {
      values_[key] = value;
    } else if (i + 1 < argc) {
      values_[key] = argv[++i];
    } else {
      error_ = "option --" + key + " requires a value";
      return false;
    }
  }
  return true;
}

bool Cli::has(const std::string& key) const { return values_.count(key) > 0; }

std::string Cli::get(const std::string& key, const std::string& def) const {
  auto it = values_.find(key);
  return it == values_.end() ? def : it->second;
}

std::int64_t Cli::get_int(const std::string& key, std::int64_t def) const {
  auto it = values_.find(key);
  if (it == values_.end()) return def;
  std::string_view sv = it->second;
  if (!sv.empty() && sv.front() == '+') sv.remove_prefix(1);  // from_chars
  std::int64_t out = 0;
  const char* first = sv.data();
  const char* last = sv.data() + sv.size();
  const auto [ptr, ec] = std::from_chars(first, last, out);
  if (sv.empty() || ec == std::errc::result_out_of_range) {
    bad_value(key, it->second, "a 64-bit integer");
  }
  if (ec != std::errc() || ptr != last) {
    bad_value(key, it->second, "an integer (trailing characters?)");
  }
  return out;
}

double Cli::get_double(const std::string& key, double def) const {
  auto it = values_.find(key);
  if (it == values_.end()) return def;
  std::string_view sv = it->second;
  if (!sv.empty() && sv.front() == '+') sv.remove_prefix(1);
  double out = 0.0;
  const char* first = sv.data();
  const char* last = sv.data() + sv.size();
  const auto [ptr, ec] = std::from_chars(first, last, out);
  if (sv.empty() || ec != std::errc() || ptr != last) {
    bad_value(key, it->second, "a number");
  }
  return out;
}

bool Cli::get_bool(const std::string& key, bool def) const {
  auto it = values_.find(key);
  if (it == values_.end()) return def;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  // "--progress=banana" used to silently mean false.
  bad_value(key, v, "a boolean (true/false/1/0/yes/no/on/off)");
}

std::string Cli::usage(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [options]\n";
  for (const auto& [name, decl] : decls_) {
    os << "  --" << name;
    if (!decl.is_flag) os << " <value>";
    os << "\n      " << decl.help;
    if (!decl.def.empty()) os << " (default: " << decl.def << ")";
    os << "\n";
  }
  return os.str();
}

}  // namespace fdiam
