#pragma once
// Column-aligned plain-text table printer. The benchmark harnesses use it
// to emit rows in the same layout as the paper's tables, plus a CSV dump
// for downstream plotting.

#include <iosfwd>
#include <string>
#include <vector>

namespace fdiam {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append a data row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Render as an aligned text table (first column left-aligned, the rest
  /// right-aligned, in the style of the paper's tables).
  void print(std::ostream& os) const;

  /// Render as CSV (quoting cells that contain commas or quotes).
  void print_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  /// Raw cell access for machine-readable exports (the bench harness's
  /// JSON report serializes tables through these).
  [[nodiscard]] const std::vector<std::string>& header() const {
    return header_;
  }
  [[nodiscard]] const std::vector<std::vector<std::string>>& data() const {
    return rows_;
  }

  // Formatting helpers for cells.
  static std::string fmt_double(double v, int precision = 3);
  static std::string fmt_sci(double v, int precision = 2);
  static std::string fmt_percent(double fraction, int precision = 2);
  /// Groups digits with commas: 1234567 -> "1,234,567".
  static std::string fmt_count(std::uint64_t v);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fdiam
