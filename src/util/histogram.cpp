#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace fdiam {

namespace {

/// Shared inclusive-upper-bound table. Bucket 0 absorbs everything
/// <= kMinValue; the linear buckets for octave `o`, sub-bucket `s`
/// cover (le(prev), kMinValue * 2^o * (1 + (s+1)/kSubBuckets)]; the
/// final bucket is the +inf overflow. Built once, read-only afterwards,
/// so lookup and binary search are safe from any thread.
const std::array<double, Histogram::kBucketCount>& bounds_table() {
  static const std::array<double, Histogram::kBucketCount> table = [] {
    std::array<double, Histogram::kBucketCount> t{};
    t[0] = Histogram::kMinValue;
    std::size_t i = 1;
    for (int o = 0; o < Histogram::kOctaves; ++o) {
      const double base = std::ldexp(Histogram::kMinValue, o);
      for (int s = 0; s < Histogram::kSubBuckets; ++s) {
        t[i++] = base * (1.0 + static_cast<double>(s + 1) /
                                   Histogram::kSubBuckets);
      }
    }
    // The last linear bound above equals 2^kOctaves * kMinValue; the
    // overflow bucket replaces it with +inf so every value has a home.
    t[Histogram::kBucketCount - 1] =
        std::numeric_limits<double>::infinity();
    return t;
  }();
  return table;
}

/// fetch_add for atomic<double> predates C++20 on some standard
/// libraries; a CAS loop keeps the accumulate portable.
void atomic_add(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

double Histogram::bucket_le(std::size_t i) { return bounds_table()[i]; }

std::size_t Histogram::bucket_index(double v) {
  const auto& t = bounds_table();
  if (!(v > t[0])) return 0;  // underflow; NaN compares false and lands here
  // First bound >= v: exact "le" semantics, immune to the rounding drift
  // a closed-form log/frexp index would accumulate at bucket boundaries.
  const auto it = std::lower_bound(t.begin(), t.end(), v);
  return static_cast<std::size_t>(it - t.begin());
}

void Histogram::record(double v) {
  buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, v);
  if (!any_.load(std::memory_order_acquire)) {
    // First record wins the init race via CAS against the 0.0 defaults:
    // seed with +/-inf semantics by treating "not yet any" as both
    // extremes. A plain store would race with a concurrent min/max.
    double expected = 0.0;
    min_.compare_exchange_strong(expected,
                                 std::numeric_limits<double>::infinity(),
                                 std::memory_order_relaxed);
    expected = 0.0;
    max_.compare_exchange_strong(expected,
                                 -std::numeric_limits<double>::infinity(),
                                 std::memory_order_relaxed);
    any_.store(true, std::memory_order_release);
  }
  atomic_min(min_, v);
  atomic_max(max_, v);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  if (s.count > 0) {
    s.min = min_.load(std::memory_order_relaxed);
    s.max = max_.load(std::memory_order_relaxed);
    if (std::isinf(s.min)) s.min = 0.0;  // raced with the very first record
    if (std::isinf(s.max)) s.max = 0.0;
  }
  s.buckets.reserve(16);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    const std::uint64_t c = buckets_[i].load(std::memory_order_relaxed);
    if (c == 0) continue;
    s.buckets.push_back({bucket_le(i), c});
    seen += c;
  }
  // A snapshot racing active writers can see count_ ahead of the bucket
  // it lands in (or behind it); pin count to the buckets actually seen
  // so downstream invariants (sum of buckets == count) always hold.
  s.count = seen;
  return s;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
  any_.store(false, std::memory_order_relaxed);
}

double HistogramSnapshot::quantile(double q) const {
  if (count == 0 || buckets.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count)));
  std::uint64_t cum = 0;
  double le = buckets.back().le;
  for (const auto& b : buckets) {
    cum += b.count;
    if (cum >= target) {
      le = b.le;
      break;
    }
  }
  // The bucket upper bound can overshoot the true extreme (and is +inf
  // for the overflow bucket); the recorded min/max are exact, so clamp.
  return std::clamp(le, min, max);
}

}  // namespace fdiam
