#pragma once
// Fundamental integer types shared by every module.
//
// Vertices are 32-bit (the paper's largest input, europe_osm, has 51M
// vertices) while edge offsets are 64-bit so CSR row offsets cannot
// overflow on graphs with more than 2^31 directed edges (uk-2002 has 523M).

#include <cstdint>

namespace fdiam {

/// Vertex identifier. Valid vertices are [0, n).
using vid_t = std::uint32_t;

/// Edge-offset type used for CSR row offsets and edge counts.
using eid_t = std::uint64_t;

/// Distance / eccentricity / level type. Signed so sentinels can be
/// negative; INT32_MAX comfortably exceeds any achievable path length.
using dist_t = std::int32_t;

/// Sentinel meaning "vertex not reached" in distance arrays.
inline constexpr dist_t kUnreached = -1;

}  // namespace fdiam
