#include "util/memory.hpp"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <mutex>

#if defined(__linux__)
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace fdiam::util {

namespace {

MemoryPolicy g_policy;
std::atomic<std::uint64_t> g_mapped_bytes{0};

#if defined(__linux__)
// mbind(2) policy constants, defined locally so the build needs neither
// libnuma nor <numaif.h> (which only libnuma-dev ships).
constexpr int kMpolInterleave = 3;
constexpr unsigned kMpolMfMove = 1u << 1;  // migrate already-touched pages

long sys_mbind(void* addr, unsigned long len, int mode,
               const unsigned long* nodemask, unsigned long maxnode,
               unsigned flags) {
  return ::syscall(SYS_mbind, addr, len, mode, nodemask, maxnode, flags);
}
#endif

NumaTopology detect_topology() {
  NumaTopology topo;
#if defined(__linux__)
  // Count node<N> directories. The "possible" file is authoritative but
  // needs range parsing; counting online node dirs is simpler and what
  // placement actually cares about.
  for (int n = 0;; ++n) {
    char path[64];
    std::snprintf(path, sizeof path, "/sys/devices/system/node/node%d", n);
    if (::access(path, F_OK) != 0) {
      if (n > 0) {
        topo.nodes = n;
        topo.detected = true;
      }
      break;
    }
  }
#endif
  return topo;
}

}  // namespace

bool parse_numa_mode(std::string_view name, NumaMode& out) {
  if (name == "none") out = NumaMode::kNone;
  else if (name == "interleave") out = NumaMode::kInterleave;
  else if (name == "local") out = NumaMode::kLocal;
  else return false;
  return true;
}

bool parse_huge_page_mode(std::string_view name, HugePageMode& out) {
  if (name == "auto") out = HugePageMode::kAuto;
  else if (name == "on") out = HugePageMode::kOn;
  else if (name == "off") out = HugePageMode::kOff;
  else return false;
  return true;
}

const NumaTopology& numa_topology() {
  static const NumaTopology topo = detect_topology();
  return topo;
}

void set_memory_policy(MemoryPolicy policy) { g_policy = policy; }
const MemoryPolicy& memory_policy() { return g_policy; }

std::size_t place_range(void* p, std::size_t bytes) {
#if defined(__linux__)
  const MemoryPolicy& policy = g_policy;
  if (policy.numa == NumaMode::kNone &&
      policy.huge_pages == HugePageMode::kAuto) {
    return 0;
  }
  static const auto page = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  auto addr = reinterpret_cast<std::uintptr_t>(p);
  // Shrink inward: the allocation may share its first/last page with
  // unrelated heap objects, and madvise/mbind operate on whole pages.
  const std::uintptr_t begin = (addr + page - 1) & ~(page - 1);
  const std::uintptr_t end = (addr + bytes) & ~(page - 1);
  if (end <= begin) return 0;
  void* base = reinterpret_cast<void*>(begin);
  const std::size_t len = end - begin;

  if (policy.huge_pages == HugePageMode::kOn) {
#ifdef MADV_HUGEPAGE
    (void)::madvise(base, len, MADV_HUGEPAGE);
#endif
  } else if (policy.huge_pages == HugePageMode::kOff) {
#ifdef MADV_NOHUGEPAGE
    (void)::madvise(base, len, MADV_NOHUGEPAGE);
#endif
  }

  if (policy.numa == NumaMode::kInterleave && numa_topology().nodes > 1) {
    // All detected nodes, round-robin, migrating pages first-touched on
    // one node before the policy was applied. EPERM/ENOSYS (seccomp,
    // CAP_SYS_NICE-less move) degrade to the kernel default silently:
    // placement is advisory, never fatal.
    const int nodes = numa_topology().nodes;
    unsigned long mask[16] = {};
    for (int n = 0; n < nodes && n < 1024; ++n) {
      mask[n / (8 * sizeof(unsigned long))] |=
          1UL << (n % (8 * sizeof(unsigned long)));
    }
    (void)sys_mbind(base, len, kMpolInterleave, mask,
                    sizeof(mask) * 8, kMpolMfMove);
  }
  // kLocal is first-touch — the kernel default; recording it in the run
  // report is the whole point, no syscall needed.
  return len;
#else
  (void)p;
  (void)bytes;
  return 0;
#endif
}

bool reset_peak_rss() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/clear_refs", "we");
  if (f == nullptr) return false;
  const bool ok = std::fputs("5\n", f) >= 0;
  return (std::fclose(f) == 0) && ok;
#else
  return false;
#endif
}

RssSample read_rss() {
  RssSample s;
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/status", "re");
  if (f == nullptr) return s;
  char line[256];
  while (std::fgets(line, sizeof line, f) != nullptr) {
    unsigned long long kb = 0;
    if (std::sscanf(line, "VmRSS: %llu kB", &kb) == 1) {
      s.total = kb * 1024;
      s.available = true;
    } else if (std::sscanf(line, "RssAnon: %llu kB", &kb) == 1) {
      s.anon = kb * 1024;
    } else if (std::sscanf(line, "VmHWM: %llu kB", &kb) == 1) {
      s.peak = kb * 1024;
    }
  }
  std::fclose(f);
#endif
  return s;
}

std::uint64_t mapped_bytes() {
  return g_mapped_bytes.load(std::memory_order_relaxed);
}
void add_mapped_bytes(std::uint64_t bytes) {
  g_mapped_bytes.fetch_add(bytes, std::memory_order_relaxed);
}
void sub_mapped_bytes(std::uint64_t bytes) {
  g_mapped_bytes.fetch_sub(bytes, std::memory_order_relaxed);
}

}  // namespace fdiam::util
