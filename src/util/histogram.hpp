#pragma once
// Log-linear (HDR-style) histogram for latency and size distributions.
//
// The run reports and OpenMetrics exposition need *distributions* — a
// handful of high-eccentricity BFS calls dominate the tail, which stage
// totals cannot show — so this records values into buckets whose upper
// bounds grow geometrically: kSubBuckets linear sub-buckets per octave
// (power of two), giving a worst-case relative quantile error of
// 1/kSubBuckets (6.25%) over the whole range [kMinValue, 2^kOctaves *
// kMinValue) with a fixed 8 KiB footprint and no allocation on the
// record path.
//
// The type lives in util/ (not obs/) for the same layering reason as
// UtilCollector in util/parallel.hpp: the BFS engines and solver stages
// record into it, and they must not depend on the observability layer —
// obs/metrics/ only registers, formats, and exports these numbers.
//
// Thread-safety: record() is lock-free (relaxed atomic adds plus CAS
// loops for min/max), so the candidate-batch per-thread BFS engines can
// share one histogram. snapshot() is a racy-but-consistent-enough read:
// counters are monotone, so a snapshot taken while writers are active
// can undercount the newest records but never tears a bucket.

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

namespace fdiam {

/// Value copy of a histogram for serialization: non-empty buckets with
/// their inclusive upper bounds, plus the moment aggregates.
struct HistogramSnapshot {
  struct Bucket {
    double le = 0.0;          ///< inclusive upper bound; +inf for overflow
    std::uint64_t count = 0;  ///< records in (previous le, le]
  };
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< 0 when empty
  double max = 0.0;  ///< 0 when empty
  std::vector<Bucket> buckets;  ///< non-empty buckets, ascending le

  /// Quantile estimate for q in [0, 1]: the upper bound of the bucket
  /// holding the ceil(q * count)-th smallest record, clamped into
  /// [min, max] so p99 never exceeds the observed maximum. 0 when empty.
  [[nodiscard]] double quantile(double q) const;
};

class Histogram {
 public:
  static constexpr int kSubBuckets = 16;   ///< linear buckets per octave
  static constexpr int kOctaves = 63;      ///< kMinValue << 63 ~ 9.2e9
  static constexpr double kMinValue = 1e-9;
  /// underflow + kOctaves * kSubBuckets log-linear + overflow.
  static constexpr std::size_t kBucketCount =
      2 + static_cast<std::size_t>(kOctaves) * kSubBuckets;

  /// Record one value. Values <= kMinValue (and NaN) land in the
  /// underflow bucket; values beyond the last octave in the overflow
  /// bucket. Lock-free; callable concurrently from any thread.
  void record(double v);

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const {
    return sum_.load(std::memory_order_relaxed);
  }

  /// Inclusive upper bound of bucket `i` (the shared static bound table;
  /// last entry is +inf).
  [[nodiscard]] static double bucket_le(std::size_t i);
  /// Index of the bucket that record(v) increments.
  [[nodiscard]] static std::size_t bucket_index(double v);

  [[nodiscard]] HistogramSnapshot snapshot() const;

  /// Zero every counter (tests isolating runs that share a registry).
  void reset();

 private:
  std::array<std::atomic<std::uint64_t>, kBucketCount> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  // Encoded as raw doubles under CAS; min_ starts at +inf, max_ at -inf.
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
  std::atomic<bool> any_{false};
};

}  // namespace fdiam
