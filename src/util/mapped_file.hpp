#pragma once
// Read-only memory-mapped file with RAII lifetime — the zero-copy
// substrate of the out-of-core graph tier (docs/SCALING.md).
//
// A MappedFile owns one open()+mmap() of an entire file. The mapping is
// MAP_PRIVATE read-only, advised MADV_WILLNEED (start readahead now) and
// optionally MADV_SEQUENTIAL; pages live in the page cache, so a solve
// over a mapped CSR keeps its *anonymous* RSS at O(n) scratch while the
// graph bytes stay evictable. When mmap is unavailable (ENODEV on weird
// filesystems, ENOMEM address-space pressure, non-Linux hosts) the
// wrapper degrades to read()ing the file into an anonymous buffer — the
// data() contract is identical, only the zero-copy property is lost and
// `mapped()` reports false.
//
// Instances are movable, not copyable; share one via std::shared_ptr
// (Csr does) when several views must keep the mapping alive.

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>

namespace fdiam::util {

class MappedFile {
 public:
  struct Options {
    bool sequential = true;   ///< MADV_SEQUENTIAL readahead hint
    bool willneed = true;     ///< MADV_WILLNEED prefetch hint
    bool allow_fallback = true;  ///< read() into heap when mmap fails
  };

  MappedFile() = default;
  ~MappedFile() { reset(); }

  MappedFile(MappedFile&& o) noexcept { *this = std::move(o); }
  MappedFile& operator=(MappedFile&& o) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// Map `path` read-only. Throws std::runtime_error (with errno detail)
  /// when the file cannot be opened/stat'ed, or when mapping fails and
  /// the fallback is disabled or also fails. An empty file maps to
  /// size() == 0 with a null data pointer.
  static MappedFile open(const std::filesystem::path& path, Options options);
  static MappedFile open(const std::filesystem::path& path) {
    return open(path, Options{});
  }

  [[nodiscard]] const std::byte* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] const std::string& path() const { return path_; }

  /// True when the bytes are a real file mapping (zero-copy); false for
  /// the read() fallback (bytes were copied into anonymous memory).
  [[nodiscard]] bool mapped() const { return mapped_; }

  /// Drop the page-cache residency hint for the whole range
  /// (MADV_DONTNEED on the mapping). Used by the scale bench to measure
  /// cold-cache loads; advisory, no-op on the fallback buffer.
  void drop_cache() const;

  /// Unmap/free now (also called by the destructor).
  void reset();

 private:
  const std::byte* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;
  std::unique_ptr<std::byte[]> fallback_;  // owns bytes when !mapped_
  std::string path_;
};

}  // namespace fdiam::util
