#pragma once
// Memory-system placement for the out-of-core tier (docs/SCALING.md).
//
// BFS on massive sparse graphs is DRAM-latency/bandwidth bound, so WHERE
// the big arrays live is a first-order performance knob: 2 MB huge pages
// cut TLB misses on the multi-GB CSR, and NUMA interleaving spreads the
// bandwidth demand of a socket-spanning OpenMP team across memory
// controllers. This module provides:
//
//  * topology detection from sysfs (no libnuma dependency — the mbind
//    policy call is issued as a raw syscall and degrades gracefully on
//    kernels/containers that refuse it);
//  * a process-wide MemoryPolicy (set once from the CLI knobs
//    --numa interleave|local|none and --huge-pages auto|on|off);
//  * place_range()/place(): apply the policy to an existing allocation
//    (madvise(MADV_HUGEPAGE/NOHUGEPAGE) + mbind(MPOL_INTERLEAVE));
//    callers sprinkle these on the big arrays (CSR, visited/distance/
//    frontier) right after they are sized;
//  * RSS observability used by the scale bench: peak-RSS reset
//    (/proc/self/clear_refs), anonymous-RSS reading (RssAnon), and a
//    process-wide counter of mmap()ed graph bytes so run reports can
//    separate "resident because mapped" from "resident because copied".
//
// Everything here is advisory: no call ever fails a run. On non-Linux or
// locked-down kernels the functions are no-ops that report unavailable.

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace fdiam::util {

/// NUMA placement mode for the big arrays.
enum class NumaMode : std::uint8_t {
  kNone = 0,    ///< leave the kernel's default policy alone
  kInterleave,  ///< round-robin pages across all nodes (bandwidth-bound BFS)
  kLocal,       ///< first-touch locality (default kernel behavior, recorded)
};

/// Transparent-huge-page mode for the big arrays.
enum class HugePageMode : std::uint8_t {
  kAuto = 0,  ///< leave the system THP setting alone
  kOn,        ///< madvise(MADV_HUGEPAGE) every placed range
  kOff,       ///< madvise(MADV_NOHUGEPAGE) every placed range
};

constexpr std::string_view numa_mode_name(NumaMode m) {
  switch (m) {
    case NumaMode::kNone: return "none";
    case NumaMode::kInterleave: return "interleave";
    case NumaMode::kLocal: return "local";
  }
  return "unknown";
}

constexpr std::string_view huge_page_mode_name(HugePageMode m) {
  switch (m) {
    case HugePageMode::kAuto: return "auto";
    case HugePageMode::kOn: return "on";
    case HugePageMode::kOff: return "off";
  }
  return "unknown";
}

/// Parse the CLI spellings; returns false on an unknown name.
bool parse_numa_mode(std::string_view name, NumaMode& out);
bool parse_huge_page_mode(std::string_view name, HugePageMode& out);

/// NUMA topology snapshot from /sys/devices/system/node. On non-NUMA
/// machines (or masked sysfs) `nodes == 1` and interleaving is a no-op.
struct NumaTopology {
  int nodes = 1;
  /// True when /sys/devices/system/node was readable (vs the fallback).
  bool detected = false;
};

/// Detect (and cache) the topology. Thread-safe.
const NumaTopology& numa_topology();

/// Process-wide placement policy applied by place_range().
struct MemoryPolicy {
  NumaMode numa = NumaMode::kNone;
  HugePageMode huge_pages = HugePageMode::kAuto;
};

/// Install / read the process-wide policy. Not synchronized — set it once
/// at startup (the CLI does) before solver threads exist.
void set_memory_policy(MemoryPolicy policy);
const MemoryPolicy& memory_policy();

/// Apply the current policy to [p, p + bytes): the range is shrunk inward
/// to page boundaries, madvise'd per the huge-page mode, and mbind'ed
/// MPOL_INTERLEAVE (with page migration) when interleaving across > 1
/// node. Ranges smaller than one page, a kNone/kAuto policy pair, and
/// EPERM/ENOSYS from the kernel are all silent no-ops. Returns the number
/// of bytes the policy was actually applied to (0 when nothing was done).
std::size_t place_range(void* p, std::size_t bytes);

/// Convenience overload for contiguous containers (vector, string).
template <typename Container>
std::size_t place(Container& c) {
  return c.empty() ? 0
                   : place_range(static_cast<void*>(c.data()),
                                 c.size() * sizeof(typename Container::value_type));
}

/// Reset the kernel's peak-RSS watermark (VmHWM) by writing "5" to
/// /proc/self/clear_refs, so per-phase peaks can be measured inside one
/// process. Returns false when the file is not writable (old kernels,
/// restricted /proc) — callers must treat the subsequent watermark as
/// process-lifetime, not per-phase.
bool reset_peak_rss();

/// Current resident-set sizes from /proc/self/status, in bytes.
/// `anon` (RssAnon) is the honest zero-copy metric: file-backed mapped
/// graph pages count in `total` but not in `anon`. Zeros when /proc is
/// unavailable (`available == false`).
struct RssSample {
  bool available = false;
  std::uint64_t total = 0;  ///< VmRSS
  std::uint64_t anon = 0;   ///< RssAnon (0 on pre-4.5 kernels)
  std::uint64_t peak = 0;   ///< VmHWM
};
RssSample read_rss();

/// Process-wide counter of bytes currently mapped through MappedFile
/// (util/mapped_file.hpp); run reports record it as memory.mapped_bytes.
std::uint64_t mapped_bytes();
/// Internal: MappedFile calls these from map/unmap.
void add_mapped_bytes(std::uint64_t bytes);
void sub_mapped_bytes(std::uint64_t bytes);

}  // namespace fdiam::util
