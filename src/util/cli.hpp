#pragma once
// Minimal command-line argument parser used by the bench harnesses and
// examples. Supports `--flag`, `--key value`, and `--key=value` forms plus
// positional arguments, with typed accessors and a generated usage string.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace fdiam {

class Cli {
 public:
  /// Declare an option before parse() so it appears in usage(). `help`
  /// describes the option; `def` is rendered as the default.
  void add_option(std::string name, std::string help, std::string def = "");
  void add_flag(std::string name, std::string help);

  /// Parse argv. Returns false (and fills error()) on unknown options or a
  /// missing value. `--help` sets help_requested().
  bool parse(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& def = "") const;

  /// Typed accessors return `def` when the option was not given. A value
  /// that was given but does not parse COMPLETELY as the requested type
  /// (trailing garbage, out of range, "1e9" for an int, "banana" for a
  /// bool) throws std::runtime_error naming the flag — it is never
  /// silently coerced to 0/false.
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t def) const;
  [[nodiscard]] double get_double(const std::string& key, double def) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool def = false) const;

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }
  [[nodiscard]] const std::string& error() const { return error_; }
  [[nodiscard]] bool help_requested() const { return help_requested_; }
  [[nodiscard]] std::string usage(const std::string& program) const;

 private:
  struct Decl {
    std::string help;
    std::string def;
    bool is_flag = false;
  };
  std::map<std::string, Decl> decls_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  std::string error_;
  bool help_requested_ = false;
};

}  // namespace fdiam
