#pragma once
// Deterministic, seedable pseudo-random number generation.
//
// All generators in src/gen take an explicit 64-bit seed and derive their
// randomness from this engine, so every synthetic graph in the test and
// benchmark suites is fully reproducible across runs and platforms
// (std::mt19937 distributions are not guaranteed identical across standard
// library implementations, so we implement the distributions we need).

#include <cstdint>

namespace fdiam {

/// SplitMix64: tiny, fast, well-distributed 64-bit generator. Used both
/// directly and to seed Xoshiro256**.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256** 1.0 (Blackman & Vigna) — the workhorse RNG.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) using Lemire's multiply-shift method.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Bernoulli trial with success probability p.
  bool chance(double p) { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace fdiam
