#pragma once
// Monotonic wall-clock timers used by the benchmark harness and the
// per-stage instrumentation inside F-Diam.

#include <chrono>
#include <cstdint>

namespace fdiam {

/// Simple monotonic stopwatch. Starts running on construction.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = clock::now(); }

  /// Elapsed time in seconds since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates time across multiple start/stop intervals, e.g. the total
/// time spent inside Winnow over a whole F-Diam run.
class AccumTimer {
 public:
  void start() { t_.reset(); }
  void stop() { total_ += t_.seconds(); }
  [[nodiscard]] double seconds() const { return total_; }
  void clear() { total_ = 0.0; }

 private:
  Timer t_;
  double total_ = 0.0;
};

/// RAII helper adding an interval to an AccumTimer on scope exit.
class ScopedAccum {
 public:
  explicit ScopedAccum(AccumTimer& acc) : acc_(acc) { acc_.start(); }
  ~ScopedAccum() { acc_.stop(); }
  ScopedAccum(const ScopedAccum&) = delete;
  ScopedAccum& operator=(const ScopedAccum&) = delete;

 private:
  AccumTimer& acc_;
};

}  // namespace fdiam
