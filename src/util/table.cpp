#include "util/table.hpp"

#include <cassert>
#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace fdiam {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  assert(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << "  ";
      if (c == 0)
        os << std::left << std::setw(static_cast<int>(width[c])) << row[c];
      else
        os << std::right << std::setw(static_cast<int>(width[c])) << row[c];
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  os << std::right;
}

void Table::print_csv(std::ostream& os) const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    return out + "\"";
  };
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      os << quote(row[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

std::string Table::fmt_double(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::fmt_sci(double v, int precision) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::fmt_percent(double fraction, int precision) {
  return fmt_double(fraction * 100.0, precision) + "%";
}

std::string Table::fmt_count(std::uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  std::size_t lead = digits.size() % 3;
  if (lead == 0) lead = 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i > 0 && (i - lead) % 3 == 0 && i >= lead) out += ',';
    out += digits[i];
  }
  return out;
}

}  // namespace fdiam
