#pragma once
// Thin OpenMP wrappers so the rest of the code never touches raw omp_*
// calls and still compiles (serially) when OpenMP is unavailable — plus
// the parallel-region utilization collector. Region instrumentation lives
// here (not in obs/) because the BFS engines and solver stages must not
// depend on the observability layer; obs/ only *formats* these numbers.
//
// Instrumentation contract (mirrors the provenance collector): a
// RegionScope is constructed by the master thread immediately before an
// OpenMP parallel region and destroyed right after its implicit barrier.
// Each worker calls thread_done(items) as its last statement inside the
// region, reading its thread-private reduction copy. When no collector is
// installed every call is one pointer load plus a branch, so the disabled
// path stays within the bench-gated 0.5% overhead budget.

#ifdef _OPENMP
#include <omp.h>
#endif

#include <array>
#include <atomic>
#include <cstdint>
#include <string_view>
#include <vector>

#include "util/timer.hpp"

namespace fdiam {

/// Number of threads an upcoming parallel region will use.
inline int num_threads() {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

/// Calling thread's id inside a parallel region (0 outside one).
inline int thread_id() {
#ifdef _OPENMP
  return omp_get_thread_num();
#else
  return 0;
#endif
}

/// Globally set the thread count used by subsequent parallel regions.
inline void set_num_threads(int n) {
#ifdef _OPENMP
  omp_set_num_threads(n);
#else
  (void)n;
#endif
}

/// True when called from inside an active parallel region.
inline bool in_parallel() {
#ifdef _OPENMP
  return omp_in_parallel() != 0;
#else
  return false;
#endif
}

/// Solver stage a parallel region is attributed to. FDiam::run() sets the
/// current stage on the installed collector as it moves through the
/// algorithm; regions launched outside a solver run land in kOther.
enum class UtilStage : std::uint8_t {
  kInit = 0,
  kWinnow,
  kChain,
  kEliminate,
  kEcc,
  kOther,
};
inline constexpr std::size_t kUtilStageCount = 6;

[[nodiscard]] constexpr std::string_view util_stage_name(UtilStage s) {
  switch (s) {
    case UtilStage::kInit:
      return "init";
    case UtilStage::kWinnow:
      return "winnow";
    case UtilStage::kChain:
      return "chain";
    case UtilStage::kEliminate:
      return "eliminate";
    case UtilStage::kEcc:
      return "ecc";
    case UtilStage::kOther:
      return "other";
  }
  return "other";
}

/// Which kind of OpenMP region produced a measurement.
enum class RegionKind : std::uint8_t {
  kBfsTopDown = 0,
  kBfsBottomUp,
  kBfsConvert,  // queue<->bitmap direction-switch conversions
  kWinnow,
  kExtend,
  kMsbfs,
  kBatchEcc,  // candidate-batch per-thread serial BFS region
};
inline constexpr std::size_t kRegionKindCount = 7;

[[nodiscard]] constexpr std::string_view region_kind_name(RegionKind k) {
  switch (k) {
    case RegionKind::kBfsTopDown:
      return "bfs_topdown";
    case RegionKind::kBfsBottomUp:
      return "bfs_bottomup";
    case RegionKind::kBfsConvert:
      return "bfs_convert";
    case RegionKind::kWinnow:
      return "winnow";
    case RegionKind::kExtend:
      return "extend";
    case RegionKind::kMsbfs:
      return "msbfs";
    case RegionKind::kBatchEcc:
      return "batch_ecc";
  }
  return "batch_ecc";
}

/// Accumulated utilization over a set of parallel regions. busy time is
/// measured from region start to each thread's thread_done() call; the
/// gap to the region's wall end is that thread's implicit-barrier wait.
struct UtilAgg {
  std::uint64_t regions = 0;        ///< region entry count
  std::uint64_t items = 0;          ///< work items (edges scanned) summed
  double wall_s = 0.0;              ///< sum of region wall-clock spans
  double busy_s = 0.0;              ///< sum over threads of busy time
  double max_busy_s = 0.0;          ///< sum over regions of slowest thread
  double mean_busy_s = 0.0;         ///< sum over regions of busy/threads
  double threads_x_wall_s = 0.0;    ///< capacity: sum of team_size * wall

  /// Fraction of thread-seconds capacity spent busy, in [0, 1].
  [[nodiscard]] double busy_ratio() const {
    return threads_x_wall_s > 0.0 ? busy_s / threads_x_wall_s : 0.0;
  }

  /// Fraction of thread-seconds capacity spent idle (barrier wait plus
  /// fork/join overhead), in [0, 1].
  [[nodiscard]] double idle_fraction() const {
    const double r = 1.0 - busy_ratio();
    return r > 0.0 ? r : 0.0;
  }

  /// Total implicit-barrier wait in thread-seconds.
  [[nodiscard]] double barrier_wait_s() const {
    const double w = threads_x_wall_s - busy_s;
    return w > 0.0 ? w : 0.0;
  }

  /// Load-imbalance factor: slowest thread over mean, >= 1 when any
  /// region was recorded (1.0 = perfectly balanced).
  [[nodiscard]] double imbalance() const {
    if (mean_busy_s <= 0.0) return regions > 0 ? 1.0 : 0.0;
    const double f = max_busy_s / mean_busy_s;
    return f > 1.0 ? f : 1.0;
  }

  UtilAgg& operator+=(const UtilAgg& o) {
    regions += o.regions;
    items += o.items;
    wall_s += o.wall_s;
    busy_s += o.busy_s;
    max_busy_s += o.max_busy_s;
    mean_busy_s += o.mean_busy_s;
    threads_x_wall_s += o.threads_x_wall_s;
    return *this;
  }
};

/// Lifetime totals for one OpenMP thread.
struct UtilThread {
  std::uint64_t regions = 0;
  std::uint64_t items = 0;  ///< edges scanned by this thread
  double busy_s = 0.0;
};

/// Value snapshot of a collector, embedded in FDiamStats and run reports.
struct UtilStats {
  bool enabled = false;
  int threads = 1;
  UtilAgg total;
  std::array<UtilAgg, kUtilStageCount> stages{};
  std::array<UtilAgg, kRegionKindCount> kinds{};
  std::vector<UtilThread> per_thread;
};

/// Caller-owned utilization accumulator. Install one for the duration of
/// a solver run (FDiam::run() does this when FDiamOptions::utilization is
/// set); instrumented regions find it through the thread-local active()
/// pointer, so concurrent solves on different threads never alias.
/// Thread-safety: record_thread() writes a distinct scratch cell per
/// OpenMP thread id; open_region()/commit_region() run only on the serial
/// control path, before the fork and after the implicit barrier.
class UtilCollector {
 public:
  static constexpr int kMaxThreads = 256;

  /// Reset accumulators for a fresh run.
  void begin_run() {
    threads_seen_ = 1;
    stage_ = UtilStage::kOther;
    total_ = UtilAgg{};
    stages_.fill(UtilAgg{});
    kinds_.fill(UtilAgg{});
    for (auto& t : per_thread_) t = UtilThread{};
    scratch_used_.fill(0);
  }

  void set_stage(UtilStage s) { stage_ = s; }
  [[nodiscard]] UtilStage stage() const { return stage_; }

  /// Master thread, immediately before the parallel region.
  void open_region() {
    const int n = num_threads() < kMaxThreads ? num_threads() : kMaxThreads;
    for (int t = 0; t < n; ++t) scratch_used_[static_cast<std::size_t>(t)] = 0;
    region_timer_.reset();
  }

  /// Seconds since the current region opened (signal-free busy clock).
  [[nodiscard]] double region_seconds() const {
    return region_timer_.seconds();
  }

  /// Worker thread, as its last statement inside the region. Writes only
  /// this thread's scratch cell, so concurrent calls never race.
  void record_thread(int tid, double busy_s, std::uint64_t items) {
    if (tid < 0 || tid >= kMaxThreads) return;
    const auto i = static_cast<std::size_t>(tid);
    scratch_busy_[i] = busy_s;
    scratch_items_[i] = items;
    scratch_used_[i] = 1;
  }

  /// Master thread, after the implicit barrier: fold the scratch cells
  /// into the stage/kind/thread aggregates.
  void commit_region(RegionKind kind) {
    const double wall = region_timer_.seconds();
    UtilAgg delta;
    delta.regions = 1;
    delta.wall_s = wall;
    int team = 0;
    double max_busy = 0.0;
    for (std::size_t i = 0; i < static_cast<std::size_t>(kMaxThreads); ++i) {
      if (scratch_used_[i] == 0) continue;
      ++team;
      const double busy = scratch_busy_[i];
      delta.busy_s += busy;
      delta.items += scratch_items_[i];
      if (busy > max_busy) max_busy = busy;
      per_thread_[i].busy_s += busy;
      per_thread_[i].items += scratch_items_[i];
      per_thread_[i].regions += 1;
      if (static_cast<int>(i) + 1 > threads_seen_) {
        threads_seen_ = static_cast<int>(i) + 1;
      }
    }
    if (team == 0) return;  // region recorded nothing; skip
    delta.max_busy_s = max_busy;
    delta.mean_busy_s = delta.busy_s / team;
    delta.threads_x_wall_s = static_cast<double>(team) * wall;
    total_ += delta;
    stages_[static_cast<std::size_t>(stage_)] += delta;
    kinds_[static_cast<std::size_t>(kind)] += delta;
  }

  [[nodiscard]] UtilStats snapshot() const {
    UtilStats s;
    s.enabled = true;
    s.threads = threads_seen_;
    s.total = total_;
    s.stages = stages_;
    s.kinds = kinds_;
    s.per_thread.assign(per_thread_.begin(),
                        per_thread_.begin() + threads_seen_);
    return s;
  }

  /// Cumulative per-thread busy seconds, for heartbeat busy-ratio deltas.
  [[nodiscard]] std::vector<double> thread_busy() const {
    std::vector<double> out(static_cast<std::size_t>(threads_seen_));
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] = per_thread_[i].busy_s;
    }
    return out;
  }

  [[nodiscard]] static UtilCollector* active() { return active_; }

  /// Install a collector for the CALLING THREAD; returns the previous
  /// one so nested runs can save/restore. The slot is thread-local, not
  /// process-global: a daemon running two solver threads concurrently
  /// gets two independent collectors instead of one aliased accumulator
  /// (the old process-global install let solve B's regions land in solve
  /// A's stage buckets, and the restore order raced). RegionScope is
  /// always constructed on the solve's control thread, so worker threads
  /// inside the region still reach the right collector through the
  /// pointer the scope captured at construction.
  static UtilCollector* install(UtilCollector* c) {
    UtilCollector* prev = active_;
    active_ = c;
    return prev;
  }

 private:
  UtilStage stage_ = UtilStage::kOther;
  int threads_seen_ = 1;
  Timer region_timer_;
  UtilAgg total_;
  std::array<UtilAgg, kUtilStageCount> stages_{};
  std::array<UtilAgg, kRegionKindCount> kinds_{};
  std::array<UtilThread, kMaxThreads> per_thread_{};
  std::array<double, kMaxThreads> scratch_busy_{};
  std::array<std::uint64_t, kMaxThreads> scratch_items_{};
  std::array<unsigned char, kMaxThreads> scratch_used_{};

  // Thread-local: each solver thread owns its own active collector (see
  // install()), which is what makes concurrent in-process solves safe.
  inline static thread_local UtilCollector* active_ = nullptr;
};

/// RAII wrapper around one OpenMP parallel region. Construct on the
/// master thread right before the region; call thread_done() from each
/// worker as its last statement inside the region. Costs one atomic load
/// and a branch per call when no collector is installed. Regions launched
/// from inside another parallel region (e.g. msbfs_batch under the
/// all-eccentricities driver) disable themselves: only the serial control
/// path is instrumented.
class RegionScope {
 public:
  explicit RegionScope(RegionKind kind)
      : c_(UtilCollector::active()), kind_(kind) {
    if (c_ != nullptr && in_parallel()) c_ = nullptr;
    if (c_ != nullptr) c_->open_region();
  }
  RegionScope(const RegionScope&) = delete;
  RegionScope& operator=(const RegionScope&) = delete;

  /// Record the calling thread's busy span and work-item count.
  void thread_done(std::uint64_t items = 0) const {
    if (c_ != nullptr) {
      c_->record_thread(thread_id(), c_->region_seconds(), items);
    }
  }

  ~RegionScope() {
    if (c_ != nullptr) c_->commit_region(kind_);
  }

 private:
  UtilCollector* c_;
  RegionKind kind_;
};

}  // namespace fdiam
