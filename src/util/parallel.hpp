#pragma once
// Thin OpenMP wrappers so the rest of the code never touches raw omp_*
// calls and still compiles (serially) when OpenMP is unavailable.

#ifdef _OPENMP
#include <omp.h>
#endif

namespace fdiam {

/// Number of threads an upcoming parallel region will use.
inline int num_threads() {
#ifdef _OPENMP
  return omp_get_max_threads();
#else
  return 1;
#endif
}

/// Calling thread's id inside a parallel region (0 outside one).
inline int thread_id() {
#ifdef _OPENMP
  return omp_get_thread_num();
#else
  return 0;
#endif
}

/// Globally set the thread count used by subsequent parallel regions.
inline void set_num_threads(int n) {
#ifdef _OPENMP
  omp_set_num_threads(n);
#else
  (void)n;
#endif
}

}  // namespace fdiam
