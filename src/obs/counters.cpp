#include "obs/counters.hpp"

#include "obs/json.hpp"

namespace fdiam::obs {

Counter& MetricRegistry::counter(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricRegistry::gauge(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricRegistry::histogram(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

void MetricRegistry::write_text(std::ostream& os) const {
  std::lock_guard lock(mu_);
  for (const auto& [name, c] : counters_) {
    os << name << ' ' << c->get() << '\n';
  }
  for (const auto& [name, g] : gauges_) {
    os << name << ' ' << g->get() << '\n';
  }
  // Histograms expose their aggregates here; the full bucket layout
  // lives in the OpenMetrics exposition and the JSON report block.
  for (const auto& [name, h] : histograms_) {
    os << name << ".count " << h->count() << '\n';
    os << name << ".sum " << h->sum() << '\n';
  }
}

void MetricRegistry::write_json(std::ostream& os) const {
  std::lock_guard lock(mu_);
  JsonWriter w(os, /*indent=*/0);
  w.begin_object();
  for (const auto& [name, c] : counters_) w.field(name, c->get());
  for (const auto& [name, g] : gauges_) w.field(name, g->get());
  w.end_object();
}

std::vector<std::pair<std::string, double>> MetricRegistry::snapshot() const {
  std::lock_guard lock(mu_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(counters_.size() + gauges_.size());
  for (const auto& [name, c] : counters_) {
    out.emplace_back(name, static_cast<double>(c->get()));
  }
  for (const auto& [name, g] : gauges_) out.emplace_back(name, g->get());
  return out;
}

std::vector<std::pair<std::string, HistogramSnapshot>>
MetricRegistry::snapshot_histograms() const {
  std::lock_guard lock(mu_);
  std::vector<std::pair<std::string, HistogramSnapshot>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    out.emplace_back(name, h->snapshot());
  }
  return out;
}

std::vector<std::pair<std::string, std::int64_t>>
MetricRegistry::snapshot_counters() const {
  std::lock_guard lock(mu_);
  std::vector<std::pair<std::string, std::int64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c->get());
  return out;
}

std::vector<std::pair<std::string, double>> MetricRegistry::snapshot_gauges()
    const {
  std::lock_guard lock(mu_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.emplace_back(name, g->get());
  return out;
}

void MetricRegistry::reset_counters() {
  std::lock_guard lock(mu_);
  for (const auto& [name, c] : counters_) {
    (void)name;
    c->reset();
  }
  for (const auto& [name, h] : histograms_) {
    (void)name;
    h->reset();
  }
}

std::size_t MetricRegistry::size() const {
  std::lock_guard lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

MetricRegistry& metrics() {
  static MetricRegistry registry;
  return registry;
}

}  // namespace fdiam::obs
