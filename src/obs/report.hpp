#pragma once
// Machine-readable run reports: everything one F-Diam invocation produced
// (result, per-stage stats, BFS counters), what it ran on (graph stats),
// and how (options, environment), serialized to a stable JSON schema so
// perf baselines can be recorded and diffed across commits.
//
// Schema "fdiam.run_report/v1" — field additions are allowed, renames and
// removals are a schema bump. docs/OBSERVABILITY.md documents every field.

#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "core/fdiam.hpp"
#include "graph/stats.hpp"
#include "util/histogram.hpp"

namespace fdiam::prof {
struct ProfileSummary;
}

namespace fdiam::obs {

class JsonWriter;

/// Build/runtime environment block shared by run and bench reports.
/// Carries enough provenance to interpret a perf trajectory months
/// later: which commit, which compiler, which CPU, how many threads.
struct EnvInfo {
  int omp_max_threads = 1;
  bool openmp = false;
  std::string build_type;   // "release" (NDEBUG) or "debug"
  std::string compiler;     // __VERSION__ (id + version string)
  std::string compiler_id;  // "gcc", "clang", or "unknown"
  std::string git_sha;      // FDIAM_GIT_SHA captured at configure time
  std::string cpu_model;    // /proc/cpuinfo "model name" (or "unknown")
  std::string timestamp;    // ISO 8601 UTC at capture time
};

/// Capture the current process environment.
EnvInfo capture_env();

struct ProvenanceLog;

struct RunReport {
  std::string graph_name;   // file path or suite input name
  GraphStats graph;
  FDiamOptions options;     // serializable subset (callbacks are omitted)
  DiameterResult result;    // includes FDiamStats and BfsStats
  EnvInfo env;
  /// Optional registry snapshot appended as a flat "metrics" object.
  std::vector<std::pair<std::string, double>> metrics;
  /// Optional distribution snapshot (MetricRegistry::snapshot_histograms)
  /// embedded as a schema-versioned "histograms" block
  /// ("fdiam.metrics/v1": per-series count/sum/min/max/p50/p90/p99 and
  /// sparse buckets; see obs/metrics/metrics_report.hpp). Series with
  /// zero records are omitted; an empty vector omits the whole block.
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
  /// When set, a schema-versioned "provenance" block (stage histogram +
  /// bound-evolution timeline) is embedded. Not owned; must outlive
  /// write_json().
  const ProvenanceLog* provenance = nullptr;
  /// When set, a schema-versioned "profile" block (sampling-profiler
  /// summary + top self-time frames) is embedded. Not owned; must
  /// outlive write_json(). The "utilization" block needs no pointer —
  /// it serializes result.stats.util and is always present.
  const prof::ProfileSummary* profile = nullptr;

  /// Serialize as one pretty-printed JSON document.
  void write_json(std::ostream& os) const;
};

/// Convenience assembler: env is captured here.
RunReport make_run_report(std::string graph_name, const GraphStats& graph,
                          const FDiamOptions& options,
                          const DiameterResult& result);

/// Append the env block to an open JsonWriter object ("env": {...}).
/// Shared with the bench harness's report writer.
void write_env_fields(JsonWriter& w, const EnvInfo& env);

}  // namespace fdiam::obs
