#include "obs/json.hpp"

#include <cassert>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace fdiam::obs {

// --- JsonWriter -----------------------------------------------------------

void JsonWriter::separator() {
  if (!stack_.empty() && !key_pending_) {
    if (has_elems_.back()) os_ << ',';
    has_elems_.back() = true;
    if (indent_ > 0) {
      os_ << '\n';
      for (std::size_t i = 0; i < stack_.size(); ++i) {
        for (int s = 0; s < indent_; ++s) os_ << ' ';
      }
    }
  }
  key_pending_ = false;
}

void JsonWriter::open(Ctx ctx, char brace) {
  assert(stack_.empty() || stack_.back() == Ctx::kArray || key_pending_);
  separator();
  os_ << brace;
  stack_.push_back(ctx);
  has_elems_.push_back(false);
}

void JsonWriter::close(Ctx ctx, char brace) {
  assert(!stack_.empty() && stack_.back() == ctx && !key_pending_);
  (void)ctx;
  const bool had = has_elems_.back();
  stack_.pop_back();
  has_elems_.pop_back();
  if (had && indent_ > 0) {
    os_ << '\n';
    for (std::size_t i = 0; i < stack_.size(); ++i) {
      for (int s = 0; s < indent_; ++s) os_ << ' ';
    }
  }
  os_ << brace;
  if (stack_.empty() && indent_ > 0) os_ << '\n';
}

JsonWriter& JsonWriter::begin_object() {
  open(Ctx::kObject, '{');
  return *this;
}
JsonWriter& JsonWriter::end_object() {
  close(Ctx::kObject, '}');
  return *this;
}
JsonWriter& JsonWriter::begin_array() {
  open(Ctx::kArray, '[');
  return *this;
}
JsonWriter& JsonWriter::end_array() {
  close(Ctx::kArray, ']');
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  assert(!stack_.empty() && stack_.back() == Ctx::kObject && !key_pending_);
  separator();
  os_ << '"' << json_escape(k) << "\":";
  if (indent_ > 0) os_ << ' ';
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  separator();
  os_ << '"' << json_escape(v) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  separator();
  if (!std::isfinite(v)) {
    // JSON has no Infinity/NaN; null is the conventional stand-in.
    // (json_diagnose would flag the raw tokens as "invalid value".)
    os_ << "null";
    return *this;
  }
  // std::to_chars: shortest round-trip representation, and — unlike
  // printf "%g" — immune to LC_NUMERIC locales whose decimal separator
  // (',') would be an invalid JSON token.
  char buf[40];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v);
  (void)ec;  // 40 bytes always suffice for a finite double
  os_ << std::string_view(buf, static_cast<std::size_t>(end - buf));
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  separator();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  separator();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  separator();
  os_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::null() {
  separator();
  os_ << "null";
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view json) {
  separator();
  os_ << json;
  return *this;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;  // UTF-8 passes through byte-for-byte
        }
    }
  }
  return out;
}

// --- Validating scanner ---------------------------------------------------
//
// One cursor-based recursive-descent pass shared by json_valid() and
// json_lookup(): skip_value() advances past one well-formed value or
// reports failure. No allocation, no DOM.

namespace {

constexpr int kMaxDepth = 256;

struct Scanner {
  std::string_view text;
  std::size_t pos = 0;

  [[nodiscard]] bool done() const { return pos >= text.size(); }
  [[nodiscard]] char peek() const { return text[pos]; }

  void skip_ws() {
    while (!done() && (text[pos] == ' ' || text[pos] == '\t' ||
                       text[pos] == '\n' || text[pos] == '\r')) {
      ++pos;
    }
  }

  bool consume(char c) {
    if (done() || text[pos] != c) return false;
    ++pos;
    return true;
  }

  bool skip_string() {
    if (!consume('"')) return false;
    while (!done()) {
      const char c = text[pos++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        if (done()) return false;
        const char e = text[pos++];
        switch (e) {
          case '"': case '\\': case '/': case 'b': case 'f':
          case 'n': case 'r': case 't':
            break;
          case 'u': {
            for (int i = 0; i < 4; ++i) {
              if (done() || !std::isxdigit(
                                static_cast<unsigned char>(text[pos]))) {
                return false;
              }
              ++pos;
            }
            break;
          }
          default:
            return false;
        }
      }
    }
    return false;  // unterminated
  }

  bool skip_number() {
    consume('-');
    if (done() || !std::isdigit(static_cast<unsigned char>(peek()))) {
      return false;
    }
    if (peek() == '0') {
      ++pos;  // no leading zeros
    } else {
      while (!done() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos;
    }
    if (!done() && peek() == '.') {
      ++pos;
      if (done() || !std::isdigit(static_cast<unsigned char>(peek()))) {
        return false;
      }
      while (!done() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos;
    }
    if (!done() && (peek() == 'e' || peek() == 'E')) {
      ++pos;
      if (!done() && (peek() == '+' || peek() == '-')) ++pos;
      if (done() || !std::isdigit(static_cast<unsigned char>(peek()))) {
        return false;
      }
      while (!done() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos;
    }
    return true;
  }

  bool skip_literal(std::string_view lit) {
    if (text.substr(pos, lit.size()) != lit) return false;
    pos += lit.size();
    return true;
  }

  bool skip_value(int depth) {
    if (depth > kMaxDepth) return false;
    skip_ws();
    if (done()) return false;
    switch (peek()) {
      case '"': return skip_string();
      case '{': {
        ++pos;
        skip_ws();
        if (consume('}')) return true;
        while (true) {
          skip_ws();
          if (!skip_string()) return false;
          skip_ws();
          if (!consume(':')) return false;
          if (!skip_value(depth + 1)) return false;
          skip_ws();
          if (consume('}')) return true;
          if (!consume(',')) return false;
        }
      }
      case '[': {
        ++pos;
        skip_ws();
        if (consume(']')) return true;
        while (true) {
          if (!skip_value(depth + 1)) return false;
          skip_ws();
          if (consume(']')) return true;
          if (!consume(',')) return false;
        }
      }
      case 't': return skip_literal("true");
      case 'f': return skip_literal("false");
      case 'n': return skip_literal("null");
      default: return skip_number();
    }
  }
};

/// Splits "a.b.0.c" into components in place.
std::vector<std::string_view> split_path(std::string_view path) {
  std::vector<std::string_view> parts;
  while (!path.empty()) {
    const std::size_t dot = path.find('.');
    parts.push_back(path.substr(0, dot));
    if (dot == std::string_view::npos) break;
    path.remove_prefix(dot + 1);
  }
  return parts;
}

}  // namespace

bool json_valid(std::string_view text) {
  Scanner s{text};
  if (!s.skip_value(0)) return false;
  s.skip_ws();
  return s.done();
}

namespace {

std::string diagnose_at(std::string_view text, std::size_t pos,
                        std::string_view what) {
  std::string out = "byte ";
  out += std::to_string(pos);
  out += ": ";
  out += what;
  if (pos < text.size()) {
    out += " (near \"";
    for (const char c : text.substr(pos, 16)) {
      out += (static_cast<unsigned char>(c) < 0x20) ? ' ' : c;
    }
    out += "\")";
  }
  return out;
}

}  // namespace

std::optional<std::string> json_diagnose(std::string_view text) {
  Scanner s{text};
  s.skip_ws();
  if (s.done()) return diagnose_at(text, s.pos, "empty document");
  if (!s.skip_value(0)) {
    // The cursor stops at (or just past) the first byte the grammar
    // rejects — a raw NaN/Infinity token, a truncated container, a bad
    // escape. Close enough to point a human at the writer bug.
    return diagnose_at(text, s.pos, "invalid value");
  }
  s.skip_ws();
  if (!s.done()) return diagnose_at(text, s.pos, "trailing data after document");
  return std::nullopt;
}

std::optional<std::string_view> json_lookup(std::string_view text,
                                            std::string_view dotted_path) {
  Scanner s{text};
  for (const std::string_view part : split_path(dotted_path)) {
    s.skip_ws();
    if (s.done()) return std::nullopt;
    if (s.peek() == '{') {
      ++s.pos;
      bool found = false;
      while (!found) {
        s.skip_ws();
        if (s.consume('}')) return std::nullopt;  // key absent
        const std::size_t key_start = s.pos;
        if (!s.skip_string()) return std::nullopt;
        // Compare against the raw (escape-free) key bytes; report-schema
        // keys never need escaping.
        const std::string_view key =
            s.text.substr(key_start + 1, s.pos - key_start - 2);
        s.skip_ws();
        if (!s.consume(':')) return std::nullopt;
        if (key == part) {
          found = true;  // cursor now sits on the value
        } else {
          if (!s.skip_value(0)) return std::nullopt;
          s.skip_ws();
          if (!s.consume(',')) {
            if (!s.consume('}')) return std::nullopt;
            return std::nullopt;  // key absent
          }
        }
      }
    } else if (s.peek() == '[') {
      std::size_t index = 0;
      const auto [ptr, ec] = std::from_chars(
          part.data(), part.data() + part.size(), index);
      if (ec != std::errc() || ptr != part.data() + part.size()) {
        return std::nullopt;
      }
      ++s.pos;
      s.skip_ws();
      if (s.peek() == ']') return std::nullopt;
      for (std::size_t i = 0; i < index; ++i) {
        if (!s.skip_value(0)) return std::nullopt;
        s.skip_ws();
        if (!s.consume(',')) return std::nullopt;  // index out of range
      }
    } else {
      return std::nullopt;  // scalar has no children
    }
  }
  s.skip_ws();
  const std::size_t start = s.pos;
  if (!s.skip_value(0)) return std::nullopt;
  return text.substr(start, s.pos - start);
}

std::optional<double> json_number(std::string_view text,
                                  std::string_view dotted_path) {
  const auto raw = json_lookup(text, dotted_path);
  if (!raw) return std::nullopt;
  double out = 0.0;
  const auto [ptr, ec] =
      std::from_chars(raw->data(), raw->data() + raw->size(), out);
  if (ec != std::errc() || ptr != raw->data() + raw->size()) {
    return std::nullopt;
  }
  return out;
}

std::optional<std::string> json_string(std::string_view text,
                                       std::string_view dotted_path) {
  const auto raw = json_lookup(text, dotted_path);
  if (!raw || raw->size() < 2 || raw->front() != '"') return std::nullopt;
  std::string_view body = raw->substr(1, raw->size() - 2);
  std::string out;
  out.reserve(body.size());
  for (std::size_t i = 0; i < body.size(); ++i) {
    if (body[i] != '\\') {
      out += body[i];
      continue;
    }
    if (++i >= body.size()) return std::nullopt;
    switch (body[i]) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case '/': out += '/'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'u': {
        if (i + 4 >= body.size()) return std::nullopt;
        unsigned cp = 0;
        const auto [p, ec] =
            std::from_chars(body.data() + i + 1, body.data() + i + 5, cp, 16);
        if (ec != std::errc() || p != body.data() + i + 5) return std::nullopt;
        i += 4;
        // Report keys stay ASCII; encode the BMP code point as UTF-8.
        if (cp < 0x80) {
          out += static_cast<char>(cp);
        } else if (cp < 0x800) {
          out += static_cast<char>(0xC0 | (cp >> 6));
          out += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
          out += static_cast<char>(0xE0 | (cp >> 12));
          out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
          out += static_cast<char>(0x80 | (cp & 0x3F));
        }
        break;
      }
      default:
        return std::nullopt;
    }
  }
  return out;
}

}  // namespace fdiam::obs
