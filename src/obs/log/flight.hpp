#pragma once
// Crash flight recorder: a fixed-size lock-free ring of recent telemetry
// events (log records, span begin/end, bound updates, heartbeats) plus
// async-signal-safe fatal-signal handlers that dump the ring, the
// solver's current stage, and the current diameter bounds to stderr and
// an optional file. A mid-solve SIGSEGV becomes a diagnosable artifact
// instead of a bare core dump.
//
// Design constraints, in order:
//  * record() must be cheap and wait-free — it runs on solver threads
//    between BFS calls, and the logger mirrors every emitted record into
//    it. One fetch_add claims a slot; fields are plain stores.
//  * dump() must be async-signal-safe — it runs inside SIGSEGV. It uses
//    only write(2) and hand-rolled formatting: no malloc, no stdio, no
//    locks.
//  * The crash context (stage + bounds) is a handful of atomics updated
//    by the solver on stage transitions and bound raises, so the dump
//    header is meaningful even when the ring has wrapped past them.
//
// Best-effort caveat: a writer that claims a slot and is then preempted
// for a full ring revolution can be overwritten mid-copy; the per-slot
// sequence number (stamped last, checked by readers) makes such a slot
// detectably torn rather than silently corrupt. With kSlots = 256 this
// needs 256 concurrent in-flight records — far beyond any real
// configuration.

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "obs/log/log.hpp"
#include "util/parallel.hpp"

namespace fdiam::obs {

class FlightRecorder {
 public:
  static constexpr std::size_t kSlots = 256;  ///< power of two
  static constexpr std::size_t kTextSize = 96;

  enum class EventKind : std::uint8_t {
    kLog = 0,       ///< mirrored logger record (a/b unused)
    kSpanBegin,     ///< stage/span opened (a = payload)
    kSpanEnd,       ///< stage/span closed (a = payload, b = microseconds)
    kBound,         ///< diameter bound update (a = old, b = new)
    kHeartbeat,     ///< progress beat (a = evaluated, b = bound)
  };
  static constexpr std::size_t kEventKindCount = 5;

  [[nodiscard]] static std::string_view event_kind_name(EventKind k);

  /// Append one event. Wait-free; callable from any thread (but NOT
  /// from a signal handler — handlers only read).
  void record(EventKind kind, LogLevel level, std::string_view text,
              std::int64_t a = 0, std::int64_t b = 0);

  /// Crash context: the stage the solver is currently in. Plain atomic
  /// stores; read by the signal handler.
  void set_stage(UtilStage s) {
    stage_.store(static_cast<std::uint8_t>(s), std::memory_order_relaxed);
    has_stage_.store(true, std::memory_order_relaxed);
  }
  /// Crash context: current diameter bounds. `upper < 0` means unknown
  /// (the solver proves optimality by elimination, not by an upper
  /// bound, so mid-run the upper bound is usually open).
  void set_bounds(std::int64_t lower, std::int64_t upper = -1) {
    bound_lower_.store(lower, std::memory_order_relaxed);
    bound_upper_.store(upper, std::memory_order_relaxed);
    has_bounds_.store(true, std::memory_order_relaxed);
  }

  /// Write a human-readable dump (header with stage/bounds, then the
  /// ring oldest-first) to a file descriptor. Async-signal-safe: only
  /// write(2), stack buffers, and integer formatting. `signal` >= 0 is
  /// included in the header (the crashing signal); -1 means a
  /// programmatic dump.
  void dump(int fd, int signal = -1) const;

  /// Events recorded so far (monotone ticket counter, for tests).
  [[nodiscard]] std::uint64_t recorded() const {
    return head_.load(std::memory_order_relaxed);
  }

  /// Process-wide PRIMARY recorder (the logger mirrors records into it,
  /// and single-solve tools treat it as "the" recorder): returns the
  /// previous one so scopes can nest/restore. Passing nullptr
  /// deactivates. install() also registers/unregisters the recorder in
  /// the crash-dump registry below.
  static FlightRecorder* install(FlightRecorder* fr);
  [[nodiscard]] static FlightRecorder* active();

  /// Crash-dump registry: every registered recorder is dumped by the
  /// fatal-signal handler, each with its own stage/bounds header. A
  /// daemon running concurrent solves registers one recorder per solve
  /// (see FDiamOptions::flight) so a crash reports every in-flight
  /// request's state instead of whichever one happened to be "active".
  /// Registration is idempotent (re-registering an already-registered
  /// recorder is a no-op) and bounded: at most kMaxRegistered recorders;
  /// further registrations return false and are simply not dumped.
  static constexpr std::size_t kMaxRegistered = 32;
  static bool register_recorder(FlightRecorder* fr);
  static void unregister_recorder(FlightRecorder* fr);
  /// Registered recorders right now (for tests).
  [[nodiscard]] static std::size_t registered_count();

  /// Install SIGSEGV/SIGBUS/SIGABRT/SIGFPE/SIGILL handlers that dump the
  /// active recorder to stderr — and to `path`, opened (and truncated)
  /// eagerly here so the handler never touches the filesystem namespace
  /// — then restore the default disposition and re-raise, preserving
  /// the fatal exit status. Empty `path` → stderr only. False when the
  /// dump file cannot be opened (handlers are still installed).
  static bool install_crash_handlers(const std::string& path = {});
  /// Restore the dispositions saved by install_crash_handlers and close
  /// the dump file. No-op when not installed.
  static void uninstall_crash_handlers();

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq{0};  ///< ticket + 1; 0 = never written
    std::uint64_t micros = 0;           ///< mono_seconds() in microseconds
    std::int64_t a = 0;
    std::int64_t b = 0;
    EventKind kind = EventKind::kLog;
    LogLevel level = LogLevel::kInfo;
    std::uint16_t tid = 0;
    char text[kTextSize] = {};
  };

  Slot slots_[kSlots];
  std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint8_t> stage_{0};
  std::atomic<bool> has_stage_{false};
  std::atomic<std::int64_t> bound_lower_{0};
  std::atomic<std::int64_t> bound_upper_{-1};
  std::atomic<bool> has_bounds_{false};
};

}  // namespace fdiam::obs
