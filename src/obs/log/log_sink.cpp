#include "obs/log/log_sink.hpp"

#include "obs/log/flight.hpp"
#include "obs/log/log.hpp"

namespace fdiam::obs {

namespace {

struct EventShape {
  std::string_view msg;
  LogLevel level;
  FlightRecorder::EventKind ring_kind;
};

EventShape shape_of(FDiamEvent::Kind k) {
  using K = FDiamEvent::Kind;
  using R = FlightRecorder::EventKind;
  switch (k) {
    case K::kStart: return {"solve start", LogLevel::kInfo, R::kSpanBegin};
    case K::kInitialBound:
      return {"initial bound", LogLevel::kInfo, R::kBound};
    case K::kWinnow: return {"winnow", LogLevel::kInfo, R::kSpanEnd};
    case K::kChainsProcessed:
      return {"chains processed", LogLevel::kInfo, R::kSpanEnd};
    case K::kEccentricity:
      return {"eccentricity", LogLevel::kDebug, R::kSpanEnd};
    case K::kBoundRaised:
      return {"bound raised", LogLevel::kInfo, R::kBound};
    case K::kEliminate: return {"eliminate", LogLevel::kDebug, R::kSpanEnd};
    case K::kExtendRegions:
      return {"extend regions", LogLevel::kInfo, R::kSpanEnd};
    case K::kDone: return {"solve done", LogLevel::kInfo, R::kSpanEnd};
  }
  return {"event", LogLevel::kDebug, R::kSpanEnd};
}

void forward(Logger& log, const FDiamEvent& e) {
  const EventShape shape = shape_of(e.kind);
  if (log.enabled(shape.level)) {
    log.log(shape.level, "solver", shape.msg,
            {{"value", static_cast<std::int64_t>(e.value)},
             {"vertex", static_cast<std::int64_t>(e.vertex)},
             {"extra", static_cast<std::int64_t>(e.extra)},
             {"seconds", e.seconds}});
  }
  // Note: Logger::log already mirrors emitted records into the ring as
  // kLog events; this direct record is the level-independent milestone
  // trail (debug events land here even when the logger drops them).
  if (FlightRecorder* fr = FlightRecorder::active()) {
    // kBound slots carry (old, new); span slots carry (value, micros).
    const bool is_bound =
        shape.ring_kind == FlightRecorder::EventKind::kBound;
    const auto a = static_cast<std::int64_t>(is_bound ? e.extra : e.value);
    const auto b = is_bound ? static_cast<std::int64_t>(e.value)
                            : static_cast<std::int64_t>(e.seconds * 1e6);
    fr->record(shape.ring_kind, shape.level, shape.msg, a, b);
  }
}

}  // namespace

FDiamTrace make_log_trace_sink(Logger& log) {
  return [&log](const FDiamEvent& e) { forward(log, e); };
}

FDiamTrace make_log_trace_sink() {
  return make_log_trace_sink(Logger::instance());
}

}  // namespace fdiam::obs
