#pragma once
// Leveled structured logger: one JSON object per line, so every
// diagnostic the toolchain prints is machine-parseable (json_check
// --jsonl validates a stream). Replaces the ad-hoc fprintf/std::cerr
// call sites that used to be scattered through src/.
//
// Record shape (field order fixed, extra fields appended last):
//
//   {"ts":"2026-08-09T12:34:56.789Z","mono_s":1.234567,"level":"info",
//    "tid":0,"sub":"solver","msg":"bound raised","bound":42}
//
//  * ts      — wall clock (UTC, millisecond ISO-8601); correlates runs
//              across machines.
//  * mono_s  — steady-clock seconds since process start; survives NTP
//              steps, matches trace/heartbeat timing.
//  * tid     — small per-thread ordinal (registration order), not the
//              OS tid: stable across runs with the same thread count.
//  * sub     — subsystem tag ("solver", "cli", "heartbeat", "bench"...).
//
// Concurrency: each record is formatted into a thread-local buffer and
// written with a single fwrite; POSIX stdio locks the FILE per call, so
// concurrent records never interleave mid-line. Level filtering is one
// relaxed atomic load, cheap enough to leave debug statements in hot
// paths.
//
// Runtime control: FDIAM_LOG=<trace|debug|info|warn|error|off> and
// FDIAM_LOG_OUT=<path> configure the global instance() on first use;
// fdiam_cli --log-level/--log-out override them.
//
// Every emitted record is also appended to the active FlightRecorder
// ring (see flight.hpp), so the crash dump carries the most recent log
// context even when the log stream itself goes to a file.

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <initializer_list>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

namespace fdiam::obs {

enum class LogLevel : std::uint8_t {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,  ///< threshold only; not a record level
};

[[nodiscard]] std::string_view log_level_name(LogLevel l);
/// Parse a level name ("info", "OFF", ...); nullopt on anything else.
[[nodiscard]] std::optional<LogLevel> log_level_from_name(
    std::string_view name);

/// One typed key/value attached to a record. Keys must be plain
/// identifier-ish strings (they are emitted unescaped); values are
/// JSON-escaped as needed. string_view payloads are not copied — they
/// must outlive the log() call, which every call site satisfies by
/// passing literals or locals.
class LogField {
 public:
  // Anchored on long long so every standard integer type (and therefore
  // both possible spellings of int64_t) finds exactly one constructor.
  LogField(std::string_view key, long long v)
      : key_(key), kind_(Kind::kInt), i_(v) {}
  LogField(std::string_view key, unsigned long long v)
      : key_(key), kind_(Kind::kUint), u_(v) {}
  LogField(std::string_view key, int v)
      : LogField(key, static_cast<long long>(v)) {}
  LogField(std::string_view key, long v)
      : LogField(key, static_cast<long long>(v)) {}
  LogField(std::string_view key, unsigned v)
      : LogField(key, static_cast<unsigned long long>(v)) {}
  LogField(std::string_view key, unsigned long v)
      : LogField(key, static_cast<unsigned long long>(v)) {}
  LogField(std::string_view key, double v)
      : key_(key), kind_(Kind::kDouble), d_(v) {}
  LogField(std::string_view key, bool v)
      : key_(key), kind_(Kind::kBool), b_(v) {}
  LogField(std::string_view key, std::string_view v)
      : key_(key), kind_(Kind::kString), s_(v) {}
  LogField(std::string_view key, const char* v)
      : LogField(key, std::string_view(v)) {}

  /// Append `,"key":<value>` to `out`.
  void append_to(std::string& out) const;

 private:
  enum class Kind : std::uint8_t { kInt, kUint, kDouble, kBool, kString };
  std::string_view key_;
  Kind kind_;
  union {
    std::int64_t i_;
    std::uint64_t u_;
    double d_;
    bool b_;
  };
  std::string_view s_{};
};

class Logger {
 public:
  Logger() = default;
  ~Logger();
  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

  void set_level(LogLevel l) {
    level_.store(static_cast<std::uint8_t>(l), std::memory_order_relaxed);
  }
  [[nodiscard]] LogLevel level() const {
    return static_cast<LogLevel>(level_.load(std::memory_order_relaxed));
  }
  /// True when a record at level `l` would be emitted. One relaxed
  /// atomic load — safe to call on hot paths before formatting fields.
  [[nodiscard]] bool enabled(LogLevel l) const {
    return static_cast<std::uint8_t>(l) >=
               level_.load(std::memory_order_relaxed) &&
           l != LogLevel::kOff;
  }

  /// Redirect output to a caller-owned stream (nullptr → stderr).
  /// Closes any stream previously opened with open_output().
  void set_output(std::FILE* out);
  /// Open `path` (truncating) as an owned output stream. False (and
  /// output unchanged) when the file cannot be opened.
  [[nodiscard]] bool open_output(const std::string& path);
  /// Close an owned stream and fall back to stderr.
  void close_output();
  void flush();
  /// True when no write on the current stream has failed. Sticky until
  /// the output is switched; lets callers turn silent log-file write
  /// failures into a nonzero exit.
  [[nodiscard]] bool ok() const {
    return !write_failed_.load(std::memory_order_relaxed);
  }

  void log(LogLevel l, std::string_view subsystem, std::string_view msg,
           std::initializer_list<LogField> fields = {});
  /// Records emitted so far (post-filter); monotone, for tests.
  [[nodiscard]] std::uint64_t records() const {
    return records_.load(std::memory_order_relaxed);
  }

  /// Apply FDIAM_LOG / FDIAM_LOG_OUT. Called once by instance().
  void configure_from_env();

  /// Process-wide logger. Starts at kOff with stderr output unless the
  /// environment says otherwise, so library code can log unconditionally
  /// at near-zero cost when nobody asked for logs.
  static Logger& instance();

 private:
  std::atomic<std::uint8_t> level_{static_cast<std::uint8_t>(LogLevel::kOff)};
  std::atomic<std::FILE*> out_{nullptr};  ///< nullptr → stderr
  std::atomic<bool> write_failed_{false};
  std::atomic<std::uint64_t> records_{0};
  std::FILE* owned_ = nullptr;
  std::mutex output_mutex_;  ///< guards owned_ swaps, not the write path
};

/// Steady-clock seconds since the first telemetry call in this process.
/// Shared by the logger, the heartbeat JSON records, and the flight
/// recorder so their timestamps are directly comparable.
[[nodiscard]] double mono_seconds();

/// Small per-thread ordinal used as the "tid" record field.
[[nodiscard]] unsigned log_thread_ordinal();

}  // namespace fdiam::obs
