#include "obs/log/flight.hpp"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>

namespace fdiam::obs {

namespace {

std::atomic<FlightRecorder*> g_active{nullptr};

// Crash-dump registry: fixed array of atomic slots so the fatal-signal
// handler can walk it without locks or allocation. Slots are claimed by
// CAS and cleared on unregister; the handler tolerates concurrent
// mutation (it reads each slot once).
std::atomic<FlightRecorder*> g_registry[FlightRecorder::kMaxRegistered]{};

// ---- async-signal-safe formatting helpers -------------------------------
//
// Everything below the dump path builds lines in caller-provided stack
// buffers and emits them with raw write(2). No allocation, no stdio, no
// locale — the only libc calls are async-signal-safe per POSIX.

struct SafeBuf {
  char* data;
  std::size_t cap;
  std::size_t len = 0;

  void put(char c) {
    if (len < cap) data[len++] = c;
  }
  void puts(const char* s) {
    while (*s != '\0') put(*s++);
  }
  void put_sv(std::string_view s) {
    for (const char c : s) put(c);
  }
  void put_int(std::int64_t v) {
    if (v < 0) {
      put('-');
      // Negate digit-by-digit via unsigned to survive INT64_MIN.
      put_uint(static_cast<std::uint64_t>(-(v + 1)) + 1);
      return;
    }
    put_uint(static_cast<std::uint64_t>(v));
  }
  void put_uint(std::uint64_t v) {
    char tmp[24];
    std::size_t n = 0;
    do {
      tmp[n++] = static_cast<char>('0' + v % 10);
      v /= 10;
    } while (v != 0);
    while (n > 0) put(tmp[--n]);
  }
  /// micros rendered as fixed-point seconds ("12.345678").
  void put_micros_as_seconds(std::uint64_t micros) {
    put_uint(micros / 1000000);
    put('.');
    std::uint64_t frac = micros % 1000000;
    for (std::uint64_t div = 100000; div > 0; div /= 10) {
      put(static_cast<char>('0' + frac / div));
      frac %= div;
    }
  }
};

void safe_write(int fd, const char* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::write(fd, data + off, len - off);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // best effort — nothing sane to do mid-crash
    }
    off += static_cast<std::size_t>(n);
  }
}

// ---- crash handler state ------------------------------------------------

constexpr int kCrashSignals[] = {SIGSEGV, SIGBUS, SIGABRT, SIGFPE, SIGILL};
constexpr std::size_t kCrashSignalCount =
    sizeof kCrashSignals / sizeof kCrashSignals[0];

struct sigaction g_saved_actions[kCrashSignalCount];
std::atomic<bool> g_handlers_installed{false};
std::atomic<int> g_dump_fd{-1};  ///< extra dump target beyond stderr

extern "C" void fdiam_crash_handler(int sig) {
  // Re-entrancy guard: a second fault inside the dump must not recurse.
  static std::atomic<bool> dumping{false};
  bool expected = false;
  if (dumping.compare_exchange_strong(expected, true)) {
    // Dump every registered recorder (a daemon registers one per
    // in-flight solve), then the primary if it is not also registered —
    // so concurrent solves each report their own stage/bounds instead of
    // the crash clobbering them into one.
    FlightRecorder* const primary = g_active.load(std::memory_order_acquire);
    const int fd = g_dump_fd.load(std::memory_order_relaxed);
    bool dumped_primary = false;
    bool dumped_any = false;
    for (std::size_t i = 0; i < FlightRecorder::kMaxRegistered; ++i) {
      FlightRecorder* fr = g_registry[i].load(std::memory_order_acquire);
      if (fr == nullptr) continue;
      fr->dump(STDERR_FILENO, sig);
      if (fd >= 0) fr->dump(fd, sig);
      dumped_any = true;
      if (fr == primary) dumped_primary = true;
    }
    if (primary != nullptr && !dumped_primary) {
      primary->dump(STDERR_FILENO, sig);
      if (fd >= 0) primary->dump(fd, sig);
      dumped_any = true;
    }
    if (!dumped_any) {
      char line[64];
      SafeBuf b{line, sizeof line};
      b.puts("[fdiam] fatal signal=");
      b.put_int(sig);
      b.puts(", no flight recorder active\n");
      safe_write(STDERR_FILENO, b.data, b.len);
    }
  }
  // Restore default disposition and re-raise so the process still dies
  // with the right wait status (and a core where ulimits allow one).
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

}  // namespace

std::string_view FlightRecorder::event_kind_name(EventKind k) {
  switch (k) {
    case EventKind::kLog: return "log";
    case EventKind::kSpanBegin: return "span_begin";
    case EventKind::kSpanEnd: return "span_end";
    case EventKind::kBound: return "bound";
    case EventKind::kHeartbeat: return "heartbeat";
  }
  return "?";
}

void FlightRecorder::record(EventKind kind, LogLevel level,
                            std::string_view text, std::int64_t a,
                            std::int64_t b) {
  const std::uint64_t ticket = head_.fetch_add(1, std::memory_order_acq_rel);
  Slot& s = slots_[ticket % kSlots];
  // Invalidate first so a reader never pairs the new sequence number
  // with the previous occupant's payload.
  s.seq.store(0, std::memory_order_release);
  s.micros = static_cast<std::uint64_t>(mono_seconds() * 1e6);
  s.a = a;
  s.b = b;
  s.kind = kind;
  s.level = level;
  s.tid = static_cast<std::uint16_t>(log_thread_ordinal());
  const std::size_t n = text.size() < kTextSize - 1 ? text.size()
                                                    : kTextSize - 1;
  std::memcpy(s.text, text.data(), n);
  s.text[n] = '\0';
  s.seq.store(ticket + 1, std::memory_order_release);
}

void FlightRecorder::dump(int fd, int signal) const {
  char line[256];
  {
    SafeBuf b{line, sizeof line};
    b.puts("[fdiam] flight recorder dump");
    if (signal >= 0) {
      b.puts(": crash signal=");
      b.put_int(signal);
    }
    b.put('\n');
    safe_write(fd, b.data, b.len);
  }
  {
    SafeBuf b{line, sizeof line};
    b.puts("[fdiam] crash: signal=");
    b.put_int(signal);
    b.puts(" stage=");
    if (has_stage_.load(std::memory_order_relaxed)) {
      b.put_sv(util_stage_name(
          static_cast<UtilStage>(stage_.load(std::memory_order_relaxed))));
    } else {
      b.put('?');
    }
    b.puts(" bound_lower=");
    if (has_bounds_.load(std::memory_order_relaxed)) {
      b.put_int(bound_lower_.load(std::memory_order_relaxed));
      b.puts(" bound_upper=");
      const std::int64_t up = bound_upper_.load(std::memory_order_relaxed);
      if (up < 0) {
        b.put('?');
      } else {
        b.put_int(up);
      }
    } else {
      b.puts("? bound_upper=?");
    }
    b.puts(" events=");
    b.put_uint(head_.load(std::memory_order_relaxed));
    b.put('\n');
    safe_write(fd, b.data, b.len);
  }
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  // Oldest surviving slot first. When the ring has not wrapped, slots
  // beyond head have seq 0 and are skipped.
  for (std::size_t i = 0; i < kSlots; ++i) {
    const Slot& s = slots_[(head + i) % kSlots];
    const std::uint64_t seq = s.seq.load(std::memory_order_acquire);
    if (seq == 0) continue;  // empty or mid-write (torn) — skip
    SafeBuf b{line, sizeof line};
    b.puts("  #");
    b.put_uint(seq - 1);
    b.puts(" +");
    b.put_micros_as_seconds(s.micros);
    b.puts("s ");
    b.put_sv(event_kind_name(s.kind));
    b.put('/');
    b.put_sv(log_level_name(s.level));
    b.puts(" tid=");
    b.put_uint(s.tid);
    b.put(' ');
    // s.text is NUL-terminated by record(); cap defensively anyway.
    for (std::size_t j = 0; j < kTextSize && s.text[j] != '\0'; ++j) {
      b.put(s.text[j]);
    }
    if (s.a != 0 || s.b != 0) {
      b.puts(" a=");
      b.put_int(s.a);
      b.puts(" b=");
      b.put_int(s.b);
    }
    b.put('\n');
    safe_write(fd, b.data, b.len);
  }
  {
    SafeBuf b{line, sizeof line};
    b.puts("[fdiam] end of flight recorder dump\n");
    safe_write(fd, b.data, b.len);
  }
}

FlightRecorder* FlightRecorder::install(FlightRecorder* fr) {
  FlightRecorder* prev = g_active.exchange(fr, std::memory_order_acq_rel);
  // Keep the registry consistent with the primary slot so a plain
  // single-solve install is still crash-dumped exactly once.
  if (prev != nullptr && prev != fr) unregister_recorder(prev);
  if (fr != nullptr) register_recorder(fr);
  return prev;
}

FlightRecorder* FlightRecorder::active() {
  return g_active.load(std::memory_order_acquire);
}

bool FlightRecorder::register_recorder(FlightRecorder* fr) {
  if (fr == nullptr) return false;
  // Idempotent: already registered counts as success.
  for (auto& slot : g_registry) {
    if (slot.load(std::memory_order_acquire) == fr) return true;
  }
  for (auto& slot : g_registry) {
    FlightRecorder* expected = nullptr;
    if (slot.compare_exchange_strong(expected, fr,
                                     std::memory_order_acq_rel)) {
      return true;
    }
  }
  return false;  // registry full — recorder simply not crash-dumped
}

void FlightRecorder::unregister_recorder(FlightRecorder* fr) {
  if (fr == nullptr) return;
  for (auto& slot : g_registry) {
    FlightRecorder* expected = fr;
    slot.compare_exchange_strong(expected, nullptr,
                                 std::memory_order_acq_rel);
  }
}

std::size_t FlightRecorder::registered_count() {
  std::size_t n = 0;
  for (const auto& slot : g_registry) {
    n += slot.load(std::memory_order_acquire) != nullptr ? 1 : 0;
  }
  return n;
}

bool FlightRecorder::install_crash_handlers(const std::string& path) {
  bool opened = true;
  if (!path.empty()) {
    const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      const int prev = g_dump_fd.exchange(fd, std::memory_order_relaxed);
      if (prev >= 0) ::close(prev);
    } else {
      opened = false;
    }
  }
  if (!g_handlers_installed.exchange(true, std::memory_order_acq_rel)) {
    struct sigaction sa;
    std::memset(&sa, 0, sizeof sa);
    sa.sa_handler = fdiam_crash_handler;
    sigemptyset(&sa.sa_mask);
    // No SA_RESETHAND: the handler restores SIG_DFL itself after the
    // dump, and the re-entrancy guard covers faults inside the dump.
    sa.sa_flags = 0;
    for (std::size_t i = 0; i < kCrashSignalCount; ++i) {
      ::sigaction(kCrashSignals[i], &sa, &g_saved_actions[i]);
    }
  }
  return opened;
}

void FlightRecorder::uninstall_crash_handlers() {
  if (g_handlers_installed.exchange(false, std::memory_order_acq_rel)) {
    for (std::size_t i = 0; i < kCrashSignalCount; ++i) {
      ::sigaction(kCrashSignals[i], &g_saved_actions[i], nullptr);
    }
  }
  const int fd = g_dump_fd.exchange(-1, std::memory_order_relaxed);
  if (fd >= 0) ::close(fd);
}

}  // namespace fdiam::obs
