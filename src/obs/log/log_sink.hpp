#pragma once
// Bridges the solver's FDiamEvent trace stream onto the structured
// logger and the crash flight recorder: milestones (start, initial
// bound, winnow, chains, bound raises, region extensions, done) become
// info records; the per-vertex-decision events (eccentricity,
// eliminate) become debug records so info-level logs stay
// O(algorithmic decisions), not O(evaluated vertices).
//
// The returned sink also feeds span/bound events into the active
// FlightRecorder regardless of the logger level — the crash ring is a
// post-mortem artifact, not a verbosity surface, so it should carry
// solve milestones even when logging is off.

#include "core/fdiam.hpp"

namespace fdiam::obs {

class Logger;

/// A trace sink forwarding events to `log` (default: the global
/// instance()). Compose with other sinks via the usual fan-out vector
/// in fdiam_cli. The level filter is evaluated per event, so flipping
/// the logger level mid-run takes effect immediately.
[[nodiscard]] FDiamTrace make_log_trace_sink();
[[nodiscard]] FDiamTrace make_log_trace_sink(Logger& log);

}  // namespace fdiam::obs
