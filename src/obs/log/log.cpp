#include "obs/log/log.hpp"

#include <cctype>
#include <charconv>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <ctime>

#include "obs/json.hpp"
#include "obs/log/flight.hpp"

namespace fdiam::obs {

namespace {

void append_double(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";  // JSON has no Infinity/NaN tokens
    return;
  }
  char buf[40];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v);
  (void)ec;  // 40 bytes always suffice for a finite double
  out.append(buf, static_cast<std::size_t>(end - buf));
}

void append_int(std::string& out, std::int64_t v) {
  char buf[24];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v);
  (void)ec;
  out.append(buf, static_cast<std::size_t>(end - buf));
}

void append_uint(std::string& out, std::uint64_t v) {
  char buf[24];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v);
  (void)ec;
  out.append(buf, static_cast<std::size_t>(end - buf));
}

/// Escape-and-append without the temporary json_escape would allocate
/// for the (overwhelmingly common) clean-string case.
void append_escaped(std::string& out, std::string_view s) {
  bool clean = true;
  for (const char c : s) {
    if (c == '"' || c == '\\' || static_cast<unsigned char>(c) < 0x20) {
      clean = false;
      break;
    }
  }
  if (clean) {
    out += s;
  } else {
    out += json_escape(s);
  }
}

/// UTC wall timestamp, ISO-8601 with milliseconds.
void append_wall_timestamp(std::string& out) {
  using namespace std::chrono;
  const auto now = system_clock::now();
  const auto secs = time_point_cast<seconds>(now);
  const auto ms = duration_cast<milliseconds>(now - secs).count();
  const std::time_t t = system_clock::to_time_t(secs);
  std::tm tm{};
  gmtime_r(&t, &tm);
  char buf[40];
  const std::size_t n =
      std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%S", &tm);
  out.append(buf, n);
  char msbuf[8];
  std::snprintf(msbuf, sizeof msbuf, ".%03dZ", static_cast<int>(ms));
  out += msbuf;
}

}  // namespace

std::string_view log_level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kTrace: return "trace";
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

std::optional<LogLevel> log_level_from_name(std::string_view name) {
  std::string lower(name);
  for (char& c : lower) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  for (const LogLevel l :
       {LogLevel::kTrace, LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
        LogLevel::kError, LogLevel::kOff}) {
    if (lower == log_level_name(l)) return l;
  }
  return std::nullopt;
}

void LogField::append_to(std::string& out) const {
  out += ",\"";
  out += key_;
  out += "\":";
  switch (kind_) {
    case Kind::kInt: append_int(out, i_); break;
    case Kind::kUint: append_uint(out, u_); break;
    case Kind::kDouble: append_double(out, d_); break;
    case Kind::kBool: out += b_ ? "true" : "false"; break;
    case Kind::kString:
      out += '"';
      append_escaped(out, s_);
      out += '"';
      break;
  }
}

double mono_seconds() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point epoch = clock::now();
  return std::chrono::duration<double>(clock::now() - epoch).count();
}

unsigned log_thread_ordinal() {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned ordinal =
      next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

Logger::~Logger() { close_output(); }

void Logger::set_output(std::FILE* out) {
  const std::lock_guard<std::mutex> lock(output_mutex_);
  if (owned_ != nullptr) {
    std::fclose(owned_);
    owned_ = nullptr;
  }
  out_.store(out, std::memory_order_release);
  write_failed_.store(false, std::memory_order_relaxed);
}

bool Logger::open_output(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::lock_guard<std::mutex> lock(output_mutex_);
  if (owned_ != nullptr) std::fclose(owned_);
  owned_ = f;
  out_.store(f, std::memory_order_release);
  write_failed_.store(false, std::memory_order_relaxed);
  return true;
}

void Logger::close_output() { set_output(nullptr); }

void Logger::flush() {
  std::FILE* out = out_.load(std::memory_order_acquire);
  if (std::fflush(out != nullptr ? out : stderr) != 0) {
    write_failed_.store(true, std::memory_order_relaxed);
  }
}

void Logger::log(LogLevel l, std::string_view subsystem, std::string_view msg,
                 std::initializer_list<LogField> fields) {
  if (!enabled(l)) return;
  // Per-thread buffer: the whole record is formatted off to the side and
  // hits the stream in one fwrite, whose internal FILE lock guarantees
  // whole-line atomicity without a logger-level mutex.
  thread_local std::string buf;
  buf.clear();
  buf += "{\"ts\":\"";
  append_wall_timestamp(buf);
  buf += "\",\"mono_s\":";
  append_double(buf, mono_seconds());
  buf += ",\"level\":\"";
  buf += log_level_name(l);
  buf += "\",\"tid\":";
  append_uint(buf, log_thread_ordinal());
  buf += ",\"sub\":\"";
  append_escaped(buf, subsystem);
  buf += "\",\"msg\":\"";
  append_escaped(buf, msg);
  buf += '"';
  for (const LogField& f : fields) f.append_to(buf);
  buf += "}\n";

  std::FILE* out = out_.load(std::memory_order_acquire);
  if (out == nullptr) out = stderr;
  if (std::fwrite(buf.data(), 1, buf.size(), out) != buf.size()) {
    write_failed_.store(true, std::memory_order_relaxed);
  }
  if (l >= LogLevel::kWarn) std::fflush(out);
  records_.fetch_add(1, std::memory_order_relaxed);

  // Mirror into the crash ring so a post-mortem dump shows the last few
  // records even when the stream went to a file that died with the
  // process. The text slot keeps "sub: msg", truncated.
  if (FlightRecorder* fr = FlightRecorder::active()) {
    char text[FlightRecorder::kTextSize];
    std::size_t n = 0;
    for (const char c : subsystem) {
      if (n + 3 >= sizeof text) break;
      text[n++] = c;
    }
    text[n++] = ':';
    text[n++] = ' ';
    for (const char c : msg) {
      if (n + 1 >= sizeof text) break;
      text[n++] = c;
    }
    text[n] = '\0';
    fr->record(FlightRecorder::EventKind::kLog, l,
               std::string_view(text, n));
  }
}

void Logger::configure_from_env() {
  if (const char* lvl = std::getenv("FDIAM_LOG")) {
    if (const auto parsed = log_level_from_name(lvl)) set_level(*parsed);
  }
  if (const char* path = std::getenv("FDIAM_LOG_OUT")) {
    if (*path != '\0' && !open_output(path)) {
      std::fprintf(stderr,
                   "{\"level\":\"error\",\"sub\":\"log\",\"msg\":"
                   "\"cannot open FDIAM_LOG_OUT\",\"path\":\"%s\"}\n",
                   path);
    }
  }
}

Logger& Logger::instance() {
  static Logger logger;
  static const bool configured = [] {
    logger.configure_from_env();
    return true;
  }();
  (void)configured;
  return logger;
}

}  // namespace fdiam::obs
