#pragma once
// Dependency-free JSON support for the observability layer: a streaming
// writer (used by RunReport, TraceSession, and the bench harness), a
// validating recursive-descent scanner (used by tests and the
// verify-telemetry ctest so no external JSON tool is needed), and a
// path lookup that extracts individual values from a serialized document
// without materializing a DOM.

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace fdiam::obs {

/// Streaming JSON emitter with correct string escaping and pretty
/// printing. The caller drives the nesting (begin_object/end_object,
/// begin_array/end_array); arity and comma placement are handled here.
/// Misuse (e.g. a value with no pending key inside an object) trips an
/// assert in debug builds and emits structurally broken output otherwise,
/// so tests validate every produced document with json_valid().
class JsonWriter {
 public:
  /// indent <= 0 emits compact single-line JSON.
  explicit JsonWriter(std::ostream& os, int indent = 2)
      : os_(os), indent_(indent) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emit the key of the next object member.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// Emit a pre-serialized JSON fragment verbatim (caller guarantees
  /// validity — used to splice TraceSession arg objects).
  JsonWriter& raw(std::string_view json);

  /// key + value in one call.
  template <typename T>
  JsonWriter& field(std::string_view k, T v) {
    key(k);
    return value(v);
  }

  /// Number of unclosed containers; 0 once the document is complete.
  [[nodiscard]] int depth() const { return static_cast<int>(stack_.size()); }

 private:
  enum class Ctx : std::uint8_t { kObject, kArray };
  void separator();  // comma/newline/indent before the next element
  void open(Ctx ctx, char brace);
  void close(Ctx ctx, char brace);

  std::ostream& os_;
  int indent_;
  std::vector<Ctx> stack_;
  std::vector<bool> has_elems_;
  bool key_pending_ = false;
};

/// Escape `s` as the contents of a JSON string (no surrounding quotes).
std::string json_escape(std::string_view s);

/// Strict structural validation of a complete JSON document (one value,
/// trailing whitespace allowed). Accepts exactly RFC 8259: no comments,
/// no trailing commas, no unquoted keys. Depth-capped at 256 so malformed
/// input cannot overflow the stack.
[[nodiscard]] bool json_valid(std::string_view text);

/// Like json_valid, but on failure returns a one-line diagnostic with the
/// byte offset and a quoted snippet of the offending input, e.g.
/// `byte 17: invalid value (near "nan,")` — json_check prints this so a
/// broken report pinpoints the writer bug (a raw NaN/Inf token, a
/// truncated file) instead of a bare INVALID. Returns nullopt when valid.
[[nodiscard]] std::optional<std::string> json_diagnose(std::string_view text);

/// Find the raw text of the value at `dotted_path` (e.g. "result.diameter"
/// or "tables.0.title" — decimal components index arrays) inside a valid
/// JSON document. Returns std::nullopt when the path is absent or the
/// document is malformed. The returned slice is trimmed and still JSON
/// (strings keep their quotes).
std::optional<std::string_view> json_lookup(std::string_view text,
                                            std::string_view dotted_path);

/// json_lookup + numeric conversion.
std::optional<double> json_number(std::string_view text,
                                  std::string_view dotted_path);

/// json_lookup + string unescaping; nullopt when the value is not a string.
std::optional<std::string> json_string(std::string_view text,
                                       std::string_view dotted_path);

}  // namespace fdiam::obs
