#include "obs/audit.hpp"

#include <algorithm>
#include <cstdint>
#include <unordered_map>

#include "bfs/bfs.hpp"
#include "core/fdiam.hpp"

namespace fdiam::obs {

namespace {

struct ErrorSink {
  std::vector<std::string>& errors;
  std::size_t max_errors;
  std::uint64_t total = 0;

  void add(std::string msg) {
    ++total;
    if (max_errors == 0 || errors.size() < max_errors) {
      errors.push_back(std::move(msg));
    }
  }

  void finish() {
    if (total > errors.size()) {
      errors.push_back("... and " + std::to_string(total - errors.size()) +
                       " more violation(s)");
    }
  }
};

std::string vtx(vid_t v, const VertexRecord& r) {
  return "vertex " + std::to_string(v) + " (" +
         std::string(prov_stage_name(r.stage)) + ", round " +
         std::to_string(r.round) + "): ";
}

}  // namespace

AuditResult audit_provenance(const Csr& g, const ProvenanceLog& log,
                             const AuditOptions& opt) {
  const vid_t n = g.num_vertices();
  if (log.n != n || log.records.size() != n) {
    throw std::runtime_error(
        "provenance log does not match the graph: log has " +
        std::to_string(log.n) + " vertices (" +
        std::to_string(log.records.size()) + " records), graph has " +
        std::to_string(n));
  }

  AuditResult out;
  ErrorSink sink{out.errors, opt.max_errors};

  // --- Ground truth: one full BFS per vertex (the auditor's whole point
  // is to share zero pruning logic with the solver it checks). ----------
  std::vector<dist_t> true_ecc(n, 0);
#pragma omp parallel
  {
    std::vector<dist_t> dist;
#pragma omp for schedule(dynamic, 64)
    for (std::int64_t vi = 0; vi < static_cast<std::int64_t>(n); ++vi) {
      const auto v = static_cast<vid_t>(vi);
      true_ecc[v] = bfs_distances_serial(g, v, dist);
    }
  }
  out.bfs_traversals += n;
  dist_t true_diameter = 0;
  for (vid_t v = 0; v < n; ++v) {
    true_diameter = std::max(true_diameter, true_ecc[v]);
  }
  out.true_diameter = true_diameter;

  // --- Global oracle -----------------------------------------------------
  if (log.timed_out) {
    if (log.diameter > true_diameter) {
      sink.add("timed-out run reports diameter " +
               std::to_string(log.diameter) +
               " above the true diameter " + std::to_string(true_diameter));
    }
  } else if (log.diameter != true_diameter) {
    sink.add("reported diameter " + std::to_string(log.diameter) +
             " != true diameter " + std::to_string(true_diameter));
  }

  // --- Per-record invariants, grouped by anchor so each anchor costs one
  // ground-truth BFS. -----------------------------------------------------
  std::unordered_map<vid_t, std::vector<vid_t>> by_anchor;
  for (vid_t v = 0; v < n; ++v) {
    const VertexRecord& r = log.records[v];
    switch (r.stage) {
      case ProvStage::kActive:
        if (!log.timed_out) {
          sink.add("vertex " + std::to_string(v) +
                   ": no removal record, but the run completed");
        }
        continue;
      case ProvStage::kDegree0:
        ++out.records_checked;
        if (g.degree(v) != 0) {
          sink.add(vtx(v, r) + "tagged degree0 but degree is " +
                   std::to_string(g.degree(v)));
        } else if (true_ecc[v] != 0) {
          sink.add(vtx(v, r) + "isolated vertex with nonzero eccentricity");
        }
        continue;
      case ProvStage::kTwoSweepSeed:
      case ProvStage::kEvaluated:
        ++out.records_checked;
        if (r.value != true_ecc[v]) {
          sink.add(vtx(v, r) + "recorded eccentricity " +
                   std::to_string(r.value) + " != true eccentricity " +
                   std::to_string(true_ecc[v]));
        }
        if (r.value > r.bound) {
          sink.add(vtx(v, r) + "evaluated at " + std::to_string(r.value) +
                   " above the recorded bound " + std::to_string(r.bound));
        }
        continue;
      case ProvStage::kExtension:
        ++out.records_checked;
        if (true_ecc[v] > r.value) {
          sink.add(vtx(v, r) + "extension bound " + std::to_string(r.value) +
                   " below the true eccentricity " +
                   std::to_string(true_ecc[v]) + " (unsound removal)");
        }
        if (r.value > r.bound) {
          sink.add(vtx(v, r) + "extension value " + std::to_string(r.value) +
                   " exceeds the fresh bound " + std::to_string(r.bound));
        }
        continue;
      case ProvStage::kWinnow:
      case ProvStage::kChainTail:
      case ProvStage::kChainAnchorRegion:
      case ProvStage::kEliminate:
        // Distance-from-anchor invariants: deferred to the per-anchor BFS.
        ++out.records_checked;
        if (r.anchor >= n) {
          sink.add(vtx(v, r) + "anchor " + std::to_string(r.anchor) +
                   " out of range");
          continue;
        }
        by_anchor[r.anchor].push_back(v);
        continue;
    }
  }

  std::vector<dist_t> dist;
  for (const auto& [anchor, members] : by_anchor) {
    bfs_distances_serial(g, anchor, dist);
    ++out.bfs_traversals;
    for (const vid_t v : members) {
      const VertexRecord& r = log.records[v];
      const dist_t d = dist[v];
      if (d < 0) {
        sink.add(vtx(v, r) + "anchor " + std::to_string(anchor) +
                 " cannot reach the vertex");
        continue;
      }
      switch (r.stage) {
        case ProvStage::kWinnow:
          // Theorem 2/3 precondition: the ball radius is floor(bound/2).
          if (d > r.bound / 2) {
            sink.add(vtx(v, r) + "distance " + std::to_string(d) +
                     " from winnow center " + std::to_string(anchor) +
                     " exceeds floor(bound/2) = " +
                     std::to_string(r.bound / 2));
          }
          if (r.value != -1) {
            sink.add(vtx(v, r) + "winnow record carries value " +
                     std::to_string(r.value) + " instead of the sentinel -1");
          }
          break;
        case ProvStage::kChainTail:
        case ProvStage::kChainAnchorRegion: {
          // bound holds the chain length s; value the raw MAX-based
          // marker the pseudo-bound Eliminate recorded.
          const dist_t s = r.bound;
          if (d > s) {
            sink.add(vtx(v, r) + "distance " + std::to_string(d) +
                     " from chain anchor " + std::to_string(anchor) +
                     " exceeds the chain length " + std::to_string(s));
          }
          if (r.value != FDiam::kChainMax - s + d) {
            sink.add(vtx(v, r) + "chain marker " + std::to_string(r.value) +
                     " does not decode to MAX - s + dist (s = " +
                     std::to_string(s) + ", dist = " + std::to_string(d) +
                     ")");
          }
          break;
        }
        case ProvStage::kEliminate:
          // Theorem 1: ecc(v) <= ecc(anchor) + d, recorded exactly.
          if (r.value != true_ecc[anchor] + d) {
            sink.add(vtx(v, r) + "recorded bound " + std::to_string(r.value) +
                     " != ecc(anchor) + dist = " +
                     std::to_string(true_ecc[anchor]) + " + " +
                     std::to_string(d));
          }
          if (r.value > r.bound) {
            sink.add(vtx(v, r) + "Theorem-1 bound " + std::to_string(r.value) +
                     " exceeds the diameter bound " + std::to_string(r.bound) +
                     " in effect");
          }
          if (true_ecc[v] > r.value) {
            sink.add(vtx(v, r) + "Theorem-1 bound " + std::to_string(r.value) +
                     " below the true eccentricity " +
                     std::to_string(true_ecc[v]) + " (unsound removal)");
          }
          break;
        default:
          break;  // unreachable: only anchor stages land in by_anchor
      }
    }
  }

  // --- Bound-evolution timeline -------------------------------------------
  const std::size_t tn = log.timeline.size();
  out.timeline_checked = tn;
  if (tn == 0) {
    if (!log.timed_out && log.diameter != 0) {
      sink.add("empty bound timeline but nonzero diameter " +
               std::to_string(log.diameter));
    }
  } else {
    if (log.timeline.front().old_bound != -1) {
      sink.add("timeline entry 0: initial old bound " +
               std::to_string(log.timeline.front().old_bound) +
               " != -1 sentinel");
    }
    for (std::size_t i = 0; i < tn; ++i) {
      const BoundStep& s = log.timeline[i];
      const std::string at = "timeline entry " + std::to_string(i) + ": ";
      if (s.new_bound <= s.old_bound) {
        sink.add(at + "bound not increasing (" +
                 std::to_string(s.old_bound) + " -> " +
                 std::to_string(s.new_bound) + ")");
      }
      if (i > 0) {
        if (s.old_bound != log.timeline[i - 1].new_bound) {
          sink.add(at + "not contiguous (old " +
                   std::to_string(s.old_bound) + " != previous new " +
                   std::to_string(log.timeline[i - 1].new_bound) + ")");
        }
        if (s.alive > log.timeline[i - 1].alive) {
          sink.add(at + "alive count grew (" +
                   std::to_string(log.timeline[i - 1].alive) + " -> " +
                   std::to_string(s.alive) + ")");
        }
      }
      if (s.witness >= n) {
        sink.add(at + "witness " + std::to_string(s.witness) +
                 " out of range");
        continue;
      }
      const bool relaxed = log.capped && i == 0;
      if (relaxed ? s.new_bound > true_ecc[s.witness]
                  : s.new_bound != true_ecc[s.witness]) {
        sink.add(at + "new bound " + std::to_string(s.new_bound) +
                 (relaxed ? " above" : " != ") +
                 " true eccentricity of witness " +
                 std::to_string(s.witness) + " (" +
                 std::to_string(true_ecc[s.witness]) + ")");
      }
    }
    if (log.timeline.back().new_bound != log.diameter) {
      sink.add("timeline ends at bound " +
               std::to_string(log.timeline.back().new_bound) +
               " but the run reported diameter " +
               std::to_string(log.diameter));
    }
  }

  sink.finish();
  out.ok = sink.total == 0;
  return out;
}

}  // namespace fdiam::obs
