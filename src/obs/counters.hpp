#pragma once
// Thread-safe named counter/gauge registry with text and JSON exposition.
//
// Counters are monotonic integers (events, traversals, cache hits);
// gauges are last-write-wins doubles (frontier sizes, thresholds).
// Registration takes a mutex once per distinct name; the returned handle
// is a stable reference whose updates are plain atomics, so hot paths can
// cache it and pay no locking. A process-wide registry is available via
// metrics() for code that has no natural place to thread a registry
// through (the CLI's BFS level hook uses it).

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/histogram.hpp"

namespace fdiam::obs {

class Counter {
 public:
  void inc(std::int64_t delta = 1) {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t get() const {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double get() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> v_{0.0};
};

class MetricRegistry {
 public:
  /// Find-or-create; the reference stays valid for the registry's
  /// lifetime. Counter, gauge, and histogram namespaces are disjoint:
  /// registering "x" as more than one kind is allowed and yields
  /// distinct series.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// Distribution series (util/histogram.hpp). Naming convention: an
  /// optional `[key=value,...]` suffix ("fdiam.bfs.seconds[stage=ecc]")
  /// is parsed into labels by the OpenMetrics writer
  /// (obs/metrics/openmetrics.hpp); the JSON report keeps the raw name.
  Histogram& histogram(std::string_view name);

  /// `name value` lines sorted by name (Prometheus-style exposition
  /// without type annotations). Counters print as integers.
  void write_text(std::ostream& os) const;

  /// One flat JSON object {"name": value, ...} sorted by name.
  void write_json(std::ostream& os) const;

  /// Snapshot of every scalar metric as (name, value), counters first.
  /// Histograms are not flattened here; see snapshot_histograms().
  [[nodiscard]] std::vector<std::pair<std::string, double>> snapshot() const;

  /// Snapshot of every histogram as (name, snapshot), sorted by name.
  [[nodiscard]] std::vector<std::pair<std::string, HistogramSnapshot>>
  snapshot_histograms() const;

  /// Typed snapshots, sorted by name — the OpenMetrics writer needs to
  /// know counter vs gauge to pick the sample suffix and TYPE.
  [[nodiscard]] std::vector<std::pair<std::string, std::int64_t>>
  snapshot_counters() const;
  [[nodiscard]] std::vector<std::pair<std::string, double>> snapshot_gauges()
      const;

  /// Zero all counters and histograms (gauges keep their last value).
  /// Tests use this to isolate runs sharing the global registry.
  void reset_counters();

  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::mutex mu_;
  // unique_ptr keeps handle addresses stable across rehash/insert.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Process-wide registry.
MetricRegistry& metrics();

}  // namespace fdiam::obs
