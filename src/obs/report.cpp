#include "obs/report.hpp"

#include <chrono>
#include <ctime>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "obs/json.hpp"

namespace fdiam::obs {

namespace {

const char* start_policy_name(StartPolicy p) {
  switch (p) {
    case StartPolicy::kMaxDegree: return "max_degree";
    case StartPolicy::kVertexZero: return "vertex_zero";
    case StartPolicy::kFourSweepCenter: return "four_sweep_center";
  }
  return "unknown";
}

}  // namespace

EnvInfo capture_env() {
  EnvInfo env;
#ifdef _OPENMP
  env.openmp = true;
  env.omp_max_threads = omp_get_max_threads();
#endif
#ifdef NDEBUG
  env.build_type = "release";
#else
  env.build_type = "debug";
#endif
#ifdef __VERSION__
  env.compiler = __VERSION__;
#endif
  const std::time_t now =
      std::chrono::system_clock::to_time_t(std::chrono::system_clock::now());
  std::tm tm_utc{};
  gmtime_r(&now, &tm_utc);
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
  env.timestamp = buf;
  return env;
}

void write_env_fields(JsonWriter& w, const EnvInfo& env) {
  w.key("env").begin_object();
  w.field("omp_max_threads", env.omp_max_threads);
  w.field("openmp", env.openmp);
  w.field("build_type", std::string_view(env.build_type));
  w.field("compiler", std::string_view(env.compiler));
  w.field("timestamp", std::string_view(env.timestamp));
  w.end_object();
}

void RunReport::write_json(std::ostream& os) const {
  const FDiamStats& st = result.stats;
  const BfsStats& bfs = result.bfs;

  JsonWriter w(os);
  w.begin_object();
  w.field("schema", std::string_view("fdiam.run_report/v1"));

  w.key("graph").begin_object();
  w.field("name", std::string_view(graph_name));
  w.field("vertices", static_cast<std::uint64_t>(graph.vertices));
  w.field("arcs", graph.arcs);
  w.field("avg_degree", graph.avg_degree);
  w.field("max_degree", static_cast<std::uint64_t>(graph.max_degree));
  w.field("degree0", static_cast<std::uint64_t>(graph.degree0));
  w.field("degree1", static_cast<std::uint64_t>(graph.degree1));
  w.field("components", static_cast<std::uint64_t>(graph.num_components));
  w.field("largest_component",
          static_cast<std::uint64_t>(graph.largest_component));
  w.end_object();

  w.key("options").begin_object();
  w.field("parallel", options.parallel);
  w.field("direction_optimizing", options.direction_optimizing);
  w.field("bottomup_threshold", options.bottomup_threshold);
  w.field("use_winnow", options.use_winnow);
  w.field("use_eliminate", options.use_eliminate);
  w.field("use_chain", options.use_chain);
  w.field("start_policy",
          std::string_view(start_policy_name(options.start_policy)));
  w.field("randomize_scan", options.randomize_scan);
  w.field("candidate_batch", options.candidate_batch);
  w.field("time_budget_seconds", options.time_budget_seconds);
  w.end_object();

  w.key("result").begin_object();
  w.field("diameter", static_cast<std::int64_t>(result.diameter));
  w.field("witness", static_cast<std::uint64_t>(result.witness));
  w.field("connected", result.connected);
  w.field("timed_out", result.timed_out);
  w.end_object();

  w.key("stages").begin_object();
  w.key("counts").begin_object();
  w.field("bfs_calls", st.bfs_calls);
  w.field("ecc_computations", st.ecc_computations);
  w.field("winnow_calls", st.winnow_calls);
  w.field("eliminate_calls", st.eliminate_calls);
  w.field("extension_calls", st.extension_calls);
  w.end_object();
  w.key("removed").begin_object();
  w.field("winnow", static_cast<std::uint64_t>(st.removed_by_winnow));
  w.field("eliminate", static_cast<std::uint64_t>(st.removed_by_eliminate));
  w.field("chain", static_cast<std::uint64_t>(st.removed_by_chain));
  w.field("degree0", static_cast<std::uint64_t>(st.degree0_vertices));
  w.field("evaluated", static_cast<std::uint64_t>(st.evaluated));
  w.end_object();
  w.key("times_s").begin_object();
  w.field("init", st.time_init);
  w.field("winnow", st.time_winnow);
  w.field("chain", st.time_chain);
  w.field("eliminate", st.time_eliminate);
  w.field("ecc", st.time_ecc);
  w.field("other", st.time_other());
  w.field("total", st.time_total);
  w.end_object();
  w.end_object();

  w.key("bfs").begin_object();
  w.field("traversals", bfs.traversals);
  w.field("levels", bfs.levels);
  w.field("topdown_levels", bfs.topdown_levels);
  w.field("bottomup_levels", bfs.bottomup_levels);
  w.field("edges_examined", bfs.edges_examined);
  w.field("vertices_visited", bfs.vertices_visited);
  w.end_object();

  write_env_fields(w, env);

  if (!metrics.empty()) {
    w.key("metrics").begin_object();
    for (const auto& [name, value] : metrics) w.field(name, value);
    w.end_object();
  }
  w.end_object();
}

RunReport make_run_report(std::string graph_name, const GraphStats& graph,
                          const FDiamOptions& options,
                          const DiameterResult& result) {
  RunReport r;
  r.graph_name = std::move(graph_name);
  r.graph = graph;
  r.options = options;
  r.result = result;
  r.env = capture_env();
  return r;
}

}  // namespace fdiam::obs
