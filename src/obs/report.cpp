#include "obs/report.hpp"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <optional>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "obs/json.hpp"
#include "obs/metrics/metrics_report.hpp"
#include "obs/perf/hw_counters.hpp"
#include "obs/prof/prof_report.hpp"
#include "obs/provenance.hpp"
#include "util/memory.hpp"

namespace fdiam::obs {

namespace {

const char* start_policy_name(StartPolicy p) {
  switch (p) {
    case StartPolicy::kMaxDegree: return "max_degree";
    case StartPolicy::kVertexZero: return "vertex_zero";
    case StartPolicy::kFourSweepCenter: return "four_sweep_center";
  }
  return "unknown";
}

/// First "model name" line of /proc/cpuinfo, or "unknown" (non-Linux,
/// ARM cores that spell it differently, restricted /proc).
std::string read_cpu_model() {
  std::string model = "unknown";
  if (std::FILE* f = std::fopen("/proc/cpuinfo", "re")) {
    char line[256];
    while (std::fgets(line, sizeof line, f) != nullptr) {
      if (std::strncmp(line, "model name", 10) != 0) continue;
      const char* colon = std::strchr(line, ':');
      if (colon == nullptr) break;
      ++colon;
      while (*colon == ' ' || *colon == '\t') ++colon;
      model = colon;
      while (!model.empty() &&
             (model.back() == '\n' || model.back() == '\r')) {
        model.pop_back();
      }
      break;
    }
    std::fclose(f);
  }
  return model;
}

/// Emit `key: value` or `key: null` — absent measurements stay visible
/// in the schema instead of silently disappearing.
void field_opt(JsonWriter& w, std::string_view key,
               const std::optional<double>& v) {
  w.key(key);
  if (v) {
    w.value(*v);
  } else {
    w.null();
  }
}

/// One counter object: every known event name is always a key; events the
/// kernel refused (no PMU, paranoid level, seccomp) serialize as null.
void write_hw_counter_fields(JsonWriter& w, const HwCounters& hw) {
  for (std::size_t i = 0; i < kHwEventCount; ++i) {
    const auto ev = static_cast<HwEvent>(i);
    w.key(hw_event_name(ev));
    if (hw.has(ev)) {
      w.value(hw.get(ev));
    } else {
      w.null();
    }
  }
}

}  // namespace

EnvInfo capture_env() {
  EnvInfo env;
#ifdef _OPENMP
  env.openmp = true;
  env.omp_max_threads = omp_get_max_threads();
#endif
#ifdef NDEBUG
  env.build_type = "release";
#else
  env.build_type = "debug";
#endif
#ifdef __VERSION__
  env.compiler = __VERSION__;
#endif
#if defined(__clang__)
  env.compiler_id = "clang";
#elif defined(__GNUC__)
  env.compiler_id = "gcc";
#else
  env.compiler_id = "unknown";
#endif
#ifdef FDIAM_GIT_SHA
  env.git_sha = FDIAM_GIT_SHA;
#else
  env.git_sha = "unknown";
#endif
  env.cpu_model = read_cpu_model();
  const std::time_t now =
      std::chrono::system_clock::to_time_t(std::chrono::system_clock::now());
  std::tm tm_utc{};
  gmtime_r(&now, &tm_utc);
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
  env.timestamp = buf;
  return env;
}

void write_env_fields(JsonWriter& w, const EnvInfo& env) {
  w.key("env").begin_object();
  w.field("omp_max_threads", env.omp_max_threads);
  w.field("openmp", env.openmp);
  w.field("build_type", std::string_view(env.build_type));
  w.field("compiler", std::string_view(env.compiler));
  w.field("compiler_id", std::string_view(env.compiler_id));
  w.field("git_sha", std::string_view(env.git_sha));
  w.field("cpu_model", std::string_view(env.cpu_model));
  w.field("timestamp", std::string_view(env.timestamp));
  w.end_object();
}

void RunReport::write_json(std::ostream& os) const {
  const FDiamStats& st = result.stats;
  const BfsStats& bfs = result.bfs;

  JsonWriter w(os);
  w.begin_object();
  w.field("schema", std::string_view("fdiam.run_report/v1"));

  w.key("graph").begin_object();
  w.field("name", std::string_view(graph_name));
  w.field("vertices", static_cast<std::uint64_t>(graph.vertices));
  w.field("arcs", graph.arcs);
  w.field("avg_degree", graph.avg_degree);
  w.field("max_degree", static_cast<std::uint64_t>(graph.max_degree));
  w.field("degree0", static_cast<std::uint64_t>(graph.degree0));
  w.field("degree1", static_cast<std::uint64_t>(graph.degree1));
  w.field("components", static_cast<std::uint64_t>(graph.num_components));
  w.field("largest_component",
          static_cast<std::uint64_t>(graph.largest_component));
  w.end_object();

  w.key("options").begin_object();
  w.field("parallel", options.parallel);
  w.field("direction_optimizing", options.direction_optimizing);
  w.field("bottomup_threshold", options.bottomup_threshold);
  w.field("use_winnow", options.use_winnow);
  w.field("use_eliminate", options.use_eliminate);
  w.field("use_chain", options.use_chain);
  w.field("start_policy",
          std::string_view(start_policy_name(options.start_policy)));
  w.field("randomize_scan", options.randomize_scan);
  w.field("candidate_batch", options.candidate_batch);
  w.field("time_budget_seconds", options.time_budget_seconds);
  w.field("hw_counters", options.hw_counters);
  w.field("provenance", options.provenance != nullptr);
  w.field("utilization", options.utilization != nullptr);
  w.end_object();

  w.key("result").begin_object();
  w.field("diameter", static_cast<std::int64_t>(result.diameter));
  w.field("witness", static_cast<std::uint64_t>(result.witness));
  w.field("connected", result.connected);
  w.field("timed_out", result.timed_out);
  w.end_object();

  w.key("stages").begin_object();
  w.key("counts").begin_object();
  w.field("bfs_calls", st.bfs_calls);
  w.field("ecc_computations", st.ecc_computations);
  w.field("winnow_calls", st.winnow_calls);
  w.field("eliminate_calls", st.eliminate_calls);
  w.field("extension_calls", st.extension_calls);
  w.end_object();
  w.key("removed").begin_object();
  w.field("winnow", static_cast<std::uint64_t>(st.removed_by_winnow));
  w.field("eliminate", static_cast<std::uint64_t>(st.removed_by_eliminate));
  w.field("chain", static_cast<std::uint64_t>(st.removed_by_chain));
  w.field("degree0", static_cast<std::uint64_t>(st.degree0_vertices));
  w.field("evaluated", static_cast<std::uint64_t>(st.evaluated));
  w.end_object();
  w.key("times_s").begin_object();
  w.field("init", st.time_init);
  w.field("winnow", st.time_winnow);
  w.field("chain", st.time_chain);
  w.field("eliminate", st.time_eliminate);
  w.field("ecc", st.time_ecc);
  w.field("other", st.time_other());
  w.field("total", st.time_total);
  w.end_object();
  w.end_object();

  w.key("bfs").begin_object();
  w.field("traversals", bfs.traversals);
  w.field("levels", bfs.levels);
  w.field("topdown_levels", bfs.topdown_levels);
  w.field("bottomup_levels", bfs.bottomup_levels);
  w.field("edges_examined", bfs.edges_examined);
  w.field("vertices_visited", bfs.vertices_visited);
  w.end_object();

  // Always present so consumers can key on "hardware.available" without
  // probing for the block. available == at least one counter (hardware
  // or software) delivered a reading; pmu distinguishes the degraded
  // software-only mode (VMs without a virtualized PMU).
  const HwCounters& hw = result.hardware;
  w.key("hardware").begin_object();
  w.field("available", hw.any());
  w.field("pmu", hw.any_hardware());
  if (!result.hw_unavailable_reason.empty()) {
    w.field("reason", std::string_view(result.hw_unavailable_reason));
  }
  if (hw.any()) {
    w.field("multiplex_scale", result.hw_multiplex_scale);
    w.key("counters").begin_object();
    write_hw_counter_fields(w, hw);
    w.end_object();
    const auto edges = static_cast<double>(bfs.edges_examined);
    w.key("derived").begin_object();
    field_opt(w, "ipc", hw.ipc());
    field_opt(w, "cache_miss_rate", hw.cache_miss_rate());
    field_opt(w, "cycles_per_edge", hw.per(HwEvent::kCycles, edges));
    field_opt(w, "instructions_per_edge",
              hw.per(HwEvent::kInstructions, edges));
    field_opt(w, "cache_misses_per_edge",
              hw.per(HwEvent::kCacheMisses, edges));
    field_opt(w, "branch_misses_per_edge",
              hw.per(HwEvent::kBranchMisses, edges));
    w.end_object();
    w.key("per_stage").begin_object();
    const std::pair<std::string_view, const HwCounters*> stages[] = {
        {"init", &st.hw_init},         {"winnow", &st.hw_winnow},
        {"chain", &st.hw_chain},       {"eliminate", &st.hw_eliminate},
        {"ecc", &st.hw_ecc}};
    for (const auto& [name, counters] : stages) {
      w.key(name).begin_object();
      write_hw_counter_fields(w, *counters);
      w.end_object();
    }
    w.end_object();
  }
  w.end_object();

  const MemProfile& mem = result.memory;
  w.key("memory").begin_object();
  w.field("available", mem.available);
  if (mem.available) {
    w.field("peak_rss_bytes", mem.peak_rss_bytes);
    w.field("rss_start_bytes", mem.rss_start_bytes);
    w.field("rss_end_bytes", mem.rss_end_bytes);
    w.field("rss_delta_bytes", mem.rss_delta_bytes());
    if (graph.vertices > 0) {
      w.field("peak_rss_bytes_per_vertex",
              static_cast<double>(mem.peak_rss_bytes) /
                  static_cast<double>(graph.vertices));
    }
  }
  // Memory-placement provenance (the out-of-core tier, docs/SCALING.md):
  // which policy the run used, how many NUMA nodes it saw, how many graph
  // bytes were file-mapped (zero-copy — resident but evictable), and the
  // anonymous RSS that actually counts against the machine.
  w.field("numa_mode",
          std::string(util::numa_mode_name(util::memory_policy().numa)));
  w.field("huge_pages", std::string(util::huge_page_mode_name(
                            util::memory_policy().huge_pages)));
  w.field("numa_nodes",
          static_cast<std::uint64_t>(util::numa_topology().nodes));
  w.field("mapped_bytes", util::mapped_bytes());
  if (const util::RssSample rss = util::read_rss(); rss.available) {
    w.field("anon_rss_bytes", rss.anon);
  }
  w.end_object();

  // Always present so consumers can key on "utilization.enabled" like
  // they do on "hardware.available"; the full aggregates appear only
  // when a UtilCollector ran (see FDiamOptions::utilization).
  w.key("utilization").begin_object();
  write_utilization_fields(w, st.util);
  w.end_object();

  if (profile != nullptr) {
    w.key("profile").begin_object();
    write_profile_fields(w, *profile);
    w.end_object();
  }

  if (provenance != nullptr) {
    w.key("provenance").begin_object();
    write_provenance_fields(w, *provenance);
    w.end_object();
  }

  if (!histograms.empty()) {
    w.key("histograms").begin_object();
    write_metrics_block(w, histograms);
    w.end_object();
  }

  write_env_fields(w, env);

  if (!metrics.empty()) {
    w.key("metrics").begin_object();
    for (const auto& [name, value] : metrics) w.field(name, value);
    w.end_object();
  }
  w.end_object();
}

RunReport make_run_report(std::string graph_name, const GraphStats& graph,
                          const FDiamOptions& options,
                          const DiameterResult& result) {
  RunReport r;
  r.graph_name = std::move(graph_name);
  r.graph = graph;
  r.options = options;
  r.result = result;
  r.env = capture_env();
  return r;
}

}  // namespace fdiam::obs
