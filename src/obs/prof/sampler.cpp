#include "obs/prof/sampler.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <sstream>
#include <string_view>
#include <vector>

#include "util/parallel.hpp"
#include "util/timer.hpp"

#if defined(__linux__)
#include <cxxabi.h>
#include <dlfcn.h>
#include <execinfo.h>
#include <signal.h>
#include <sys/syscall.h>
#include <time.h>
#include <unistd.h>

// Older glibc headers define SIGEV_THREAD_ID but not the accessor macro.
#ifndef sigev_notify_thread_id
#define sigev_notify_thread_id _sigev_un._tid
#endif
#endif  // __linux__

namespace fdiam::prof {

namespace {

constexpr int kMaxSlots = 256;
constexpr int kMaxFrames = 64;

/// Per-OS-thread capture state. The ring is a linear buffer of
/// variable-length records [depth, pc0..pc{depth-1}]; the interrupted
/// thread is the only producer, so `head` is published with a release
/// store and read with acquire by the harvesting control thread.
struct ThreadSlot {
  std::vector<std::uintptr_t> ring;
  std::atomic<std::size_t> head{0};
  std::atomic<std::uint64_t> samples{0};
  std::atomic<std::uint64_t> dropped{0};
  std::atomic<bool> armed{false};
#if defined(__linux__)
  pid_t tid = 0;
  timer_t timer{};
  bool timer_ok = false;
#endif
};

std::vector<std::unique_ptr<ThreadSlot>> g_slots;  // grows, never shrinks
std::atomic<int> g_max_depth{48};
Timer g_run_timer;
bool g_started_ok = false;
thread_local ThreadSlot* tls_slot = nullptr;

#if defined(__linux__)
bool g_handler_installed = false;

/// SIGPROF handler: async-signal-safe by construction. Touches only the
/// interrupted thread's slot; backtrace() was warmed up before any timer
/// was armed, so it cannot dlopen/malloc here.
void profiler_signal_handler(int /*sig*/, siginfo_t* /*si*/,
                             void* /*ucontext*/) {
  ThreadSlot* const slot = tls_slot;
  if (slot == nullptr || !slot->armed.load(std::memory_order_relaxed)) {
    return;
  }
  const int saved_errno = errno;
  void* frames[kMaxFrames];
  const int want = g_max_depth.load(std::memory_order_relaxed);
  const int depth = backtrace(frames, want < kMaxFrames ? want : kMaxFrames);
  const std::size_t head = slot->head.load(std::memory_order_relaxed);
  if (depth > 0 &&
      head + static_cast<std::size_t>(depth) + 1 <= slot->ring.size()) {
    slot->ring[head] = static_cast<std::uintptr_t>(depth);
    for (int i = 0; i < depth; ++i) {
      slot->ring[head + 1 + static_cast<std::size_t>(i)] =
          reinterpret_cast<std::uintptr_t>(frames[i]);
    }
    slot->head.store(head + static_cast<std::size_t>(depth) + 1,
                     std::memory_order_release);
    slot->samples.fetch_add(1, std::memory_order_relaxed);
  } else {
    slot->dropped.fetch_add(1, std::memory_order_relaxed);
  }
  errno = saved_errno;
}

pid_t current_tid() {
  return static_cast<pid_t>(::syscall(SYS_gettid));
}

/// Frames the sampler injects into every stack (its own handler, the
/// kernel signal trampoline, backtrace itself). Skipped during folding.
bool is_internal_frame(std::string_view name) {
  return name.find("profiler_signal_handler") != std::string_view::npos ||
         name.find("sigreturn") != std::string_view::npos ||
         name.find("restore_rt") != std::string_view::npos ||
         name.find("sigtramp") != std::string_view::npos ||
         name.find("linux-vdso") != std::string_view::npos ||
         name == "backtrace";
}

std::string symbolize_pc(std::uintptr_t pc) {
  Dl_info info{};
  std::string name;
  if (dladdr(reinterpret_cast<void*>(pc), &info) != 0 &&
      info.dli_sname != nullptr) {
    int status = -1;
    char* dem =
        abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    name = (status == 0 && dem != nullptr) ? dem : info.dli_sname;
    std::free(dem);
  } else if (info.dli_fname != nullptr) {
    std::string_view file = info.dli_fname;
    const std::size_t slash = file.rfind('/');
    if (slash != std::string_view::npos) file = file.substr(slash + 1);
    std::ostringstream os;
    os << file << "+0x" << std::hex
       << pc - reinterpret_cast<std::uintptr_t>(info.dli_fbase);
    name = os.str();
  } else {
    std::ostringstream os;
    os << "0x" << std::hex << pc;
    name = os.str();
  }
  // ';' is the folded-format frame separator; control chars would break
  // line-oriented parsing.
  for (char& c : name) {
    if (c == ';' || c == '\n' || c == '\r') c = ':';
  }
  return name;
}
#endif  // __linux__

}  // namespace

Sampler& Sampler::instance() {
  static Sampler s;
  return s;
}

bool Sampler::start(const SamplerOptions& opt) {
#if !defined(__linux__)
  reason_ =
      "sampling profiler requires Linux (timer_create + SIGEV_THREAD_ID)";
  (void)opt;
  g_started_ok = false;
  return false;
#else
  if (running_) {
    reason_ = "sampler already running";
    return false;
  }
  if (!(opt.rate_hz > 0.0) || opt.rate_hz > 10000.0) {
    reason_ = "sample rate must be in (0, 10000] Hz";
    return false;
  }
  if (opt.ring_words < 256) {
    reason_ = "ring_words too small (need >= 256)";
    return false;
  }
  opt_ = opt;
  g_max_depth.store(std::clamp(opt.max_depth, 2, kMaxFrames),
                    std::memory_order_relaxed);

  // Warm up backtrace on the control thread before any timer is armed:
  // its first call may dlopen libgcc_s, which is not async-signal-safe.
  {
    void* warm[4];
    (void)backtrace(warm, 4);
  }

  const int nthreads = std::min(num_threads(), kMaxSlots);
  while (static_cast<int>(g_slots.size()) < nthreads) {
    g_slots.push_back(std::make_unique<ThreadSlot>());
  }
  for (int t = 0; t < nthreads; ++t) {
    ThreadSlot& slot = *g_slots[static_cast<std::size_t>(t)];
    slot.ring.assign(opt_.ring_words, 0);
    slot.head.store(0, std::memory_order_relaxed);
    slot.samples.store(0, std::memory_order_relaxed);
    slot.dropped.store(0, std::memory_order_relaxed);
    slot.armed.store(false, std::memory_order_relaxed);
    slot.tid = 0;
    slot.timer_ok = false;
  }

  // Bind each OpenMP worker to its slot: the worker itself must set the
  // thread-local pointer the handler reads, and we need its kernel tid
  // for SIGEV_THREAD_ID. libgomp keeps the team alive between regions,
  // so these same OS threads run the solver's parallel regions later.
#ifdef _OPENMP
#pragma omp parallel num_threads(nthreads)
#endif
  {
    const int t = thread_id();
    if (t < nthreads) {
      tls_slot = g_slots[static_cast<std::size_t>(t)].get();
      g_slots[static_cast<std::size_t>(t)]->tid = current_tid();
    }
  }

  if (!g_handler_installed) {
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_sigaction = profiler_signal_handler;
    sa.sa_flags = SA_SIGINFO | SA_RESTART;
    sigemptyset(&sa.sa_mask);
    if (sigaction(SIGPROF, &sa, nullptr) != 0) {
      reason_ = std::string("sigaction(SIGPROF) failed: ") +
                std::strerror(errno);
      g_started_ok = false;
      return false;
    }
    g_handler_installed = true;
  }

  const double period_s = 1.0 / opt_.rate_hz;
  const auto period_ns = static_cast<long>(period_s * 1e9);
  int armed = 0;
  for (int t = 0; t < nthreads; ++t) {
    ThreadSlot& slot = *g_slots[static_cast<std::size_t>(t)];
    if (slot.tid == 0) continue;
    struct sigevent sev;
    std::memset(&sev, 0, sizeof(sev));
    sev.sigev_notify = SIGEV_THREAD_ID;
    sev.sigev_signo = SIGPROF;
    sev.sigev_notify_thread_id = slot.tid;
    if (timer_create(CLOCK_MONOTONIC, &sev, &slot.timer) != 0) {
      continue;  // e.g. thread exited; profile the rest of the team
    }
    slot.timer_ok = true;
    slot.armed.store(true, std::memory_order_release);
    // Stagger first expirations across the team so all threads do not
    // sample in lockstep at region boundaries.
    struct itimerspec its;
    std::memset(&its, 0, sizeof(its));
    its.it_interval.tv_sec = static_cast<time_t>(period_ns / 1000000000L);
    its.it_interval.tv_nsec = period_ns % 1000000000L;
    const long first_ns =
        std::max<long>(period_ns * (t + 1) / (nthreads + 1), 100000L);
    its.it_value.tv_sec = static_cast<time_t>(first_ns / 1000000000L);
    its.it_value.tv_nsec = first_ns % 1000000000L;
    if (timer_settime(slot.timer, 0, &its, nullptr) != 0) {
      slot.armed.store(false, std::memory_order_release);
      timer_delete(slot.timer);
      slot.timer_ok = false;
      continue;
    }
    ++armed;
  }
  if (armed == 0) {
    reason_ = "timer_create failed for every thread";
    g_started_ok = false;
    return false;
  }
  armed_threads_ = armed;
  reason_.clear();
  g_run_timer.reset();
  duration_s_ = 0.0;
  running_ = true;
  g_started_ok = true;
  return true;
#endif  // __linux__
}

void Sampler::stop() {
#if defined(__linux__)
  if (!running_) return;
  duration_s_ = g_run_timer.seconds();
  for (auto& slot_ptr : g_slots) {
    ThreadSlot& slot = *slot_ptr;
    if (!slot.timer_ok) continue;
    slot.armed.store(false, std::memory_order_release);
    timer_delete(slot.timer);
    slot.timer_ok = false;
  }
  running_ = false;
#endif
}

std::uint64_t Sampler::sample_count() const {
  std::uint64_t n = 0;
  for (const auto& slot : g_slots) {
    n += slot->samples.load(std::memory_order_relaxed);
  }
  return n;
}

FoldedProfile Sampler::folded() const {
  FoldedProfile out;
#if defined(__linux__)
  std::map<std::uintptr_t, std::string> names;
  const auto name_of = [&names](std::uintptr_t pc) -> const std::string& {
    auto it = names.find(pc);
    if (it == names.end()) {
      it = names.emplace(pc, symbolize_pc(pc)).first;
    }
    return it->second;
  };
  for (const auto& slot_ptr : g_slots) {
    const ThreadSlot& slot = *slot_ptr;
    const std::size_t head = slot.head.load(std::memory_order_acquire);
    std::size_t pos = 0;
    while (pos < head) {
      const auto depth = static_cast<std::size_t>(slot.ring[pos]);
      if (depth == 0 || pos + depth + 1 > head) break;  // truncated record
      const std::uintptr_t* pcs = &slot.ring[pos + 1];
      pos += depth + 1;
      // Skip the sampler's own frames at the leaf end. The handler is a
      // file-static function, so dladdr cannot name it — match it by
      // address instead, and drop the frame right above it too (the
      // kernel's signal-return trampoline, equally unsymbolizable on
      // most libcs). Name matching remains as a fallback for exported
      // machinery like backtrace. Bounded scan: give up after a few
      // frames so a symbolization miss cannot eat the whole stack.
      const auto handler_pc = reinterpret_cast<std::uintptr_t>(
          reinterpret_cast<void*>(&profiler_signal_handler));
      std::size_t first = 0;
      while (first < depth && first < 6) {
        const std::uintptr_t pc = pcs[first];
        if (pc >= handler_pc && pc - handler_pc < 0x2000) {
          ++first;
          if (first < depth) ++first;  // the signal trampoline
          continue;
        }
        if (!is_internal_frame(name_of(pc))) break;
        ++first;
      }
      if (first >= depth) continue;
      std::string stack;
      for (std::size_t i = depth; i-- > first;) {
        // Frames above the leaf hold return addresses: step back one
        // byte so calls at the end of a function attribute correctly.
        const std::uintptr_t pc = i == first ? pcs[i] : pcs[i] - 1;
        if (!stack.empty()) stack += ';';
        stack += name_of(pc);
      }
      if (!stack.empty()) out.add(stack, 1);
    }
  }
#endif
  return out;
}

ProfileSummary Sampler::summary(std::size_t top_n) const {
  ProfileSummary s;
  s.enabled = true;
  s.available = g_started_ok;
  s.unavailable_reason = s.available ? std::string() : reason_;
  s.rate_hz = opt_.rate_hz;
  s.duration_s = duration_s_;
  s.threads = armed_threads_;
  for (const auto& slot : g_slots) {
    s.samples += slot->samples.load(std::memory_order_relaxed);
    s.dropped += slot->dropped.load(std::memory_order_relaxed);
  }
  const auto totals = folded().frame_totals();
  for (std::size_t i = 0; i < totals.size() && i < top_n; ++i) {
    s.top.push_back({totals[i].name, totals[i].self, totals[i].total});
  }
  return s;
}

}  // namespace fdiam::prof
