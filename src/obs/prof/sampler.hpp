#pragma once
// Opt-in in-process wall-clock sampling profiler. One POSIX per-thread
// timer (timer_create + SIGEV_THREAD_ID, CLOCK_MONOTONIC) per OpenMP
// worker delivers SIGPROF at the configured rate; the handler captures a
// backtrace(3) into that thread's preallocated ring buffer and returns.
// Everything slow — symbolization (dladdr + __cxa_demangle), folding,
// aggregation — happens offline in harvest(), after stop().
//
// Signal-safety rules (see docs/OBSERVABILITY.md):
//   * the handler touches only its thread's ring: no locks, no
//     allocation, no I/O; errno is saved and restored;
//   * backtrace() is warmed up once in start() before any timer is
//     armed, because its first call may dlopen libgcc_s (malloc — not
//     async-signal-safe);
//   * rings are single-producer (the interrupted thread itself); the
//     write index is published with release stores so harvest() on the
//     control thread reads complete records.
//
// Linux-only: on other platforms start() fails gracefully with a reason
// string and the CLI reports the profiler as unavailable.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/prof/folded.hpp"

namespace fdiam::prof {

struct SamplerOptions {
  double rate_hz = 197.0;        ///< prime-ish default: avoids phase lock
  std::size_t ring_words = 1u << 17;  ///< per-thread capture capacity
  int max_depth = 48;            ///< frames kept per sample
};

/// One ranked frame in the report's top table.
struct ProfileFrame {
  std::string name;
  std::uint64_t self = 0;
  std::uint64_t total = 0;
};

/// Summary embedded in the JSON run report's `profile` block.
struct ProfileSummary {
  bool enabled = false;      ///< profiling was requested
  bool available = false;    ///< platform support and start() succeeded
  std::string unavailable_reason;
  double rate_hz = 0.0;
  double duration_s = 0.0;
  int threads = 0;           ///< threads that had timers armed
  std::uint64_t samples = 0;
  std::uint64_t dropped = 0;  ///< lost to ring exhaustion
  std::vector<ProfileFrame> top;  ///< ranked by self samples
};

/// Process-wide sampler (SIGPROF has process-global disposition, so only
/// one can run at a time). start()/stop()/harvest() must be called from
/// the serial control path.
class Sampler {
 public:
  static Sampler& instance();

  /// Arm per-thread timers across the current OpenMP team. Returns false
  /// (and sets reason()) when the platform lacks support or timer setup
  /// fails; the process keeps running unprofiled.
  bool start(const SamplerOptions& opt = {});

  /// Disarm and delete all timers. The SIGPROF handler stays installed
  /// (a timer signal can still be pending after timer_delete; the
  /// handler's armed-flag check turns it into a no-op, whereas restoring
  /// the default disposition would let it kill the process). Safe to
  /// call when not running. Captured samples stay buffered until the
  /// next start().
  void stop();

  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] const std::string& reason() const { return reason_; }

  /// Total samples captured so far (racy read; exact after stop()).
  [[nodiscard]] std::uint64_t sample_count() const;

  /// Symbolize and fold everything captured since the last start().
  /// Call after stop().
  [[nodiscard]] FoldedProfile folded() const;

  /// Summary statistics plus the top-N self-time frames.
  [[nodiscard]] ProfileSummary summary(std::size_t top_n = 10) const;

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

 private:
  Sampler() = default;

  bool running_ = false;
  std::string reason_;
  SamplerOptions opt_;
  double duration_s_ = 0.0;
  int armed_threads_ = 0;
};

}  // namespace fdiam::prof
