#include "obs/prof/prof_report.hpp"

#include <string>
#include <vector>

#include "obs/json.hpp"

namespace fdiam::obs {

namespace {

void write_agg_fields(JsonWriter& w, const UtilAgg& a) {
  w.field("regions", a.regions);
  w.field("items", a.items);
  w.field("wall_s", a.wall_s);
  w.field("busy_s", a.busy_s);
  w.field("barrier_wait_s", a.barrier_wait_s());
  w.field("busy_ratio", a.busy_ratio());
  w.field("idle_fraction", a.idle_fraction());
  w.field("imbalance", a.imbalance());
}

/// Top-level keys of a JSON object slice (assumed structurally valid —
/// json_check runs json_diagnose first).
std::vector<std::string> object_keys(std::string_view object_slice) {
  std::vector<std::string> keys;
  int depth = 0;
  bool want_key = false;
  for (std::size_t i = 0; i < object_slice.size(); ++i) {
    const char c = object_slice[i];
    if (c == '{' || c == '[') {
      ++depth;
      if (depth == 1 && c == '{') want_key = true;
      continue;
    }
    if (c == '}' || c == ']') {
      --depth;
      continue;
    }
    if (depth == 1 && c == ',') {
      want_key = true;
      continue;
    }
    if (depth == 1 && want_key && c == '"') {
      std::string key;
      for (++i; i < object_slice.size() && object_slice[i] != '"'; ++i) {
        key.push_back(object_slice[i]);
      }
      keys.push_back(std::move(key));
      want_key = false;
    }
  }
  return keys;
}

bool is_util_stage_tag(std::string_view tag) {
  for (std::size_t i = 0; i < kUtilStageCount; ++i) {
    if (tag == util_stage_name(static_cast<UtilStage>(i))) return true;
  }
  return false;
}

bool is_region_kind_tag(std::string_view tag) {
  for (std::size_t i = 0; i < kRegionKindCount; ++i) {
    if (tag == region_kind_name(static_cast<RegionKind>(i))) return true;
  }
  return false;
}

/// Check one serialized UtilAgg object at `base`: fields present, ratios
/// in range, imbalance >= 1 when regions were recorded. Returns a
/// diagnostic or nullopt.
std::optional<std::string> diagnose_agg(std::string_view report,
                                        const std::string& base) {
  constexpr double kEps = 1e-9;
  for (const char* f : {"regions", "items", "wall_s", "busy_s",
                        "barrier_wait_s", "busy_ratio", "idle_fraction",
                        "imbalance"}) {
    const auto v = json_number(report, base + "." + f);
    if (!v) return base + "." + f + ": missing or non-numeric";
    if (*v < 0.0) return base + "." + f + ": negative";
  }
  const double busy_ratio = *json_number(report, base + ".busy_ratio");
  const double idle = *json_number(report, base + ".idle_fraction");
  if (busy_ratio > 1.0 + kEps) return base + ".busy_ratio: exceeds 1";
  if (idle > 1.0 + kEps) return base + ".idle_fraction: exceeds 1";
  const double regions = *json_number(report, base + ".regions");
  const double imbalance = *json_number(report, base + ".imbalance");
  if (regions > 0.0 && imbalance < 1.0 - kEps) {
    return base + ".imbalance: below 1 with regions recorded";
  }
  return std::nullopt;
}

}  // namespace

void write_profile_fields(JsonWriter& w, const prof::ProfileSummary& s) {
  w.field("schema", kProfileSchema);
  w.field("enabled", s.enabled);
  w.field("available", s.available);
  if (!s.available && !s.unavailable_reason.empty()) {
    w.field("reason", std::string_view(s.unavailable_reason));
  }
  w.field("rate_hz", s.rate_hz);
  w.field("duration_s", s.duration_s);
  w.field("threads", s.threads);
  w.field("samples", s.samples);
  w.field("dropped", s.dropped);
  w.key("top").begin_array();
  for (const auto& f : s.top) {
    w.begin_object();
    w.field("frame", std::string_view(f.name));
    w.field("self", f.self);
    w.field("total", f.total);
    w.end_object();
  }
  w.end_array();
}

void write_utilization_fields(JsonWriter& w, const UtilStats& u) {
  w.field("schema", kUtilizationSchema);
  w.field("enabled", u.enabled);
  if (!u.enabled) return;
  w.field("threads", u.threads);
  w.key("total").begin_object();
  write_agg_fields(w, u.total);
  w.end_object();
  w.key("stages").begin_object();
  for (std::size_t i = 0; i < kUtilStageCount; ++i) {
    if (u.stages[i].regions == 0) continue;  // keep reports lean
    w.key(util_stage_name(static_cast<UtilStage>(i))).begin_object();
    write_agg_fields(w, u.stages[i]);
    w.end_object();
  }
  w.end_object();
  w.key("regions").begin_object();
  for (std::size_t i = 0; i < kRegionKindCount; ++i) {
    if (u.kinds[i].regions == 0) continue;
    w.key(region_kind_name(static_cast<RegionKind>(i))).begin_object();
    write_agg_fields(w, u.kinds[i]);
    w.end_object();
  }
  w.end_object();
  w.key("per_thread").begin_array();
  for (const auto& t : u.per_thread) {
    w.begin_object();
    w.field("regions", t.regions);
    w.field("items", t.items);
    w.field("busy_s", t.busy_s);
    w.end_object();
  }
  w.end_array();
}

std::optional<std::string> diagnose_profile_block(std::string_view report) {
  if (!json_lookup(report, "profile")) return std::nullopt;

  const auto schema = json_string(report, "profile.schema");
  if (!schema || *schema != kProfileSchema) {
    return "profile.schema: expected \"" + std::string(kProfileSchema) +
           "\", got " +
           (schema ? '"' + *schema + '"' : std::string("a non-string value"));
  }
  for (const char* f : {"rate_hz", "duration_s", "threads", "samples",
                        "dropped"}) {
    const auto v = json_number(report, "profile." + std::string(f));
    if (!v) return "profile." + std::string(f) + ": missing or non-numeric";
    if (*v < 0.0) return "profile." + std::string(f) + ": negative";
  }
  if (!json_lookup(report, "profile.top")) {
    return std::string("profile.top: missing");
  }
  const double samples = *json_number(report, "profile.samples");
  for (std::size_t i = 0;; ++i) {
    const std::string base = "profile.top." + std::to_string(i);
    if (!json_lookup(report, base)) break;
    const auto frame = json_string(report, base + ".frame");
    if (!frame || frame->empty()) {
      return base + ".frame: missing or empty";
    }
    const auto self = json_number(report, base + ".self");
    const auto total = json_number(report, base + ".total");
    if (!self || !total) return base + ": missing self/total field";
    if (*self > *total) return base + ": self exceeds total";
    if (*self > samples) return base + ": self exceeds sample count";
  }
  return std::nullopt;
}

std::optional<std::string> diagnose_utilization_block(
    std::string_view report) {
  if (!json_lookup(report, "utilization")) return std::nullopt;

  const auto schema = json_string(report, "utilization.schema");
  if (!schema || *schema != kUtilizationSchema) {
    return "utilization.schema: expected \"" +
           std::string(kUtilizationSchema) + "\", got " +
           (schema ? '"' + *schema + '"' : std::string("a non-string value"));
  }
  const auto enabled = json_lookup(report, "utilization.enabled");
  if (!enabled || (*enabled != "true" && *enabled != "false")) {
    return std::string("utilization.enabled: missing or non-boolean");
  }
  if (*enabled == "false") return std::nullopt;

  const auto threads = json_number(report, "utilization.threads");
  if (!threads || *threads < 1.0) {
    return std::string("utilization.threads: missing or < 1");
  }
  if (auto d = diagnose_agg(report, "utilization.total")) return d;

  const auto stages = json_lookup(report, "utilization.stages");
  if (!stages) return std::string("utilization.stages: missing");
  for (const std::string& key : object_keys(*stages)) {
    if (!is_util_stage_tag(key)) {
      return "utilization.stages: stage tag \"" + key +
             "\" is not in the closed UtilStage set";
    }
    if (auto d = diagnose_agg(report, "utilization.stages." + key)) return d;
  }

  const auto regions = json_lookup(report, "utilization.regions");
  if (!regions) return std::string("utilization.regions: missing");
  for (const std::string& key : object_keys(*regions)) {
    if (!is_region_kind_tag(key)) {
      return "utilization.regions: region tag \"" + key +
             "\" is not in the closed RegionKind set";
    }
    if (auto d = diagnose_agg(report, "utilization.regions." + key)) return d;
  }

  std::size_t n_threads_rows = 0;
  for (std::size_t i = 0;; ++i) {
    const std::string base = "utilization.per_thread." + std::to_string(i);
    if (!json_lookup(report, base)) break;
    ++n_threads_rows;
    for (const char* f : {"regions", "items", "busy_s"}) {
      const auto v = json_number(report, base + "." + f);
      if (!v || *v < 0.0) {
        return base + "." + f + ": missing or negative";
      }
    }
  }
  if (n_threads_rows != static_cast<std::size_t>(*threads)) {
    return "utilization.per_thread: " + std::to_string(n_threads_rows) +
           " rows but threads = " +
           std::to_string(static_cast<long long>(*threads));
  }
  return std::nullopt;
}

}  // namespace fdiam::obs
