#pragma once
// JSON glue for the thread-time observability layer: serializers for the
// run report's "profile" (sampling profiler) and "utilization"
// (parallel-region accounting) blocks, plus the semantic validators
// json_check runs on them. Lives in obs/prof/ so util/parallel.hpp (where
// the utilization types are defined) never depends on the obs layer.
//
// Schemas "fdiam.profile/v1" and "fdiam.utilization/v1" — field additions
// are allowed, renames and removals are a schema bump.

#include <optional>
#include <string>
#include <string_view>

#include "obs/prof/sampler.hpp"
#include "util/parallel.hpp"

namespace fdiam::obs {

class JsonWriter;

inline constexpr std::string_view kProfileSchema = "fdiam.profile/v1";
inline constexpr std::string_view kUtilizationSchema = "fdiam.utilization/v1";

/// Append the members of a "profile" object to an open JsonWriter object.
void write_profile_fields(JsonWriter& w, const prof::ProfileSummary& s);

/// Append the members of a "utilization" object to an open JsonWriter
/// object. Emits enabled:false and nothing else when `u.enabled` is
/// unset, so consumers can always key on "utilization.enabled".
void write_utilization_fields(JsonWriter& w, const UtilStats& u);

/// Semantic validation of the "profile" block inside a serialized run
/// report: schema tag, non-negative counters, self <= samples invariants.
/// Returns nullopt when the block is absent or well-formed; otherwise a
/// one-line diagnostic naming the offending path.
std::optional<std::string> diagnose_profile_block(std::string_view report);

/// Semantic validation of the "utilization" block: schema tag, ratio
/// ranges, closed stage/region tag sets, per-thread array arity.
std::optional<std::string> diagnose_utilization_block(
    std::string_view report);

}  // namespace fdiam::obs
