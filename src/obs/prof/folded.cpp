#include "obs/prof/folded.hpp"

#include <algorithm>
#include <charconv>
#include <istream>
#include <ostream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string_view>

namespace fdiam::prof {

namespace {

std::vector<std::string_view> split_frames(std::string_view stack) {
  std::vector<std::string_view> frames;
  std::size_t pos = 0;
  while (pos <= stack.size()) {
    const std::size_t semi = stack.find(';', pos);
    if (semi == std::string_view::npos) {
      frames.push_back(stack.substr(pos));
      break;
    }
    frames.push_back(stack.substr(pos, semi - pos));
    pos = semi + 1;
  }
  return frames;
}

void xml_escape(std::ostream& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '&':
        out << "&amp;";
        break;
      case '<':
        out << "&lt;";
        break;
      case '>':
        out << "&gt;";
        break;
      case '"':
        out << "&quot;";
        break;
      default:
        out << c;
    }
  }
}

/// Deterministic warm color for a frame name (flamegraph-style palette).
std::uint32_t frame_hash(std::string_view name) {
  std::uint32_t h = 2166136261u;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 16777619u;
  }
  return h;
}

struct FlameNode {
  std::uint64_t total = 0;
  std::map<std::string, FlameNode, std::less<>> children;
};

int tree_depth(const FlameNode& n) {
  int d = 0;
  for (const auto& [name, child] : n.children) {
    (void)name;
    const int cd = tree_depth(child);
    if (cd > d) d = cd;
  }
  return d + 1;
}

}  // namespace

void FoldedProfile::add(const std::string& stack, std::uint64_t count) {
  if (stack.empty()) {
    throw std::runtime_error("folded profile: empty stack");
  }
  stacks_[stack] += count;
}

void FoldedProfile::parse(std::istream& in) {
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    const std::size_t space = line.rfind(' ');
    if (space == std::string::npos || space == 0) {
      throw std::runtime_error("folded profile: line " +
                               std::to_string(lineno) +
                               ": expected '<stack> <count>'");
    }
    const std::string_view count_text =
        std::string_view(line).substr(space + 1);
    std::uint64_t count = 0;
    const auto [ptr, ec] = std::from_chars(
        count_text.data(), count_text.data() + count_text.size(), count);
    if (ec != std::errc{} || ptr != count_text.data() + count_text.size()) {
      throw std::runtime_error("folded profile: line " +
                               std::to_string(lineno) +
                               ": malformed sample count '" +
                               std::string(count_text) + "'");
    }
    add(line.substr(0, space), count);
  }
}

void FoldedProfile::merge(const FoldedProfile& other) {
  for (const auto& [stack, count] : other.stacks_) stacks_[stack] += count;
}

std::uint64_t FoldedProfile::total() const {
  std::uint64_t n = 0;
  for (const auto& [stack, count] : stacks_) {
    (void)stack;
    n += count;
  }
  return n;
}

std::vector<FoldedProfile::FrameTotal> FoldedProfile::frame_totals() const {
  std::map<std::string_view, FrameTotal> by_name;
  for (const auto& [stack, count] : stacks_) {
    const auto frames = split_frames(stack);
    std::set<std::string_view> seen;  // count each frame once per stack
    for (const auto frame : frames) {
      if (!seen.insert(frame).second) continue;
      auto& t = by_name[frame];
      if (t.name.empty()) t.name = std::string(frame);
      t.total += count;
    }
    if (!frames.empty()) by_name[frames.back()].self += count;
  }
  std::vector<FrameTotal> out;
  out.reserve(by_name.size());
  for (auto& [name, t] : by_name) {
    (void)name;
    out.push_back(std::move(t));
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.self != b.self) return a.self > b.self;
    return a.name < b.name;
  });
  return out;
}

void FoldedProfile::write(std::ostream& out) const {
  for (const auto& [stack, count] : stacks_) {
    out << stack << ' ' << count << '\n';
  }
}

void FoldedProfile::write_svg(std::ostream& out,
                              const std::string& title) const {
  constexpr double kWidth = 1200.0;
  constexpr double kRowH = 17.0;
  constexpr double kRectH = 16.0;
  constexpr double kTopPad = 34.0;
  constexpr double kMinPx = 0.25;   // skip slivers narrower than this
  constexpr double kCharPx = 7.2;   // approx glyph advance at 12px mono

  // Build the frame trie under a synthetic root.
  FlameNode root;
  for (const auto& [stack, count] : stacks_) {
    FlameNode* node = &root;
    for (const auto frame : split_frames(stack)) {
      node = &node->children[std::string(frame)];
      node->total += count;
    }
  }
  const std::uint64_t all = total();
  const int depth = all > 0 ? tree_depth(root) - 1 : 0;
  const double height = kTopPad + static_cast<double>(depth + 1) * kRowH + 8;

  out << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << kWidth
      << "\" height=\"" << height << "\" font-family=\"monospace\""
      << " font-size=\"12\">\n";
  out << "<rect width=\"100%\" height=\"100%\" fill=\"#f8f8f8\"/>\n";
  out << "<text x=\"" << kWidth / 2
      << "\" y=\"22\" text-anchor=\"middle\" font-size=\"15\">";
  xml_escape(out, title);
  out << " (" << all << " samples)</text>\n";

  struct Pending {
    const FlameNode* node;
    std::string name;
    std::uint64_t offset;  // in samples
    int depth;
  };
  std::vector<Pending> stack_v;
  {
    std::uint64_t off = 0;
    // Root row spans everything: emit it as a single "all" frame.
    stack_v.push_back({&root, "all", 0, 0});
    (void)off;
  }
  while (!stack_v.empty()) {
    const Pending p = stack_v.back();
    stack_v.pop_back();
    const std::uint64_t samples = p.node == &root ? all : p.node->total;
    const double x = all > 0
                         ? static_cast<double>(p.offset) / all * kWidth
                         : 0.0;
    const double w =
        all > 0 ? static_cast<double>(samples) / all * kWidth : kWidth;
    if (w >= kMinPx) {
      const double y = kTopPad + static_cast<double>(p.depth) * kRowH;
      const std::uint32_t h = frame_hash(p.name);
      const int r = 205 + static_cast<int>(h % 50u);
      const int g = static_cast<int>((h >> 8) % 180u);
      const int b = static_cast<int>((h >> 16) % 55u);
      const double pct =
          all > 0 ? 100.0 * static_cast<double>(samples) / all : 0.0;
      out << "<g><title>";
      xml_escape(out, p.name);
      out << " (" << samples << " samples, ";
      const auto old_prec = out.precision(3);
      out << pct;
      out.precision(old_prec);
      out << "%)</title><rect x=\"" << x << "\" y=\"" << y << "\" width=\""
          << w << "\" height=\"" << kRectH << "\" fill=\"rgb(" << r << ","
          << g << "," << b << ")\" rx=\"2\"/>";
      const auto fit = static_cast<std::size_t>(
          w > 4.0 ? (w - 4.0) / kCharPx : 0.0);
      if (fit >= 3) {
        std::string label = p.name;
        if (label.size() > fit) label = label.substr(0, fit - 2) + "..";
        out << "<text x=\"" << x + 3 << "\" y=\"" << y + 12 << "\">";
        xml_escape(out, label);
        out << "</text>";
      }
      out << "</g>\n";
    }
    std::uint64_t child_off = p.offset;
    // Push children in reverse so they render left-to-right in name
    // order; offsets are assigned here, before the reversal.
    std::vector<Pending> kids;
    for (const auto& [name, child] : p.node->children) {
      kids.push_back({&child, name, child_off, p.depth + 1});
      child_off += child.total;
    }
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      stack_v.push_back(std::move(*it));
    }
  }
  out << "</svg>\n";
}

}  // namespace fdiam::prof
