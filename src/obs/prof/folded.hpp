#pragma once
// Folded-stack profile container: the interchange format between the
// in-process sampler, `tools/fdiam_prof`, and external flamegraph
// tooling. One line per unique stack, root-first frames joined by ';',
// then a space and the sample count:
//
//   main;fdiam::FDiam::run;fdiam::BfsEngine::run 127
//
// This is exactly Brendan Gregg's "folded" format, so the emitted files
// feed flamegraph.pl / speedscope unchanged; write_svg() additionally
// renders a standalone flame graph with no external dependencies.

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace fdiam::prof {

/// A profile as a multiset of stacks. Keys are full folded stack strings
/// (root-first, ';'-separated); values are sample counts.
class FoldedProfile {
 public:
  /// Add `count` samples of `stack` (already-folded "a;b;c" form).
  void add(const std::string& stack, std::uint64_t count);

  /// Parse folded lines from a stream, merging into this profile.
  /// Throws std::runtime_error on malformed input (missing count,
  /// non-numeric count, empty stack).
  void parse(std::istream& in);

  /// Merge another profile into this one.
  void merge(const FoldedProfile& other);

  [[nodiscard]] bool empty() const { return stacks_.empty(); }
  [[nodiscard]] std::size_t size() const { return stacks_.size(); }
  [[nodiscard]] std::uint64_t total() const;

  /// Per-frame totals. `self` counts samples where the frame is the
  /// leaf; `total` counts samples where it appears anywhere (once per
  /// stack, so recursive frames are not double-counted).
  struct FrameTotal {
    std::string name;
    std::uint64_t self = 0;
    std::uint64_t total = 0;
  };

  /// Frames ranked by self count (descending), ties by name.
  [[nodiscard]] std::vector<FrameTotal> frame_totals() const;

  /// Write folded lines (sorted by stack for determinism).
  void write(std::ostream& out) const;

  /// Render a self-contained SVG flame graph (root at top).
  void write_svg(std::ostream& out, const std::string& title) const;

  [[nodiscard]] const std::map<std::string, std::uint64_t>& stacks() const {
    return stacks_;
  }

 private:
  std::map<std::string, std::uint64_t> stacks_;
};

}  // namespace fdiam::prof
