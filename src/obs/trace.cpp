#include "obs/trace.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>

#include "obs/json.hpp"

namespace fdiam::obs {

TraceArg::TraceArg(std::string k, double v) : key(std::move(k)) {
  if (std::isfinite(v)) {
    // to_chars: shortest round-trip form, locale-independent (printf
    // under an LC_NUMERIC locale could emit a ',' decimal separator —
    // an invalid JSON token).
    char buf[40];
    const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v);
    (void)ec;
    json_value.assign(buf, end);
  } else {
    json_value = "null";
  }
}

TraceArg::TraceArg(std::string k, std::string_view v)
    : key(std::move(k)), json_value('"' + json_escape(v) + '"') {}

TraceSession::Span::Span(TraceSession& session, std::string name,
                         std::vector<TraceArg> args)
    : session_(session),
      name_(std::move(name)),
      args_(std::move(args)),
      start_us_(session.now_us()) {}

TraceSession::Span::~Span() {
  const double end_us = session_.now_us();
  session_.record(Event{std::move(name_), 'X', start_us_,
                        std::max(0.0, end_us - start_us_), std::move(args_)});
}

void TraceSession::complete(std::string name, double duration_seconds,
                            std::vector<TraceArg> args) {
  const double dur_us = std::max(0.0, duration_seconds * 1e6);
  const double end_us = now_us();
  record(Event{std::move(name), 'X', std::max(0.0, end_us - dur_us), dur_us,
               std::move(args)});
}

void TraceSession::instant(std::string name, std::vector<TraceArg> args) {
  record(Event{std::move(name), 'i', now_us(), 0.0, std::move(args)});
}

void TraceSession::counter(std::string name, double value) {
  record(Event{std::move(name), 'C', now_us(), 0.0,
               {TraceArg("value", value)}});
}

void TraceSession::record(Event e) {
  std::lock_guard lock(mu_);
  events_.push_back(std::move(e));
}

std::size_t TraceSession::size() const {
  std::lock_guard lock(mu_);
  return events_.size();
}

namespace {

/// Append the event's hardware-counter delta (when the solver collected
/// one) to a span's args: raw counts for the valid events plus derived
/// IPC, so Perfetto shows why a stage was slow, not just that it was.
void append_hw_args(const FDiamEvent& e, std::vector<TraceArg>& args) {
  if (e.hw == nullptr || !e.hw->any()) return;
  for (std::size_t i = 0; i < kHwEventCount; ++i) {
    const auto ev = static_cast<HwEvent>(i);
    if (e.hw->has(ev)) {
      args.emplace_back(std::string(hw_event_name(ev)), e.hw->get(ev));
    }
  }
  if (const auto ipc = e.hw->ipc()) args.emplace_back("ipc", *ipc);
}

}  // namespace

FDiamTrace TraceSession::fdiam_sink() {
  return [this](const FDiamEvent& e) {
    using Kind = FDiamEvent::Kind;
    const auto value = static_cast<std::int64_t>(e.value);
    const auto vertex = static_cast<std::int64_t>(e.vertex);
    const auto with_hw = [&e](std::vector<TraceArg> args) {
      append_hw_args(e, args);
      return args;
    };
    switch (e.kind) {
      case Kind::kStart:
        instant("start", {{"vertices", value}, {"u", vertex}});
        break;
      case Kind::kInitialBound:
        complete("init", e.seconds, with_hw({{"bound", value}, {"u", vertex}}));
        break;
      case Kind::kWinnow:
        complete("winnow", e.seconds,
                 with_hw({{"radius", value}, {"center", vertex}}));
        break;
      case Kind::kChainsProcessed:
        complete("chain", e.seconds,
                 with_hw({{"removed", value},
                          {"anchors", static_cast<std::int64_t>(e.extra)}}));
        break;
      case Kind::kEccentricity:
        complete("ecc_bfs", e.seconds,
                 with_hw({{"ecc", value}, {"vertex", vertex}}));
        break;
      case Kind::kBoundRaised:
        instant("bound_raised", {{"bound", value},
                                 {"old", static_cast<std::int64_t>(e.extra)},
                                 {"vertex", vertex}});
        break;
      case Kind::kEliminate:
        complete("eliminate", e.seconds,
                 with_hw({{"reach", value}, {"source", vertex}}));
        break;
      case Kind::kExtendRegions:
        complete("extend_regions", e.seconds, with_hw({{"bound", value}}));
        break;
      case Kind::kDone:
        complete("fdiam.run", e.seconds, with_hw({{"diameter", value}}));
        break;
    }
  };
}

BfsLevelHook TraceSession::bfs_level_sink() {
  return [this](const BfsLevelProfile& p) {
    complete(p.bottom_up ? "bfs_level/bottomup" : "bfs_level/topdown",
             p.micros * 1e-6,
             {{"traversal", static_cast<std::int64_t>(p.traversal)},
              {"depth", static_cast<std::int64_t>(p.depth)},
              {"frontier", static_cast<std::int64_t>(p.frontier)},
              {"edges", static_cast<std::int64_t>(p.edges)}});
  };
}

void TraceSession::write(std::ostream& os) const {
  std::lock_guard lock(mu_);
  JsonWriter w(os, /*indent=*/0);
  w.begin_array();
  for (const Event& e : events_) {
    w.begin_object();
    w.field("name", std::string_view(e.name));
    w.field("ph", std::string_view(&e.ph, 1));
    w.field("ts", e.ts_us);
    if (e.ph == 'X') w.field("dur", e.dur_us);
    if (e.ph == 'i') w.field("s", std::string_view("g"));
    w.field("pid", std::int64_t{1});
    w.field("tid", std::int64_t{1});
    if (!e.args.empty()) {
      w.key("args").begin_object();
      for (const TraceArg& a : e.args) {
        w.key(a.key).raw(a.json_value);
      }
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  os << '\n';
}

}  // namespace fdiam::obs
