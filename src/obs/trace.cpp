#include "obs/trace.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "obs/json.hpp"

namespace fdiam::obs {

TraceArg::TraceArg(std::string k, double v) : key(std::move(k)) {
  if (std::isfinite(v)) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    json_value = buf;
  } else {
    json_value = "null";
  }
}

TraceArg::TraceArg(std::string k, std::string_view v)
    : key(std::move(k)), json_value('"' + json_escape(v) + '"') {}

TraceSession::Span::Span(TraceSession& session, std::string name,
                         std::vector<TraceArg> args)
    : session_(session),
      name_(std::move(name)),
      args_(std::move(args)),
      start_us_(session.now_us()) {}

TraceSession::Span::~Span() {
  const double end_us = session_.now_us();
  session_.record(Event{std::move(name_), 'X', start_us_,
                        std::max(0.0, end_us - start_us_), std::move(args_)});
}

void TraceSession::complete(std::string name, double duration_seconds,
                            std::vector<TraceArg> args) {
  const double dur_us = std::max(0.0, duration_seconds * 1e6);
  const double end_us = now_us();
  record(Event{std::move(name), 'X', std::max(0.0, end_us - dur_us), dur_us,
               std::move(args)});
}

void TraceSession::instant(std::string name, std::vector<TraceArg> args) {
  record(Event{std::move(name), 'i', now_us(), 0.0, std::move(args)});
}

void TraceSession::record(Event e) {
  std::lock_guard lock(mu_);
  events_.push_back(std::move(e));
}

std::size_t TraceSession::size() const {
  std::lock_guard lock(mu_);
  return events_.size();
}

FDiamTrace TraceSession::fdiam_sink() {
  return [this](const FDiamEvent& e) {
    using Kind = FDiamEvent::Kind;
    const auto value = static_cast<std::int64_t>(e.value);
    const auto vertex = static_cast<std::int64_t>(e.vertex);
    switch (e.kind) {
      case Kind::kStart:
        instant("start", {{"vertices", value}, {"u", vertex}});
        break;
      case Kind::kInitialBound:
        complete("init", e.seconds, {{"bound", value}, {"u", vertex}});
        break;
      case Kind::kWinnow:
        complete("winnow", e.seconds,
                 {{"radius", value}, {"center", vertex}});
        break;
      case Kind::kChainsProcessed:
        complete("chain", e.seconds, {{"removed", value}});
        break;
      case Kind::kEccentricity:
        complete("ecc_bfs", e.seconds, {{"ecc", value}, {"vertex", vertex}});
        break;
      case Kind::kBoundRaised:
        instant("bound_raised", {{"bound", value}, {"vertex", vertex}});
        break;
      case Kind::kEliminate:
        complete("eliminate", e.seconds,
                 {{"reach", value}, {"source", vertex}});
        break;
      case Kind::kExtendRegions:
        complete("extend_regions", e.seconds, {{"bound", value}});
        break;
      case Kind::kDone:
        complete("fdiam.run", e.seconds, {{"diameter", value}});
        break;
    }
  };
}

BfsLevelHook TraceSession::bfs_level_sink() {
  return [this](const BfsLevelProfile& p) {
    complete(p.bottom_up ? "bfs_level/bottomup" : "bfs_level/topdown",
             p.micros * 1e-6,
             {{"traversal", static_cast<std::int64_t>(p.traversal)},
              {"depth", static_cast<std::int64_t>(p.depth)},
              {"frontier", static_cast<std::int64_t>(p.frontier)},
              {"edges", static_cast<std::int64_t>(p.edges)}});
  };
}

void TraceSession::write(std::ostream& os) const {
  std::lock_guard lock(mu_);
  JsonWriter w(os, /*indent=*/0);
  w.begin_array();
  for (const Event& e : events_) {
    w.begin_object();
    w.field("name", std::string_view(e.name));
    w.field("ph", std::string_view(&e.ph, 1));
    w.field("ts", e.ts_us);
    if (e.ph == 'X') w.field("dur", e.dur_us);
    if (e.ph == 'i') w.field("s", std::string_view("g"));
    w.field("pid", std::int64_t{1});
    w.field("tid", std::int64_t{1});
    if (!e.args.empty()) {
      w.key("args").begin_object();
      for (const TraceArg& a : e.args) {
        w.key(a.key).raw(a.json_value);
      }
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  os << '\n';
}

}  // namespace fdiam::obs
