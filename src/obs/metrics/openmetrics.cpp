#include "obs/metrics/openmetrics.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <map>
#include <set>
#include <vector>

namespace fdiam::obs {

namespace {

std::string format_double(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[40];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v);
  (void)ec;
  return std::string(buf, static_cast<std::size_t>(end - buf));
}

bool valid_name_char(char c, bool first) {
  if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':') {
    return true;
  }
  return !first && std::isdigit(static_cast<unsigned char>(c));
}

/// Split "base[key=value,...]" into base and the raw label suffix.
std::pair<std::string_view, std::string_view> split_labels(
    std::string_view name) {
  const std::size_t open = name.find('[');
  if (open == std::string_view::npos || name.back() != ']') {
    return {name, {}};
  }
  return {name.substr(0, open),
          name.substr(open + 1, name.size() - open - 2)};
}

std::string escape_label_value(std::string_view v) {
  std::string out;
  out.reserve(v.size());
  for (const char c : v) {
    if (c == '\\' || c == '"') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}

}  // namespace

std::string openmetrics_family(std::string_view name) {
  const auto [base, labels] = split_labels(name);
  (void)labels;
  std::string fam;
  fam.reserve(base.size() + 6);
  for (const char c : base) {
    fam += valid_name_char(c, /*first=*/false) ? c : '_';
  }
  if (fam.empty() || !valid_name_char(fam.front(), /*first=*/true)) {
    fam.insert(fam.begin(), '_');
  }
  if (fam.rfind("fdiam_", 0) != 0) fam.insert(0, "fdiam_");
  return fam;
}

std::string openmetrics_labels(std::string_view name) {
  const auto [base, raw] = split_labels(name);
  (void)base;
  if (raw.empty()) return {};
  std::string out = "{";
  std::size_t pos = 0;
  bool first = true;
  while (pos < raw.size()) {
    std::size_t comma = raw.find(',', pos);
    if (comma == std::string_view::npos) comma = raw.size();
    const std::string_view pair = raw.substr(pos, comma - pos);
    const std::size_t eq = pair.find('=');
    if (eq != std::string_view::npos) {
      if (!first) out += ',';
      first = false;
      for (const char c : pair.substr(0, eq)) {
        out += valid_name_char(c, /*first=*/out.back() == '{' || out.back() == ',')
                   ? c
                   : '_';
      }
      out += "=\"";
      out += escape_label_value(pair.substr(eq + 1));
      out += '"';
    }
    pos = comma + 1;
  }
  out += '}';
  return out == "{}" ? std::string{} : out;
}

void write_openmetrics(std::ostream& os, const MetricRegistry& reg) {
  const auto counters = reg.snapshot_counters();
  const auto gauges = reg.snapshot_gauges();
  const auto hists = reg.snapshot_histograms();

  struct Series {
    std::string labels;
    std::string raw_name;
    std::size_t index;  // into the typed snapshot vector
  };
  // Group series sharing a sanitized family under one TYPE block,
  // preserving the registry's sorted-by-raw-name order within a family.
  std::map<std::string, std::vector<Series>> counter_fams, gauge_fams,
      hist_fams;
  for (std::size_t i = 0; i < counters.size(); ++i) {
    const auto& name = counters[i].first;
    counter_fams[openmetrics_family(name)].push_back(
        {openmetrics_labels(name), name, i});
  }
  for (std::size_t i = 0; i < hists.size(); ++i) {
    const auto& name = hists[i].first;
    hist_fams[openmetrics_family(name)].push_back(
        {openmetrics_labels(name), name, i});
  }
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    const auto& name = gauges[i].first;
    std::string fam = openmetrics_family(name);
    // The registry's namespaces are disjoint but the exposition's are
    // not: a gauge landing on a counter/histogram family gets its own.
    if (counter_fams.count(fam) != 0 || hist_fams.count(fam) != 0) {
      fam += "_gauge";
    }
    gauge_fams[fam].push_back({openmetrics_labels(name), name, i});
  }

  for (const auto& [fam, series] : counter_fams) {
    os << "# TYPE " << fam << " counter\n";
    os << "# HELP " << fam << " registry counter " << series.front().raw_name
       << "\n";
    for (const auto& s : series) {
      os << fam << "_total" << s.labels << ' ' << counters[s.index].second
         << '\n';
    }
  }
  for (const auto& [fam, series] : gauge_fams) {
    os << "# TYPE " << fam << " gauge\n";
    for (const auto& s : series) {
      os << fam << s.labels << ' ' << format_double(gauges[s.index].second)
         << '\n';
    }
  }
  for (const auto& [fam, series] : hist_fams) {
    os << "# TYPE " << fam << " histogram\n";
    if (fam.size() > 8 && fam.compare(fam.size() - 8, 8, "_seconds") == 0) {
      os << "# UNIT " << fam << " seconds\n";
    }
    for (const auto& s : series) {
      const HistogramSnapshot& h = hists[s.index].second;
      // Cumulative sparse buckets; the mandatory +Inf bucket carries the
      // total and doubles as the overflow bucket.
      std::uint64_t cum = 0;
      for (const auto& b : h.buckets) {
        if (std::isinf(b.le)) break;  // folded into +Inf below
        cum += b.count;
        std::string labels = s.labels;
        const std::string le = "le=\"" + format_double(b.le) + "\"";
        if (labels.empty()) {
          labels = "{" + le + "}";
        } else {
          labels.insert(labels.size() - 1, "," + le);
        }
        os << fam << "_bucket" << labels << ' ' << cum << '\n';
      }
      std::string inf_labels = s.labels;
      if (inf_labels.empty()) {
        inf_labels = "{le=\"+Inf\"}";
      } else {
        inf_labels.insert(inf_labels.size() - 1, ",le=\"+Inf\"");
      }
      os << fam << "_bucket" << inf_labels << ' ' << h.count << '\n';
      os << fam << "_sum" << s.labels << ' ' << format_double(h.sum) << '\n';
      os << fam << "_count" << s.labels << ' ' << h.count << '\n';
    }
  }
  os << "# EOF\n";
}

// ---- lint ---------------------------------------------------------------

namespace {

struct LintError {
  std::size_t line;
  std::string what;
};

struct HistSeries {
  double last_le = -std::numeric_limits<double>::infinity();
  double last_cum = -1.0;
  bool saw_inf = false;
  double inf_value = 0.0;
  bool saw_sum = false;
  bool saw_count = false;
  double count_value = 0.0;
  std::size_t first_line = 0;
};

bool parse_metric_name(std::string_view& rest, std::string& out) {
  std::size_t i = 0;
  while (i < rest.size() && valid_name_char(rest[i], i == 0)) ++i;
  if (i == 0) return false;
  out = std::string(rest.substr(0, i));
  rest.remove_prefix(i);
  return true;
}

/// Parse `{key="value",...}` from the head of `rest`. On success,
/// `labels_out` receives the canonical labels (input order, escapes
/// kept) and `le_out` the raw value of a `le` label when present.
bool parse_labels(std::string_view& rest, std::string& labels_out,
                  std::optional<std::string>& le_out, std::string& err) {
  if (rest.empty() || rest.front() != '{') return true;  // no labels
  rest.remove_prefix(1);
  bool first = true;
  while (true) {
    if (rest.empty()) {
      err = "unterminated label set";
      return false;
    }
    if (rest.front() == '}') {
      rest.remove_prefix(1);
      return true;
    }
    if (!first) {
      if (rest.front() != ',') {
        err = "expected ',' between labels";
        return false;
      }
      rest.remove_prefix(1);
    }
    first = false;
    std::string key;
    if (!parse_metric_name(rest, key) || key.find(':') != std::string::npos) {
      err = "invalid label name";
      return false;
    }
    if (rest.empty() || rest.front() != '=') {
      err = "expected '=' after label name";
      return false;
    }
    rest.remove_prefix(1);
    if (rest.empty() || rest.front() != '"') {
      err = "label value must be quoted";
      return false;
    }
    rest.remove_prefix(1);
    std::string value;
    while (!rest.empty() && rest.front() != '"') {
      if (rest.front() == '\\') {
        if (rest.size() < 2) break;
        value += rest[1];
        rest.remove_prefix(2);
      } else {
        value += rest.front();
        rest.remove_prefix(1);
      }
    }
    if (rest.empty()) {
      err = "unterminated label value";
      return false;
    }
    rest.remove_prefix(1);  // closing quote
    if (key == "le") {
      le_out = value;
    } else {
      if (!labels_out.empty()) labels_out += ',';
      labels_out += key + "=\"" + value + "\"";
    }
  }
}

bool parse_value(std::string_view token, double& out) {
  if (token == "+Inf" || token == "Inf") {
    out = std::numeric_limits<double>::infinity();
    return true;
  }
  if (token == "-Inf") {
    out = -std::numeric_limits<double>::infinity();
    return true;
  }
  if (token == "NaN") {
    out = std::numeric_limits<double>::quiet_NaN();
    return true;
  }
  const std::string buf(token);
  char* end = nullptr;
  out = std::strtod(buf.c_str(), &end);
  return end != nullptr && *end == '\0' && end != buf.c_str();
}

}  // namespace

std::optional<std::string> openmetrics_lint(std::string_view text) {
  std::map<std::string, std::string> family_type;
  std::set<std::string> sampled_families;
  std::map<std::string, HistSeries> hist_series;
  bool saw_eof = false;
  std::size_t line_no = 0;

  const auto fail = [&](const std::string& what) {
    return "line " + std::to_string(line_no) + ": " + what;
  };

  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t nl = text.find('\n', pos);
    const bool last_fragment = nl == std::string_view::npos;
    const std::string_view line =
        text.substr(pos, last_fragment ? text.size() - pos : nl - pos);
    pos = last_fragment ? text.size() + 1 : nl + 1;
    if (last_fragment && line.empty()) break;  // trailing newline artifact
    ++line_no;
    if (saw_eof) return fail("content after # EOF");
    if (line.empty()) return fail("blank lines are not allowed");

    if (line.front() == '#') {
      if (line == "# EOF") {
        saw_eof = true;
        continue;
      }
      std::string_view rest = line;
      rest.remove_prefix(1);
      if (rest.empty() || rest.front() != ' ') {
        return fail("malformed comment line");
      }
      rest.remove_prefix(1);
      std::string keyword;
      for (const char* kw : {"TYPE ", "HELP ", "UNIT "}) {
        if (rest.rfind(kw, 0) == 0) {
          keyword = std::string(kw, 4);
          rest.remove_prefix(5);
          break;
        }
      }
      if (keyword.empty()) return fail("unknown metadata keyword");
      std::string fam;
      if (!parse_metric_name(rest, fam)) return fail("invalid family name");
      if (keyword == "TYPE") {
        if (rest.empty() || rest.front() != ' ') {
          return fail("TYPE needs a type");
        }
        rest.remove_prefix(1);
        static const char* kTypes[] = {"counter", "gauge", "histogram",
                                       "summary", "unknown", "info",
                                       "stateset", "gaugehistogram"};
        if (std::find(std::begin(kTypes), std::end(kTypes),
                      std::string(rest)) == std::end(kTypes)) {
          return fail("unknown metric type '" + std::string(rest) + "'");
        }
        if (family_type.count(fam) != 0) {
          return fail("duplicate TYPE for family " + fam);
        }
        if (sampled_families.count(fam) != 0) {
          return fail("TYPE for " + fam + " after its samples");
        }
        family_type[fam] = std::string(rest);
      } else if (keyword == "UNIT") {
        if (rest.empty() || rest.front() != ' ') {
          return fail("UNIT needs a unit");
        }
        rest.remove_prefix(1);
        const std::string unit = "_" + std::string(rest);
        if (fam.size() <= unit.size() ||
            fam.compare(fam.size() - unit.size(), unit.size(), unit) != 0) {
          return fail("UNIT '" + std::string(rest) +
                      "' is not a suffix of family " + fam);
        }
      }
      // HELP: free text, nothing further to check.
      continue;
    }

    // Sample line: name[{labels}] value [timestamp]
    std::string_view rest = line;
    std::string name;
    if (!parse_metric_name(rest, name)) return fail("invalid metric name");
    std::string labels;
    std::optional<std::string> le;
    std::string err;
    if (!parse_labels(rest, labels, le, err)) return fail(err);
    if (rest.empty() || rest.front() != ' ') {
      return fail("expected ' ' before sample value");
    }
    rest.remove_prefix(1);
    const std::size_t sp = rest.find(' ');
    const std::string_view value_tok =
        sp == std::string_view::npos ? rest : rest.substr(0, sp);
    double value = 0.0;
    if (!parse_value(value_tok, value)) {
      return fail("unparseable sample value '" + std::string(value_tok) +
                  "'");
    }
    if (sp != std::string_view::npos) {
      double ts = 0.0;
      if (!parse_value(rest.substr(sp + 1), ts)) {
        return fail("unparseable timestamp");
      }
    }

    // Resolve the sample to a family; suffix resolution prefers the
    // longest matching registered family.
    const auto suffix_family = [&](std::string_view suffix)
        -> std::optional<std::string> {
      if (name.size() <= suffix.size() ||
          name.compare(name.size() - suffix.size(), suffix.size(),
                       suffix) != 0) {
        return std::nullopt;
      }
      std::string fam = name.substr(0, name.size() - suffix.size());
      const auto it = family_type.find(fam);
      if (it == family_type.end()) return std::nullopt;
      return fam;
    };

    if (const auto fam = suffix_family("_total");
        fam && family_type[*fam] == "counter") {
      if (value < 0.0) return fail("counter " + name + " is negative");
      sampled_families.insert(*fam);
      continue;
    }
    const auto bucket_fam = suffix_family("_bucket");
    if (bucket_fam && family_type[*bucket_fam] == "histogram") {
      if (!le) return fail(name + " sample is missing the le label");
      double le_value = 0.0;
      if (!parse_value(*le, le_value)) {
        return fail("unparseable le value '" + *le + "'");
      }
      if (value < 0.0) return fail("negative bucket count in " + name);
      HistSeries& hs = hist_series[*bucket_fam + "|" + labels];
      if (hs.first_line == 0) hs.first_line = line_no;
      if (le_value <= hs.last_le) {
        return fail("bucket le values must be strictly ascending");
      }
      if (value < hs.last_cum) {
        return fail("cumulative bucket counts must be non-decreasing");
      }
      hs.last_le = le_value;
      hs.last_cum = value;
      if (std::isinf(le_value) && le_value > 0) {
        hs.saw_inf = true;
        hs.inf_value = value;
      }
      sampled_families.insert(*bucket_fam);
      continue;
    }
    const auto sum_fam = suffix_family("_sum");
    if (sum_fam && family_type[*sum_fam] == "histogram") {
      HistSeries& hs = hist_series[*sum_fam + "|" + labels];
      if (hs.first_line == 0) hs.first_line = line_no;
      hs.saw_sum = true;
      sampled_families.insert(*sum_fam);
      continue;
    }
    const auto count_fam = suffix_family("_count");
    if (count_fam && family_type[*count_fam] == "histogram") {
      if (value < 0.0) return fail("negative count in " + name);
      HistSeries& hs = hist_series[*count_fam + "|" + labels];
      if (hs.first_line == 0) hs.first_line = line_no;
      hs.saw_count = true;
      hs.count_value = value;
      sampled_families.insert(*count_fam);
      continue;
    }
    if (const auto it = family_type.find(name); it != family_type.end()) {
      if (it->second == "counter") {
        return fail("counter " + name + " samples must use the _total suffix");
      }
      if (it->second == "histogram") {
        return fail("histogram " + name +
                    " samples must use _bucket/_sum/_count");
      }
      sampled_families.insert(name);  // gauge / unknown
      continue;
    }
    return fail("sample '" + name + "' has no preceding # TYPE");
  }

  if (!saw_eof) return "missing terminating # EOF";
  for (const auto& [key, hs] : hist_series) {
    line_no = hs.first_line;
    const std::string series = key.substr(0, key.find('|'));
    if (!hs.saw_inf) {
      return fail("histogram " + series + " is missing the +Inf bucket");
    }
    if (!hs.saw_sum || !hs.saw_count) {
      return fail("histogram " + series + " is missing _sum or _count");
    }
    if (hs.inf_value != hs.count_value) {
      return fail("histogram " + series + " +Inf bucket (" +
                  format_double(hs.inf_value) + ") != _count (" +
                  format_double(hs.count_value) + ")");
    }
  }
  return std::nullopt;
}

}  // namespace fdiam::obs
