#include "obs/metrics/metrics_report.hpp"

#include <cmath>
#include <string>

#include "obs/json.hpp"
#include "util/memory.hpp"

namespace fdiam::obs {

namespace {
constexpr std::string_view kMetricsSchema = "fdiam.metrics/v1";
}

void write_metrics_block(
    JsonWriter& w,
    const std::vector<std::pair<std::string, HistogramSnapshot>>& series) {
  w.field("schema", kMetricsSchema);
  w.key("series").begin_array();
  for (const auto& [name, h] : series) {
    if (h.count == 0) continue;  // ablated/trivial runs have fewer series
    w.begin_object();
    w.field("name", std::string_view(name));
    w.field("count", h.count);
    w.field("sum", h.sum);
    w.field("min", h.min);
    w.field("max", h.max);
    w.field("p50", h.quantile(0.50));
    w.field("p90", h.quantile(0.90));
    w.field("p99", h.quantile(0.99));
    w.key("buckets").begin_array();
    for (const auto& b : h.buckets) {
      w.begin_object();
      // The overflow bucket's +inf upper bound serializes as null
      // (JSON has no Infinity); validators treat a null `le` as +inf
      // and require it to be the last bucket.
      w.field("le", b.le);
      w.field("count", b.count);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
}

std::optional<std::string> diagnose_metrics_block(std::string_view report) {
  if (!json_lookup(report, "histograms")) return std::nullopt;

  const auto schema = json_string(report, "histograms.schema");
  if (!schema || *schema != kMetricsSchema) {
    return "histograms.schema: expected \"" + std::string(kMetricsSchema) +
           "\", got " +
           (schema ? '"' + *schema + '"' : std::string("a non-string value"));
  }
  if (!json_lookup(report, "histograms.series")) {
    return "histograms.series: missing";
  }

  for (std::size_t i = 0;; ++i) {
    const std::string base = "histograms.series." + std::to_string(i);
    if (!json_lookup(report, base)) break;
    const auto name = json_string(report, base + ".name");
    if (!name || name->empty()) return base + ".name: missing or empty";
    const auto at = [&](const char* field) {
      return json_number(report, base + "." + field);
    };
    const auto count = at("count");
    if (!count || *count <= 0.0 || *count != std::floor(*count)) {
      return base + " (" + *name + "): count must be a positive integer";
    }
    const auto mn = at("min"), mx = at("max");
    const auto p50 = at("p50"), p90 = at("p90"), p99 = at("p99");
    const auto sum = at("sum");
    if (!mn || !mx || !p50 || !p90 || !p99 || !sum) {
      return base + " (" + *name + "): missing aggregate field";
    }
    if (!(*mn <= *p50 && *p50 <= *p90 && *p90 <= *p99 && *p99 <= *mx)) {
      return base + " (" + *name +
             "): quantiles must satisfy min <= p50 <= p90 <= p99 <= max";
    }
    // Moment sanity with a sliver of float slack: n*min <= sum <= n*max.
    const double eps = 1e-9 + 1e-9 * std::abs(*sum);
    if (*sum + eps < *count * *mn || *sum - eps > *count * *mx) {
      return base + " (" + *name + "): sum outside [count*min, count*max]";
    }

    double prev_le = -1.0;
    bool saw_overflow = false;
    std::uint64_t bucket_total = 0;
    std::size_t buckets = 0;
    for (std::size_t j = 0;; ++j, ++buckets) {
      const std::string bpath = base + ".buckets." + std::to_string(j);
      if (!json_lookup(report, bpath)) break;
      const auto bcount = json_number(report, bpath + ".count");
      if (!bcount || *bcount <= 0.0 || *bcount != std::floor(*bcount)) {
        return bpath + ": bucket count must be a positive integer";
      }
      bucket_total += static_cast<std::uint64_t>(*bcount);
      if (!json_lookup(report, bpath + ".le")) {
        return bpath + ".le: missing";
      }
      const auto le = json_number(report, bpath + ".le");
      if (!le) {
        // null le = the +inf overflow bucket; nothing may follow it.
        saw_overflow = true;
        continue;
      }
      if (saw_overflow) {
        return bpath + ": finite bucket after the +inf overflow bucket";
      }
      if (*le <= prev_le) {
        return bpath + ": bucket le values must be strictly ascending";
      }
      prev_le = *le;
    }
    if (buckets == 0) return base + " (" + *name + "): no buckets";
    if (static_cast<double>(bucket_total) != *count) {
      return base + " (" + *name + "): bucket counts sum to " +
             std::to_string(bucket_total) + ", expected count " +
             std::to_string(static_cast<std::uint64_t>(*count));
    }
  }
  return std::nullopt;
}

std::optional<std::string> diagnose_report_consistency(
    std::string_view report) {
  // --- per-BFS histogram counts vs the run report's bfs_calls ----------
  const auto bfs_calls = json_number(report, "stages.counts.bfs_calls");
  if (bfs_calls && json_lookup(report, "histograms.series")) {
    double hist_bfs = 0.0;
    bool any_bfs_series = false;
    for (std::size_t i = 0;; ++i) {
      const std::string base = "histograms.series." + std::to_string(i);
      const auto name = json_string(report, base + ".name");
      if (!name) break;
      if (name->rfind("fdiam.bfs.seconds", 0) == 0) {
        any_bfs_series = true;
        if (const auto c = json_number(report, base + ".count")) {
          hist_bfs += *c;
        }
      }
    }
    // A metrics block without per-BFS series (instrumentation off, or a
    // zero-BFS run whose empty series were omitted) is not inconsistent;
    // once any fdiam.bfs.seconds series exists, the sum must be exact.
    if (any_bfs_series && hist_bfs != *bfs_calls) {
      return "histograms: fdiam.bfs.seconds[stage=*] counts sum to " +
             std::to_string(static_cast<std::uint64_t>(hist_bfs)) +
             " but stages.counts.bfs_calls is " +
             std::to_string(static_cast<std::uint64_t>(*bfs_calls));
    }
  }

  // --- utilization busy total vs wall time x threads -------------------
  const auto busy = json_number(report, "utilization.total.busy_s");
  const auto threads = json_number(report, "utilization.threads");
  const auto wall = json_number(report, "stages.times_s.total");
  if (busy && threads && wall && *threads > 0.0) {
    // 5% + 1ms slack: the stage timers and the per-thread busy clocks
    // are sampled independently, so scheduling skew can nudge the sum
    // past the exact product on very short runs.
    const double limit = *wall * *threads * 1.05 + 1e-3;
    if (*busy > limit) {
      return "utilization.total.busy_s (" + std::to_string(*busy) +
             ") exceeds wall x threads (" + std::to_string(*wall) + " x " +
             std::to_string(*threads) + ")";
    }
  }
  return std::nullopt;
}

std::optional<std::string> diagnose_memory_block(std::string_view report) {
  if (!json_lookup(report, "memory")) return std::nullopt;

  const auto uint_at = [&](const char* field) -> std::optional<double> {
    const auto v = json_number(report, std::string("memory.") + field);
    if (!v || *v < 0.0 || *v != std::floor(*v)) return std::nullopt;
    return v;
  };

  // Placement provenance: the enums must round-trip through the same
  // parsers the CLI uses, so a report can seed a reproduction run.
  const auto numa = json_string(report, "memory.numa_mode");
  util::NumaMode numa_mode{};
  if (!numa || !util::parse_numa_mode(*numa, numa_mode)) {
    return "memory.numa_mode: expected one of none/interleave/local, got " +
           (numa ? '"' + *numa + '"' : std::string("a non-string value"));
  }
  const auto huge = json_string(report, "memory.huge_pages");
  util::HugePageMode huge_mode{};
  if (!huge || !util::parse_huge_page_mode(*huge, huge_mode)) {
    return "memory.huge_pages: expected one of auto/on/off, got " +
           (huge ? '"' + *huge + '"' : std::string("a non-string value"));
  }
  const auto nodes = uint_at("numa_nodes");
  if (!nodes || *nodes < 1.0) {
    return "memory.numa_nodes: must be a positive integer";
  }
  if (!uint_at("mapped_bytes")) {
    return "memory.mapped_bytes: must be a non-negative integer";
  }
  if (json_lookup(report, "memory.anon_rss_bytes") &&
      !uint_at("anon_rss_bytes")) {
    return "memory.anon_rss_bytes: must be a non-negative integer";
  }

  // Watermark profile (only when the solver measured one).
  const auto avail = json_lookup(report, "memory.available");
  if (avail && *avail == "true") {
    const auto peak = uint_at("peak_rss_bytes");
    if (!peak || *peak <= 0.0) {
      return "memory.peak_rss_bytes: must be a positive integer when "
             "memory.available is true";
    }
    const auto end = uint_at("rss_end_bytes");
    if (!end) {
      return "memory.rss_end_bytes: must be a non-negative integer when "
             "memory.available is true";
    }
    if (*peak < *end) {
      return "memory.peak_rss_bytes (" +
             std::to_string(static_cast<std::uint64_t>(*peak)) +
             ") below rss_end_bytes (" +
             std::to_string(static_cast<std::uint64_t>(*end)) +
             "): a high-water mark cannot undercut the closing sample";
    }
  }
  return std::nullopt;
}

}  // namespace fdiam::obs
