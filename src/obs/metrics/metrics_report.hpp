#pragma once
// Latency/size distribution telemetry for one solve, and its validated
// run-report block (schema "fdiam.metrics/v1").
//
// SolveHistograms bundles the registry-backed histograms the solver's
// instrumentation points record into (see FDiamOptions::histograms):
//
//   fdiam.bfs.seconds[stage=init|ecc|winnow]  per-BFS-call latency; the
//       three counts sum exactly to FDiamStats::bfs_calls (init 2-sweep
//       BFS + main-loop eccentricities count as ecc_computations, winnow
//       traversals as winnow_calls), which json_check cross-checks
//       against the run report.
//   fdiam.stage.seconds[stage=chain|eliminate|extend]  per-episode stage
//       durations (not BFS calls; Eliminate is not a counted traversal).
//   fdiam.msbfs.batch.seconds  per-batch latency of multi-source /
//       batched traversals: the solver's eliminated-region extensions
//       and candidate-batch rounds, plus msbfs_* sweeps when a batch
//       histogram is installed (bfs/msbfs.hpp).
//   fdiam.bfs.frontier.vertices  per-level frontier sizes from every
//       engine the run uses.
//
// The report block carries, per non-empty series: count, sum, min/max,
// p50/p90/p99 quantiles, and the sparse bucket layout — enough to
// recompute the quantiles offline and to cross-validate the OpenMetrics
// exposition.

#include <optional>
#include <string>
#include <string_view>

#include "obs/counters.hpp"

namespace fdiam::obs {

class JsonWriter;

/// Stable handles into `reg` for every solver-recorded distribution.
/// Construct once per run (or reuse across repetitions; reset via the
/// registry) and hand to FDiamOptions::histograms.
struct SolveHistograms {
  explicit SolveHistograms(MetricRegistry& reg)
      : bfs_init(reg.histogram("fdiam.bfs.seconds[stage=init]")),
        bfs_ecc(reg.histogram("fdiam.bfs.seconds[stage=ecc]")),
        bfs_winnow(reg.histogram("fdiam.bfs.seconds[stage=winnow]")),
        stage_chain(reg.histogram("fdiam.stage.seconds[stage=chain]")),
        stage_eliminate(reg.histogram("fdiam.stage.seconds[stage=eliminate]")),
        stage_extend(reg.histogram("fdiam.stage.seconds[stage=extend]")),
        msbfs_batch(reg.histogram("fdiam.msbfs.batch.seconds")),
        frontier(reg.histogram("fdiam.bfs.frontier.vertices")) {}

  Histogram& bfs_init;
  Histogram& bfs_ecc;
  Histogram& bfs_winnow;
  Histogram& stage_chain;
  Histogram& stage_eliminate;
  Histogram& stage_extend;
  Histogram& msbfs_batch;
  Histogram& frontier;
};

/// Append the "histograms" block (schema fdiam.metrics/v1) to an open
/// report object. Series with zero records are omitted — an ablated or
/// trivial run simply has fewer series. `series` is typically
/// MetricRegistry::snapshot_histograms().
void write_metrics_block(
    JsonWriter& w,
    const std::vector<std::pair<std::string, HistogramSnapshot>>& series);

/// Validate the "histograms" block of a run-report document: schema tag,
/// per-series shape (quantile monotonicity min <= p50 <= p90 <= p99 <=
/// max, bucket le ascending, bucket counts summing to count). Returns
/// nullopt when the block is absent (older reports) or valid.
[[nodiscard]] std::optional<std::string> diagnose_metrics_block(
    std::string_view report);

/// Cross-block consistency over one run-report document:
///  * the fdiam.bfs.seconds[stage=*] histogram counts must sum to
///    stages.counts.bfs_calls;
///  * utilization busy totals must not exceed wall time x threads.
/// Nullopt when consistent or when the involved blocks are absent.
[[nodiscard]] std::optional<std::string> diagnose_report_consistency(
    std::string_view report);

/// Validate the "memory" block of a run-report document: placement
/// provenance enums (numa_mode / huge_pages) must be spellings
/// util::parse_* accepts, numa_nodes a positive integer, mapped_bytes /
/// anon_rss_bytes non-negative integers, and — when the watermark
/// profile is available — peak_rss_bytes a positive integer no smaller
/// than rss_end_bytes (a high-water mark below the closing sample means
/// the writer mixed up fields). Nullopt when the block is absent (older
/// reports) or valid.
[[nodiscard]] std::optional<std::string> diagnose_memory_block(
    std::string_view report);

}  // namespace fdiam::obs
