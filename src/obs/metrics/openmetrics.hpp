#pragma once
// OpenMetrics/Prometheus text exposition for the metric registry, plus
// a lint for the subset this writer emits — so verify-metrics can gate
// the CLI's --metrics-out files (and CI can catch a writer regression)
// without a Prometheus binary in the container.
//
// Name mapping (registry → exposition):
//  * an optional `[key=value,...]` suffix becomes a label set:
//    "fdiam.bfs.seconds[stage=ecc]" → fdiam_bfs_seconds{stage="ecc"}
//  * remaining characters outside [a-zA-Z0-9_:] become '_', and a
//    "fdiam_" prefix is added when missing, namespacing the scrape;
//  * counters gain the OpenMetrics-required "_total" sample suffix;
//  * a gauge whose sanitized family collides with a counter family is
//    suffixed "_gauge" (the registry's namespaces are disjoint, the
//    exposition's are not);
//  * histograms emit cumulative `_bucket{le="..."}` samples (sparse:
//    only non-empty buckets, plus the mandatory le="+Inf"), `_sum`,
//    and `_count`, with series of the same family grouped under one
//    `# TYPE` block; families ending in `_seconds` also get
//    `# UNIT ... seconds`.
//
// The exposition ends with the mandatory `# EOF` marker.

#include <optional>
#include <ostream>
#include <string>
#include <string_view>

#include "obs/counters.hpp"

namespace fdiam::obs {

/// Sanitized family name for a registry metric name (label suffix
/// stripped, charset fixed, "fdiam_" prefix ensured). Exposed for tests.
[[nodiscard]] std::string openmetrics_family(std::string_view name);

/// Labels rendered from a registry name's `[key=value,...]` suffix
/// ("{stage=\"ecc\"}"); empty string when the name carries no labels.
[[nodiscard]] std::string openmetrics_labels(std::string_view name);

/// Write the full exposition (counters, gauges, histograms, `# EOF`).
void write_openmetrics(std::ostream& os, const MetricRegistry& reg);

/// Validate `text` against the grammar of the subset write_openmetrics
/// produces: metadata lines (`# TYPE|HELP|UNIT`), sample lines with
/// optional label sets, TYPE-before-samples ordering, counter
/// non-negativity and `_total` naming, histogram bucket monotonicity
/// (ascending le, non-decreasing cumulative counts, mandatory +Inf
/// equal to `_count`), and the terminating `# EOF`. Returns nullopt on
/// success or a "line N: ..." diagnostic for the first violation.
[[nodiscard]] std::optional<std::string> openmetrics_lint(
    std::string_view text);

}  // namespace fdiam::obs
