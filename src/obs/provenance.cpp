#include "obs/provenance.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#include <csignal>
#include <unistd.h>
#endif

#include "obs/json.hpp"
#include "obs/log/flight.hpp"
#include "obs/log/log.hpp"

namespace fdiam::obs {

namespace {

// Order matches the ProvStage enumerators (index == enum value).
constexpr std::string_view kStageNames[kProvStageCount] = {
    "active",        "degree0",   "two_sweep_seed",
    "winnow",        "chain_tail", "chain_anchor_region",
    "eliminate",     "incremental_extension", "evaluated",
};

}  // namespace

std::string_view prov_stage_name(ProvStage s) {
  const auto i = static_cast<std::size_t>(s);
  return i < kProvStageCount ? kStageNames[i] : std::string_view("unknown");
}

std::optional<ProvStage> prov_stage_from_name(std::string_view name) {
  for (std::size_t i = 0; i < kProvStageCount; ++i) {
    if (kStageNames[i] == name) return static_cast<ProvStage>(i);
  }
  return std::nullopt;
}

std::uint64_t ProvenanceLog::removed_count() const {
  std::uint64_t c = 0;
  for (const VertexRecord& r : records) {
    if (r.stage != ProvStage::kActive) ++c;
  }
  return c;
}

std::vector<std::uint64_t> ProvenanceLog::stage_histogram() const {
  std::vector<std::uint64_t> h(kProvStageCount, 0);
  for (const VertexRecord& r : records) ++h[static_cast<std::size_t>(r.stage)];
  return h;
}

// --- Binary log (magic "FDPL", little-endian, fixed-size records) --------
//
// Layout: magic[4] u32 version u8 flags u32 n i32 diameter
//         u32 timeline_count {u32 round i32 old i32 new u32 witness
//                             u8 stage u64 alive}*
//         {u8 stage u32 round u32 anchor i32 bound i32 value} * n
// No checksum: the reader's structural checks (magic, version, stage
// range, exact length) are what the corrupted-log tests exercise; semantic
// damage is the auditor's department.

namespace {

constexpr char kMagic[4] = {'F', 'D', 'P', 'L'};
constexpr std::uint32_t kLogVersion = 1;

template <typename T>
void put(std::ostream& os, T v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}

template <typename T>
T get(std::istream& is, const char* what) {
  T v;
  is.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!is) {
    throw std::runtime_error("provenance log truncated while reading " +
                             std::string(what));
  }
  return v;
}

ProvStage decode_stage(std::uint8_t raw, const std::string& where) {
  if (raw >= kProvStageCount) {
    throw std::runtime_error("provenance log corrupt: stage tag " +
                             std::to_string(raw) + " out of range in " +
                             where);
  }
  return static_cast<ProvStage>(raw);
}

}  // namespace

void ProvenanceLog::write(std::ostream& os) const {
  os.write(kMagic, sizeof kMagic);
  put(os, kLogVersion);
  const std::uint8_t flags = (connected ? 1u : 0u) | (timed_out ? 2u : 0u) |
                             (capped ? 4u : 0u);
  put(os, flags);
  put(os, n);
  put(os, diameter);
  put(os, static_cast<std::uint32_t>(timeline.size()));
  for (const BoundStep& s : timeline) {
    put(os, s.round);
    put(os, s.old_bound);
    put(os, s.new_bound);
    put(os, s.witness);
    put(os, static_cast<std::uint8_t>(s.stage));
    put(os, s.alive);
  }
  for (const VertexRecord& r : records) {
    put(os, static_cast<std::uint8_t>(r.stage));
    put(os, r.round);
    put(os, r.anchor);
    put(os, r.bound);
    put(os, r.value);
  }
}

ProvenanceLog ProvenanceLog::read(std::istream& is) {
  char magic[4];
  is.read(magic, sizeof magic);
  if (!is || std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    throw std::runtime_error(
        "provenance log corrupt: bad magic (expected \"FDPL\")");
  }
  const auto version = get<std::uint32_t>(is, "version");
  if (version != kLogVersion) {
    throw std::runtime_error("provenance log version " +
                             std::to_string(version) +
                             " unsupported (this build reads version 1)");
  }
  ProvenanceLog log;
  const auto flags = get<std::uint8_t>(is, "flags");
  log.connected = (flags & 1u) != 0;
  log.timed_out = (flags & 2u) != 0;
  log.capped = (flags & 4u) != 0;
  log.n = get<std::uint32_t>(is, "vertex count");
  log.diameter = get<dist_t>(is, "diameter");
  const auto tl = get<std::uint32_t>(is, "timeline count");
  // A fabricated count would otherwise turn into a giant allocation
  // before the truncation check gets a chance to fire.
  if (tl > log.n + 1u) {
    throw std::runtime_error(
        "provenance log corrupt: timeline count " + std::to_string(tl) +
        " exceeds vertex count " + std::to_string(log.n) + " + 1");
  }
  log.timeline.reserve(tl);
  for (std::uint32_t i = 0; i < tl; ++i) {
    const std::string where = "timeline entry " + std::to_string(i);
    BoundStep s;
    s.round = get<std::uint32_t>(is, where.c_str());
    s.old_bound = get<dist_t>(is, where.c_str());
    s.new_bound = get<dist_t>(is, where.c_str());
    s.witness = get<vid_t>(is, where.c_str());
    s.stage = decode_stage(get<std::uint8_t>(is, where.c_str()), where);
    s.alive = get<std::uint64_t>(is, where.c_str());
    log.timeline.push_back(s);
  }
  log.records.resize(log.n);
  for (std::uint32_t v = 0; v < log.n; ++v) {
    const std::string where = "vertex record " + std::to_string(v);
    VertexRecord& r = log.records[v];
    r.stage = decode_stage(get<std::uint8_t>(is, where.c_str()), where);
    r.round = get<std::uint32_t>(is, where.c_str());
    r.anchor = get<vid_t>(is, where.c_str());
    r.bound = get<dist_t>(is, where.c_str());
    r.value = get<dist_t>(is, where.c_str());
  }
  // Trailing garbage means the file is not what the writer produced.
  is.peek();
  if (!is.eof()) {
    throw std::runtime_error(
        "provenance log corrupt: trailing bytes after the last record");
  }
  return log;
}

void ProvenanceLog::write_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw std::runtime_error("cannot open " + path + " for writing");
  }
  write(out);
  if (!out) throw std::runtime_error("short write to " + path);
}

ProvenanceLog ProvenanceLog::read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open provenance log " + path);
  return read(in);
}

void write_provenance_fields(JsonWriter& w, const ProvenanceLog& log) {
  w.field("schema", kProvenanceSchema);
  w.field("vertices", static_cast<std::uint64_t>(log.n));
  w.field("records", log.removed_count());
  w.field("capped", log.capped);
  const auto hist = log.stage_histogram();
  w.key("stage_counts").begin_object();
  for (std::size_t i = 1; i < kProvStageCount; ++i) {  // skip "active"
    w.field(kStageNames[i], hist[i]);
  }
  w.end_object();
  w.key("bound_timeline").begin_array();
  for (const BoundStep& s : log.timeline) {
    w.begin_object();
    w.field("round", static_cast<std::uint64_t>(s.round));
    w.field("old", static_cast<std::int64_t>(s.old_bound));
    w.field("new", static_cast<std::int64_t>(s.new_bound));
    w.field("witness", static_cast<std::uint64_t>(s.witness));
    w.field("stage", prov_stage_name(s.stage));
    w.field("alive", s.alive);
    w.end_object();
  }
  w.end_array();
}

namespace {

/// Top-level keys of a JSON object slice (assumed structurally valid —
/// json_check runs json_diagnose first). Used to enforce the closed
/// stage-tag set on "stage_counts" without a DOM.
std::vector<std::string> object_keys(std::string_view object_slice) {
  std::vector<std::string> keys;
  int depth = 0;
  bool want_key = false;
  for (std::size_t i = 0; i < object_slice.size(); ++i) {
    const char c = object_slice[i];
    if (c == '{' || c == '[') {
      ++depth;
      if (depth == 1 && c == '{') want_key = true;
      continue;
    }
    if (c == '}' || c == ']') {
      --depth;
      continue;
    }
    if (depth == 1 && c == ',') {
      want_key = true;
      continue;
    }
    if (depth == 1 && want_key && c == '"') {
      std::string key;
      for (++i; i < object_slice.size() && object_slice[i] != '"'; ++i) {
        key.push_back(object_slice[i]);
      }
      keys.push_back(std::move(key));
      want_key = false;
    }
  }
  return keys;
}

}  // namespace

std::optional<std::string> diagnose_provenance_block(
    std::string_view report) {
  if (!json_lookup(report, "provenance")) return std::nullopt;

  const auto schema = json_string(report, "provenance.schema");
  if (!schema || *schema != kProvenanceSchema) {
    return "provenance.schema: expected \"" + std::string(kProvenanceSchema) +
           "\", got " +
           (schema ? '"' + *schema + '"' : std::string("a non-string value"));
  }
  for (const char* field : {"vertices", "records"}) {
    if (!json_number(report, "provenance." + std::string(field))) {
      return "provenance." + std::string(field) + ": missing or non-numeric";
    }
  }

  const auto counts = json_lookup(report, "provenance.stage_counts");
  if (!counts) return std::string("provenance.stage_counts: missing");
  for (const std::string& key : object_keys(*counts)) {
    const auto stage = prov_stage_from_name(key);
    if (!stage || *stage == ProvStage::kActive) {
      return "provenance.stage_counts: stage tag \"" + key +
             "\" is not in the closed ProvStage set";
    }
  }

  if (!json_lookup(report, "provenance.bound_timeline")) {
    return std::string("provenance.bound_timeline: missing");
  }
  std::optional<double> prev_new;
  std::optional<double> prev_alive;
  for (std::size_t i = 0;; ++i) {
    const std::string base = "provenance.bound_timeline." + std::to_string(i);
    if (!json_lookup(report, base)) break;
    const auto old_b = json_number(report, base + ".old");
    const auto new_b = json_number(report, base + ".new");
    const auto alive = json_number(report, base + ".alive");
    const auto stage = json_string(report, base + ".stage");
    if (!old_b || !new_b || !alive || !stage) {
      return base + ": missing old/new/alive/stage field";
    }
    if (!prov_stage_from_name(*stage)) {
      return base + ": stage tag \"" + *stage +
             "\" is not in the closed ProvStage set";
    }
    if (*new_b <= *old_b) {
      return base + ": bound not increasing (" +
             std::to_string(static_cast<long long>(*old_b)) + " -> " +
             std::to_string(static_cast<long long>(*new_b)) + ")";
    }
    if (prev_new && *old_b != *prev_new) {
      return base + ": timeline not contiguous (old " +
             std::to_string(static_cast<long long>(*old_b)) +
             " != previous new " +
             std::to_string(static_cast<long long>(*prev_new)) + ")";
    }
    if (prev_alive && *alive > *prev_alive) {
      return base + ": alive count grew (" +
             std::to_string(static_cast<long long>(*prev_alive)) + " -> " +
             std::to_string(static_cast<long long>(*alive)) + ")";
    }
    prev_new = new_b;
    prev_alive = alive;
  }
  return std::nullopt;
}

// --- ProvenanceCollector -------------------------------------------------

void ProvenanceCollector::begin_run(vid_t n) {
  log_ = ProvenanceLog{};
  log_.n = n;
  log_.records.assign(n, VertexRecord{});
  round_ = 0;
}

void ProvenanceCollector::bound_raised(dist_t old_bound, dist_t new_bound,
                                       vid_t witness, ProvStage stage,
                                       std::uint64_t alive) {
  log_.timeline.push_back(
      BoundStep{round_, old_bound, new_bound, witness, stage, alive});
}

void ProvenanceCollector::finish(dist_t diameter, bool connected,
                                 bool timed_out) {
  log_.diameter = diameter;
  log_.connected = connected;
  log_.timed_out = timed_out;
}

void ProvenanceCollector::translate(const std::vector<vid_t>& inverse) {
  if (inverse.size() != log_.records.size()) return;  // size mismatch: no-op
  const auto map = [&inverse](vid_t v) {
    return v == kNoAnchor ? kNoAnchor : inverse[v];
  };
  std::vector<VertexRecord> out(log_.records.size());
  for (vid_t p = 0; p < log_.records.size(); ++p) {
    VertexRecord r = log_.records[p];
    r.anchor = map(r.anchor);
    out[inverse[p]] = r;
  }
  log_.records.swap(out);
  for (BoundStep& s : log_.timeline) s.witness = map(s.witness);
}

// --- ProgressHeartbeat ---------------------------------------------------

std::atomic<std::uint64_t> ProgressHeartbeat::snapshot_epoch_{0};

bool stderr_is_tty() {
#if defined(__unix__) || defined(__APPLE__)
  return isatty(fileno(stderr)) == 1;
#else
  return false;
#endif
}

ProgressHeartbeat::ProgressHeartbeat(double interval_seconds, bool force,
                                     std::FILE* out)
    : interval_(interval_seconds),
      force_(force),
      enabled_(force || stderr_is_tty()),
      out_(out),
      epoch_seen_(snapshot_epoch_.load(std::memory_order_relaxed)) {}

bool ProgressHeartbeat::due() {
  // A snapshot request (SIGUSR1 / request_snapshot()) fires regardless of
  // TTY state or interval — the user explicitly asked for it. Each
  // heartbeat tracks the last epoch it served, so one request reaches
  // every concurrently running solve instead of the first poller eating
  // it.
  const std::uint64_t epoch = snapshot_epoch_.load(std::memory_order_relaxed);
  if (epoch != epoch_seen_) {
    epoch_seen_ = epoch;
    snapshot_pending_ = true;
    return true;
  }
  if (!enabled_ || interval_ <= 0.0) return false;
  // Gate the clock read: one steady_clock call per 256 candidate scans is
  // invisible even on million-vertex main loops.
  if (++calls_ % 256 != 0) return false;
  const double now = clock_.seconds();
  if (now - last_beat_ < interval_) return false;
  last_beat_ = now;
  return true;
}

void ProgressHeartbeat::beat(std::uint64_t alive, std::uint64_t initial,
                             dist_t bound, std::uint64_t evaluated,
                             double elapsed_seconds, std::string_view util) {
  const std::uint64_t removed = initial > alive ? initial - alive : 0;
  double eta = -1.0;
  if (removed > 0 && alive > 0) {
    eta = elapsed_seconds * static_cast<double>(alive) /
          static_cast<double>(removed);
  }
  const char* tag = snapshot_pending_ ? "snapshot" : "heartbeat";
  snapshot_pending_ = false;
  // Progress beats also feed the crash flight recorder: a post-mortem dump
  // then shows how far the run had progressed, not just its final events.
  if (FlightRecorder* fr = FlightRecorder::active()) {
    fr->record(FlightRecorder::EventKind::kHeartbeat, LogLevel::kInfo, tag,
               static_cast<std::int64_t>(evaluated),
               static_cast<std::int64_t>(bound));
  }
  if (format_ == HeartbeatFormat::kJson) {
    // Route through the process logger: one JSON-lines record that the
    // --jsonl checker validates like every other log line. ETA/util stay
    // optional fields exactly like they are optional suffixes in text.
    Logger& lg = Logger::instance();
    if (eta >= 0.0) {
      lg.log(LogLevel::kInfo, "heartbeat", tag,
             {{"alive", alive},
              {"initial", initial},
              {"bound", static_cast<std::int64_t>(bound)},
              {"evaluated", evaluated},
              {"elapsed_s", elapsed_seconds},
              {"eta_s", eta},
              {"util", util}});
    } else {
      lg.log(LogLevel::kInfo, "heartbeat", tag,
             {{"alive", alive},
              {"initial", initial},
              {"bound", static_cast<std::int64_t>(bound)},
              {"evaluated", evaluated},
              {"elapsed_s", elapsed_seconds},
              {"util", util}});
    }
    return;
  }
  std::fprintf(out_,
               "[fdiam] %s: alive %llu/%llu, bound %d, evaluated %llu, "
               "elapsed %.1f s",
               tag, static_cast<unsigned long long>(alive),
               static_cast<unsigned long long>(initial), bound,
               static_cast<unsigned long long>(evaluated), elapsed_seconds);
  if (eta >= 0.0) std::fprintf(out_, ", ETA ~%.1f s", eta);
  if (!util.empty()) {
    std::fprintf(out_, ", %.*s", static_cast<int>(util.size()), util.data());
  }
  std::fputc('\n', out_);
  std::fflush(out_);
}

void ProgressHeartbeat::request_snapshot() {
  snapshot_epoch_.fetch_add(1, std::memory_order_relaxed);
}

void ProgressHeartbeat::install_signal_handler() {
#if defined(__unix__) || defined(__APPLE__)
  // Idempotent: a daemon calls this once per solve; only the first call
  // actually installs (re-installing the same disposition is harmless
  // but would clobber a user-replaced handler).
  static std::atomic<bool> installed{false};
  if (installed.exchange(true, std::memory_order_acq_rel)) return;
  struct sigaction sa = {};
  sa.sa_handler = [](int) { request_snapshot(); };
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  sigaction(SIGUSR1, &sa, nullptr);
#endif
}

}  // namespace fdiam::obs
