#pragma once
// Pruning provenance: an opt-in introspection layer for the F-Diam solver.
//
// F-Diam's value proposition is that Winnow, Chain Processing, and
// Theorem-1 Eliminate retire almost every vertex without evaluating it —
// but the aggregate counters (FDiamStats) cannot say WHICH stage removed
// WHICH vertex under WHAT bound, or why the bound grew. This layer records
// exactly that:
//
//  * one VertexRecord per removed vertex — the removing stage, the round,
//    the responsible anchor vertex, and the bound in effect;
//  * a BoundStep timeline — every bound increase with witness vertex,
//    triggering stage, and the alive count at that moment;
//  * a ProgressHeartbeat — periodic stderr progress lines with alive
//    count and an ETA, plus a SIGUSR1 / request_snapshot() dump for
//    stuck long runs.
//
// The collector is wired into FDiam through a nullable pointer in
// FDiamOptions, so a disabled run pays one branch per removal site and
// nothing else. Records serialize into the fdiam.run_report/v1 JSON
// ("provenance" block, schema fdiam.provenance/v1) and into a compact
// binary log that tools/fdiam_audit replays against per-vertex BFS ground
// truth (obs/audit.hpp documents the verified invariants).

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/timer.hpp"
#include "util/types.hpp"

namespace fdiam::obs {

class JsonWriter;

/// Why a vertex no longer needs its eccentricity computed. A CLOSED enum:
/// the JSON stage tags and the binary log encode these values, so adding
/// a member is a provenance schema bump (see kProvenanceSchema).
enum class ProvStage : std::uint8_t {
  kActive = 0,       ///< no record — the vertex was never removed
  kDegree0,          ///< isolated vertex, eccentricity 0 by definition
  kTwoSweepSeed,     ///< evaluated by the initial 2-sweep (paper §4.1)
  kWinnow,           ///< inside the winnow ball (Theorems 2+3, §4.2)
  kChainTail,        ///< interior of a degree-1 chain (§4.3)
  kChainAnchorRegion,///< within chain-length steps of a chain anchor (§4.3)
  kEliminate,        ///< Theorem-1 ball of an evaluated vertex (§4.4)
  kExtension,        ///< swept by a bound-raise region extension (§4.5)
  kEvaluated,        ///< eccentricity computed exactly in the main loop
};
inline constexpr std::size_t kProvStageCount = 9;

/// JSON tag for `s` ("winnow", "chain_tail", ...); "active" for kActive.
std::string_view prov_stage_name(ProvStage s);
/// Reverse of prov_stage_name; nullopt for names outside the closed set.
std::optional<ProvStage> prov_stage_from_name(std::string_view name);

/// Anchor value for removals with no single responsible vertex (the
/// multi-source region extension).
inline constexpr vid_t kNoAnchor = UINT32_MAX;

/// Why/when one vertex was removed from consideration.
struct VertexRecord {
  ProvStage stage = ProvStage::kActive;
  /// Eccentricity evaluations completed when the removal happened (the
  /// 2-sweep's pair counts, so setup-stage removals carry round <= 2).
  std::uint32_t round = 0;
  /// The vertex whose evaluation justified the removal: the winnow
  /// center, the Eliminate source, the chain anchor, the vertex itself
  /// for evaluated/degree-0 records, kNoAnchor for extensions.
  vid_t anchor = kNoAnchor;
  /// Diameter lower bound in effect at removal time; for chain records
  /// the chain length s instead (the pseudo-bound MAX is not a bound).
  dist_t bound = 0;
  /// Recorded eccentricity value: exact for evaluated/seed records, the
  /// Theorem-1 upper bound ecc(anchor) + d for eliminate records,
  /// kWinnowedState (-1) for winnow records, the raw MAX-based marker
  /// for chain-region records.
  dist_t value = 0;
};

/// One bound increase (old -> new) on the evolution timeline.
struct BoundStep {
  std::uint32_t round = 0;
  dist_t old_bound = -1;  ///< -1 on the initial 2-sweep entry
  dist_t new_bound = 0;
  vid_t witness = 0;       ///< vertex whose eccentricity equals new_bound
  ProvStage stage = ProvStage::kTwoSweepSeed;  ///< what raised the bound
  std::uint64_t alive = 0; ///< vertices still active after this raise
};

inline constexpr std::string_view kProvenanceSchema = "fdiam.provenance/v1";

/// Everything one provenance-enabled run produced. Written/read as a
/// compact binary log (magic "FDPL", version 1) for tools/fdiam_audit and
/// summarized into the run report's "provenance" JSON block.
struct ProvenanceLog {
  std::uint32_t n = 0;           ///< |V| of the solved graph
  dist_t diameter = 0;           ///< final bound the run reported
  bool connected = true;
  bool timed_out = false;
  /// True when FDiamOptions::cap_initial_bound weakened the 2-sweep
  /// bound: the initial timeline entry is then below its witness's true
  /// eccentricity, and the auditor relaxes that check to <=.
  bool capped = false;
  std::vector<VertexRecord> records;  ///< indexed by vertex id, size n
  std::vector<BoundStep> timeline;

  /// Vertices carrying a removal record (stage != kActive).
  [[nodiscard]] std::uint64_t removed_count() const;
  /// Histogram over ProvStage, indexed by static_cast<size_t>(stage).
  [[nodiscard]] std::vector<std::uint64_t> stage_histogram() const;

  /// Binary serialization. read() throws std::runtime_error with a
  /// precise message (bad magic, unsupported version, truncation at a
  /// named record, out-of-range stage tag) so a corrupted log fails
  /// loudly instead of auditing garbage.
  void write(std::ostream& os) const;
  static ProvenanceLog read(std::istream& is);
  void write_file(const std::string& path) const;
  static ProvenanceLog read_file(const std::string& path);
};

/// Append the run report's "provenance" block fields for `log` onto an
/// open JsonWriter object. Per-vertex records stay in the binary log;
/// the JSON carries the schema tag, stage histogram, and full timeline.
void write_provenance_fields(JsonWriter& w, const ProvenanceLog& log);

/// Semantic validation of the "provenance" block inside a serialized
/// fdiam.run_report/v1 document: schema version, stage tags from the
/// closed enum, strictly-increasing and contiguous bound timeline,
/// non-increasing alive counts. Returns a named one-line diagnostic
/// ("provenance.bound_timeline.2: ..."), or nullopt when the block is
/// valid or absent (absence is not an error — provenance is opt-in).
std::optional<std::string> diagnose_provenance_block(std::string_view report);

/// Collects provenance during one FDiam::run(). Thread-safety matches the
/// solver's removal protocol: record() writes only the vertex's own cell,
/// and every parallel removal site first wins a CAS/claim that makes one
/// thread the exclusive owner of that vertex — so the same distinct-cell
/// argument that keeps state_[] race-free covers records_[]. Timeline
/// appends happen on the serial control path only.
class ProvenanceCollector {
 public:
  /// Reset for a run over an n-vertex graph (FDiam::run() calls this, so
  /// a collector can be reused across repetitions like the solver).
  void begin_run(vid_t n);

  /// Advance the round counter (= eccentricity evaluations completed).
  void set_round(std::uint32_t round) { round_ = round; }
  [[nodiscard]] std::uint32_t round() const { return round_; }

  /// Record the removal of v. First remover keeps the record, mirroring
  /// FDiam::mark_removed attribution; later calls are no-ops.
  void record(vid_t v, ProvStage stage, vid_t anchor, dist_t bound,
              dist_t value) {
    VertexRecord& r = log_.records[v];
    if (r.stage != ProvStage::kActive) return;
    r.stage = stage;
    r.round = round_;
    r.anchor = anchor;
    r.bound = bound;
    r.value = value;
  }

  /// Refine an existing record's stage in place (chain processing retags
  /// the degree-2 chain interiors from kChainAnchorRegion to kChainTail).
  void retag(vid_t v, ProvStage from, ProvStage to) {
    if (log_.records[v].stage == from) log_.records[v].stage = to;
  }

  /// Drop the record of a vertex returned to consideration (chain tips).
  void reactivate(vid_t v) { log_.records[v] = VertexRecord{}; }

  /// Append a bound-evolution timeline entry.
  void bound_raised(dist_t old_bound, dist_t new_bound, vid_t witness,
                    ProvStage stage, std::uint64_t alive);

  void set_capped() { log_.capped = true; }

  /// Stamp the run outcome; call once the solver finished.
  void finish(dist_t diameter, bool connected, bool timed_out);

  /// Remap every vertex id (record index, anchor, witness) through
  /// `inverse` (permuted id -> original id), so provenance collected on a
  /// reordered CSR reads in the caller's id space — the same translation
  /// fdiam_diameter_reordered applies to the witness.
  void translate(const std::vector<vid_t>& inverse);

  [[nodiscard]] const ProvenanceLog& log() const { return log_; }

 private:
  ProvenanceLog log_;
  std::uint32_t round_ = 0;
};

/// True when stderr is an interactive terminal (false on non-POSIX
/// platforms). Progress output keys on this so piped/benchmark runs stay
/// machine-clean (docs/OBSERVABILITY.md).
bool stderr_is_tty();

/// Rendering of one progress beat: the classic human-readable stderr line
/// (byte-identical to what the solver always printed), or one structured
/// record through the process logger (sub "heartbeat", level info) so
/// monitoring can parse progress without scraping text.
enum class HeartbeatFormat : std::uint8_t { kText, kJson };

/// Live progress heartbeat for long solver runs: every `interval_seconds`
/// the solver prints one stderr line with the alive-vertex count, current
/// bound, and an ETA extrapolated from the removal rate so far. Periodic
/// beats are suppressed when stderr is not a TTY unless `force` is set;
/// an explicitly requested snapshot (SIGUSR1 or request_snapshot()) is
/// always printed — that is the whole point of poking a stuck run.
class ProgressHeartbeat {
 public:
  explicit ProgressHeartbeat(double interval_seconds, bool force = false,
                             std::FILE* out = stderr);

  /// Select text (default) or structured-logger output for beat().
  void set_format(HeartbeatFormat format) { format_ = format; }
  [[nodiscard]] HeartbeatFormat format() const { return format_; }

  /// Cheap per-iteration gate: checks the wall clock only every few
  /// hundred calls, so the solver can tick once per candidate scan
  /// without measurable cost. True when a beat (or snapshot) is owed.
  bool due();

  /// Emit one progress line. The solver calls this only after due().
  /// `util` is an optional pre-formatted live-utilization summary (the
  /// per-thread busy ratios since the previous beat, built by the solver
  /// when a UtilCollector is installed); empty = omitted.
  void beat(std::uint64_t alive, std::uint64_t initial, dist_t bound,
            std::uint64_t evaluated, double elapsed_seconds,
            std::string_view util = {});

  [[nodiscard]] bool periodic_enabled() const { return enabled_; }

  /// Portable SIGUSR1 fallback: ask the next due() of EVERY live
  /// heartbeat to fire regardless of the interval or TTY state.
  /// Async-signal-safe (one atomic increment). The request is an epoch
  /// counter, not a flag: with several concurrent solves in one process
  /// (a serving daemon), one SIGUSR1 snapshots all of them instead of
  /// being consumed by whichever heartbeat polls first.
  static void request_snapshot();
  /// Install a SIGUSR1 handler that calls request_snapshot(). No-op on
  /// platforms without sigaction; idempotent — repeated calls (one per
  /// concurrent solve in a daemon) install the handler exactly once.
  static void install_signal_handler();

 private:
  double interval_;
  bool force_;
  bool enabled_;       // periodic beats: force_ || stderr_is_tty()
  HeartbeatFormat format_ = HeartbeatFormat::kText;
  std::FILE* out_;
  Timer clock_;
  double last_beat_ = 0.0;
  std::uint32_t calls_ = 0;
  bool snapshot_pending_ = false;
  /// Last snapshot epoch this heartbeat served; initialized to the epoch
  /// at construction so requests predating the heartbeat don't fire.
  std::uint64_t epoch_seen_;
  static std::atomic<std::uint64_t> snapshot_epoch_;
};

}  // namespace fdiam::obs
