#pragma once
// Invariant auditor for F-Diam provenance logs: recompute ground truth
// (every vertex's exact eccentricity, by one BFS per vertex) and verify
// each pruning record against the paper's theorems. This is deliberately
// the dumbest possible oracle — O(nm), sharing none of the solver's
// skip logic — so it doubles as a standing correctness check for every
// future solver-perf change.
//
// Invariants checked per record (docs/ALGORITHM.md cross-links these):
//  * global oracle: the reported diameter equals the maximum true
//    eccentricity over all vertices (so "every pruned vertex's true
//    eccentricity <= final diameter" holds with equality somewhere);
//  * evaluated / two-sweep-seed / degree-0: recorded value == true ecc;
//  * winnow: dist(center, v) <= floor(bound/2) — Theorem 2/3 precondition;
//  * eliminate: value == ecc(anchor) + dist(anchor, v) (Theorem 1's bound,
//    exactly), dist(anchor, v) <= bound - ecc(anchor), and the bound is
//    sound: true ecc(v) <= value;
//  * chain regions/tails: dist(anchor, v) <= s (the chain length stored in
//    the record's bound field), and the raw MAX-based marker decodes back
//    to that distance;
//  * incremental extension: old < value <= fresh (the record's bound) and
//    true ecc(v) <= value;
//  * bound timeline: strictly increasing, contiguous (old[i] == new[i-1]),
//    alive counts non-increasing, every new bound equals its witness's
//    true eccentricity (<= when the cap_initial_bound knob weakened the
//    2-sweep entry), and the last entry equals the reported diameter;
//  * completed runs (not timed out) leave no vertex unaccounted for.

#include <cstdint>
#include <string>
#include <vector>

#include "graph/csr.hpp"
#include "obs/provenance.hpp"

namespace fdiam::obs {

struct AuditOptions {
  /// Stop collecting error strings after this many (checking continues,
  /// so the totals stay right); 0 keeps everything.
  std::size_t max_errors = 25;
};

struct AuditResult {
  bool ok = false;
  /// Human-readable violations, each naming the vertex/entry and the
  /// invariant it broke. Truncated at AuditOptions::max_errors with a
  /// final "... and N more" marker.
  std::vector<std::string> errors;
  std::uint64_t records_checked = 0;
  std::uint64_t timeline_checked = 0;
  std::uint64_t bfs_traversals = 0;  ///< ground-truth BFS runs performed
  dist_t true_diameter = 0;          ///< max true eccentricity found
};

/// Replay `log` against `g`. Throws std::runtime_error only on a
/// graph/log size mismatch (auditing record i of a different graph is
/// meaningless); every semantic violation lands in AuditResult::errors.
AuditResult audit_provenance(const Csr& g, const ProvenanceLog& log,
                             const AuditOptions& opt = {});

}  // namespace fdiam::obs
