#pragma once
// Chrome trace_event recording (the "JSON Array Format" understood by
// Perfetto and chrome://tracing).
//
// A TraceSession collects events in memory — complete spans (ph "X") with
// microsecond timestamps relative to session start, and instant markers
// (ph "i") — and serializes them with write(). Spans come from three
// sources:
//   * RAII Span objects for caller-defined scopes (graph load, run, ...),
//   * fdiam_sink(): an FDiamTrace adapter turning the solver's per-decision
//     event stream into one span per stage invocation and one span per
//     eccentricity BFS (FDiamEvent::seconds carries the duration),
//   * bfs_level_sink(): an opt-in BfsLevelProfile adapter emitting one
//     span per BFS level, named by traversal direction — this is the
//     high-volume firehose that makes the direction-optimizing switch
//     visible on a timeline.
// Recording is mutex-protected so parallel sections may emit safely.

#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "core/fdiam.hpp"
#include "util/timer.hpp"

namespace fdiam::obs {

/// One key plus a JSON-ready value for a trace event's "args" object.
struct TraceArg {
  std::string key;
  std::string json_value;  // pre-serialized: number, "quoted string", bool

  TraceArg(std::string k, std::int64_t v)
      : key(std::move(k)), json_value(std::to_string(v)) {}
  TraceArg(std::string k, std::uint64_t v)
      : key(std::move(k)), json_value(std::to_string(v)) {}
  TraceArg(std::string k, int v)
      : key(std::move(k)), json_value(std::to_string(v)) {}
  TraceArg(std::string k, double v);
  TraceArg(std::string k, bool v)
      : key(std::move(k)), json_value(v ? "true" : "false") {}
  TraceArg(std::string k, std::string_view v);
};

class TraceSession {
 public:
  TraceSession() = default;
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  /// RAII complete-span: records begin on construction, emits the "X"
  /// event with the measured duration on destruction.
  class Span {
   public:
    Span(TraceSession& session, std::string name,
         std::vector<TraceArg> args = {});
    ~Span();
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

   private:
    TraceSession& session_;
    std::string name_;
    std::vector<TraceArg> args_;
    double start_us_;
  };

  [[nodiscard]] Span span(std::string name, std::vector<TraceArg> args = {}) {
    return Span(*this, std::move(name), std::move(args));
  }

  /// Record a complete span whose duration was measured externally; the
  /// span is placed so it *ends* now (begin = now - duration).
  void complete(std::string name, double duration_seconds,
                std::vector<TraceArg> args = {});

  /// Record an instant marker at the current time.
  void instant(std::string name, std::vector<TraceArg> args = {});

  /// Record a counter sample (ph "C") at the current time — Perfetto
  /// renders one counter track per name. Used for the utilization
  /// busy-ratio/idle tracks the CLI emits at stage boundaries.
  void counter(std::string name, double value);

  /// Adapter for FDiamOptions::trace; the returned callable refers to
  /// this session, which must outlive the solver run.
  [[nodiscard]] FDiamTrace fdiam_sink();

  /// Adapter for FDiamOptions::level_profile / BfsEngine::set_level_hook.
  /// High volume: one event per BFS level across all traversals.
  [[nodiscard]] BfsLevelHook bfs_level_sink();

  /// Microseconds since session construction.
  [[nodiscard]] double now_us() const { return clock_.seconds() * 1e6; }

  [[nodiscard]] std::size_t size() const;

  /// Serialize every recorded event as a Chrome trace_event JSON array.
  void write(std::ostream& os) const;

 private:
  struct Event {
    std::string name;
    char ph;        // 'X' complete, 'i' instant, 'C' counter
    double ts_us;   // relative to session start
    double dur_us;  // 'X' only
    std::vector<TraceArg> args;
  };
  void record(Event e);

  Timer clock_;
  mutable std::mutex mu_;
  std::vector<Event> events_;
};

}  // namespace fdiam::obs
