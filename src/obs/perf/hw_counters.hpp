#pragma once
// Plain-data hardware/software performance-counter sample.
//
// This header is intentionally dependency-free (no syscalls, no perf
// headers) so that core/fdiam.hpp can embed per-stage counter samples in
// FDiamStats/DiameterResult without pulling the Linux-specific session
// machinery (perf_session.hpp) into every translation unit. A counter
// that could not be opened on this kernel/container is simply invalid in
// every sample; consumers emit it as `null`/`unavailable`, never as 0,
// so absent hardware is distinguishable from idle hardware.

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>

namespace fdiam::obs {

/// The fixed set of events a PerfSession samples. The first six are
/// hardware PMU events (frequently unavailable inside VMs/containers);
/// the last three are kernel software events, which work almost
/// everywhere and keep the subsystem useful even without a PMU.
enum class HwEvent : std::uint8_t {
  kCycles = 0,
  kInstructions,
  kCacheReferences,
  kCacheMisses,
  kBranchMisses,
  kStalledCycles,     // stalled-cycles-frontend
  kTaskClockNs,       // software: per-thread CPU time in nanoseconds
  kPageFaults,        // software
  kContextSwitches,   // software
  kCount
};

inline constexpr std::size_t kHwEventCount =
    static_cast<std::size_t>(HwEvent::kCount);

/// Index of the first software event in the HwEvent order.
inline constexpr std::size_t kFirstSoftwareEvent =
    static_cast<std::size_t>(HwEvent::kTaskClockNs);

/// Stable snake_case name used as the JSON report key for each event.
constexpr std::string_view hw_event_name(HwEvent e) {
  switch (e) {
    case HwEvent::kCycles: return "cycles";
    case HwEvent::kInstructions: return "instructions";
    case HwEvent::kCacheReferences: return "cache_references";
    case HwEvent::kCacheMisses: return "cache_misses";
    case HwEvent::kBranchMisses: return "branch_misses";
    case HwEvent::kStalledCycles: return "stalled_cycles";
    case HwEvent::kTaskClockNs: return "task_clock_ns";
    case HwEvent::kPageFaults: return "page_faults";
    case HwEvent::kContextSwitches: return "context_switches";
    case HwEvent::kCount: break;
  }
  return "unknown";
}

/// One multiplex-scaled counter sample (a point snapshot or a delta
/// between two snapshots). Values are summed event counts; validity is
/// per event, so a kernel that exposes software events but no PMU still
/// yields a partially valid sample.
struct HwCounters {
  std::array<std::uint64_t, kHwEventCount> value{};
  std::array<bool, kHwEventCount> valid{};

  [[nodiscard]] bool has(HwEvent e) const {
    return valid[static_cast<std::size_t>(e)];
  }
  [[nodiscard]] std::uint64_t get(HwEvent e) const {
    return value[static_cast<std::size_t>(e)];
  }
  void set(HwEvent e, std::uint64_t v) {
    value[static_cast<std::size_t>(e)] = v;
    valid[static_cast<std::size_t>(e)] = true;
  }

  /// True when at least one event (of any kind) carries a valid value.
  [[nodiscard]] bool any() const {
    for (const bool v : valid) {
      if (v) return true;
    }
    return false;
  }

  /// True when at least one of the six PMU events is valid.
  [[nodiscard]] bool any_hardware() const {
    for (std::size_t i = 0; i < kFirstSoftwareEvent; ++i) {
      if (valid[i]) return true;
    }
    return false;
  }

  /// Per-event sum; an event is valid in the result only when valid in
  /// both operands (a stage measured without a counter must not silently
  /// zero the aggregate)... except against an all-invalid default, which
  /// acts as the neutral element so `total += stage` accumulation works.
  HwCounters& operator+=(const HwCounters& o) {
    for (std::size_t i = 0; i < kHwEventCount; ++i) {
      if (!o.valid[i]) continue;
      value[i] += o.value[i];
      valid[i] = true;
    }
    return *this;
  }

  /// later - earlier, per event; valid only where both are valid.
  /// Values are clamped at 0 (multiplex scaling can jitter backwards).
  [[nodiscard]] static HwCounters delta(const HwCounters& later,
                                        const HwCounters& earlier) {
    HwCounters d;
    for (std::size_t i = 0; i < kHwEventCount; ++i) {
      if (!later.valid[i] || !earlier.valid[i]) continue;
      d.valid[i] = true;
      d.value[i] =
          later.value[i] >= earlier.value[i] ? later.value[i] - earlier.value[i]
                                             : 0;
    }
    return d;
  }

  // --- Derived metrics (nullopt when an input event is unavailable) ------

  [[nodiscard]] std::optional<double> ipc() const {
    if (!has(HwEvent::kInstructions) || !has(HwEvent::kCycles) ||
        get(HwEvent::kCycles) == 0) {
      return std::nullopt;
    }
    return static_cast<double>(get(HwEvent::kInstructions)) /
           static_cast<double>(get(HwEvent::kCycles));
  }

  [[nodiscard]] std::optional<double> cache_miss_rate() const {
    if (!has(HwEvent::kCacheMisses) || !has(HwEvent::kCacheReferences) ||
        get(HwEvent::kCacheReferences) == 0) {
      return std::nullopt;
    }
    return static_cast<double>(get(HwEvent::kCacheMisses)) /
           static_cast<double>(get(HwEvent::kCacheReferences));
  }

  /// get(e) / divisor — e.g. cache misses per examined edge.
  [[nodiscard]] std::optional<double> per(HwEvent e,
                                          std::uint64_t divisor) const {
    if (!has(e) || divisor == 0) return std::nullopt;
    return static_cast<double>(get(e)) / static_cast<double>(divisor);
  }
};

/// Peak-RSS / resident-set watermark snapshot, read from
/// /proc/self/status (VmHWM/VmRSS) with a getrusage fallback.
/// `available == false` (non-Linux, masked /proc) is never fatal.
struct MemWatermark {
  bool available = false;
  std::uint64_t peak_rss_bytes = 0;     ///< process-lifetime high-water mark
  std::uint64_t current_rss_bytes = 0;  ///< resident set at capture time
};

/// Memory profile of one solver run: watermark at start and end. The
/// peak is process-wide (the kernel's watermark cannot be reset without
/// privileges), so `peak_rss_bytes` covers graph construction too; the
/// `rss_start/end` pair isolates what the run itself touched.
struct MemProfile {
  bool available = false;
  std::uint64_t peak_rss_bytes = 0;   ///< VmHWM at run end
  std::uint64_t rss_start_bytes = 0;  ///< VmRSS when run() began
  std::uint64_t rss_end_bytes = 0;    ///< VmRSS when run() finished

  /// Growth across the run; 0 when the run fit in already-resident pages.
  [[nodiscard]] std::uint64_t rss_delta_bytes() const {
    return rss_end_bytes >= rss_start_bytes ? rss_end_bytes - rss_start_bytes
                                            : 0;
  }
};

}  // namespace fdiam::obs
