#include "obs/perf/perf_session.hpp"

#include <cstring>

#ifdef __linux__
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/resource.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <string_view>
#endif

namespace fdiam::obs {

#ifdef __linux__

namespace {

struct EventSpec {
  std::uint32_t type;
  std::uint64_t config;
};

constexpr std::array<EventSpec, kHwEventCount> kEventSpecs = {{
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_REFERENCES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_STALLED_CYCLES_FRONTEND},
    {PERF_TYPE_SOFTWARE, PERF_COUNT_SW_TASK_CLOCK},
    {PERF_TYPE_SOFTWARE, PERF_COUNT_SW_PAGE_FAULTS},
    {PERF_TYPE_SOFTWARE, PERF_COUNT_SW_CONTEXT_SWITCHES},
}};

int open_event(const EventSpec& spec) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof attr);
  attr.type = spec.type;
  attr.size = sizeof attr;
  attr.config = spec.config;
  attr.disabled = 1;
  attr.exclude_kernel = 1;  // works at perf_event_paranoid <= 2
  attr.exclude_hv = 1;
  attr.inherit = 1;  // count OpenMP workers spawned after open
  attr.read_format =
      PERF_FORMAT_TOTAL_TIME_ENABLED | PERF_FORMAT_TOTAL_TIME_RUNNING;
  // pid=0, cpu=-1: this thread (and, via inherit, its descendants) on
  // any CPU. Self-monitoring needs no privileges on most kernels.
  return static_cast<int>(
      syscall(SYS_perf_event_open, &attr, 0, -1, -1, 0));
}

}  // namespace

PerfSession::PerfSession() {
  fds_.fill(-1);
  for (std::size_t i = 0; i < kHwEventCount; ++i) {
    const int fd = open_event(kEventSpecs[i]);
    if (fd >= 0) {
      fds_[i] = fd;
      ++open_count_;
    } else if (reason_.empty()) {
      reason_ = "perf_event_open(";
      reason_ += hw_event_name(static_cast<HwEvent>(i));
      reason_ += "): ";
      reason_ += std::strerror(errno);
    }
  }
}

PerfSession::~PerfSession() {
  for (const int fd : fds_) {
    if (fd >= 0) close(fd);
  }
}

void PerfSession::start() {
  for (const int fd : fds_) {
    if (fd < 0) continue;
    ioctl(fd, PERF_EVENT_IOC_RESET, 0);
    ioctl(fd, PERF_EVENT_IOC_ENABLE, 0);
  }
  multiplex_scale_ = 1.0;
}

void PerfSession::stop() {
  for (const int fd : fds_) {
    if (fd >= 0) ioctl(fd, PERF_EVENT_IOC_DISABLE, 0);
  }
}

HwCounters PerfSession::read() const {
  HwCounters out;
  double worst_scale = 1.0;
  for (std::size_t i = 0; i < kHwEventCount; ++i) {
    if (fds_[i] < 0) continue;
    // PERF_FORMAT_TOTAL_TIME_ENABLED|RUNNING layout.
    struct {
      std::uint64_t value, time_enabled, time_running;
    } sample{};
    if (::read(fds_[i], &sample, sizeof sample) != sizeof sample) continue;
    double v = static_cast<double>(sample.value);
    if (sample.time_running > 0 && sample.time_running < sample.time_enabled) {
      // The kernel multiplexed this counter; extrapolate linearly.
      const double ratio = static_cast<double>(sample.time_running) /
                           static_cast<double>(sample.time_enabled);
      v /= ratio;
      if (ratio < worst_scale) worst_scale = ratio;
    }
    out.set(static_cast<HwEvent>(i), static_cast<std::uint64_t>(v));
  }
  multiplex_scale_ = worst_scale;
  return out;
}

MemWatermark read_mem_watermark() {
  MemWatermark m;
  // /proc/self/status has both the high-water mark (VmHWM) and the
  // current resident set (VmRSS), in kB.
  if (std::FILE* f = std::fopen("/proc/self/status", "r")) {
    char line[256];
    while (std::fgets(line, sizeof line, f)) {
      unsigned long long kb = 0;
      if (std::sscanf(line, "VmHWM: %llu kB", &kb) == 1) {
        m.peak_rss_bytes = kb * 1024;
        m.available = true;
      } else if (std::sscanf(line, "VmRSS: %llu kB", &kb) == 1) {
        m.current_rss_bytes = kb * 1024;
        m.available = true;
      }
    }
    std::fclose(f);
  }
  if (!m.available) {
    // Fallback: getrusage reports the peak (in kB on Linux) but not the
    // current RSS.
    rusage ru{};
    if (getrusage(RUSAGE_SELF, &ru) == 0 && ru.ru_maxrss > 0) {
      m.peak_rss_bytes = static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;
      m.available = true;
    }
  }
  return m;
}

#else  // !__linux__

PerfSession::PerfSession() {
  fds_.fill(-1);
  reason_ = "perf_event_open: unsupported platform";
}
PerfSession::~PerfSession() = default;
void PerfSession::start() {}
void PerfSession::stop() {}
HwCounters PerfSession::read() const { return {}; }

MemWatermark read_mem_watermark() { return {}; }

#endif

}  // namespace fdiam::obs
