#pragma once
// Linux perf_event_open counter sessions.
//
// A PerfSession opens one self-monitoring counter per HwEvent (cycles,
// instructions, cache references/misses, branch misses, stalled cycles,
// plus the task-clock/page-fault/context-switch software events) with
// `inherit` set, so OpenMP worker threads spawned after the session
// opens are counted too. Each event is opened independently: a kernel or
// container that rejects the PMU events (common — VMs often have no PMU,
// and perf_event_paranoid or seccomp can forbid the syscall entirely)
// still yields the software subset, and a total failure degrades to
// available() == false with a human-readable reason(). Nothing in this
// layer ever aborts the run.
//
// Reads carry PERF_FORMAT_TOTAL_TIME_ENABLED/RUNNING so values are
// scaled up when the kernel multiplexed the counters; multiplex_scale()
// exposes the worst-case running/enabled ratio for honesty in reports.
//
// Counting scope: the opening thread and its descendants. Threads that
// already existed (e.g. a warm OpenMP pool from an earlier parallel
// region) are not attributed; serial runs are covered exactly.

#include <array>
#include <string>

#include "obs/perf/hw_counters.hpp"

namespace fdiam::obs {

class PerfSession {
 public:
  /// Opens the event set (disabled). Failures are recorded, not thrown.
  PerfSession();
  ~PerfSession();
  PerfSession(const PerfSession&) = delete;
  PerfSession& operator=(const PerfSession&) = delete;

  /// True when at least one event opened.
  [[nodiscard]] bool available() const { return open_count_ > 0; }

  /// Why the session (or its PMU subset) is degraded: the errno text of
  /// the first failed perf_event_open, e.g. "perf_event_open(cycles):
  /// No such file or directory". Empty when every event opened.
  [[nodiscard]] const std::string& reason() const { return reason_; }

  /// Reset every counter to zero and start counting.
  void start();

  /// Stop counting (counters keep their values for read()).
  void stop();

  /// Read the current (multiplex-scaled) values of every open event.
  /// Cumulative since the last start(); events that failed to open or
  /// whose read failed are invalid in the result.
  [[nodiscard]] HwCounters read() const;

  /// Smallest running/enabled ratio observed by the last read(); 1.0
  /// means no multiplexing happened (or nothing was read).
  [[nodiscard]] double multiplex_scale() const { return multiplex_scale_; }

 private:
  std::array<int, kHwEventCount> fds_;  // -1 = not open
  int open_count_ = 0;
  std::string reason_;
  mutable double multiplex_scale_ = 1.0;
};

/// Read the current process RSS watermark (VmHWM/VmRSS from
/// /proc/self/status, getrusage fallback for the peak).
[[nodiscard]] MemWatermark read_mem_watermark();

}  // namespace fdiam::obs
