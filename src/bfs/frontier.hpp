#pragma once
// Worklists for level-synchronous BFS. A Frontier is a fixed-capacity
// vertex buffer supporting lock-free concurrent append (paper §4.6:
// "Neighbors that have not been visited are atomically added to the second
// worklist").

#include <atomic>
#include <cassert>
#include <cstddef>
#include <span>
#include <vector>

#include "util/types.hpp"

namespace fdiam {

class Frontier {
 public:
  Frontier() = default;
  explicit Frontier(vid_t capacity) : buf_(capacity) {}

  void resize(vid_t capacity) {
    buf_.assign(capacity, 0);
    count_.store(0, std::memory_order_relaxed);
  }

  void clear() { count_.store(0, std::memory_order_relaxed); }

  /// Single-threaded append.
  void push(vid_t v) {
    const auto i = count_.load(std::memory_order_relaxed);
    assert(i < buf_.size());
    buf_[i] = v;
    count_.store(i + 1, std::memory_order_relaxed);
  }

  /// Thread-safe append; safe to mix across OpenMP threads.
  void push_atomic(vid_t v) {
    const auto i = count_.fetch_add(1, std::memory_order_relaxed);
    assert(i < buf_.size());
    buf_[i] = v;
  }

  [[nodiscard]] std::size_t size() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool empty() const { return size() == 0; }

  [[nodiscard]] std::span<const vid_t> view() const {
    return {buf_.data(), size()};
  }
  [[nodiscard]] vid_t operator[](std::size_t i) const { return buf_[i]; }

  friend void swap(Frontier& a, Frontier& b) noexcept {
    a.buf_.swap(b.buf_);
    const auto ac = a.count_.load(std::memory_order_relaxed);
    a.count_.store(b.count_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
    b.count_.store(ac, std::memory_order_relaxed);
  }

 private:
  std::vector<vid_t> buf_;
  std::atomic<std::size_t> count_{0};
};

}  // namespace fdiam
