#pragma once
// Worklists for level-synchronous BFS. A Frontier is a fixed-capacity
// vertex buffer supporting lock-free concurrent append (paper §4.6:
// "Neighbors that have not been visited are atomically added to the second
// worklist").
//
// Concurrent producers should append through a Frontier::Local staging
// buffer (GAP-style sliding queue): pushes accumulate in a per-thread
// chunk and reserve space in the shared buffer in blocks, so the shared
// counter's cache line is contended once per kChunk discoveries instead
// of once per discovery. push_atomic() remains for cold paths where a
// staging object is not worth setting up.

#include <algorithm>
#include <array>
#include <atomic>
#include <cassert>
#include <cstddef>
#include <span>
#include <vector>

#include "util/memory.hpp"
#include "util/types.hpp"

namespace fdiam {

class Frontier {
 public:
  Frontier() = default;
  explicit Frontier(vid_t capacity) : buf_(capacity) { util::place(buf_); }

  void resize(vid_t capacity) {
    buf_.assign(capacity, 0);
    util::place(buf_);
    count_.store(0, std::memory_order_relaxed);
  }

  void clear() { count_.store(0, std::memory_order_relaxed); }

  /// Single-threaded append.
  void push(vid_t v) {
    const auto i = count_.load(std::memory_order_relaxed);
    assert(i < buf_.size());
    buf_[i] = v;
    count_.store(i + 1, std::memory_order_relaxed);
  }

  /// Thread-safe append; safe to mix across OpenMP threads. One shared
  /// fetch_add per call — prefer a Local buffer on hot paths.
  void push_atomic(vid_t v) {
    const auto i = count_.fetch_add(1, std::memory_order_relaxed);
    assert(i < buf_.size());
    buf_[i] = v;
  }

  /// Reserve `k` contiguous slots and return the base index. Thread-safe;
  /// the caller owns [base, base + k) exclusively.
  std::size_t reserve(std::size_t k) {
    const auto base = count_.fetch_add(k, std::memory_order_relaxed);
    assert(base + k <= buf_.size());
    return base;
  }

  /// Per-thread staging buffer for contention-free concurrent appends.
  /// Construct one inside the parallel region (NOT shared across threads)
  /// and let it flush on destruction before the region's closing barrier;
  /// the barrier then publishes the writes to whoever reads the frontier.
  class Local {
   public:
    static constexpr std::size_t kChunk = 1024;  // 4 KiB: fits in L1

    explicit Local(Frontier& frontier) : frontier_(frontier) {}
    ~Local() { flush(); }
    Local(const Local&) = delete;
    Local& operator=(const Local&) = delete;

    void push(vid_t v) {
      if (count_ == kChunk) flush();
      chunk_[count_++] = v;
    }

    void flush() {
      if (count_ == 0) return;
      const std::size_t base = frontier_.reserve(count_);
      std::copy(chunk_.begin(), chunk_.begin() + count_,
                frontier_.buf_.begin() + base);
      count_ = 0;
    }

   private:
    Frontier& frontier_;
    std::size_t count_ = 0;
    std::array<vid_t, kChunk> chunk_;
  };

  [[nodiscard]] std::size_t size() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool empty() const { return size() == 0; }

  [[nodiscard]] std::span<const vid_t> view() const {
    return {buf_.data(), size()};
  }
  [[nodiscard]] vid_t operator[](std::size_t i) const { return buf_[i]; }

  friend void swap(Frontier& a, Frontier& b) noexcept {
    a.buf_.swap(b.buf_);
    const auto ac = a.count_.load(std::memory_order_relaxed);
    a.count_.store(b.count_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
    b.count_.store(ac, std::memory_order_relaxed);
  }

 private:
  std::vector<vid_t> buf_;
  std::atomic<std::size_t> count_{0};
};

}  // namespace fdiam
