// Multi-source BFS: all seeds start at distance 0. The serial reference
// here backs the tests for the incremental elimination-extension step
// (paper §4.5), whose production implementation lives in
// core/eliminate.cpp.

#include "bfs/bfs.hpp"

namespace fdiam {

void multi_source_distances(const Csr& g, std::span<const vid_t> seeds,
                            std::vector<dist_t>& dist) {
  const vid_t n = g.num_vertices();
  dist.assign(n, kUnreached);

  std::vector<vid_t> queue;
  queue.reserve(seeds.size());
  for (const vid_t s : seeds) {
    if (dist[s] == kUnreached) {
      dist[s] = 0;
      queue.push_back(s);
    }
  }
  std::size_t head = 0;
  while (head < queue.size()) {
    const vid_t v = queue[head++];
    const dist_t dv = dist[v];
    for (const vid_t w : g.neighbors(v)) {
      if (dist[w] == kUnreached) {
        dist[w] = dv + 1;
        queue.push_back(w);
      }
    }
  }
}

}  // namespace fdiam
