// Topology-driven bottom-up BFS level (paper Alg. 2 lines 16-23): every
// unvisited vertex scans its own adjacency for a visited neighbor. In a
// level-synchronous BFS any visited neighbor of an unvisited vertex
// necessarily belongs to the deepest completed level, so the plain epoch
// test identifies frontier membership. Newly found vertices are marked
// only after the scan so the visited array stays frozen within the level
// (no atomics needed on it).

#include "bfs/bfs.hpp"

namespace fdiam {

void BfsEngine::step_bottomup(std::vector<dist_t>* dist, dist_t level) {
  next_.clear();
  const auto n = static_cast<std::int64_t>(g_.num_vertices());
  std::uint64_t edges = 0;

  if (config_.parallel) {
#pragma omp parallel for schedule(dynamic, 2048) reduction(+ : edges)
    for (std::int64_t vi = 0; vi < n; ++vi) {
      const auto v = static_cast<vid_t>(vi);
      if (visited_.is_visited(v)) continue;
      for (const vid_t w : g_.neighbors(v)) {
        ++edges;
        if (visited_.is_visited(w)) {
          next_.push_atomic(v);
          break;
        }
      }
    }
  } else {
    for (std::int64_t vi = 0; vi < n; ++vi) {
      const auto v = static_cast<vid_t>(vi);
      if (visited_.is_visited(v)) continue;
      for (const vid_t w : g_.neighbors(v)) {
        ++edges;
        if (visited_.is_visited(w)) {
          next_.push(v);
          break;
        }
      }
    }
  }
  stats_.edges_examined += edges;

  const auto found = static_cast<std::int64_t>(next_.size());
  const auto frontier = next_.view();
  if (config_.parallel) {
#pragma omp parallel for schedule(static)
    for (std::int64_t i = 0; i < found; ++i) {
      const vid_t v = frontier[static_cast<std::size_t>(i)];
      visited_.visit(v);
      if (dist) (*dist)[v] = level;
    }
  } else {
    for (std::int64_t i = 0; i < found; ++i) {
      const vid_t v = frontier[static_cast<std::size_t>(i)];
      visited_.visit(v);
      if (dist) (*dist)[v] = level;
    }
  }
}

}  // namespace fdiam
