// Topology-driven bottom-up BFS level (paper Alg. 2 lines 16-23): every
// unvisited vertex scans its own adjacency for a frontier member. In a
// level-synchronous BFS any visited neighbor of an unvisited vertex
// necessarily belongs to the deepest completed level, so probing the
// frontier bitmap is equivalent to the epoch test — but reads 1 bit per
// probe instead of a 4-byte epoch cell (the step is bandwidth-bound).
//
// The scan is word-parallel: each 64-vertex word of the visited bitmap is
// owned by exactly one thread, so the visited/next words are written with
// plain stores and the next frontier is produced in the same pass that
// discovers it (no push-then-remark double pass, no atomics anywhere).

#include <algorithm>
#include <bit>

#include "bfs/bfs.hpp"
#include "util/parallel.hpp"

namespace fdiam {

vid_t BfsEngine::step_bottomup(std::vector<dist_t>* dist, dist_t level) {
  next_bm_.clear();
  const auto nwords = static_cast<std::int64_t>(visited_bm_.num_words());
  std::uint64_t edges = 0;
  vid_t found_total = 0;

  // Split `parallel` from `for nowait` (instead of the combined
  // parallel-for) so each thread can report its busy span and private
  // edge count to the region scope before the implicit barrier.
  RegionScope region(RegionKind::kBfsBottomUp);
#pragma omp parallel reduction(+ : edges, found_total) if (config_.parallel)
  {
#pragma omp for schedule(dynamic, 32) nowait
    for (std::int64_t wi = 0; wi < nwords; ++wi) {
      const auto w_idx = static_cast<std::size_t>(wi);
      std::uint64_t unvisited =
          ~visited_bm_.word(w_idx) & visited_bm_.valid_mask(w_idx);
      std::uint64_t found = 0;
      while (unvisited != 0) {
        const int bit = std::countr_zero(unvisited);
        unvisited &= unvisited - 1;
        const auto v = static_cast<vid_t>(wi * 64 + bit);
        for (const vid_t w : g_.neighbors(v)) {
          ++edges;
          if (front_bm_.test(w)) {
            found |= 1ULL << bit;
            break;
          }
        }
      }
      if (found != 0) {
        visited_bm_.or_word(w_idx, found);
        next_bm_.set_word(w_idx, found);
        found_total += static_cast<vid_t>(std::popcount(found));
        // This thread owns the whole word, so the epoch cells and distance
        // slots of its vertices are written by exactly one thread.
        std::uint64_t bits = found;
        while (bits != 0) {
          const int bit = std::countr_zero(bits);
          bits &= bits - 1;
          const auto v = static_cast<vid_t>(wi * 64 + bit);
          visited_.visit(v);
          if (dist) (*dist)[v] = level;
        }
      }
    }
    region.thread_done(edges);
  }
  stats_.edges_examined += edges;
  return found_total;
}

void BfsEngine::queue_to_bitmaps(const Frontier& frontier) {
  const vid_t n = g_.num_vertices();
  front_bm_.clear();
  const auto fview = frontier.view();
  const auto fsize = static_cast<std::int64_t>(fview.size());
  // The switch only happens on frontiers above the bottom-up threshold,
  // so both conversion scans amortize against the level they enable.
  const auto nwords = static_cast<std::int64_t>(visited_bm_.num_words());
  // One region for both scans: they touch disjoint data (the frontier
  // bitmap vs. the visited bitmap), so the first loop needs no barrier
  // and threads flow straight into the second — fusing them also halves
  // the fork/join cost the old pair of parallel-for regions paid.
  RegionScope region(RegionKind::kBfsConvert);
#pragma omp parallel if (config_.parallel)
  {
#pragma omp for schedule(static) nowait
    for (std::int64_t i = 0; i < fsize; ++i) {
      front_bm_.set_atomic(fview[static_cast<std::size_t>(i)]);
    }
#pragma omp for schedule(static) nowait
    for (std::int64_t wi = 0; wi < nwords; ++wi) {
      const auto base = static_cast<vid_t>(wi * 64);
      const vid_t limit = std::min<vid_t>(64, n - base);
      std::uint64_t word = 0;
      for (vid_t b = 0; b < limit; ++b) {
        if (visited_.is_visited(base + b)) word |= 1ULL << b;
      }
      visited_bm_.set_word(static_cast<std::size_t>(wi), word);
    }
    region.thread_done(static_cast<std::uint64_t>(fsize + nwords));
  }
}

void BfsEngine::bitmap_to_queue(const Bitmap& bitmap, Frontier& frontier) {
  frontier.clear();
  const auto nwords = static_cast<std::int64_t>(bitmap.num_words());
  if (config_.parallel) {
    RegionScope region(RegionKind::kBfsConvert);
#pragma omp parallel
    {
      Frontier::Local local(frontier);
#pragma omp for schedule(static) nowait
      for (std::int64_t wi = 0; wi < nwords; ++wi) {
        std::uint64_t bits = bitmap.word(static_cast<std::size_t>(wi));
        while (bits != 0) {
          const int bit = std::countr_zero(bits);
          bits &= bits - 1;
          local.push(static_cast<vid_t>(wi * 64 + bit));
        }
      }
      region.thread_done();
    }
  } else {
    for (std::int64_t wi = 0; wi < nwords; ++wi) {
      std::uint64_t bits = bitmap.word(static_cast<std::size_t>(wi));
      while (bits != 0) {
        const int bit = std::countr_zero(bits);
        bits &= bits - 1;
        frontier.push(static_cast<vid_t>(wi * 64 + bit));
      }
    }
  }
}

}  // namespace fdiam
