// Self-contained serial BFS used as the reference implementation by the
// tests, the APSP ground truth, and the baselines.

#include "bfs/bfs.hpp"

namespace fdiam {

dist_t bfs_distances_serial(const Csr& g, vid_t source,
                            std::vector<dist_t>& dist) {
  const vid_t n = g.num_vertices();
  dist.assign(n, kUnreached);
  dist[source] = 0;

  std::vector<vid_t> queue;
  queue.reserve(256);
  queue.push_back(source);
  std::size_t head = 0;
  dist_t ecc = 0;
  while (head < queue.size()) {
    const vid_t v = queue[head++];
    const dist_t dv = dist[v];
    ecc = dv;
    for (const vid_t w : g.neighbors(v)) {
      if (dist[w] == kUnreached) {
        dist[w] = dv + 1;
        queue.push_back(w);
      }
    }
  }
  return ecc;
}

}  // namespace fdiam
