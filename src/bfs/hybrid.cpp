// Direction-optimizing BFS driver (paper §4.6 / Alg. 2).
//
// Each level either expands the frontier top-down (data-driven, atomic
// claims, queue worklists) or bottom-up (topology-driven, bitmap
// worklists, no atomics, some wasted work). The bottom-up path is taken
// while the frontier holds more than `bottomup_threshold` (default 10%)
// of the vertices, and the engine switches back to top-down when the
// frontier shrinks below the threshold again. The worklist representation
// follows the direction: queue<->bitmap conversions happen only on
// switches, and each conversion is amortized by the above-threshold level
// that forced it.

#include <algorithm>
#include <cassert>

#include "bfs/bfs.hpp"
#include "util/timer.hpp"

namespace fdiam {

BfsEngine::BfsEngine(const Csr& g, BfsConfig config)
    : g_(g),
      config_(config),
      visited_(g.num_vertices()),
      cur_(g.num_vertices()),
      next_(g.num_vertices()) {
  threshold_count_ = static_cast<std::size_t>(
      static_cast<double>(g.num_vertices()) * config_.bottomup_threshold);
  if (config_.direction_optimizing) {
    front_bm_.resize(g.num_vertices());
    next_bm_.resize(g.num_vertices());
    visited_bm_.resize(g.num_vertices());
  }
}

dist_t BfsEngine::eccentricity(vid_t source) { return run(source, nullptr); }

dist_t BfsEngine::distances(vid_t source, std::vector<dist_t>& dist) {
  dist.assign(g_.num_vertices(), kUnreached);
  return run(source, &dist);
}

dist_t BfsEngine::run(vid_t source, std::vector<dist_t>* dist) {
  assert(source < g_.num_vertices());
  ++stats_.traversals;
  visited_.new_epoch();
  visited_.visit(source);
  if (dist) (*dist)[source] = 0;

  cur_.clear();
  cur_.push(source);
  vid_t cur_count = 1;
  last_visited_ = 1;
  // Which representation currently holds the frontier being expanded:
  // false = cur_ queue, true = front_bm_ bitmap (+ visited_bm_ in sync).
  bool bitmap_mode = false;

  // Hoisted so an unset hook costs nothing inside the loop: no
  // std::function bool test, no clock reads, no edge-counter snapshot
  // per level (profiling adds two clock reads per level when installed).
  const bool profiled = static_cast<bool>(level_hook_);

  dist_t level = 0;
  Timer step_timer;
  while (true) {
    const bool bottom_up =
        config_.direction_optimizing && cur_count > threshold_count_;
    if (bottom_up != bitmap_mode) {
      if (bottom_up) {
        queue_to_bitmaps(cur_);
      } else {
        bitmap_to_queue(front_bm_, cur_);
      }
      bitmap_mode = bottom_up;
    }
    ++level;
    // Per-level profiling (opt-in): every visited vertex belongs to
    // exactly one expanded frontier, so the reported frontier sizes of a
    // traversal sum to last_visited_count().
    std::uint64_t edges_before = 0;
    if (profiled) {
      edges_before = stats_.edges_examined;
      step_timer.reset();
    }
    vid_t next_count;
    if (bottom_up) {
      ++stats_.bottomup_levels;
      next_count = step_bottomup(dist, level);
    } else {
      ++stats_.topdown_levels;
      step_topdown(dist, level);
      next_count = static_cast<vid_t>(next_.size());
    }
    ++stats_.levels;
    if (profiled) {
      level_hook_(BfsLevelProfile{stats_.traversals, level - 1, bottom_up,
                                  cur_count,
                                  stats_.edges_examined - edges_before,
                                  step_timer.millis() * 1e3});
    }
    if (frontier_hist_ != nullptr) {
      frontier_hist_->record(static_cast<double>(cur_count));
    }
    if (next_count == 0) {
      // cur_ still holds the deepest level; materialize it as a queue so
      // last_frontier() keeps its contract when the BFS ended bottom-up.
      if (bitmap_mode) bitmap_to_queue(front_bm_, cur_);
      break;
    }
    last_visited_ += next_count;
    if (bitmap_mode) {
      std::swap(front_bm_, next_bm_);
    } else {
      swap(cur_, next_);
    }
    cur_count = next_count;
  }
  stats_.vertices_visited += last_visited_;
  return level - 1;
}

}  // namespace fdiam
