#pragma once
// Epoch-counter "visited" array (paper §4): instead of clearing a boolean
// per traversal, every traversal bumps a shared counter and a vertex is
// visited iff its cell equals the current counter. Overflow (after 2^32-1
// traversals) triggers a full reset, which the tests exercise.

#include <atomic>
#include <cstdint>
#include <vector>

#include "util/memory.hpp"
#include "util/types.hpp"

namespace fdiam {

class EpochVisited {
 public:
  EpochVisited() = default;
  explicit EpochVisited(vid_t n) : cells_(n, 0) { util::place(cells_); }

  void resize(vid_t n) {
    cells_.assign(n, 0);
    util::place(cells_);
    epoch_ = 0;
  }

  /// Begin a new traversal; all vertices become unvisited.
  void new_epoch() {
    if (++epoch_ == 0) {  // wrapped: every stale cell would look visited
      std::fill(cells_.begin(), cells_.end(), 0);
      epoch_ = 1;
    }
  }

  [[nodiscard]] bool is_visited(vid_t v) const { return cells_[v] == epoch_; }

  void visit(vid_t v) { cells_[v] = epoch_; }

  /// Atomically claim v for the current epoch. Returns true iff this call
  /// transitioned it from unvisited to visited (exactly one thread wins).
  bool try_visit(vid_t v) {
    std::atomic_ref<std::uint32_t> cell(cells_[v]);
    std::uint32_t seen = cell.load(std::memory_order_relaxed);
    if (seen == epoch_) return false;
    return cell.compare_exchange_strong(seen, epoch_,
                                        std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint32_t epoch() const { return epoch_; }
  [[nodiscard]] vid_t size() const { return static_cast<vid_t>(cells_.size()); }

  /// Test hook: jump the epoch counter (e.g. to UINT32_MAX to exercise the
  /// wraparound reset without 2^32 traversals).
  void force_epoch_for_testing(std::uint32_t epoch) { epoch_ = epoch; }

 private:
  std::vector<std::uint32_t> cells_;
  std::uint32_t epoch_ = 0;
};

}  // namespace fdiam
