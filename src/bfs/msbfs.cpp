#include "bfs/msbfs.hpp"

#include <algorithm>
#include <cassert>

namespace fdiam {

namespace {

/// One bit-parallel sweep over <= 64 sources. `ecc_out[i]` receives the
/// eccentricity of `sources[i]`.
void msbfs_batch(const Csr& g, std::span<const vid_t> sources,
                 std::span<dist_t> ecc_out, std::vector<std::uint64_t>& seen,
                 std::vector<std::uint64_t>& frontier,
                 std::vector<std::uint64_t>& next) {
  assert(sources.size() <= 64);
  const vid_t n = g.num_vertices();
  std::fill(seen.begin(), seen.end(), 0);
  std::fill(frontier.begin(), frontier.end(), 0);

  for (std::size_t i = 0; i < sources.size(); ++i) {
    const std::uint64_t bit = 1ULL << i;
    seen[sources[i]] |= bit;
    frontier[sources[i]] |= bit;
    ecc_out[i] = 0;
  }

  dist_t level = 0;
  bool active = true;
  while (active) {
    ++level;
    active = false;
    std::fill(next.begin(), next.end(), 0);
    // Pull formulation: a vertex gathers the frontier bits of its
    // neighbors. Touches every vertex once per level but needs no
    // atomics and vectorizes well.
    for (vid_t v = 0; v < n; ++v) {
      std::uint64_t gathered = 0;
      for (const vid_t w : g.neighbors(v)) gathered |= frontier[w];
      gathered &= ~seen[v];
      if (gathered != 0) {
        next[v] = gathered;
        seen[v] |= gathered;
        active = true;
      }
    }
    if (!active) break;
    // A source whose BFS discovered anything at this level has
    // eccentricity >= level.
    std::uint64_t discovered = 0;
    for (vid_t v = 0; v < n; ++v) discovered |= next[v];
    for (std::size_t i = 0; i < sources.size(); ++i) {
      if (discovered & (1ULL << i)) ecc_out[i] = level;
    }
    frontier.swap(next);
  }
}

}  // namespace

std::vector<dist_t> msbfs_eccentricities(const Csr& g,
                                         std::span<const vid_t> sources) {
  const vid_t n = g.num_vertices();
  std::vector<dist_t> ecc(sources.size(), 0);
  std::vector<std::uint64_t> seen(n), frontier(n), next(n);
  for (std::size_t base = 0; base < sources.size(); base += 64) {
    const std::size_t count = std::min<std::size_t>(64, sources.size() - base);
    msbfs_batch(g, sources.subspan(base, count),
                std::span<dist_t>(ecc).subspan(base, count), seen, frontier,
                next);
  }
  return ecc;
}

std::vector<dist_t> msbfs_all_eccentricities(const Csr& g) {
  const vid_t n = g.num_vertices();
  std::vector<dist_t> ecc(n, 0);
  const vid_t batches = (n + 63) / 64;

#pragma omp parallel
  {
    std::vector<std::uint64_t> seen(n), frontier(n), next(n);
    std::vector<vid_t> sources;
#pragma omp for schedule(dynamic, 1)
    for (std::int64_t b = 0; b < static_cast<std::int64_t>(batches); ++b) {
      const vid_t base = static_cast<vid_t>(b) * 64;
      const vid_t count = std::min<vid_t>(64, n - base);
      sources.resize(count);
      for (vid_t i = 0; i < count; ++i) sources[i] = base + i;
      msbfs_batch(g, sources,
                  std::span<dist_t>(ecc).subspan(base, count), seen,
                  frontier, next);
    }
  }
  return ecc;
}

MsbfsDiameter msbfs_diameter(const Csr& g) {
  MsbfsDiameter result;
  const vid_t n = g.num_vertices();
  if (n == 0) return result;
  const std::vector<dist_t> ecc = msbfs_all_eccentricities(g);
  result.diameter = *std::max_element(ecc.begin(), ecc.end());
  result.sweeps = (n + 63) / 64;

  // Connectivity check: one ordinary BFS-reach count from vertex 0 would
  // do, but we already know each vertex's component implicitly is not
  // tracked here — use the visited mask trick on a single batch instead.
  std::vector<std::uint64_t> seen(n), frontier(n), next(n);
  std::vector<dist_t> scratch(1);
  const vid_t probe[1] = {0};
  msbfs_batch(g, probe, scratch, seen, frontier, next);
  vid_t reached = 0;
  for (vid_t v = 0; v < n; ++v) reached += (seen[v] & 1ULL) != 0;
  result.connected = reached == n;
  return result;
}

}  // namespace fdiam
