#include "bfs/msbfs.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <stdexcept>
#include <string>

#include "bfs/frontier.hpp"
#include "util/parallel.hpp"

namespace fdiam {

namespace {

/// Per-batch scratch. `seen`/`frontier`/`next` are full-vertex bit-mask
/// arrays; the active lists are what makes the sweep frontier-
/// proportional. Between batches only `seen` needs re-zeroing: the level
/// loop restores `frontier` and `next` to all-zero as it retires levels.
struct MsbfsScratch {
  std::vector<std::uint64_t> seen, frontier, next;
  Frontier cur_active, next_active;

  explicit MsbfsScratch(vid_t n)
      : seen(n), frontier(n), next(n), cur_active(n), next_active(n) {}

  void reset() {
    std::fill(seen.begin(), seen.end(), 0);
    cur_active.clear();
    next_active.clear();
  }
};

/// One point-to-point distance to resolve during a sweep: when
/// `source`'s bit first reaches `target`, the discovery level is stored
/// through `out` (pre-initialized to -1 = not yet reached).
struct BatchTarget {
  std::uint32_t source = 0;  ///< bit index within this batch
  vid_t target = 0;
  dist_t* out = nullptr;
};

/// One bit-parallel sweep over <= 64 sources. `ecc_out[i]` receives the
/// eccentricity of `sources[i]`; each entry of `targets` is resolved at
/// the level its source bit discovers the target vertex (one mask test
/// per unresolved target per level — free for the ecc-only callers that
/// pass no targets).
void msbfs_batch(const Csr& g, std::span<const vid_t> sources,
                 std::span<dist_t> ecc_out, MsbfsScratch& s, bool parallel,
                 std::span<const BatchTarget> targets = {}) {
  assert(sources.size() <= 64);
  s.reset();

  for (std::size_t i = 0; i < sources.size(); ++i) {
    const std::uint64_t bit = 1ULL << i;
    if (s.seen[sources[i]] == 0) s.cur_active.push(sources[i]);
    s.seen[sources[i]] |= bit;
    s.frontier[sources[i]] |= bit;
    ecc_out[i] = 0;
  }
  // Level-0 resolution: a target that IS its source (or shares it with
  // another seeded source) is at distance 0.
  const auto resolve_targets = [&](dist_t level) {
    for (const BatchTarget& t : targets) {
      if (*t.out < 0 && ((s.seen[t.target] >> t.source) & 1ULL) != 0) {
        *t.out = level;
      }
    }
  };
  resolve_targets(0);

  dist_t level = 0;
  while (!s.cur_active.empty()) {
    ++level;
    s.next_active.clear();
    // Push formulation over the active list: a frontier vertex scatters
    // its bits to its neighbors. `discovered` accumulates every bit that
    // reached a new vertex this level, folded into the expansion itself
    // (no post-pass over the vertex array).
    std::uint64_t discovered = 0;
    const auto active = s.cur_active.view();
    const auto asize = static_cast<std::int64_t>(active.size());

    if (parallel) {
      // Self-disables when already inside a parallel region (the
      // all-eccentricities driver runs serial batches under its own
      // region, which is the one that gets recorded).
      RegionScope region(RegionKind::kMsbfs);
#pragma omp parallel reduction(| : discovered)
      {
        Frontier::Local local(s.next_active);
        std::uint64_t edges = 0;
#pragma omp for schedule(dynamic, 64) nowait
        for (std::int64_t i = 0; i < asize; ++i) {
          const vid_t v = active[static_cast<std::size_t>(i)];
          const std::uint64_t bits = s.frontier[v];
          edges += g.neighbors(v).size();
          for (const vid_t w : g.neighbors(v)) {
            // Relaxed pre-check skips settled neighbors without an RMW.
            std::atomic_ref<std::uint64_t> seen_w(s.seen[w]);
            const std::uint64_t cand =
                bits & ~seen_w.load(std::memory_order_relaxed);
            if (cand == 0) continue;
            const std::uint64_t fresh =
                cand & ~seen_w.fetch_or(cand, std::memory_order_relaxed);
            if (fresh == 0) continue;
            std::atomic_ref<std::uint64_t> next_w(s.next[w]);
            if (next_w.fetch_or(fresh, std::memory_order_relaxed) == 0) {
              local.push(w);  // first toucher enlists w exactly once
            }
            discovered |= fresh;
          }
        }
        region.thread_done(edges);
      }
    } else {
      for (std::int64_t i = 0; i < asize; ++i) {
        const vid_t v = active[static_cast<std::size_t>(i)];
        const std::uint64_t bits = s.frontier[v];
        for (const vid_t w : g.neighbors(v)) {
          const std::uint64_t fresh = bits & ~s.seen[w];
          if (fresh == 0) continue;
          s.seen[w] |= fresh;
          if (s.next[w] == 0) s.next_active.push(w);
          s.next[w] |= fresh;
          discovered |= fresh;
        }
      }
    }

    // A source whose BFS discovered anything at this level has
    // eccentricity >= level; a source absent from `discovered` has
    // terminated and contributes no further work (its frontier is empty).
    for (std::size_t i = 0; i < sources.size(); ++i) {
      if (discovered & (1ULL << i)) ecc_out[i] = level;
    }
    if (!targets.empty()) resolve_targets(level);

    // Retire the expanded level and promote the next one, touching only
    // the two active lists (this is also what returns frontier/next to
    // all-zero by the time the batch ends).
    for (const vid_t v : active) s.frontier[v] = 0;
    for (const vid_t w : s.next_active.view()) {
      s.frontier[w] = s.next[w];
      s.next[w] = 0;
    }
    swap(s.cur_active, s.next_active);
  }
}

}  // namespace

std::vector<dist_t> msbfs_eccentricities(const Csr& g,
                                         std::span<const vid_t> sources,
                                         bool parallel) {
  std::vector<dist_t> ecc(sources.size(), 0);
  MsbfsScratch scratch(g.num_vertices());
  for (std::size_t base = 0; base < sources.size(); base += 64) {
    const std::size_t count = std::min<std::size_t>(64, sources.size() - base);
    msbfs_batch(g, sources.subspan(base, count),
                std::span<dist_t>(ecc).subspan(base, count), scratch,
                parallel);
  }
  return ecc;
}

MsbfsQueryResult msbfs_point_queries(const Csr& g,
                                     std::span<const vid_t> sources,
                                     std::span<const MsbfsTarget> targets,
                                     bool parallel) {
  MsbfsQueryResult result;
  result.ecc.assign(sources.size(), 0);
  result.dist.assign(targets.size(), -1);
  for (const MsbfsTarget& t : targets) {
    if (t.source >= sources.size()) {
      throw std::out_of_range("msbfs_point_queries: target source index " +
                              std::to_string(t.source) + " >= batch size " +
                              std::to_string(sources.size()));
    }
  }
  MsbfsScratch scratch(g.num_vertices());
  std::vector<BatchTarget> batch_targets;
  for (std::size_t base = 0; base < sources.size(); base += 64) {
    const std::size_t count = std::min<std::size_t>(64, sources.size() - base);
    batch_targets.clear();
    for (std::size_t j = 0; j < targets.size(); ++j) {
      const MsbfsTarget& t = targets[j];
      if (t.source >= base && t.source < base + count) {
        batch_targets.push_back(
            {static_cast<std::uint32_t>(t.source - base), t.target,
             &result.dist[j]});
      }
    }
    msbfs_batch(g, sources.subspan(base, count),
                std::span<dist_t>(result.ecc).subspan(base, count), scratch,
                parallel, batch_targets);
  }
  return result;
}

std::vector<dist_t> msbfs_all_eccentricities(const Csr& g) {
  const vid_t n = g.num_vertices();
  std::vector<dist_t> ecc(n, 0);
  const vid_t batches = (n + 63) / 64;

  RegionScope region(RegionKind::kMsbfs);
#pragma omp parallel
  {
    MsbfsScratch scratch(n);
    std::vector<vid_t> sources;
#pragma omp for schedule(dynamic, 1) nowait
    for (std::int64_t b = 0; b < static_cast<std::int64_t>(batches); ++b) {
      const vid_t base = static_cast<vid_t>(b) * 64;
      const vid_t count = std::min<vid_t>(64, n - base);
      sources.resize(count);
      for (vid_t i = 0; i < count; ++i) sources[i] = base + i;
      msbfs_batch(g, sources, std::span<dist_t>(ecc).subspan(base, count),
                  scratch, /*parallel=*/false);
    }
    region.thread_done();
  }
  return ecc;
}

MsbfsDiameter msbfs_diameter(const Csr& g) {
  MsbfsDiameter result;
  const vid_t n = g.num_vertices();
  if (n == 0) return result;
  const std::vector<dist_t> ecc = msbfs_all_eccentricities(g);
  result.diameter = *std::max_element(ecc.begin(), ecc.end());
  result.sweeps = (n + 63) / 64;

  // Connectivity check: run a single-source batch and count how many
  // vertices its `seen` mask reached.
  MsbfsScratch scratch(n);
  std::vector<dist_t> probe_ecc(1);
  const vid_t probe[1] = {0};
  msbfs_batch(g, probe, probe_ecc, scratch, /*parallel=*/false);
  vid_t reached = 0;
  for (vid_t v = 0; v < n; ++v) reached += (scratch.seen[v] & 1ULL) != 0;
  result.connected = reached == n;
  return result;
}

}  // namespace fdiam
