// Bitmap is header-only; see visited.cpp for why this file exists.
#include "bfs/bitmap.hpp"
