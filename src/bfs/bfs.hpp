#pragma once
// Breadth-first-search engines.
//
// Every eccentricity computation in F-Diam and the baselines is a
// level-synchronous BFS (paper §4.6). The reusable BfsEngine owns the
// epoch-counter visited array and the two swap worklists, supports serial
// and OpenMP-parallel execution, and implements the direction-optimizing
// top-down / bottom-up hybrid of Beamer et al. with the paper's
// 10%-of-|V| switch threshold.

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "bfs/bitmap.hpp"
#include "bfs/frontier.hpp"
#include "bfs/visited.hpp"
#include "graph/csr.hpp"
#include "util/histogram.hpp"
#include "util/types.hpp"

namespace fdiam {

/// Counters accumulated across all traversals run by one engine.
struct BfsStats {
  std::uint64_t traversals = 0;
  std::uint64_t levels = 0;
  std::uint64_t topdown_levels = 0;
  std::uint64_t bottomup_levels = 0;
  std::uint64_t edges_examined = 0;
  std::uint64_t vertices_visited = 0;

  /// Merge counters from another engine (FDiam's candidate-batch mode
  /// sums its per-thread serial engines into one result).
  BfsStats& operator+=(const BfsStats& o) {
    traversals += o.traversals;
    levels += o.levels;
    topdown_levels += o.topdown_levels;
    bottomup_levels += o.bottomup_levels;
    edges_examined += o.edges_examined;
    vertices_visited += o.vertices_visited;
    return *this;
  }
};

/// One record per level-synchronous step, delivered to the opt-in
/// profiling hook. `frontier` is the size of the frontier being expanded
/// (so over one traversal the frontier sizes sum to the visited count),
/// `edges` counts adjacency entries examined by this step, and `bottom_up`
/// records which direction the engine chose — the profile is what makes
/// the direction-optimizing switch decisions inspectable.
struct BfsLevelProfile {
  std::uint64_t traversal = 0;  ///< 1-based index over the engine's lifetime
  dist_t depth = 0;             ///< depth of the expanded frontier (0 = source)
  bool bottom_up = false;
  vid_t frontier = 0;
  std::uint64_t edges = 0;
  double micros = 0.0;          ///< wall-clock of this step
};

/// Per-level profiling sink. Installing one adds two clock reads per
/// level; the default (empty) hook costs a single branch.
using BfsLevelHook = std::function<void(const BfsLevelProfile&)>;

/// Execution policy for a BfsEngine.
struct BfsConfig {
  bool parallel = true;              ///< use OpenMP inside each level
  bool direction_optimizing = true;  ///< enable the bottom-up fallback
  double bottomup_threshold = 0.1;   ///< frontier/|V| ratio that triggers it
};

class BfsEngine {
 public:
  explicit BfsEngine(const Csr& g, BfsConfig config = {});

  /// Eccentricity of `source` within its connected component: the number
  /// of BFS levels minus one (paper Alg. 2).
  dist_t eccentricity(vid_t source);

  /// Like eccentricity(), but also records the level of every reached
  /// vertex into `dist` (unreached vertices get kUnreached).
  dist_t distances(vid_t source, std::vector<dist_t>& dist);

  /// Vertices at the deepest level of the most recent traversal. The
  /// 2-sweep picks its periphery vertex from here (paper Alg. 1 line 2).
  [[nodiscard]] std::span<const vid_t> last_frontier() const {
    return cur_.view();
  }

  /// Vertices reached by the most recent traversal (incl. the source).
  [[nodiscard]] vid_t last_visited_count() const { return last_visited_; }

  [[nodiscard]] const BfsStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

  /// Install (or clear, with an empty function) the per-level profiler.
  void set_level_hook(BfsLevelHook hook) { level_hook_ = std::move(hook); }

  /// Install (or clear, with nullptr) a frontier-size distribution sink:
  /// every expanded level records its frontier size. Histogram::record is
  /// lock-free, so the candidate-batch per-thread engines may share one
  /// histogram. Not owned; one relaxed branch per level when unset.
  void set_frontier_histogram(Histogram* h) { frontier_hist_ = h; }

  [[nodiscard]] const BfsConfig& config() const { return config_; }
  [[nodiscard]] const Csr& graph() const { return g_; }

 private:
  // One top-down level expansion; returns the next frontier in next_.
  void step_topdown(std::vector<dist_t>* dist, dist_t level);
  // One bottom-up level expansion over the frontier/visited bitmaps:
  // expands front_bm_ into next_bm_, keeps visited_bm_ and the epoch
  // array in sync, and returns the number of newly discovered vertices.
  vid_t step_bottomup(std::vector<dist_t>* dist, dist_t level);
  // Direction-switch conversions (paper §4.6 keeps one worklist format;
  // the bitmap representation exists only while running bottom-up).
  void queue_to_bitmaps(const Frontier& frontier);
  void bitmap_to_queue(const Bitmap& bitmap, Frontier& frontier);
  dist_t run(vid_t source, std::vector<dist_t>* dist);

  const Csr& g_;
  BfsConfig config_;
  EpochVisited visited_;
  Frontier cur_, next_;
  // Bottom-up worklists: 1 bit per vertex instead of a queue entry, so
  // the all-vertices scan reads 1 bit per probe. Valid only while the
  // engine is in bitmap mode (between a top-down->bottom-up switch and
  // the matching switch back).
  Bitmap front_bm_, next_bm_, visited_bm_;
  vid_t last_visited_ = 0;
  std::size_t threshold_count_ = 0;
  BfsStats stats_;
  BfsLevelHook level_hook_;
  Histogram* frontier_hist_ = nullptr;
};

/// Self-contained serial BFS filling a caller-provided distance vector
/// (resized and reset internally). Returns the eccentricity of `source`.
/// Used by tests, the APSP ground truth, and the baselines.
dist_t bfs_distances_serial(const Csr& g, vid_t source,
                            std::vector<dist_t>& dist);

/// Multi-source serial BFS: every seed starts at distance 0. Used by tests
/// to validate the multi-source elimination-extension logic.
void multi_source_distances(const Csr& g, std::span<const vid_t> seeds,
                            std::vector<dist_t>& dist);

}  // namespace fdiam
