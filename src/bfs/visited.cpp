// EpochVisited is header-only; this translation unit exists so the target
// has a home for future out-of-line definitions and keeps the build list
// uniform (one .cpp per module).
#include "bfs/visited.hpp"
