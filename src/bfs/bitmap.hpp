#pragma once
// Fixed-size bitmap over vertex ids, used by the bottom-up BFS step and
// the direction-switch conversions. A frontier/visited probe reads one
// bit instead of a 4-byte epoch cell, cutting the bottom-up scan's memory
// traffic by 32x (the step is bandwidth-bound; paper §6.2).
//
// Concurrency contract: set_atomic() may race with concurrent set_atomic
// and test() calls. The word-granular accessors (word / set_word /
// or_word) are plain loads/stores — callers must partition words across
// threads (the bottom-up step assigns each 64-vertex word to exactly one
// thread, which is what makes it atomics-free).

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/memory.hpp"
#include "util/types.hpp"

namespace fdiam {

class Bitmap {
 public:
  Bitmap() = default;
  explicit Bitmap(vid_t bits) { resize(bits); }

  void resize(vid_t bits) {
    bits_ = bits;
    words_.assign((static_cast<std::size_t>(bits) + 63) / 64, 0);
    util::place(words_);
  }

  void clear() { std::fill(words_.begin(), words_.end(), 0); }

  [[nodiscard]] vid_t size() const { return bits_; }
  [[nodiscard]] std::size_t num_words() const { return words_.size(); }

  void set(vid_t i) { words_[i >> 6] |= 1ULL << (i & 63); }

  /// Thread-safe set; safe to mix across OpenMP threads.
  void set_atomic(vid_t i) {
    std::atomic_ref<std::uint64_t> w(words_[i >> 6]);
    w.fetch_or(1ULL << (i & 63), std::memory_order_relaxed);
  }

  [[nodiscard]] bool test(vid_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }

  [[nodiscard]] std::uint64_t word(std::size_t wi) const { return words_[wi]; }
  void set_word(std::size_t wi, std::uint64_t value) { words_[wi] = value; }
  void or_word(std::size_t wi, std::uint64_t value) { words_[wi] |= value; }

  /// Mask of the bits of word `wi` that correspond to in-range ids; all
  /// ones except (possibly) for the final word.
  [[nodiscard]] std::uint64_t valid_mask(std::size_t wi) const {
    if (wi + 1 < words_.size() || bits_ % 64 == 0) return ~0ULL;
    return (1ULL << (bits_ % 64)) - 1;
  }

  [[nodiscard]] vid_t count() const {
    std::uint64_t total = 0;
    for (const std::uint64_t w : words_) total += std::popcount(w);
    return static_cast<vid_t>(total);
  }

 private:
  std::vector<std::uint64_t> words_;
  vid_t bits_ = 0;
};

}  // namespace fdiam
