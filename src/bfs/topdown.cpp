// Data-driven top-down BFS level (paper Alg. 2 lines 10-14): scan the
// adjacency of every frontier vertex and atomically claim unvisited
// neighbors for the next frontier. Discovered vertices are staged in
// per-thread Frontier::Local chunks, so the shared frontier counter is
// touched once per chunk instead of once per vertex.

#include "bfs/bfs.hpp"
#include "util/parallel.hpp"

namespace fdiam {

void BfsEngine::step_topdown(std::vector<dist_t>* dist, dist_t level) {
  next_.clear();
  const auto frontier = cur_.view();
  const auto fsize = static_cast<std::int64_t>(frontier.size());
  std::uint64_t edges = 0;

  if (config_.parallel) {
    RegionScope region(RegionKind::kBfsTopDown);
#pragma omp parallel reduction(+ : edges)
    {
      Frontier::Local local(next_);
#pragma omp for schedule(dynamic, 64) nowait
      for (std::int64_t i = 0; i < fsize; ++i) {
        const vid_t v = frontier[static_cast<std::size_t>(i)];
        const auto adj = g_.neighbors(v);
        edges += adj.size();
        for (const vid_t w : adj) {
          if (visited_.try_visit(w)) {
            if (dist) (*dist)[w] = level;
            local.push(w);
          }
        }
      }
      // Reads this thread's private reduction copy of `edges`; must
      // precede `local`'s flush so staging cost counts as barrier wait.
      region.thread_done(edges);
      // local flushes on scope exit, before the region's closing barrier.
    }
  } else {
    for (std::int64_t i = 0; i < fsize; ++i) {
      const vid_t v = frontier[static_cast<std::size_t>(i)];
      const auto adj = g_.neighbors(v);
      edges += adj.size();
      for (const vid_t w : adj) {
        if (!visited_.is_visited(w)) {
          visited_.visit(w);
          if (dist) (*dist)[w] = level;
          next_.push(w);
        }
      }
    }
  }
  stats_.edges_examined += edges;
}

}  // namespace fdiam
