#pragma once
// Bit-parallel multi-source BFS (MS-BFS, Then et al., VLDB 2014 flavor).
//
// Runs up to 64 independent BFS traversals simultaneously by packing one
// bit per source into a machine word: a level expansion ORs neighbor
// masks instead of walking each traversal separately, so the graph is
// touched once per *level* instead of once per *source and level*. For
// eccentricity-only workloads (this library's APSP ground truth and the
// all-eccentricity bounding loop) that is a large constant-factor win on
// sparse graphs.
//
// The expansion is an active-list push: only vertices holding frontier
// bits are expanded, so per-level work is proportional to the frontier
// (plus its out-edges) instead of touching every vertex every level, and
// a batch terminates as soon as no traversal in it discovers anything —
// no full-vertex scan is needed to detect that.

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "util/types.hpp"

namespace fdiam {

/// Eccentricities of up to 64 sources per bit-parallel sweep.
/// Result[i] = eccentricity of sources[i] within its component.
/// `parallel` parallelizes inside each batch (OpenMP over the active
/// list) — the right mode for few-batch workloads like the paper's §4.5
/// partial multi-source extension; pass false when the caller already
/// parallelizes across batches.
std::vector<dist_t> msbfs_eccentricities(const Csr& g,
                                         std::span<const vid_t> sources,
                                         bool parallel = true);

/// One point-to-point distance resolved inside a bit-parallel sweep:
/// `source` indexes into the batch's sources span, `target` is a vertex
/// id. The serving layer packs concurrent distance queries into these so
/// one sweep answers them all alongside the eccentricities.
struct MsbfsTarget {
  std::uint32_t source = 0;  ///< index into the sources span
  vid_t target = 0;
};

/// Combined result of one batched query sweep.
struct MsbfsQueryResult {
  /// ecc[i] = eccentricity of sources[i] within its component.
  std::vector<dist_t> ecc;
  /// dist[j] = d(sources[targets[j].source], targets[j].target), or -1
  /// when the target is unreachable from that source.
  std::vector<dist_t> dist;
};

/// Answer up to 64 sources' eccentricities AND any number of
/// point-to-point distance queries over those sources in bit-parallel
/// sweeps (ceil(sources/64) graph traversals total). A target is
/// resolved at the level its source's bit first reaches it, so the
/// distance queries cost one mask test per pending query per level on
/// top of the plain eccentricity sweep. Targets whose `source` index is
/// out of range throw std::out_of_range.
MsbfsQueryResult msbfs_point_queries(const Csr& g,
                                     std::span<const vid_t> sources,
                                     std::span<const MsbfsTarget> targets,
                                     bool parallel = true);

/// Eccentricity of EVERY vertex via ceil(n/64) bit-parallel sweeps,
/// parallelized across batches with OpenMP (each batch serial inside).
/// Exact replacement for the one-BFS-per-vertex APSP loop.
std::vector<dist_t> msbfs_all_eccentricities(const Csr& g);

/// Exact diameter via msbfs_all_eccentricities: the fast exhaustive
/// baseline (still O(nm), but with a ~64x smaller constant than apsp).
struct MsbfsDiameter {
  dist_t diameter = 0;
  bool connected = true;
  std::uint64_t sweeps = 0;  ///< bit-parallel batches run
};
MsbfsDiameter msbfs_diameter(const Csr& g);

}  // namespace fdiam
