#pragma once
// Bit-parallel multi-source BFS (MS-BFS, Then et al., VLDB 2014 flavor).
//
// Runs up to 64 independent BFS traversals simultaneously by packing one
// bit per source into a machine word: a level expansion ORs neighbor
// masks instead of walking each traversal separately, so the graph is
// touched once per *level* instead of once per *source and level*. For
// eccentricity-only workloads (this library's APSP ground truth and the
// all-eccentricity bounding loop) that is a large constant-factor win on
// sparse graphs.

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "util/types.hpp"

namespace fdiam {

/// Eccentricities of up to 64 sources in one bit-parallel sweep.
/// Result[i] = eccentricity of sources[i] within its component.
std::vector<dist_t> msbfs_eccentricities(const Csr& g,
                                         std::span<const vid_t> sources);

/// Eccentricity of EVERY vertex via ceil(n/64) bit-parallel sweeps,
/// parallelized over batches with OpenMP. Exact replacement for the
/// one-BFS-per-vertex APSP loop.
std::vector<dist_t> msbfs_all_eccentricities(const Csr& g);

/// Exact diameter via msbfs_all_eccentricities: the fast exhaustive
/// baseline (still O(nm), but with a ~64x smaller constant than apsp).
struct MsbfsDiameter {
  dist_t diameter = 0;
  bool connected = true;
  std::uint64_t sweeps = 0;  ///< bit-parallel batches run
};
MsbfsDiameter msbfs_diameter(const Csr& g);

}  // namespace fdiam
