#pragma once
// Synthetic graph generators.
//
// The paper evaluates on 17 public graphs spanning grids, power-law /
// small-world networks, Kronecker/RMAT graphs, Delaunay triangulations,
// and road maps. This module synthesizes structurally matching stand-ins
// for offline use (DESIGN.md "Substitutions"); the generators are also the
// workload factories for the unit/property tests.
//
// Every generator is deterministic in its seed.

#include <cstdint>

#include "graph/csr.hpp"
#include "util/types.hpp"

namespace fdiam {

// --- Meshes ----------------------------------------------------------------

/// 4-neighbor 2-D grid with `width * height` vertices (analogue of
/// 2d-2e20.sym). Diameter = width + height - 2.
Csr make_grid(vid_t width, vid_t height);

/// Delaunay triangulation of `n` uniformly random points in the unit
/// square (analogue of delaunay_n24), built with incremental
/// Bowyer-Watson insertion.
Csr make_delaunay(vid_t n, std::uint64_t seed);

// --- Random graphs -----------------------------------------------------------

/// Erdos-Renyi G(n, m): m distinct undirected edges chosen uniformly.
Csr make_erdos_renyi(vid_t n, eid_t m, std::uint64_t seed);

/// Watts-Strogatz small world: ring lattice with `k` neighbors per side,
/// each edge rewired with probability `beta`.
Csr make_watts_strogatz(vid_t n, vid_t k, double beta, std::uint64_t seed);

/// Random geometric graph: n points in the unit square, edges below
/// distance `radius` (bucket-grid accelerated).
Csr make_random_geometric(vid_t n, double radius, std::uint64_t seed);

// --- Power-law graphs --------------------------------------------------------

/// Barabasi-Albert preferential attachment; each new vertex attaches
/// `m_per_vertex` edges (fractional part applied probabilistically, so
/// e.g. 1.5 alternates between 1 and 2). Analogue of the paper's
/// citation / co-purchase / internet-topology inputs.
Csr make_barabasi_albert(vid_t n, double m_per_vertex, std::uint64_t seed);

/// RMAT recursive-matrix graph over 2^scale vertices with
/// edge_factor * 2^scale undirected edges and quadrant probabilities
/// (a, b, c, 1-a-b-c). Analogue of rmat16/rmat22 and the web graphs.
Csr make_rmat(int scale, double edge_factor, double a, double b, double c,
              std::uint64_t seed);

/// Graph500 Kronecker parameters (a=.57, b=.19, c=.19); analogue of
/// kron_g500-logn21, including its many isolated (degree-0) vertices.
Csr make_kronecker(int scale, double edge_factor, std::uint64_t seed);

// --- Road networks -----------------------------------------------------------

struct RoadOptions {
  vid_t grid_width = 256;       ///< intersections per row of the base grid
  vid_t grid_height = 256;      ///< rows of the base grid
  double keep_extra = 0.55;     ///< fraction of non-tree grid edges kept
  vid_t max_subdivisions = 3;   ///< road polylines: each edge becomes a
                                ///< chain of 1..max_subdivisions segments
  double dead_end_fraction = 0.02;  ///< degree-1 spurs per intersection
};

/// Road-map synthesizer (analogue of USA-road-d.* / europe_osm): sparse,
/// huge diameter, average degree ~2-3, many degree-2 chain vertices and a
/// sprinkling of degree-1 dead ends — the topology Chain Processing and
/// the paper's high-diameter results exercise.
Csr make_road_network(const RoadOptions& opt, std::uint64_t seed);

// --- Deterministic special shapes (tests and corner cases) -------------------

/// Uniform random recursive tree: vertex v attaches to a uniformly random
/// earlier vertex. Trees are the extreme chain-processing workload (every
/// leaf is a chain tip) and the 2-sweep lower bound is provably exact on
/// them.
Csr make_random_tree(vid_t n, std::uint64_t seed);

Csr make_path(vid_t n);                   ///< diameter n-1
Csr make_cycle(vid_t n);                  ///< diameter floor(n/2)
Csr make_star(vid_t leaves);              ///< hub + leaves, diameter 2
Csr make_complete(vid_t n);               ///< diameter 1
Csr make_balanced_tree(vid_t branching, vid_t depth);  ///< diameter 2*depth
/// Spine path of length `spine` with `legs` degree-1 legs per spine vertex.
Csr make_caterpillar(vid_t spine, vid_t legs);
/// Clique of `clique` vertices with a path of `tail` vertices attached.
Csr make_lollipop(vid_t clique, vid_t tail);
/// Two cliques of size `clique` joined by a path of `bridge` vertices.
Csr make_barbell(vid_t clique, vid_t bridge);

/// Disjoint union: relabels `b`'s vertices after `a`'s.
Csr disjoint_union(const Csr& a, const Csr& b);

// --- Periphery (tendril) transform -------------------------------------------

struct TendrilOptions {
  double per_vertex = 0.01;  ///< tendrils added per core vertex
  vid_t max_len = 10;        ///< tendril depth ~ U[1, max_len]
  double branch_prob = 0.2;  ///< extra leaf per open-tendril vertex
  /// Fraction of tendrils that are open paths ending in a degree-1 tip;
  /// the rest are closed "petals" (a cycle of ~2*depth attached at the
  /// anchor, every vertex degree 2). Real SNAP peripheries are almost
  /// entirely min-degree-2 (the paper's Table 4 shows ~0% Chain removal
  /// on most inputs), so closed petals are the faithful default shape.
  double open_fraction = 0.1;
  /// Anchor all tendrils inside a small BFS ball around one random pole
  /// (this fraction of the core) instead of uniformly. Real peripheries
  /// are lumpy: with a one-sided periphery, most core vertices sit far
  /// from the deep fringe and have eccentricities well above diameter/2,
  /// which is what makes Winnow's ball (radius bound/2) categorically
  /// stronger than Eliminate's (radius bound - ecc(v)) on the paper's
  /// small-world inputs. 0 disables clustering (uniform anchors).
  double cluster_fraction = 0.1;
};

/// Attach tree tendrils (paths with occasional leaf branches) to random
/// vertices of a core graph. Real-world power-law graphs owe their large
/// diameters to exactly this core-periphery structure (paper §3): the
/// dense core has a small eccentricity spread, while sparse tendrils push
/// the diameter up to 2-5x the core's. Without them, synthetic RMAT/BA
/// graphs are "too round" — every vertex nearly diametral — which
/// understates Winnow and flatters fringe-based codes.
Csr attach_tendrils(const Csr& core, const TendrilOptions& opt,
                    std::uint64_t seed);

}  // namespace fdiam
