#pragma once
// The benchmark input suite: one synthetic analogue per input graph of the
// paper's Table 1 (see DESIGN.md "Substitutions" for the mapping
// rationale). Sizes default to laptop scale and grow with `scale`:
// scale 1.0 is the quick default; the comment next to each entry states
// the scale at which the analogue reaches the paper's full input size.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "graph/csr.hpp"

namespace fdiam {

struct SuiteEntry {
  std::string name;     ///< the paper's input name
  std::string type;     ///< Table 1 "type" column
  std::string analogue; ///< generator description
  std::function<Csr(double scale, std::uint64_t seed)> build;
};

/// All 17 entries in the paper's Table 1 order.
const std::vector<SuiteEntry>& input_suite();

/// Build one suite input by its paper name; throws on unknown names.
Csr build_suite_input(const std::string& name, double scale = 1.0,
                      std::uint64_t seed = 1);

/// Names only, in Table 1 order.
std::vector<std::string> suite_names();

}  // namespace fdiam
