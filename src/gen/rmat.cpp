#include "gen/generators.hpp"
#include "graph/edge_list.hpp"
#include "util/rng.hpp"

namespace fdiam {

Csr make_rmat(int scale, double edge_factor, double a, double b, double c,
              std::uint64_t seed) {
  Rng rng(seed);
  const vid_t n = vid_t{1} << scale;
  const auto target =
      static_cast<eid_t>(edge_factor * static_cast<double>(n));

  EdgeList edges(n);
  edges.reserve(target);
  for (eid_t e = 0; e < target; ++e) {
    vid_t u = 0, v = 0;
    for (int bit = 0; bit < scale; ++bit) {
      const double r = rng.uniform();
      u <<= 1;
      v <<= 1;
      if (r < a) {
        // top-left quadrant: both bits 0
      } else if (r < a + b) {
        v |= 1;
      } else if (r < a + b + c) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    if (u != v) edges.add(u, v);
  }
  // Duplicates collapse in the CSR builder — exactly like real RMAT/Graph500
  // inputs, where collisions leave many low-id multi-edges and isolated
  // high-id vertices (the paper's kron_g500 input is 26% degree-0).
  return Csr::from_edges(std::move(edges));
}

Csr make_kronecker(int scale, double edge_factor, std::uint64_t seed) {
  return make_rmat(scale, edge_factor, 0.57, 0.19, 0.19, seed);
}

}  // namespace fdiam
