#include "gen/suite.hpp"

#include <cmath>
#include <stdexcept>

#include "gen/generators.hpp"

namespace fdiam {

namespace {

// Scale helpers. Vertex-count scaling multiplies by `scale`; the
// power-of-two RMAT scale grows by log2(scale).
vid_t scaled(double base, double scale) {
  return static_cast<vid_t>(base * scale);
}
int scaled_log2(int base, double scale) {
  return base + static_cast<int>(std::lround(std::log2(scale)));
}

// Power-law cores are wrapped with tree tendrils (attach_tendrils) tuned
// so the analogue's diameter lands near the paper input's Table 1 value:
// real SNAP/web graphs owe their 20-45 diameters to exactly this sparse
// periphery, and without it the core alone is "too round" (diameter ~6).
Csr tendrilled(Csr core, double per_vertex, vid_t max_len,
               std::uint64_t seed) {
  TendrilOptions opt;
  opt.per_vertex = per_vertex;
  opt.max_len = max_len;
  return attach_tendrils(core, opt, seed ^ 0x7e4d7e4dULL);
}

std::vector<SuiteEntry> make_suite() {
  std::vector<SuiteEntry> s;

  // 2d-2e20.sym: 1024x1024 grid, 1,048,576 vertices. Full size at scale 4
  // (the default 512x512 keeps the quick benches fast on one core).
  s.push_back({"2d-2e20.sym", "grid", "2-D grid",
               [](double scale, std::uint64_t) {
                 const vid_t side = static_cast<vid_t>(512.0 * std::sqrt(scale));
                 return make_grid(side, side);
               }});

  // amazon0601: product co-purchases, 403,394 vertices, avg deg 12.
  s.push_back({"amazon0601", "product co-purchases", "Barabasi-Albert m=6",
               [](double scale, std::uint64_t seed) {
                 return tendrilled(make_barabasi_albert(scaled(100000, scale), 6.0, seed),
                                   0.015, 10, seed);
               }});

  // as-skitter: internet topology, 1.7M vertices, avg deg 13, max deg 35k.
  s.push_back({"as-skitter", "Internet topology", "Barabasi-Albert m=6.5",
               [](double scale, std::uint64_t seed) {
                 return tendrilled(
                     make_barabasi_albert(scaled(120000, scale), 6.5, seed + 1),
                     0.012, 13, seed + 1);
               }});

  // citationCiteSeer: 268,495 vertices, avg deg 8.6.
  s.push_back({"citationCiteSeer", "publication citations",
               "Barabasi-Albert m=4.3",
               [](double scale, std::uint64_t seed) {
                 return tendrilled(
                     make_barabasi_albert(scaled(67000, scale), 4.3, seed + 2),
                     0.012, 15, seed + 2);
               }});

  // cit-Patents: 3.8M vertices, avg deg 8.8. Full size at scale ~15.
  s.push_back({"cit-Patents", "patent citations", "Barabasi-Albert m=4.4",
               [](double scale, std::uint64_t seed) {
                 return tendrilled(
                     make_barabasi_albert(scaled(250000, scale), 4.4, seed + 3),
                     0.015, 11, seed + 3);
               }});

  // coPapersDBLP: dense co-authorship, avg deg 56.
  s.push_back({"coPapersDBLP", "publication citations",
               "RMAT dense (a=.45,b=.22,c=.22) ef=28",
               [](double scale, std::uint64_t seed) {
                 return tendrilled(make_rmat(scaled_log2(15, scale), 28.0, 0.45,
                                             0.22, 0.22, seed + 4),
                                   0.01, 11, seed + 4);
               }});

  // delaunay_n24: 16.8M-vertex triangulation. Full size at scale 256.
  s.push_back({"delaunay_n24", "triangulation", "Bowyer-Watson Delaunay",
               [](double scale, std::uint64_t seed) {
                 return make_delaunay(scaled(65536, scale), seed + 5);
               }});

  // europe_osm: 50.9M vertices, avg deg 2.1, diameter 30,102.
  s.push_back({"europe_osm", "road map", "road synthesizer",
               [](double scale, std::uint64_t seed) {
                 RoadOptions opt;
                 opt.grid_width = static_cast<vid_t>(160.0 * std::sqrt(scale));
                 opt.grid_height = opt.grid_width;
                 opt.keep_extra = 0.15;  // sparse: mostly tree-like
                 opt.max_subdivisions = 5;
                 opt.dead_end_fraction = 0.05;
                 return make_road_network(opt, seed + 6);
               }});

  // in-2004: web links, 1.4M vertices, avg deg 19.7.
  s.push_back({"in-2004", "web links", "RMAT (a=.55,b=.20,c=.15) ef=10",
               [](double scale, std::uint64_t seed) {
                 return tendrilled(make_rmat(scaled_log2(17, scale), 10.0, 0.55,
                                             0.20, 0.15, seed + 7),
                                   0.012, 17, seed + 7);
               }});

  // internet: 124,651 vertices, avg deg 3.1 (full size by default).
  s.push_back({"internet", "Internet topology", "Barabasi-Albert m=1.55",
               [](double scale, std::uint64_t seed) {
                 return tendrilled(
                     make_barabasi_albert(scaled(124651, scale), 1.55, seed + 8),
                     0.01, 13, seed + 8);
               }});

  // kron_g500-logn21: scale-21 Kronecker, ef=87, 26% isolated vertices.
  // Full size at scale 64.
  s.push_back({"kron_g500-logn21", "Kronecker", "Graph500 Kronecker ef=43",
               [](double scale, std::uint64_t seed) {
                 return make_kronecker(scaled_log2(15, scale), 43.0, seed + 9);
               }});

  // rmat16.sym: 65,536 vertices, ef=7.4 — full paper size by default.
  s.push_back({"rmat16.sym", "RMAT", "RMAT (a=.45,b=.15,c=.15) ef=7.4",
               [](double scale, std::uint64_t seed) {
                 return tendrilled(make_rmat(scaled_log2(16, scale), 7.4, 0.45,
                                             0.15, 0.15, seed + 10),
                                   0.005, 6, seed + 10);
               }});

  // rmat22.sym: 4.2M vertices, ef=7.8. Full size at scale 16.
  s.push_back({"rmat22.sym", "RMAT", "RMAT (a=.45,b=.15,c=.15) ef=7.8",
               [](double scale, std::uint64_t seed) {
                 return tendrilled(make_rmat(scaled_log2(18, scale), 7.8, 0.45,
                                             0.15, 0.15, seed + 11),
                                   0.006, 8, seed + 11);
               }});

  // soc-LiveJournal1: 4.8M vertices, avg deg 17.7. Full size at scale 16.
  s.push_back({"soc-LiveJournal1", "journal community",
               "RMAT (a=.57,b=.19,c=.19) ef=9",
               [](double scale, std::uint64_t seed) {
                 return tendrilled(make_rmat(scaled_log2(18, scale), 9.0, 0.57,
                                             0.19, 0.19, seed + 12),
                                   0.008, 9, seed + 12);
               }});

  // uk-2002: 18.5M vertices, avg deg 28.3. Full size at scale 64.
  s.push_back({"uk-2002", "web links", "RMAT (a=.55,b=.20,c=.15) ef=14",
               [](double scale, std::uint64_t seed) {
                 return tendrilled(make_rmat(scaled_log2(18, scale), 14.0, 0.55,
                                             0.20, 0.15, seed + 13),
                                   0.012, 18, seed + 13);
               }});

  // USA-road-d.NY: 264,346 vertices, avg deg 2.8, diameter 720 (full
  // size by default).
  s.push_back({"USA-road-d.NY", "road map", "road synthesizer",
               [](double scale, std::uint64_t seed) {
                 RoadOptions opt;
                 opt.grid_width = static_cast<vid_t>(220.0 * std::sqrt(scale));
                 opt.grid_height = opt.grid_width;
                 opt.keep_extra = 0.55;  // Manhattan-ish: dense alternates
                 opt.max_subdivisions = 2;
                 opt.dead_end_fraction = 0.02;
                 return make_road_network(opt, seed + 14);
               }});

  // USA-road-d.USA: 23.9M vertices, diameter 8,440. Full size at scale 24.
  s.push_back({"USA-road-d.USA", "road map", "road synthesizer",
               [](double scale, std::uint64_t seed) {
                 RoadOptions opt;
                 opt.grid_width = static_cast<vid_t>(340.0 * std::sqrt(scale));
                 opt.grid_height = opt.grid_width;
                 opt.keep_extra = 0.35;
                 opt.max_subdivisions = 3;
                 opt.dead_end_fraction = 0.03;
                 return make_road_network(opt, seed + 15);
               }});

  return s;
}

}  // namespace

const std::vector<SuiteEntry>& input_suite() {
  static const std::vector<SuiteEntry> suite = make_suite();
  return suite;
}

Csr build_suite_input(const std::string& name, double scale,
                      std::uint64_t seed) {
  for (const SuiteEntry& entry : input_suite()) {
    if (entry.name == name) return entry.build(scale, seed);
  }
  throw std::invalid_argument("unknown suite input: " + name);
}

std::vector<std::string> suite_names() {
  std::vector<std::string> names;
  names.reserve(input_suite().size());
  for (const SuiteEntry& entry : input_suite()) names.push_back(entry.name);
  return names;
}

}  // namespace fdiam
