#include "gen/generators.hpp"
#include "graph/edge_list.hpp"

namespace fdiam {

Csr make_grid(vid_t width, vid_t height) {
  EdgeList edges(width * height);
  edges.reserve(static_cast<std::size_t>(width) * height * 2);
  auto id = [width](vid_t x, vid_t y) { return y * width + x; };
  for (vid_t y = 0; y < height; ++y) {
    for (vid_t x = 0; x < width; ++x) {
      if (x + 1 < width) edges.add(id(x, y), id(x + 1, y));
      if (y + 1 < height) edges.add(id(x, y), id(x, y + 1));
    }
  }
  return Csr::from_edges(std::move(edges));
}

}  // namespace fdiam
