#include "gen/generators.hpp"
#include "graph/edge_list.hpp"
#include "util/rng.hpp"

namespace fdiam {

Csr make_watts_strogatz(vid_t n, vid_t k, double beta, std::uint64_t seed) {
  Rng rng(seed);
  EdgeList edges(n);
  edges.reserve(static_cast<std::size_t>(n) * k);
  for (vid_t v = 0; v < n; ++v) {
    for (vid_t j = 1; j <= k; ++j) {
      vid_t w = (v + j) % n;
      if (rng.chance(beta)) {
        // Rewire the far endpoint to a uniform random vertex.
        w = static_cast<vid_t>(rng.below(n));
        if (w == v) w = (v + j) % n;  // keep degree; skip self-loop
      }
      edges.add(v, w);
    }
  }
  return Csr::from_edges(std::move(edges));
}

}  // namespace fdiam
