#include "gen/generators.hpp"
#include "graph/edge_list.hpp"
#include "util/rng.hpp"

namespace fdiam {

Csr make_erdos_renyi(vid_t n, eid_t m, std::uint64_t seed) {
  Rng rng(seed);
  EdgeList edges(n);
  edges.reserve(m);
  // Sample with replacement and over-draw slightly; canonicalization in
  // the CSR builder removes the (rare, for sparse m) duplicates.
  const eid_t max_edges = static_cast<eid_t>(n) * (n - 1) / 2;
  const eid_t want = std::min(m, max_edges);
  eid_t attempts = 0;
  const eid_t attempt_cap = want * 4 + 64;
  while (edges.size() < want && attempts < attempt_cap) {
    ++attempts;
    const auto u = static_cast<vid_t>(rng.below(n));
    const auto v = static_cast<vid_t>(rng.below(n));
    if (u != v) edges.add(u, v);
  }
  // Note: `edges` may still contain duplicates counted above; from_edges
  // dedups, so the final count can be slightly below `want` — acceptable
  // for a random-graph workload factory.
  return Csr::from_edges(std::move(edges));
}

}  // namespace fdiam
