// Incremental Bowyer-Watson Delaunay triangulation of uniform random
// points in the unit square — the synthetic stand-in for the paper's
// delaunay_n24 input (a SuiteSparse triangulation with ~6 neighbors per
// vertex and a huge diameter; it is F-Diam's hardest instance, Table 2).
//
// Implementation notes:
//  * Triangles live in a flat slot array with per-edge neighbor links
//    (nb[i] faces vertex v[i]); dead slots go to a free list for reuse.
//  * Point location walks from the most recently created triangle using
//    orientation tests — short walks in practice on random input.
//  * The cavity (triangles whose circumcircle contains the new point) is
//    grown by flood fill with epoch marks (O(cavity) per insertion), its
//    boundary re-triangulated as a fan around the point, and neighbor
//    links stitched through a boundary-start map.
//  * Random input makes exact predicates unnecessary; degenerate
//    insertions are detected (non-simple cavity boundary) and retried
//    with a tiny jitter.

#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "gen/generators.hpp"
#include "graph/edge_list.hpp"
#include "util/rng.hpp"

namespace fdiam {
namespace {

struct Point {
  double x, y;
};

struct Tri {
  vid_t v[3];          // CCW vertices
  std::int32_t nb[3];  // nb[i] = triangle across the edge opposite v[i]
  bool alive = true;
};

constexpr std::int32_t kNoTri = -1;

/// Twice the signed area of (a, b, c); > 0 for CCW order.
double orient(const Point& a, const Point& b, const Point& c) {
  return (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
}

/// > 0 iff p lies strictly inside the circumcircle of CCW triangle (a,b,c).
double in_circle(const Point& a, const Point& b, const Point& c,
                 const Point& p) {
  const double ax = a.x - p.x, ay = a.y - p.y;
  const double bx = b.x - p.x, by = b.y - p.y;
  const double cx = c.x - p.x, cy = c.y - p.y;
  const double a2 = ax * ax + ay * ay;
  const double b2 = bx * bx + by * by;
  const double c2 = cx * cx + cy * cy;
  return ax * (by * c2 - b2 * cy) - ay * (bx * c2 - b2 * cx) +
         a2 * (bx * cy - by * cx);
}

class Triangulation {
 public:
  explicit Triangulation(std::vector<Point> pts) : pts_(std::move(pts)) {
    super_ = static_cast<vid_t>(pts_.size());
    // Super-triangle comfortably containing the unit square; random input
    // keeps interior circumcircles away from these corners.
    pts_.push_back({-60.0, -50.0});
    pts_.push_back({60.0, -50.0});
    pts_.push_back({0.5, 110.0});
    tris_.push_back(Tri{{super_, super_ + 1, super_ + 2},
                        {kNoTri, kNoTri, kNoTri},
                        true});
    mark_.push_back(0);
    recent_ = 0;
  }

  bool insert(vid_t p) {
    const std::int32_t t0 = locate(pts_[p]);
    if (t0 == kNoTri) return false;

    // --- Grow the cavity by flood fill over the in-circle test. ----------
    ++epoch_;
    cavity_.clear();
    stack_.clear();
    stack_.push_back(t0);
    mark_[static_cast<std::size_t>(t0)] = epoch_;
    while (!stack_.empty()) {
      const std::int32_t t = stack_.back();
      stack_.pop_back();
      cavity_.push_back(t);
      for (const std::int32_t nb : tris_[static_cast<std::size_t>(t)].nb) {
        if (nb == kNoTri || mark_[static_cast<std::size_t>(nb)] == epoch_)
          continue;
        const Tri& tri = tris_[static_cast<std::size_t>(nb)];
        if (in_circle(pts_[tri.v[0]], pts_[tri.v[1]], pts_[tri.v[2]],
                      pts_[p]) > 0.0) {
          mark_[static_cast<std::size_t>(nb)] = epoch_;
          stack_.push_back(nb);
        }
      }
    }

    // --- Collect the boundary (CCW as seen from the cavity interior). ----
    boundary_.clear();
    for (const std::int32_t t : cavity_) {
      const Tri& tri = tris_[static_cast<std::size_t>(t)];
      for (int i = 0; i < 3; ++i) {
        const std::int32_t nb = tri.nb[i];
        if (nb != kNoTri && mark_[static_cast<std::size_t>(nb)] == epoch_)
          continue;
        boundary_.push_back({tri.v[(i + 1) % 3], tri.v[(i + 2) % 3], nb});
      }
    }
    if (boundary_.size() < 3) return false;

    // A valid cavity boundary is one simple cycle: every vertex appears
    // exactly once as an edge start. Anything else means the epsilon
    // arithmetic produced a broken cavity — bail before mutating.
    start_of_.clear();
    for (const auto& edge : boundary_) {
      if (!start_of_.emplace(edge.a, std::int32_t{0}).second) return false;
    }
    for (const auto& edge : boundary_) {
      if (start_of_.find(edge.b) == start_of_.end()) return false;
    }

    // --- Commit: tombstone the cavity, fan-triangulate the boundary. -----
    for (const std::int32_t t : cavity_) {
      tris_[static_cast<std::size_t>(t)].alive = false;
      free_.push_back(t);
    }
    new_tris_.clear();
    for (const auto& [a, b, outside] : boundary_) {
      const std::int32_t idx = alloc(Tri{{p, a, b},
                                         {outside, kNoTri, kNoTri},
                                         true});
      new_tris_.push_back(idx);
      start_of_[a] = idx;
      if (outside != kNoTri) {
        // Re-point the outside triangle's link across exactly edge {a,b}.
        Tri& out = tris_[static_cast<std::size_t>(outside)];
        for (int i = 0; i < 3; ++i) {
          const vid_t ea = out.v[(i + 1) % 3], eb = out.v[(i + 2) % 3];
          if ((ea == b && eb == a) || (ea == a && eb == b)) {
            out.nb[i] = idx;
            break;
          }
        }
      }
    }
    // Stitch the fan: triangle (p,a,b) meets start_of_[b] across edge
    // (p,b) (= nb[1], opposite a) and that neighbor reciprocally links
    // back across the same edge via its nb[2] (opposite its third vertex).
    for (const std::int32_t t : new_tris_) {
      Tri& tri = tris_[static_cast<std::size_t>(t)];
      const auto it = start_of_.find(tri.v[2]);
      if (it == start_of_.end()) return false;  // cannot happen on a cycle
      tri.nb[1] = it->second;
      tris_[static_cast<std::size_t>(it->second)].nb[2] = t;
    }
    recent_ = new_tris_.back();
    return true;
  }

  /// Emit all edges between non-super vertices.
  void edges(EdgeList& out) const {
    for (const Tri& t : tris_) {
      if (!t.alive) continue;
      for (int i = 0; i < 3; ++i) {
        const vid_t a = t.v[i], b = t.v[(i + 1) % 3];
        if (a < b && b < super_) out.add(a, b);
      }
    }
  }

  Point& point(vid_t p) { return pts_[p]; }

 private:
  std::int32_t alloc(Tri t) {
    if (!free_.empty()) {
      const std::int32_t idx = free_.back();
      free_.pop_back();
      tris_[static_cast<std::size_t>(idx)] = t;
      return idx;
    }
    tris_.push_back(t);
    mark_.push_back(0);
    return static_cast<std::int32_t>(tris_.size() - 1);
  }

  /// Walk from the most recent triangle toward the point.
  std::int32_t locate(const Point& p) const {
    std::int32_t t = recent_;
    const std::size_t cap = tris_.size() + 64;
    for (std::size_t steps = 0; steps < cap; ++steps) {
      const Tri& tri = tris_[static_cast<std::size_t>(t)];
      bool moved = false;
      for (int i = 0; i < 3; ++i) {
        const Point& a = pts_[tri.v[(i + 1) % 3]];
        const Point& b = pts_[tri.v[(i + 2) % 3]];
        if (orient(a, b, p) < 0.0) {  // p right of edge: leave through it
          if (tri.nb[i] == kNoTri) return kNoTri;
          t = tri.nb[i];
          moved = true;
          break;
        }
      }
      if (!moved) return t;
    }
    return kNoTri;  // walk cycled (degenerate geometry)
  }

  struct BoundaryEdge {
    vid_t a, b;
    std::int32_t outside;
  };

  std::vector<Point> pts_;
  std::vector<Tri> tris_;
  std::vector<std::uint32_t> mark_;  // cavity epoch per triangle slot
  std::vector<std::int32_t> free_;
  vid_t super_ = 0;
  std::int32_t recent_ = kNoTri;
  std::uint32_t epoch_ = 0;

  // Per-insertion scratch.
  std::vector<std::int32_t> cavity_, stack_, new_tris_;
  std::vector<BoundaryEdge> boundary_;
  std::unordered_map<vid_t, std::int32_t> start_of_;
};

}  // namespace

Csr make_delaunay(vid_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> pts(n);
  for (auto& p : pts) p = {rng.uniform(), rng.uniform()};

  Triangulation tri(std::move(pts));
  for (vid_t p = 0; p < n; ++p) {
    // Degenerate insertions (cocircular/collinear within epsilon) are
    // retried with a tiny jitter; random input makes them vanishingly rare.
    for (int attempt = 0; attempt < 8 && !tri.insert(p); ++attempt) {
      tri.point(p).x += (rng.uniform() - 0.5) * 1e-9;
      tri.point(p).y += (rng.uniform() - 0.5) * 1e-9;
    }
  }

  EdgeList edges(n);
  tri.edges(edges);
  edges.ensure_vertices(n);
  return Csr::from_edges(std::move(edges));
}

}  // namespace fdiam
