// Deterministic special-shape generators with known diameters — the
// backbone of the unit and property tests (each shape's exact diameter is
// checked against every algorithm in the library).

#include "gen/generators.hpp"
#include "graph/edge_list.hpp"
#include "util/rng.hpp"

namespace fdiam {

Csr make_random_tree(vid_t n, std::uint64_t seed) {
  Rng rng(seed);
  EdgeList edges;
  edges.ensure_vertices(n);
  for (vid_t v = 1; v < n; ++v) {
    edges.add(v, static_cast<vid_t>(rng.below(v)));
  }
  return Csr::from_edges(std::move(edges));
}

Csr make_path(vid_t n) {
  EdgeList edges(n);
  for (vid_t v = 0; v + 1 < n; ++v) edges.add(v, v + 1);
  edges.ensure_vertices(n);
  return Csr::from_edges(std::move(edges));
}

Csr make_cycle(vid_t n) {
  EdgeList edges(n);
  for (vid_t v = 0; v + 1 < n; ++v) edges.add(v, v + 1);
  if (n >= 3) edges.add(n - 1, 0);
  edges.ensure_vertices(n);
  return Csr::from_edges(std::move(edges));
}

Csr make_star(vid_t leaves) {
  EdgeList edges(leaves + 1);
  for (vid_t v = 1; v <= leaves; ++v) edges.add(0, v);
  return Csr::from_edges(std::move(edges));
}

Csr make_complete(vid_t n) {
  EdgeList edges(n);
  for (vid_t u = 0; u < n; ++u) {
    for (vid_t v = u + 1; v < n; ++v) edges.add(u, v);
  }
  edges.ensure_vertices(n);
  return Csr::from_edges(std::move(edges));
}

Csr make_balanced_tree(vid_t branching, vid_t depth) {
  EdgeList edges;
  // Level-order ids: child c of vertex v is v*branching + 1 + c.
  vid_t level_start = 0, level_size = 1, next_id = 1;
  for (vid_t d = 0; d < depth; ++d) {
    for (vid_t i = 0; i < level_size; ++i) {
      const vid_t parent = level_start + i;
      for (vid_t c = 0; c < branching; ++c) edges.add(parent, next_id++);
    }
    level_start += level_size;
    level_size *= branching;
  }
  edges.ensure_vertices(next_id == 1 ? 1 : next_id);
  return Csr::from_edges(std::move(edges));
}

Csr make_caterpillar(vid_t spine, vid_t legs) {
  EdgeList edges;
  vid_t next_id = spine;
  for (vid_t v = 0; v < spine; ++v) {
    if (v + 1 < spine) edges.add(v, v + 1);
    for (vid_t l = 0; l < legs; ++l) edges.add(v, next_id++);
  }
  edges.ensure_vertices(next_id == spine ? spine : next_id);
  return Csr::from_edges(std::move(edges));
}

Csr make_lollipop(vid_t clique, vid_t tail) {
  EdgeList edges(clique + tail);
  for (vid_t u = 0; u < clique; ++u) {
    for (vid_t v = u + 1; v < clique; ++v) edges.add(u, v);
  }
  vid_t prev = 0;  // attach the tail to clique vertex 0
  for (vid_t t = 0; t < tail; ++t) {
    edges.add(prev, clique + t);
    prev = clique + t;
  }
  edges.ensure_vertices(clique + tail);
  return Csr::from_edges(std::move(edges));
}

Csr make_barbell(vid_t clique, vid_t bridge) {
  EdgeList edges(2 * clique + bridge);
  auto add_clique = [&edges](vid_t base, vid_t size) {
    for (vid_t u = 0; u < size; ++u) {
      for (vid_t v = u + 1; v < size; ++v) edges.add(base + u, base + v);
    }
  };
  add_clique(0, clique);
  add_clique(clique, clique);
  vid_t prev = 0;
  for (vid_t b = 0; b < bridge; ++b) {
    edges.add(prev, 2 * clique + b);
    prev = 2 * clique + b;
  }
  edges.add(prev, clique);  // first vertex of the second clique
  return Csr::from_edges(std::move(edges));
}

Csr attach_tendrils(const Csr& core, const TendrilOptions& opt,
                    std::uint64_t seed) {
  Rng rng(seed);
  const vid_t n = core.num_vertices();
  EdgeList edges(n);
  for (vid_t v = 0; v < n; ++v) {
    for (const vid_t w : core.neighbors(v)) {
      if (v < w) edges.add(v, w);
    }
  }

  // Candidate anchors: either the whole core or (clustered mode) the
  // first cluster_fraction * n vertices of a BFS from a random pole —
  // a contiguous "side" of the graph.
  std::vector<vid_t> anchor_pool;
  if (opt.cluster_fraction > 0.0 && n > 0) {
    const auto want = std::max<vid_t>(
        1, static_cast<vid_t>(opt.cluster_fraction * static_cast<double>(n)));
    vid_t pole = static_cast<vid_t>(rng.below(n));
    for (int tries = 0; tries < 64 && core.degree(pole) == 0; ++tries) {
      pole = static_cast<vid_t>(rng.below(n));
    }
    std::vector<std::uint8_t> seen(n, 0);
    anchor_pool.push_back(pole);
    seen[pole] = 1;
    for (std::size_t head = 0;
         head < anchor_pool.size() && anchor_pool.size() < want; ++head) {
      for (const vid_t w : core.neighbors(anchor_pool[head])) {
        if (!seen[w]) {
          seen[w] = 1;
          anchor_pool.push_back(w);
          if (anchor_pool.size() >= want) break;
        }
      }
    }
  }

  const auto tendrils = static_cast<vid_t>(
      opt.per_vertex * static_cast<double>(n));
  vid_t next = n;
  for (vid_t t = 0; t < tendrils; ++t) {
    // Attach to a random (pool) vertex with at least one edge (tendrils
    // on isolated vertices would just create new components).
    vid_t anchor;
    if (!anchor_pool.empty()) {
      anchor = anchor_pool[static_cast<std::size_t>(
          rng.below(anchor_pool.size()))];
    } else {
      anchor = static_cast<vid_t>(rng.below(n));
      for (int tries = 0; tries < 32 && core.degree(anchor) == 0; ++tries) {
        anchor = static_cast<vid_t>(rng.below(n));
      }
    }
    const auto len = 1 + static_cast<vid_t>(rng.below(opt.max_len));
    if (rng.chance(opt.open_fraction)) {
      // Open tendril: path ending in a degree-1 tip, with occasional
      // side leaves (chain-processing fodder).
      vid_t prev = anchor;
      for (vid_t step = 0; step < len; ++step) {
        edges.add(prev, next);
        prev = next++;
        if (rng.chance(opt.branch_prob)) {
          edges.add(prev, next++);  // side leaf breaks up pure chains
        }
      }
    } else {
      // Closed petal: a cycle of length ~2*len attached at the anchor;
      // its antipode sits `len` steps away and every petal vertex has
      // degree 2 — deep periphery without any degree-1 vertices.
      const vid_t cycle_len = std::max<vid_t>(3, 2 * len);
      vid_t prev = anchor;
      for (vid_t step = 0; step + 1 < cycle_len; ++step) {
        edges.add(prev, next);
        prev = next++;
      }
      edges.add(prev, anchor);
    }
  }
  return Csr::from_edges(std::move(edges));
}

Csr disjoint_union(const Csr& a, const Csr& b) {
  EdgeList edges(a.num_vertices() + b.num_vertices());
  for (vid_t v = 0; v < a.num_vertices(); ++v) {
    for (const vid_t w : a.neighbors(v)) {
      if (v < w) edges.add(v, w);
    }
  }
  const vid_t shift = a.num_vertices();
  for (vid_t v = 0; v < b.num_vertices(); ++v) {
    for (const vid_t w : b.neighbors(v)) {
      if (v < w) edges.add(shift + v, shift + w);
    }
  }
  return Csr::from_edges(std::move(edges));
}

}  // namespace fdiam
