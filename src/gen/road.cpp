// Road-network synthesizer — the stand-in for the paper's USA-road-d.*
// and europe_osm inputs: average degree ~2-3, maximum degree <= ~8, a
// huge diameter, long degree-2 polyline chains, and occasional degree-1
// dead ends (exactly the topology the paper's Chain Processing and
// high-diameter results exercise; see Tables 1 and 4).
//
// Construction: a randomized spanning tree ("maze") over a W x H grid of
// intersections guarantees connectivity and stretches the diameter; a
// fraction of the remaining grid edges is kept to create alternative
// routes; every road is then subdivided into a chain of 1..k segments
// (picking up the polyline shape of real road data); finally a few
// dead-end spurs are attached.

#include <vector>

#include "gen/generators.hpp"
#include "graph/edge_list.hpp"
#include "util/rng.hpp"

namespace fdiam {

Csr make_road_network(const RoadOptions& opt, std::uint64_t seed) {
  Rng rng(seed);
  const vid_t w = opt.grid_width, h = opt.grid_height;
  const vid_t intersections = w * h;
  auto id = [w](vid_t x, vid_t y) { return y * w + x; };

  // --- Randomized-DFS spanning tree over the grid (maze carving). --------
  std::vector<std::uint8_t> in_tree(intersections, 0);
  std::vector<vid_t> stack;
  std::vector<std::pair<vid_t, vid_t>> roads;  // intersection pairs
  roads.reserve(static_cast<std::size_t>(intersections) * 2);

  stack.push_back(0);
  in_tree[0] = 1;
  std::vector<vid_t> candidates;
  while (!stack.empty()) {
    const vid_t v = stack.back();
    const vid_t x = v % w, y = v / w;
    candidates.clear();
    if (x > 0 && !in_tree[id(x - 1, y)]) candidates.push_back(id(x - 1, y));
    if (x + 1 < w && !in_tree[id(x + 1, y)]) candidates.push_back(id(x + 1, y));
    if (y > 0 && !in_tree[id(x, y - 1)]) candidates.push_back(id(x, y - 1));
    if (y + 1 < h && !in_tree[id(x, y + 1)]) candidates.push_back(id(x, y + 1));
    if (candidates.empty()) {
      stack.pop_back();
      continue;
    }
    const vid_t next =
        candidates[static_cast<std::size_t>(rng.below(candidates.size()))];
    in_tree[next] = 1;
    roads.emplace_back(v, next);
    stack.push_back(next);
  }

  // --- Keep a fraction of the remaining grid edges as alternate routes. --
  std::vector<std::uint8_t> used(static_cast<std::size_t>(intersections) * 2,
                                 0);
  for (const auto& [a, b] : roads) {
    // Encode grid edge as (min vertex, horizontal?) for duplicate checks.
    const vid_t lo = std::min(a, b);
    const bool horizontal = (a / w) == (b / w);
    used[static_cast<std::size_t>(lo) * 2 + (horizontal ? 0 : 1)] = 1;
  }
  for (vid_t y = 0; y < h; ++y) {
    for (vid_t x = 0; x < w; ++x) {
      if (x + 1 < w && !used[static_cast<std::size_t>(id(x, y)) * 2] &&
          rng.chance(opt.keep_extra)) {
        roads.emplace_back(id(x, y), id(x + 1, y));
      }
      if (y + 1 < h && !used[static_cast<std::size_t>(id(x, y)) * 2 + 1] &&
          rng.chance(opt.keep_extra)) {
        roads.emplace_back(id(x, y), id(x, y + 1));
      }
    }
  }

  // --- Subdivide roads into polyline chains and add dead-end spurs. ------
  EdgeList edges;
  edges.ensure_vertices(intersections);
  vid_t next_vertex = intersections;
  for (const auto& [a, b] : roads) {
    const auto segments =
        1 + static_cast<vid_t>(rng.below(opt.max_subdivisions));
    vid_t prev = a;
    for (vid_t s = 1; s < segments; ++s) {
      edges.add(prev, next_vertex);
      prev = next_vertex++;
    }
    edges.add(prev, b);
  }
  for (vid_t v = 0; v < intersections; ++v) {
    if (!rng.chance(opt.dead_end_fraction)) continue;
    const auto spur_len = 1 + static_cast<vid_t>(rng.below(3));
    vid_t prev = v;
    for (vid_t s = 0; s < spur_len; ++s) {
      edges.add(prev, next_vertex);
      prev = next_vertex++;
    }
  }
  return Csr::from_edges(std::move(edges));
}

}  // namespace fdiam
