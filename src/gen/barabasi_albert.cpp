#include "gen/generators.hpp"
#include "graph/edge_list.hpp"
#include "util/rng.hpp"

#include <vector>

namespace fdiam {

Csr make_barabasi_albert(vid_t n, double m_per_vertex, std::uint64_t seed) {
  Rng rng(seed);
  EdgeList edges(n);
  if (n == 0) return Csr::from_edges(std::move(edges));

  const auto m_floor = static_cast<vid_t>(m_per_vertex);
  const double m_frac = m_per_vertex - static_cast<double>(m_floor);

  // Preferential attachment via the repeated-endpoints trick: sampling a
  // uniform entry of `endpoints` picks a vertex with probability
  // proportional to its current degree.
  std::vector<vid_t> endpoints;
  endpoints.reserve(static_cast<std::size_t>(
      (m_per_vertex + 1.0) * 2.0 * static_cast<double>(n)));
  endpoints.push_back(0);  // seed vertex gets one virtual degree

  for (vid_t v = 1; v < n; ++v) {
    vid_t m = m_floor + (rng.chance(m_frac) ? 1 : 0);
    if (m == 0) m = 1;  // keep the graph connected
    m = std::min(m, v);
    for (vid_t j = 0; j < m; ++j) {
      const vid_t target =
          endpoints[static_cast<std::size_t>(rng.below(endpoints.size()))];
      edges.add(v, target);
      endpoints.push_back(target);
      endpoints.push_back(v);
    }
  }
  return Csr::from_edges(std::move(edges));
}

}  // namespace fdiam
