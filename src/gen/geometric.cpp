#include "gen/generators.hpp"
#include "graph/edge_list.hpp"
#include "util/rng.hpp"

#include <cmath>
#include <vector>

namespace fdiam {

Csr make_random_geometric(vid_t n, double radius, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> xs(n), ys(n);
  for (vid_t v = 0; v < n; ++v) {
    xs[v] = rng.uniform();
    ys[v] = rng.uniform();
  }

  // Bucket grid with cell size = radius: candidate pairs live in the same
  // or an adjacent cell, giving near-linear expected work.
  const auto cells =
      std::max<vid_t>(1, static_cast<vid_t>(std::floor(1.0 / radius)));
  std::vector<std::vector<vid_t>> grid(static_cast<std::size_t>(cells) *
                                       cells);
  auto cell_of = [&](vid_t v) {
    auto cx = std::min<vid_t>(cells - 1,
                              static_cast<vid_t>(xs[v] * static_cast<double>(cells)));
    auto cy = std::min<vid_t>(cells - 1,
                              static_cast<vid_t>(ys[v] * static_cast<double>(cells)));
    return cy * cells + cx;
  };
  for (vid_t v = 0; v < n; ++v) grid[cell_of(v)].push_back(v);

  EdgeList edges(n);
  const double r2 = radius * radius;
  for (vid_t cy = 0; cy < cells; ++cy) {
    for (vid_t cx = 0; cx < cells; ++cx) {
      const auto& bucket = grid[cy * cells + cx];
      for (int dy = 0; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          if (dy == 0 && dx < 0) continue;  // visit each pair once
          const auto nx = static_cast<std::int64_t>(cx) + dx;
          const auto ny = static_cast<std::int64_t>(cy) + dy;
          if (nx < 0 || ny < 0 || nx >= cells || ny >= cells) continue;
          const auto& other = grid[static_cast<std::size_t>(ny) * cells +
                                   static_cast<std::size_t>(nx)];
          const bool same = dx == 0 && dy == 0;
          for (std::size_t i = 0; i < bucket.size(); ++i) {
            const std::size_t j0 = same ? i + 1 : 0;
            for (std::size_t j = j0; j < other.size(); ++j) {
              const vid_t u = bucket[i], w = other[j];
              const double ddx = xs[u] - xs[w], ddy = ys[u] - ys[w];
              if (ddx * ddx + ddy * ddy <= r2) edges.add(u, w);
            }
          }
        }
      }
    }
  }
  return Csr::from_edges(std::move(edges));
}

}  // namespace fdiam
