#pragma once
// Cheap diameter estimators: lower bounds from repeated double sweeps and
// an upper bound from a center's BFS tree. Exact computation (F-Diam) is
// cheap enough for most graphs, but estimators are useful as progress
// anchors, as sanity checks, and as the initialization quality probe the
// paper's §4.1 discusses ("We have experimentally found our initial
// diameter to often be very close to the exact diameter").

#include <cstdint>

#include "bfs/bfs.hpp"
#include "graph/csr.hpp"
#include "util/types.hpp"

namespace fdiam {

struct DiameterEstimate {
  dist_t lower_bound = 0;  ///< realized by an actual vertex pair
  dist_t upper_bound = 0;  ///< 2 * min observed eccentricity
  std::uint64_t bfs_calls = 0;

  [[nodiscard]] bool exact() const { return lower_bound == upper_bound; }
};

/// Multi-sweep estimation: `sweeps` random-restart double sweeps. Each
/// sweep raises the lower bound with the best eccentricity found and
/// lowers the upper bound via 2 * ecc(midpoint) (Theorem 3: every
/// eccentricity is >= diameter/2, so twice any eccentricity is an upper
/// bound). Often exact on real-world graphs after 2-4 sweeps.
///
/// Caveat: on a DISCONNECTED graph the upper bound only covers the
/// component(s) the sweeps landed in, not the paper's global "largest CC
/// eccentricity"; the lower bound is always valid.
DiameterEstimate estimate_diameter(const Csr& g, int sweeps = 4,
                                   std::uint64_t seed = 1,
                                   BfsConfig config = {});

}  // namespace fdiam
