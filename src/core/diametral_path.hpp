#pragma once
// Extraction of an actual diametral path — the longest shortest path the
// diameter value talks about. Useful wherever the application cares about
// *which* pair is extremal (the worst-delay route in a network, the most
// separated members of a community), not just how far apart they are.

#include <vector>

#include "core/fdiam.hpp"
#include "graph/csr.hpp"
#include "util/types.hpp"

namespace fdiam {

struct DiametralPath {
  /// Vertex sequence from one endpoint to the other; path.size() ==
  /// diameter + 1 (empty for an empty graph).
  std::vector<vid_t> path;
  dist_t diameter = 0;
  bool connected = true;
};

/// Compute the diameter with F-Diam and materialize one realizing path:
/// a BFS from the solver's witness vertex reaches some farthest vertex,
/// and a greedy descent through the distance field walks the path back.
/// Costs one extra BFS on top of fdiam_diameter().
DiametralPath diametral_path(const Csr& g, FDiamOptions opt = {});

/// Same extraction when the diameter and a witness endpoint are already
/// known (e.g. from a previous DiameterResult).
DiametralPath diametral_path_from(const Csr& g, vid_t witness,
                                  BfsConfig config = {});

}  // namespace fdiam
