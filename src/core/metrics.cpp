#include "core/metrics.hpp"

#include <algorithm>

#include "graph/components.hpp"

namespace fdiam {

ExactEccResult exact_eccentricities(const Csr& g, BfsConfig config) {
  const vid_t n = g.num_vertices();
  ExactEccResult result;
  result.ecc.assign(n, 0);
  if (n == 0) return result;

  constexpr dist_t kInf = INT32_MAX;
  std::vector<dist_t> lb(n, 0), ub(n, kInf);
  // Isolated vertices are settled immediately: eccentricity 0.
  vid_t unsettled = 0;
  for (vid_t v = 0; v < n; ++v) {
    if (g.degree(v) == 0) {
      ub[v] = 0;
    } else {
      ++unsettled;
    }
  }

  BfsEngine engine(g, config);
  std::vector<dist_t> dist;
  bool pick_max_ub = true;
  while (unsettled > 0) {
    // Selection: alternate the largest-ub candidate (drives the global
    // maximum up) and the smallest-lb candidate (a near-central vertex
    // whose BFS tightens everyone's upper bound).
    vid_t pick = n;
    dist_t best = 0;
    for (vid_t v = 0; v < n; ++v) {
      if (lb[v] == ub[v]) continue;
      const dist_t key = pick_max_ub ? ub[v] : -lb[v];
      if (pick == n || key > best) {
        best = key;
        pick = v;
      }
    }
    pick_max_ub = !pick_max_ub;

    const dist_t ecc = engine.distances(pick, dist);
    ++result.bfs_calls;
    lb[pick] = ub[pick] = ecc;
    for (vid_t v = 0; v < n; ++v) {
      const dist_t d = dist[v];
      if (d < 0) continue;  // other component: this BFS says nothing
      lb[v] = std::max({lb[v], d, ecc - d});
      ub[v] = std::min(ub[v], d + ecc);
    }
    unsettled = 0;
    for (vid_t v = 0; v < n; ++v) {
      if (lb[v] != ub[v]) ++unsettled;
    }
  }

  for (vid_t v = 0; v < n; ++v) result.ecc[v] = lb[v];
  return result;
}

GraphMetrics graph_metrics(const Csr& g, BfsConfig config) {
  GraphMetrics m;
  const vid_t n = g.num_vertices();
  if (n == 0) return m;

  const ExactEccResult ex = exact_eccentricities(g, config);
  m.bfs_calls = ex.bfs_calls;

  const Components cc = connected_components(g);
  m.connected = cc.connected();
  const std::uint32_t big = cc.largest();

  m.diameter = *std::max_element(ex.ecc.begin(), ex.ecc.end());
  m.radius = INT32_MAX;
  for (vid_t v = 0; v < n; ++v) {
    if (cc.label[v] == big) m.radius = std::min(m.radius, ex.ecc[v]);
  }
  for (vid_t v = 0; v < n; ++v) {
    if (cc.label[v] == big && ex.ecc[v] == m.radius) m.center.push_back(v);
    if (ex.ecc[v] == m.diameter) m.periphery.push_back(v);
  }
  return m;
}

}  // namespace fdiam
