#include "core/diametral_path.hpp"

#include <algorithm>

namespace fdiam {

DiametralPath diametral_path_from(const Csr& g, vid_t witness,
                                  BfsConfig config) {
  DiametralPath out;
  if (g.num_vertices() == 0) return out;

  BfsEngine engine(g, config);
  std::vector<dist_t> dist;
  out.diameter = engine.distances(witness, dist);
  out.connected = engine.last_visited_count() == g.num_vertices();

  // Walk back from a farthest vertex: any neighbor one level closer lies
  // on a shortest path, so the greedy descent reaches the witness in
  // exactly `diameter` steps.
  vid_t cur = engine.last_frontier()[0];
  out.path.push_back(cur);
  dist_t d = dist[cur];
  while (d > 0) {
    for (const vid_t w : g.neighbors(cur)) {
      if (dist[w] == d - 1) {
        cur = w;
        --d;
        out.path.push_back(cur);
        break;
      }
    }
  }
  std::reverse(out.path.begin(), out.path.end());
  return out;
}

DiametralPath diametral_path(const Csr& g, FDiamOptions opt) {
  DiametralPath out;
  if (g.num_vertices() == 0) return out;

  const DiameterResult r = fdiam_diameter(g, opt);
  out = diametral_path_from(
      g, r.witness,
      BfsConfig{opt.parallel, opt.direction_optimizing,
                opt.bottomup_threshold});
  // The witness BFS stays inside the witness's component; global
  // connectivity comes from the solver.
  out.connected = r.connected;
  out.diameter = r.diameter;
  return out;
}

}  // namespace fdiam
