// Chain Processing (paper §4.3, Alg. 4).
//
// A degree-1 vertex x routes every one of its shortest paths through its
// chain, so ecc(x) strictly dominates the chain and — by the paper's
// argument — a whole region around the chain anchor w: either
// ecc(w) = ecc(x) - s (another depth-s branch exists at w) and Theorem 1
// covers the region, or the subtree under w is shallower than the chain
// and x is a global maximum. Either way it is safe to remove every vertex
// within s steps of the anchor while keeping only the tail tip x active.
//
// The removal reuses Eliminate with the pseudo-bound MAX = INT32_MAX - 1
// (paper: "The constant MAX is INT_MAX - 1"), so chain-removed vertices
// carry near-MAX recorded bounds that never match a real old bound and
// hence are never used as elimination-extension seeds — chain removal is
// unconditional and needs no extension.
//
// Implementation note: Alg. 4 runs one Eliminate per degree-1 vertex. A
// hub with k pendant leaves would then re-traverse its whole ball k times
// (O(k * deg(hub)) — quadratic on power-law graphs where hubs collect
// thousands of leaves). We group the chains by anchor first and run a
// single Eliminate per anchor at the maximum chain length; the longest
// chain's tip is the one kept active (every shorter tip of the same
// anchor lies inside the removed ball, where the longest tip's argument
// covers it). Net effect and safety are the paper's; the work per anchor
// drops from k traversals to one.

#include <unordered_map>

#include "core/fdiam.hpp"
#include "obs/provenance.hpp"

namespace fdiam {

vid_t FDiam::process_chains() {
  const vid_t n = g_.num_vertices();
  obs::ProvenanceCollector* const prov = opt_.provenance;

  struct Chain {
    dist_t len;
    vid_t tip;
  };
  std::unordered_map<vid_t, Chain> by_anchor;

  for (vid_t v = 0; v < n; ++v) {
    if (g_.degree(v) != 1) continue;

    // Follow the chain of degree-2 vertices away from the tail tip v.
    vid_t prev = v;
    vid_t cur = g_.neighbors(v)[0];
    dist_t len = 1;
    while (g_.degree(cur) == 2 && len < static_cast<dist_t>(n)) {
      const auto adj = g_.neighbors(cur);
      const vid_t next = adj[0] == prev ? adj[1] : adj[0];
      prev = cur;
      cur = next;
      ++len;
    }

    const auto [it, inserted] = by_anchor.try_emplace(cur, Chain{len, v});
    if (!inserted && len > it->second.len) it->second = Chain{len, v};
  }

  // Remove everything within `len` steps of each anchor...
  for (const auto& [anchor, chain] : by_anchor) {
    eliminate(anchor, kChainMax - chain.len, kChainMax, Stage::kChain);
  }
  // ...but keep the dominating tail tips under consideration (Alg. 4
  // line 9). Reactivation happens after ALL eliminations so that one
  // anchor's ball cannot re-remove another anchor's kept tip; it is
  // unconditional — even a previously winnowed or eliminated tip may
  // safely be re-examined (extra work, never wrong).
  for (const auto& [anchor, chain] : by_anchor) {
    state_[chain.tip] = kActiveState;
    stage_tag_[chain.tip] = Stage::kNone;
    if (prov) prov->reactivate(chain.tip);
  }

  // Provenance refinement: vertices lying ON a chain read better as
  // "chain_tail" than as generic members of the anchor's removed ball.
  // Re-walk the chains (the kept tips' records were just cleared, so
  // retagging them is a no-op; anchors are never retagged).
  if (prov) {
    for (vid_t v = 0; v < n; ++v) {
      if (g_.degree(v) != 1) continue;
      prov->retag(v, obs::ProvStage::kChainAnchorRegion,
                  obs::ProvStage::kChainTail);
      vid_t prev = v;
      vid_t cur = g_.neighbors(v)[0];
      dist_t len = 1;
      while (g_.degree(cur) == 2 && len < static_cast<dist_t>(n)) {
        prov->retag(cur, obs::ProvStage::kChainAnchorRegion,
                    obs::ProvStage::kChainTail);
        const auto adj = g_.neighbors(cur);
        const vid_t next = adj[0] == prev ? adj[1] : adj[0];
        prev = cur;
        cur = next;
        ++len;
      }
    }
  }

  return static_cast<vid_t>(by_anchor.size());
}

}  // namespace fdiam
