// Eliminate (paper §4.4, Alg. 5) and the incremental extension of
// eliminated regions (§4.5).
//
// After computing ecc(x) < bound, Theorem 1 gives every vertex z at
// distance d of x the upper bound ecc(z) <= ecc(x) + d; vertices whose
// bound stays <= `bound` can never raise the diameter estimate and are
// removed from consideration. The partial BFS stops once the running
// bound reaches `bound`. The recorded per-vertex bound is what makes the
// later extension cheap: when the diameter bound rises old -> fresh, one
// multi-source partial BFS seeded at every vertex recorded at exactly
// `old` advances all eliminated regions by (fresh - old) levels at once,
// independent of how many vertices were evaluated before (§4.5).
//
// Eliminate runs serially: it typically performs only a couple of
// iterations with few worklist elements (paper §4.4). The multi-source
// extension can touch large areas and is parallelized like a BFS level.

#include "core/fdiam.hpp"
#include "obs/provenance.hpp"

namespace fdiam {

void FDiam::eliminate(vid_t source, dist_t ecc, dist_t bound, Stage stage) {
  if (ecc >= bound) return;
  ++stats_.eliminate_calls;

  obs::ProvenanceCollector* const prov = opt_.provenance;
  const obs::ProvStage pstage = stage == Stage::kChain
                                    ? obs::ProvStage::kChainAnchorRegion
                                    : obs::ProvStage::kEliminate;
  // Chain removal runs under the pseudo-bound MAX with ecc = MAX - s; its
  // provenance records carry the chain length s so the auditor can decode
  // the MAX-based value markers.
  const dist_t pbound = stage == Stage::kChain ? bound - ecc : bound;

  elim_visited_.new_epoch();
  // Deviation from the paper's listing: Alg. 5 never marks the source
  // visited, so level 2 would re-discover it and overwrite its exact
  // recorded eccentricity with the looser ecc+2 (harmless as a bound, but
  // it destroys the value the extension step keys on). Marking the source
  // first fixes that.
  elim_visited_.visit(source);

  elim_wl1_.clear();
  elim_wl1_.push_back(source);
  dist_t value = ecc;
  while (value < bound && !elim_wl1_.empty()) {
    ++value;
    elim_wl2_.clear();
    for (const vid_t v : elim_wl1_) {
      for (const vid_t w : g_.neighbors(v)) {
        if (!elim_visited_.is_visited(w)) {
          elim_visited_.visit(w);
          mark_removed(w, value, stage);
          // No-ops when w already carries a record: the first remover
          // keeps attribution, mirroring stage_tag_.
          if (prov) prov->record(w, pstage, source, pbound, value);
          elim_wl2_.push_back(w);
        }
      }
    }
    elim_wl1_.swap(elim_wl2_);
  }
}

void FDiam::extend_eliminated(dist_t old_bound, dist_t fresh_bound) {
  const vid_t n = g_.num_vertices();
  obs::ProvenanceCollector* const prov = opt_.provenance;

  // Seed with every vertex whose recorded bound equals the old diameter
  // bound — these form the outermost ring of every eliminated region plus
  // all evaluated vertices whose exact eccentricity was old_bound
  // (Alg. 1 lines 17-19, implemented as one multi-source BFS per §4.5).
  aux_cur_.clear();
  elim_visited_.new_epoch();
  {
    RegionScope region(RegionKind::kExtend);
#pragma omp parallel if (opt_.parallel)
    {
#pragma omp for schedule(static) nowait
      for (std::int64_t vi = 0; vi < static_cast<std::int64_t>(n); ++vi) {
        const auto v = static_cast<vid_t>(vi);
        if (state_[v] == old_bound) {
          elim_visited_.visit(v);  // distinct cells: safe to set in parallel
          aux_cur_.push_atomic(v);
        }
      }
      region.thread_done();
    }
  }
  if (aux_cur_.empty()) return;
  ++stats_.extension_calls;

  for (dist_t value = old_bound + 1;
       value <= fresh_bound && !aux_cur_.empty(); ++value) {
    aux_next_.clear();
    const auto frontier = aux_cur_.view();
    const auto fsize = static_cast<std::int64_t>(frontier.size());

    if (opt_.parallel) {
      RegionScope region(RegionKind::kExtend);
#pragma omp parallel
      {
        Frontier::Local local(aux_next_);
        std::uint64_t edges = 0;
#pragma omp for schedule(dynamic, 64) nowait
        for (std::int64_t i = 0; i < fsize; ++i) {
          const vid_t v = frontier[static_cast<std::size_t>(i)];
          edges += g_.neighbors(v).size();
          for (const vid_t w : g_.neighbors(v)) {
            if (elim_visited_.try_visit(w)) {
              // The claiming thread exclusively owns w's state update
              // (and hence also w's provenance record).
              if (state_[w] == kActiveState) {
                state_[w] = value;
                stage_tag_[w] = Stage::kEliminate;
                if (prov) {
                  prov->record(w, obs::ProvStage::kExtension, obs::kNoAnchor,
                               fresh_bound, value);
                }
              } else if (value < state_[w] && state_[w] >= 0) {
                state_[w] = value;
              }
              local.push(w);
            }
          }
        }
        region.thread_done(edges);
      }
    } else {
      for (std::int64_t i = 0; i < fsize; ++i) {
        const vid_t v = frontier[static_cast<std::size_t>(i)];
        for (const vid_t w : g_.neighbors(v)) {
          if (!elim_visited_.is_visited(w)) {
            elim_visited_.visit(w);
            mark_removed(w, value, Stage::kEliminate);
            if (prov) {
              prov->record(w, obs::ProvStage::kExtension, obs::kNoAnchor,
                           fresh_bound, value);
            }
            aux_next_.push(w);
          }
        }
      }
    }
    swap(aux_cur_, aux_next_);
  }
}

}  // namespace fdiam
