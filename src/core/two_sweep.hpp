#pragma once
// 2-sweep and 4-sweep diameter lower-bound heuristics.
//
// 2-sweep (paper §4.1): BFS from a start vertex, then BFS from the vertex
// found farthest away; that second eccentricity is a strong diameter lower
// bound because the farthest vertex tends to lie on the periphery.
//
// 4-sweep (Crescenzi et al., used by the iFUB baseline): two chained
// double sweeps whose midpoints home in on a vertex of near-minimum
// eccentricity — a good "center" to root iFUB's fringe sets at.

#include "bfs/bfs.hpp"
#include "graph/csr.hpp"
#include "util/types.hpp"

namespace fdiam {

struct TwoSweepResult {
  vid_t periphery = 0;     ///< farthest vertex found from `start`
  dist_t start_ecc = 0;    ///< eccentricity of the start vertex
  dist_t lower_bound = 0;  ///< ecc(periphery): diameter lower bound
};

/// Runs 2 BFS traversals on `engine` from `start` (F-Diam passes the
/// highest-degree vertex, which tends to be central — paper §3).
TwoSweepResult two_sweep(BfsEngine& engine, vid_t start);

struct FourSweepResult {
  vid_t center = 0;        ///< midpoint vertex with near-minimal ecc
  dist_t lower_bound = 0;  ///< best diameter lower bound of the 4 sweeps
  /// Peripheral vertex whose exact eccentricity equals lower_bound (a1 or
  /// a2). F-Diam's kFourSweepCenter path folds it into the initial bound
  /// and retires it instead of discarding the 4 sweeps' best finding.
  vid_t witness = 0;
};

/// Runs 4 BFS traversals (plus one midpoint walk each double sweep).
FourSweepResult four_sweep(BfsEngine& engine, vid_t start);

/// Walk from `far_end` back toward the BFS root along `dist` (the distance
/// array of the root's BFS) and return the vertex at distance
/// dist[far_end]/2 from the root — the path midpoint.
vid_t path_midpoint(const Csr& g, const std::vector<dist_t>& dist,
                    vid_t far_end);

}  // namespace fdiam
