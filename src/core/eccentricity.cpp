#include "core/eccentricity.hpp"

namespace fdiam {

dist_t eccentricity(const Csr& g, vid_t v, BfsConfig config) {
  BfsEngine engine(g, config);
  return engine.eccentricity(v);
}

std::vector<dist_t> eccentricities(const Csr& g,
                                   std::span<const vid_t> sources,
                                   BfsConfig config) {
  BfsEngine engine(g, config);
  std::vector<dist_t> out;
  out.reserve(sources.size());
  for (const vid_t s : sources) out.push_back(engine.eccentricity(s));
  return out;
}

std::vector<dist_t> all_eccentricities(const Csr& g) {
  const vid_t n = g.num_vertices();
  std::vector<dist_t> ecc(n, 0);
#pragma omp parallel
  {
    std::vector<dist_t> dist;  // per-thread scratch
#pragma omp for schedule(dynamic, 16)
    for (std::int64_t v = 0; v < static_cast<std::int64_t>(n); ++v) {
      ecc[v] = bfs_distances_serial(g, static_cast<vid_t>(v), dist);
    }
  }
  return ecc;
}

}  // namespace fdiam
