#pragma once
// Exact per-vertex eccentricities and derived graph metrics (radius,
// center, periphery) via the eccentricity-bounding algorithm (in the
// spirit of Takes & Kosters' BoundingEccentricities, the same bound
// family Graph-Diameter uses).
//
// This extends the paper's diameter-only contribution to the full metric
// suite its introduction motivates: the diameter names the worst-case
// separation, the radius/center name the best broadcast position, and
// the periphery names the most remote vertices.
//
// Bounds maintained per vertex after each exact eccentricity BFS from w:
//   lb(v) = max(lb(v), d(v,w), ecc(w) - d(v,w))     (triangle inequality)
//   ub(v) = min(ub(v), d(v,w) + ecc(w))
// A vertex is settled once lb == ub. Selection alternates between the
// unsettled vertex of maximum ub (pushes the diameter lower bound up) and
// minimum lb (near-central vertices tighten everyone's ub), which
// converges in a handful of traversals on small-world graphs.

#include <cstdint>
#include <vector>

#include "bfs/bfs.hpp"
#include "graph/csr.hpp"
#include "util/types.hpp"

namespace fdiam {

struct ExactEccResult {
  std::vector<dist_t> ecc;      ///< exact eccentricity of every vertex
  std::uint64_t bfs_calls = 0;  ///< traversals the bounding loop needed
};

/// Exact eccentricity of every vertex. Worst case O(nm) like APSP, but in
/// practice needs far fewer traversals than one per vertex.
ExactEccResult exact_eccentricities(const Csr& g, BfsConfig config = {});

struct GraphMetrics {
  dist_t diameter = 0;  ///< max eccentricity over all components
  dist_t radius = 0;    ///< min eccentricity within the largest component
  bool connected = true;
  std::vector<vid_t> center;     ///< ecc == radius (largest component)
  std::vector<vid_t> periphery;  ///< ecc == diameter (any component)
  std::uint64_t bfs_calls = 0;
};

/// Diameter, radius, center, and periphery in one pass. For disconnected
/// inputs the radius/center refer to the largest connected component and
/// the diameter/periphery to the component attaining the maximum
/// eccentricity, matching the paper's "CC diameter" semantics.
GraphMetrics graph_metrics(const Csr& g, BfsConfig config = {});

}  // namespace fdiam
