#pragma once
// F-Diam: fast exact diameter computation for undirected, unweighted,
// sparse graphs (Bradley, Akathoott & Burtscher, ICPP 2025).
//
// The algorithm (paper Alg. 1):
//   1. 2-sweep from the highest-degree vertex u to obtain an initial lower
//      bound `bound` on the diameter (§4.1).
//   2. Winnow: remove every vertex within floor(bound/2) steps of u from
//      consideration — safe by Theorems 2+3 (§4.2).
//   3. Chain Processing: for every degree-1 tail, remove the chain and a
//      region around its anchor, keeping only the tail tip (§4.3).
//   4. Repeatedly evaluate the eccentricity of a remaining active vertex.
//      A value below `bound` triggers Eliminate (Theorem-1 pruning, §4.4);
//      a value above it raises `bound` and incrementally extends the
//      winnowed region and all previously eliminated regions (§4.5).
//   5. Terminate when no active vertices remain; `bound` is the exact
//      diameter.
//
// "Removing a vertex from consideration" means its eccentricity need not
// be computed; the vertex remains traversable (paper footnote 1).

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bfs/bfs.hpp"
#include "graph/csr.hpp"
#include "graph/reorder.hpp"
#include "obs/perf/hw_counters.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"
#include "util/types.hpp"

namespace fdiam {

namespace obs {
class PerfSession;           // owned by FDiam when hw_counters is on
class ProvenanceCollector;   // caller-owned, see FDiamOptions::provenance
class ProgressHeartbeat;     // caller-owned, see FDiamOptions::heartbeat
struct SolveHistograms;      // caller-owned, see FDiamOptions::histograms
class FlightRecorder;        // caller-owned, see FDiamOptions::flight
}

/// Progress events emitted by FDiam when a trace sink is installed —
/// one event per algorithmic decision (never per vertex/edge), so the
/// overhead is negligible and the stream reads like the paper's Alg. 1.
struct FDiamEvent {
  enum class Kind {
    kStart,            ///< value = |V|, vertex = the chosen start u
    kInitialBound,     ///< value = bound after the 2-sweep
    kWinnow,           ///< value = new ball radius, vertex = center
    kChainsProcessed,  ///< value = vertices removed by chains
    kEccentricity,     ///< value = ecc, vertex = evaluated vertex
    kBoundRaised,      ///< value = new bound, vertex = raising vertex
    kEliminate,        ///< value = reach (bound - ecc), vertex = source
    kExtendRegions,    ///< value = new bound after multi-source extension
    kDone,             ///< value = final diameter
  };
  Kind kind;
  dist_t value = 0;
  vid_t vertex = 0;
  /// Secondary payload: kBoundRaised carries the OLD bound (value is the
  /// new one), kChainsProcessed the number of chain anchors (value is the
  /// vertices removed). 0 for every other kind.
  dist_t extra = 0;
  /// Wall-clock duration of the work this event reports, when the event
  /// closes a timed stage: kInitialBound (the 2-sweep), kWinnow,
  /// kChainsProcessed, kEccentricity (one BFS), kEliminate,
  /// kExtendRegions, and kDone (the whole run). 0 for point events
  /// (kStart, kBoundRaised) and for batch-mode eccentricities, where only
  /// the batch is timed. Telemetry sinks turn these into trace spans.
  double seconds = 0.0;
  /// Hardware/software counter delta of the work this event reports,
  /// populated for the same timed events as `seconds` when
  /// FDiamOptions::hw_counters is on and the counters opened. Only valid
  /// during the trace callback — sinks must copy what they keep.
  const obs::HwCounters* hw = nullptr;
};

/// Trace sink; see FDiamOptions::trace.
using FDiamTrace = std::function<void(const FDiamEvent&)>;

/// Where F-Diam anchors its 2-sweep and Winnow ball.
enum class StartPolicy {
  /// The paper's choice: the highest-degree vertex tends to be central
  /// (core-periphery argument, §3).
  kMaxDegree,
  /// The "no 'u'" ablation (Table 5 / Fig. 9): plain vertex id 0.
  kVertexZero,
  /// Extension ablation: spend 4 extra BFS on a 4-sweep to find a vertex
  /// of near-minimum eccentricity — a potentially better Winnow center
  /// than the degree heuristic (the paper notes the true center is as
  /// expensive as the diameter; the 4-sweep center is the cheap proxy
  /// iFUB uses).
  kFourSweepCenter,
};

/// Feature toggles. The defaults reproduce full F-Diam; the `use_*` flags
/// reproduce the paper's ablations (Table 5 / Fig. 9).
struct FDiamOptions {
  bool parallel = true;               ///< OpenMP-parallel BFS levels
  bool direction_optimizing = true;   ///< hybrid top-down/bottom-up BFS
  double bottomup_threshold = 0.1;    ///< paper §4.6: 10% of |V|

  bool use_winnow = true;             ///< "no Winnow" ablation when false
  bool use_eliminate = true;          ///< "no Elim." ablation when false
  bool use_chain = true;              ///< chain processing (§4.3)
  StartPolicy start_policy = StartPolicy::kMaxDegree;

  /// Evaluate remaining vertices in a deterministic random permutation
  /// instead of id order (§4.5: "F-Diam loops over the remaining vertices
  /// in random order"; Alg. 1 shows the id-order scan, the default here).
  bool randomize_scan = false;
  std::uint64_t scan_seed = 0x5eed;

  /// > 1 reproduces the alternative the paper evaluated and REJECTED
  /// (§4.6): run this many candidate eccentricity BFS traversals
  /// concurrently (each one serial) instead of parallelizing inside each
  /// BFS. The redundancy is measurable — candidates in the same batch are
  /// evaluated even when an earlier member's Eliminate would have removed
  /// them — and bench_ablation_batch quantifies it. 1 = the paper's
  /// chosen design.
  int candidate_batch = 1;

  /// Abort knobs for benchmark timeouts (paper capped runs at 2.5 h).
  /// 0 means unlimited. On abort the result carries timed_out = true and
  /// the diameter field is only a lower bound.
  double time_budget_seconds = 0.0;
  std::uint64_t max_bfs_calls = 0;

  /// Collect Linux perf_event hardware/software counters and an RSS
  /// watermark per stage and per run (obs/perf/). Degrades gracefully —
  /// kernels/containers without perf access report the counters as
  /// unavailable, never fail — but still costs a handful of read()
  /// syscalls per stage, so it is opt-in. The counters cover the calling
  /// thread and descendants spawned after run() starts.
  bool hw_counters = false;

  /// Opt-in pruning provenance (obs/provenance.hpp): per-vertex removal
  /// records and the bound-evolution timeline, for run-report telemetry
  /// and the fdiam_audit invariant replayer. Caller-owned; the solver
  /// calls begin_run()/finish() around each run, so one collector can be
  /// reused across repetitions. Near-zero cost when null (one pointer
  /// test per removal site).
  obs::ProvenanceCollector* provenance = nullptr;

  /// Opt-in live progress heartbeat (obs/provenance.hpp): periodic
  /// stderr lines with alive count and ETA, plus SIGUSR1 snapshots.
  /// Caller-owned and caller-configured (interval, forcing). Null = off.
  obs::ProgressHeartbeat* heartbeat = nullptr;

  /// Opt-in parallel-region utilization accounting (util/parallel.hpp):
  /// per-thread busy time, edges scanned, implicit-barrier wait, and
  /// region entry counts for every OpenMP region the run launches,
  /// aggregated per stage and region kind into FDiamStats::util.
  /// Caller-owned; run() installs it globally for its duration (saving
  /// and restoring any previous collector). Near-zero cost when null:
  /// each instrumented region pays one pointer load and branch.
  UtilCollector* utilization = nullptr;

  /// Opt-in latency/size distribution telemetry
  /// (obs/metrics/metrics_report.hpp): per-BFS-call and per-batch
  /// latencies, per-stage episode durations, and per-level frontier
  /// sizes recorded into registry-backed histograms for the
  /// fdiam.metrics/v1 report block and the OpenMetrics exposition.
  /// Caller-owned; near-zero cost when null (one pointer test per
  /// record site, all outside the per-edge hot path).
  obs::SolveHistograms* histograms = nullptr;

  /// Opt-in per-solve crash flight recorder (obs/log/flight.hpp). When
  /// set, this run's stage transitions and bound raises go to THIS
  /// recorder instead of the process-wide FlightRecorder::active() — the
  /// right mode for a daemon running concurrent solves, where each
  /// request registers its own recorder (register_recorder) so a crash
  /// dumps every in-flight solve's state. Null = fall back to the
  /// process-wide active recorder (single-solve CLI behavior).
  obs::FlightRecorder* flight = nullptr;

  /// Optional per-decision progress sink (see FDiamEvent).
  FDiamTrace trace;

  /// Optional per-level BFS profiler, installed on every engine the run
  /// uses (including the per-thread engines of candidate_batch mode, so
  /// the hook must be thread-safe when candidate_batch > 1 and parallel
  /// is on). See BfsLevelProfile.
  BfsLevelHook level_profile;

  /// EXPERIMENT KNOB: cap the 2-sweep's initial bound at this value
  /// (> 0 enables; bound becomes min(measured, cap), so the result stays
  /// exact — a cap can only degrade the starting point, never inflate
  /// it). Used by bench_ablation_bound_quality to measure how the initial
  /// bound's quality drives Winnow's coverage and the total BFS count
  /// (paper §4.1: "we want this bound to be as close to the actual
  /// diameter as possible").
  dist_t cap_initial_bound = 0;
};

/// Instrumentation: everything Tables 3-5 and Figs. 8-9 report.
struct FDiamStats {
  // Traversal counts. Table 3 counts a "BFS traversal" as an eccentricity
  // computation or a Winnow invocation; Eliminate is not counted.
  std::uint64_t bfs_calls = 0;
  std::uint64_t ecc_computations = 0;
  std::uint64_t winnow_calls = 0;
  std::uint64_t eliminate_calls = 0;
  std::uint64_t extension_calls = 0;

  // Vertices removed from consideration per stage (Table 4). A vertex is
  // attributed to the stage that first removed it. `evaluated` vertices
  // had their eccentricity computed exactly.
  vid_t removed_by_winnow = 0;
  vid_t removed_by_eliminate = 0;
  vid_t removed_by_chain = 0;
  vid_t degree0_vertices = 0;
  vid_t evaluated = 0;

  // Stage wall-clock seconds (Fig. 8).
  double time_init = 0.0;       // 2-sweep eccentricity BFS pair
  double time_winnow = 0.0;     // winnow + its incremental extensions
  double time_chain = 0.0;
  double time_eliminate = 0.0;  // eliminate + eliminated-region extensions
  double time_ecc = 0.0;        // main-loop eccentricity BFS calls
  double time_total = 0.0;

  // Per-stage hardware/software counter deltas (empty — all events
  // invalid — unless FDiamOptions::hw_counters is on and the perf
  // session opened). Stage attribution mirrors the time_* fields.
  obs::HwCounters hw_init;
  obs::HwCounters hw_winnow;
  obs::HwCounters hw_chain;
  obs::HwCounters hw_eliminate;
  obs::HwCounters hw_ecc;

  /// Parallel-region utilization snapshot (enabled == false — and every
  /// aggregate zero — unless FDiamOptions::utilization was set). Stage
  /// attribution mirrors the time_* fields.
  UtilStats util;

  [[nodiscard]] double time_other() const {
    // Clamped at zero: the stage timers each round independently, so
    // their sum can exceed time_total by a few microseconds.
    return std::max(0.0, time_total - (time_init + time_winnow + time_chain +
                                       time_eliminate + time_ecc));
  }
};

struct DiameterResult {
  /// Largest eccentricity over all connected components — the diameter for
  /// connected inputs; for disconnected ones the paper's "CC diameter".
  dist_t diameter = 0;
  /// A vertex whose eccentricity equals `diameter` (one endpoint of a
  /// diametral path; feed it to diametral_path()).
  vid_t witness = 0;
  /// False when the input is disconnected (true diameter is infinite).
  bool connected = true;
  /// True when a time/BFS budget aborted the run; `diameter` is then only
  /// a lower bound.
  bool timed_out = false;
  FDiamStats stats;
  /// Traversal-level counters summed over every BFS the run performed
  /// (Table 3's level/direction/edge numbers). Reset per run().
  BfsStats bfs;
  /// Whole-run hardware/software counter totals (see
  /// FDiamOptions::hw_counters; all events invalid when off/unavailable).
  obs::HwCounters hardware;
  /// Human-readable reason when `hardware` is degraded (no perf access).
  std::string hw_unavailable_reason;
  /// Worst-case multiplex scaling ratio of `hardware` (1.0 = unscaled).
  double hw_multiplex_scale = 1.0;
  /// RSS watermark around the run (available == false when /proc and
  /// getrusage are both unusable, or hw_counters was off).
  obs::MemProfile memory;
};

/// Reusable F-Diam solver. Construct once per graph; run() may be invoked
/// repeatedly (benchmark repetitions reuse the scratch buffers).
class FDiam {
 public:
  explicit FDiam(const Csr& g, FDiamOptions opt = {});
  ~FDiam();  // out-of-line: PerfSession is incomplete here

  DiameterResult run();

  /// Per-vertex consideration state after run(): ACTIVE never occurs in a
  /// completed run; other values record the eccentricity upper bound under
  /// which the vertex was removed (kWinnowedState for winnowed vertices).
  [[nodiscard]] const std::vector<dist_t>& state() const { return state_; }

  [[nodiscard]] const FDiamOptions& options() const { return opt_; }

  /// Sentinels stored in state().
  static constexpr dist_t kActiveState = INT32_MAX;
  static constexpr dist_t kWinnowedState = -1;
  /// Base for chain-processing bounds (paper §4.3: MAX = INT_MAX - 1).
  static constexpr dist_t kChainMax = INT32_MAX - 1;

  /// Which stage removed each vertex from consideration; used to compute
  /// the Table 4 attribution exactly even when chain processing
  /// reactivates a previously removed tail tip.
  enum class Stage : std::uint8_t {
    kNone = 0,     // still active
    kWinnow,
    kEliminate,
    kChain,
    kDegree0,
    kEvaluated,    // eccentricity computed exactly
  };

 private:
  // --- Winnow (§4.2), defined in winnow.cpp -------------------------------
  // Grows the winnowed region around `winnow_center_` to radius
  // floor(bound/2); incremental across calls (§4.5).
  void winnow_extend(dist_t bound);

  // --- Chain Processing (§4.3), defined in chain.cpp ----------------------
  // Returns the number of chain anchors processed (for the trace event).
  vid_t process_chains();

  // --- Eliminate (§4.4) and region extension (§4.5), eliminate.cpp --------
  // Partial BFS from `source` (known eccentricity `ecc`) marking vertices
  // at distance d with the Theorem-1 bound ecc + d, up to `bound`.
  // `stage` attributes removals (main loop: kEliminate; chains: kChain).
  void eliminate(vid_t source, dist_t ecc, dist_t bound, Stage stage);
  // After the bound rose old -> fresh: one multi-source partial BFS seeded
  // at every vertex whose recorded bound equals `old`.
  void extend_eliminated(dist_t old_bound, dist_t fresh_bound);

  // Removes v from consideration with bound `value` (or merely tightens an
  // existing record — the first remover keeps the attribution).
  void mark_removed(vid_t v, dist_t value, Stage stage);

  // Tally stage_tag_ into the per-stage counters of stats_.
  void finalize_stats();

  void emit(FDiamEvent::Kind kind, dist_t value, vid_t vertex = 0,
            double seconds = 0.0, const obs::HwCounters* hw = nullptr,
            dist_t extra = 0) const {
    if (opt_.trace) {
      opt_.trace(FDiamEvent{kind, value, vertex, extra, seconds, hw});
    }
  }

  /// Vertices still under consideration (O(n) scan — called only on the
  /// rare provenance/heartbeat paths, never on the per-vertex hot path).
  [[nodiscard]] std::uint64_t count_active() const;

  /// Cumulative counter snapshot since run() start (empty when counters
  /// are off/unavailable); stage deltas come from HwCounters::delta.
  [[nodiscard]] obs::HwCounters hw_snapshot() const;

  [[nodiscard]] bool budget_exhausted() const;

  const Csr& g_;
  FDiamOptions opt_;
  BfsEngine engine_;

  // Created lazily on the first run() with hw_counters on; reused by
  // later runs (benchmark repetitions pay the open cost once).
  std::unique_ptr<obs::PerfSession> perf_;

  std::vector<dist_t> state_;
  std::vector<Stage> stage_tag_;

  // Persistent winnow-region bookkeeping for incremental extension.
  std::vector<std::uint8_t> in_winnow_region_;
  std::vector<vid_t> winnow_frontier_;
  dist_t winnow_radius_ = 0;
  vid_t winnow_center_ = 0;

  // Scratch for the parallel winnow / extension levels.
  Frontier aux_cur_, aux_next_;

  // Scratch worklists for Eliminate (serial, typically tiny — paper §4.4).
  std::vector<vid_t> elim_wl1_, elim_wl2_;
  EpochVisited elim_visited_;

  FDiamStats stats_;
  Timer run_timer_;
};

/// One-shot convenience wrapper.
DiameterResult fdiam_diameter(const Csr& g, FDiamOptions opt = {});

/// Run F-Diam on a cache-aware relabeling of `g` (paper §6.2: BFS speed is
/// bandwidth-bound, and vertex order decides locality): build the `mode`
/// permutation, solve on the permuted CSR, and translate the diametral
/// witness back through the inverse permutation — so the result is
/// bit-identical to running on `g` directly, modulo which of several
/// equally-diametral witnesses is reported. kNone degenerates to
/// fdiam_diameter. `seed` only matters for ReorderMode::kRandom.
DiameterResult fdiam_diameter_reordered(const Csr& g, ReorderMode mode,
                                        FDiamOptions opt = {},
                                        std::uint64_t seed = 42);

}  // namespace fdiam
