#pragma once
// Convenience eccentricity helpers layered over BfsEngine — the simplest
// entry points of the public API.

#include <vector>

#include "bfs/bfs.hpp"
#include "graph/csr.hpp"
#include "util/types.hpp"

namespace fdiam {

/// Eccentricity of one vertex within its connected component.
dist_t eccentricity(const Csr& g, vid_t v, BfsConfig config = {});

/// Eccentricities of every vertex in `sources` (one BFS each, reusing a
/// single engine).
std::vector<dist_t> eccentricities(const Csr& g,
                                   std::span<const vid_t> sources,
                                   BfsConfig config = {});

/// Exact eccentricity of every vertex — n BFS traversals, parallelized
/// over sources. O(nm): only sensible on small graphs; the test suite's
/// ground truth.
std::vector<dist_t> all_eccentricities(const Csr& g);

}  // namespace fdiam
