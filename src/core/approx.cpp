#include "core/approx.hpp"

#include <algorithm>

#include "core/two_sweep.hpp"
#include "util/rng.hpp"

namespace fdiam {

DiameterEstimate estimate_diameter(const Csr& g, int sweeps,
                                   std::uint64_t seed, BfsConfig config) {
  DiameterEstimate est;
  const vid_t n = g.num_vertices();
  if (n == 0) return est;
  est.upper_bound = INT32_MAX;

  BfsEngine engine(g, config);
  Rng rng(seed);
  std::vector<dist_t> dist;

  for (int s = 0; s < sweeps; ++s) {
    // First sweep starts at the max-degree vertex (the paper's u); the
    // rest restart at random vertices to escape a component or an
    // unlucky region.
    const vid_t start = s == 0 ? g.max_degree_vertex()
                               : static_cast<vid_t>(rng.below(n));

    const dist_t ecc_start = engine.distances(start, dist);
    ++est.bfs_calls;
    const vid_t far = engine.last_frontier()[0];
    est.lower_bound = std::max(est.lower_bound, ecc_start);

    if (far != start) {
      const dist_t ecc_far = engine.distances(far, dist);
      ++est.bfs_calls;
      est.lower_bound = std::max(est.lower_bound, ecc_far);

      // Midpoint of the sweep path is a near-center: its eccentricity
      // halves the upper bound (2 * ecc(v) >= diameter for every v, but
      // the bound is only useful when ecc(v) is small).
      const vid_t mid =
          path_midpoint(g, dist, engine.last_frontier()[0]);
      const dist_t ecc_mid = engine.eccentricity(mid);
      ++est.bfs_calls;
      est.lower_bound = std::max(est.lower_bound, ecc_mid);
      est.upper_bound = std::min(est.upper_bound, 2 * ecc_mid);
    } else {
      est.upper_bound = std::min(est.upper_bound, 2 * ecc_start);
    }
    est.upper_bound = std::max(est.upper_bound, est.lower_bound);
    if (est.exact()) break;
  }
  return est;
}

}  // namespace fdiam
