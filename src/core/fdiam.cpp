// F-Diam driver (paper Alg. 1). The stage implementations live in
// winnow.cpp, chain.cpp, and eliminate.cpp.

#include "core/fdiam.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <string>
#include <vector>

#include "core/two_sweep.hpp"
#include "obs/log/flight.hpp"
#include "obs/metrics/metrics_report.hpp"
#include "obs/perf/perf_session.hpp"
#include "obs/provenance.hpp"
#include "util/memory.hpp"
#include "util/rng.hpp"

namespace fdiam {

FDiam::FDiam(const Csr& g, FDiamOptions opt)
    : g_(g),
      opt_(opt),
      engine_(g, BfsConfig{opt.parallel, opt.direction_optimizing,
                           opt.bottomup_threshold}),
      state_(g.num_vertices(), kActiveState),
      stage_tag_(g.num_vertices(), Stage::kNone),
      in_winnow_region_(g.num_vertices(), 0),
      aux_cur_(g.num_vertices()),
      aux_next_(g.num_vertices()),
      elim_visited_(g.num_vertices()) {
  // The per-vertex driver state is touched by every stage; give it the
  // same NUMA/huge-page treatment as the BFS arrays (util/memory.hpp).
  util::place(state_);
  util::place(stage_tag_);
  if (opt_.level_profile) engine_.set_level_hook(opt_.level_profile);
  if (opt_.histograms != nullptr) {
    engine_.set_frontier_histogram(&opt_.histograms->frontier);
  }
}

FDiam::~FDiam() = default;

obs::HwCounters FDiam::hw_snapshot() const {
  return perf_ ? perf_->read() : obs::HwCounters{};
}

std::uint64_t FDiam::count_active() const {
  std::uint64_t alive = 0;
  for (const dist_t s : state_) alive += s == kActiveState ? 1 : 0;
  return alive;
}

void FDiam::mark_removed(vid_t v, dist_t value, Stage stage) {
  if (state_[v] == kActiveState) {
    state_[v] = value;
    stage_tag_[v] = stage;
  } else if (value >= 0 && value < state_[v]) {
    // Tighten the recorded bound; the original remover keeps attribution.
    state_[v] = value;
  }
}

bool FDiam::budget_exhausted() const {
  if (opt_.time_budget_seconds > 0.0 &&
      run_timer_.seconds() > opt_.time_budget_seconds) {
    return true;
  }
  return opt_.max_bfs_calls > 0 &&
         stats_.ecc_computations + stats_.winnow_calls >= opt_.max_bfs_calls;
}

void FDiam::finalize_stats() {
  if (opt_.utilization != nullptr) {
    stats_.util = opt_.utilization->snapshot();
  }
  stats_.removed_by_winnow = 0;
  stats_.removed_by_eliminate = 0;
  stats_.removed_by_chain = 0;
  stats_.degree0_vertices = 0;
  stats_.evaluated = 0;
  for (const Stage tag : stage_tag_) {
    switch (tag) {
      case Stage::kWinnow: ++stats_.removed_by_winnow; break;
      case Stage::kEliminate: ++stats_.removed_by_eliminate; break;
      case Stage::kChain: ++stats_.removed_by_chain; break;
      case Stage::kDegree0: ++stats_.degree0_vertices; break;
      case Stage::kEvaluated: ++stats_.evaluated; break;
      case Stage::kNone: break;
    }
  }
  stats_.bfs_calls = stats_.ecc_computations + stats_.winnow_calls;
  stats_.time_total = run_timer_.seconds();
}

DiameterResult FDiam::run() {
  const vid_t n = g_.num_vertices();

  // Reset state so a solver instance can be run repeatedly.
  std::fill(state_.begin(), state_.end(), kActiveState);
  std::fill(stage_tag_.begin(), stage_tag_.end(), Stage::kNone);
  std::fill(in_winnow_region_.begin(), in_winnow_region_.end(), 0);
  winnow_frontier_.clear();
  winnow_radius_ = 0;
  stats_ = {};
  engine_.reset_stats();  // result.bfs reports this run only
  run_timer_.reset();

  obs::ProvenanceCollector* const prov = opt_.provenance;
  if (prov) prov->begin_run(n);
  const auto finish_provenance = [&](const DiameterResult& res) {
    if (prov) prov->finish(res.diameter, res.connected, res.timed_out);
  };

  // Utilization accounting: install the caller's collector on THIS
  // thread for the duration of the run so the instrumented OpenMP
  // regions (BFS steps, winnow/extension levels, candidate batches) find
  // it. The install slot is thread-local (util/parallel.hpp), so
  // concurrent solves on different threads never alias each other's
  // accumulators. The previous collector is restored on every exit path;
  // the snapshot is harvested into stats_.util by finalize_stats().
  UtilCollector* const util = opt_.utilization;
  struct UtilInstallGuard {
    UtilCollector* installed;
    UtilCollector* previous = nullptr;
    explicit UtilInstallGuard(UtilCollector* c) : installed(c) {
      if (installed != nullptr) {
        installed->begin_run();
        previous = UtilCollector::install(installed);
      }
    }
    ~UtilInstallGuard() {
      if (installed != nullptr) UtilCollector::install(previous);
    }
  } util_guard(util);

  // Distribution telemetry and crash context: both are single pointer
  // tests per record site, never on the per-edge hot path. The flight
  // recorder's stage/bounds are what a post-crash dump reports, so they
  // are updated by the solver itself rather than the (optional) trace
  // sink.
  obs::SolveHistograms* const hist = opt_.histograms;
  // Per-solve recorder when the caller provided one (concurrent-solve
  // daemons), otherwise the process-wide primary (single-solve CLI).
  obs::FlightRecorder* const flight =
      opt_.flight != nullptr ? opt_.flight : obs::FlightRecorder::active();
  const auto set_stage = [&](UtilStage s) {
    if (util != nullptr) util->set_stage(s);
    if (flight != nullptr) flight->set_stage(s);
  };

  // Heartbeat bookkeeping: the alive count at the first beat anchors the
  // ETA extrapolation; captured lazily so disabled runs never pay the scan.
  std::uint64_t hb_initial = 0;
  std::vector<double> hb_busy_prev;  // per-thread busy totals at last beat
  double hb_time_prev = 0.0;
  const auto heartbeat_tick = [&](dist_t current_bound) {
    if (opt_.heartbeat == nullptr || !opt_.heartbeat->due()) return;
    const std::uint64_t alive = count_active();
    if (hb_initial == 0) hb_initial = alive;
    const double now = run_timer_.seconds();
    std::string util_note;
    if (util != nullptr) {
      // Live per-thread utilization: busy ratio since the previous beat,
      // so a stalled or imbalanced solve is visible mid-run.
      const std::vector<double> busy = util->thread_busy();
      const double window = now - hb_time_prev;
      if (window > 0.0 && !busy.empty()) {
        double lo = 1.0;
        double hi = 0.0;
        double sum = 0.0;
        for (std::size_t t = 0; t < busy.size(); ++t) {
          const double prev = t < hb_busy_prev.size() ? hb_busy_prev[t] : 0.0;
          const double r =
              std::clamp((busy[t] - prev) / window, 0.0, 1.0);
          lo = std::min(lo, r);
          hi = std::max(hi, r);
          sum += r;
        }
        char buf[96];
        std::snprintf(buf, sizeof buf,
                      "busy %.0f%% (min %.0f%% max %.0f%% over %zu thr)",
                      100.0 * sum / static_cast<double>(busy.size()),
                      100.0 * lo, 100.0 * hi, busy.size());
        util_note = buf;
      }
      hb_busy_prev = busy;
    }
    hb_time_prev = now;
    opt_.heartbeat->beat(alive, hb_initial, current_bound,
                         stats_.ecc_computations, now, util_note);
  };

  // Hardware/software counter session (opt-in; see FDiamOptions). The
  // session is opened once and reused across repeated run() calls.
  if (opt_.hw_counters && !perf_) {
    perf_ = std::make_unique<obs::PerfSession>();
  }
  obs::MemWatermark mem_start;
  if (opt_.hw_counters) {
    mem_start = obs::read_mem_watermark();
    if (perf_) perf_->start();
  }
  const auto finalize_hw = [&](DiameterResult& res) {
    if (!opt_.hw_counters) return;
    if (perf_) {
      res.hardware = perf_->read();
      res.hw_multiplex_scale = perf_->multiplex_scale();
      res.hw_unavailable_reason = perf_->reason();
      perf_->stop();
    }
    const obs::MemWatermark mem_end = obs::read_mem_watermark();
    res.memory.available = mem_end.available;
    res.memory.peak_rss_bytes = mem_end.peak_rss_bytes;
    res.memory.rss_start_bytes = mem_start.current_rss_bytes;
    res.memory.rss_end_bytes = mem_end.current_rss_bytes;
  };

  DiameterResult result;
  if (n == 0) {
    finish_provenance(result);
    return result;
  }
  if (g_.num_arcs() == 0) {
    // Edge-free graph: every vertex has eccentricity 0.
    for (vid_t v = 0; v < n; ++v) {
      mark_removed(v, 0, Stage::kDegree0);
      if (prov) prov->record(v, obs::ProvStage::kDegree0, v, 0, 0);
    }
    result.connected = n <= 1;
    finalize_stats();
    result.stats = stats_;
    finalize_hw(result);
    finish_provenance(result);
    return result;
  }

  // Isolated vertices have eccentricity 0 and need no computation
  // (Table 4's "Degree-0 Vertices" column).
  for (vid_t v = 0; v < n; ++v) {
    if (g_.degree(v) == 0) {
      mark_removed(v, 0, Stage::kDegree0);
      if (prov) prov->record(v, obs::ProvStage::kDegree0, v, 0, 0);
    }
  }

  // --- Initial diameter (§4.1): 2-sweep from the start vertex u ----------
  set_stage(UtilStage::kInit);
  const obs::HwCounters hw_before_init = hw_snapshot();
  vid_t u;
  dist_t sweep_ecc = -1;   // kFourSweepCenter: best of the 4 sweeps...
  vid_t sweep_witness = 0; // ...and the peripheral vertex that attained it
  switch (opt_.start_policy) {
    case StartPolicy::kVertexZero:
      u = 0;
      break;
    case StartPolicy::kFourSweepCenter: {
      // Extension: anchor at a 4-sweep center instead of the degree
      // heuristic. Costs 4 BFS traversals, counted like eccentricity
      // computations for Table 3 comparability. The sweeps' best lower
      // bound and its witness feed the initial bound below instead of
      // being thrown away.
      Timer t;
      const FourSweepResult sweep = four_sweep(engine_, g_.max_degree_vertex());
      stats_.ecc_computations += 4;
      u = sweep.center;
      sweep_ecc = sweep.lower_bound;
      sweep_witness = sweep.witness;
      const double sweep_seconds = t.seconds();
      stats_.time_init += sweep_seconds;
      if (hist != nullptr) {
        // four_sweep runs 4 BFS internally; attribute each an equal
        // share so the per-BFS sample count matches ecc_computations
        // (the cross-block invariant json_check enforces).
        for (int s = 0; s < 4; ++s) {
          hist->bfs_init.record(sweep_seconds / 4.0);
        }
      }
      break;
    }
    case StartPolicy::kMaxDegree:
    default:
      u = g_.max_degree_vertex();
      break;
  }
  winnow_center_ = u;
  emit(FDiamEvent::Kind::kStart, static_cast<dist_t>(n), u);

  dist_t bound;
  vid_t bound_witness = u;  // attains the pre-cap maximum lower bound
  {
    Timer t;
    Timer t_call;
    const dist_t ecc_u = engine_.eccentricity(u);
    ++stats_.ecc_computations;
    if (hist != nullptr) hist->bfs_init.record(t_call.seconds());
    bound = ecc_u;

    // The farthest vertex from u sits on the periphery; its eccentricity
    // is the initial lower bound (paper Alg. 1 lines 2-3).
    const vid_t w = engine_.last_frontier()[0];
    dist_t ecc_w = -1;
    if (w != u) {
      t_call.reset();
      ecc_w = engine_.eccentricity(w);
      ++stats_.ecc_computations;
      if (hist != nullptr) hist->bfs_init.record(t_call.seconds());
      bound = std::max(bound, ecc_w);
    }
    bound = std::max(bound, sweep_ecc);  // -1 when not kFourSweepCenter
    if (ecc_w >= ecc_u) bound_witness = w;
    if (sweep_ecc >= std::max(ecc_u, ecc_w)) bound_witness = sweep_witness;

    if (opt_.cap_initial_bound > 0 && opt_.cap_initial_bound < bound) {
      // Experiment knob: pretend the 2-sweep produced a weaker (but still
      // valid) lower bound. Correctness hinges on the invariant that no
      // vertex is removed as "evaluated" with an eccentricity above the
      // current bound, so u/w may only be retired if their eccentricity
      // fits under the cap; otherwise they stay active and the main loop
      // re-evaluates them (2 redundant traversals — experiment overhead).
      bound = opt_.cap_initial_bound;
      if (prov) prov->set_capped();
    }
    if (prov) {
      prov->set_round(static_cast<std::uint32_t>(stats_.ecc_computations));
    }
    result.witness = u;
    if (ecc_u <= bound) {
      mark_removed(u, ecc_u, Stage::kEvaluated);
      if (prov) {
        prov->record(u, obs::ProvStage::kTwoSweepSeed, u, bound, ecc_u);
      }
    }
    if (ecc_w >= 0 && ecc_w <= bound) {
      mark_removed(w, ecc_w, Stage::kEvaluated);
      if (prov) {
        prov->record(w, obs::ProvStage::kTwoSweepSeed, w, bound, ecc_w);
      }
      if (ecc_w >= ecc_u) result.witness = w;
    }
    if (sweep_ecc >= 0 && sweep_ecc <= bound) {
      // The 4-sweep evaluated this vertex exactly; retiring it here saves
      // the main loop one redundant traversal.
      mark_removed(sweep_witness, sweep_ecc, Stage::kEvaluated);
      if (prov) {
        prov->record(sweep_witness, obs::ProvStage::kTwoSweepSeed,
                     sweep_witness, bound, sweep_ecc);
      }
      if (sweep_ecc >= bound) result.witness = sweep_witness;
    }
    stats_.time_init += t.seconds();
  }
  stats_.hw_init = obs::HwCounters::delta(hw_snapshot(), hw_before_init);
  if (flight != nullptr) flight->set_bounds(bound);
  emit(FDiamEvent::Kind::kInitialBound, bound, u, stats_.time_init,
       perf_ ? &stats_.hw_init : nullptr);
  if (prov) {
    // bound_witness attains the pre-cap maximum, so its true eccentricity
    // equals the bound (or exceeds it when the cap knob weakened the bound
    // — the auditor relaxes the capped first entry to <=).
    prov->bound_raised(-1, bound, bound_witness,
                       obs::ProvStage::kTwoSweepSeed, count_active());
  }

  // The first BFS visits exactly u's component: fewer vertices than the
  // non-isolated count means the input is disconnected (paper §1: the true
  // diameter is then infinite and we report the largest CC eccentricity).
  {
    vid_t non_isolated = 0;
    for (vid_t v = 0; v < n; ++v) {
      if (g_.degree(v) > 0) ++non_isolated;
    }
    const vid_t isolated = n - non_isolated;
    result.connected = isolated == 0 && engine_.last_visited_count() == n;
  }

  // --- Winnow (§4.2) and Chain Processing (§4.3) --------------------------
  if (opt_.use_winnow) {
    set_stage(UtilStage::kWinnow);
    Timer t;
    const obs::HwCounters hw0 = hw_snapshot();
    winnow_extend(bound);
    stats_.hw_winnow += obs::HwCounters::delta(hw_snapshot(), hw0);
    stats_.time_winnow += t.seconds();
  }
  if (opt_.use_chain) {
    set_stage(UtilStage::kChain);
    Timer t;
    const obs::HwCounters hw0 = hw_snapshot();
    const vid_t anchors = process_chains();
    const obs::HwCounters hw_d = obs::HwCounters::delta(hw_snapshot(), hw0);
    stats_.hw_chain += hw_d;
    const double chain_seconds = t.seconds();
    stats_.time_chain += chain_seconds;
    if (hist != nullptr) hist->stage_chain.record(chain_seconds);
    dist_t chain_removed = 0;
    for (const Stage tag : stage_tag_) {
      chain_removed += tag == Stage::kChain ? 1 : 0;
    }
    emit(FDiamEvent::Kind::kChainsProcessed, chain_removed, 0, chain_seconds,
         perf_ ? &hw_d : nullptr, static_cast<dist_t>(anchors));
  }

  // --- Main loop (Alg. 1 lines 6-21) --------------------------------------
  // Optionally visit vertices in a deterministic random permutation
  // (paper §4.5); the default id-order scan matches the Alg. 1 listing.
  std::vector<vid_t> scan_order;
  if (opt_.randomize_scan) {
    scan_order.resize(n);
    for (vid_t v = 0; v < n; ++v) scan_order[v] = v;
    Rng rng(opt_.scan_seed);
    for (vid_t i = n; i > 1; --i) {  // Fisher-Yates
      std::swap(scan_order[i - 1],
                scan_order[static_cast<vid_t>(rng.below(i))]);
    }
  }

  auto scan_vertex = [&](vid_t idx) {
    return opt_.randomize_scan ? scan_order[idx] : idx;
  };

  if (opt_.candidate_batch > 1) {
    // The §4.6 rejected alternative: concurrent candidate BFS traversals
    // (each serial), then a serial pruning phase. Batch members may turn
    // out redundant — an earlier member's Eliminate would have removed
    // them — which is exactly why the paper chose parallel-inside-BFS.
    const auto batch_size = static_cast<std::size_t>(opt_.candidate_batch);
    std::vector<vid_t> batch;
    std::vector<dist_t> batch_ecc;
    BfsStats batch_bfs;  // per-thread engine counters, merged per batch
    vid_t idx = 0;
    while (idx < n && !result.timed_out) {
      heartbeat_tick(bound);
      batch.clear();
      while (idx < n && batch.size() < batch_size) {
        const vid_t v = scan_vertex(idx++);
        if (state_[v] == kActiveState) batch.push_back(v);
      }
      if (batch.empty()) break;
      if (budget_exhausted()) {
        result.timed_out = true;
        break;
      }

      Timer t_ecc;
      set_stage(UtilStage::kEcc);
      const obs::HwCounters hw_batch0 = hw_snapshot();
      batch_ecc.assign(batch.size(), 0);
      {
        // Scoped tightly around the parallel region: the serial pruning
        // phase below opens its own (winnow/extend) regions, and region
        // scopes must not nest.
        RegionScope region(RegionKind::kBatchEcc);
#pragma omp parallel if (opt_.parallel)
        {
          // Per-thread serial engine: multiple traversals in flight, no
          // parallelism inside any one of them.
          BfsEngine local(g_, BfsConfig{false, opt_.direction_optimizing,
                                        opt_.bottomup_threshold});
          if (opt_.level_profile) local.set_level_hook(opt_.level_profile);
          if (hist != nullptr) {
            local.set_frontier_histogram(&hist->frontier);  // lock-free
          }
#pragma omp for schedule(dynamic, 1) nowait
          for (std::int64_t i = 0;
               i < static_cast<std::int64_t>(batch.size()); ++i) {
            batch_ecc[static_cast<std::size_t>(i)] =
                local.eccentricity(batch[static_cast<std::size_t>(i)]);
          }
          region.thread_done(local.stats().edges_examined);
#pragma omp critical(fdiam_batch_bfs_stats)
          batch_bfs += local.stats();
        }
      }
      stats_.ecc_computations += batch.size();
      stats_.hw_ecc += obs::HwCounters::delta(hw_snapshot(), hw_batch0);
      const double batch_seconds = t_ecc.seconds();
      stats_.time_ecc += batch_seconds;
      if (hist != nullptr) {
        // Only the batch is timed (the traversals overlap); attribute
        // each member an equal share so per-BFS counts stay exact, and
        // record the batch itself as one batched-traversal sample.
        const double share =
            batch_seconds / static_cast<double>(batch.size());
        for (std::size_t i = 0; i < batch.size(); ++i) {
          hist->bfs_ecc.record(share);
        }
        hist->msbfs_batch.record(batch_seconds);
      }
      if (prov) {
        prov->set_round(static_cast<std::uint32_t>(stats_.ecc_computations));
      }

      // Serial pruning phase, in batch order.
      for (std::size_t i = 0; i < batch.size(); ++i) {
        const vid_t v = batch[i];
        const dist_t ecc = batch_ecc[i];
        mark_removed(v, ecc, Stage::kEvaluated);
        // record() no-ops when an earlier batch member's Eliminate already
        // claimed v — the first remover keeps attribution, like stage_tag_.
        if (prov) {
          prov->record(v, obs::ProvStage::kEvaluated, v, std::max(bound, ecc),
                       ecc);
        }
        emit(FDiamEvent::Kind::kEccentricity, ecc, v);
        if (ecc > bound) {
          const dist_t old = bound;
          bound = ecc;
          result.witness = v;
          if (flight != nullptr) {
            flight->set_bounds(bound);
            flight->record(obs::FlightRecorder::EventKind::kBound,
                           obs::LogLevel::kInfo, "bound raised", old, bound);
          }
          emit(FDiamEvent::Kind::kBoundRaised, bound, v, 0.0, nullptr, old);
          if (opt_.use_winnow) {
            set_stage(UtilStage::kWinnow);
            const obs::HwCounters hw0 = hw_snapshot();
            winnow_extend(bound);
            stats_.hw_winnow += obs::HwCounters::delta(hw_snapshot(), hw0);
          }
          if (opt_.use_eliminate) {
            set_stage(UtilStage::kEliminate);
            Timer t_ext;
            const obs::HwCounters hw0 = hw_snapshot();
            extend_eliminated(old, bound);
            stats_.hw_eliminate += obs::HwCounters::delta(hw_snapshot(), hw0);
            if (hist != nullptr) {
              // Histogram-only: the batch path deliberately leaves the
              // time_* stage accounting to the batch timer.
              const double ext_seconds = t_ext.seconds();
              hist->stage_extend.record(ext_seconds);
              hist->msbfs_batch.record(ext_seconds);
            }
          }
          if (prov) {
            // Appended after the extensions so the alive count reflects the
            // raise's full pruning effect (keeps the timeline's alive column
            // non-increasing).
            prov->bound_raised(old, bound, v, obs::ProvStage::kEvaluated,
                               count_active());
          }
        } else if (opt_.use_eliminate) {
          set_stage(UtilStage::kEliminate);
          Timer t_elim;
          const obs::HwCounters hw0 = hw_snapshot();
          eliminate(v, ecc, bound, Stage::kEliminate);
          stats_.hw_eliminate += obs::HwCounters::delta(hw_snapshot(), hw0);
          if (hist != nullptr) {
            hist->stage_eliminate.record(t_elim.seconds());
          }
        }
      }
    }
    result.diameter = bound;
    finalize_stats();
    result.stats = stats_;
    result.bfs = engine_.stats();
    result.bfs += batch_bfs;
    finalize_hw(result);
    finish_provenance(result);
    if (flight != nullptr && !result.timed_out) {
      flight->set_bounds(bound, bound);  // proven exact at termination
    }
    emit(FDiamEvent::Kind::kDone, bound, 0, stats_.time_total,
         perf_ ? &result.hardware : nullptr);
    return result;
  }

  for (vid_t idx = 0; idx < n; ++idx) {
    const vid_t v = scan_vertex(idx);
    heartbeat_tick(bound);
    if (state_[v] != kActiveState) continue;
    if (budget_exhausted()) {
      result.timed_out = true;
      break;
    }

    Timer t_ecc;
    set_stage(UtilStage::kEcc);
    const obs::HwCounters hw_ecc0 = hw_snapshot();
    const dist_t ecc = engine_.eccentricity(v);
    ++stats_.ecc_computations;
    const obs::HwCounters hw_ecc_d =
        obs::HwCounters::delta(hw_snapshot(), hw_ecc0);
    stats_.hw_ecc += hw_ecc_d;
    const double ecc_seconds = t_ecc.seconds();
    stats_.time_ecc += ecc_seconds;
    if (hist != nullptr) hist->bfs_ecc.record(ecc_seconds);
    mark_removed(v, ecc, Stage::kEvaluated);
    if (prov) {
      prov->set_round(static_cast<std::uint32_t>(stats_.ecc_computations));
      prov->record(v, obs::ProvStage::kEvaluated, v, std::max(bound, ecc),
                   ecc);
    }
    emit(FDiamEvent::Kind::kEccentricity, ecc, v, ecc_seconds,
         perf_ ? &hw_ecc_d : nullptr);

    if (ecc > bound) {
      // New lower bound: extend the winnowed region and every previously
      // eliminated region (§4.5).
      const dist_t old = bound;
      bound = ecc;
      result.witness = v;
      if (flight != nullptr) {
        flight->set_bounds(bound);
        flight->record(obs::FlightRecorder::EventKind::kBound,
                       obs::LogLevel::kInfo, "bound raised", old, bound);
      }
      emit(FDiamEvent::Kind::kBoundRaised, bound, v, 0.0, nullptr, old);
      if (opt_.use_winnow) {
        set_stage(UtilStage::kWinnow);
        Timer t;
        const obs::HwCounters hw0 = hw_snapshot();
        winnow_extend(bound);
        stats_.hw_winnow += obs::HwCounters::delta(hw_snapshot(), hw0);
        stats_.time_winnow += t.seconds();
      }
      if (opt_.use_eliminate) {
        set_stage(UtilStage::kEliminate);
        Timer t;
        const obs::HwCounters hw0 = hw_snapshot();
        extend_eliminated(old, bound);
        const obs::HwCounters hw_d = obs::HwCounters::delta(hw_snapshot(), hw0);
        stats_.hw_eliminate += hw_d;
        const double ext_seconds = t.seconds();
        stats_.time_eliminate += ext_seconds;
        if (hist != nullptr) {
          hist->stage_extend.record(ext_seconds);
          hist->msbfs_batch.record(ext_seconds);
        }
        emit(FDiamEvent::Kind::kExtendRegions, bound, 0, ext_seconds,
             perf_ ? &hw_d : nullptr);
      }
      if (prov) {
        // Appended after the extensions so the alive count reflects the
        // raise's full pruning effect (keeps the timeline's alive column
        // non-increasing).
        prov->bound_raised(old, bound, v, obs::ProvStage::kEvaluated,
                           count_active());
      }
    } else if (opt_.use_eliminate) {
      // ecc == bound removes only v itself (already recorded above);
      // eliminate() is a no-op in that case (paper §4.5).
      set_stage(UtilStage::kEliminate);
      Timer t;
      const obs::HwCounters hw0 = hw_snapshot();
      eliminate(v, ecc, bound, Stage::kEliminate);
      const obs::HwCounters hw_d = obs::HwCounters::delta(hw_snapshot(), hw0);
      stats_.hw_eliminate += hw_d;
      const double elim_seconds = t.seconds();
      stats_.time_eliminate += elim_seconds;
      if (hist != nullptr) hist->stage_eliminate.record(elim_seconds);
      if (ecc < bound) {
        emit(FDiamEvent::Kind::kEliminate, bound - ecc, v, elim_seconds,
             perf_ ? &hw_d : nullptr);
      }
    }
  }

  result.diameter = bound;
  finalize_stats();
  result.stats = stats_;
  result.bfs = engine_.stats();
  finalize_hw(result);
  finish_provenance(result);
  if (flight != nullptr && !result.timed_out) {
    flight->set_bounds(bound, bound);  // proven exact at termination
  }
  emit(FDiamEvent::Kind::kDone, bound, 0, stats_.time_total,
       perf_ ? &result.hardware : nullptr);
  return result;
}

DiameterResult fdiam_diameter(const Csr& g, FDiamOptions opt) {
  FDiam solver(g, opt);
  return solver.run();
}

DiameterResult fdiam_diameter_reordered(const Csr& g, ReorderMode mode,
                                        FDiamOptions opt,
                                        std::uint64_t seed) {
  if (mode == ReorderMode::kNone || g.num_vertices() == 0) {
    // The n == 0 guard matters: translating the default witness 0 through
    // an empty inverse permutation would read out of bounds.
    return fdiam_diameter(g, opt);
  }
  const Permutation new_id = make_order(g, mode, seed);
  const Csr permuted = apply_permutation(g, new_id);
  DiameterResult result = fdiam_diameter(permuted, opt);
  // The witness lives in permuted-id space; hand the caller their own id.
  const Permutation inverse = inverse_permutation(new_id);
  result.witness = inverse[result.witness];
  // Same for every vertex id baked into the provenance log.
  if (opt.provenance) opt.provenance->translate(inverse);
  return result;
}

}  // namespace fdiam
