// Winnow (paper §4.2, Alg. 3) — the key novelty of F-Diam.
//
// Given a lower bound `bound` on the diameter, every vertex within
// floor(bound/2) steps of the winnow center u can be removed from
// consideration: if a pair of vertices more than `bound` apart exists, at
// least one of the two lies outside that ball (two vertices inside can
// reach each other through u in at most 2*floor(bound/2) <= bound steps),
// and by Theorem 2 at least one vertex of maximum eccentricity therefore
// stays active. Winnowing is only ever done around ONE vertex — a second
// winnow ball would break the Theorem-2 guarantee.
//
// The ball is grown with a partial level-synchronous BFS whose frontier is
// kept across calls, so raising the bound later extends the region
// incrementally instead of re-traversing it (paper §4.5).

#include <atomic>
#include <cstdint>

#include "core/fdiam.hpp"
#include "obs/metrics/metrics_report.hpp"
#include "obs/provenance.hpp"

namespace fdiam {

void FDiam::winnow_extend(dist_t bound) {
  const dist_t target_radius = bound / 2;
  if (target_radius <= winnow_radius_ && winnow_radius_ > 0) return;

  if (winnow_radius_ == 0 && winnow_frontier_.empty()) {
    // First invocation: seed the ball at the center. The center itself is
    // not marked — its exact eccentricity is already recorded by the
    // 2-sweep (Alg. 3 only marks discovered neighbors).
    in_winnow_region_[winnow_center_] = 1;
    winnow_frontier_.push_back(winnow_center_);
  }
  if (target_radius <= winnow_radius_) return;

  ++stats_.winnow_calls;  // Table 3 counts each (partial) winnow traversal
  Timer winnow_timer;     // duration is reported on the kWinnow event
  const obs::HwCounters hw_before = hw_snapshot();
  obs::ProvenanceCollector* const prov = opt_.provenance;

  std::uint64_t removed = 0;
  while (winnow_radius_ < target_radius && !winnow_frontier_.empty()) {
    aux_next_.clear();
    const auto fsize = static_cast<std::int64_t>(winnow_frontier_.size());

    if (opt_.parallel) {
      RegionScope region(RegionKind::kWinnow);
#pragma omp parallel reduction(+ : removed)
      {
        Frontier::Local local(aux_next_);
        std::uint64_t edges = 0;
#pragma omp for schedule(dynamic, 64) nowait
        for (std::int64_t i = 0; i < fsize; ++i) {
          const vid_t v = winnow_frontier_[static_cast<std::size_t>(i)];
          edges += g_.neighbors(v).size();
          for (const vid_t w : g_.neighbors(v)) {
            std::uint8_t expected = 0;
            // Atomically claim membership in the ball; exactly one thread
            // wins and becomes responsible for marking w.
            std::atomic_ref<std::uint8_t> member(in_winnow_region_[w]);
            if (member.compare_exchange_strong(expected, 1,
                                               std::memory_order_relaxed)) {
              if (state_[w] == kActiveState) {
                state_[w] = kWinnowedState;
                stage_tag_[w] = Stage::kWinnow;
                // The CAS winner owns w's cells exclusively, so the
                // provenance record write is race-free like state_[w].
                if (prov) {
                  prov->record(w, obs::ProvStage::kWinnow, winnow_center_,
                               bound, kWinnowedState);
                }
                ++removed;
              }
              local.push(w);
            }
          }
        }
        region.thread_done(edges);
      }
    } else {
      for (std::int64_t i = 0; i < fsize; ++i) {
        const vid_t v = winnow_frontier_[static_cast<std::size_t>(i)];
        for (const vid_t w : g_.neighbors(v)) {
          if (in_winnow_region_[w] == 0) {
            in_winnow_region_[w] = 1;
            if (state_[w] == kActiveState) {
              state_[w] = kWinnowedState;
              stage_tag_[w] = Stage::kWinnow;
              if (prov) {
                prov->record(w, obs::ProvStage::kWinnow, winnow_center_,
                             bound, kWinnowedState);
              }
              ++removed;
            }
            aux_next_.push(w);
          }
        }
      }
    }

    ++winnow_radius_;
    const auto next = aux_next_.view();
    winnow_frontier_.assign(next.begin(), next.end());
  }
  (void)removed;  // attribution is tallied from stage_tag_ in finalize_stats
  const obs::HwCounters hw_d = obs::HwCounters::delta(hw_snapshot(), hw_before);
  const double winnow_seconds = winnow_timer.seconds();
  if (opt_.histograms != nullptr) {
    // One sample per winnow_calls increment: the early returns above skip
    // both, so this histogram's count equals stats_.winnow_calls exactly
    // (json_check cross-checks Σ fdiam.bfs.seconds counts == bfs_calls).
    opt_.histograms->bfs_winnow.record(winnow_seconds);
  }
  emit(FDiamEvent::Kind::kWinnow, target_radius, winnow_center_,
       winnow_seconds, perf_ ? &hw_d : nullptr);
}

}  // namespace fdiam
