#include "core/two_sweep.hpp"

#include <algorithm>
#include <cassert>
#include <vector>

namespace fdiam {

TwoSweepResult two_sweep(BfsEngine& engine, vid_t start) {
  TwoSweepResult r;
  r.start_ecc = engine.eccentricity(start);
  r.periphery = engine.last_frontier()[0];
  r.lower_bound = r.periphery == start
                      ? r.start_ecc
                      : engine.eccentricity(r.periphery);
  return r;
}

vid_t path_midpoint(const Csr& g, const std::vector<dist_t>& dist,
                    vid_t far_end) {
  assert(dist[far_end] >= 0);
  vid_t cur = far_end;
  dist_t d = dist[far_end];
  const dist_t target = d / 2;
  // Greedy descent: any neighbor one level closer to the root lies on a
  // shortest path, so repeatedly stepping down reaches the midpoint.
  while (d > target) {
    for (const vid_t w : g.neighbors(cur)) {
      if (dist[w] == d - 1) {
        cur = w;
        --d;
        break;
      }
    }
  }
  return cur;
}

FourSweepResult four_sweep(BfsEngine& engine, vid_t start) {
  const Csr& g = engine.graph();
  std::vector<dist_t> dist;

  // Double sweep 1: start -> a1 -> b1, midpoint r2.
  engine.distances(start, dist);
  const vid_t a1 = engine.last_frontier()[0];
  const dist_t ecc_a1 = engine.distances(a1, dist);
  const vid_t b1 = engine.last_frontier()[0];
  const vid_t r2 = path_midpoint(g, dist, b1);

  // Double sweep 2: r2 -> a2 -> b2, midpoint = final center.
  engine.distances(r2, dist);
  const vid_t a2 = engine.last_frontier()[0];
  const dist_t ecc_a2 = engine.distances(a2, dist);
  const vid_t b2 = engine.last_frontier()[0];

  FourSweepResult r;
  r.center = path_midpoint(g, dist, b2);
  r.lower_bound = std::max(ecc_a1, ecc_a2);
  r.witness = ecc_a2 >= ecc_a1 ? a2 : a1;
  return r;
}

}  // namespace fdiam
