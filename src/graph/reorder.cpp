#include "graph/reorder.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "util/rng.hpp"

namespace fdiam {

bool is_permutation(const Csr& g, const Permutation& perm) {
  const vid_t n = g.num_vertices();
  if (perm.size() != n) return false;
  std::vector<bool> seen(n, false);
  for (const vid_t v : perm) {
    if (v >= n || seen[v]) return false;
    seen[v] = true;
  }
  return true;
}

Csr apply_permutation(const Csr& g, const Permutation& new_id) {
  if (!is_permutation(g, new_id)) {
    throw std::invalid_argument("apply_permutation: not a bijection");
  }
  EdgeList edges(g.num_vertices());
  edges.reserve(g.num_edges());
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    for (const vid_t w : g.neighbors(v)) {
      if (v < w) edges.add(new_id[v], new_id[w]);
    }
  }
  return Csr::from_edges(std::move(edges));
}

Permutation degree_order(const Csr& g) {
  const vid_t n = g.num_vertices();
  std::vector<vid_t> by_degree(n);
  std::iota(by_degree.begin(), by_degree.end(), 0);
  std::stable_sort(by_degree.begin(), by_degree.end(),
                   [&g](vid_t a, vid_t b) { return g.degree(a) > g.degree(b); });
  Permutation new_id(n);
  for (vid_t rank = 0; rank < n; ++rank) new_id[by_degree[rank]] = rank;
  return new_id;
}

Permutation bfs_order(const Csr& g) {
  const vid_t n = g.num_vertices();
  Permutation new_id(n, n);  // n = unassigned sentinel
  vid_t next = 0;
  std::vector<vid_t> queue;
  queue.reserve(1024);

  // Components in descending max-degree order of their seed: start each
  // BFS at the component's highest-degree vertex, like F-Diam does.
  std::vector<vid_t> seeds(n);
  std::iota(seeds.begin(), seeds.end(), 0);
  std::stable_sort(seeds.begin(), seeds.end(), [&g](vid_t a, vid_t b) {
    return g.degree(a) > g.degree(b);
  });

  for (const vid_t seed : seeds) {
    if (new_id[seed] != n) continue;
    new_id[seed] = next++;
    queue.clear();
    queue.push_back(seed);
    std::size_t head = 0;
    while (head < queue.size()) {
      const vid_t v = queue[head++];
      for (const vid_t w : g.neighbors(v)) {
        if (new_id[w] == n) {
          new_id[w] = next++;
          queue.push_back(w);
        }
      }
    }
  }
  return new_id;
}

Permutation random_order(const Csr& g, std::uint64_t seed) {
  const vid_t n = g.num_vertices();
  Permutation new_id(n);
  std::iota(new_id.begin(), new_id.end(), 0);
  Rng rng(seed);
  for (vid_t i = n; i > 1; --i) {
    std::swap(new_id[i - 1], new_id[static_cast<vid_t>(rng.below(i))]);
  }
  return new_id;
}

std::optional<ReorderMode> parse_reorder_mode(std::string_view name) {
  if (name == "none") return ReorderMode::kNone;
  if (name == "degree") return ReorderMode::kDegree;
  if (name == "bfs") return ReorderMode::kBfs;
  if (name == "random") return ReorderMode::kRandom;
  return std::nullopt;
}

const char* reorder_mode_name(ReorderMode mode) {
  switch (mode) {
    case ReorderMode::kDegree: return "degree";
    case ReorderMode::kBfs: return "bfs";
    case ReorderMode::kRandom: return "random";
    case ReorderMode::kNone: break;
  }
  return "none";
}

Permutation make_order(const Csr& g, ReorderMode mode, std::uint64_t seed) {
  switch (mode) {
    case ReorderMode::kDegree: return degree_order(g);
    case ReorderMode::kBfs: return bfs_order(g);
    case ReorderMode::kRandom: return random_order(g, seed);
    case ReorderMode::kNone: break;
  }
  Permutation identity(g.num_vertices());
  std::iota(identity.begin(), identity.end(), 0);
  return identity;
}

Permutation inverse_permutation(const Permutation& new_id) {
  Permutation inverse(new_id.size());
  for (vid_t old_id = 0; old_id < static_cast<vid_t>(new_id.size());
       ++old_id) {
    inverse[new_id[old_id]] = old_id;
  }
  return inverse;
}

}  // namespace fdiam
