#pragma once
// Graph statistics in the shape of the paper's Table 1 (vertices, edges,
// average/max degree) plus degree histograms used by the generators' tests.

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace fdiam {

struct GraphStats {
  vid_t vertices = 0;
  eid_t arcs = 0;          // directed arcs, as the paper counts "edges"
  double avg_degree = 0.0;
  vid_t max_degree = 0;
  vid_t degree0 = 0;       // isolated vertices (Table 4 last column)
  vid_t degree1 = 0;       // chain tails (chain-processing fodder)
  vid_t degree2 = 0;
  std::uint32_t num_components = 0;
  vid_t largest_component = 0;
};

/// Compute the statistics above. Runs one component census (BFS sweep).
GraphStats compute_stats(const Csr& g);

/// degree -> count histogram, capped: the last bucket aggregates all
/// degrees >= max_bucket.
std::vector<std::uint64_t> degree_histogram(const Csr& g,
                                            vid_t max_bucket = 64);

}  // namespace fdiam
