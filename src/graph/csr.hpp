#pragma once
// Compressed-sparse-row graph container — the representation every
// algorithm in this library operates on (paper §2: "F-Diam uses the
// compressed-sparse-row (CSR) representation to fit sparse graphs with many
// millions of vertices and edges into the main memory").
//
// The graph is undirected: each undirected edge {u, v} is stored as the two
// directed arcs (u,v) and (v,u), matching how the paper counts "edges
// (including back edges)" in Table 1.
//
// Storage is dual-mode (the out-of-core tier, docs/SCALING.md): the
// offsets/neighbors accessors are std::span views that either cover owned
// std::vector storage (from_edges/from_raw — the classic in-memory path)
// or point straight into a read-only mmap of a .csrbin file
// (from_mapped/io::map_binary — zero-copy, the graph bytes stay in the
// page cache and never enter anonymous memory). Every algorithm reads
// through the views, so both modes are bit-identical to traverse.

#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "graph/edge_list.hpp"
#include "util/types.hpp"

namespace fdiam {

namespace util {
class MappedFile;
}

class Csr {
 public:
  Csr() = default;
  ~Csr() = default;

  // Copying an owned graph deep-copies the vectors and rebinds the views;
  // copying a mapped graph shares the mapping (shared_ptr) — both cheap
  // relative to, and exactly as valid as, the original.
  Csr(const Csr& o) { *this = o; }
  Csr& operator=(const Csr& o);
  // Moves transfer vector storage (data pointers are stable under
  // std::vector move) or the mapping; views stay valid either way.
  Csr(Csr&& o) noexcept { *this = std::move(o); }
  Csr& operator=(Csr&& o) noexcept;

  /// Build from an edge list. Self-loops and duplicate undirected edges are
  /// removed; adjacency lists come out sorted by neighbor id.
  static Csr from_edges(EdgeList edges);

  /// Build directly from CSR arrays (used by the binary loader). Offsets
  /// must be monotonically increasing with offsets[n] == neighbors.size().
  static Csr from_raw(std::vector<eid_t> offsets, std::vector<vid_t> neighbors);

  /// Zero-copy view over CSR arrays inside `file` (io::map_binary builds
  /// these from a v2 .csrbin mapping). The mapping is kept alive by the
  /// returned graph and all its copies. Offsets are always validated
  /// (monotone, consistent with `neighbors.size()` — they gate every
  /// indexing operation); the O(m) neighbor range scan runs only when
  /// `verify_neighbors` is set, because it faults in the whole file
  /// (callers that just built or already checked the file skip it).
  /// Throws std::invalid_argument on inconsistent arrays.
  static Csr from_mapped(std::shared_ptr<util::MappedFile> file,
                         std::span<const eid_t> offsets,
                         std::span<const vid_t> neighbors,
                         bool verify_neighbors = true);

  [[nodiscard]] vid_t num_vertices() const {
    return offsets_view_.empty()
               ? 0
               : static_cast<vid_t>(offsets_view_.size() - 1);
  }

  /// Number of directed arcs (= 2x the undirected edge count), matching the
  /// paper's Table 1 "edges" column.
  [[nodiscard]] eid_t num_arcs() const { return neighbors_view_.size(); }

  /// Number of undirected edges.
  [[nodiscard]] eid_t num_edges() const { return num_arcs() / 2; }

  [[nodiscard]] vid_t degree(vid_t v) const {
    return static_cast<vid_t>(offsets_view_[v + 1] - offsets_view_[v]);
  }

  [[nodiscard]] std::span<const vid_t> neighbors(vid_t v) const {
    return {neighbors_view_.data() + offsets_view_[v],
            neighbors_view_.data() + offsets_view_[v + 1]};
  }

  /// Vertex with the largest degree (smallest id wins ties); the paper's
  /// starting vertex `u`. Returns 0 on an empty graph.
  [[nodiscard]] vid_t max_degree_vertex() const;

  [[nodiscard]] vid_t max_degree() const;

  [[nodiscard]] bool has_edge(vid_t u, vid_t v) const;

  /// Raw arrays, exposed for the binary writer and the bottom-up BFS.
  /// Views — valid for the lifetime of this graph (and of the mapping it
  /// may share).
  [[nodiscard]] std::span<const eid_t> offsets() const {
    return offsets_view_;
  }
  [[nodiscard]] std::span<const vid_t> raw_neighbors() const {
    return neighbors_view_;
  }

  /// True when the arrays live in a read-only file mapping (zero-copy
  /// load) rather than owned heap vectors.
  [[nodiscard]] bool is_mapped() const { return mapping_ != nullptr; }

  /// Structural invariants (sorted adjacency, symmetric arcs, no loops).
  /// Cheap enough for tests; O(m log m) worst case.
  [[nodiscard]] bool validate() const;

 private:
  // Rebind the views onto the owned vectors (after building or copying).
  void bind_owned() {
    offsets_view_ = offsets_;
    neighbors_view_ = neighbors_;
  }

  std::vector<eid_t> offsets_;    // owned storage; empty when mapped
  std::vector<vid_t> neighbors_;  // owned storage; empty when mapped
  std::span<const eid_t> offsets_view_;    // size n+1 (empty graph: empty)
  std::span<const vid_t> neighbors_view_;  // size num_arcs
  std::shared_ptr<util::MappedFile> mapping_;  // keeps a mmap view alive
};

}  // namespace fdiam
