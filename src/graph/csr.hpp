#pragma once
// Compressed-sparse-row graph container — the representation every
// algorithm in this library operates on (paper §2: "F-Diam uses the
// compressed-sparse-row (CSR) representation to fit sparse graphs with many
// millions of vertices and edges into the main memory").
//
// The graph is undirected: each undirected edge {u, v} is stored as the two
// directed arcs (u,v) and (v,u), matching how the paper counts "edges
// (including back edges)" in Table 1.

#include <span>
#include <vector>

#include "graph/edge_list.hpp"
#include "util/types.hpp"

namespace fdiam {

class Csr {
 public:
  Csr() = default;

  /// Build from an edge list. Self-loops and duplicate undirected edges are
  /// removed; adjacency lists come out sorted by neighbor id.
  static Csr from_edges(EdgeList edges);

  /// Build directly from CSR arrays (used by the binary loader). Offsets
  /// must be monotonically increasing with offsets[n] == neighbors.size().
  static Csr from_raw(std::vector<eid_t> offsets, std::vector<vid_t> neighbors);

  [[nodiscard]] vid_t num_vertices() const {
    return offsets_.empty() ? 0 : static_cast<vid_t>(offsets_.size() - 1);
  }

  /// Number of directed arcs (= 2x the undirected edge count), matching the
  /// paper's Table 1 "edges" column.
  [[nodiscard]] eid_t num_arcs() const { return neighbors_.size(); }

  /// Number of undirected edges.
  [[nodiscard]] eid_t num_edges() const { return num_arcs() / 2; }

  [[nodiscard]] vid_t degree(vid_t v) const {
    return static_cast<vid_t>(offsets_[v + 1] - offsets_[v]);
  }

  [[nodiscard]] std::span<const vid_t> neighbors(vid_t v) const {
    return {neighbors_.data() + offsets_[v],
            neighbors_.data() + offsets_[v + 1]};
  }

  /// Vertex with the largest degree (smallest id wins ties); the paper's
  /// starting vertex `u`. Returns 0 on an empty graph.
  [[nodiscard]] vid_t max_degree_vertex() const;

  [[nodiscard]] vid_t max_degree() const;

  [[nodiscard]] bool has_edge(vid_t u, vid_t v) const;

  /// Raw arrays, exposed for the binary writer and the bottom-up BFS.
  [[nodiscard]] const std::vector<eid_t>& offsets() const { return offsets_; }
  [[nodiscard]] const std::vector<vid_t>& raw_neighbors() const {
    return neighbors_;
  }

  /// Structural invariants (sorted adjacency, symmetric arcs, no loops).
  /// Cheap enough for tests; O(m log m) worst case.
  [[nodiscard]] bool validate() const;

 private:
  std::vector<eid_t> offsets_;   // size n+1
  std::vector<vid_t> neighbors_; // size num_arcs
};

}  // namespace fdiam
