#pragma once
// Intermediate edge-list representation produced by generators and file
// loaders, and consumed by the CSR builder.

#include <cassert>
#include <cstddef>
#include <limits>
#include <vector>

#include "util/types.hpp"

namespace fdiam {

struct Edge {
  vid_t u = 0;
  vid_t v = 0;
  friend bool operator==(const Edge&, const Edge&) = default;
};

/// A bag of undirected edges over vertices [0, num_vertices).
/// Duplicates and self-loops are permitted here; the CSR builder
/// canonicalizes them.
class EdgeList {
 public:
  EdgeList() = default;
  explicit EdgeList(vid_t num_vertices) : num_vertices_(num_vertices) {}

  void reserve(std::size_t edges) { edges_.reserve(edges); }

  /// Add an undirected edge {u, v}; grows the vertex count if needed.
  /// Precondition: ids stay below the vid_t maximum so `id + 1` cannot
  /// wrap the vertex count to 0 (the io/ readers enforce this on untrusted
  /// input via io::checked_vid; generators satisfy it by construction).
  void add(vid_t u, vid_t v) {
    assert(u < std::numeric_limits<vid_t>::max() &&
           v < std::numeric_limits<vid_t>::max());
    if (u >= num_vertices_) num_vertices_ = u + 1;
    if (v >= num_vertices_) num_vertices_ = v + 1;
    edges_.push_back({u, v});
  }

  /// Ensure the graph has at least `n` vertices (isolated ones included).
  void ensure_vertices(vid_t n) {
    if (n > num_vertices_) num_vertices_ = n;
  }

  [[nodiscard]] vid_t num_vertices() const { return num_vertices_; }
  [[nodiscard]] std::size_t size() const { return edges_.size(); }
  [[nodiscard]] const std::vector<Edge>& edges() const { return edges_; }
  [[nodiscard]] std::vector<Edge>& edges() { return edges_; }

  /// Remove exact duplicate pairs and self-loops (treating {u,v} == {v,u}).
  void canonicalize();

 private:
  vid_t num_vertices_ = 0;
  std::vector<Edge> edges_;
};

}  // namespace fdiam
