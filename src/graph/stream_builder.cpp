#include "graph/stream_builder.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <queue>
#include <stdexcept>
#include <string>
#include <utility>

#include "io/io.hpp"
#include "io/parse.hpp"
#include "io/raw_writer.hpp"

namespace fdiam {

namespace {

constexpr std::uint64_t kLowMask = 0xffffffffull;

std::uint64_t pack(vid_t hi, vid_t lo) {
  return (static_cast<std::uint64_t>(hi) << 32) | lo;
}

/// Sequential reader over one sorted spill run (raw u64 records).
class RunReader {
 public:
  RunReader(const std::filesystem::path& path, std::size_t buf_entries)
      : f_(std::fopen(path.string().c_str(), "rb")) {
    if (f_ == nullptr) {
      throw std::runtime_error("cannot reopen spill run " + path.string());
    }
    buf_.resize(std::max<std::size_t>(buf_entries, 4096));
  }
  ~RunReader() {
    if (f_ != nullptr) std::fclose(f_);
  }
  RunReader(RunReader&& o) noexcept
      : f_(std::exchange(o.f_, nullptr)),
        buf_(std::move(o.buf_)),
        pos_(o.pos_),
        len_(o.len_) {}
  RunReader(const RunReader&) = delete;
  RunReader& operator=(const RunReader&) = delete;
  RunReader& operator=(RunReader&&) = delete;

  bool next(std::uint64_t& out) {
    if (pos_ == len_) {
      len_ = std::fread(buf_.data(), sizeof(std::uint64_t), buf_.size(), f_);
      pos_ = 0;
      if (len_ == 0) return false;
    }
    out = buf_[pos_++];
    return true;
  }

 private:
  std::FILE* f_ = nullptr;
  std::vector<std::uint64_t> buf_;
  std::size_t pos_ = 0;
  std::size_t len_ = 0;
};

/// K-way merge over sorted runs, optionally collapsing duplicate keys.
/// Runs are re-mergeable (the canonical runs are merged twice — once to
/// count degrees, once as the forward arc stream) because merging is
/// deterministic and never mutates the run files.
class RunMerger {
 public:
  RunMerger(const std::vector<std::filesystem::path>& runs,
            std::size_t buf_entries_per_run, bool dedup)
      : dedup_(dedup) {
    readers_.reserve(runs.size());
    for (const auto& r : runs) {
      readers_.emplace_back(r, buf_entries_per_run);
      std::uint64_t v = 0;
      if (readers_.back().next(v)) {
        heap_.emplace(v, readers_.size() - 1);
      }
    }
  }

  bool next(std::uint64_t& out) {
    while (!heap_.empty()) {
      const auto [value, idx] = heap_.top();
      heap_.pop();
      std::uint64_t refill = 0;
      if (readers_[idx].next(refill)) heap_.emplace(refill, idx);
      if (dedup_ && has_last_ && value == last_) continue;
      has_last_ = true;
      last_ = value;
      out = value;
      return true;
    }
    return false;
  }

 private:
  std::vector<RunReader> readers_;
  std::priority_queue<std::pair<std::uint64_t, std::size_t>,
                      std::vector<std::pair<std::uint64_t, std::size_t>>,
                      std::greater<>>
      heap_;
  bool dedup_;
  bool has_last_ = false;
  std::uint64_t last_ = 0;
};

void remove_all(std::vector<std::filesystem::path>& files) {
  std::error_code ignored;
  for (const auto& f : files) std::filesystem::remove(f, ignored);
  files.clear();
}

}  // namespace

StreamCsrBuilder::StreamCsrBuilder(std::filesystem::path output,
                                   StreamBuildOptions options)
    : output_(std::move(output)), options_(std::move(options)) {
  if (options_.temp_dir.empty()) {
    options_.temp_dir = output_.has_parent_path() ? output_.parent_path()
                                                  : std::filesystem::path(".");
  }
  // Half the budget goes to the chunk buffer (the other half covers merge
  // read buffers and write staging later — the two phases don't overlap,
  // but the OS may not return freed chunk memory, so stay conservative).
  chunk_cap_ = std::max<std::size_t>(
      std::size_t{1} << 16,
      static_cast<std::size_t>(options_.mem_budget_bytes / 2 /
                               sizeof(std::uint64_t)));
  chunk_.reserve(chunk_cap_);
}

StreamCsrBuilder::~StreamCsrBuilder() {
  remove_all(runs_);
}

void StreamCsrBuilder::add_edge(vid_t u, vid_t v) {
  ++stats_.edges_in;
  const std::uint64_t top = std::max(u, v);
  if (top + 1 > n_) n_ = top + 1;
  if (u == v) return;  // self-loop: counts toward n, never becomes an arc
  chunk_.push_back(u < v ? pack(u, v) : pack(v, u));
  if (chunk_.size() >= chunk_cap_) spill_chunk();
}

void StreamCsrBuilder::spill_chunk() {
  if (chunk_.empty()) return;
  std::sort(chunk_.begin(), chunk_.end());
  chunk_.erase(std::unique(chunk_.begin(), chunk_.end()), chunk_.end());
  std::filesystem::path run =
      options_.temp_dir /
      (output_.filename().string() + ".run" + std::to_string(runs_.size()));
  io::RawWriter out(run);
  out.write(chunk_.data(), chunk_.size() * sizeof(std::uint64_t));
  out.finish(false);
  runs_.push_back(std::move(run));
  ++stats_.chunks_spilled;
  stats_.spill_bytes += chunk_.size() * sizeof(std::uint64_t);
  chunk_.clear();
}

StreamBuildStats StreamCsrBuilder::finish() {
  if (finished_) {
    throw std::logic_error("StreamCsrBuilder::finish called twice");
  }
  finished_ = true;
  spill_chunk();
  stats_.num_vertices = n_;

  // Per-run read buffers: a quarter of the budget across every reader the
  // final pass has open at once (canonical merge + swapped merge).
  const std::size_t max_readers = 2 * std::max<std::size_t>(runs_.size(), 1);
  const std::size_t buf_entries = std::clamp<std::size_t>(
      static_cast<std::size_t>(options_.mem_budget_bytes / 4) /
          (max_readers * sizeof(std::uint64_t)),
      4096, std::size_t{1} << 22);

  // Pass 1: merge+dedup the canonical runs to count degrees, spilling the
  // swapped (max,min) keys into a second set of sorted runs.
  std::vector<std::uint32_t> degree(n_, 0);
  std::vector<std::filesystem::path> swap_runs;
  try {
    {
      // Reuse the (now empty) chunk buffer for the swapped keys.
      auto spill_swapped = [&] {
        if (chunk_.empty()) return;
        std::sort(chunk_.begin(), chunk_.end());
        std::filesystem::path run =
            options_.temp_dir / (output_.filename().string() + ".swp" +
                                 std::to_string(swap_runs.size()));
        io::RawWriter out(run);
        out.write(chunk_.data(), chunk_.size() * sizeof(std::uint64_t));
        out.finish(false);
        swap_runs.push_back(std::move(run));
        ++stats_.chunks_spilled;
        stats_.spill_bytes += chunk_.size() * sizeof(std::uint64_t);
        chunk_.clear();
      };
      RunMerger canon(runs_, buf_entries, /*dedup=*/true);
      std::uint64_t key = 0;
      while (canon.next(key)) {
        const auto u = static_cast<vid_t>(key >> 32);
        const auto v = static_cast<vid_t>(key & kLowMask);
        ++degree[u];
        ++degree[v];
        ++stats_.edges_unique;
        chunk_.push_back(pack(v, u));
        if (chunk_.size() >= chunk_cap_) spill_swapped();
      }
      spill_swapped();
      chunk_.clear();
      chunk_.shrink_to_fit();
    }
    if (options_.checkpoint) options_.checkpoint("degrees");

    const std::uint64_t arcs = 2 * stats_.edges_unique;
    const std::uint64_t offsets_off = io::csrbin::kHeaderBytes;
    const std::uint64_t neighbors_off =
        io::csrbin::align_up(offsets_off + (n_ + 1) * sizeof(eid_t));

    io::RawWriter out(output_);
    {
      std::byte header[io::csrbin::kHeaderBytes] = {};
      std::memcpy(header, io::csrbin::kMagic, 8);
      std::memcpy(header + 8, &io::csrbin::kVersion, 4);
      std::memcpy(header + 12, &io::csrbin::kEndianMark, 4);
      std::memcpy(header + 16, &n_, 8);
      std::memcpy(header + 24, &arcs, 8);
      std::memcpy(header + 32, &offsets_off, 8);
      std::memcpy(header + 40, &neighbors_off, 8);
      out.write(header, sizeof header);
    }

    // Offsets section: prefix sums of the degrees, streamed in chunks.
    {
      std::vector<eid_t> staging;
      staging.reserve(std::size_t{1} << 19);
      eid_t running = 0;
      staging.push_back(running);
      for (std::uint64_t v = 0; v < n_; ++v) {
        running += degree[v];
        staging.push_back(running);
        if (staging.size() == staging.capacity()) {
          out.write(staging.data(), staging.size() * sizeof(eid_t));
          staging.clear();
        }
      }
      out.write(staging.data(), staging.size() * sizeof(eid_t));
      out.pad(neighbors_off - offsets_off - (n_ + 1) * sizeof(eid_t));
    }
    degree.clear();
    degree.shrink_to_fit();
    if (options_.checkpoint) options_.checkpoint("offsets");

    // Pass 2: both streams are sorted by (source << 32 | neighbor) — the
    // forward arcs (u < v) from re-merging the canonical runs, the
    // backward arcs (v > u) from the swapped runs — so a plain 2-way
    // merge of the packed keys emits the neighbors section in exact CSR
    // order in one sequential pass.
    {
      RunMerger forward(runs_, buf_entries, /*dedup=*/true);
      RunMerger backward(swap_runs, buf_entries, /*dedup=*/false);
      std::vector<vid_t> staging;
      staging.reserve(std::size_t{1} << 20);
      auto emit = [&](std::uint64_t key) {
        staging.push_back(static_cast<vid_t>(key & kLowMask));
        if (staging.size() == staging.capacity()) {
          out.write(staging.data(), staging.size() * sizeof(vid_t));
          staging.clear();
        }
      };
      std::uint64_t f = 0, b = 0;
      bool has_f = forward.next(f);
      bool has_b = backward.next(b);
      while (has_f || has_b) {
        if (!has_b || (has_f && f < b)) {
          emit(f);
          has_f = forward.next(f);
        } else {
          emit(b);
          has_b = backward.next(b);
        }
      }
      out.write(staging.data(), staging.size() * sizeof(vid_t));
      if (options_.checkpoint) options_.checkpoint("neighbors");
    }
    out.finish(options_.sync);
    stats_.output_bytes = neighbors_off + arcs * sizeof(vid_t);
    remove_all(swap_runs);
    remove_all(runs_);
  } catch (...) {
    remove_all(swap_runs);
    remove_all(runs_);
    // The output file exists (and is partial) once pass 1 succeeded: a
    // failed build must not leave a truncated .csrbin behind — a later
    // read_binary/map_binary would reject it, but cache-warming scripts
    // that test for mere existence would skip the rebuild and then fail
    // downstream.
    std::error_code ignored;
    std::filesystem::remove(output_, ignored);
    throw;
  }
  return stats_;
}

StreamBuildStats stream_build_snap(const std::filesystem::path& input,
                                   const std::filesystem::path& output,
                                   StreamBuildOptions options) {
  std::ifstream in(input);
  if (!in) throw std::runtime_error("cannot open " + input.string());
  const std::string name = input.string();
  StreamCsrBuilder builder(output, std::move(options));
  std::string line;
  std::uint64_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto toks = io::detail::tokens(line);
    if (toks.empty() || toks[0][0] == '#' || toks[0][0] == '%') continue;
    std::uint64_t u = 0, v = 0;
    if (toks.size() < 2 || !io::detail::to_u64(toks[0], u) ||
        !io::detail::to_u64(toks[1], v)) {
      io::detail::fail_line(name, lineno, line,
                            "malformed edge line (expected '<u> <v>')");
    }
    const std::string context = name + ":" + std::to_string(lineno);
    builder.add_edge(io::checked_vid(u, "vertex id", context),
                     io::checked_vid(v, "vertex id", context));
  }
  return builder.finish();
}

}  // namespace fdiam
