#include "graph/csr.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>
#include <string>

#include "util/mapped_file.hpp"
#include "util/memory.hpp"

namespace fdiam {

Csr& Csr::operator=(const Csr& o) {
  if (this != &o) {
    offsets_ = o.offsets_;
    neighbors_ = o.neighbors_;
    mapping_ = o.mapping_;
    if (mapping_ != nullptr) {
      // Mapped: the views point into the shared mapping, not the (empty)
      // vectors — copy them verbatim.
      offsets_view_ = o.offsets_view_;
      neighbors_view_ = o.neighbors_view_;
    } else {
      bind_owned();
    }
  }
  return *this;
}

Csr& Csr::operator=(Csr&& o) noexcept {
  if (this != &o) {
    offsets_ = std::move(o.offsets_);
    neighbors_ = std::move(o.neighbors_);
    mapping_ = std::move(o.mapping_);
    // std::vector move transfers the heap buffer, so the source's views
    // stay valid for the destination in both modes.
    offsets_view_ = o.offsets_view_;
    neighbors_view_ = o.neighbors_view_;
    o.offsets_view_ = {};
    o.neighbors_view_ = {};
  }
  return *this;
}

Csr Csr::from_edges(EdgeList edges) {
  // Counting-scatter construction: O(n + m) plus a parallel per-vertex
  // sort/dedup, instead of the O(m log m) global sort a canonicalization
  // pass would need. Self-loops are dropped during the scatter; duplicate
  // undirected edges collapse in the per-vertex unique step.
  const vid_t n = edges.num_vertices();

  std::vector<eid_t> raw_offsets(static_cast<std::size_t>(n) + 1, 0);
  for (const Edge& e : edges.edges()) {
    if (e.u == e.v) continue;
    ++raw_offsets[e.u + 1];
    ++raw_offsets[e.v + 1];
  }
  for (vid_t v = 0; v < n; ++v) raw_offsets[v + 1] += raw_offsets[v];

  std::vector<vid_t> raw(raw_offsets[n]);
  {
    std::vector<eid_t> cursor(raw_offsets.begin(), raw_offsets.end() - 1);
    for (const Edge& e : edges.edges()) {
      if (e.u == e.v) continue;
      raw[cursor[e.u]++] = e.v;
      raw[cursor[e.v]++] = e.u;
    }
  }

  // Per-vertex sort + dedup; record the surviving degree.
  std::vector<eid_t> degree(static_cast<std::size_t>(n) + 1, 0);
#pragma omp parallel for schedule(dynamic, 1024)
  for (vid_t v = 0; v < n; ++v) {
    const auto begin = raw.begin() + static_cast<std::ptrdiff_t>(raw_offsets[v]);
    const auto end = raw.begin() + static_cast<std::ptrdiff_t>(raw_offsets[v + 1]);
    std::sort(begin, end);
    degree[v + 1] = static_cast<eid_t>(std::unique(begin, end) - begin);
  }

  Csr g;
  g.offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (vid_t v = 0; v < n; ++v) g.offsets_[v + 1] = g.offsets_[v] + degree[v + 1];
  g.neighbors_.resize(g.offsets_[n]);
#pragma omp parallel for schedule(dynamic, 1024)
  for (vid_t v = 0; v < n; ++v) {
    std::copy_n(raw.begin() + static_cast<std::ptrdiff_t>(raw_offsets[v]),
                degree[v + 1],
                g.neighbors_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[v]));
  }
  util::place(g.offsets_);
  util::place(g.neighbors_);
  g.bind_owned();
  return g;
}

Csr Csr::from_raw(std::vector<eid_t> offsets, std::vector<vid_t> neighbors) {
  if (offsets.empty() || offsets.front() != 0 ||
      offsets.back() != neighbors.size()) {
    throw std::invalid_argument("Csr::from_raw: inconsistent offsets");
  }
  if (offsets.size() - 1 > std::numeric_limits<vid_t>::max()) {
    throw std::invalid_argument(
        "Csr::from_raw: vertex count exceeds the 32-bit id space");
  }
  for (std::size_t i = 1; i < offsets.size(); ++i) {
    if (offsets[i] < offsets[i - 1]) {
      throw std::invalid_argument("Csr::from_raw: offsets not monotone");
    }
  }
  // Out-of-range neighbor ids would be silent out-of-bounds reads in every
  // traversal downstream; reject them at the only entry point that accepts
  // raw arrays (the binary loader funnels untrusted bytes through here).
  const auto n = static_cast<vid_t>(offsets.size() - 1);
  for (const vid_t w : neighbors) {
    if (w >= n) {
      throw std::invalid_argument("Csr::from_raw: neighbor id " +
                                  std::to_string(w) + " out of range [0, " +
                                  std::to_string(n) + ")");
    }
  }
  Csr g;
  g.offsets_ = std::move(offsets);
  g.neighbors_ = std::move(neighbors);
  util::place(g.offsets_);
  util::place(g.neighbors_);
  g.bind_owned();
  return g;
}

Csr Csr::from_mapped(std::shared_ptr<util::MappedFile> file,
                     std::span<const eid_t> offsets,
                     std::span<const vid_t> neighbors,
                     bool verify_neighbors) {
  if (offsets.empty() || offsets.front() != 0 ||
      offsets.back() != neighbors.size()) {
    throw std::invalid_argument("Csr::from_mapped: inconsistent offsets");
  }
  if (offsets.size() - 1 > std::numeric_limits<vid_t>::max()) {
    throw std::invalid_argument(
        "Csr::from_mapped: vertex count exceeds the 32-bit id space");
  }
  for (std::size_t i = 1; i < offsets.size(); ++i) {
    if (offsets[i] < offsets[i - 1]) {
      throw std::invalid_argument("Csr::from_mapped: offsets not monotone");
    }
  }
  const auto n = static_cast<vid_t>(offsets.size() - 1);
  if (verify_neighbors) {
    for (const vid_t w : neighbors) {
      if (w >= n) {
        throw std::invalid_argument("Csr::from_mapped: neighbor id " +
                                    std::to_string(w) + " out of range [0, " +
                                    std::to_string(n) + ")");
      }
    }
  }
  Csr g;
  g.mapping_ = std::move(file);
  g.offsets_view_ = offsets;
  g.neighbors_view_ = neighbors;
  return g;
}

vid_t Csr::max_degree_vertex() const {
  const vid_t n = num_vertices();
  vid_t best = 0;
  vid_t best_deg = 0;
  for (vid_t v = 0; v < n; ++v) {
    const vid_t d = degree(v);
    if (d > best_deg) {
      best_deg = d;
      best = v;
    }
  }
  return best;
}

vid_t Csr::max_degree() const {
  return num_vertices() == 0 ? 0 : degree(max_degree_vertex());
}

bool Csr::has_edge(vid_t u, vid_t v) const {
  auto adj = neighbors(u);
  return std::binary_search(adj.begin(), adj.end(), v);
}

bool Csr::validate() const {
  const vid_t n = num_vertices();
  if (offsets_view_.empty()) return neighbors_view_.empty();
  if (offsets_view_.front() != 0 ||
      offsets_view_.back() != neighbors_view_.size()) {
    return false;
  }
  for (vid_t v = 0; v < n; ++v) {
    auto adj = neighbors(v);
    for (std::size_t i = 0; i < adj.size(); ++i) {
      if (adj[i] >= n) return false;
      if (adj[i] == v) return false;               // no self-loops
      if (i > 0 && adj[i] <= adj[i - 1]) return false;  // sorted, unique
    }
  }
  // Symmetry: every arc has its reverse.
  for (vid_t v = 0; v < n; ++v) {
    for (vid_t w : neighbors(v)) {
      if (!has_edge(w, v)) return false;
    }
  }
  return true;
}

}  // namespace fdiam
