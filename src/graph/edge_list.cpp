#include "graph/edge_list.hpp"

#include <algorithm>

namespace fdiam {

void EdgeList::canonicalize() {
  for (auto& e : edges_) {
    if (e.u > e.v) std::swap(e.u, e.v);
  }
  std::sort(edges_.begin(), edges_.end(), [](const Edge& a, const Edge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  auto last = std::unique(edges_.begin(), edges_.end());
  edges_.erase(last, edges_.end());
  auto is_loop = [](const Edge& e) { return e.u == e.v; };
  edges_.erase(std::remove_if(edges_.begin(), edges_.end(), is_loop),
               edges_.end());
}

}  // namespace fdiam
