#pragma once
// k-core decomposition (Matula & Beck peeling, O(n + m)).
//
// The paper's §3 grounds Winnow's choice of starting vertex in the
// core-periphery structure of real graphs: high-degree vertices sit in
// the dense core and have small eccentricities, degree-1/2 vertices sit
// on the periphery and have the largest ones. The core number makes that
// structure quantitative: this module backs the core-periphery analysis
// example and the tests that validate the suite analogues' structure.

#include <vector>

#include "graph/csr.hpp"
#include "util/types.hpp"

namespace fdiam {

struct KCoreResult {
  /// Core number per vertex: the largest k such that the vertex belongs
  /// to a subgraph where every vertex has degree >= k.
  std::vector<vid_t> core;
  vid_t degeneracy = 0;  ///< max core number (the graph's degeneracy)
};

/// Bucket-based peeling: repeatedly remove a minimum-degree vertex; the
/// degree at removal time (monotonically clamped) is its core number.
KCoreResult kcore_decomposition(const Csr& g);

/// Vertices whose core number equals the degeneracy (the innermost core).
std::vector<vid_t> innermost_core(const Csr& g);

}  // namespace fdiam
