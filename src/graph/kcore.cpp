#include "graph/kcore.hpp"

#include <algorithm>

namespace fdiam {

KCoreResult kcore_decomposition(const Csr& g) {
  // Matula-Beck peeling with the classic bucket structure: vertices are
  // kept sorted by current degree so the minimum-degree vertex is O(1).
  const vid_t n = g.num_vertices();
  KCoreResult result;
  result.core.assign(n, 0);
  if (n == 0) return result;

  std::vector<vid_t> degree(n);
  vid_t max_degree = 0;
  for (vid_t v = 0; v < n; ++v) {
    degree[v] = g.degree(v);
    max_degree = std::max(max_degree, degree[v]);
  }

  // bucket_start[d] = first position of degree-d vertices in `order`.
  std::vector<vid_t> bucket_start(static_cast<std::size_t>(max_degree) + 2, 0);
  for (vid_t v = 0; v < n; ++v) ++bucket_start[degree[v] + 1];
  for (std::size_t d = 1; d < bucket_start.size(); ++d) {
    bucket_start[d] += bucket_start[d - 1];
  }
  std::vector<vid_t> order(n), pos(n);
  {
    std::vector<vid_t> cursor(bucket_start.begin(), bucket_start.end() - 1);
    for (vid_t v = 0; v < n; ++v) {
      pos[v] = cursor[degree[v]]++;
      order[pos[v]] = v;
    }
  }

  for (vid_t i = 0; i < n; ++i) {
    const vid_t v = order[i];
    result.core[v] = degree[v];
    result.degeneracy = std::max(result.degeneracy, degree[v]);
    for (const vid_t w : g.neighbors(v)) {
      if (degree[w] <= degree[v]) continue;  // already peeled or tied
      // Swap w to the front of its bucket, then shrink its degree by one
      // (which moves the bucket boundary over it).
      const vid_t dw = degree[w];
      const vid_t front = bucket_start[dw];
      const vid_t u = order[front];
      if (u != w) {
        std::swap(order[pos[w]], order[front]);
        std::swap(pos[w], pos[u]);
      }
      ++bucket_start[dw];
      --degree[w];
    }
  }
  return result;
}

std::vector<vid_t> innermost_core(const Csr& g) {
  const KCoreResult r = kcore_decomposition(g);
  std::vector<vid_t> core_vertices;
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    if (r.core[v] == r.degeneracy) core_vertices.push_back(v);
  }
  return core_vertices;
}

}  // namespace fdiam
