#pragma once
// Connected-component labelling. Needed because the paper's semantics for
// disconnected inputs is "report infinity plus the largest eccentricity in
// any connected component" (§1, §5).

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/csr.hpp"

namespace fdiam {

struct Components {
  /// Component id per vertex, in [0, count).
  std::vector<std::uint32_t> label;
  /// Vertex count per component.
  std::vector<vid_t> size;

  /// Components are one-per-seed-vertex at most, and vertex counts fit
  /// vid_t, so 32 bits always suffice — but guard the narrowing anyway:
  /// a labelling bug that grew `size` past 2^32 would otherwise wrap
  /// here and silently misreport connectivity downstream.
  [[nodiscard]] std::uint32_t count() const {
    if (size.size() > std::numeric_limits<std::uint32_t>::max()) {
      throw std::length_error(
          "component count " + std::to_string(size.size()) +
          " exceeds the 32-bit label space");
    }
    return static_cast<std::uint32_t>(size.size());
  }
  /// Id of the largest component (0 if the graph is empty).
  [[nodiscard]] std::uint32_t largest() const;
  [[nodiscard]] bool connected() const { return count() <= 1; }
};

/// Label components with an iterative BFS sweep; O(n + m).
Components connected_components(const Csr& g);

}  // namespace fdiam
