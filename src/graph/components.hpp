#pragma once
// Connected-component labelling. Needed because the paper's semantics for
// disconnected inputs is "report infinity plus the largest eccentricity in
// any connected component" (§1, §5).

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace fdiam {

struct Components {
  /// Component id per vertex, in [0, count).
  std::vector<std::uint32_t> label;
  /// Vertex count per component.
  std::vector<vid_t> size;

  [[nodiscard]] std::uint32_t count() const {
    return static_cast<std::uint32_t>(size.size());
  }
  /// Id of the largest component (0 if the graph is empty).
  [[nodiscard]] std::uint32_t largest() const;
  [[nodiscard]] bool connected() const { return count() <= 1; }
};

/// Label components with an iterative BFS sweep; O(n + m).
Components connected_components(const Csr& g);

}  // namespace fdiam
