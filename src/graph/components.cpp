#include "graph/components.hpp"

#include <algorithm>

namespace fdiam {

std::uint32_t Components::largest() const {
  if (size.empty()) return 0;
  return static_cast<std::uint32_t>(
      std::max_element(size.begin(), size.end()) - size.begin());
}

Components connected_components(const Csr& g) {
  const vid_t n = g.num_vertices();
  Components out;
  out.label.assign(n, UINT32_MAX);

  std::vector<vid_t> queue;
  queue.reserve(1024);
  for (vid_t start = 0; start < n; ++start) {
    if (out.label[start] != UINT32_MAX) continue;
    const auto comp = static_cast<std::uint32_t>(out.size.size());
    out.label[start] = comp;
    vid_t members = 1;
    queue.clear();
    queue.push_back(start);
    // Plain FIFO-less BFS: order does not matter for labelling, so we use
    // the vector as a stack to avoid pop-front shuffling.
    while (!queue.empty()) {
      const vid_t v = queue.back();
      queue.pop_back();
      for (vid_t w : g.neighbors(v)) {
        if (out.label[w] == UINT32_MAX) {
          out.label[w] = comp;
          ++members;
          queue.push_back(w);
        }
      }
    }
    out.size.push_back(members);
  }
  return out;
}

}  // namespace fdiam
