#pragma once
// Vertex relabeling / graph reordering.
//
// BFS performance on large sparse graphs is dominated by memory locality
// (the paper's §6.2 bandwidth discussion); relabeling vertices so that
// topologically close vertices get nearby ids is the standard mitigation.
// This module provides the classic orders, a permutation applicator, and
// is exercised by the locality ablation bench (bench_ablation_reorder).
//
// All functions return a NEW graph whose vertex v corresponds to old
// vertex perm_inverse[v]; the diameter and all distances are invariant
// under relabeling (asserted by the tests).

#include <vector>

#include "graph/csr.hpp"
#include "util/types.hpp"

namespace fdiam {

/// new_id[old_id] permutation; must be a bijection on [0, n).
using Permutation = std::vector<vid_t>;

/// Apply a permutation: result has edge {new_id[u], new_id[v]} for every
/// edge {u, v}. Throws std::invalid_argument if perm is not a bijection.
Csr apply_permutation(const Csr& g, const Permutation& new_id);

/// Descending-degree order: hubs get the smallest ids (hub clustering).
Permutation degree_order(const Csr& g);

/// BFS visitation order from the max-degree vertex of each component —
/// the locality workhorse (a close relative of Cuthill-McKee).
Permutation bfs_order(const Csr& g);

/// Deterministic pseudo-random shuffle — the locality *destroyer*, used
/// as the worst-case contrast in the reorder bench.
Permutation random_order(const Csr& g, std::uint64_t seed);

/// True iff `perm` is a bijection on [0, g.num_vertices()).
bool is_permutation(const Csr& g, const Permutation& perm);

}  // namespace fdiam
