#pragma once
// Vertex relabeling / graph reordering.
//
// BFS performance on large sparse graphs is dominated by memory locality
// (the paper's §6.2 bandwidth discussion); relabeling vertices so that
// topologically close vertices get nearby ids is the standard mitigation.
// This module provides the classic orders, a permutation applicator, and
// is exercised by the locality ablation bench (bench_ablation_reorder).
//
// All functions return a NEW graph whose vertex v corresponds to old
// vertex perm_inverse[v]; the diameter and all distances are invariant
// under relabeling (asserted by the tests).

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "graph/csr.hpp"
#include "util/types.hpp"

namespace fdiam {

/// new_id[old_id] permutation; must be a bijection on [0, n).
using Permutation = std::vector<vid_t>;

/// The orders the solver and CLI expose (--reorder=...). kRandom is the
/// locality destroyer and only useful as a benchmark contrast, but it is
/// accepted everywhere the other modes are.
enum class ReorderMode { kNone, kDegree, kBfs, kRandom };

/// Parse "none"/"degree"/"bfs"/"random"; nullopt on anything else.
std::optional<ReorderMode> parse_reorder_mode(std::string_view name);
const char* reorder_mode_name(ReorderMode mode);

/// Build the permutation for `mode` (identity for kNone; `seed` only
/// matters for kRandom).
Permutation make_order(const Csr& g, ReorderMode mode,
                       std::uint64_t seed = 42);

/// inverse[new_id] = old_id, the map that translates results computed on
/// a permuted graph back to the caller's vertex ids.
Permutation inverse_permutation(const Permutation& new_id);

/// Apply a permutation: result has edge {new_id[u], new_id[v]} for every
/// edge {u, v}. Throws std::invalid_argument if perm is not a bijection.
Csr apply_permutation(const Csr& g, const Permutation& new_id);

/// Descending-degree order: hubs get the smallest ids (hub clustering).
Permutation degree_order(const Csr& g);

/// BFS visitation order from the max-degree vertex of each component —
/// the locality workhorse (a close relative of Cuthill-McKee).
Permutation bfs_order(const Csr& g);

/// Deterministic pseudo-random shuffle — the locality *destroyer*, used
/// as the worst-case contrast in the reorder bench.
Permutation random_order(const Csr& g, std::uint64_t seed);

/// True iff `perm` is a bijection on [0, g.num_vertices()).
bool is_permutation(const Csr& g, const Permutation& perm);

}  // namespace fdiam
