#pragma once
// Disjoint-set union (union by rank + path halving) and a union-find
// based connected-components labelling. Complements the BFS labelling in
// components.*: union-find processes an *edge list* without needing the
// CSR first (handy inside generators and loaders) and is the standard
// building block for incremental connectivity.

#include <cstdint>
#include <vector>

#include "graph/components.hpp"
#include "graph/csr.hpp"
#include "util/types.hpp"

namespace fdiam {

class UnionFind {
 public:
  explicit UnionFind(vid_t n);

  /// Representative of v's set (with path halving).
  vid_t find(vid_t v);

  /// Merge the sets of a and b; returns true iff they were distinct.
  bool unite(vid_t a, vid_t b);

  [[nodiscard]] vid_t set_count() const { return sets_; }
  [[nodiscard]] vid_t size() const { return static_cast<vid_t>(parent_.size()); }

  /// Size of v's set.
  vid_t set_size(vid_t v);

 private:
  std::vector<vid_t> parent_;
  std::vector<vid_t> rank_;
  std::vector<vid_t> count_;  // valid at roots
  vid_t sets_;
};

/// Connected components via union-find over the CSR's arcs; produces the
/// same labelling semantics as connected_components() (tested equal up to
/// renumbering).
Components connected_components_union_find(const Csr& g);

}  // namespace fdiam
