#pragma once
// External-memory CSR construction (the out-of-core tier, docs/SCALING.md).
//
// Csr::from_edges needs the whole edge list plus scatter buffers in RAM —
// roughly 20 bytes per undirected edge — which caps the build step long
// before the solve does (a solve over a *mapped* CSR only needs O(n)
// scratch). StreamCsrBuilder breaks that cap: edges are accepted one at a
// time, canonicalized into packed (min,max) 64-bit keys, accumulated in a
// bounded chunk buffer, sorted/deduplicated, and spilled to temporary run
// files; finish() then k-way-merges the runs and writes a v2 .csrbin
// straight to disk, never holding more than the configured memory budget
// plus one 4-byte degree counter per vertex. The output is byte-for-byte
// the same graph from_edges + write_binary would produce (sorted unique
// adjacencies, no self-loops, both arc directions), so io::map_binary of
// the result solves bit-identically to the in-core path.
//
// Pipeline inside finish():
//   1. canonical runs --k-way merge+dedup--> forward arc stream (u<v),
//      counting per-vertex degrees and spilling the swapped (v,u) keys
//      into a second set of sorted runs;
//   2. header + offsets (prefix sums of the degrees) stream to the output;
//   3. the forward stream and the k-way-merged swapped runs — both sorted
//      by (source << 32 | neighbor) — 2-way merge into the neighbors
//      section, which therefore lands in exact CSR order in one pass.

#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>
#include <vector>

#include "util/types.hpp"

namespace fdiam {

struct StreamBuildOptions {
  /// Bound on the builder's big in-core buffers (chunk buffer + merge-run
  /// read buffers). The per-vertex degree array (4 bytes/vertex) is on
  /// top of this — callers budgeting a whole machine should allow
  /// mem_budget_bytes + 4n. Tiny values are clamped to a workable floor.
  std::uint64_t mem_budget_bytes = 256ull << 20;
  /// Where spill runs go; defaults to the output file's directory.
  std::filesystem::path temp_dir;
  /// fsync the finished .csrbin (see BinaryWriteOptions::sync).
  bool sync = false;
  /// TEST-ONLY fault injection: when set, finish() invokes this at named
  /// internal phase boundaries ("degrees" after pass 1, "offsets" after
  /// the offsets section hit the output file, "neighbors" after pass 2).
  /// A throwing checkpoint simulates an I/O failure at that point; the
  /// abandonment tests use it to assert that a failed build leaves no
  /// artifacts — neither spill runs nor a partially written .csrbin.
  std::function<void(const char* phase)> checkpoint;
};

struct StreamBuildStats {
  std::uint64_t edges_in = 0;       ///< add_edge calls (loops/dupes included)
  std::uint64_t edges_unique = 0;   ///< surviving undirected edges
  std::uint64_t num_vertices = 0;   ///< max id + 1
  std::uint64_t chunks_spilled = 0; ///< sorted runs written (both passes)
  std::uint64_t spill_bytes = 0;    ///< temp-file bytes written
  std::uint64_t output_bytes = 0;   ///< final .csrbin size
};

class StreamCsrBuilder {
 public:
  /// The .csrbin lands at `output` when finish() returns; nothing is
  /// visible there before that (a failed build removes partial files).
  explicit StreamCsrBuilder(std::filesystem::path output,
                            StreamBuildOptions options = {});
  ~StreamCsrBuilder();

  StreamCsrBuilder(const StreamCsrBuilder&) = delete;
  StreamCsrBuilder& operator=(const StreamCsrBuilder&) = delete;

  /// Feed one undirected edge. Self-loops are dropped (their endpoint
  /// still counts toward num_vertices, matching Csr::from_edges);
  /// duplicates collapse during the merge.
  void add_edge(vid_t u, vid_t v);

  /// Sort/merge the spilled runs and write the v2 .csrbin. The builder is
  /// spent afterwards. Throws on I/O failure (temp files are cleaned up).
  StreamBuildStats finish();

 private:
  void spill_chunk();

  std::filesystem::path output_;
  StreamBuildOptions options_;
  std::vector<std::uint64_t> chunk_;   // packed (min<<32)|max keys
  std::size_t chunk_cap_ = 0;
  std::vector<std::filesystem::path> runs_;
  std::uint64_t n_ = 0;
  StreamBuildStats stats_;
  bool finished_ = false;
};

/// Stream a SNAP edge-list text file ('#'/'%' comments, "u v" per line)
/// through a StreamCsrBuilder without materializing the edge list.
/// Validation matches io::read_snap: malformed lines, oversized ids, and
/// limit violations throw with file:line context.
StreamBuildStats stream_build_snap(const std::filesystem::path& input,
                                   const std::filesystem::path& output,
                                   StreamBuildOptions options = {});

}  // namespace fdiam
