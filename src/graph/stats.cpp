#include "graph/stats.hpp"

#include "graph/components.hpp"

namespace fdiam {

GraphStats compute_stats(const Csr& g) {
  GraphStats s;
  s.vertices = g.num_vertices();
  s.arcs = g.num_arcs();
  s.avg_degree =
      s.vertices == 0 ? 0.0
                      : static_cast<double>(s.arcs) / static_cast<double>(s.vertices);
  for (vid_t v = 0; v < s.vertices; ++v) {
    const vid_t d = g.degree(v);
    s.max_degree = std::max(s.max_degree, d);
    if (d == 0) ++s.degree0;
    else if (d == 1) ++s.degree1;
    else if (d == 2) ++s.degree2;
  }
  const Components cc = connected_components(g);
  s.num_components = cc.count();
  s.largest_component = cc.size.empty() ? 0 : cc.size[cc.largest()];
  return s;
}

std::vector<std::uint64_t> degree_histogram(const Csr& g, vid_t max_bucket) {
  std::vector<std::uint64_t> hist(static_cast<std::size_t>(max_bucket) + 1, 0);
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    const vid_t d = g.degree(v);
    ++hist[std::min(d, max_bucket)];
  }
  return hist;
}

}  // namespace fdiam
