#include "graph/union_find.hpp"

#include <numeric>

namespace fdiam {

UnionFind::UnionFind(vid_t n)
    : parent_(n), rank_(n, 0), count_(n, 1), sets_(n) {
  std::iota(parent_.begin(), parent_.end(), 0);
}

vid_t UnionFind::find(vid_t v) {
  while (parent_[v] != v) {
    parent_[v] = parent_[parent_[v]];  // path halving
    v = parent_[v];
  }
  return v;
}

bool UnionFind::unite(vid_t a, vid_t b) {
  vid_t ra = find(a), rb = find(b);
  if (ra == rb) return false;
  if (rank_[ra] < rank_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  count_[ra] += count_[rb];
  if (rank_[ra] == rank_[rb]) ++rank_[ra];
  --sets_;
  return true;
}

vid_t UnionFind::set_size(vid_t v) { return count_[find(v)]; }

Components connected_components_union_find(const Csr& g) {
  const vid_t n = g.num_vertices();
  UnionFind uf(n);
  for (vid_t v = 0; v < n; ++v) {
    for (const vid_t w : g.neighbors(v)) {
      if (v < w) uf.unite(v, w);
    }
  }

  Components out;
  out.label.assign(n, UINT32_MAX);
  for (vid_t v = 0; v < n; ++v) {
    const vid_t root = uf.find(v);
    if (out.label[root] == UINT32_MAX) {
      out.label[root] = static_cast<std::uint32_t>(out.size.size());
      out.size.push_back(uf.set_size(root));
    }
    out.label[v] = out.label[root];
  }
  return out;
}

}  // namespace fdiam
