#include "serve/protocol.hpp"

#include <cerrno>
#include <cstring>
#include <sstream>

#include "obs/json.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define FDIAM_SERVE_POSIX 1
#endif

namespace fdiam::serve {

std::string_view verb_name(Verb v) {
  switch (v) {
    case Verb::kPing: return "ping";
    case Verb::kDiameter: return "diameter";
    case Verb::kEccentricity: return "eccentricity";
    case Verb::kDistance: return "distance";
    case Verb::kDiametralPath: return "diametral_path";
    case Verb::kStats: return "stats";
    case Verb::kReload: return "reload";
    case Verb::kShutdown: return "shutdown";
  }
  return "?";
}

namespace {

std::optional<Verb> verb_from_name(std::string_view name) {
  for (Verb v : {Verb::kPing, Verb::kDiameter, Verb::kEccentricity,
                 Verb::kDistance, Verb::kDiametralPath, Verb::kStats,
                 Verb::kReload, Verb::kShutdown}) {
    if (name == verb_name(v)) return v;
  }
  return std::nullopt;
}

/// Fetch a required vertex-id field: a non-negative integer that fits
/// vid_t. The protocol treats 3.5 or "3" as malformed, not coercible.
bool parse_vertex(std::string_view json, std::string_view key, vid_t& out,
                  std::string& error) {
  std::optional<double> num = obs::json_number(json, key);
  if (!num.has_value()) {
    error = "missing or non-numeric field \"" + std::string(key) + "\"";
    return false;
  }
  double d = *num;
  if (d < 0 || d > static_cast<double>(UINT32_MAX) ||
      d != static_cast<double>(static_cast<std::uint64_t>(d))) {
    error = "field \"" + std::string(key) + "\" is not a valid vertex id";
    return false;
  }
  out = static_cast<vid_t>(d);
  return true;
}

}  // namespace

std::optional<Request> parse_request(std::string_view json,
                                     std::string& error) {
  if (!obs::json_valid(json)) {
    error = "request is not valid JSON";
    return std::nullopt;
  }
  Request req;
  if (std::optional<double> id = obs::json_number(json, "id");
      id.has_value() && *id >= 0) {
    req.id = static_cast<std::uint64_t>(*id);
  }
  std::optional<std::string> op = obs::json_string(json, "op");
  if (!op.has_value()) {
    error = "missing or non-string field \"op\"";
    return std::nullopt;
  }
  std::optional<Verb> verb = verb_from_name(*op);
  if (!verb.has_value()) {
    error = "unknown op \"" + *op + "\"";
    return std::nullopt;
  }
  req.verb = *verb;
  if (std::optional<std::string> g = obs::json_string(json, "graph");
      g.has_value()) {
    req.graph = *g;
  }
  switch (req.verb) {
    case Verb::kEccentricity:
      if (!parse_vertex(json, "u", req.u, error)) return std::nullopt;
      break;
    case Verb::kDistance:
      if (!parse_vertex(json, "u", req.u, error)) return std::nullopt;
      if (!parse_vertex(json, "v", req.v, error)) return std::nullopt;
      break;
    default:
      break;
  }
  return req;
}

std::string error_response(std::uint64_t id, std::string_view message) {
  std::ostringstream os;
  obs::JsonWriter w(os, 0);
  w.begin_object();
  w.field("ok", false);
  w.field("id", id);
  w.field("error", message);
  w.end_object();
  return os.str();
}

#if FDIAM_SERVE_POSIX

namespace {

bool read_exact(int fd, void* buf, std::size_t len) {
  auto* p = static_cast<unsigned char*>(buf);
  std::size_t got = 0;
  while (got < len) {
    ssize_t r = ::read(fd, p + got, len - got);
    if (r == 0) return false;  // EOF mid-read
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

}  // namespace

ReadStatus read_frame(int fd, std::string& payload, std::string& error) {
  unsigned char prefix[4];
  // The first prefix byte distinguishes clean EOF from truncation.
  ssize_t first;
  do {
    first = ::read(fd, prefix, 1);
  } while (first < 0 && errno == EINTR);
  if (first == 0) return ReadStatus::kEof;
  if (first < 0) {
    error = std::string("read: ") + std::strerror(errno);
    return ReadStatus::kError;
  }
  if (!read_exact(fd, prefix + 1, 3)) {
    error = "truncated length prefix";
    return ReadStatus::kError;
  }
  std::uint32_t len = static_cast<std::uint32_t>(prefix[0]) |
                      (static_cast<std::uint32_t>(prefix[1]) << 8) |
                      (static_cast<std::uint32_t>(prefix[2]) << 16) |
                      (static_cast<std::uint32_t>(prefix[3]) << 24);
  if (len > kMaxFrameBytes) {
    error = "frame length " + std::to_string(len) + " exceeds limit " +
            std::to_string(kMaxFrameBytes);
    return ReadStatus::kError;
  }
  payload.resize(len);
  if (len > 0 && !read_exact(fd, payload.data(), len)) {
    error = "truncated frame payload";
    return ReadStatus::kError;
  }
  return ReadStatus::kOk;
}

bool write_frame(int fd, std::string_view payload) {
  if (payload.size() > kMaxFrameBytes) return false;
  auto len = static_cast<std::uint32_t>(payload.size());
  unsigned char prefix[4] = {
      static_cast<unsigned char>(len & 0xff),
      static_cast<unsigned char>((len >> 8) & 0xff),
      static_cast<unsigned char>((len >> 16) & 0xff),
      static_cast<unsigned char>((len >> 24) & 0xff),
  };
  // Stage prefix + payload into one buffer so short requests go out in a
  // single write and the common case is one syscall.
  std::string buf;
  buf.reserve(4 + payload.size());
  buf.append(reinterpret_cast<const char*>(prefix), 4);
  buf.append(payload);
  std::size_t sent = 0;
  while (sent < buf.size()) {
    ssize_t w = ::write(fd, buf.data() + sent, buf.size() - sent);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(w);
  }
  return true;
}

#else  // !FDIAM_SERVE_POSIX

ReadStatus read_frame(int, std::string&, std::string& error) {
  error = "fdiam_serve requires POSIX sockets";
  return ReadStatus::kError;
}

bool write_frame(int, std::string_view) { return false; }

#endif

}  // namespace fdiam::serve
