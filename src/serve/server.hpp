#pragma once
// fdiam_serve core: a UNIX-domain-socket daemon serving diameter and
// point queries over mapped .csrbin graphs (docs/SERVICE.md).
//
// Architecture: one acceptor thread polls the listening socket with a
// short timeout so it can also observe the async stop/reload flags set
// by signal handlers (SIGHUP → reload, SIGINT/SIGTERM/`shutdown` verb →
// graceful stop). Each accepted connection gets its own handler thread
// running a read-frame → dispatch → write-frame loop; point queries
// park the handler thread in the QueryBatcher, everything else is
// answered inline. Shutdown closes the listener, shuts down live
// connection sockets (unblocking their reads), joins every handler,
// drains the batcher, and finally writes the OpenMetrics dump when
// --metrics-out was given — so a scrape of a cleanly stopped daemon
// always reflects the full run.
//
// Reload never interrupts a query: GraphStore swaps the map entry while
// in-flight queries keep shared_ptr pins on the old generation (see
// graph_store.hpp). The `reload` verb and SIGHUP are equivalent.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/counters.hpp"
#include "serve/batcher.hpp"
#include "serve/graph_store.hpp"
#include "serve/protocol.hpp"

namespace fdiam::serve {

struct ServerOptions {
  std::filesystem::path socket_path;
  /// Sources per MS-BFS sweep (clamped to [1, 64]).
  int max_batch = 64;
  /// False = answer each point query with its own single-source sweep
  /// (baseline mode for bench_serve).
  bool batching = true;
  /// OpenMP parallelism inside sweeps and diameter solves.
  bool parallel = true;
  /// Written at shutdown when non-empty (OpenMetrics text format).
  std::filesystem::path metrics_out;
  /// Acceptor poll interval; also bounds signal-flag latency.
  double poll_seconds = 0.1;
};

class Server {
 public:
  explicit Server(ServerOptions opt);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Register a graph before start(). Throws on load failure.
  void add_graph(const std::string& name, const std::filesystem::path& path);

  /// Bind the socket and launch the acceptor + batcher. Throws
  /// std::runtime_error when the socket cannot be bound.
  void start();

  /// Block until a shutdown request (verb, signal flag, or stop()).
  void join();

  /// Graceful stop; idempotent, callable from any thread.
  void stop();

  /// Async-signal-safe request flags (for signal handlers).
  static void request_stop_async() {
    stop_flag_.store(true, std::memory_order_relaxed);
  }
  static void request_reload_async() {
    reload_flag_.store(true, std::memory_order_relaxed);
  }

  [[nodiscard]] const std::filesystem::path& socket_path() const {
    return opt_.socket_path;
  }
  [[nodiscard]] obs::MetricRegistry& registry() { return registry_; }
  [[nodiscard]] GraphStore& store() { return store_; }

 private:
  void acceptor_loop();
  void handle_connection(int fd);
  std::string dispatch(const Request& req);
  std::string handle_point(const Request& req);
  std::string handle_diameter(const Request& req);
  std::string handle_path(const Request& req);
  std::string handle_stats(const Request& req);
  std::string handle_reload(const Request& req);
  void do_reload();

  ServerOptions opt_;
  GraphStore store_;
  obs::MetricRegistry registry_;
  QueryBatcher batcher_;

  int listen_fd_ = -1;
  std::thread acceptor_;
  std::mutex conn_mu_;
  std::vector<std::thread> handlers_;
  std::vector<int> open_fds_;  ///< live connection sockets (for shutdown)

  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  /// First stop() caller does the work; later callers (destructor, a
  /// concurrent shutdown verb) block until it completes.
  std::atomic<bool> stop_claimed_{false};
  std::mutex join_mu_;
  std::condition_variable join_cv_;
  bool stopped_ = false;  ///< set (under join_mu_) when stop work is done

  /// Process-wide signal flags: sigaction handlers cannot carry a
  /// `this`, and one daemon process runs one server.
  static std::atomic<bool> stop_flag_;
  static std::atomic<bool> reload_flag_;
};

/// Install SIGINT/SIGTERM → request_stop_async and SIGHUP →
/// request_reload_async. Idempotent; used by the fdiam_serve binary
/// (tests drive stop()/reload via verbs instead).
void install_server_signal_handlers();

}  // namespace fdiam::serve
