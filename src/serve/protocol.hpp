#pragma once
// Wire protocol for fdiam_serve (docs/SERVICE.md).
//
// Transport: a UNIX stream socket carrying length-prefixed frames — a
// 4-byte little-endian payload length followed by that many bytes of
// UTF-8 JSON. Length prefixing (rather than newline delimiting) keeps
// the framing independent of the JSON formatting and makes oversized or
// garbage input rejectable before any parsing happens: a prefix above
// kMaxFrameBytes closes the connection without reading the payload.
//
// Requests are flat JSON objects:
//   {"op":"distance","u":3,"v":17,"graph":"web","id":42}
// `op` is required; `graph` defaults to the server's sole graph when it
// serves exactly one; `id` is an optional client-chosen correlation tag
// echoed back verbatim. Responses always carry "ok" (bool) and the echoed
// "id"; successful ones add op-specific fields, failures add "error".
//
// parse_request is strict: unknown ops, missing or non-numeric vertex
// arguments, and structurally invalid JSON all fail with a one-line
// message that the server echoes back to the client — a malformed
// request never kills the connection, only that request.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "util/types.hpp"

namespace fdiam::serve {

/// Hard ceiling on a frame payload. Requests are tiny; anything bigger
/// is garbage or an attack, and the reader rejects it from the length
/// prefix alone.
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 20;

/// Protocol tag reported by the `stats` verb so clients can detect
/// incompatible servers.
inline constexpr std::string_view kProtocolVersion = "fdiam.serve/v1";

enum class Verb : std::uint8_t {
  kPing,          ///< liveness check, answers "pong"
  kDiameter,      ///< exact diameter (cached per graph generation)
  kEccentricity,  ///< ecc(u) — batched onto an MS-BFS sweep
  kDistance,      ///< d(u, v) — batched onto an MS-BFS sweep
  kDiametralPath, ///< one realizing vertex path (cached per generation)
  kStats,         ///< server + metrics snapshot
  kReload,        ///< re-map a graph (or all) from its source path
  kShutdown,      ///< graceful stop: drain in-flight work, then exit
};

/// JSON `op` tag ("ping", "diameter", ...).
std::string_view verb_name(Verb v);

/// One parsed request.
struct Request {
  Verb verb = Verb::kPing;
  std::uint64_t id = 0;     ///< client correlation tag, echoed back
  std::string graph;        ///< empty = server default (sole graph / all)
  vid_t u = 0;              ///< source vertex (eccentricity, distance)
  vid_t v = 0;              ///< target vertex (distance)
};

/// Parse one request payload. On failure returns nullopt and fills
/// `error` with a one-line diagnostic suitable for the error response.
std::optional<Request> parse_request(std::string_view json,
                                     std::string& error);

/// Build the uniform failure response: {"ok":false,"id":...,"error":...}.
std::string error_response(std::uint64_t id, std::string_view message);

/// Frame I/O over a connected socket fd. Both calls loop over partial
/// reads/writes and retry EINTR; they are the only code that touches the
/// wire format, so client, server, bench, and tests cannot disagree on
/// framing.
enum class ReadStatus : std::uint8_t {
  kOk,    ///< one complete frame read into `payload`
  kEof,   ///< peer closed cleanly before the first prefix byte
  kError, ///< I/O error, truncated frame, or oversized length prefix
};

ReadStatus read_frame(int fd, std::string& payload, std::string& error);
[[nodiscard]] bool write_frame(int fd, std::string_view payload);

}  // namespace fdiam::serve
