#include "serve/batcher.hpp"

#include <algorithm>
#include <exception>
#include <unordered_map>

#include "bfs/msbfs.hpp"
#include "obs/counters.hpp"
#include "util/histogram.hpp"
#include "util/timer.hpp"

namespace fdiam::serve {

QueryBatcher::QueryBatcher(Options opt) : opt_(opt) {
  opt_.max_batch = std::clamp(opt_.max_batch, 1, 64);
}

QueryBatcher::~QueryBatcher() { stop(); }

void QueryBatcher::start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) return;
  started_ = true;
  stopping_ = false;
  worker_ = std::thread([this] { worker_loop(); });
}

void QueryBatcher::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) return;
    stopping_ = true;
  }
  work_cv_.notify_all();
  if (worker_.joinable()) worker_.join();
  std::lock_guard<std::mutex> lock(mu_);
  started_ = false;
}

void QueryBatcher::submit(PointQuery& q) {
  std::unique_lock<std::mutex> lock(mu_);
  if (!started_ || stopping_) {
    q.failed = true;
    q.error = "server is shutting down";
    q.done = true;
    return;
  }
  pending_.push_back(&q);
  if (opt_.registry != nullptr) {
    opt_.registry->gauge("serve.queue.depth")
        .set(static_cast<double>(pending_.size()));
  }
  work_cv_.notify_one();
  done_cv_.wait(lock, [&q] { return q.done; });
}

void QueryBatcher::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return !pending_.empty() || stopping_; });
    if (pending_.empty()) {
      if (stopping_) return;  // drained; exit
      continue;
    }
    // Group by graph identity: take the oldest query's graph and pull
    // every pending query for the same ServedGraph (same generation —
    // queries pinned to a pre-reload generation form their own batch).
    const ServedGraph* key = pending_.front()->graph.get();
    const int limit = opt_.batching ? opt_.max_batch : 1;
    std::vector<PointQuery*> batch;
    std::vector<vid_t> batch_sources;  // deduped source set of `batch`
    std::size_t w = 0;
    for (std::size_t i = 0; i < pending_.size(); ++i) {
      PointQuery* q = pending_[i];
      bool take = false;
      if (q->graph.get() == key) {
        bool known = std::find(batch_sources.begin(), batch_sources.end(),
                               q->u) != batch_sources.end();
        // A repeated source rides along for free (shares a mask bit), so
        // only NEW sources count against the sweep width.
        if (known) {
          take = true;
        } else if (batch_sources.size() <
                   static_cast<std::size_t>(limit)) {
          batch_sources.push_back(q->u);
          take = true;
        }
      }
      if (take) {
        batch.push_back(q);
      } else {
        pending_[w++] = q;
      }
    }
    pending_.resize(w);
    if (opt_.registry != nullptr) {
      opt_.registry->gauge("serve.queue.depth")
          .set(static_cast<double>(pending_.size()));
    }
    lock.unlock();
    run_batch(batch);
    lock.lock();
    for (PointQuery* q : batch) q->done = true;
    done_cv_.notify_all();
  }
}

void QueryBatcher::run_batch(std::vector<PointQuery*>& batch) {
  const Csr& g = batch.front()->graph->graph();
  // Dedup sources into sweep slots; map each query to its slot.
  std::vector<vid_t> sources;
  std::unordered_map<vid_t, std::uint32_t> slot_of;
  std::vector<std::uint32_t> slot(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    auto [it, inserted] = slot_of.try_emplace(
        batch[i]->u, static_cast<std::uint32_t>(sources.size()));
    if (inserted) sources.push_back(batch[i]->u);
    slot[i] = it->second;
  }
  std::vector<MsbfsTarget> targets;
  std::vector<std::size_t> target_query;  // targets[j] answers batch[...]
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (batch[i]->kind == PointQuery::Kind::kDistance) {
      targets.push_back(MsbfsTarget{slot[i], batch[i]->v});
      target_query.push_back(i);
    }
  }
  Timer timer;
  try {
    MsbfsQueryResult result = msbfs_point_queries(
        g, sources, targets, opt_.parallel_sweep);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (batch[i]->kind == PointQuery::Kind::kEccentricity) {
        batch[i]->value = result.ecc[slot[i]];
      }
    }
    for (std::size_t j = 0; j < targets.size(); ++j) {
      batch[target_query[j]]->value = result.dist[j];
    }
  } catch (const std::exception& e) {
    for (PointQuery* q : batch) {
      q->failed = true;
      q->error = e.what();
    }
  }
  if (opt_.registry != nullptr) {
    opt_.registry->counter("serve.sweeps").inc();
    opt_.registry->counter("serve.batched_queries")
        .inc(static_cast<std::int64_t>(batch.size()));
    opt_.registry->histogram("serve.batch.occupancy")
        .record(static_cast<double>(sources.size()));
    opt_.registry->histogram("serve.sweep.seconds").record(timer.seconds());
  }
}

}  // namespace fdiam::serve
