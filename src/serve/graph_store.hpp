#pragma once
// Named, reloadable graph registry for fdiam_serve.
//
// Each served graph is an immutable ServedGraph: the zero-copy mapped
// Csr (io::map_binary), its source path, a monotonically increasing
// generation number, and lazily computed diameter / diametral-path
// caches. The store hands graphs out as shared_ptr<const ServedGraph>,
// which is the whole reload story: reload() maps and validates the NEW
// file first, then swaps the map entry under the lock. Queries already
// in flight keep their shared_ptr, so the old mapping stays valid until
// the last of them drains, at which point the final release munmaps it.
// No locks are held during a query, no query is ever torn by a reload,
// and a failed reload (file vanished, corrupt header) leaves the old
// generation serving untouched.
//
// Diameter and diametral-path results are cached per ServedGraph (so per
// generation) behind std::once_flag: the first `diameter` query after a
// (re)load pays one F-Diam solve, concurrent duplicates block on the
// same once_flag instead of racing duplicate solves, and a reload
// naturally invalidates by virtue of being a fresh object.

#include <atomic>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/diametral_path.hpp"
#include "core/fdiam.hpp"
#include "graph/csr.hpp"

namespace fdiam::serve {

class ServedGraph {
 public:
  ServedGraph(std::string name, std::filesystem::path path, Csr graph,
              std::uint64_t generation, bool parallel_solve);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::filesystem::path& path() const { return path_; }
  [[nodiscard]] const Csr& graph() const { return graph_; }
  [[nodiscard]] std::uint64_t generation() const { return generation_; }

  /// Exact diameter, solved on first use and cached for the lifetime of
  /// this generation. Thread-safe; concurrent callers share one solve.
  const DiameterResult& diameter() const;

  /// One realizing path, derived from the cached diameter's witness
  /// (costs one extra BFS on first use).
  const DiametralPath& diametral() const;

  /// True when the diameter cache is populated (stats reporting).
  [[nodiscard]] bool diameter_cached() const;

 private:
  std::string name_;
  std::filesystem::path path_;
  Csr graph_;
  std::uint64_t generation_;
  bool parallel_solve_;
  mutable std::once_flag diameter_once_;
  mutable std::once_flag path_once_;
  mutable DiameterResult diameter_;
  mutable DiametralPath dpath_;
  mutable std::atomic<bool> diameter_ready_{false};
};

class GraphStore {
 public:
  /// Load `path` (a v2 .csrbin; v1 falls back to an eager read) and
  /// register it under `name`, replacing any previous entry. Throws
  /// std::runtime_error on I/O or validation failure. Returns the new
  /// generation number.
  std::uint64_t load(const std::string& name,
                     const std::filesystem::path& path);

  /// Fetch a graph by name. An empty name resolves to the store's sole
  /// graph when exactly one is registered. Returns nullptr when the name
  /// is unknown (or empty is ambiguous).
  [[nodiscard]] std::shared_ptr<const ServedGraph> get(
      const std::string& name) const;

  /// Re-map `name` from its recorded source path. The new mapping is
  /// built before the swap; on failure the old generation keeps serving
  /// and the error propagates. Returns the new generation.
  std::uint64_t reload(const std::string& name);

  /// Reload every registered graph. Returns the names reloaded; throws
  /// on the first failure (earlier reloads stay swapped).
  std::vector<std::string> reload_all();

  [[nodiscard]] std::vector<std::shared_ptr<const ServedGraph>> list() const;
  [[nodiscard]] std::size_t size() const;

  /// Solver mode for per-generation diameter caches (set once at server
  /// construction, before any load).
  void set_parallel_solve(bool parallel) { parallel_solve_ = parallel; }

 private:
  std::shared_ptr<const ServedGraph> build(const std::string& name,
                                           const std::filesystem::path& path,
                                           std::uint64_t generation) const;

  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<const ServedGraph>> graphs_;
  std::uint64_t next_generation_ = 1;
  bool parallel_solve_ = true;
};

}  // namespace fdiam::serve
