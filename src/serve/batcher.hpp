#pragma once
// Query batching for fdiam_serve: the piece that turns N concurrent
// point queries into one bit-parallel MS-BFS sweep.
//
// A naive server answers each eccentricity/distance request with its own
// BFS — O(n + m) per request. The MS-BFS engine (bfs/msbfs.hpp) runs 64
// sources through one sweep for roughly the cost of one traversal, so
// under concurrency the marginal cost of a point query collapses to a
// 64th of a BFS plus mask bookkeeping. QueryBatcher implements the
// collection side: connection threads submit() queries and block; a
// single worker thread drains the pending queue, groups queries that
// target the same ServedGraph generation (reload safety falls out of
// grouping by graph identity — mixed generations simply land in
// different batches), dedupes sources, and answers up to max_batch
// sources per msbfs_point_queries() call.
//
// The batching window is purely demand-driven: the worker sweeps
// whatever has accumulated while the previous sweep ran, so an idle
// server answers a lone query at one-BFS latency (no artificial delay)
// and a loaded server amortizes automatically — the classic group-commit
// dynamic. `batching = false` degrades to one single-source sweep per
// query, which is the baseline bench_serve compares against.
//
// Metrics (optional registry): batch occupancy histogram, sweep latency
// histogram, queue-depth gauge, and sweep/query counters feed the
// OpenMetrics endpoint via the server's registry.

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/graph_store.hpp"
#include "util/types.hpp"

namespace fdiam::obs {
class MetricRegistry;
}

namespace fdiam::serve {

/// One pending point query. The submitting thread owns the storage;
/// the worker fills the result fields before marking it done.
struct PointQuery {
  enum class Kind : std::uint8_t { kEccentricity, kDistance };
  Kind kind = Kind::kEccentricity;
  std::shared_ptr<const ServedGraph> graph;  ///< pins the generation
  vid_t u = 0;  ///< source vertex
  vid_t v = 0;  ///< target vertex (distance only)

  // Filled by the worker:
  dist_t value = -1;  ///< ecc(u) or d(u,v); -1 = v unreachable from u
  bool failed = false;
  std::string error;
  bool done = false;  ///< guarded by the batcher mutex
};

class QueryBatcher {
 public:
  struct Options {
    /// Sources per MS-BFS sweep; clamped to [1, 64] (one u64 mask word).
    int max_batch = 64;
    /// False = one single-source sweep per query (the naive baseline;
    /// bench_serve's control arm).
    bool batching = true;
    /// OpenMP-parallel sweep levels.
    bool parallel_sweep = true;
    /// Optional metrics sink (serve.batch.*, serve.sweep.*). Must
    /// outlive the batcher.
    obs::MetricRegistry* registry = nullptr;
  };

  explicit QueryBatcher(Options opt);
  ~QueryBatcher();

  QueryBatcher(const QueryBatcher&) = delete;
  QueryBatcher& operator=(const QueryBatcher&) = delete;

  void start();
  /// Graceful stop: the worker drains every already-submitted query,
  /// then exits. submit() after stop() fails the query immediately.
  void stop();

  /// Enqueue and block until answered. `q.graph` must be set and `q.u`
  /// (and `q.v` for distance) already range-checked by the caller.
  void submit(PointQuery& q);

 private:
  void worker_loop();
  void run_batch(std::vector<PointQuery*>& batch);

  Options opt_;
  std::mutex mu_;
  std::condition_variable work_cv_;   ///< worker waits for pending work
  std::condition_variable done_cv_;   ///< submitters wait for completion
  std::vector<PointQuery*> pending_;
  bool stopping_ = false;
  bool started_ = false;
  std::thread worker_;
};

}  // namespace fdiam::serve
