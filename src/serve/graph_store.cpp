#include "serve/graph_store.hpp"

#include <stdexcept>
#include <utility>

#include "io/io.hpp"
#include "obs/log/log.hpp"

namespace fdiam::serve {

ServedGraph::ServedGraph(std::string name, std::filesystem::path path,
                         Csr graph, std::uint64_t generation,
                         bool parallel_solve)
    : name_(std::move(name)),
      path_(std::move(path)),
      graph_(std::move(graph)),
      generation_(generation),
      parallel_solve_(parallel_solve) {}

const DiameterResult& ServedGraph::diameter() const {
  std::call_once(diameter_once_, [this] {
    FDiamOptions opt;
    opt.parallel = parallel_solve_;
    diameter_ = fdiam_diameter(graph_, opt);
    diameter_ready_.store(true, std::memory_order_release);
  });
  return diameter_;
}

const DiametralPath& ServedGraph::diametral() const {
  std::call_once(path_once_, [this] {
    const DiameterResult& d = diameter();
    BfsConfig config;
    config.parallel = parallel_solve_;
    dpath_ = diametral_path_from(graph_, d.witness, config);
  });
  return dpath_;
}

bool ServedGraph::diameter_cached() const {
  return diameter_ready_.load(std::memory_order_acquire);
}

std::shared_ptr<const ServedGraph> GraphStore::build(
    const std::string& name, const std::filesystem::path& path,
    std::uint64_t generation) const {
  // map_binary throws with a precise message on a missing/corrupt file;
  // the caller decides whether that aborts startup or fails a reload.
  Csr g = io::map_binary(path);
  return std::make_shared<ServedGraph>(name, path, std::move(g), generation,
                                       parallel_solve_);
}

std::uint64_t GraphStore::load(const std::string& name,
                               const std::filesystem::path& path) {
  if (name.empty()) {
    throw std::runtime_error("graph name must not be empty");
  }
  std::uint64_t generation;
  {
    std::lock_guard<std::mutex> lock(mu_);
    generation = next_generation_++;
  }
  std::shared_ptr<const ServedGraph> g = build(name, path, generation);
  {
    std::lock_guard<std::mutex> lock(mu_);
    graphs_[name] = g;
  }
  obs::Logger::instance().log(
      obs::LogLevel::kInfo, "serve", "graph loaded",
      {{"graph", name},
       {"path", path.string()},
       {"generation", generation},
       {"n", static_cast<std::uint64_t>(g->graph().num_vertices())},
       {"m", static_cast<std::uint64_t>(g->graph().num_edges())},
       {"mapped", g->graph().is_mapped()}});
  return generation;
}

std::shared_ptr<const ServedGraph> GraphStore::get(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (name.empty()) {
    if (graphs_.size() == 1) return graphs_.begin()->second;
    return nullptr;
  }
  auto it = graphs_.find(name);
  return it == graphs_.end() ? nullptr : it->second;
}

std::uint64_t GraphStore::reload(const std::string& name) {
  std::filesystem::path path;
  std::uint64_t generation;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = graphs_.find(name);
    if (it == graphs_.end()) {
      throw std::runtime_error("reload: unknown graph \"" + name + "\"");
    }
    path = it->second->path();
    generation = next_generation_++;
  }
  // Build outside the lock: mapping + header validation can do I/O, and
  // a failure here must leave the old entry serving.
  std::shared_ptr<const ServedGraph> fresh = build(name, path, generation);
  {
    std::lock_guard<std::mutex> lock(mu_);
    graphs_[name] = fresh;
  }
  obs::Logger::instance().log(obs::LogLevel::kInfo, "serve", "graph reloaded",
                              {{"graph", name}, {"generation", generation}});
  return generation;
}

std::vector<std::string> GraphStore::reload_all() {
  std::vector<std::string> names;
  {
    std::lock_guard<std::mutex> lock(mu_);
    names.reserve(graphs_.size());
    for (const auto& [name, g] : graphs_) names.push_back(name);
  }
  for (const std::string& name : names) reload(name);
  return names;
}

std::vector<std::shared_ptr<const ServedGraph>> GraphStore::list() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::shared_ptr<const ServedGraph>> out;
  out.reserve(graphs_.size());
  for (const auto& [name, g] : graphs_) out.push_back(g);
  return out;
}

std::size_t GraphStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return graphs_.size();
}

}  // namespace fdiam::serve
