#include "serve/client.hpp"

#include <cerrno>
#include <cstring>
#include <sstream>
#include <utility>
#include <vector>

#include "obs/json.hpp"
#include "serve/protocol.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#define FDIAM_SERVE_POSIX 1
#endif

namespace fdiam::serve {

Client::~Client() { close(); }

#if FDIAM_SERVE_POSIX

bool Client::connect(const std::string& socket_path) {
  close();
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    error_ = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    error_ = "socket path too long: " + socket_path;
    close();
    return false;
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    error_ = "connect " + socket_path + ": " + std::strerror(errno);
    close();
    return false;
  }
  return true;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

#else

bool Client::connect(const std::string&) {
  error_ = "fdiam_client requires POSIX sockets";
  return false;
}

void Client::close() {}

#endif

bool Client::call(std::string_view request, std::string& response) {
  if (fd_ < 0) {
    error_ = "not connected";
    return false;
  }
  if (!write_frame(fd_, request)) {
    error_ = "write failed";
    close();
    return false;
  }
  std::string read_error;
  ReadStatus st = read_frame(fd_, response, read_error);
  if (st != ReadStatus::kOk) {
    error_ = st == ReadStatus::kEof ? "server closed the connection"
                                    : read_error;
    close();
    return false;
  }
  return true;
}

namespace {

std::string build(std::string_view op, std::string_view graph,
                  std::uint64_t id,
                  const std::vector<std::pair<std::string_view, vid_t>>&
                      vertex_args = {}) {
  std::ostringstream os;
  obs::JsonWriter w(os, 0);
  w.begin_object();
  w.field("op", op);
  w.field("id", id);
  if (!graph.empty()) w.field("graph", graph);
  for (const auto& [key, value] : vertex_args) {
    w.field(key, static_cast<std::uint64_t>(value));
  }
  w.end_object();
  return os.str();
}

}  // namespace

std::string Client::simple(std::string_view op, std::string_view graph,
                           std::uint64_t id) {
  std::string response;
  if (!call(build(op, graph, id), response)) return {};
  return response;
}

std::string Client::ping(std::uint64_t id) { return simple("ping", {}, id); }

std::string Client::diameter(std::string_view graph, std::uint64_t id) {
  return simple("diameter", graph, id);
}

std::string Client::eccentricity(vid_t u, std::string_view graph,
                                 std::uint64_t id) {
  std::string response;
  if (!call(build("eccentricity", graph, id, {{"u", u}}), response)) {
    return {};
  }
  return response;
}

std::string Client::distance(vid_t u, vid_t v, std::string_view graph,
                             std::uint64_t id) {
  std::string response;
  if (!call(build("distance", graph, id, {{"u", u}, {"v", v}}), response)) {
    return {};
  }
  return response;
}

std::string Client::diametral_path(std::string_view graph, std::uint64_t id) {
  return simple("diametral_path", graph, id);
}

std::string Client::stats(std::uint64_t id) { return simple("stats", {}, id); }

std::string Client::reload(std::string_view graph, std::uint64_t id) {
  return simple("reload", graph, id);
}

std::string Client::shutdown(std::uint64_t id) {
  return simple("shutdown", {}, id);
}

}  // namespace fdiam::serve
