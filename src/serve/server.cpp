#include "serve/server.hpp"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/json.hpp"
#include "obs/log/log.hpp"
#include "obs/metrics/openmetrics.hpp"
#include "util/histogram.hpp"
#include "util/timer.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#define FDIAM_SERVE_POSIX 1
#endif

namespace fdiam::serve {

std::atomic<bool> Server::stop_flag_{false};
std::atomic<bool> Server::reload_flag_{false};

Server::Server(ServerOptions opt)
    : opt_(std::move(opt)),
      batcher_(QueryBatcher::Options{opt_.max_batch, opt_.batching,
                                     opt_.parallel, &registry_}) {
  store_.set_parallel_solve(opt_.parallel);
  stop_flag_.store(false, std::memory_order_relaxed);
  reload_flag_.store(false, std::memory_order_relaxed);
}

Server::~Server() { stop(); }

void Server::add_graph(const std::string& name,
                       const std::filesystem::path& path) {
  store_.load(name, path);
  registry_.gauge("serve.graphs").set(static_cast<double>(store_.size()));
}

#if FDIAM_SERVE_POSIX

void Server::start() {
  if (running_.load()) return;
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  const std::string path = opt_.socket_path.string();
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ::unlink(path.c_str());  // stale socket from a previous run
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    int e = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("bind " + path + ": " + std::strerror(e));
  }
  if (::listen(listen_fd_, 64) < 0) {
    int e = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(path.c_str());
    throw std::runtime_error(std::string("listen: ") + std::strerror(e));
  }
  running_.store(true);
  stop_requested_.store(false);
  batcher_.start();
  acceptor_ = std::thread([this] { acceptor_loop(); });
  obs::Logger::instance().log(obs::LogLevel::kInfo, "serve", "listening",
                              {{"socket", path},
                               {"graphs", static_cast<std::uint64_t>(
                                              store_.size())},
                               {"batching", opt_.batching},
                               {"max_batch", opt_.max_batch}});
}

void Server::acceptor_loop() {
  const int timeout_ms =
      std::max(1, static_cast<int>(opt_.poll_seconds * 1000.0));
  while (!stop_requested_.load(std::memory_order_relaxed)) {
    if (stop_flag_.load(std::memory_order_relaxed)) break;
    if (reload_flag_.exchange(false, std::memory_order_relaxed)) {
      do_reload();
    }
    pollfd pfd{listen_fd_, POLLIN, 0};
    int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0 || (pfd.revents & POLLIN) == 0) continue;
    int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;
    }
    registry_.counter("serve.connections").inc();
    std::lock_guard<std::mutex> lock(conn_mu_);
    open_fds_.push_back(conn);
    handlers_.emplace_back([this, conn] { handle_connection(conn); });
  }
  // Acceptor exit means a stop is in progress (flag, signal, or error);
  // make sure the full stop sequence runs even for the signal path.
  if (!stop_requested_.load(std::memory_order_relaxed)) {
    std::thread([this] { stop(); }).detach();
  }
}

void Server::handle_connection(int fd) {
  std::string payload;
  std::string io_error;
  for (;;) {
    ReadStatus st = read_frame(fd, payload, io_error);
    if (st == ReadStatus::kEof) break;
    if (st == ReadStatus::kError) {
      // Framing violations (oversized prefix, truncation) get one error
      // frame if the socket still accepts writes, then the connection
      // closes — a malformed PAYLOAD, by contrast, only fails the
      // request (dispatch handles that case).
      registry_.counter("serve.errors.framing").inc();
      (void)write_frame(fd, error_response(0, io_error));
      break;
    }
    Timer timer;
    std::string op = "invalid";
    std::string response;
    std::string parse_error;
    std::optional<Request> req = parse_request(payload, parse_error);
    if (!req.has_value()) {
      registry_.counter("serve.errors.request").inc();
      std::uint64_t id = 0;
      if (obs::json_valid(payload)) {
        if (std::optional<double> i = obs::json_number(payload, "id");
            i.has_value() && *i >= 0) {
          id = static_cast<std::uint64_t>(*i);
        }
      }
      response = error_response(id, parse_error);
    } else {
      op = verb_name(req->verb);
      response = dispatch(*req);
    }
    registry_.counter("serve.requests." + op).inc();
    registry_.histogram("serve.request.seconds." + op)
        .record(timer.seconds());
    if (!write_frame(fd, response)) break;
  }
  // Erase + close under conn_mu_ so stop()'s shutdown sweep can never
  // race a close and hit a recycled descriptor.
  std::lock_guard<std::mutex> lock(conn_mu_);
  open_fds_.erase(std::remove(open_fds_.begin(), open_fds_.end(), fd),
                  open_fds_.end());
  ::close(fd);
}

void Server::stop() {
  bool claimed = false;
  if (!stop_claimed_.compare_exchange_strong(claimed, true)) {
    // Another thread owns the stop; wait until it finishes so callers
    // (notably the destructor) never return mid-teardown.
    std::unique_lock<std::mutex> lock(join_mu_);
    join_cv_.wait(lock, [this] { return stopped_; });
    return;
  }
  stop_requested_.store(true);
  if (acceptor_.joinable() &&
      acceptor_.get_id() != std::this_thread::get_id()) {
    acceptor_.join();
  }
  // Unblock handler threads parked in read_frame(); their queries (if
  // any) are already in the batcher and will be drained below.
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (int fd : open_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  std::vector<std::thread> handlers;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    handlers.swap(handlers_);
  }
  for (std::thread& t : handlers) {
    if (t.joinable()) t.join();
  }
  batcher_.stop();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(opt_.socket_path.string().c_str());
  }
  running_.store(false);
  if (!opt_.metrics_out.empty()) {
    std::ofstream out(opt_.metrics_out);
    if (out) {
      obs::write_openmetrics(out, registry_);
    }
    if (!out) {
      obs::Logger::instance().log(obs::LogLevel::kError, "serve",
                                  "metrics write failed",
                                  {{"path", opt_.metrics_out.string()}});
    }
  }
  obs::Logger::instance().log(obs::LogLevel::kInfo, "serve", "stopped", {});
  {
    std::lock_guard<std::mutex> lock(join_mu_);
    stopped_ = true;
  }
  join_cv_.notify_all();
}

#else  // !FDIAM_SERVE_POSIX

void Server::start() {
  throw std::runtime_error("fdiam_serve requires POSIX sockets");
}
void Server::acceptor_loop() {}
void Server::handle_connection(int) {}
void Server::stop() {
  std::lock_guard<std::mutex> lock(join_mu_);
  stopped_ = true;
  join_cv_.notify_all();
}

#endif

void Server::join() {
  std::unique_lock<std::mutex> lock(join_mu_);
  join_cv_.wait(lock, [this] { return stopped_; });
}

void Server::do_reload() {
  Timer timer;
  try {
    std::vector<std::string> names = store_.reload_all();
    registry_.counter("serve.reloads").inc();
    obs::Logger::instance().log(
        obs::LogLevel::kInfo, "serve", "reload complete",
        {{"graphs", static_cast<std::uint64_t>(names.size())},
         {"seconds", timer.seconds()}});
  } catch (const std::exception& e) {
    registry_.counter("serve.errors.reload").inc();
    obs::Logger::instance().log(obs::LogLevel::kError, "serve",
                                "reload failed", {{"error", e.what()}});
  }
}

namespace {

/// Begin the uniform success envelope; the caller adds result fields and
/// closes the object.
void begin_ok(obs::JsonWriter& w, const Request& req) {
  w.begin_object();
  w.field("ok", true);
  w.field("id", req.id);
  w.field("op", verb_name(req.verb));
}

}  // namespace

std::string Server::dispatch(const Request& req) {
  switch (req.verb) {
    case Verb::kPing: {
      std::ostringstream os;
      obs::JsonWriter w(os, 0);
      begin_ok(w, req);
      w.field("result", "pong");
      w.end_object();
      return os.str();
    }
    case Verb::kEccentricity:
    case Verb::kDistance:
      return handle_point(req);
    case Verb::kDiameter:
      return handle_diameter(req);
    case Verb::kDiametralPath:
      return handle_path(req);
    case Verb::kStats:
      return handle_stats(req);
    case Verb::kReload:
      return handle_reload(req);
    case Verb::kShutdown: {
      // Answer first, then trigger the stop from a detached thread so
      // this handler (which stop() joins) is not joining itself.
      std::thread([this] { stop(); }).detach();
      std::ostringstream os;
      obs::JsonWriter w(os, 0);
      begin_ok(w, req);
      w.field("result", "stopping");
      w.end_object();
      return os.str();
    }
  }
  return error_response(req.id, "unhandled verb");
}

std::string Server::handle_point(const Request& req) {
  std::shared_ptr<const ServedGraph> g = store_.get(req.graph);
  if (g == nullptr) {
    registry_.counter("serve.errors.request").inc();
    return error_response(req.id, req.graph.empty()
                                      ? "no default graph (specify \"graph\")"
                                      : "unknown graph \"" + req.graph + "\"");
  }
  const vid_t n = g->graph().num_vertices();
  if (req.u >= n || (req.verb == Verb::kDistance && req.v >= n)) {
    registry_.counter("serve.errors.request").inc();
    return error_response(req.id, "vertex id out of range (n=" +
                                      std::to_string(n) + ")");
  }
  PointQuery q;
  q.kind = req.verb == Verb::kDistance ? PointQuery::Kind::kDistance
                                       : PointQuery::Kind::kEccentricity;
  q.graph = g;
  q.u = req.u;
  q.v = req.v;
  batcher_.submit(q);
  if (q.failed) {
    registry_.counter("serve.errors.internal").inc();
    return error_response(req.id, q.error);
  }
  std::ostringstream os;
  obs::JsonWriter w(os, 0);
  begin_ok(w, req);
  w.field("graph", g->name());
  w.field("generation", g->generation());
  w.field("u", static_cast<std::uint64_t>(req.u));
  if (req.verb == Verb::kDistance) {
    w.field("v", static_cast<std::uint64_t>(req.v));
    w.field("reachable", q.value >= 0);
    w.field("distance", static_cast<std::int64_t>(q.value));
  } else {
    w.field("eccentricity", static_cast<std::int64_t>(q.value));
  }
  w.end_object();
  return os.str();
}

std::string Server::handle_diameter(const Request& req) {
  std::shared_ptr<const ServedGraph> g = store_.get(req.graph);
  if (g == nullptr) {
    registry_.counter("serve.errors.request").inc();
    return error_response(req.id, req.graph.empty()
                                      ? "no default graph (specify \"graph\")"
                                      : "unknown graph \"" + req.graph + "\"");
  }
  const bool cached = g->diameter_cached();
  const DiameterResult& d = g->diameter();
  std::ostringstream os;
  obs::JsonWriter w(os, 0);
  begin_ok(w, req);
  w.field("graph", g->name());
  w.field("generation", g->generation());
  w.field("diameter", static_cast<std::int64_t>(d.diameter));
  w.field("witness", static_cast<std::uint64_t>(d.witness));
  w.field("connected", d.connected);
  w.field("cached", cached);
  w.end_object();
  return os.str();
}

std::string Server::handle_path(const Request& req) {
  std::shared_ptr<const ServedGraph> g = store_.get(req.graph);
  if (g == nullptr) {
    registry_.counter("serve.errors.request").inc();
    return error_response(req.id, req.graph.empty()
                                      ? "no default graph (specify \"graph\")"
                                      : "unknown graph \"" + req.graph + "\"");
  }
  const DiametralPath& p = g->diametral();
  std::ostringstream os;
  obs::JsonWriter w(os, 0);
  begin_ok(w, req);
  w.field("graph", g->name());
  w.field("generation", g->generation());
  w.field("diameter", static_cast<std::int64_t>(p.diameter));
  w.field("connected", p.connected);
  w.key("path").begin_array();
  for (vid_t v : p.path) w.value(static_cast<std::uint64_t>(v));
  w.end_array();
  w.end_object();
  return os.str();
}

std::string Server::handle_stats(const Request& req) {
  std::ostringstream os;
  obs::JsonWriter w(os, 0);
  begin_ok(w, req);
  w.field("protocol", kProtocolVersion);
  w.key("graphs").begin_array();
  for (const auto& g : store_.list()) {
    w.begin_object();
    w.field("name", g->name());
    w.field("path", g->path().string());
    w.field("generation", g->generation());
    w.field("n", static_cast<std::uint64_t>(g->graph().num_vertices()));
    w.field("m", static_cast<std::uint64_t>(g->graph().num_edges()));
    w.field("mapped", g->graph().is_mapped());
    w.field("diameter_cached", g->diameter_cached());
    w.end_object();
  }
  w.end_array();
  w.key("counters").begin_object();
  for (const auto& [name, value] : registry_.snapshot()) {
    w.field(name, value);
  }
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, snap] : registry_.snapshot_histograms()) {
    w.key(name).begin_object();
    w.field("count", snap.count);
    w.field("p50", snap.quantile(0.5));
    w.field("p99", snap.quantile(0.99));
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return os.str();
}

std::string Server::handle_reload(const Request& req) {
  try {
    std::ostringstream os;
    obs::JsonWriter w(os, 0);
    begin_ok(w, req);
    if (req.graph.empty()) {
      std::vector<std::string> names = store_.reload_all();
      w.key("reloaded").begin_array();
      for (const std::string& name : names) w.value(name);
      w.end_array();
    } else {
      std::uint64_t generation = store_.reload(req.graph);
      w.key("reloaded").begin_array().value(req.graph).end_array();
      w.field("generation", generation);
    }
    registry_.counter("serve.reloads").inc();
    w.end_object();
    return os.str();
  } catch (const std::exception& e) {
    registry_.counter("serve.errors.reload").inc();
    return error_response(req.id, e.what());
  }
}

void install_server_signal_handlers() {
#if FDIAM_SERVE_POSIX
  static std::atomic<bool> installed{false};
  if (installed.exchange(true, std::memory_order_acq_rel)) return;
  struct sigaction sa{};
  sa.sa_handler = [](int) { Server::request_stop_async(); };
  sigemptyset(&sa.sa_mask);
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
  struct sigaction hup{};
  hup.sa_handler = [](int) { Server::request_reload_async(); };
  sigemptyset(&hup.sa_mask);
  sigaction(SIGHUP, &hup, nullptr);
#endif
}

}  // namespace fdiam::serve
