#pragma once
// Minimal synchronous client for the fdiam_serve protocol: connect to a
// UNIX socket, send one JSON request frame, read one response frame.
// Shared by the fdiam_client CLI, the bench_serve load generator, and
// the end-to-end tests so none of them reimplement framing.

#include <cstdint>
#include <string>
#include <string_view>

#include "util/types.hpp"

namespace fdiam::serve {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connect to the daemon socket. False (with error() set) on failure.
  [[nodiscard]] bool connect(const std::string& socket_path);
  void close();
  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  /// Send one raw JSON payload and read the response payload. False on
  /// any transport failure (error() explains); the connection is dead
  /// afterwards and must be re-connected.
  [[nodiscard]] bool call(std::string_view request, std::string& response);

  /// Convenience builders around call(): each returns the raw response
  /// JSON (empty on transport failure). `graph` may be empty.
  [[nodiscard]] std::string ping(std::uint64_t id = 0);
  [[nodiscard]] std::string diameter(std::string_view graph = {},
                                     std::uint64_t id = 0);
  [[nodiscard]] std::string eccentricity(vid_t u, std::string_view graph = {},
                                         std::uint64_t id = 0);
  [[nodiscard]] std::string distance(vid_t u, vid_t v,
                                     std::string_view graph = {},
                                     std::uint64_t id = 0);
  [[nodiscard]] std::string diametral_path(std::string_view graph = {},
                                           std::uint64_t id = 0);
  [[nodiscard]] std::string stats(std::uint64_t id = 0);
  [[nodiscard]] std::string reload(std::string_view graph = {},
                                   std::uint64_t id = 0);
  [[nodiscard]] std::string shutdown(std::uint64_t id = 0);

  [[nodiscard]] const std::string& error() const { return error_; }

 private:
  std::string simple(std::string_view op, std::string_view graph,
                     std::uint64_t id);
  int fd_ = -1;
  std::string error_;
};

}  // namespace fdiam::serve
