#include <fstream>
#include <stdexcept>

#include "graph/edge_list.hpp"
#include "io/io.hpp"
#include "io/parse.hpp"

namespace fdiam::io {

namespace {
constexpr std::uint64_t kReserveCap = 1u << 22;  // see dimacs.cpp
}  // namespace

Csr read_metis(std::istream& in, const std::string& name, IoLimits limits) {
  std::string line;
  std::uint64_t lineno = 0;
  // Header: "<n> <m> [fmt [ncon]]" after any % comment lines.
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line[0] != '%') break;
  }
  std::uint64_t n = 0, m = 0, fmt = 0, ncon = 0;
  {
    const auto toks = detail::tokens(line);
    if (toks.size() < 2 || !detail::to_u64(toks[0], n) ||
        !detail::to_u64(toks[1], m)) {
      detail::fail_line(name, lineno, line,
                        "malformed METIS header (expected '<n> <m> [fmt]')");
    }
    if (toks.size() > 2 && !detail::to_u64(toks[2], fmt)) {
      detail::fail_line(name, lineno, line, "malformed METIS fmt field");
    }
    if (toks.size() > 3 && !detail::to_u64(toks[3], ncon)) {
      detail::fail_line(name, lineno, line, "malformed METIS ncon field");
    }
  }
  // fmt is a 3-digit bit string: 100 = vertex sizes, 10 = vertex weights,
  // 1 = edge weights. All are parsed and discarded.
  const bool edge_weights = fmt % 10 == 1;
  const bool vertex_weights = (fmt / 10) % 10 == 1;
  const bool vertex_sizes = (fmt / 100) % 10 == 1;
  if (fmt > 111 || fmt % 10 > 1 || (fmt / 10) % 10 > 1) {
    detail::fail_line(name, lineno, line,
                      "unsupported METIS fmt " + std::to_string(fmt));
  }
  const std::uint64_t weights_per_vertex =
      vertex_weights ? (ncon == 0 ? 1 : ncon) : 0;
  if (n > limits.max_vertices) {
    detail::fail_line(name, lineno, line,
                      "vertex count " + std::to_string(n) +
                          " exceeds the limit of " +
                          std::to_string(limits.max_vertices));
  }
  if (m > limits.max_edges) {
    detail::fail_line(name, lineno, line,
                      "edge count " + std::to_string(m) +
                          " exceeds the limit of " +
                          std::to_string(limits.max_edges));
  }

  EdgeList edges;
  edges.ensure_vertices(static_cast<vid_t>(n));
  edges.reserve(static_cast<std::size_t>(std::min(m, kReserveCap)));
  std::uint64_t v = 0;
  while (v < n && std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line[0] == '%') continue;
    const auto toks = detail::tokens(line);
    std::size_t i = 0;
    // Vertex size and the ncon vertex weights lead the line; discarded.
    const std::size_t skip =
        (vertex_sizes ? 1 : 0) + static_cast<std::size_t>(weights_per_vertex);
    for (std::size_t s = 0; s < skip; ++s, ++i) {
      std::uint64_t discard = 0;
      if (i >= toks.size() || !detail::to_u64(toks[i], discard)) {
        detail::fail_line(name, lineno, line,
                          "missing vertex size/weight fields");
      }
    }
    while (i < toks.size()) {
      std::uint64_t w = 0;
      if (!detail::to_u64(toks[i], w)) {
        detail::fail_line(name, lineno, line, "malformed METIS neighbor id");
      }
      ++i;
      if (w == 0 || w > n) {
        detail::fail_line(name, lineno, line,
                          "METIS neighbor outside [1, " + std::to_string(n) +
                              "]");
      }
      edges.add(static_cast<vid_t>(v), static_cast<vid_t>(w - 1));
      if (edge_weights) {
        std::uint64_t weight = 0;
        if (i >= toks.size() || !detail::to_u64(toks[i], weight)) {
          detail::fail_line(name, lineno, line,
                            "missing edge weight (fmt declares them)");
        }
        ++i;
      }
    }
    ++v;
  }
  if (v != n) {
    throw std::runtime_error("METIS file truncated: expected " +
                             std::to_string(n) + " adjacency lines in " +
                             name);
  }
  // Extra adjacency lines mean the header undercounted.
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line[0] == '%') continue;
    if (!detail::tokens(line).empty()) {
      detail::fail_line(name, lineno, line,
                        "content after the declared " + std::to_string(n) +
                            " adjacency lines");
    }
  }
  return Csr::from_edges(std::move(edges));
}

Csr read_metis(const std::filesystem::path& path, IoLimits limits) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path.string());
  return read_metis(in, path.string(), limits);
}

void write_metis(const Csr& g, const std::filesystem::path& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path.string());
  out << "% written by fdiam\n";
  out << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    bool first = true;
    for (const vid_t w : g.neighbors(v)) {
      if (!first) out << ' ';
      out << w + 1;
      first = false;
    }
    out << '\n';
  }
}

}  // namespace fdiam::io
