#include <fstream>
#include <sstream>
#include <stdexcept>

#include "graph/edge_list.hpp"
#include "io/io.hpp"

namespace fdiam::io {

Csr read_metis(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path.string());

  std::string line;
  // Header: "<n> <m> [fmt [ncon]]" after any % comment lines.
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  std::uint64_t n = 0, m = 0;
  std::uint64_t fmt = 0;
  {
    std::istringstream ls(line);
    if (!(ls >> n >> m)) {
      throw std::runtime_error("malformed METIS header in " + path.string());
    }
    ls >> fmt;  // optional; 0/1/10/11 encode vertex/edge weights
  }
  const bool edge_weights = fmt == 1 || fmt == 11;
  const bool vertex_weights = fmt == 10 || fmt == 11;

  EdgeList edges;
  edges.ensure_vertices(static_cast<vid_t>(n));
  edges.reserve(m);
  std::uint64_t v = 0;
  while (v < n && std::getline(in, line)) {
    if (!line.empty() && line[0] == '%') continue;
    std::istringstream ls(line);
    if (vertex_weights) {
      std::uint64_t weight;
      ls >> weight;  // discarded — the library is unweighted
    }
    std::uint64_t w = 0;
    while (ls >> w) {
      if (w == 0 || w > n) {
        throw std::runtime_error("METIS neighbor out of range in " +
                                 path.string());
      }
      edges.add(static_cast<vid_t>(v), static_cast<vid_t>(w - 1));
      if (edge_weights) {
        std::uint64_t weight;
        ls >> weight;  // discarded
      }
    }
    ++v;
  }
  if (v != n) {
    throw std::runtime_error("METIS file truncated: expected " +
                             std::to_string(n) + " adjacency lines in " +
                             path.string());
  }
  return Csr::from_edges(std::move(edges));
}

void write_metis(const Csr& g, const std::filesystem::path& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path.string());
  out << "% written by fdiam\n";
  out << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    bool first = true;
    for (const vid_t w : g.neighbors(v)) {
      if (!first) out << ' ';
      out << w + 1;
      first = false;
    }
    out << '\n';
  }
}

}  // namespace fdiam::io
