#include <cstring>
#include <fstream>
#include <stdexcept>

#include "io/io.hpp"

namespace fdiam::io {

namespace {
constexpr char kMagic[8] = {'F', 'D', 'I', 'A', 'M', 'C', 'S', 'R'};
constexpr std::uint32_t kVersion = 1;
}  // namespace

Csr read_binary(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path.string());

  char magic[8];
  std::uint32_t version = 0;
  std::uint64_t n = 0, arcs = 0;
  in.read(magic, sizeof magic);
  in.read(reinterpret_cast<char*>(&version), sizeof version);
  in.read(reinterpret_cast<char*>(&n), sizeof n);
  in.read(reinterpret_cast<char*>(&arcs), sizeof arcs);
  if (!in || std::memcmp(magic, kMagic, sizeof kMagic) != 0 ||
      version != kVersion) {
    throw std::runtime_error("not an fdiam binary CSR file: " +
                             path.string());
  }

  std::vector<eid_t> offsets(n + 1);
  std::vector<vid_t> neighbors(arcs);
  in.read(reinterpret_cast<char*>(offsets.data()),
          static_cast<std::streamsize>(offsets.size() * sizeof(eid_t)));
  in.read(reinterpret_cast<char*>(neighbors.data()),
          static_cast<std::streamsize>(neighbors.size() * sizeof(vid_t)));
  if (!in) throw std::runtime_error("truncated binary CSR: " + path.string());
  return Csr::from_raw(std::move(offsets), std::move(neighbors));
}

void write_binary(const Csr& g, const std::filesystem::path& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot write " + path.string());
  const std::uint32_t version = kVersion;
  const std::uint64_t n = g.num_vertices();
  const std::uint64_t arcs = g.num_arcs();
  out.write(kMagic, sizeof kMagic);
  out.write(reinterpret_cast<const char*>(&version), sizeof version);
  out.write(reinterpret_cast<const char*>(&n), sizeof n);
  out.write(reinterpret_cast<const char*>(&arcs), sizeof arcs);
  out.write(reinterpret_cast<const char*>(g.offsets().data()),
            static_cast<std::streamsize>(g.offsets().size() * sizeof(eid_t)));
  out.write(
      reinterpret_cast<const char*>(g.raw_neighbors().data()),
      static_cast<std::streamsize>(g.raw_neighbors().size() * sizeof(vid_t)));
  if (!out) throw std::runtime_error("write failed: " + path.string());
}

}  // namespace fdiam::io
