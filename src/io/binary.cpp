#include <cstring>
#include <fstream>
#include <limits>
#include <stdexcept>

#include "io/io.hpp"

namespace fdiam::io {

namespace {
constexpr char kMagic[8] = {'F', 'D', 'I', 'A', 'M', 'C', 'S', 'R'};
constexpr std::uint32_t kVersion = 1;
}  // namespace

Csr read_binary(std::istream& in, const std::string& name, IoLimits limits) {
  char magic[8];
  std::uint32_t version = 0;
  std::uint64_t n = 0, arcs = 0;
  in.read(magic, sizeof magic);
  in.read(reinterpret_cast<char*>(&version), sizeof version);
  in.read(reinterpret_cast<char*>(&n), sizeof n);
  in.read(reinterpret_cast<char*>(&arcs), sizeof arcs);
  if (!in || std::memcmp(magic, kMagic, sizeof kMagic) != 0 ||
      version != kVersion) {
    throw std::runtime_error("not an fdiam binary CSR file: " + name);
  }
  // Validate the header-declared counts BEFORE sizing any allocation: a
  // corrupt header must throw, not exhaust memory or crash in resize().
  if (n > kMaxVertexId + 1 || n > limits.max_vertices) {
    throw std::runtime_error("binary CSR header of " + name + " declares " +
                             std::to_string(n) +
                             " vertices, beyond the limit of " +
                             std::to_string(std::min<std::uint64_t>(
                                 kMaxVertexId + 1, limits.max_vertices)));
  }
  if (arcs > limits.max_edges ||
      arcs > (std::numeric_limits<std::uint64_t>::max() - (n + 1) *
              sizeof(eid_t)) / sizeof(vid_t)) {
    throw std::runtime_error("binary CSR header of " + name + " declares " +
                             std::to_string(arcs) + " arcs, beyond the limit");
  }
  const std::uint64_t payload =
      (n + 1) * sizeof(eid_t) + arcs * sizeof(vid_t);
  // Cheap exact-size check when the stream is seekable (files and
  // stringstreams both are): catches truncation and trailing junk before
  // allocating payload-sized buffers.
  if (const auto data_pos = in.tellg(); data_pos >= 0) {
    in.seekg(0, std::ios::end);
    if (const auto end_pos = in.tellg(); end_pos >= 0) {
      const auto available =
          static_cast<std::uint64_t>(end_pos - data_pos);
      if (available != payload) {
        throw std::runtime_error(
            "binary CSR " + name + " is " +
            (available < payload ? "truncated" : "oversized") + ": header "
            "promises " + std::to_string(payload) + " payload bytes, found " +
            std::to_string(available));
      }
    }
    in.seekg(data_pos);
  }

  std::vector<eid_t> offsets(n + 1);
  std::vector<vid_t> neighbors(arcs);
  in.read(reinterpret_cast<char*>(offsets.data()),
          static_cast<std::streamsize>(offsets.size() * sizeof(eid_t)));
  in.read(reinterpret_cast<char*>(neighbors.data()),
          static_cast<std::streamsize>(neighbors.size() * sizeof(vid_t)));
  if (!in) throw std::runtime_error("truncated binary CSR: " + name);
  try {
    return Csr::from_raw(std::move(offsets), std::move(neighbors));
  } catch (const std::invalid_argument& e) {
    // Corrupt payload bytes are a file problem, not a caller logic error.
    throw std::runtime_error("corrupt binary CSR " + name + ": " + e.what());
  }
}

Csr read_binary(const std::filesystem::path& path, IoLimits limits) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path.string());
  return read_binary(in, path.string(), limits);
}

void write_binary(const Csr& g, const std::filesystem::path& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot write " + path.string());
  const std::uint32_t version = kVersion;
  const std::uint64_t n = g.num_vertices();
  const std::uint64_t arcs = g.num_arcs();
  out.write(kMagic, sizeof kMagic);
  out.write(reinterpret_cast<const char*>(&version), sizeof version);
  out.write(reinterpret_cast<const char*>(&n), sizeof n);
  out.write(reinterpret_cast<const char*>(&arcs), sizeof arcs);
  // A default-constructed (empty) Csr has no offsets array, but the format
  // always carries n + 1 of them; synthesize the single 0 so an empty
  // graph round-trips instead of failing the reader's size check.
  static constexpr eid_t kZeroOffset = 0;
  const bool empty = g.offsets().empty();
  out.write(reinterpret_cast<const char*>(
                empty ? &kZeroOffset : g.offsets().data()),
            static_cast<std::streamsize>(
                (empty ? 1 : g.offsets().size()) * sizeof(eid_t)));
  out.write(
      reinterpret_cast<const char*>(g.raw_neighbors().data()),
      static_cast<std::streamsize>(g.raw_neighbors().size() * sizeof(vid_t)));
  if (!out) throw std::runtime_error("write failed: " + path.string());
}

}  // namespace fdiam::io
