// .csrbin reader/writer — see the csrbin namespace in io/io.hpp for the
// v1/v2 layouts. The reader accepts both versions from a stream; the
// writer emits v2 (aligned, mappable) through bounded-chunk raw writes;
// map_binary() turns a v2 file into a zero-copy Csr view.

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

#include "io/io.hpp"
#include "io/raw_writer.hpp"
#include "util/mapped_file.hpp"

namespace fdiam::io {

namespace {

// Parsed + validated header, either version, with the section table
// normalized to absolute file offsets.
struct BinHeader {
  std::uint32_t version = 0;
  std::uint64_t n = 0;
  std::uint64_t arcs = 0;
  std::uint64_t offsets_off = 0;    // file offset of the offsets array
  std::uint64_t neighbors_off = 0;  // file offset of the neighbors array
  std::uint64_t total_bytes = 0;    // exact file size the header implies
};

std::uint64_t offsets_bytes(std::uint64_t n) {
  return (n + 1) * sizeof(eid_t);
}

template <typename T>
T load_raw(const std::byte* p) {
  T v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

void check_counts(std::uint64_t n, std::uint64_t arcs, const std::string& name,
                  const IoLimits& limits) {
  // Validate the header-declared counts BEFORE sizing any allocation: a
  // corrupt header must throw, not exhaust memory or crash in resize().
  if (n > kMaxVertexId + 1 || n > limits.max_vertices) {
    throw std::runtime_error("binary CSR header of " + name + " declares " +
                             std::to_string(n) +
                             " vertices, beyond the limit of " +
                             std::to_string(std::min<std::uint64_t>(
                                 kMaxVertexId + 1, limits.max_vertices)));
  }
  if (arcs > limits.max_edges ||
      arcs > (std::numeric_limits<std::uint64_t>::max() -
              (n + 1) * sizeof(eid_t)) /
                 sizeof(vid_t)) {
    throw std::runtime_error("binary CSR header of " + name + " declares " +
                             std::to_string(arcs) + " arcs, beyond the limit");
  }
}

/// Parse + validate a header from the first `size` bytes of the file.
/// `size` only needs to cover the header itself (28 or 64 bytes).
BinHeader parse_header(const std::byte* data, std::uint64_t size,
                       const std::string& name, const IoLimits& limits) {
  if (size < csrbin::kLegacyHeaderBytes ||
      std::memcmp(data, csrbin::kMagic, sizeof csrbin::kMagic) != 0) {
    throw std::runtime_error("not an fdiam binary CSR file: " + name);
  }
  BinHeader h;
  h.version = load_raw<std::uint32_t>(data + 8);
  if (h.version == csrbin::kVersionLegacy) {
    h.n = load_raw<std::uint64_t>(data + 12);
    h.arcs = load_raw<std::uint64_t>(data + 20);
    check_counts(h.n, h.arcs, name, limits);
    h.offsets_off = csrbin::kLegacyHeaderBytes;
    h.neighbors_off = h.offsets_off + offsets_bytes(h.n);
    h.total_bytes = h.neighbors_off + h.arcs * sizeof(vid_t);
    return h;
  }
  if (h.version != csrbin::kVersion) {
    throw std::runtime_error("binary CSR " + name +
                             " has unsupported version " +
                             std::to_string(h.version));
  }
  if (size < csrbin::kHeaderBytes) {
    throw std::runtime_error("binary CSR " + name + " is truncated: v2 "
                             "header needs " +
                             std::to_string(csrbin::kHeaderBytes) + " bytes");
  }
  if (load_raw<std::uint32_t>(data + 12) != csrbin::kEndianMark) {
    throw std::runtime_error(
        "binary CSR " + name +
        " was written on a machine with different endianness");
  }
  h.n = load_raw<std::uint64_t>(data + 16);
  h.arcs = load_raw<std::uint64_t>(data + 24);
  h.offsets_off = load_raw<std::uint64_t>(data + 32);
  h.neighbors_off = load_raw<std::uint64_t>(data + 40);
  check_counts(h.n, h.arcs, name, limits);
  // Section table sanity: in order, non-overlapping, aligned enough to
  // reinterpret in place. Overflow-guard the size computation so a
  // wrapped total can't fake a matching file size.
  if (h.offsets_off < csrbin::kHeaderBytes ||
      h.offsets_off % alignof(eid_t) != 0 ||
      h.offsets_off >
          std::numeric_limits<std::uint64_t>::max() - offsets_bytes(h.n) ||
      h.neighbors_off < h.offsets_off + offsets_bytes(h.n) ||
      h.neighbors_off % alignof(vid_t) != 0 ||
      h.neighbors_off >
          std::numeric_limits<std::uint64_t>::max() - h.arcs * sizeof(vid_t)) {
    throw std::runtime_error("binary CSR " + name +
                             " has a corrupt section table");
  }
  h.total_bytes = h.neighbors_off + h.arcs * sizeof(vid_t);
  return h;
}

[[noreturn]] void throw_size_mismatch(const std::string& name,
                                      std::uint64_t available,
                                      std::uint64_t expected) {
  throw std::runtime_error(
      "binary CSR " + name + " is " +
      (available < expected ? "truncated" : "oversized") +
      ": header promises " + std::to_string(expected) + " bytes, found " +
      std::to_string(available));
}

}  // namespace

Csr read_binary(std::istream& in, const std::string& name, IoLimits limits) {
  const auto start_pos = in.tellg();
  std::byte header[csrbin::kHeaderBytes];
  in.read(reinterpret_cast<char*>(header), csrbin::kLegacyHeaderBytes);
  if (!in) throw std::runtime_error("not an fdiam binary CSR file: " + name);
  if (load_raw<std::uint32_t>(header + 8) == csrbin::kVersion) {
    in.read(reinterpret_cast<char*>(header) + csrbin::kLegacyHeaderBytes,
            csrbin::kHeaderBytes - csrbin::kLegacyHeaderBytes);
    if (!in) {
      throw std::runtime_error("binary CSR " + name +
                               " is truncated: v2 header needs " +
                               std::to_string(csrbin::kHeaderBytes) +
                               " bytes");
    }
  }
  const std::uint64_t header_bytes =
      static_cast<std::uint64_t>(in.tellg() - start_pos);
  const BinHeader h = parse_header(header, header_bytes, name, limits);

  // Cheap exact-size check when the stream is seekable (files and
  // stringstreams both are): catches truncation and trailing junk before
  // allocating payload-sized buffers.
  if (start_pos >= 0) {
    const auto data_pos = in.tellg();
    in.seekg(0, std::ios::end);
    if (const auto end_pos = in.tellg(); end_pos >= 0) {
      const auto available = static_cast<std::uint64_t>(end_pos - start_pos);
      if (available != h.total_bytes) {
        throw_size_mismatch(name, available, h.total_bytes);
      }
    }
    in.seekg(data_pos);
  }

  std::vector<eid_t> offsets(h.n + 1);
  std::vector<vid_t> neighbors(h.arcs);
  in.ignore(static_cast<std::streamsize>(h.offsets_off - header_bytes));
  in.read(reinterpret_cast<char*>(offsets.data()),
          static_cast<std::streamsize>(offsets.size() * sizeof(eid_t)));
  in.ignore(static_cast<std::streamsize>(h.neighbors_off - h.offsets_off -
                                         offsets_bytes(h.n)));
  in.read(reinterpret_cast<char*>(neighbors.data()),
          static_cast<std::streamsize>(neighbors.size() * sizeof(vid_t)));
  if (!in) throw std::runtime_error("truncated binary CSR: " + name);
  try {
    return Csr::from_raw(std::move(offsets), std::move(neighbors));
  } catch (const std::invalid_argument& e) {
    // Corrupt payload bytes are a file problem, not a caller logic error.
    throw std::runtime_error("corrupt binary CSR " + name + ": " + e.what());
  }
}

Csr read_binary(const std::filesystem::path& path, IoLimits limits) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path.string());
  return read_binary(in, path.string(), limits);
}

void write_binary(const Csr& g, const std::filesystem::path& path,
                  BinaryWriteOptions options) {
  if (options.version != csrbin::kVersion &&
      options.version != csrbin::kVersionLegacy) {
    throw std::invalid_argument("write_binary: unknown csrbin version " +
                                std::to_string(options.version));
  }
  const std::uint64_t n = g.num_vertices();
  const std::uint64_t arcs = g.num_arcs();

  RawWriter out(path);
  std::uint64_t offsets_off = 0;
  std::uint64_t neighbors_off = 0;
  if (options.version == csrbin::kVersionLegacy) {
    std::byte header[csrbin::kLegacyHeaderBytes];
    std::memcpy(header, csrbin::kMagic, 8);
    std::memcpy(header + 8, &options.version, 4);
    std::memcpy(header + 12, &n, 8);
    std::memcpy(header + 20, &arcs, 8);
    out.write(header, sizeof header);
    offsets_off = csrbin::kLegacyHeaderBytes;
    neighbors_off = offsets_off + offsets_bytes(n);
  } else {
    offsets_off = csrbin::kHeaderBytes;
    neighbors_off = csrbin::align_up(offsets_off + offsets_bytes(n));
    std::byte header[csrbin::kHeaderBytes] = {};
    std::memcpy(header, csrbin::kMagic, 8);
    std::memcpy(header + 8, &options.version, 4);
    std::memcpy(header + 12, &csrbin::kEndianMark, 4);
    std::memcpy(header + 16, &n, 8);
    std::memcpy(header + 24, &arcs, 8);
    std::memcpy(header + 32, &offsets_off, 8);
    std::memcpy(header + 40, &neighbors_off, 8);
    out.write(header, sizeof header);
  }

  // A default-constructed (empty) Csr has no offsets array, but the format
  // always carries n + 1 of them; synthesize the single 0 so an empty
  // graph round-trips instead of failing the reader's size check.
  static constexpr eid_t kZeroOffset = 0;
  const bool empty = g.offsets().empty();
  out.write(empty ? &kZeroOffset : g.offsets().data(),
            (empty ? 1 : g.offsets().size()) * sizeof(eid_t));
  out.pad(neighbors_off - offsets_off - offsets_bytes(n));
  out.write(g.raw_neighbors().data(),
            g.raw_neighbors().size() * sizeof(vid_t));
  out.finish(options.sync);
}

Csr map_binary(const std::filesystem::path& path, IoLimits limits,
               bool verify_neighbors) {
  const std::string name = path.string();
  auto file = std::make_shared<util::MappedFile>(util::MappedFile::open(path));
  const BinHeader h = parse_header(file->data(), file->size(), name, limits);
  if (h.version == csrbin::kVersionLegacy) {
    // v1 sections sit at unaligned file offsets (28-byte header) — they
    // cannot be reinterpreted in place; eager-load instead.
    file.reset();
    return read_binary(path, limits);
  }
  if (file->size() != h.total_bytes) {
    throw_size_mismatch(name, file->size(), h.total_bytes);
  }
  const std::byte* base = file->data();
  const std::span<const eid_t> offsets(
      reinterpret_cast<const eid_t*>(base + h.offsets_off), h.n + 1);
  const std::span<const vid_t> neighbors(
      reinterpret_cast<const vid_t*>(base + h.neighbors_off), h.arcs);
  try {
    return Csr::from_mapped(std::move(file), offsets, neighbors,
                            verify_neighbors);
  } catch (const std::invalid_argument& e) {
    throw std::runtime_error("corrupt binary CSR " + name + ": " + e.what());
  }
}

}  // namespace fdiam::io
