#include <fstream>
#include <sstream>
#include <stdexcept>

#include "graph/edge_list.hpp"
#include "io/io.hpp"

namespace fdiam::io {

Csr read_snap(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path.string());

  EdgeList edges;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ls(line);
    std::uint64_t u = 0, v = 0;
    if (!(ls >> u >> v)) {
      throw std::runtime_error("malformed edge line in " + path.string() +
                               ": " + line);
    }
    edges.add(static_cast<vid_t>(u), static_cast<vid_t>(v));
  }
  return Csr::from_edges(std::move(edges));
}

void write_snap(const Csr& g, const std::filesystem::path& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path.string());
  out << "# undirected graph: " << g.num_vertices() << " vertices, "
      << g.num_edges() << " edges (each written once)\n";
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    for (const vid_t w : g.neighbors(v)) {
      if (v < w) out << v << '\t' << w << '\n';
    }
  }
}

}  // namespace fdiam::io
