#include <fstream>
#include <stdexcept>

#include "graph/edge_list.hpp"
#include "io/io.hpp"
#include "io/parse.hpp"

namespace fdiam::io {

Csr read_snap(std::istream& in, const std::string& name, IoLimits limits) {
  EdgeList edges;
  std::string line;
  std::uint64_t lineno = 0;
  std::uint64_t edges_seen = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto toks = detail::tokens(line);
    if (toks.empty() || toks[0][0] == '#' || toks[0][0] == '%') continue;
    std::uint64_t u = 0, v = 0;
    // Extra columns (weights/timestamps in some SNAP dumps) are ignored.
    if (toks.size() < 2 || !detail::to_u64(toks[0], u) ||
        !detail::to_u64(toks[1], v)) {
      detail::fail_line(name, lineno, line,
                        "malformed edge line (expected '<u> <v>')");
    }
    const vid_t cu = checked_vid(u, "vertex id", name + ":" +
                                        std::to_string(lineno));
    const vid_t cv = checked_vid(v, "vertex id", name + ":" +
                                        std::to_string(lineno));
    if (u + 1 > limits.max_vertices || v + 1 > limits.max_vertices) {
      detail::fail_line(name, lineno, line,
                        "vertex id exceeds the limit of " +
                            std::to_string(limits.max_vertices - 1));
    }
    if (++edges_seen > limits.max_edges) {
      detail::fail_line(name, lineno, line,
                        "more edges than the limit of " +
                            std::to_string(limits.max_edges));
    }
    edges.add(cu, cv);
  }
  return Csr::from_edges(std::move(edges));
}

Csr read_snap(const std::filesystem::path& path, IoLimits limits) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path.string());
  return read_snap(in, path.string(), limits);
}

void write_snap(const Csr& g, const std::filesystem::path& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path.string());
  out << "# undirected graph: " << g.num_vertices() << " vertices, "
      << g.num_edges() << " edges (each written once)\n";
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    for (const vid_t w : g.neighbors(v)) {
      if (v < w) out << v << '\t' << w << '\n';
    }
  }
}

}  // namespace fdiam::io
