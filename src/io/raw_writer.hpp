#pragma once
// Bounded-chunk raw-write file sink, shared by the .csrbin writer
// (io/binary.cpp) and the external-memory builder
// (graph/stream_builder.cpp). Chunking keeps each syscall a sane size
// regardless of array length; any failed write removes the partial file
// so a half-written graph cache can never be picked up by a later run,
// and ENOSPC is reported as a distinct "disk full" error instead of a
// generic stream failure.

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <utility>

#if defined(__linux__) || defined(__APPLE__)
#define FDIAM_HAVE_POSIX_WRITE 1
#include <fcntl.h>
#include <unistd.h>
#endif

namespace fdiam::io {

class RawWriter {
 public:
  explicit RawWriter(const std::filesystem::path& path)
      : path_(path.string()) {
#ifdef FDIAM_HAVE_POSIX_WRITE
    fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                 0644);
    if (fd_ < 0) {
      throw std::runtime_error("cannot write " + path_ + ": " +
                               std::strerror(errno));
    }
#else
    out_.open(path, std::ios::binary | std::ios::trunc);
    if (!out_) throw std::runtime_error("cannot write " + path_);
#endif
  }

  ~RawWriter() {
#ifdef FDIAM_HAVE_POSIX_WRITE
    if (fd_ >= 0) ::close(fd_);  // finish() not reached: error unwind
#endif
  }

  RawWriter(const RawWriter&) = delete;
  RawWriter& operator=(const RawWriter&) = delete;

  void write(const void* data, std::uint64_t bytes) {
    static constexpr std::uint64_t kChunk = 4u << 20;
    const char* p = static_cast<const char*>(data);
    while (bytes != 0) {
      const auto chunk = std::min(bytes, kChunk);
#ifdef FDIAM_HAVE_POSIX_WRITE
      const ssize_t wrote = ::write(fd_, p, chunk);
      if (wrote < 0) {
        if (errno == EINTR) continue;
        fail(errno);
      }
      p += wrote;
      bytes -= static_cast<std::uint64_t>(wrote);
#else
      out_.write(p, static_cast<std::streamsize>(chunk));
      if (!out_) fail(ENOSPC);
      p += chunk;
      bytes -= chunk;
#endif
    }
  }

  /// Write `bytes` zero bytes (section-alignment padding).
  void pad(std::uint64_t bytes) {
    static constexpr char zeros[64] = {};
    while (bytes != 0) {
      const auto chunk = std::min<std::uint64_t>(bytes, sizeof zeros);
      write(zeros, chunk);
      bytes -= chunk;
    }
  }

  /// Flush and close; with `sync`, fsync(2) first so the file survives a
  /// crash right after the build that produced it. Must be called on the
  /// success path — the destructor only releases the descriptor.
  void finish(bool sync) {
#ifdef FDIAM_HAVE_POSIX_WRITE
    if (sync && ::fsync(fd_) != 0) fail(errno);
    const int fd = std::exchange(fd_, -1);
    if (::close(fd) != 0) fail(errno);  // deferred ENOSPC on NFS & co.
#else
    out_.flush();
    if (!out_) fail(ENOSPC);
#endif
  }

 private:
  [[noreturn]] void fail(int err) {
#ifdef FDIAM_HAVE_POSIX_WRITE
    if (fd_ >= 0) ::close(std::exchange(fd_, -1));
#else
    out_.close();
#endif
    std::error_code ignored;
    std::filesystem::remove(path_, ignored);
    if (err == ENOSPC) {
      throw std::runtime_error("disk full (ENOSPC) while writing " + path_ +
                               "; partial file removed");
    }
    throw std::runtime_error("write failed: " + path_ + ": " +
                             std::strerror(err) + "; partial file removed");
  }

  std::string path_;
#ifdef FDIAM_HAVE_POSIX_WRITE
  int fd_ = -1;
#else
  std::ofstream out_;
#endif
};

}  // namespace fdiam::io
