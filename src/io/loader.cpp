#include <stdexcept>

#include "io/io.hpp"

namespace fdiam::io {

Csr load_graph(const std::filesystem::path& path, IoLimits limits) {
  const std::string ext = path.extension().string();
  if (ext == ".gr") return read_dimacs(path, limits);
  if (ext == ".txt" || ext == ".el" || ext == ".snap") {
    return read_snap(path, limits);
  }
  if (ext == ".mtx") return read_matrix_market(path, limits);
  if (ext == ".metis" || ext == ".graph") return read_metis(path, limits);
  if (ext == ".csrbin") return read_binary(path, limits);
  throw std::runtime_error(
      "unknown graph file extension: " + path.string() +
      " (expected .gr, .txt, .el, .snap, .mtx, .metis, .graph, .csrbin)");
}

}  // namespace fdiam::io
