#include <stdexcept>

#include "io/io.hpp"

namespace fdiam::io {

Csr load_graph(const std::filesystem::path& path) {
  const std::string ext = path.extension().string();
  if (ext == ".gr") return read_dimacs(path);
  if (ext == ".txt" || ext == ".el" || ext == ".snap") return read_snap(path);
  if (ext == ".mtx") return read_matrix_market(path);
  if (ext == ".metis" || ext == ".graph") return read_metis(path);
  if (ext == ".csrbin") return read_binary(path);
  throw std::runtime_error(
      "unknown graph file extension: " + path.string() +
      " (expected .gr, .txt, .el, .snap, .mtx, .metis, .graph, .csrbin)");
}

}  // namespace fdiam::io
