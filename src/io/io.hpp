#pragma once
// Graph file I/O. Readers for the formats the paper's real inputs ship in
// (so the genuine SNAP / SuiteSparse / DIMACS-9 files can be dropped into
// the harness), writers for round-tripping, and a fast binary CSR format
// for caching generated graphs.
//
// All loaders produce undirected graphs: each input arc/edge contributes
// both directions and the CSR builder removes duplicates and self-loops.
//
// Input-validation guarantees (see docs/HARDENING.md): every reader
// either returns a structurally valid Csr or throws std::runtime_error
// with the file name, line number, and offending content. Malformed
// bytes never crash, silently truncate an id, or build a wrong graph.
// Each reader also has an std::istream overload so in-memory bytes can
// be parsed without touching the filesystem — the fuzz harnesses in
// tests/fuzz/ drive these.

#include <cstdint>
#include <filesystem>
#include <istream>
#include <limits>
#include <stdexcept>
#include <string>

#include "graph/csr.hpp"

namespace fdiam::io {

/// Largest vertex id a reader accepts. One smaller than the vid_t maximum
/// because num_vertices = id + 1 must itself fit in vid_t.
inline constexpr std::uint64_t kMaxVertexId =
    std::numeric_limits<vid_t>::max() - 1;

/// Checked narrowing of a parsed 64-bit id into vid_t. `what` names the
/// quantity ("vertex id", "row"), `context` names the file/line. Throws
/// std::runtime_error instead of wrapping — a SNAP id of 2^32 used to
/// silently alias vertex 0 and build a wrong graph.
inline vid_t checked_vid(std::uint64_t value, const char* what,
                         const std::string& context) {
  if (value > kMaxVertexId) {
    throw std::runtime_error(std::string(what) + " " + std::to_string(value) +
                             " exceeds the 32-bit vertex-id limit (" +
                             std::to_string(kMaxVertexId) + ") in " + context);
  }
  return static_cast<vid_t>(value);
}

/// Resource ceilings applied while parsing, checked BEFORE any allocation
/// sized by header-declared counts. The defaults admit anything the type
/// system can represent (real multi-hundred-million-edge inputs load
/// unchanged); the fuzz harnesses pass tight limits so a mutated header
/// declaring 2^60 vertices throws instead of exhausting memory.
struct IoLimits {
  std::uint64_t max_vertices = kMaxVertexId + 1;
  std::uint64_t max_edges = std::numeric_limits<std::uint64_t>::max();
};

/// DIMACS-9 shortest-path format (.gr): "p sp <n> <m>" header and
/// "a <u> <v> <w>" arcs, 1-indexed; weights are ignored (the paper treats
/// the road networks as unweighted). Arc endpoints must lie in [1, n].
/// Throws std::runtime_error on malformed input.
Csr read_dimacs(const std::filesystem::path& path, IoLimits limits = {});
Csr read_dimacs(std::istream& in, const std::string& name,
                IoLimits limits = {});
void write_dimacs(const Csr& g, const std::filesystem::path& path);

/// SNAP edge-list format (.txt/.el): '#' comment lines, one
/// whitespace-separated "u v" pair per line, 0-indexed ids used verbatim
/// (num_vertices = max id + 1). Extra columns (timestamps/weights in some
/// SNAP dumps) are ignored.
Csr read_snap(const std::filesystem::path& path, IoLimits limits = {});
Csr read_snap(std::istream& in, const std::string& name, IoLimits limits = {});
void write_snap(const Csr& g, const std::filesystem::path& path);

/// Matrix Market coordinate format (.mtx) as used by SuiteSparse:
/// pattern/real/integer entries, general or symmetric, 1-indexed; entries
/// must lie inside the declared rows x cols box.
Csr read_matrix_market(const std::filesystem::path& path, IoLimits limits = {});
Csr read_matrix_market(std::istream& in, const std::string& name,
                       IoLimits limits = {});
void write_matrix_market(const Csr& g, const std::filesystem::path& path);

/// Fast binary CSR (.csrbin) layout constants, shared by the reader, the
/// writer, and the streaming builder (graph/stream_builder.hpp) which
/// emits the format directly to disk.
///
/// v1 (legacy): 28-byte packed header (magic, u32 version, u64 n,
/// u64 arcs) followed immediately by the offsets and neighbors arrays —
/// readable forever, but the arrays land at unaligned file offsets, so it
/// cannot be traversed in place.
///
/// v2 (current): 64-byte header adding a u32 endianness marker
/// (kEndianMark, so a file from an other-endian machine is rejected
/// instead of decoded into garbage) and an explicit section table; both
/// array sections are 64-byte aligned so a page-aligned mmap of the file
/// IS a valid CSR — io::map_binary() hands out zero-copy views.
namespace csrbin {
inline constexpr char kMagic[8] = {'F', 'D', 'I', 'A', 'M', 'C', 'S', 'R'};
inline constexpr std::uint32_t kVersionLegacy = 1;
inline constexpr std::uint32_t kVersion = 2;
inline constexpr std::uint32_t kEndianMark = 0x01020304;
inline constexpr std::uint64_t kLegacyHeaderBytes = 28;
inline constexpr std::uint64_t kHeaderBytes = 64;
inline constexpr std::uint64_t kSectionAlign = 64;
inline constexpr std::uint64_t align_up(std::uint64_t x) {
  return (x + kSectionAlign - 1) & ~(kSectionAlign - 1);
}
}  // namespace csrbin

struct BinaryWriteOptions {
  /// Format version to emit: csrbin::kVersion (aligned, mappable) or
  /// csrbin::kVersionLegacy for compatibility testing.
  std::uint32_t version = csrbin::kVersion;
  /// fsync(2) before close, so the cache file survives a crash right
  /// after the build step that produced it.
  bool sync = false;
};

/// Fast binary CSR (.csrbin): see the csrbin namespace for the layout.
/// Header counts are validated against the stream length before anything
/// is allocated, and neighbor ids are range-checked on load. Both v1 and
/// v2 files are accepted.
Csr read_binary(const std::filesystem::path& path, IoLimits limits = {});
Csr read_binary(std::istream& in, const std::string& name,
                IoLimits limits = {});

/// Write `g` as .csrbin (v2 by default). Streams the arrays in bounded
/// chunks through raw file-descriptor writes — no payload-sized staging
/// buffer — and reports ENOSPC as a clean "disk full" error (removing the
/// partial file) instead of a generic stream failure.
void write_binary(const Csr& g, const std::filesystem::path& path,
                  BinaryWriteOptions options = {});

/// Zero-copy load: mmap a v2 .csrbin and return a Csr whose arrays are
/// read-only views into the page cache (Csr::is_mapped()). The graph
/// bytes never enter anonymous memory, so solve-time RSS is O(n) scratch
/// instead of O(n + m). v1 files (unaligned sections) silently fall back
/// to the eager read_binary path. `verify_neighbors` controls the O(m)
/// neighbor range scan — it faults the whole file in, so benches that
/// just wrote the file skip it; offsets are always validated.
Csr map_binary(const std::filesystem::path& path, IoLimits limits = {},
               bool verify_neighbors = true);

/// METIS graph format (.metis/.graph): "<n> <m> [fmt [ncon]]" header
/// followed by one 1-indexed adjacency line per vertex; '%' comments;
/// vertex/edge weights (fmt 1/10/11, ncon constraints) are parsed and
/// discarded.
Csr read_metis(const std::filesystem::path& path, IoLimits limits = {});
Csr read_metis(std::istream& in, const std::string& name, IoLimits limits = {});
void write_metis(const Csr& g, const std::filesystem::path& path);

/// Dispatch on extension: .gr -> dimacs, .txt/.el/.snap -> snap, .mtx ->
/// matrix market, .metis/.graph -> metis, .csrbin -> binary. Throws on
/// unknown extensions.
Csr load_graph(const std::filesystem::path& path, IoLimits limits = {});

}  // namespace fdiam::io
