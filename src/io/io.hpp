#pragma once
// Graph file I/O. Readers for the formats the paper's real inputs ship in
// (so the genuine SNAP / SuiteSparse / DIMACS-9 files can be dropped into
// the harness), writers for round-tripping, and a fast binary CSR format
// for caching generated graphs.
//
// All loaders produce undirected graphs: each input arc/edge contributes
// both directions and the CSR builder removes duplicates and self-loops.

#include <filesystem>
#include <string>

#include "graph/csr.hpp"

namespace fdiam::io {

/// DIMACS-9 shortest-path format (.gr): "p sp <n> <m>" header and
/// "a <u> <v> <w>" arcs, 1-indexed; weights are ignored (the paper treats
/// the road networks as unweighted). Throws std::runtime_error on
/// malformed input.
Csr read_dimacs(const std::filesystem::path& path);
void write_dimacs(const Csr& g, const std::filesystem::path& path);

/// SNAP edge-list format (.txt/.el): '#' comment lines, one
/// whitespace-separated "u v" pair per line, 0-indexed ids used verbatim
/// (num_vertices = max id + 1).
Csr read_snap(const std::filesystem::path& path);
void write_snap(const Csr& g, const std::filesystem::path& path);

/// Matrix Market coordinate format (.mtx) as used by SuiteSparse:
/// pattern/real/integer entries, general or symmetric, 1-indexed.
Csr read_matrix_market(const std::filesystem::path& path);
void write_matrix_market(const Csr& g, const std::filesystem::path& path);

/// Fast binary CSR (.csrbin): magic + version + counts + raw arrays.
Csr read_binary(const std::filesystem::path& path);
void write_binary(const Csr& g, const std::filesystem::path& path);

/// METIS graph format (.metis/.graph): "<n> <m> [fmt]" header followed by
/// one 1-indexed adjacency line per vertex; '%' comments; vertex/edge
/// weights (fmt 1/10/11) are parsed and discarded.
Csr read_metis(const std::filesystem::path& path);
void write_metis(const Csr& g, const std::filesystem::path& path);

/// Dispatch on extension: .gr -> dimacs, .txt/.el/.snap -> snap, .mtx ->
/// matrix market, .metis/.graph -> metis, .csrbin -> binary. Throws on
/// unknown extensions.
Csr load_graph(const std::filesystem::path& path);

}  // namespace fdiam::io
