#pragma once
// Graph file I/O. Readers for the formats the paper's real inputs ship in
// (so the genuine SNAP / SuiteSparse / DIMACS-9 files can be dropped into
// the harness), writers for round-tripping, and a fast binary CSR format
// for caching generated graphs.
//
// All loaders produce undirected graphs: each input arc/edge contributes
// both directions and the CSR builder removes duplicates and self-loops.
//
// Input-validation guarantees (see docs/HARDENING.md): every reader
// either returns a structurally valid Csr or throws std::runtime_error
// with the file name, line number, and offending content. Malformed
// bytes never crash, silently truncate an id, or build a wrong graph.
// Each reader also has an std::istream overload so in-memory bytes can
// be parsed without touching the filesystem — the fuzz harnesses in
// tests/fuzz/ drive these.

#include <cstdint>
#include <filesystem>
#include <istream>
#include <limits>
#include <stdexcept>
#include <string>

#include "graph/csr.hpp"

namespace fdiam::io {

/// Largest vertex id a reader accepts. One smaller than the vid_t maximum
/// because num_vertices = id + 1 must itself fit in vid_t.
inline constexpr std::uint64_t kMaxVertexId =
    std::numeric_limits<vid_t>::max() - 1;

/// Checked narrowing of a parsed 64-bit id into vid_t. `what` names the
/// quantity ("vertex id", "row"), `context` names the file/line. Throws
/// std::runtime_error instead of wrapping — a SNAP id of 2^32 used to
/// silently alias vertex 0 and build a wrong graph.
inline vid_t checked_vid(std::uint64_t value, const char* what,
                         const std::string& context) {
  if (value > kMaxVertexId) {
    throw std::runtime_error(std::string(what) + " " + std::to_string(value) +
                             " exceeds the 32-bit vertex-id limit (" +
                             std::to_string(kMaxVertexId) + ") in " + context);
  }
  return static_cast<vid_t>(value);
}

/// Resource ceilings applied while parsing, checked BEFORE any allocation
/// sized by header-declared counts. The defaults admit anything the type
/// system can represent (real multi-hundred-million-edge inputs load
/// unchanged); the fuzz harnesses pass tight limits so a mutated header
/// declaring 2^60 vertices throws instead of exhausting memory.
struct IoLimits {
  std::uint64_t max_vertices = kMaxVertexId + 1;
  std::uint64_t max_edges = std::numeric_limits<std::uint64_t>::max();
};

/// DIMACS-9 shortest-path format (.gr): "p sp <n> <m>" header and
/// "a <u> <v> <w>" arcs, 1-indexed; weights are ignored (the paper treats
/// the road networks as unweighted). Arc endpoints must lie in [1, n].
/// Throws std::runtime_error on malformed input.
Csr read_dimacs(const std::filesystem::path& path, IoLimits limits = {});
Csr read_dimacs(std::istream& in, const std::string& name,
                IoLimits limits = {});
void write_dimacs(const Csr& g, const std::filesystem::path& path);

/// SNAP edge-list format (.txt/.el): '#' comment lines, one
/// whitespace-separated "u v" pair per line, 0-indexed ids used verbatim
/// (num_vertices = max id + 1). Extra columns (timestamps/weights in some
/// SNAP dumps) are ignored.
Csr read_snap(const std::filesystem::path& path, IoLimits limits = {});
Csr read_snap(std::istream& in, const std::string& name, IoLimits limits = {});
void write_snap(const Csr& g, const std::filesystem::path& path);

/// Matrix Market coordinate format (.mtx) as used by SuiteSparse:
/// pattern/real/integer entries, general or symmetric, 1-indexed; entries
/// must lie inside the declared rows x cols box.
Csr read_matrix_market(const std::filesystem::path& path, IoLimits limits = {});
Csr read_matrix_market(std::istream& in, const std::string& name,
                       IoLimits limits = {});
void write_matrix_market(const Csr& g, const std::filesystem::path& path);

/// Fast binary CSR (.csrbin): magic + version + counts + raw arrays.
/// Header counts are validated against the stream length before anything
/// is allocated, and neighbor ids are range-checked on load.
Csr read_binary(const std::filesystem::path& path, IoLimits limits = {});
Csr read_binary(std::istream& in, const std::string& name,
                IoLimits limits = {});
void write_binary(const Csr& g, const std::filesystem::path& path);

/// METIS graph format (.metis/.graph): "<n> <m> [fmt [ncon]]" header
/// followed by one 1-indexed adjacency line per vertex; '%' comments;
/// vertex/edge weights (fmt 1/10/11, ncon constraints) are parsed and
/// discarded.
Csr read_metis(const std::filesystem::path& path, IoLimits limits = {});
Csr read_metis(std::istream& in, const std::string& name, IoLimits limits = {});
void write_metis(const Csr& g, const std::filesystem::path& path);

/// Dispatch on extension: .gr -> dimacs, .txt/.el/.snap -> snap, .mtx ->
/// matrix market, .metis/.graph -> metis, .csrbin -> binary. Throws on
/// unknown extensions.
Csr load_graph(const std::filesystem::path& path, IoLimits limits = {});

}  // namespace fdiam::io
