#pragma once
// Internal token-level parsing helpers shared by the text-format readers.
// Numeric fields go through std::from_chars on whole tokens, so negative
// ids, trailing garbage ("12x"), and floats-where-ints-belong all fail
// loudly instead of being half-consumed the way istream extraction (or
// the old strtoll-style paths) would.

#include <charconv>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace fdiam::io::detail {

/// Split on blanks/tabs/CR/FF/VT; views point into `line`.
inline std::vector<std::string_view> tokens(std::string_view line) {
  constexpr std::string_view kSpace = " \t\r\f\v";
  std::vector<std::string_view> out;
  std::size_t pos = 0;
  while (pos < line.size()) {
    const std::size_t start = line.find_first_not_of(kSpace, pos);
    if (start == std::string_view::npos) break;
    const std::size_t end = line.find_first_of(kSpace, start);
    out.push_back(line.substr(start, (end == std::string_view::npos
                                          ? line.size()
                                          : end) - start));
    pos = end == std::string_view::npos ? line.size() : end;
  }
  return out;
}

/// Parse a whole token as an unsigned 64-bit integer. Rejects empty
/// tokens, signs, and any trailing non-digit bytes.
inline bool to_u64(std::string_view tok, std::uint64_t& out) {
  if (tok.empty()) return false;
  const char* first = tok.data();
  const char* last = tok.data() + tok.size();
  const auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc() && ptr == last;
}

/// Build a "file:line: message — "offending line"" runtime_error.
[[noreturn]] inline void fail_line(const std::string& name,
                                   std::uint64_t lineno,
                                   std::string_view line,
                                   const std::string& message) {
  std::string shown(line.substr(0, 120));
  if (line.size() > 120) shown += "...";
  throw std::runtime_error(name + ":" + std::to_string(lineno) + ": " +
                           message + " — \"" + shown + "\"");
}

}  // namespace fdiam::io::detail
