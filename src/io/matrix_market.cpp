#include <algorithm>
#include <cctype>
#include <fstream>
#include <stdexcept>

#include "graph/edge_list.hpp"
#include "io/io.hpp"
#include "io/parse.hpp"

namespace fdiam::io {

namespace {
constexpr std::uint64_t kReserveCap = 1u << 22;  // see dimacs.cpp
}  // namespace

Csr read_matrix_market(std::istream& in, const std::string& name,
                       IoLimits limits) {
  std::string line;
  std::uint64_t lineno = 0;
  if (!std::getline(in, line) || line.rfind("%%MatrixMarket", 0) != 0) {
    throw std::runtime_error("missing MatrixMarket banner in " + name);
  }
  ++lineno;
  std::string banner = line;
  std::transform(banner.begin(), banner.end(), banner.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (banner.find("matrix") == std::string::npos ||
      banner.find("coordinate") == std::string::npos) {
    throw std::runtime_error("only coordinate MatrixMarket supported: " +
                             name);
  }
  const bool pattern = banner.find("pattern") != std::string::npos;

  // Skip comments, then read the size line.
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line[0] != '%') break;
  }
  std::uint64_t rows = 0, cols = 0, nnz = 0;
  {
    const auto toks = detail::tokens(line);
    if (toks.size() < 3 || !detail::to_u64(toks[0], rows) ||
        !detail::to_u64(toks[1], cols) || !detail::to_u64(toks[2], nnz)) {
      detail::fail_line(name, lineno, line,
                        "malformed size line (expected '<rows> <cols> <nnz>')");
    }
  }
  if (rows > limits.max_vertices || cols > limits.max_vertices) {
    detail::fail_line(name, lineno, line,
                      "matrix dimensions exceed the vertex limit of " +
                          std::to_string(limits.max_vertices));
  }
  if (nnz > limits.max_edges) {
    detail::fail_line(name, lineno, line,
                      "entry count " + std::to_string(nnz) +
                          " exceeds the limit of " +
                          std::to_string(limits.max_edges));
  }

  EdgeList edges;
  edges.ensure_vertices(
      checked_vid(std::max(rows, cols), "matrix dimension", name));
  edges.reserve(static_cast<std::size_t>(std::min(nnz, kReserveCap)));
  std::uint64_t entries = 0;
  while (entries < nnz) {
    if (!std::getline(in, line)) {
      throw std::runtime_error("truncated MatrixMarket file " + name + ": " +
                               std::to_string(entries) + " of " +
                               std::to_string(nnz) + " entries present");
    }
    ++lineno;
    const auto toks = detail::tokens(line);
    if (toks.empty()) continue;  // tolerate stray blank lines
    std::uint64_t r = 0, c = 0;
    // Entry values (real/integer formats) are ignored — the library is
    // unweighted — so only the coordinates are validated.
    if (toks.size() < (pattern ? 2u : 3u) || !detail::to_u64(toks[0], r) ||
        !detail::to_u64(toks[1], c)) {
      detail::fail_line(name, lineno, line, "malformed MatrixMarket entry");
    }
    if (r == 0 || c == 0 || r > rows || c > cols) {
      detail::fail_line(name, lineno, line,
                        "entry outside the declared " + std::to_string(rows) +
                            "x" + std::to_string(cols) + " matrix");
    }
    edges.add(static_cast<vid_t>(r - 1), static_cast<vid_t>(c - 1));
    ++entries;
  }
  // Anything after the declared entries must be blank: trailing garbage
  // usually means the size line was wrong, not that the file has comments.
  while (std::getline(in, line)) {
    ++lineno;
    if (!detail::tokens(line).empty()) {
      detail::fail_line(name, lineno, line,
                        "content after the declared " + std::to_string(nnz) +
                            " entries");
    }
  }
  return Csr::from_edges(std::move(edges));
}

Csr read_matrix_market(const std::filesystem::path& path, IoLimits limits) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path.string());
  return read_matrix_market(in, path.string(), limits);
}

void write_matrix_market(const Csr& g, const std::filesystem::path& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path.string());
  out << "%%MatrixMarket matrix coordinate pattern symmetric\n";
  out << g.num_vertices() << ' ' << g.num_vertices() << ' ' << g.num_edges()
      << '\n';
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    for (const vid_t w : g.neighbors(v)) {
      // Symmetric format stores the lower triangle: row >= column.
      if (w <= v) out << v + 1 << ' ' << w + 1 << '\n';
    }
  }
}

}  // namespace fdiam::io
