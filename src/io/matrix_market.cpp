#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "graph/edge_list.hpp"
#include "io/io.hpp"

namespace fdiam::io {

Csr read_matrix_market(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path.string());

  std::string line;
  if (!std::getline(in, line) || line.rfind("%%MatrixMarket", 0) != 0) {
    throw std::runtime_error("missing MatrixMarket banner in " +
                             path.string());
  }
  std::string banner = line;
  std::transform(banner.begin(), banner.end(), banner.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (banner.find("coordinate") == std::string::npos) {
    throw std::runtime_error("only coordinate MatrixMarket supported: " +
                             path.string());
  }
  const bool pattern = banner.find("pattern") != std::string::npos;

  // Skip comments, then read the size line.
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  std::uint64_t rows = 0, cols = 0, nnz = 0;
  {
    std::istringstream ls(line);
    if (!(ls >> rows >> cols >> nnz)) {
      throw std::runtime_error("malformed size line in " + path.string());
    }
  }

  EdgeList edges;
  edges.ensure_vertices(static_cast<vid_t>(std::max(rows, cols)));
  edges.reserve(nnz);
  for (std::uint64_t i = 0; i < nnz; ++i) {
    if (!std::getline(in, line)) {
      throw std::runtime_error("truncated MatrixMarket file " +
                               path.string());
    }
    std::istringstream ls(line);
    std::uint64_t r = 0, c = 0;
    if (!(ls >> r >> c) || r == 0 || c == 0) {
      throw std::runtime_error("malformed entry in " + path.string());
    }
    if (!pattern) {
      double value;  // discard — the library is unweighted
      ls >> value;
    }
    edges.add(static_cast<vid_t>(r - 1), static_cast<vid_t>(c - 1));
  }
  return Csr::from_edges(std::move(edges));
}

void write_matrix_market(const Csr& g, const std::filesystem::path& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path.string());
  out << "%%MatrixMarket matrix coordinate pattern symmetric\n";
  out << g.num_vertices() << ' ' << g.num_vertices() << ' ' << g.num_edges()
      << '\n';
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    for (const vid_t w : g.neighbors(v)) {
      // Symmetric format stores the lower triangle: row >= column.
      if (w <= v) out << v + 1 << ' ' << w + 1 << '\n';
    }
  }
}

}  // namespace fdiam::io
