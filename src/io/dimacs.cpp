#include <fstream>
#include <sstream>
#include <stdexcept>

#include "graph/edge_list.hpp"
#include "io/io.hpp"

namespace fdiam::io {

Csr read_dimacs(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path.string());

  EdgeList edges;
  std::string line;
  bool have_header = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    char tag = 0;
    ls >> tag;
    if (tag == 'c') continue;
    if (tag == 'p') {
      std::string problem;
      std::uint64_t n = 0, m = 0;
      if (!(ls >> problem >> n >> m)) {
        throw std::runtime_error("malformed DIMACS header in " +
                                 path.string());
      }
      edges.ensure_vertices(static_cast<vid_t>(n));
      edges.reserve(m);
      have_header = true;
    } else if (tag == 'a' || tag == 'e') {
      std::uint64_t u = 0, v = 0;
      if (!(ls >> u >> v) || u == 0 || v == 0) {
        throw std::runtime_error("malformed DIMACS arc in " + path.string());
      }
      edges.add(static_cast<vid_t>(u - 1), static_cast<vid_t>(v - 1));
    }
  }
  if (!have_header) {
    throw std::runtime_error("missing DIMACS 'p' header in " + path.string());
  }
  return Csr::from_edges(std::move(edges));
}

void write_dimacs(const Csr& g, const std::filesystem::path& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path.string());
  out << "c written by fdiam\n";
  out << "p sp " << g.num_vertices() << ' ' << g.num_arcs() << '\n';
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    for (const vid_t w : g.neighbors(v)) {
      out << "a " << v + 1 << ' ' << w + 1 << " 1\n";
    }
  }
}

}  // namespace fdiam::io
