#include <fstream>
#include <stdexcept>

#include "graph/edge_list.hpp"
#include "io/io.hpp"
#include "io/parse.hpp"

namespace fdiam::io {

namespace {
// Don't trust a header-declared edge count for more than this much
// pre-allocation; a lying header must not be able to reserve gigabytes.
constexpr std::uint64_t kReserveCap = 1u << 22;
}  // namespace

Csr read_dimacs(std::istream& in, const std::string& name, IoLimits limits) {
  EdgeList edges;
  std::string line;
  bool have_header = false;
  std::uint64_t n = 0;
  std::uint64_t lineno = 0;
  std::uint64_t arcs_seen = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto toks = detail::tokens(line);
    if (toks.empty()) continue;
    const std::string_view tag = toks[0];
    if (tag == "c") continue;
    if (tag == "p") {
      if (have_header) {
        detail::fail_line(name, lineno, line, "duplicate DIMACS 'p' header");
      }
      std::uint64_t m = 0;
      if (toks.size() < 4 || !detail::to_u64(toks[2], n) ||
          !detail::to_u64(toks[3], m)) {
        detail::fail_line(name, lineno, line,
                          "malformed DIMACS header (expected "
                          "'p <problem> <vertices> <arcs>')");
      }
      if (n > limits.max_vertices) {
        detail::fail_line(name, lineno, line,
                          "vertex count " + std::to_string(n) +
                              " exceeds the limit of " +
                              std::to_string(limits.max_vertices));
      }
      if (m > limits.max_edges) {
        detail::fail_line(name, lineno, line,
                          "arc count " + std::to_string(m) +
                              " exceeds the limit of " +
                              std::to_string(limits.max_edges));
      }
      edges.ensure_vertices(static_cast<vid_t>(n));
      edges.reserve(static_cast<std::size_t>(std::min(m, kReserveCap)));
      have_header = true;
    } else if (tag == "a" || tag == "e") {
      if (!have_header) {
        detail::fail_line(name, lineno, line,
                          "DIMACS arc before the 'p' header");
      }
      std::uint64_t u = 0, v = 0;
      if (toks.size() < 3 || !detail::to_u64(toks[1], u) ||
          !detail::to_u64(toks[2], v)) {
        detail::fail_line(name, lineno, line, "malformed DIMACS arc");
      }
      if (u == 0 || v == 0 || u > n || v > n) {
        detail::fail_line(name, lineno, line,
                          "DIMACS arc endpoint outside [1, " +
                              std::to_string(n) + "]");
      }
      if (++arcs_seen > limits.max_edges) {
        detail::fail_line(name, lineno, line,
                          "more arcs than the limit of " +
                              std::to_string(limits.max_edges));
      }
      edges.add(static_cast<vid_t>(u - 1), static_cast<vid_t>(v - 1));
    } else {
      detail::fail_line(name, lineno, line, "unrecognized DIMACS line tag");
    }
  }
  if (!have_header) {
    throw std::runtime_error("missing DIMACS 'p' header in " + name);
  }
  return Csr::from_edges(std::move(edges));
}

Csr read_dimacs(const std::filesystem::path& path, IoLimits limits) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path.string());
  return read_dimacs(in, path.string(), limits);
}

void write_dimacs(const Csr& g, const std::filesystem::path& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path.string());
  out << "c written by fdiam\n";
  out << "p sp " << g.num_vertices() << ' ' << g.num_arcs() << '\n';
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    for (const vid_t w : g.neighbors(v)) {
      out << "a " << v + 1 << ' ' << w + 1 << " 1\n";
    }
  }
}

}  // namespace fdiam::io
