// bench_regress: fixed regression-tracking benchmark suite.
//
// Unlike the per-table bench binaries (which mirror the paper's
// experiments), this one exists to be diffed against itself across
// commits: a small, fully seeded set of synthetic inputs spanning the
// algorithm's regimes (mesh, power-law, chain-heavy), run with hardware
// counters and memory watermarks on, and written as one
// fdiam.bench_report/v1 document whose "cases" array carries raw numbers
// (not formatted table cells) so bench_compare can apply per-metric
// thresholds.
//
//   ./bench_regress --out-dir perf/           # writes BENCH_<n>.json
//   ./bench_regress --out baseline.json
//   ./bench_compare baseline.json candidate.json
//
// Determinism contract: every input is generated from a fixed seed, so
// diameter, bfs_calls, and edges_examined must be bit-identical between
// two builds of the same algorithm — bench_compare checks them exactly.
// Only time/hardware/memory metrics get tolerance thresholds.

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/fdiam.hpp"
#include "gen/generators.hpp"
#include "graph/stream_builder.hpp"
#include "io/io.hpp"
#include "util/memory.hpp"
#include "obs/json.hpp"
#include "obs/log/log.hpp"
#include "obs/log/log_sink.hpp"
#include "obs/prof/sampler.hpp"
#include "obs/provenance.hpp"
#include "obs/report.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace fdiam;

struct CaseResult {
  std::string name;
  std::uint64_t vertices = 0;
  std::uint64_t arcs = 0;
  dist_t diameter = 0;
  bool timed_out = false;
  double seconds_median = 0.0;
  std::uint64_t bfs_calls = 0;
  std::uint64_t edges_examined = 0;
  std::uint64_t vertices_visited = 0;
  /// Same case rerun with a ProvenanceCollector attached; overhead is the
  /// relative slowdown vs seconds_median. Tracked so the introspection
  /// layer's near-zero-cost promise is a regression-checked number
  /// (bench_compare --check-overhead), not a code comment.
  double prov_seconds_median = 0.0;
  double prov_overhead = 0.0;
  /// OpenMP team size the case ran with — thread-count provenance, so a
  /// baseline recorded on 8 threads is never silently compared against a
  /// 1-thread candidate (bench_compare checks it exactly).
  int threads = 1;
  /// Same case rerun with a UtilCollector installed (utilization
  /// accounting on). Recorded for the trajectory, not hard-gated.
  double util_seconds_median = 0.0;
  double util_overhead = 0.0;
  /// Same case rerun with info-level structured logging attached (the
  /// solver's event stream bridged onto the logger, records written to a
  /// scratch file). bench_compare --check-log-overhead gates the
  /// overhead, keeping "logging costs <= 2%" a checked number.
  double log_seconds_median = 0.0;
  double log_overhead = 0.0;
  /// Same case rerun with the sampling profiler attached at its default
  /// rate. bench_compare --check-profile-overhead gates the overhead.
  bool prof_available = false;
  double prof_seconds_median = 0.0;
  double prof_overhead = 0.0;
  std::uint64_t prof_samples = 0;
  obs::HwCounters hardware;
  obs::MemProfile memory;
  /// Out-of-core provenance (the scale case only): the case's graph was
  /// stream-built under scale_mem_budget and solved through io::map_binary.
  /// bench_compare --check-peak-rss gates scale_build_peak_rss against the
  /// budget, keeping "the builder is bounded-RAM" a checked number.
  bool scale = false;
  std::uint64_t scale_mem_budget = 0;
  std::uint64_t scale_build_peak_rss = 0;
  std::uint64_t scale_spill_bytes = 0;
  std::uint64_t scale_output_bytes = 0;
  double scale_build_seconds = 0.0;
};

/// The suite: one representative per structural regime the paper's
/// stages target. Sizes are chosen so the full suite at --reps 3 stays
/// under ~10 s on one laptop core; scaling them would invalidate stored
/// baselines, so they are deliberately NOT configurable.
std::vector<std::pair<std::string, Csr>> build_cases(std::uint64_t seed) {
  std::vector<std::pair<std::string, Csr>> cases;
  // Mesh regime: wide frontiers, direction-optimizing BFS territory.
  cases.emplace_back("grid_200x150", make_grid(200, 150));
  // Power-law regime: small diameter, Winnow/Eliminate territory.
  cases.emplace_back("rmat_s13_e8",
                     make_rmat(13, 8.0, 0.45, 0.22, 0.22, seed));
  // Chain-heavy regimes: Chain Processing territory.
  cases.emplace_back("caterpillar_4k", make_caterpillar(4000, 3));
  cases.emplace_back("random_tree_20k", make_random_tree(20000, seed + 1));
  // Road regime: huge diameter, degree-2 chains plus grid structure.
  RoadOptions road;
  road.grid_width = 72;
  road.grid_height = 72;
  cases.emplace_back("road_72", make_road_network(road, seed + 2));
  return cases;
}

/// Scale tier: the same external-memory pipeline bench_scale runs at
/// 10^8 edges, shrunk to ~1M generated edges so every trajectory report
/// tracks it — stream-build under a deliberately tight budget, mmap the
/// result, solve the mapped graph.
CaseResult scale_case(std::uint64_t seed, int reps, double budget);

CaseResult run_case(const std::string& name, const Csr& g, int reps,
                    double budget) {
  CaseResult out;
  out.name = name;
  out.vertices = g.num_vertices();
  out.arcs = g.num_arcs();

  FDiamOptions opt;
  opt.hw_counters = true;
  opt.time_budget_seconds = budget;

  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    Timer t;
    const DiameterResult res = fdiam_diameter(g, opt);
    times.push_back(t.seconds());
    out.diameter = res.diameter;
    out.timed_out = res.timed_out;
    out.bfs_calls = res.stats.bfs_calls;
    out.edges_examined = res.bfs.edges_examined;
    out.vertices_visited = res.bfs.vertices_visited;
    out.hardware = res.hardware;
    out.memory = res.memory;
    if (res.timed_out) break;  // repeating a T/O only doubles the wait
  }
  std::sort(times.begin(), times.end());
  out.seconds_median = times[times.size() / 2];

  if (!out.timed_out) {
    obs::ProvenanceCollector collector;
    FDiamOptions popt = opt;
    popt.provenance = &collector;
    std::vector<double> ptimes;
    ptimes.reserve(static_cast<std::size_t>(reps));
    for (int r = 0; r < reps; ++r) {
      Timer t;
      const DiameterResult res = fdiam_diameter(g, popt);
      ptimes.push_back(t.seconds());
      if (res.timed_out) break;
    }
    std::sort(ptimes.begin(), ptimes.end());
    out.prov_seconds_median = ptimes[ptimes.size() / 2];
    if (out.seconds_median > 0.0) {
      out.prov_overhead =
          (out.prov_seconds_median - out.seconds_median) / out.seconds_median;
    }
  }
  out.threads = num_threads();

  // Utilization-accounting rerun: same case with a collector installed,
  // so the RegionScope/record_thread cost shows up in the trajectory.
  if (!out.timed_out) {
    UtilCollector util;
    FDiamOptions uopt = opt;
    uopt.utilization = &util;
    std::vector<double> utimes;
    utimes.reserve(static_cast<std::size_t>(reps));
    for (int r = 0; r < reps; ++r) {
      Timer t;
      const DiameterResult res = fdiam_diameter(g, uopt);
      utimes.push_back(t.seconds());
      if (res.timed_out) break;
    }
    std::sort(utimes.begin(), utimes.end());
    out.util_seconds_median = utimes[utimes.size() / 2];
    if (out.seconds_median > 0.0) {
      out.util_overhead =
          (out.util_seconds_median - out.seconds_median) / out.seconds_median;
    }
  }

  // Structured-logging rerun: info level, records to a scratch stream,
  // the solver's event stream bridged through make_log_trace_sink. This
  // prices the full production path — level check, field formatting, and
  // the fwrite — not just the disabled-branch cost. Unlike the reruns
  // above, the overhead is computed from interleaved base/logged runs
  // as min(logged)/min(base) - 1: the sequential reruns drift with the
  // machine (thermal/noisy-neighbor skew of tens of percent on shared
  // 1-core VMs) and single runs jitter by several percent, so a 2% gate
  // needs both interleaving (drift immunity) and the minimum (the
  // classic low-noise timing estimator — scheduler interference only
  // ever adds time, never subtracts it).
  if (!out.timed_out) {
    obs::Logger& logger = obs::Logger::instance();
    std::FILE* scratch = std::tmpfile();  // nullptr → records go to stderr
    const obs::LogLevel old_level = logger.level();
    if (scratch != nullptr) logger.set_output(scratch);
    logger.set_level(obs::LogLevel::kInfo);
    FDiamOptions lopt = opt;
    lopt.trace = obs::make_log_trace_sink();
    std::vector<double> ltimes;
    std::vector<double> btimes;
    ltimes.reserve(static_cast<std::size_t>(reps));
    btimes.reserve(static_cast<std::size_t>(reps));
    for (int r = 0; r < reps; ++r) {
      Timer tb;
      const DiameterResult base = fdiam_diameter(g, opt);
      btimes.push_back(tb.seconds());
      Timer tl;
      const DiameterResult res = fdiam_diameter(g, lopt);
      ltimes.push_back(tl.seconds());
      if (base.timed_out || res.timed_out) break;
    }
    logger.set_level(old_level);
    logger.set_output(nullptr);
    if (scratch != nullptr) std::fclose(scratch);
    std::sort(ltimes.begin(), ltimes.end());
    std::sort(btimes.begin(), btimes.end());
    out.log_seconds_median = ltimes[ltimes.size() / 2];
    if (btimes.front() > 0.0) {
      out.log_overhead = ltimes.front() / btimes.front() - 1.0;
    }
  }

  // Sampler-attached rerun: starts/stops the profiler around each rep so
  // the measured slowdown includes timer arming and signal delivery, not
  // just the handler. On platforms without the profiler the fields stay
  // null in the report and bench_compare skips them.
  if (!out.timed_out) {
    prof::Sampler& sampler = prof::Sampler::instance();
    std::vector<double> stimes;
    stimes.reserve(static_cast<std::size_t>(reps));
    for (int r = 0; r < reps; ++r) {
      const bool profiled = sampler.start({});
      Timer t;
      const DiameterResult res = fdiam_diameter(g, opt);
      const double secs = t.seconds();
      if (profiled) {
        sampler.stop();
        out.prof_available = true;
        out.prof_samples += sampler.sample_count();
        stimes.push_back(secs);
      }
      if (res.timed_out) break;
    }
    if (!stimes.empty()) {
      std::sort(stimes.begin(), stimes.end());
      out.prof_seconds_median = stimes[stimes.size() / 2];
      if (out.seconds_median > 0.0) {
        out.prof_overhead =
            (out.prof_seconds_median - out.seconds_median) /
            out.seconds_median;
      }
    }
  }
  return out;
}

CaseResult scale_case(std::uint64_t seed, int reps, double budget) {
  namespace fs = std::filesystem;
  const fs::path built =
      fs::temp_directory_path() /
      ("bench_regress_scale_" + std::to_string(::getpid()) + ".csrbin");

  // rmat s17 e8 ~= one million generated edges; the 8 MiB budget forces
  // real spill-and-merge behavior instead of a single in-core chunk.
  const Csr src = make_rmat(17, 8.0, 0.45, 0.22, 0.22, seed);
  StreamBuildOptions sopt;
  sopt.mem_budget_bytes = 8ull << 20;

  const bool rss_ok = util::reset_peak_rss();
  Timer bt;
  StreamBuildStats st;
  {
    StreamCsrBuilder b(built, sopt);
    for (vid_t u = 0; u < src.num_vertices(); ++u) {
      for (const vid_t v : src.neighbors(u)) {
        if (u < v) b.add_edge(u, v);
      }
    }
    st = b.finish();
  }
  const double build_seconds = bt.seconds();
  const util::RssSample rss = util::read_rss();

  const Csr g = io::map_binary(built, {}, /*verify_neighbors=*/false);
  CaseResult c = run_case("scale_stream_1m", g, reps, budget);
  c.scale = true;
  c.scale_mem_budget = sopt.mem_budget_bytes;
  c.scale_build_peak_rss = (rss_ok && rss.available) ? rss.peak : 0;
  c.scale_spill_bytes = st.spill_bytes;
  c.scale_output_bytes = st.output_bytes;
  c.scale_build_seconds = build_seconds;
  // The mapping pins the inode; the directory entry can go now.
  fs::remove(built);
  return c;
}

void write_report(std::ostream& os, const std::vector<CaseResult>& cases,
                  int reps, std::uint64_t seed, double budget) {
  obs::JsonWriter w(os);
  w.begin_object();
  w.field("schema", std::string_view("fdiam.bench_report/v1"));
  w.field("program", std::string_view("bench_regress"));
  w.field("kind", std::string_view("regress"));

  w.key("config").begin_object();
  w.field("reps", reps);
  w.field("seed", seed);
  w.field("budget_s", budget);
  // Thread-count provenance: what the user pinned via the environment
  // (null when unset) vs what the runtime will actually use. Per-case
  // "threads" records what each run saw.
  w.key("omp_num_threads");
  if (const char* env = std::getenv("OMP_NUM_THREADS")) {
    w.value(std::string_view(env));
  } else {
    w.null();
  }
  w.field("threads", num_threads());
  w.end_object();

  obs::write_env_fields(w, obs::capture_env());

  w.key("cases").begin_array();
  for (const CaseResult& c : cases) {
    w.begin_object();
    w.field("name", std::string_view(c.name));
    w.field("vertices", c.vertices);
    w.field("arcs", c.arcs);
    w.field("diameter", static_cast<std::int64_t>(c.diameter));
    w.field("timed_out", c.timed_out);
    w.field("seconds_median", c.seconds_median);
    w.field("bfs_calls", c.bfs_calls);
    w.field("edges_examined", c.edges_examined);
    w.field("vertices_visited", c.vertices_visited);
    w.field("threads", c.threads);

    w.key("provenance").begin_object();
    w.field("seconds_median", c.prov_seconds_median);
    w.field("overhead", c.prov_overhead);
    w.end_object();

    w.key("utilization").begin_object();
    w.field("seconds_median", c.util_seconds_median);
    w.field("overhead", c.util_overhead);
    w.end_object();

    w.key("log").begin_object();
    w.field("seconds_median", c.log_seconds_median);
    w.field("overhead", c.log_overhead);
    w.end_object();

    // Nulls (not zeros) when the sampler could not run: bench_compare
    // skips null metrics, so reports from profiler-less platforms still
    // compare on their common subset.
    w.key("profile").begin_object();
    w.field("available", c.prof_available);
    w.key("seconds_median");
    if (c.prof_available) w.value(c.prof_seconds_median); else w.null();
    w.key("overhead");
    if (c.prof_available) w.value(c.prof_overhead); else w.null();
    w.key("samples");
    if (c.prof_available) w.value(c.prof_samples); else w.null();
    w.end_object();

    w.key("hardware").begin_object();
    w.field("available", c.hardware.any());
    w.key("counters").begin_object();
    for (std::size_t i = 0; i < obs::kHwEventCount; ++i) {
      const auto ev = static_cast<obs::HwEvent>(i);
      w.key(obs::hw_event_name(ev));
      if (c.hardware.has(ev)) {
        w.value(c.hardware.get(ev));
      } else {
        w.null();
      }
    }
    w.end_object();
    w.end_object();

    w.key("memory").begin_object();
    w.field("available", c.memory.available);
    if (c.memory.available) {
      w.field("peak_rss_bytes", c.memory.peak_rss_bytes);
      w.field("rss_delta_bytes", c.memory.rss_delta_bytes());
    }
    w.end_object();

    // Out-of-core provenance, scale case only; absent elsewhere so older
    // comparators skip it. build_peak_rss_bytes serializes as null when
    // the watermark could not be measured (restricted /proc).
    if (c.scale) {
      w.key("scale").begin_object();
      w.field("mem_budget_bytes", c.scale_mem_budget);
      w.key("build_peak_rss_bytes");
      if (c.scale_build_peak_rss > 0) {
        w.value(c.scale_build_peak_rss);
      } else {
        w.null();
      }
      w.field("build_seconds", c.scale_build_seconds);
      w.field("spill_bytes", c.scale_spill_bytes);
      w.field("output_bytes", c.scale_output_bytes);
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
}

/// Next free BENCH_<n>.json in `dir`, counting up from 1 — successive
/// runs accumulate a perf trajectory instead of overwriting it.
std::filesystem::path next_free_slot(const std::filesystem::path& dir) {
  for (int n = 1;; ++n) {
    std::filesystem::path p = dir / ("BENCH_" + std::to_string(n) + ".json");
    if (!std::filesystem::exists(p)) return p;
  }
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  cli.add_option("reps", "runs per case (median wall-clock kept)", "3");
  cli.add_option("seed", "generator seed (changing it invalidates stored "
                 "baselines)", "42");
  cli.add_option("budget", "per-run time budget in seconds", "60");
  cli.add_option("out", "write the report to exactly this path");
  cli.add_option("out-dir",
                 "write the report to the next free BENCH_<n>.json here");
  if (!cli.parse(argc, argv)) {
    std::cerr << cli.error() << "\n" << cli.usage("bench_regress");
    return 2;
  }
  if (cli.help_requested()) {
    std::cout << cli.usage("bench_regress");
    return 0;
  }

  const int reps = std::max(1, static_cast<int>(cli.get_int("reps", 3)));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  const double budget = cli.get_double("budget", 60.0);

  std::vector<CaseResult> results;
  Table t({"case", "vertices", "arcs", "diameter", "median (s)", "BFS",
           "edges examined", "prov ovh", "prof ovh"});
  const auto record = [&](CaseResult c) {
    std::cerr << (c.timed_out ? "T/O" : Table::fmt_double(c.seconds_median, 3))
              << "\n";
    t.add_row({c.name, Table::fmt_count(c.vertices), Table::fmt_count(c.arcs),
               std::to_string(c.diameter),
               c.timed_out ? "T/O" : Table::fmt_double(c.seconds_median, 4),
               Table::fmt_count(c.bfs_calls),
               Table::fmt_count(c.edges_examined),
               c.timed_out ? "-" : Table::fmt_percent(c.prov_overhead),
               c.prof_available ? Table::fmt_percent(c.prof_overhead)
                                : std::string("-")});
    results.push_back(std::move(c));
  };
  for (const auto& [name, g] : build_cases(seed)) {
    std::cerr << "[regress] " << name << " ... " << std::flush;
    record(run_case(name, g, reps, budget));
  }
  // Out-of-core regime: stream-build + mmap + solve (docs/SCALING.md).
  std::cerr << "[regress] scale_stream_1m ... " << std::flush;
  record(scale_case(seed, reps, budget));
  t.print(std::cout);

  std::filesystem::path out_path;
  if (cli.has("out")) {
    out_path = cli.get("out");
  } else if (cli.has("out-dir")) {
    const std::filesystem::path dir = cli.get("out-dir");
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    out_path = next_free_slot(dir);
  }
  if (!out_path.empty()) {
    std::ofstream out(out_path, std::ios::trunc);
    if (!out) {
      std::cerr << "cannot write report to " << out_path << "\n";
      return 1;
    }
    write_report(out, results, reps, seed, budget);
    std::cout << "wrote " << out_path.string() << "\n";
  } else {
    write_report(std::cout, results, reps, seed, budget);
  }
  return 0;
}
