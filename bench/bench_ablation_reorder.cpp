// Extension ablation (DESIGN.md): how much of BFS/F-Diam performance is
// memory locality? The paper's §6.2 attributes the limited parallel
// speedup to memory bandwidth on an irregular access pattern; vertex
// ordering is the classic lever on that pattern. We rerun F-Diam on the
// same graphs under four vertex orders: the generator's natural order, a
// BFS (Cuthill-McKee-flavored) order, a descending-degree order, and a
// random shuffle (the locality destroyer).

#include <iostream>

#include "core/fdiam.hpp"
#include "graph/reorder.hpp"
#include "harness.hpp"

int main(int argc, char** argv) {
  using namespace fdiam;
  using namespace fdiam::bench;

  Cli cli;
  auto cfg = parse_bench_config(argc, argv, cli, "bench_ablation_reorder");
  if (!cfg) return 1;
  if (cfg->inputs.empty()) {
    // Mesh + road + power-law: the three locality regimes.
    cfg->inputs = {"2d-2e20.sym", "USA-road-d.USA", "rmat22.sym",
                   "delaunay_n24"};
  }

  // The same modes the solver/CLI expose through --reorder, plus the
  // generator's natural order as the baseline column.
  const ReorderMode orders[] = {ReorderMode::kNone, ReorderMode::kBfs,
                                ReorderMode::kDegree, ReorderMode::kRandom};

  Table table({"Graphs", "natural", "bfs", "degree", "random"});
  for (const auto& [name, g] : build_inputs(*cfg)) {
    std::vector<std::string> row = {name};
    dist_t reference_diameter = -1;
    for (const ReorderMode order : orders) {
      std::cerr << "[run] " << name << " / " << reorder_mode_name(order)
                << "\n";
      // Permute outside the measured lambda: the table reports solver
      // throughput under each order, not permutation-building time.
      const Csr permuted =
          order == ReorderMode::kNone
              ? Csr(g)
              : apply_permutation(g, make_order(g, order, /*seed=*/99));
      const Measurement m = measure(
          [&](double budget) {
            FDiamOptions opt;
            opt.time_budget_seconds = budget;
            const DiameterResult r = fdiam_diameter(permuted, opt);
            return std::pair{r.diameter, r.timed_out};
          },
          cfg->reps, cfg->budget);
      if (!m.timed_out) {
        if (reference_diameter < 0) reference_diameter = m.diameter;
        if (m.diameter != reference_diameter) {
          std::cerr << "BUG: diameter changed under relabeling on " << name
                    << "\n";
          return 1;
        }
      }
      row.push_back(throughput_cell(m, g.num_vertices()));
    }
    table.add_row(std::move(row));
  }
  emit(table, *cfg,
       "Extension: F-Diam throughput (v/s) under different vertex orders");
  return 0;
}
