// bench_compare: diff two bench_regress reports with per-metric
// thresholds; nonzero exit on regression so CI can gate on it.
//
//   ./bench_compare baseline.json candidate.json [--time-tol 0.25]
//
// Comparison policy (per case, matched by name):
//  * deterministic metrics (diameter, bfs_calls, edges_examined,
//    vertices_visited) must match exactly — the suite is fully seeded,
//    so any drift is an algorithm change, not noise;
//  * wall-clock (seconds_median) is one-sided: candidate may be faster
//    without bound but at most --time-tol (default 25%) slower. Cases
//    where both sides ran under --min-seconds are skipped as noise;
//  * hardware counters are one-sided at --hw-tol (default 50% — counters
//    are stable but multiplexing and frequency scaling add variance);
//  * peak RSS is one-sided at --mem-tol (default 25%);
//  * provenance.seconds_median (the same case rerun with the collector
//    attached) follows the seconds_median policy; with --check-overhead
//    the candidate's recorded provenance.overhead must additionally stay
//    within --prov-tol (default 2%) on cases long enough to measure —
//    this is the introspection layer's overhead bound, checked against
//    the candidate alone rather than against the baseline;
//  * the thread count each case ran with must match exactly (skipped for
//    pre-threads reports) — a baseline recorded at 8 threads must never
//    pass silently against a 1-thread candidate;
//  * utilization.seconds_median, log.seconds_median, and
//    profile.seconds_median (reruns with the utilization collector /
//    info-level structured logger / sampling profiler attached) follow
//    the seconds_median policy; with --check-profile-overhead the
//    candidate's recorded profile.overhead must additionally stay within
//    --profile-tol (default 5%), and with --check-log-overhead the
//    recorded log.overhead within --log-tol (default 2%), gated like the
//    provenance overhead;
//  * scale.build_seconds / scale.spill_bytes (the out-of-core case's
//    stream-build trajectory) follow the time / memory policies; with
//    --check-peak-rss the candidate's recorded scale.build_peak_rss_bytes
//    must stay within scale.mem_budget_bytes plus --peak-rss-slack —
//    the external-memory builder's bounded-RAM promise as a gate;
//  * a metric null/absent on either side is skipped (counters degrade to
//    null on machines without a PMU, pre-provenance reports lack the
//    provenance block), so older reports still compare on their common
//    subset.
//
// Exit status: 0 pass, 1 regression (or missing case), 2 usage/parse.

#include <algorithm>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/perf/hw_counters.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace fdiam;

std::optional<std::string> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string case_path(std::size_t i, std::string_view field) {
  return "cases." + std::to_string(i) + "." + std::string(field);
}

/// Index of the case named `name` in `text`, scanning the cases array.
std::optional<std::size_t> find_case(std::string_view text,
                                     const std::string& name) {
  for (std::size_t i = 0;; ++i) {
    const auto n = obs::json_string(text, case_path(i, "name"));
    if (!n) return std::nullopt;
    if (*n == name) return i;
  }
}

struct Comparison {
  Table table{{"case", "metric", "baseline", "candidate", "delta", "verdict"}};
  int regressions = 0;
  int compared = 0;
  int skipped = 0;

  /// Record one metric row. `tol < 0` means exact match required;
  /// otherwise candidate <= baseline * (1 + tol) passes (one-sided:
  /// improvements never fail).
  void check(const std::string& case_name, const std::string& metric,
             std::optional<double> base, std::optional<double> cand,
             double tol) {
    if (!base || !cand) {
      ++skipped;
      return;
    }
    ++compared;
    bool ok;
    std::string delta;
    if (tol < 0.0) {
      ok = *base == *cand;
      delta = ok ? "=" : "!=";
    } else {
      ok = *cand <= *base * (1.0 + tol);
      const double rel =
          *base > 0.0 ? (*cand - *base) / *base : (*cand > 0.0 ? 1.0 : 0.0);
      delta = (rel >= 0 ? "+" : "") + Table::fmt_double(rel * 100.0, 1) + "%";
    }
    if (!ok) ++regressions;
    // Keep the table small: exact matches within tolerance are the
    // common case; only print headline metrics and every failure.
    if (!ok || tol < 0.0 || metric == "seconds_median" ||
        metric == "peak_rss_bytes") {
      table.add_row({case_name, metric, Table::fmt_double(*base, 4),
                     Table::fmt_double(*cand, 4), delta,
                     ok ? "ok" : "REGRESS"});
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  cli.add_option("time-tol", "allowed seconds_median slowdown (fraction)",
                 "0.25");
  cli.add_option("hw-tol", "allowed hardware-counter growth (fraction)",
                 "0.5");
  cli.add_option("mem-tol", "allowed peak-RSS growth (fraction)", "0.25");
  cli.add_option("min-seconds",
                 "skip the time check when both sides ran faster than this",
                 "0.01");
  cli.add_flag("check-overhead",
               "gate the candidate's provenance overhead at --prov-tol");
  cli.add_option("prov-tol",
                 "allowed provenance-collection overhead (fraction)", "0.02");
  cli.add_option("prov-min-seconds",
                 "skip the overhead gate on cases faster than this", "0.05");
  cli.add_flag("check-profile-overhead",
               "gate the candidate's sampling-profiler overhead at "
               "--profile-tol");
  cli.add_option("profile-tol",
                 "allowed sampling-profiler overhead (fraction)", "0.05");
  cli.add_flag("check-log-overhead",
               "gate the candidate's info-level structured-logging "
               "overhead at --log-tol");
  cli.add_option("log-tol",
                 "allowed info-level logging overhead (fraction)", "0.02");
  cli.add_flag("check-peak-rss",
               "gate each candidate case's recorded external-memory build "
               "peak RSS at scale.mem_budget_bytes plus --peak-rss-slack");
  cli.add_option("peak-rss-slack",
                 "fixed allowance (MiB) on top of the build budget "
                 "(process image, resident source graph, allocator slack)",
                 "64");
  if (!cli.parse(argc, argv)) {
    std::cerr << cli.error() << "\n"
              << cli.usage("bench_compare baseline.json candidate.json");
    return 2;
  }
  if (cli.help_requested()) {
    std::cout << cli.usage("bench_compare baseline.json candidate.json");
    return 0;
  }
  if (cli.positional().size() != 2) {
    std::cerr << "need exactly two report files\n"
              << cli.usage("bench_compare baseline.json candidate.json");
    return 2;
  }
  const double time_tol = cli.get_double("time-tol", 0.25);
  const double hw_tol = cli.get_double("hw-tol", 0.5);
  const double mem_tol = cli.get_double("mem-tol", 0.25);
  const double min_seconds = cli.get_double("min-seconds", 0.01);
  const bool check_overhead = cli.get_bool("check-overhead");
  const double prov_tol = cli.get_double("prov-tol", 0.02);
  const double prov_min_seconds = cli.get_double("prov-min-seconds", 0.05);
  const bool check_profile = cli.get_bool("check-profile-overhead");
  const double profile_tol = cli.get_double("profile-tol", 0.05);
  const bool check_log = cli.get_bool("check-log-overhead");
  const double log_tol = cli.get_double("log-tol", 0.02);
  const bool check_peak_rss = cli.get_bool("check-peak-rss");
  const double peak_rss_slack =
      std::max(0.0, cli.get_double("peak-rss-slack", 64.0)) * 1048576.0;

  const std::string base_path = cli.positional()[0];
  const std::string cand_path = cli.positional()[1];
  const auto base = slurp(base_path);
  const auto cand = slurp(cand_path);
  if (!base || !cand) {
    std::cerr << "cannot read " << (base ? cand_path : base_path) << "\n";
    return 2;
  }
  for (const auto& [path, text] :
       {std::pair{&base_path, &*base}, std::pair{&cand_path, &*cand}}) {
    if (const auto diag = obs::json_diagnose(*text)) {
      std::cerr << *path << ": invalid JSON: " << *diag << "\n";
      return 2;
    }
    const auto schema = obs::json_string(*text, "schema");
    if (!schema || *schema != "fdiam.bench_report/v1") {
      std::cerr << *path << ": not a fdiam.bench_report/v1 document\n";
      return 2;
    }
  }

  Comparison cmp;

  // Absolute bound on the candidate, like the overhead gates, because the
  // budget is a promise, not a baseline-relative quantity: with
  // --check-peak-rss the candidate's recorded build watermark must
  // respect the memory budget it claims to have run under.
  const auto peak_rss_gate = [&](const std::string& name, std::size_t j) {
    if (!check_peak_rss) return;
    const auto budget =
        obs::json_number(*cand, case_path(j, "scale.mem_budget_bytes"));
    const auto peak =
        obs::json_number(*cand, case_path(j, "scale.build_peak_rss_bytes"));
    if (budget && peak) {
      ++cmp.compared;
      const double limit = *budget + peak_rss_slack;
      const bool ok = *peak <= limit;
      if (!ok) ++cmp.regressions;
      cmp.table.add_row({name, "scale_build_peak_rss",
                         Table::fmt_double(limit, 0) + " max",
                         Table::fmt_double(*peak, 0), "-",
                         ok ? "ok" : "REGRESS"});
    } else if (obs::json_lookup(*cand, case_path(j, "scale"))) {
      ++cmp.skipped;  // scale case without a measurable watermark
    }
  };

  std::size_t n_cases = 0;
  for (std::size_t i = 0;; ++i) {
    const auto name = obs::json_string(*base, case_path(i, "name"));
    if (!name) break;
    ++n_cases;
    const auto j = find_case(*cand, *name);
    if (!j) {
      std::cerr << "case " << *name << " missing from " << cand_path << "\n";
      ++cmp.regressions;
      continue;
    }
    const auto b = [&](std::string_view f) {
      return obs::json_number(*base, case_path(i, f));
    };
    const auto c = [&](std::string_view f) {
      return obs::json_number(*cand, case_path(*j, f));
    };

    for (const char* exact :
         {"diameter", "bfs_calls", "edges_examined", "vertices_visited",
          "threads"}) {
      cmp.check(*name, exact, b(exact), c(exact), -1.0);
    }

    const auto bt = b("seconds_median");
    const auto ct = c("seconds_median");
    if (bt && ct && std::max(*bt, *ct) < min_seconds) {
      ++cmp.skipped;  // sub-centisecond runs are timer noise
    } else {
      cmp.check(*name, "seconds_median", bt, ct, time_tol);
    }

    const auto bp = b("provenance.seconds_median");
    const auto cp = c("provenance.seconds_median");
    if (bp && cp && std::max(*bp, *cp) < min_seconds) {
      ++cmp.skipped;
    } else {
      cmp.check(*name, "prov_seconds_median", bp, cp, time_tol);
    }
    if (check_overhead) {
      // Not a baseline-vs-candidate diff: the overhead was measured
      // within one bench_regress process (same machine, interleaved
      // reps), so it is gated as an absolute bound on the candidate.
      // Short cases are skipped — 2% of a few ms is below timer noise.
      const auto ov = c("provenance.overhead");
      if (ov && ct && *ct >= prov_min_seconds) {
        ++cmp.compared;
        const bool ok = *ov <= prov_tol;
        if (!ok) ++cmp.regressions;
        cmp.table.add_row(
            {*name, "prov_overhead", Table::fmt_percent(prov_tol) + " max",
             Table::fmt_percent(*ov), "-", ok ? "ok" : "REGRESS"});
      } else {
        ++cmp.skipped;
      }
    }

    // Observability reruns: time policy identical to seconds_median;
    // absent on pre-instrumentation reports, so skips are expected.
    const auto bu = b("utilization.seconds_median");
    const auto cu = c("utilization.seconds_median");
    if (bu && cu && std::max(*bu, *cu) < min_seconds) {
      ++cmp.skipped;
    } else {
      cmp.check(*name, "util_seconds_median", bu, cu, time_tol);
    }
    const auto bl = b("log.seconds_median");
    const auto cl = c("log.seconds_median");
    if (bl && cl && std::max(*bl, *cl) < min_seconds) {
      ++cmp.skipped;
    } else {
      cmp.check(*name, "log_seconds_median", bl, cl, time_tol);
    }
    if (check_log) {
      // Absolute bound on the candidate, like --check-overhead: the
      // info-level logging slowdown was measured in-process against the
      // same-run unlogged median. Too-short cases are skipped.
      const auto ov = c("log.overhead");
      if (ov && ct && *ct >= prov_min_seconds) {
        ++cmp.compared;
        const bool ok = *ov <= log_tol;
        if (!ok) ++cmp.regressions;
        cmp.table.add_row(
            {*name, "log_overhead", Table::fmt_percent(log_tol) + " max",
             Table::fmt_percent(*ov), "-", ok ? "ok" : "REGRESS"});
      } else {
        ++cmp.skipped;
      }
    }
    const auto bs = b("profile.seconds_median");
    const auto cs = c("profile.seconds_median");
    if (bs && cs && std::max(*bs, *cs) < min_seconds) {
      ++cmp.skipped;
    } else {
      cmp.check(*name, "prof_seconds_median", bs, cs, time_tol);
    }
    if (check_profile) {
      // Absolute bound on the candidate, like --check-overhead: the
      // sampler slowdown was measured in-process against the same-run
      // unprofiled median. Null (profiler-less platform) or too-short
      // cases are skipped.
      const auto ov = c("profile.overhead");
      if (ov && ct && *ct >= prov_min_seconds) {
        ++cmp.compared;
        const bool ok = *ov <= profile_tol;
        if (!ok) ++cmp.regressions;
        cmp.table.add_row(
            {*name, "prof_overhead", Table::fmt_percent(profile_tol) + " max",
             Table::fmt_percent(*ov), "-", ok ? "ok" : "REGRESS"});
      } else {
        ++cmp.skipped;
      }
    }

    for (std::size_t e = 0; e < obs::kHwEventCount; ++e) {
      const auto ev = static_cast<obs::HwEvent>(e);
      const std::string field =
          "hardware.counters." + std::string(obs::hw_event_name(ev));
      cmp.check(*name, std::string(obs::hw_event_name(ev)), b(field),
                c(field), hw_tol);
    }

    cmp.check(*name, "peak_rss_bytes", b("memory.peak_rss_bytes"),
              c("memory.peak_rss_bytes"), mem_tol);

    // Out-of-core build trajectory (scale cases only): spill and build
    // time follow the usual one-sided policies, plus the absolute
    // budget gate above.
    cmp.check(*name, "scale_build_seconds", b("scale.build_seconds"),
              c("scale.build_seconds"), time_tol);
    cmp.check(*name, "scale_spill_bytes", b("scale.spill_bytes"),
              c("scale.spill_bytes"), mem_tol);
    peak_rss_gate(*name, *j);
  }
  if (n_cases == 0) {
    std::cerr << base_path << ": no cases found\n";
    return 2;
  }

  // Candidate-only cases (a tier added since the baseline was recorded):
  // nothing to diff against, but the absolute gates still apply — the
  // budget check must not be vacuous on the very report that introduces
  // its case.
  for (std::size_t i = 0;; ++i) {
    const auto name = obs::json_string(*cand, case_path(i, "name"));
    if (!name) break;
    if (find_case(*base, *name)) continue;
    ++n_cases;
    peak_rss_gate(*name, i);
  }

  cmp.table.print(std::cout);
  std::cout << n_cases << " case(s): " << cmp.compared << " metrics compared, "
            << cmp.skipped << " skipped (unavailable/noise), "
            << cmp.regressions << " regression(s)\n";
  return cmp.regressions == 0 ? 0 : 1;
}
