// Extension ablation reproducing the design decision in the paper's §4.6:
// "As an alternative, we also tried running multiple BFS traversals in
// parallel. However, this did not yield a speedup because it resulted in
// too much redundant work, as concurrent Eliminate operations would
// overlap in removing vertices from consideration."
//
// candidate_batch = 1 is F-Diam's chosen design (parallelism INSIDE each
// BFS); larger batches evaluate several candidates concurrently (each BFS
// serial) and pay for it in redundant eccentricity computations, which
// this harness counts.

#include <iostream>

#include "core/fdiam.hpp"
#include "harness.hpp"

int main(int argc, char** argv) {
  using namespace fdiam;
  using namespace fdiam::bench;

  Cli cli;
  auto cfg = parse_bench_config(argc, argv, cli, "bench_ablation_batch");
  if (!cfg) return 1;
  if (cfg->inputs.empty()) {
    cfg->inputs = {"amazon0601", "delaunay_n24", "USA-road-d.NY",
                   "rmat16.sym", "internet"};
  }

  const int batches[] = {1, 4, 16, 64};
  Table calls({"Graphs", "batch=1", "batch=4", "batch=16", "batch=64"});
  Table runtimes({"Graphs", "batch=1", "batch=4", "batch=16", "batch=64"});

  for (const auto& [name, g] : build_inputs(*cfg)) {
    std::vector<std::string> calls_row = {name};
    std::vector<std::string> time_row = {name};
    dist_t reference = -1;
    for (const int batch : batches) {
      std::cerr << "[run] " << name << " / batch " << batch << "\n";
      std::uint64_t bfs_calls = 0;
      const Measurement m = measure(
          [&](double budget) {
            FDiamOptions opt;
            opt.candidate_batch = batch;
            opt.time_budget_seconds = budget;
            const DiameterResult r = fdiam_diameter(g, opt);
            bfs_calls = r.stats.bfs_calls;
            return std::pair{r.diameter, r.timed_out};
          },
          cfg->reps, cfg->budget);
      if (!m.timed_out) {
        if (reference < 0) reference = m.diameter;
        if (m.diameter != reference) {
          std::cerr << "BUG: batched run changed the diameter on " << name
                    << "\n";
          return 1;
        }
      }
      calls_row.push_back(m.timed_out ? "timeout"
                                      : Table::fmt_count(bfs_calls));
      time_row.push_back(runtime_cell(m));
    }
    calls.add_row(std::move(calls_row));
    runtimes.add_row(std::move(time_row));
  }
  emit(calls, *cfg,
       "Extension (paper 4.6 negative result): BFS calls vs candidate "
       "batch size");
  emit(runtimes, *cfg, "Runtime (s) vs candidate batch size");
  return 0;
}
