#include "harness.hpp"

#include <algorithm>
#include <cmath>
#include <iostream>
#include <sstream>

#include "gen/suite.hpp"
#include "util/timer.hpp"

namespace fdiam::bench {

std::optional<BenchConfig> parse_bench_config(int argc,
                                              const char* const* argv,
                                              Cli& cli,
                                              const std::string& program) {
  cli.add_option("scale", "suite size multiplier (1.0 = laptop default)",
                 "0.1");
  cli.add_option("reps", "repetitions per measurement (median kept)", "3");
  cli.add_option("budget", "time budget per run in seconds", "10");
  cli.add_option("seed", "generator seed", "1");
  cli.add_option("inputs",
                 "comma-separated subset of the paper's input names", "all");
  cli.add_flag("csv", "also print machine-readable CSV");
  if (!cli.parse(argc, argv)) {
    std::cerr << cli.error() << "\n" << cli.usage(program);
    return std::nullopt;
  }
  if (cli.help_requested()) {
    std::cout << cli.usage(program);
    return std::nullopt;
  }

  BenchConfig cfg;
  cfg.scale = cli.get_double("scale", cfg.scale);
  cfg.reps = static_cast<int>(cli.get_int("reps", cfg.reps));
  cfg.budget = cli.get_double("budget", cfg.budget);
  cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  cfg.csv = cli.get_bool("csv");
  const std::string list = cli.get("inputs", "all");
  if (list != "all" && !list.empty()) {
    std::istringstream ls(list);
    std::string item;
    while (std::getline(ls, item, ',')) cfg.inputs.push_back(item);
  }
  return cfg;
}

std::vector<std::pair<std::string, Csr>> build_inputs(const BenchConfig& cfg) {
  std::vector<std::pair<std::string, Csr>> out;
  const auto wanted = cfg.inputs.empty() ? suite_names() : cfg.inputs;
  for (const std::string& name : wanted) {
    std::cerr << "[build] " << name << " (scale " << cfg.scale << ") ... "
              << std::flush;
    Timer t;
    out.emplace_back(name, build_suite_input(name, cfg.scale, cfg.seed));
    std::cerr << out.back().second.num_vertices() << " vertices, "
              << out.back().second.num_arcs() << " arcs in "
              << Table::fmt_double(t.seconds(), 2) << "s\n";
  }
  return out;
}

Measurement measure(const SingleRun& run, int reps, double budget) {
  Measurement m;
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    Timer t;
    const auto [diameter, timed_out] = run(budget);
    const double elapsed = t.seconds();
    if (timed_out) {
      m.timed_out = true;
      return m;  // the paper reports T/O; repeating would double the wait
    }
    m.diameter = diameter;
    times.push_back(elapsed);
  }
  std::sort(times.begin(), times.end());
  m.seconds = times[times.size() / 2];
  return m;
}

double geomean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (const double v : values) log_sum += std::log(v);
  return std::exp(log_sum / static_cast<double>(values.size()));
}

std::string throughput_cell(const Measurement& m, vid_t vertices) {
  if (m.timed_out) return "T/O";
  const double t = std::max(m.seconds, 1e-9);
  return Table::fmt_sci(static_cast<double>(vertices) / t, 2);
}

std::string runtime_cell(const Measurement& m) {
  if (m.timed_out) return "T/O";
  return Table::fmt_double(m.seconds, 3);
}

void emit(const Table& table, const BenchConfig& cfg,
          const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
  table.print(std::cout);
  if (cfg.csv) {
    std::cout << "\n--- CSV ---\n";
    table.print_csv(std::cout);
  }
  std::cout.flush();
}

}  // namespace fdiam::bench
