#include "harness.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>
#include <sstream>

#include "gen/suite.hpp"
#include "obs/json.hpp"
#include "obs/report.hpp"
#include "util/timer.hpp"

namespace fdiam::bench {

std::optional<BenchConfig> parse_bench_config(int argc,
                                              const char* const* argv,
                                              Cli& cli,
                                              const std::string& program) {
  cli.add_option("scale", "suite size multiplier (1.0 = laptop default)",
                 "0.1");
  cli.add_option("reps", "repetitions per measurement (median kept)", "3");
  cli.add_option("budget", "time budget per run in seconds", "10");
  cli.add_option("seed", "generator seed", "1");
  cli.add_option("inputs",
                 "comma-separated subset of the paper's input names", "all");
  cli.add_flag("csv", "also print machine-readable CSV");
  cli.add_option("json",
                 "write a machine-readable JSON report to this file "
                 "(fdiam.bench_report/v1)");
  if (!cli.parse(argc, argv)) {
    std::cerr << cli.error() << "\n" << cli.usage(program);
    return std::nullopt;
  }
  if (cli.help_requested()) {
    std::cout << cli.usage(program);
    return std::nullopt;
  }

  BenchConfig cfg;
  cfg.scale = cli.get_double("scale", cfg.scale);
  cfg.reps = static_cast<int>(cli.get_int("reps", cfg.reps));
  cfg.budget = cli.get_double("budget", cfg.budget);
  cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  cfg.csv = cli.get_bool("csv");
  cfg.json_out = cli.get("json");
  cfg.program = program;
  const std::string list = cli.get("inputs", "all");
  if (list != "all" && !list.empty()) {
    std::istringstream ls(list);
    std::string item;
    while (std::getline(ls, item, ',')) cfg.inputs.push_back(item);
  }
  return cfg;
}

std::vector<std::pair<std::string, Csr>> build_inputs(const BenchConfig& cfg) {
  std::vector<std::pair<std::string, Csr>> out;
  const auto wanted = cfg.inputs.empty() ? suite_names() : cfg.inputs;
  for (const std::string& name : wanted) {
    std::cerr << "[build] " << name << " (scale " << cfg.scale << ") ... "
              << std::flush;
    Timer t;
    out.emplace_back(name, build_suite_input(name, cfg.scale, cfg.seed));
    std::cerr << out.back().second.num_vertices() << " vertices, "
              << out.back().second.num_arcs() << " arcs in "
              << Table::fmt_double(t.seconds(), 2) << "s\n";
  }
  return out;
}

Measurement measure(const SingleRun& run, int reps, double budget) {
  Measurement m;
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    Timer t;
    const auto [diameter, timed_out] = run(budget);
    const double elapsed = t.seconds();
    if (timed_out) {
      m.timed_out = true;
      return m;  // the paper reports T/O; repeating would double the wait
    }
    m.diameter = diameter;
    times.push_back(elapsed);
  }
  std::sort(times.begin(), times.end());
  m.seconds = times[times.size() / 2];
  return m;
}

double geomean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (const double v : values) log_sum += std::log(v);
  return std::exp(log_sum / static_cast<double>(values.size()));
}

std::string throughput_cell(const Measurement& m, vid_t vertices) {
  if (m.timed_out) return "T/O";
  const double t = std::max(m.seconds, 1e-9);
  return Table::fmt_sci(static_cast<double>(vertices) / t, 2);
}

std::string runtime_cell(const Measurement& m) {
  if (m.timed_out) return "T/O";
  return Table::fmt_double(m.seconds, 3);
}

namespace {

/// Tables emitted so far, kept so the JSON report can be rewritten whole
/// after each emit() (bench binaries emit several tables per run).
std::vector<std::pair<std::string, Table>>& emitted_tables() {
  static std::vector<std::pair<std::string, Table>> tables;
  return tables;
}

}  // namespace

std::string provenance_line(const BenchConfig& cfg) {
  std::ostringstream os;
  os << "fdiam-bench program=" << cfg.program << " seed=" << cfg.seed
     << " scale=" << cfg.scale << " reps=" << cfg.reps
     << " budget=" << cfg.budget << " inputs=";
  if (cfg.inputs.empty()) {
    os << "all";
  } else {
    for (std::size_t i = 0; i < cfg.inputs.size(); ++i) {
      os << (i ? "," : "") << cfg.inputs[i];
    }
  }
  return os.str();
}

void write_bench_json(std::ostream& os, const BenchConfig& cfg) {
  obs::JsonWriter w(os);
  w.begin_object();
  w.field("schema", std::string_view("fdiam.bench_report/v1"));
  w.field("program", std::string_view(cfg.program));

  w.key("config").begin_object();
  w.field("scale", cfg.scale);
  w.field("reps", cfg.reps);
  w.field("budget_s", cfg.budget);
  w.field("seed", cfg.seed);
  w.key("inputs").begin_array();
  for (const std::string& name : cfg.inputs) w.value(std::string_view(name));
  w.end_array();
  w.end_object();

  obs::write_env_fields(w, obs::capture_env());

  w.key("tables").begin_array();
  for (const auto& [title, table] : emitted_tables()) {
    w.begin_object();
    w.field("title", std::string_view(title));
    w.key("columns").begin_array();
    for (const std::string& col : table.header()) {
      w.value(std::string_view(col));
    }
    w.end_array();
    w.key("rows").begin_array();
    for (const std::vector<std::string>& row : table.data()) {
      w.begin_array();
      for (const std::string& cell : row) w.value(std::string_view(cell));
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

void reset_emitted_tables() { emitted_tables().clear(); }

void emit(const Table& table, const BenchConfig& cfg,
          const std::string& title) {
  emitted_tables().emplace_back(title, table);

  std::cout << "\n=== " << title << " ===\n";
  table.print(std::cout);
  if (cfg.csv) {
    std::cout << "\n--- CSV ---\n";
    std::cout << "# " << provenance_line(cfg) << "\n";
    std::cout << "# table: " << title << "\n";
    table.print_csv(std::cout);
  }
  if (!cfg.json_out.empty()) {
    std::ofstream out(cfg.json_out, std::ios::trunc);
    if (out) {
      write_bench_json(out, cfg);
    } else {
      std::cerr << "warning: cannot write JSON report to " << cfg.json_out
                << "\n";
    }
  }
  std::cout.flush();
}

}  // namespace fdiam::bench
