// bench_scale: the out-of-core tier (docs/SCALING.md).
//
// Streams a deterministic RMAT edge sequence straight into
// StreamCsrBuilder — the edge list is never materialized — then
// mmap-loads the resulting v2 .csrbin and solves it. Three phases, each
// timed and RSS-watermarked separately (util::reset_peak_rss between
// phases), with the pipeline's two memory claims asserted:
//
//  * BUILD: anonymous peak RSS stays within --mem-budget plus the
//    documented 4-bytes-per-vertex degree array plus a fixed allowance
//    (--rss-slack) — the builder really is bounded-RAM;
//  * SOLVE (mapped): anonymous peak RSS is O(n) solver scratch. When the
//    graph file is large enough for the distinction to be meaningful
//    (>= 512 MiB) the anon peak must stay under half the file size —
//    the graph bytes are resident via the page cache, not copied.
//
// A violated assertion exits nonzero, so `ctest` (verify-scale) and CI
// can gate on it. At the default --scale 24 --edge-factor 8 the input is
// ~1.3 x 10^8 generated edges (~1.2 GB on disk); verify-scale runs the
// same binary at --scale 17 as a smoke test.
//
//   ./bench_scale                                  # full tier
//   ./bench_scale --scale 17 --mem-budget 8        # ~1M-edge smoke
//   ./bench_scale --out scale.json                 # machine-readable too

#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include <unistd.h>

#include "core/fdiam.hpp"
#include "graph/stream_builder.hpp"
#include "io/io.hpp"
#include "obs/json.hpp"
#include "util/cli.hpp"
#include "util/memory.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace fdiam;

struct PhaseSample {
  double seconds = 0.0;
  std::uint64_t peak_rss_bytes = 0;  ///< VmHWM since the phase started
  std::uint64_t anon_rss_bytes = 0;  ///< RssAnon at phase end
};

/// Run `fn` with the RSS watermark reset at entry and sampled at exit.
template <typename Fn>
PhaseSample phase(bool rss_ok, Fn&& fn) {
  PhaseSample s;
  if (rss_ok) util::reset_peak_rss();
  Timer t;
  fn();
  s.seconds = t.seconds();
  if (const util::RssSample rss = util::read_rss(); rss.available) {
    s.peak_rss_bytes = rss.peak;
    s.anon_rss_bytes = rss.anon;
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  cli.add_option("scale", "log2 of the vertex count", "24");
  cli.add_option("edge-factor", "generated edges per vertex", "8");
  cli.add_option("seed", "RMAT seed", "42");
  cli.add_option("mem-budget", "stream-builder memory budget in MiB", "256");
  cli.add_option("rss-slack",
                 "fixed allowance (MiB) on top of the budget for the build "
                 "RSS assertion (process image, allocator slack)", "96");
  cli.add_option("work-dir",
                 "where the .csrbin and spill runs go (default: the system "
                 "temp directory)");
  cli.add_option("out", "also write a fdiam.scale_report/v1 JSON here");
  cli.add_flag("no-check", "measure only; skip the RSS assertions");
  cli.add_flag("keep", "keep the built .csrbin instead of removing it");
  if (!cli.parse(argc, argv)) {
    std::cerr << cli.error() << "\n" << cli.usage("bench_scale");
    return 2;
  }
  if (cli.help_requested()) {
    std::cout << cli.usage("bench_scale");
    return 0;
  }

  const int scale =
      std::clamp(static_cast<int>(cli.get_int("scale", 24)), 4, 30);
  const auto edge_factor =
      static_cast<std::uint64_t>(std::max<std::int64_t>(
          1, cli.get_int("edge-factor", 8)));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
  const std::uint64_t budget_bytes =
      static_cast<std::uint64_t>(
          std::max<std::int64_t>(1, cli.get_int("mem-budget", 256))) << 20;
  const std::uint64_t slack_bytes =
      static_cast<std::uint64_t>(
          std::max<std::int64_t>(0, cli.get_int("rss-slack", 96))) << 20;
  const bool check = !cli.get_bool("no-check");

  const vid_t n = vid_t{1} << scale;
  const std::uint64_t target_edges = edge_factor * n;
  const std::filesystem::path dir = cli.has("work-dir")
      ? std::filesystem::path(cli.get("work-dir"))
      : std::filesystem::temp_directory_path();
  std::filesystem::create_directories(dir);
  const std::filesystem::path built =
      dir / ("bench_scale_s" + std::to_string(scale) + "_" +
             std::to_string(::getpid()) + ".csrbin");

  const bool rss_ok = util::reset_peak_rss();
  if (!rss_ok) {
    std::cerr << "[scale] warning: /proc/self/clear_refs not writable — "
                 "peak-RSS assertions skipped\n";
  }

  std::cerr << "[scale] build: 2^" << scale << " vertices, "
            << Table::fmt_count(target_edges) << " generated edges, budget "
            << (budget_bytes >> 20) << " MiB -> " << built << "\n";

  // --- phase 1: streamed external-memory build -------------------------
  StreamBuildStats st;
  const PhaseSample build = phase(rss_ok, [&] {
    StreamBuildOptions opt;
    opt.mem_budget_bytes = budget_bytes;
    StreamCsrBuilder b(built, opt);
    // The classic RMAT recursion, identical to gen/rmat.cpp, fed edge by
    // edge — this process never holds more than one edge of the input.
    Rng rng(seed);
    for (std::uint64_t e = 0; e < target_edges; ++e) {
      vid_t u = 0, v = 0;
      for (int bit = 0; bit < scale; ++bit) {
        const double r = rng.uniform();
        u <<= 1;
        v <<= 1;
        if (r < 0.45) {
        } else if (r < 0.67) {
          v |= 1;
        } else if (r < 0.89) {
          u |= 1;
        } else {
          u |= 1;
          v |= 1;
        }
      }
      if (u != v) b.add_edge(u, v);
    }
    st = b.finish();
  });

  // --- phase 2: zero-copy load ----------------------------------------
  Csr g;
  const PhaseSample load = phase(rss_ok, [&] {
    // The builder's own output needs no O(m) re-verification (and the
    // scan would fault every page in, spoiling the solve-phase numbers).
    g = io::map_binary(built, {}, /*verify_neighbors=*/false);
  });

  // --- phase 3: solve on the mapped graph ------------------------------
  DiameterResult res;
  const PhaseSample solve = phase(rss_ok, [&] {
    res = fdiam_diameter(g);
  });

  Table t({"phase", "seconds", "peak RSS", "anon RSS"});
  const auto row = [&](const char* name, const PhaseSample& p) {
    t.add_row({name, Table::fmt_double(p.seconds, 3),
               Table::fmt_count(p.peak_rss_bytes),
               Table::fmt_count(p.anon_rss_bytes)});
  };
  row("build", build);
  row("mmap-load", load);
  row("solve", solve);
  t.print(std::cout);
  std::cout << "graph: " << Table::fmt_count(g.num_vertices())
            << " vertices, " << Table::fmt_count(g.num_arcs()) << " arcs, "
            << Table::fmt_count(st.spill_bytes) << " spill bytes, "
            << Table::fmt_count(st.output_bytes) << " on disk\n"
            << "diameter: " << res.diameter
            << (res.connected ? "" : " (largest component)") << ", "
            << res.stats.bfs_calls << " BFS calls\n";

  int failures = 0;
  if (check && rss_ok) {
    // Build bound: budgeted buffers + the documented 4n degree array +
    // fixed slack, against the phase's VmHWM watermark — the end-of-phase
    // anon sample would be vacuous (the builder's buffers are already
    // freed by then), and the watermark also catches a regression that
    // mmaps its way around the budget.
    const std::uint64_t degree_bytes = std::uint64_t{4} * n;
    const std::uint64_t build_limit =
        budget_bytes + degree_bytes + slack_bytes;
    if (build.peak_rss_bytes > build_limit) {
      std::cerr << "[scale] FAIL: build peak RSS "
                << Table::fmt_count(build.peak_rss_bytes) << " exceeds "
                << Table::fmt_count(build_limit)
                << " (budget + 4n degrees + slack)\n";
      ++failures;
    }
    // Solve bound: only meaningful when the graph dwarfs the solver's
    // O(n)-and-per-thread scratch; below that the constant terms win.
    if (st.output_bytes >= (std::uint64_t{512} << 20) &&
        solve.anon_rss_bytes > st.output_bytes / 2) {
      std::cerr << "[scale] FAIL: mapped solve anon RSS "
                << Table::fmt_count(solve.anon_rss_bytes)
                << " is not small next to the "
                << Table::fmt_count(st.output_bytes)
                << "-byte graph file — zero-copy is broken\n";
      ++failures;
    }
    if (failures == 0) std::cout << "RSS assertions: ok\n";
  }

  if (cli.has("out")) {
    std::ofstream out(cli.get("out"), std::ios::trunc);
    if (!out) {
      std::cerr << "cannot write " << cli.get("out") << "\n";
      return 2;
    }
    obs::JsonWriter w(out);
    w.begin_object();
    w.field("schema", std::string_view("fdiam.scale_report/v1"));
    w.key("config").begin_object();
    w.field("scale", static_cast<std::int64_t>(scale));
    w.field("edge_factor", edge_factor);
    w.field("seed", seed);
    w.field("mem_budget_bytes", budget_bytes);
    w.field("threads", num_threads());
    w.end_object();
    w.key("build").begin_object();
    w.field("seconds", build.seconds);
    w.field("peak_rss_bytes", build.peak_rss_bytes);
    w.field("anon_rss_bytes", build.anon_rss_bytes);
    w.field("edges_in", st.edges_in);
    w.field("edges_unique", st.edges_unique);
    w.field("chunks_spilled", st.chunks_spilled);
    w.field("spill_bytes", st.spill_bytes);
    w.field("output_bytes", st.output_bytes);
    w.end_object();
    w.key("load").begin_object();
    w.field("seconds", load.seconds);
    w.field("mapped_bytes", util::mapped_bytes());
    w.end_object();
    w.key("solve").begin_object();
    w.field("seconds", solve.seconds);
    w.field("peak_rss_bytes", solve.peak_rss_bytes);
    w.field("anon_rss_bytes", solve.anon_rss_bytes);
    w.field("diameter", static_cast<std::int64_t>(res.diameter));
    w.field("bfs_calls", res.stats.bfs_calls);
    w.field("connected", res.connected);
    w.end_object();
    w.field("rss_checked", check && rss_ok);
    w.field("failures", static_cast<std::int64_t>(failures));
    w.end_object();
    out << '\n';
  }

  g = Csr{};  // release the mapping before removing the file
  if (!cli.get_bool("keep")) std::filesystem::remove(built);
  return failures == 0 ? 0 : 1;
}
