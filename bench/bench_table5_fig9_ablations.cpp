// Reproduces Table 5 (number of BFS calls in different versions of
// F-Diam) and Figure 9 (throughput of the same versions): full F-Diam vs
// "no Winnow" vs "no Eliminate" vs "no 'u'" (start at vertex id 0 instead
// of the max-degree vertex). Only one feature is disabled at a time, as
// in the paper (§6.5: disabling several together mostly times out).

#include <iostream>

#include "core/fdiam.hpp"
#include "harness.hpp"

namespace {

using namespace fdiam;
using namespace fdiam::bench;

struct Variant {
  std::string name;
  FDiamOptions opt;
};

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  const auto cfg =
      parse_bench_config(argc, argv, cli, "bench_table5_fig9_ablations");
  if (!cfg) return 1;

  // The paper's four variants plus one extra ablation of our own: "no
  // Chain" (the paper motivates Chain Processing in §4.3 but does not
  // ablate it; DESIGN.md lists this as an extension experiment).
  std::vector<Variant> variants(5);
  variants[0].name = "F-Diam";
  variants[1].name = "no Winnow";
  variants[1].opt.use_winnow = false;
  variants[2].name = "no Elim.";
  variants[2].opt.use_eliminate = false;
  variants[3].name = "no 'u'";
  variants[3].opt.start_policy = StartPolicy::kVertexZero;
  variants[4].name = "no Chain";
  variants[4].opt.use_chain = false;

  Table calls(
      {"Graphs", "F-Diam", "no Winnow", "no Elim.", "no 'u'", "no Chain"});
  Table throughput(
      {"Graphs", "F-Diam", "no Winnow", "no Elim.", "no 'u'", "no Chain"});
  std::vector<std::vector<double>> tp(variants.size());

  for (const auto& [name, g] : build_inputs(*cfg)) {
    std::vector<std::string> calls_row = {name};
    std::vector<std::string> tp_row = {name};
    for (std::size_t i = 0; i < variants.size(); ++i) {
      std::cerr << "[run] " << name << " / " << variants[i].name << "\n";
      std::uint64_t bfs_calls = 0;
      const Measurement m = measure(
          [&](double budget) {
            FDiamOptions opt = variants[i].opt;
            opt.time_budget_seconds = budget;
            const DiameterResult r = fdiam_diameter(g, opt);
            bfs_calls = r.stats.bfs_calls;
            return std::pair{r.diameter, r.timed_out};
          },
          cfg->reps, cfg->budget);
      calls_row.push_back(m.timed_out ? "timeout"
                                      : Table::fmt_count(bfs_calls));
      tp_row.push_back(throughput_cell(m, g.num_vertices()));
      if (!m.timed_out) {
        tp[i].push_back(static_cast<double>(g.num_vertices()) /
                        std::max(m.seconds, 1e-9));
      }
    }
    calls.add_row(std::move(calls_row));
    throughput.add_row(std::move(tp_row));
  }

  emit(calls, *cfg, "Table 5: number of BFS calls per F-Diam variant");
  emit(throughput, *cfg, "Figure 9: throughput per F-Diam variant");

  std::cout << "\n=== Geomean throughput relative to full F-Diam (paper "
               "§6.5: no-Winnow 2%, no-'u' 17%, no-Elim 22%) ===\n";
  const double base = geomean(tp[0]);
  for (std::size_t i = 1; i < variants.size(); ++i) {
    const double v = geomean(tp[i]);
    std::cout << variants[i].name << ": "
              << (base > 0 ? Table::fmt_percent(v / base, 1) : "n/a")
              << " of full F-Diam (over completed inputs only)\n";
  }
  return 0;
}
