// Google-benchmark microbenchmarks for the BFS substrate: serial vs
// parallel, top-down vs direction-optimizing, on a mesh (high diameter,
// narrow frontiers — bottom-up never triggers) and a power-law graph
// (low diameter, huge frontiers — bottom-up pays off). These justify the
// design choices behind the paper's §4.6.

#include <benchmark/benchmark.h>

#include "bfs/bfs.hpp"
#include "core/fdiam.hpp"
#include "gen/generators.hpp"

namespace {

using namespace fdiam;

const Csr& grid_graph() {
  static const Csr g = make_grid(300, 300);
  return g;
}

const Csr& powerlaw_graph() {
  // BA core with tendrils: realistic core-periphery structure (without
  // the periphery, the end-to-end F-Diam benchmark would be dominated by
  // thousands of near-diametral vertices no real input exhibits).
  static const Csr g = [] {
    TendrilOptions opt;
    opt.per_vertex = 0.015;
    opt.max_len = 12;
    return attach_tendrils(make_barabasi_albert(100000, 8.0, 42), opt, 42);
  }();
  return g;
}

void bfs_bench(benchmark::State& state, const Csr& g, BfsConfig config) {
  BfsEngine engine(g, config);
  const vid_t source = g.max_degree_vertex();
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.eccentricity(source));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          g.num_vertices());
}

void BM_Grid_SerialTopDown(benchmark::State& state) {
  bfs_bench(state, grid_graph(), {false, false, 0.1});
}
void BM_Grid_SerialHybrid(benchmark::State& state) {
  bfs_bench(state, grid_graph(), {false, true, 0.1});
}
void BM_Grid_ParallelHybrid(benchmark::State& state) {
  bfs_bench(state, grid_graph(), {true, true, 0.1});
}
void BM_PowerLaw_SerialTopDown(benchmark::State& state) {
  bfs_bench(state, powerlaw_graph(), {false, false, 0.1});
}
void BM_PowerLaw_SerialHybrid(benchmark::State& state) {
  bfs_bench(state, powerlaw_graph(), {false, true, 0.1});
}
void BM_PowerLaw_ParallelTopDown(benchmark::State& state) {
  bfs_bench(state, powerlaw_graph(), {true, false, 0.1});
}
void BM_PowerLaw_ParallelHybrid(benchmark::State& state) {
  bfs_bench(state, powerlaw_graph(), {true, true, 0.1});
}

// Threshold sweep for the direction-optimizing switch (paper §4.6 settled
// on 10% of |V| experimentally).
void BM_PowerLaw_ThresholdSweep(benchmark::State& state) {
  const double threshold = static_cast<double>(state.range(0)) / 100.0;
  bfs_bench(state, powerlaw_graph(), {true, true, threshold});
}

// End-to-end F-Diam as a microbenchmark (per-iteration full solve).
void BM_FDiam_PowerLaw(benchmark::State& state) {
  const Csr& g = powerlaw_graph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fdiam_diameter(g).diameter);
  }
}
void BM_FDiam_Grid(benchmark::State& state) {
  const Csr& g = grid_graph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fdiam_diameter(g).diameter);
  }
}

}  // namespace

BENCHMARK(BM_Grid_SerialTopDown)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Grid_SerialHybrid)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Grid_ParallelHybrid)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PowerLaw_SerialTopDown)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PowerLaw_SerialHybrid)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PowerLaw_ParallelTopDown)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PowerLaw_ParallelHybrid)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PowerLaw_ThresholdSweep)
    ->Arg(1)
    ->Arg(5)
    ->Arg(10)
    ->Arg(25)
    ->Arg(50)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FDiam_PowerLaw)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FDiam_Grid)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
