// Reproduces Figure 7: geometric-mean F-Diam throughput across the input
// suite for different OpenMP thread counts. The paper scales 1..64
// threads on a 32-core Threadripper and sees a 7.67x geometric-mean
// speedup; on machines with fewer cores the curve flattens at the
// physical core count (which is exactly the paper's observation).

#include <iostream>
#include <sstream>

#include "core/fdiam.hpp"
#include "harness.hpp"
#include "util/parallel.hpp"

int main(int argc, char** argv) {
  using namespace fdiam;
  using namespace fdiam::bench;

  Cli cli;
  cli.add_option("threads", "comma-separated thread counts", "1,2,4,8");
  const auto cfg =
      parse_bench_config(argc, argv, cli, "bench_fig7_scalability");
  if (!cfg) return 1;

  std::vector<int> thread_counts;
  {
    std::istringstream ls(cli.get("threads", "1,2,4,8"));
    std::string item;
    while (std::getline(ls, item, ',')) thread_counts.push_back(std::stoi(item));
  }

  const auto inputs = build_inputs(*cfg);

  Table table({"threads", "geomean throughput (v/s)", "completed inputs"});
  std::vector<double> baseline_tp;  // 1-thread throughput per input
  for (const int threads : thread_counts) {
    set_num_threads(threads);
    std::vector<double> tps;
    for (const auto& [name, g] : inputs) {
      std::cerr << "[run] " << threads << " threads / " << name << "\n";
      const Measurement m = measure(
          [&](double budget) {
            FDiamOptions opt;
            opt.time_budget_seconds = budget;
            const DiameterResult r = fdiam_diameter(g, opt);
            return std::pair{r.diameter, r.timed_out};
          },
          cfg->reps, cfg->budget);
      if (!m.timed_out) {
        tps.push_back(static_cast<double>(g.num_vertices()) /
                      std::max(m.seconds, 1e-9));
      }
    }
    table.add_row({std::to_string(threads), Table::fmt_sci(geomean(tps), 3),
                   std::to_string(tps.size()) + "/" +
                       std::to_string(inputs.size())});
    if (baseline_tp.empty()) baseline_tp = tps;
  }
  emit(table, *cfg,
       "Figure 7: F-Diam geomean throughput vs thread count (hardware has " +
           std::to_string(num_threads()) + " threads available)");
  return 0;
}
