// Reproduces Figure 8: the fraction of F-Diam's overall runtime spent in
// each function (2-sweep initialization, Winnow, Chain Processing,
// Eliminate incl. region extension, the main-loop eccentricity BFS calls,
// and everything else). The paper's finding: the few eccentricity
// computations dominate, all pruning stages are cheap.

#include <iostream>

#include "core/fdiam.hpp"
#include "harness.hpp"

int main(int argc, char** argv) {
  using namespace fdiam;
  using namespace fdiam::bench;

  Cli cli;
  const auto cfg =
      parse_bench_config(argc, argv, cli, "bench_fig8_runtime_breakdown");
  if (!cfg) return 1;

  Table table({"Graphs", "init (2-sweep)", "winnow", "chain", "eliminate",
               "eccentricity", "other", "total (s)"});
  for (const auto& [name, g] : build_inputs(*cfg)) {
    std::cerr << "[run] " << name << "\n";
    FDiamOptions opt;
    opt.time_budget_seconds = cfg->budget;
    const DiameterResult r = fdiam_diameter(g, opt);
    const FDiamStats& s = r.stats;
    const double total = std::max(s.time_total, 1e-12);
    auto pct = [&](double t) { return Table::fmt_percent(t / total, 1); };
    table.add_row({name, pct(s.time_init), pct(s.time_winnow),
                   pct(s.time_chain), pct(s.time_eliminate), pct(s.time_ecc),
                   pct(std::max(0.0, s.time_other())),
                   Table::fmt_double(s.time_total, 3)});
  }
  emit(table, *cfg, "Figure 8: % of F-Diam runtime per function");
  return 0;
}
