// Extension ablation: how much does the QUALITY of the initial lower
// bound matter? The paper's §4.1 argues for spending 2 BFS on a 2-sweep
// because "we want this bound to be as close to the actual diameter as
// possible" and §4.2 notes Winnow's ball radius is floor(bound/2). Here
// we degrade the starting bound to fractions of its 2-sweep value (the
// cap keeps it a valid lower bound, so every run stays exact) and count
// the BFS traversals F-Diam then needs.

#include <cmath>
#include <iostream>

#include "core/fdiam.hpp"
#include "harness.hpp"

int main(int argc, char** argv) {
  using namespace fdiam;
  using namespace fdiam::bench;

  Cli cli;
  auto cfg =
      parse_bench_config(argc, argv, cli, "bench_ablation_bound_quality");
  if (!cfg) return 1;
  if (cfg->inputs.empty()) {
    cfg->inputs = {"amazon0601", "internet", "rmat16.sym", "USA-road-d.NY",
                   "delaunay_n24"};
  }

  const double fractions[] = {1.0, 0.75, 0.5, 0.25};
  Table calls({"Graphs", "full bound", "75%", "50%", "25%", "diameter"});

  for (const auto& [name, g] : build_inputs(*cfg)) {
    // Reference run for the exact diameter (=> the cap values).
    FDiamOptions base;
    base.time_budget_seconds = cfg->budget;
    const DiameterResult ref = fdiam_diameter(g, base);

    std::vector<std::string> row = {name};
    for (const double f : fractions) {
      std::cerr << "[run] " << name << " / bound*" << f << "\n";
      FDiamOptions opt;
      opt.time_budget_seconds = cfg->budget;
      opt.cap_initial_bound = std::max<dist_t>(
          1, static_cast<dist_t>(std::floor(f * ref.diameter)));
      const DiameterResult r = fdiam_diameter(g, opt);
      if (!r.timed_out && r.diameter != ref.diameter) {
        std::cerr << "BUG: capped run changed the diameter on " << name
                  << "\n";
        return 1;
      }
      row.push_back(r.timed_out ? "timeout"
                                : Table::fmt_count(r.stats.bfs_calls));
    }
    row.push_back(Table::fmt_count(static_cast<std::uint64_t>(ref.diameter)));
    calls.add_row(std::move(row));
  }
  emit(calls, *cfg,
       "Extension: BFS traversals vs initial-bound quality (cap at "
       "fraction of the true diameter; all runs exact)");
  return 0;
}
