// Reproduces Table 4: percentage of vertices removed from consideration
// by Winnow, Eliminate, and Chain Processing, plus degree-0 vertices.
// (The small remainder is the vertices whose eccentricity F-Diam computed
// explicitly, which the paper folds into the rounding; we print it too.)

#include <iostream>

#include "core/fdiam.hpp"
#include "harness.hpp"

int main(int argc, char** argv) {
  using namespace fdiam;
  using namespace fdiam::bench;

  Cli cli;
  const auto cfg =
      parse_bench_config(argc, argv, cli, "bench_table4_stage_effectiveness");
  if (!cfg) return 1;

  Table table({"Graphs", "Winnow", "Eliminate", "Chain", "Degree-0 Vertices",
               "Evaluated"});
  for (const auto& [name, g] : build_inputs(*cfg)) {
    std::cerr << "[run] " << name << "\n";
    FDiamOptions opt;
    opt.time_budget_seconds = cfg->budget;
    const DiameterResult r = fdiam_diameter(g, opt);
    const double n = std::max<double>(1.0, g.num_vertices());
    auto pct = [&](vid_t count) {
      return Table::fmt_percent(static_cast<double>(count) / n, 2);
    };
    table.add_row({name, pct(r.stats.removed_by_winnow),
                   pct(r.stats.removed_by_eliminate),
                   pct(r.stats.removed_by_chain),
                   pct(r.stats.degree0_vertices), pct(r.stats.evaluated)});
  }
  emit(table, *cfg,
       "Table 4: % of vertices removed per stage (plus evaluated remainder)");
  return 0;
}
