// Reproduces Table 2 (runtimes in seconds, T/O = timeout) and Figure 6
// (throughput in vertices/second, log scale in the paper) for the five
// codes: F-Diam serial, F-Diam parallel, iFUB serial, iFUB parallel, and
// Graph-Diameter. Also prints the geometric-mean speedup summaries the
// paper reports in §6.1 (computed over inputs where neither code timed
// out, per the paper's footnote 2).

#include <iostream>
#include <map>

#include "baselines/baselines.hpp"
#include "core/fdiam.hpp"
#include "harness.hpp"

namespace {

using namespace fdiam;
using namespace fdiam::bench;

struct Code {
  std::string name;
  std::function<Measurement(const Csr&, const BenchConfig&)> run;
};

Measurement run_fdiam(const Csr& g, const BenchConfig& cfg, bool parallel) {
  return measure(
      [&](double budget) {
        FDiamOptions opt;
        opt.parallel = parallel;
        opt.time_budget_seconds = budget;
        const DiameterResult r = fdiam_diameter(g, opt);
        return std::pair{r.diameter, r.timed_out};
      },
      cfg.reps, cfg.budget);
}

Measurement run_baseline(const Csr& g, const BenchConfig& cfg,
                         BaselineResult (*algo)(const Csr&, BaselineOptions),
                         bool parallel) {
  return measure(
      [&](double budget) {
        BaselineOptions opt;
        opt.parallel = parallel;
        opt.time_budget_seconds = budget;
        const BaselineResult r = algo(g, opt);
        return std::pair{r.diameter, r.timed_out};
      },
      cfg.reps, cfg.budget);
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  const auto cfg = parse_bench_config(argc, argv, cli, "bench_table2_runtimes");
  if (!cfg) return 1;

  const std::vector<Code> codes = {
      {"F-Diam (ser)",
       [](const Csr& g, const BenchConfig& c) { return run_fdiam(g, c, false); }},
      {"F-Diam (par)",
       [](const Csr& g, const BenchConfig& c) { return run_fdiam(g, c, true); }},
      {"iFUB (ser)",
       [](const Csr& g, const BenchConfig& c) {
         return run_baseline(g, c, ifub_diameter, false);
       }},
      {"iFUB (par)",
       [](const Csr& g, const BenchConfig& c) {
         return run_baseline(g, c, ifub_diameter, true);
       }},
      {"Graph-Diam.",
       [](const Csr& g, const BenchConfig& c) {
         return run_baseline(g, c, graph_diameter, false);
       }},
  };

  Table runtimes({"Graphs", "F-Diam (ser)", "F-Diam (par)", "iFUB (ser)",
                  "iFUB (par)", "Graph-Diam."});
  Table throughput({"Graphs", "F-Diam (ser)", "F-Diam (par)", "iFUB (ser)",
                    "iFUB (par)", "Graph-Diam."});
  // throughputs[code][input] for the geomean summaries.
  std::map<std::string, std::map<std::string, double>> tp;

  for (const auto& [name, g] : build_inputs(*cfg)) {
    std::vector<std::string> rt_row = {name};
    std::vector<std::string> tp_row = {name};
    for (const Code& code : codes) {
      std::cerr << "[run] " << name << " / " << code.name << "\n";
      const Measurement m = code.run(g, *cfg);
      rt_row.push_back(runtime_cell(m));
      tp_row.push_back(throughput_cell(m, g.num_vertices()));
      if (!m.timed_out) {
        tp[code.name][name] =
            static_cast<double>(g.num_vertices()) / std::max(m.seconds, 1e-9);
      }
    }
    runtimes.add_row(std::move(rt_row));
    throughput.add_row(std::move(tp_row));
  }

  emit(runtimes, *cfg, "Table 2: measured runtimes in seconds (T/O = timeout)");
  emit(throughput, *cfg, "Figure 6: throughput in vertices/second");

  // Geometric-mean speedups over commonly-completed inputs (footnote 2).
  auto speedup = [&](const std::string& a, const std::string& b) {
    std::vector<double> ratios;
    for (const auto& [input, tpa] : tp[a]) {
      const auto it = tp[b].find(input);
      if (it != tp[b].end()) ratios.push_back(tpa / it->second);
    }
    return ratios.empty() ? 0.0 : geomean(ratios);
  };
  std::cout << "\n=== Geometric-mean throughput ratios (paper §6.1) ===\n";
  for (const std::string base :
       {"iFUB (ser)", "iFUB (par)", "Graph-Diam."}) {
    std::cout << "F-Diam (ser) vs " << base << ": "
              << Table::fmt_double(speedup("F-Diam (ser)", base), 1) << "x\n";
    std::cout << "F-Diam (par) vs " << base << ": "
              << Table::fmt_double(speedup("F-Diam (par)", base), 1) << "x\n";
  }
  std::cout << "F-Diam (par) vs F-Diam (ser): "
            << Table::fmt_double(speedup("F-Diam (par)", "F-Diam (ser)"), 2)
            << "x (paper: 7.67x on 32 cores)\n";
  return 0;
}
