// Reproduces Table 3: number of BFS traversals per code. The counting
// rule follows the paper (§6.3): for F-Diam a traversal is an
// eccentricity computation or a Winnow invocation (Eliminate is not
// counted because it only touches a small region); for the baselines it
// is the number of full BFS calls they issue.

#include <iostream>

#include "baselines/baselines.hpp"
#include "core/fdiam.hpp"
#include "harness.hpp"

int main(int argc, char** argv) {
  using namespace fdiam;
  using namespace fdiam::bench;

  Cli cli;
  const auto cfg =
      parse_bench_config(argc, argv, cli, "bench_table3_bfs_counts");
  if (!cfg) return 1;

  Table table({"Graphs", "F-Diam", "iFUB", "Graph-Diameter", "diameter"});
  for (const auto& [name, g] : build_inputs(*cfg)) {
    std::cerr << "[run] " << name << "\n";

    FDiamOptions fopt;
    fopt.time_budget_seconds = cfg->budget;
    const DiameterResult f = fdiam_diameter(g, fopt);

    BaselineOptions bopt;
    bopt.time_budget_seconds = cfg->budget;
    const BaselineResult ifub = ifub_diameter(g, bopt);
    const BaselineResult gd = graph_diameter(g, bopt);

    auto cell = [](std::uint64_t calls, bool timed_out) {
      return timed_out ? std::string("timeout") : Table::fmt_count(calls);
    };
    table.add_row({name, cell(f.stats.bfs_calls, f.timed_out),
                   cell(ifub.bfs_calls, ifub.timed_out),
                   cell(gd.bfs_calls, gd.timed_out),
                   Table::fmt_count(static_cast<std::uint64_t>(f.diameter))});
  }
  emit(table, *cfg, "Table 3: number of BFS traversals");
  return 0;
}
