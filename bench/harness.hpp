#pragma once
// Shared support for the benchmark harness binaries (one per paper table
// or figure; see DESIGN.md "Experiment index").
//
// Common conventions, mirroring the paper's methodology (§5):
//  * every algorithm runs `reps` times per input and the median is kept
//    (the paper uses 9 runs; the default here is 3 for quick turnaround),
//  * every run gets a time budget (`budget` seconds; the paper used 2.5 h)
//    and a timed-out run prints as "T/O",
//  * throughput = vertices / seconds (higher is better), and cross-code
//    speedups are geometric means over the inputs where neither code
//    timed out (paper footnote 2).

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/fdiam.hpp"
#include "graph/csr.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace fdiam::bench {

struct BenchConfig {
  double scale = 0.1;   ///< suite size multiplier (1.0 = laptop default)
  int reps = 3;         ///< runs per measurement; median reported
  double budget = 10.0; ///< per-run time budget in seconds
  std::uint64_t seed = 1;
  std::vector<std::string> inputs;  ///< empty = the full 17-input suite
  bool csv = false;     ///< also dump machine-readable CSV after the table
  std::string json_out; ///< non-empty: write a JSON report to this path
  std::string program;  ///< bench binary name, recorded as provenance
};

/// Registers the standard flags on `cli`, parses argv, and fills a config.
/// Prints usage and returns nullopt when --help was requested or parsing
/// failed.
std::optional<BenchConfig> parse_bench_config(int argc, const char* const* argv,
                                              Cli& cli,
                                              const std::string& program);

/// Build the requested suite inputs (all 17 by default) at config.scale.
std::vector<std::pair<std::string, Csr>> build_inputs(const BenchConfig& cfg);

/// Median-of-reps measurement of an arbitrary diameter code. The callable
/// runs the algorithm once under `budget` seconds and reports whether it
/// timed out; timing is handled here.
struct Measurement {
  double seconds = 0.0;       ///< median wall-clock of the completed runs
  bool timed_out = false;     ///< any rep exceeded the budget
  dist_t diameter = 0;        ///< result of the last completed run
};

using SingleRun = std::function<std::pair<dist_t, bool>(double budget)>;
Measurement measure(const SingleRun& run, int reps, double budget);

/// Geometric mean; empty input yields 0.
double geomean(const std::vector<double>& values);

/// vertices/second as a table cell, or "T/O".
std::string throughput_cell(const Measurement& m, vid_t vertices);
std::string runtime_cell(const Measurement& m);

/// Emit the table, optionally followed by a CSV copy (prefixed with a
/// `# fdiam-bench ...` provenance comment carrying program, seed, scale,
/// reps, and budget so saved dumps are self-describing). When
/// cfg.json_out is set, the file is (re)written with every table emitted
/// so far in the "fdiam.bench_report/v1" schema — rewriting after each
/// emit keeps the report complete even if a later measurement crashes.
void emit(const Table& table, const BenchConfig& cfg,
          const std::string& title);

/// One-line provenance string shared by the CSV comment and log output.
std::string provenance_line(const BenchConfig& cfg);

/// Serialize every table emitted so far by this process, plus config and
/// environment provenance, as one "fdiam.bench_report/v1" JSON document.
void write_bench_json(std::ostream& os, const BenchConfig& cfg);

/// Forget the tables accumulated by emit() (tests isolate cases with it).
void reset_emitted_tables();

}  // namespace fdiam::bench
