// Reproduces Table 1: information about the input graphs (name, type,
// vertices, edges incl. back edges, average degree, max degree, and the
// largest eccentricity in any connected component, computed exactly with
// F-Diam).

#include <iostream>

#include "core/fdiam.hpp"
#include "gen/suite.hpp"
#include "graph/stats.hpp"
#include "harness.hpp"

int main(int argc, char** argv) {
  using namespace fdiam;
  using namespace fdiam::bench;

  Cli cli;
  const auto cfg = parse_bench_config(argc, argv, cli, "bench_table1_inputs");
  if (!cfg) return 1;

  Table table({"name", "type", "vertices", "edges", "avg degree",
               "max degree", "CC diameter", "connected"});
  for (const auto& [name, g] : build_inputs(*cfg)) {
    const GraphStats s = compute_stats(g);
    FDiamOptions opt;
    opt.time_budget_seconds = cfg->budget;
    const DiameterResult r = fdiam_diameter(g, opt);
    std::string type;
    for (const SuiteEntry& entry : input_suite()) {
      if (entry.name == name) type = entry.type;
    }
    table.add_row({name, type, Table::fmt_count(s.vertices),
                   Table::fmt_count(s.arcs), Table::fmt_double(s.avg_degree, 1),
                   Table::fmt_count(s.max_degree),
                   r.timed_out ? ">=" + Table::fmt_count(
                                            static_cast<std::uint64_t>(r.diameter))
                               : Table::fmt_count(
                                     static_cast<std::uint64_t>(r.diameter)),
                   r.connected ? "yes" : "no"});
  }
  emit(table, *cfg, "Table 1: input graphs (synthetic analogues at scale " +
                        Table::fmt_double(cfg->scale, 2) + ")");
  return 0;
}
