// bench_serve: load generator for the fdiam_serve daemon.
//
// Measures point-query throughput (QPS) and latency (p50/p99) of an
// in-process server under concurrent clients, in two arms:
//
//   batched   — the production configuration: concurrent queries share
//               MS-BFS sweeps (up to --max-batch sources per traversal);
//   unbatched — the naive baseline: one single-source sweep per query.
//
// The interesting number is the QPS ratio. Every client thread issues a
// deterministic mix of `dist` and `ecc` queries over its own connection,
// so at concurrency C the server sees up to C outstanding queries and
// the batcher can amortize them onto ~C/64-th the traversal work. A
// mid-run `reload` is fired during the batched arm and the bench
// asserts that not a single in-flight request fails or is dropped
// (responses stay per-connection ordered, so loss would surface as a
// transport error or a missing reply).
//
// --check asserts ratio >= --min-speedup (the ISSUE's acceptance bar is
// 4x at concurrency >= 32) and zero failed requests; nonzero exit on
// violation makes this runnable as a CI regression (verify-serve-bench).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "gen/generators.hpp"
#include "io/io.hpp"
#include "obs/json.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "util/cli.hpp"
#include "util/histogram.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using fdiam::Timer;

struct ArmResult {
  double seconds = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::uint64_t requests = 0;
  std::uint64_t failures = 0;
  std::uint64_t sweeps = 0;
  double mean_occupancy = 0.0;
};

ArmResult run_arm(const std::filesystem::path& socket,
                  const std::filesystem::path& graph_path, bool batching,
                  int max_batch, int concurrency, int requests_per_thread,
                  fdiam::vid_t n, bool reload_during_load) {
  fdiam::serve::ServerOptions opt;
  opt.socket_path = socket;
  opt.batching = batching;
  opt.max_batch = max_batch;
  fdiam::serve::Server server(opt);
  server.add_graph("bench", graph_path);
  server.start();

  fdiam::Histogram latency;
  std::atomic<std::uint64_t> failures{0};
  std::atomic<std::uint64_t> completed{0};
  Timer wall;
  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(concurrency));
  for (int t = 0; t < concurrency; ++t) {
    clients.emplace_back([&, t] {
      fdiam::serve::Client client;
      if (!client.connect(socket.string())) {
        failures.fetch_add(static_cast<std::uint64_t>(requests_per_thread));
        return;
      }
      fdiam::Rng rng(0x5eedULL + static_cast<std::uint64_t>(t));
      for (int i = 0; i < requests_per_thread; ++i) {
        auto u = static_cast<fdiam::vid_t>(rng.below(n));
        auto v = static_cast<fdiam::vid_t>(rng.below(n));
        Timer req;
        std::string response = (i % 4 == 3)
                                   ? client.eccentricity(u, "bench")
                                   : client.distance(u, v, "bench");
        double ms = req.seconds() * 1e3;
        bool ok = !response.empty();
        if (ok) {
          std::optional<std::string_view> flag =
              fdiam::obs::json_lookup(response, "ok");
          ok = flag.has_value() && *flag == "true";
        }
        if (!ok) {
          failures.fetch_add(1);
        } else {
          latency.record(ms);
        }
        completed.fetch_add(1);
      }
    });
  }

  std::uint64_t reloads_fired = 0;
  if (reload_during_load) {
    // Fire reloads from a side connection while the load threads are
    // mid-flight; the zero-loss assertion is that none of their
    // requests fail around the generation swaps.
    const std::uint64_t total = static_cast<std::uint64_t>(concurrency) *
                                static_cast<std::uint64_t>(requests_per_thread);
    fdiam::serve::Client admin;
    if (admin.connect(socket.string())) {
      while (completed.load() < total / 2) {
        std::string response = admin.reload("bench");
        if (!response.empty()) ++reloads_fired;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    }
  }

  for (std::thread& c : clients) c.join();
  ArmResult result;
  result.seconds = wall.seconds();
  result.requests = completed.load();
  result.failures = failures.load();
  result.qps = result.seconds > 0
                   ? static_cast<double>(result.requests) / result.seconds
                   : 0.0;
  fdiam::HistogramSnapshot snap = latency.snapshot();
  result.p50_ms = snap.quantile(0.5);
  result.p99_ms = snap.quantile(0.99);
  result.sweeps = static_cast<std::uint64_t>(
      server.registry().counter("serve.sweeps").get());
  const auto queries =
      static_cast<double>(server.registry().counter("serve.batched_queries").get());
  result.mean_occupancy =
      result.sweeps > 0 ? queries / static_cast<double>(result.sweeps) : 0.0;
  if (reload_during_load && reloads_fired == 0) {
    // The assertion below relies on at least one mid-load swap.
    std::fprintf(stderr, "warning: no reload landed during the load window\n");
  }
  server.stop();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  fdiam::Cli cli;
  cli.add_option("scale", "RMAT scale of the bench graph", "13");
  cli.add_option("degree", "RMAT average degree", "8");
  cli.add_option("concurrency", "client threads", "32");
  cli.add_option("requests", "requests per client thread", "64");
  cli.add_option("max-batch", "sources per sweep in the batched arm", "64");
  cli.add_option("min-speedup", "QPS ratio --check asserts", "4.0");
  cli.add_flag("check", "exit nonzero unless speedup and zero-loss hold");
  cli.add_flag("json", "emit one JSON result object on stdout");
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "error: %s\n%s", cli.error().c_str(),
                 cli.usage("bench_serve").c_str());
    return 2;
  }
  if (cli.help_requested()) {
    std::fprintf(stdout, "%s", cli.usage("bench_serve").c_str());
    return 0;
  }
  const int scale = static_cast<int>(cli.get_int("scale", 13));
  const double degree = cli.get_double("degree", 8.0);
  const int concurrency = static_cast<int>(cli.get_int("concurrency", 32));
  const int requests = static_cast<int>(cli.get_int("requests", 64));
  const int max_batch = static_cast<int>(cli.get_int("max-batch", 64));
  const double min_speedup = cli.get_double("min-speedup", 4.0);

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("fdiam_bench_serve_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const std::filesystem::path graph_path = dir / "bench.csrbin";
  const std::filesystem::path socket = dir / "serve.sock";

  fdiam::Csr g = fdiam::make_rmat(scale, degree, 0.57, 0.19, 0.19, 0x5eed);
  fdiam::io::write_binary(g, graph_path);
  const fdiam::vid_t n = g.num_vertices();
  std::fprintf(stderr,
               "bench_serve: rmat scale=%d n=%u m=%llu concurrency=%d "
               "requests/thread=%d\n",
               scale, n,
               static_cast<unsigned long long>(g.num_edges()), concurrency,
               requests);

  ArmResult unbatched = run_arm(socket, graph_path, /*batching=*/false,
                                max_batch, concurrency, requests, n,
                                /*reload_during_load=*/false);
  ArmResult batched = run_arm(socket, graph_path, /*batching=*/true,
                              max_batch, concurrency, requests, n,
                              /*reload_during_load=*/true);
  std::filesystem::remove_all(dir);

  const double speedup =
      unbatched.qps > 0 ? batched.qps / unbatched.qps : 0.0;
  std::fprintf(stderr,
               "  unbatched: %8.1f qps  p50 %7.2f ms  p99 %7.2f ms  "
               "(%llu sweeps)\n",
               unbatched.qps, unbatched.p50_ms, unbatched.p99_ms,
               static_cast<unsigned long long>(unbatched.sweeps));
  std::fprintf(stderr,
               "  batched:   %8.1f qps  p50 %7.2f ms  p99 %7.2f ms  "
               "(%llu sweeps, mean occupancy %.1f)\n",
               batched.qps, batched.p50_ms, batched.p99_ms,
               static_cast<unsigned long long>(batched.sweeps),
               batched.mean_occupancy);
  std::fprintf(stderr, "  speedup: %.2fx   failures: %llu + %llu\n", speedup,
               static_cast<unsigned long long>(unbatched.failures),
               static_cast<unsigned long long>(batched.failures));

  if (cli.get_bool("json", false)) {
    std::printf(
        "{\"scale\":%d,\"concurrency\":%d,\"requests\":%llu,"
        "\"unbatched_qps\":%.2f,\"batched_qps\":%.2f,\"speedup\":%.3f,"
        "\"batched_p50_ms\":%.3f,\"batched_p99_ms\":%.3f,"
        "\"mean_occupancy\":%.2f,\"failures\":%llu}\n",
        scale, concurrency,
        static_cast<unsigned long long>(batched.requests + unbatched.requests),
        unbatched.qps, batched.qps, speedup, batched.p50_ms, batched.p99_ms,
        batched.mean_occupancy,
        static_cast<unsigned long long>(batched.failures +
                                        unbatched.failures));
  }

  if (cli.get_bool("check", false)) {
    if (batched.failures + unbatched.failures != 0) {
      std::fprintf(stderr, "CHECK FAILED: %llu requests failed\n",
                   static_cast<unsigned long long>(batched.failures +
                                                   unbatched.failures));
      return 1;
    }
    if (speedup < min_speedup) {
      std::fprintf(stderr, "CHECK FAILED: speedup %.2fx < %.2fx\n", speedup,
                   min_speedup);
      return 1;
    }
    std::fprintf(stderr, "CHECK PASSED: %.2fx >= %.2fx, zero lost requests\n",
                 speedup, min_speedup);
  }
  return 0;
}
