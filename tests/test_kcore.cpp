// Tests for the k-core decomposition.

#include <gtest/gtest.h>

#include <algorithm>

#include "gen/generators.hpp"
#include "graph/kcore.hpp"

namespace fdiam {
namespace {

// Reference check: the k-core of G is the maximal subgraph with all
// degrees >= k. Verify core numbers by iterative peeling at each level.
bool core_numbers_valid(const Csr& g, const std::vector<vid_t>& core) {
  const vid_t n = g.num_vertices();
  for (vid_t k = 0;; ++k) {
    // Peel everything with degree < k; survivors must be exactly the
    // vertices with core >= k.
    std::vector<vid_t> degree(n);
    std::vector<bool> alive(n, true);
    for (vid_t v = 0; v < n; ++v) degree[v] = g.degree(v);
    bool changed = true;
    while (changed) {
      changed = false;
      for (vid_t v = 0; v < n; ++v) {
        if (alive[v] && degree[v] < k) {
          alive[v] = false;
          changed = true;
          for (const vid_t w : g.neighbors(v)) {
            if (alive[w]) --degree[w];
          }
        }
      }
    }
    bool any = false;
    for (vid_t v = 0; v < n; ++v) {
      if (alive[v] != (core[v] >= k)) return false;
      any = any || alive[v];
    }
    if (!any) return true;
  }
}

TEST(KCore, CompleteGraphIsOneCore) {
  const Csr g = make_complete(8);
  const KCoreResult r = kcore_decomposition(g);
  EXPECT_EQ(r.degeneracy, 7u);
  for (const vid_t c : r.core) EXPECT_EQ(c, 7u);
}

TEST(KCore, TreeHasDegeneracyOne) {
  const Csr g = make_balanced_tree(3, 4);
  const KCoreResult r = kcore_decomposition(g);
  EXPECT_EQ(r.degeneracy, 1u);
}

TEST(KCore, CycleIsTwoCore) {
  const KCoreResult r = kcore_decomposition(make_cycle(10));
  EXPECT_EQ(r.degeneracy, 2u);
  for (const vid_t c : r.core) EXPECT_EQ(c, 2u);
}

TEST(KCore, LollipopSeparatesCliqueFromTail) {
  const Csr g = make_lollipop(6, 10);
  const KCoreResult r = kcore_decomposition(g);
  EXPECT_EQ(r.degeneracy, 5u);
  for (vid_t v = 0; v < 6; ++v) EXPECT_EQ(r.core[v], 5u);   // clique
  for (vid_t v = 6; v < 16; ++v) EXPECT_EQ(r.core[v], 1u);  // tail
}

TEST(KCore, IsolatedVerticesAreZeroCore) {
  EdgeList e(5);
  e.add(0, 1);
  const KCoreResult r = kcore_decomposition(Csr::from_edges(std::move(e)));
  EXPECT_EQ(r.core[4], 0u);
  EXPECT_EQ(r.core[0], 1u);
}

TEST(KCore, EmptyGraph) {
  const KCoreResult r = kcore_decomposition(Csr::from_edges(EdgeList{}));
  EXPECT_EQ(r.degeneracy, 0u);
  EXPECT_TRUE(r.core.empty());
}

class KCoreRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KCoreRandom, MatchesIterativePeelingReference) {
  const Csr g = make_erdos_renyi(120, 400, GetParam());
  const KCoreResult r = kcore_decomposition(g);
  EXPECT_TRUE(core_numbers_valid(g, r.core));
}

INSTANTIATE_TEST_SUITE_P(Seeds, KCoreRandom, ::testing::Range<std::uint64_t>(0, 8));

TEST(KCore, CoreIsAtMostDegree) {
  const Csr g = make_barabasi_albert(500, 3.0, 4);
  const KCoreResult r = kcore_decomposition(g);
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    EXPECT_LE(r.core[v], g.degree(v));
  }
}

TEST(KCore, InnermostCoreIsNonEmptyAndCorrect) {
  const Csr g = make_barabasi_albert(300, 2.0, 6);
  const KCoreResult r = kcore_decomposition(g);
  const auto inner = innermost_core(g);
  ASSERT_FALSE(inner.empty());
  for (const vid_t v : inner) EXPECT_EQ(r.core[v], r.degeneracy);
}

TEST(KCore, HighDegreeVerticesSitInTheCore) {
  // The paper's §3 premise: the max-degree vertex u belongs to the dense
  // core (its core number is near the degeneracy) on power-law graphs.
  const Csr g = make_barabasi_albert(2000, 4.0, 9);
  const KCoreResult r = kcore_decomposition(g);
  EXPECT_GE(r.core[g.max_degree_vertex()] + 1u, r.degeneracy);
}

}  // namespace
}  // namespace fdiam
