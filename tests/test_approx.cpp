// Tests for the multi-sweep diameter estimator.

#include <gtest/gtest.h>

#include "baselines/baselines.hpp"
#include "core/approx.hpp"
#include "gen/generators.hpp"

namespace fdiam {
namespace {

TEST(EstimateDiameter, BoundsBracketTheTruthOnConnectedGraphs) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const Csr g = make_barabasi_albert(400, 2.0, seed);
    const dist_t truth = apsp_diameter(g).diameter;
    const DiameterEstimate est = estimate_diameter(g, 4, seed);
    EXPECT_LE(est.lower_bound, truth) << "seed " << seed;
    EXPECT_GE(est.upper_bound, truth) << "seed " << seed;
  }
}

TEST(EstimateDiameter, ExactOnTrees) {
  // Double sweep is provably exact on trees.
  const DiameterEstimate est = estimate_diameter(make_balanced_tree(2, 7), 1);
  EXPECT_EQ(est.lower_bound, 14);
}

TEST(EstimateDiameter, ExactOnPathsWithTightUpperBound) {
  const DiameterEstimate est = estimate_diameter(make_path(101), 1);
  EXPECT_EQ(est.lower_bound, 100);
  EXPECT_EQ(est.upper_bound, 100);  // midpoint ecc = 50, ub = 100
  EXPECT_TRUE(est.exact());
}

TEST(EstimateDiameter, MoreSweepsNeverWorsenTheBounds) {
  const Csr g = make_erdos_renyi(500, 1000, 3);
  const DiameterEstimate few = estimate_diameter(g, 1, 7);
  const DiameterEstimate many = estimate_diameter(g, 8, 7);
  EXPECT_GE(many.lower_bound, few.lower_bound);
  EXPECT_LE(many.upper_bound, few.upper_bound);
}

TEST(EstimateDiameter, HandlesTinyGraphs) {
  EXPECT_EQ(estimate_diameter(Csr::from_edges(EdgeList{})).lower_bound, 0);
  EdgeList one;
  one.ensure_vertices(1);
  const DiameterEstimate e1 = estimate_diameter(Csr::from_edges(std::move(one)));
  EXPECT_EQ(e1.lower_bound, 0);
  EXPECT_EQ(e1.upper_bound, 0);
}

TEST(EstimateDiameter, LowerBoundValidOnDisconnectedGraphs) {
  const Csr g = disjoint_union(make_path(30), make_cycle(10));
  const DiameterEstimate est = estimate_diameter(g, 6, 2);
  EXPECT_LE(est.lower_bound, 29);
  EXPECT_GE(est.lower_bound, 1);
}

TEST(EstimateDiameter, InitialBoundQualityMatchesPaperClaim) {
  // Paper §4.2: "our initial diameter [bound is] often very close to the
  // exact diameter". One 2-sweep from u should reach >= 80% of the truth
  // on typical graphs.
  int close = 0;
  const int trials = 10;
  for (std::uint64_t seed = 0; seed < trials; ++seed) {
    const Csr g = make_erdos_renyi(300, 700, seed + 50);
    const dist_t truth = apsp_diameter(g).diameter;
    const DiameterEstimate est = estimate_diameter(g, 1, seed);
    if (5 * est.lower_bound >= 4 * truth) ++close;
  }
  EXPECT_GE(close, trials * 7 / 10);
}

}  // namespace
}  // namespace fdiam
