// Degenerate-graph edge cases through every engine mode and reorder path.
//
// The graphs that break diameter solvers are rarely the big ones: they are
// the empty graph, the singleton, forests of isolated vertices, inputs
// whose edges all vanish in CSR canonicalization (self-loops, parallel
// edges), and multi-component unions. Each case here carries its known
// diameter/connectivity and is pushed through the full FDiamOptions
// matrix, all four reorder modes, and all four baselines. The fuzz
// harnesses (tests/fuzz/) cover the randomized closure of this list; this
// suite pins the canonical shapes with named, debuggable tests.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "baselines/baselines.hpp"
#include "bfs/bfs.hpp"
#include "core/fdiam.hpp"
#include "gen/generators.hpp"
#include "graph/edge_list.hpp"
#include "graph/reorder.hpp"
#include "util/types.hpp"

namespace fdiam {
namespace {

struct Mode {
  const char* name;
  FDiamOptions opt;
};

std::vector<Mode> all_engine_modes() {
  std::vector<Mode> modes;
  const auto add = [&modes](const char* name, auto&& tweak) {
    FDiamOptions opt;
    tweak(opt);
    modes.push_back({name, opt});
  };
  add("default", [](FDiamOptions&) {});
  add("serial", [](FDiamOptions& o) {
    o.parallel = false;
    o.direction_optimizing = false;
  });
  add("serial-dirop", [](FDiamOptions& o) { o.parallel = false; });
  add("parallel-topdown",
      [](FDiamOptions& o) { o.direction_optimizing = false; });
  add("no-winnow", [](FDiamOptions& o) { o.use_winnow = false; });
  add("no-eliminate", [](FDiamOptions& o) { o.use_eliminate = false; });
  add("no-chain", [](FDiamOptions& o) { o.use_chain = false; });
  add("no-features", [](FDiamOptions& o) {
    o.use_winnow = o.use_eliminate = o.use_chain = false;
  });
  add("vertex-zero", [](FDiamOptions& o) {
    o.start_policy = StartPolicy::kVertexZero;
  });
  add("four-sweep-center", [](FDiamOptions& o) {
    o.start_policy = StartPolicy::kFourSweepCenter;
  });
  add("random-scan", [](FDiamOptions& o) { o.randomize_scan = true; });
  add("batch4", [](FDiamOptions& o) { o.candidate_batch = 4; });
  return modes;
}

constexpr ReorderMode kReorderModes[] = {ReorderMode::kNone,
                                         ReorderMode::kDegree,
                                         ReorderMode::kBfs,
                                         ReorderMode::kRandom};

struct Case {
  std::string name;
  Csr g;
  dist_t diameter;
  bool connected;
};

std::vector<Case> edge_cases() {
  std::vector<Case> cases;
  cases.push_back({"empty", Csr{}, 0, true});
  cases.push_back({"single-vertex", Csr::from_edges(EdgeList(1)), 0, true});
  cases.push_back(
      {"five-isolated-vertices", Csr::from_edges(EdgeList(5)), 0, false});
  {
    // Self-loops are dropped by the CSR builder, but the vertices remain:
    // four isolated vertices, not an empty graph.
    EdgeList el;
    for (vid_t v = 0; v < 4; ++v) el.add(v, v);
    cases.push_back({"all-self-loops", Csr::from_edges(std::move(el)), 0,
                     false});
  }
  {
    // Parallel edges collapse to a simple path 0-1-2.
    EdgeList el;
    el.add(0, 1);
    el.add(1, 0);
    el.add(0, 1);
    el.add(1, 2);
    el.add(2, 1);
    cases.push_back({"parallel-edges", Csr::from_edges(std::move(el)), 2,
                     true});
  }
  cases.push_back({"two-components",
                   disjoint_union(make_path(4), make_cycle(5)), 3, false});
  {
    // A component plus a trailing isolated vertex — the shape that caught
    // the reordered-witness translation on empty permutations.
    EdgeList el;
    el.add(0, 1);
    el.add(1, 2);
    el.ensure_vertices(4);
    cases.push_back({"component-plus-isolated",
                     Csr::from_edges(std::move(el)), 2, false});
  }
  cases.push_back({"path-10", make_path(10), 9, true});
  cases.push_back({"star-7", make_star(7), 2, true});
  cases.push_back({"complete-5", make_complete(5), 1, true});
  cases.push_back({"two-vertex-edge", make_path(2), 1, true});
  return cases;
}

void check(const Case& c, const DiameterResult& r, const std::string& what) {
  SCOPED_TRACE(c.name + " / " + what);
  EXPECT_FALSE(r.timed_out);
  EXPECT_EQ(r.diameter, c.diameter);
  EXPECT_EQ(r.connected, c.connected);
  if (c.g.num_vertices() == 0) {
    EXPECT_EQ(r.witness, 0u);
    return;
  }
  ASSERT_LT(r.witness, c.g.num_vertices());
  // The witness must realize the reported diameter within its component.
  std::vector<dist_t> dist;
  EXPECT_EQ(bfs_distances_serial(c.g, r.witness, dist), c.diameter);
}

TEST(EdgeCases, EveryEngineModeOnEveryDegenerateGraph) {
  const auto modes = all_engine_modes();
  for (const Case& c : edge_cases()) {
    for (const Mode& m : modes) {
      check(c, fdiam_diameter(c.g, m.opt), std::string("fdiam/") + m.name);
    }
  }
}

TEST(EdgeCases, EveryReorderPathOnEveryDegenerateGraph) {
  for (const Case& c : edge_cases()) {
    for (const ReorderMode mode : kReorderModes) {
      check(c, fdiam_diameter_reordered(c.g, mode),
            std::string("reorder/") + reorder_mode_name(mode));
    }
  }
}

TEST(EdgeCases, EveryBaselineOnEveryDegenerateGraph) {
  struct Baseline {
    const char* name;
    BaselineResult (*fn)(const Csr&, BaselineOptions);
  };
  constexpr Baseline kBaselines[] = {
      {"apsp", &apsp_diameter},
      {"ifub", &ifub_diameter},
      {"graph-diameter", &graph_diameter},
      {"korf", &korf_diameter},
  };
  for (const Case& c : edge_cases()) {
    for (const auto& b : kBaselines) {
      SCOPED_TRACE(c.name + std::string(" / ") + b.name);
      const BaselineResult r = b.fn(c.g, {});
      EXPECT_FALSE(r.timed_out);
      EXPECT_EQ(r.diameter, c.diameter);
      EXPECT_EQ(r.connected, c.connected);
    }
  }
}

TEST(EdgeCases, ReorderedWitnessIsInOriginalIdSpace) {
  // On the permuted graph the diametral pair sits elsewhere; the reported
  // witness must still be valid under the ORIGINAL labeling.
  const Csr g = disjoint_union(make_path(9), make_star(3));
  for (const ReorderMode mode : kReorderModes) {
    SCOPED_TRACE(reorder_mode_name(mode));
    const DiameterResult r = fdiam_diameter_reordered(g, mode);
    ASSERT_LT(r.witness, g.num_vertices());
    std::vector<dist_t> dist;
    EXPECT_EQ(bfs_distances_serial(g, r.witness, dist), r.diameter);
    EXPECT_EQ(r.diameter, 8);
    EXPECT_FALSE(r.connected);
  }
}

}  // namespace
}  // namespace fdiam
