// Tests for the serving layer (src/serve/): MS-BFS point queries, the
// wire protocol, the reloadable graph store, the query batcher, and one
// in-process end-to-end server round trip.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <thread>
#include <vector>

#include "bfs/bfs.hpp"
#include "bfs/msbfs.hpp"
#include "gen/generators.hpp"
#include "io/io.hpp"
#include "serve/batcher.hpp"
#include "serve/client.hpp"
#include "serve/graph_store.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "obs/json.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/socket.h>
#include <unistd.h>
#define FDIAM_SERVE_TEST_POSIX 1
#endif

namespace fdiam {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------- msbfs

TEST(ServeMsbfsQueries, EccAndDistanceMatchScalarBfs) {
  const Csr g = make_erdos_renyi(300, 900, 7);
  std::vector<vid_t> sources = {0, 5, 17, 120, 299};
  std::vector<MsbfsTarget> targets;
  for (std::uint32_t s = 0; s < sources.size(); ++s) {
    targets.push_back({s, static_cast<vid_t>((s * 37 + 11) % 300)});
    targets.push_back({s, sources[s]});  // self-distance = 0
  }
  const MsbfsQueryResult r = msbfs_point_queries(g, sources, targets);
  ASSERT_EQ(r.ecc.size(), sources.size());
  ASSERT_EQ(r.dist.size(), targets.size());
  std::vector<dist_t> dist;
  for (std::uint32_t s = 0; s < sources.size(); ++s) {
    EXPECT_EQ(r.ecc[s], bfs_distances_serial(g, sources[s], dist));
    for (std::size_t j = 0; j < targets.size(); ++j) {
      if (targets[j].source != s) continue;
      EXPECT_EQ(r.dist[j], dist[targets[j].target])
          << "d(" << sources[s] << "," << targets[j].target << ")";
    }
  }
}

TEST(ServeMsbfsQueries, UnreachableTargetIsMinusOne) {
  const Csr g = disjoint_union(make_path(10), make_path(10));
  std::vector<vid_t> sources = {0};
  std::vector<MsbfsTarget> targets = {{0, 15}, {0, 9}};
  const MsbfsQueryResult r = msbfs_point_queries(g, sources, targets);
  EXPECT_EQ(r.dist[0], -1);  // other component
  EXPECT_EQ(r.dist[1], 9);
}

TEST(ServeMsbfsQueries, MoreThan64SourcesSplitAcrossSweeps) {
  const Csr g = make_barabasi_albert(500, 2.0, 9);
  std::vector<vid_t> sources(100);
  std::vector<MsbfsTarget> targets;
  for (std::uint32_t i = 0; i < 100; ++i) {
    sources[i] = static_cast<vid_t>(i * 3);
    targets.push_back({i, static_cast<vid_t>(499 - i)});
  }
  const MsbfsQueryResult r = msbfs_point_queries(g, sources, targets);
  std::vector<dist_t> dist;
  for (std::uint32_t i = 0; i < 100; i += 17) {
    EXPECT_EQ(r.ecc[i], bfs_distances_serial(g, sources[i], dist));
    EXPECT_EQ(r.dist[i], dist[499 - i]);
  }
}

TEST(ServeMsbfsQueries, BadSourceSlotThrows) {
  const Csr g = make_path(5);
  std::vector<vid_t> sources = {0};
  std::vector<MsbfsTarget> targets = {{3, 1}};  // slot 3 with 1 source
  EXPECT_THROW(msbfs_point_queries(g, sources, targets), std::out_of_range);
}

// ------------------------------------------------------------- protocol

TEST(ServeProtocol, ParsesEveryVerb) {
  std::string error;
  auto req = serve::parse_request(
      R"({"op":"distance","u":3,"v":17,"graph":"web","id":42})", error);
  ASSERT_TRUE(req.has_value()) << error;
  EXPECT_EQ(req->verb, serve::Verb::kDistance);
  EXPECT_EQ(req->u, 3u);
  EXPECT_EQ(req->v, 17u);
  EXPECT_EQ(req->graph, "web");
  EXPECT_EQ(req->id, 42u);

  req = serve::parse_request(R"({"op":"eccentricity","u":9})", error);
  ASSERT_TRUE(req.has_value()) << error;
  EXPECT_EQ(req->verb, serve::Verb::kEccentricity);
  EXPECT_TRUE(req->graph.empty());

  for (const char* op : {"ping", "diameter", "diametral_path", "stats",
                         "reload", "shutdown"}) {
    req = serve::parse_request("{\"op\":\"" + std::string(op) + "\"}", error);
    ASSERT_TRUE(req.has_value()) << op << ": " << error;
    EXPECT_EQ(serve::verb_name(req->verb), op);
  }
}

TEST(ServeProtocol, RejectsMalformedRequests) {
  std::string error;
  EXPECT_FALSE(serve::parse_request("{not json", error).has_value());
  EXPECT_FALSE(serve::parse_request("{}", error).has_value());
  EXPECT_FALSE(serve::parse_request(R"({"op":"frobnicate"})", error));
  EXPECT_FALSE(serve::parse_request(R"({"op":"distance","u":1})", error));
  EXPECT_FALSE(
      serve::parse_request(R"({"op":"eccentricity","u":-4})", error));
  EXPECT_FALSE(
      serve::parse_request(R"({"op":"eccentricity","u":1.5})", error));
  EXPECT_FALSE(
      serve::parse_request(R"({"op":"eccentricity","u":"3"})", error));
  // The error is a usable one-liner, not empty.
  EXPECT_FALSE(error.empty());
}

TEST(ServeProtocol, ErrorResponseIsValidJson) {
  const std::string r = serve::error_response(7, "bad \"thing\"\n");
  EXPECT_TRUE(obs::json_valid(r)) << r;
  EXPECT_EQ(obs::json_string(r, "error").value(), "bad \"thing\"\n");
  EXPECT_EQ(obs::json_number(r, "id").value(), 7.0);
}

#if FDIAM_SERVE_TEST_POSIX
TEST(ServeProtocol, FrameRoundTripOverSocketpair) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::string payload = R"({"op":"ping","id":1})";
  ASSERT_TRUE(serve::write_frame(fds[0], payload));
  std::string got, error;
  ASSERT_EQ(serve::read_frame(fds[1], got, error), serve::ReadStatus::kOk);
  EXPECT_EQ(got, payload);

  // Empty payload frames round-trip too.
  ASSERT_TRUE(serve::write_frame(fds[0], ""));
  ASSERT_EQ(serve::read_frame(fds[1], got, error), serve::ReadStatus::kOk);
  EXPECT_TRUE(got.empty());

  // Clean EOF is distinguished from errors.
  ::close(fds[0]);
  EXPECT_EQ(serve::read_frame(fds[1], got, error), serve::ReadStatus::kEof);
  ::close(fds[1]);
}

TEST(ServeProtocol, OversizedFrameIsRejectedFromThePrefix) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const unsigned char huge[4] = {0xff, 0xff, 0xff, 0x7f};  // ~2 GiB
  ASSERT_EQ(::write(fds[0], huge, 4), 4);
  std::string got, error;
  EXPECT_EQ(serve::read_frame(fds[1], got, error), serve::ReadStatus::kError);
  EXPECT_NE(error.find("exceeds"), std::string::npos) << error;
  ::close(fds[0]);
  ::close(fds[1]);
}
#endif  // FDIAM_SERVE_TEST_POSIX

// ----------------------------------------------------------- graph store

class ServeStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("fdiam_serve_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  fs::path write_graph(const std::string& name, const Csr& g) {
    fs::path p = dir_ / name;
    io::write_binary(g, p);
    return p;
  }
  fs::path dir_;
};

TEST_F(ServeStoreTest, LoadGetAndDefaultResolution) {
  serve::GraphStore store;
  const fs::path p = write_graph("a.csrbin", make_grid(8, 8));
  EXPECT_EQ(store.load("a", p), 1u);
  ASSERT_NE(store.get("a"), nullptr);
  EXPECT_EQ(store.get("a")->graph().num_vertices(), 64u);
  // Empty name resolves to the sole graph...
  EXPECT_EQ(store.get(""), store.get("a"));
  EXPECT_EQ(store.get("nope"), nullptr);
  // ...but becomes ambiguous once a second graph arrives.
  store.load("b", write_graph("b.csrbin", make_path(5)));
  EXPECT_EQ(store.get(""), nullptr);
}

TEST_F(ServeStoreTest, ReloadSwapsGenerationOldPinStaysValid) {
  serve::GraphStore store;
  const fs::path p = write_graph("g.csrbin", make_path(10));
  store.load("g", p);
  std::shared_ptr<const serve::ServedGraph> pin = store.get("g");
  ASSERT_NE(pin, nullptr);
  EXPECT_EQ(pin->generation(), 1u);

  // Replace the file on disk with a different graph, then reload.
  io::write_binary(make_cycle(12), p);
  EXPECT_EQ(store.reload("g"), 2u);

  // The pinned (pre-reload) generation still reads the old topology —
  // this is the in-flight-query drain guarantee.
  EXPECT_EQ(pin->graph().num_vertices(), 10u);
  EXPECT_EQ(store.get("g")->graph().num_vertices(), 12u);
  EXPECT_EQ(store.get("g")->generation(), 2u);
}

TEST_F(ServeStoreTest, FailedReloadKeepsServingOldGeneration) {
  serve::GraphStore store;
  const fs::path p = write_graph("g.csrbin", make_path(10));
  store.load("g", p);
  fs::remove(p);
  EXPECT_THROW(store.reload("g"), std::exception);
  ASSERT_NE(store.get("g"), nullptr);
  EXPECT_EQ(store.get("g")->generation(), 1u);
  EXPECT_EQ(store.get("g")->graph().num_vertices(), 10u);
  EXPECT_THROW(store.reload("unknown"), std::runtime_error);
}

TEST_F(ServeStoreTest, DiameterCachedPerGeneration) {
  serve::GraphStore store;
  const fs::path p = write_graph("g.csrbin", make_path(10));
  store.load("g", p);
  std::shared_ptr<const serve::ServedGraph> g = store.get("g");
  EXPECT_FALSE(g->diameter_cached());
  EXPECT_EQ(g->diameter().diameter, 9);
  EXPECT_TRUE(g->diameter_cached());
  EXPECT_EQ(g->diametral().path.size(), 10u);

  io::write_binary(make_cycle(12), p);
  store.reload("g");
  EXPECT_FALSE(store.get("g")->diameter_cached());
  EXPECT_EQ(store.get("g")->diameter().diameter, 6);
}

// -------------------------------------------------------------- batcher

TEST_F(ServeStoreTest, BatcherAnswersConcurrentQueriesCorrectly) {
  serve::GraphStore store;
  const Csr reference = make_erdos_renyi(400, 1200, 11);
  store.load("g", write_graph("g.csrbin", reference));
  std::shared_ptr<const serve::ServedGraph> g = store.get("g");

  obs::MetricRegistry registry;
  serve::QueryBatcher::Options opt;
  opt.registry = &registry;
  serve::QueryBatcher batcher(opt);
  batcher.start();

  constexpr int kThreads = 16;
  constexpr int kPerThread = 8;
  std::vector<std::thread> threads;
  std::atomic<int> wrong{0};
  // Precompute expectations serially; worker threads only compare.
  std::vector<dist_t> expected_ecc(kThreads);
  std::vector<std::vector<dist_t>> dist_fields(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    expected_ecc[t] = bfs_distances_serial(
        reference, static_cast<vid_t>(t * 7), dist_fields[t]);
  }
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        serve::PointQuery q;
        q.graph = g;
        q.u = static_cast<vid_t>(t * 7);
        if (i % 2 == 0) {
          q.kind = serve::PointQuery::Kind::kEccentricity;
          batcher.submit(q);
          if (q.failed || q.value != expected_ecc[t]) wrong.fetch_add(1);
        } else {
          q.kind = serve::PointQuery::Kind::kDistance;
          q.v = static_cast<vid_t>((t * 31 + i) % 400);
          batcher.submit(q);
          if (q.failed || q.value != dist_fields[t][q.v]) wrong.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  batcher.stop();
  EXPECT_EQ(wrong.load(), 0);
  // Every query went through a sweep, and occupancy was recorded.
  EXPECT_GE(registry.counter("serve.batched_queries").get(),
            kThreads * kPerThread);
  EXPECT_GE(registry.histogram("serve.batch.occupancy").count(), 1u);
}

TEST_F(ServeStoreTest, BatcherSubmitAfterStopFailsCleanly) {
  serve::QueryBatcher batcher(serve::QueryBatcher::Options{});
  batcher.start();
  batcher.stop();
  serve::PointQuery q;
  batcher.submit(q);
  EXPECT_TRUE(q.failed);
  EXPECT_TRUE(q.done);
}

// ---------------------------------------------------------- end to end

#if FDIAM_SERVE_TEST_POSIX
TEST_F(ServeStoreTest, ServerEndToEndRoundTrip) {
  const Csr reference = make_grid(12, 12);  // diameter 22
  const fs::path graph_path = write_graph("g.csrbin", reference);
  serve::ServerOptions opt;
  opt.socket_path = dir_ / "srv.sock";
  opt.metrics_out = dir_ / "srv.om.txt";
  serve::Server server(opt);
  server.add_graph("grid", graph_path);
  server.start();

  serve::Client client;
  ASSERT_TRUE(client.connect(opt.socket_path.string())) << client.error();
  std::string r = client.ping();
  EXPECT_EQ(obs::json_string(r, "result").value_or(""), "pong") << r;

  r = client.diameter("grid");
  EXPECT_EQ(obs::json_number(r, "diameter").value_or(-1), 22.0) << r;

  r = client.eccentricity(0, "grid");
  EXPECT_EQ(obs::json_number(r, "eccentricity").value_or(-1), 22.0) << r;

  r = client.distance(0, 143, "grid");
  EXPECT_EQ(obs::json_number(r, "distance").value_or(-1), 22.0) << r;

  r = client.diametral_path("grid");
  EXPECT_TRUE(obs::json_lookup(r, "path").has_value()) << r;

  // Unknown graph and out-of-range vertex fail the request only.
  r = client.diameter("nope");
  EXPECT_EQ(obs::json_lookup(r, "ok").value_or(""), "false") << r;
  r = client.eccentricity(100000, "grid");
  EXPECT_EQ(obs::json_lookup(r, "ok").value_or(""), "false") << r;

  // Malformed payload gets an error response on a live connection.
  std::string response;
  ASSERT_TRUE(client.call("{broken", response));
  EXPECT_EQ(obs::json_lookup(response, "ok").value_or(""), "false");

  r = client.reload("grid");
  EXPECT_EQ(obs::json_lookup(r, "ok").value_or(""), "true") << r;
  r = client.distance(0, 1, "grid");
  EXPECT_EQ(obs::json_number(r, "distance").value_or(-1), 1.0) << r;
  EXPECT_EQ(obs::json_number(r, "generation").value_or(-1), 2.0) << r;

  client.close();
  server.stop();
  EXPECT_TRUE(fs::exists(opt.metrics_out));
}
#endif  // FDIAM_SERVE_TEST_POSIX

}  // namespace
}  // namespace fdiam
