// Tests for the union-find structure and its components labelling.

#include <gtest/gtest.h>

#include "gen/generators.hpp"
#include "graph/union_find.hpp"

namespace fdiam {
namespace {

TEST(UnionFind, StartsFullyDisjoint) {
  UnionFind uf(5);
  EXPECT_EQ(uf.set_count(), 5u);
  for (vid_t v = 0; v < 5; ++v) {
    EXPECT_EQ(uf.find(v), v);
    EXPECT_EQ(uf.set_size(v), 1u);
  }
}

TEST(UnionFind, UniteMergesAndCounts) {
  UnionFind uf(6);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_TRUE(uf.unite(2, 3));
  EXPECT_TRUE(uf.unite(0, 2));
  EXPECT_FALSE(uf.unite(1, 3));  // already same set
  EXPECT_EQ(uf.set_count(), 3u);
  EXPECT_EQ(uf.set_size(3), 4u);
  EXPECT_EQ(uf.find(1), uf.find(3));
  EXPECT_NE(uf.find(0), uf.find(4));
}

TEST(UnionFind, LongChainStaysFlat) {
  UnionFind uf(1000);
  for (vid_t v = 0; v + 1 < 1000; ++v) uf.unite(v, v + 1);
  EXPECT_EQ(uf.set_count(), 1u);
  EXPECT_EQ(uf.set_size(0), 1000u);
  EXPECT_EQ(uf.find(0), uf.find(999));
}

TEST(UnionFindComponents, AgreesWithBfsLabelling) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Csr g = make_erdos_renyi(200, 180, seed);  // sub-critical: many CCs
    const Components bfs = connected_components(g);
    const Components uf = connected_components_union_find(g);
    ASSERT_EQ(bfs.count(), uf.count()) << "seed " << seed;
    // Same partition (labels may be permuted): equal-label iff equal-label.
    for (vid_t v = 0; v < g.num_vertices(); ++v) {
      for (const vid_t w : g.neighbors(v)) {
        EXPECT_EQ(uf.label[v], uf.label[w]);
      }
    }
    std::vector<vid_t> bfs_sorted = bfs.size, uf_sorted = uf.size;
    std::sort(bfs_sorted.begin(), bfs_sorted.end());
    std::sort(uf_sorted.begin(), uf_sorted.end());
    EXPECT_EQ(bfs_sorted, uf_sorted);
  }
}

TEST(UnionFindComponents, IsolatedVertices) {
  EdgeList e(4);
  e.add(0, 1);
  const Components cc =
      connected_components_union_find(Csr::from_edges(std::move(e)));
  EXPECT_EQ(cc.count(), 3u);
  EXPECT_EQ(cc.size[cc.largest()], 2u);
}

}  // namespace
}  // namespace fdiam
