// Round-trip and error tests for the METIS graph format.

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "gen/generators.hpp"
#include "io/io.hpp"

namespace fdiam {
namespace {

namespace fs = std::filesystem;

class MetisTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("fdiam_metis_test_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  [[nodiscard]] fs::path file(const std::string& name) const {
    return dir_ / name;
  }
  fs::path dir_;
};

TEST_F(MetisTest, RoundTrip) {
  const Csr g = make_barabasi_albert(200, 2.0, 3);
  io::write_metis(g, file("g.metis"));
  const Csr h = io::read_metis(file("g.metis"));
  ASSERT_EQ(g.num_vertices(), h.num_vertices());
  ASSERT_EQ(g.num_arcs(), h.num_arcs());
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    const auto a = g.neighbors(v), b = h.neighbors(v);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
}

TEST_F(MetisTest, RoundTripWithIsolatedVertices) {
  EdgeList e(9);
  e.add(0, 8);
  const Csr g = Csr::from_edges(std::move(e));
  io::write_metis(g, file("iso.metis"));
  EXPECT_EQ(io::read_metis(file("iso.metis")).num_vertices(), 9u);
}

TEST_F(MetisTest, ParsesEdgeWeightFormat) {
  std::ofstream out(file("w.graph"));
  out << "% weighted\n3 2 1\n2 7 3 9\n1 7\n1 9\n";  // fmt=1: edge weights
  out.close();
  const Csr g = io::read_metis(file("w.graph"));
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(0, 2));
}

TEST_F(MetisTest, ParsesVertexWeightFormat) {
  std::ofstream out(file("vw.graph"));
  out << "2 1 10\n5 2\n7 1\n";  // fmt=10: leading vertex weight per line
  out.close();
  const Csr g = io::read_metis(file("vw.graph"));
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_TRUE(g.has_edge(0, 1));
}

TEST_F(MetisTest, RejectsOutOfRangeNeighbor) {
  std::ofstream out(file("bad.metis"));
  out << "2 1\n3\n1\n";  // neighbor 3 of 2 vertices
  out.close();
  EXPECT_THROW(io::read_metis(file("bad.metis")), std::runtime_error);
}

TEST_F(MetisTest, RejectsTruncatedFile) {
  std::ofstream out(file("short.metis"));
  out << "4 2\n2\n1\n";  // promises 4 adjacency lines, provides 2
  out.close();
  EXPECT_THROW(io::read_metis(file("short.metis")), std::runtime_error);
}

TEST_F(MetisTest, LoaderDispatchesMetisExtensions) {
  const Csr g = make_cycle(7);
  io::write_metis(g, file("c.metis"));
  io::write_metis(g, file("c.graph"));
  EXPECT_EQ(io::load_graph(file("c.metis")).num_edges(), 7u);
  EXPECT_EQ(io::load_graph(file("c.graph")).num_edges(), 7u);
}

}  // namespace
}  // namespace fdiam
