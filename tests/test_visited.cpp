// Tests for the epoch-counter visited array, including the wraparound
// reset the paper's counter trick requires.

#include <gtest/gtest.h>

#include "bfs/visited.hpp"

namespace fdiam {
namespace {

TEST(EpochVisited, FreshEpochClearsEverything) {
  EpochVisited v(8);
  v.new_epoch();
  v.visit(3);
  EXPECT_TRUE(v.is_visited(3));
  EXPECT_FALSE(v.is_visited(4));
  v.new_epoch();
  EXPECT_FALSE(v.is_visited(3));
}

TEST(EpochVisited, TryVisitClaimsOnce) {
  EpochVisited v(4);
  v.new_epoch();
  EXPECT_TRUE(v.try_visit(2));
  EXPECT_FALSE(v.try_visit(2));
  EXPECT_TRUE(v.is_visited(2));
}

TEST(EpochVisited, WraparoundResetsCells) {
  EpochVisited v(4);
  v.new_epoch();
  v.visit(1);  // cell[1] = 1
  v.force_epoch_for_testing(UINT32_MAX);
  v.visit(2);  // cell[2] = UINT32_MAX
  v.new_epoch();  // wraps: full reset, epoch restarts at 1
  EXPECT_EQ(v.epoch(), 1u);
  // Cell 1 holds the stale value 1 == epoch 1 — the wraparound reset must
  // have cleared it or this would be a false positive.
  EXPECT_FALSE(v.is_visited(1));
  EXPECT_FALSE(v.is_visited(2));
  v.visit(0);
  EXPECT_TRUE(v.is_visited(0));
}

TEST(EpochVisited, ResizeResets) {
  EpochVisited v(2);
  v.new_epoch();
  v.visit(0);
  v.resize(5);
  EXPECT_EQ(v.size(), 5u);
  v.new_epoch();
  EXPECT_FALSE(v.is_visited(0));
}

}  // namespace
}  // namespace fdiam
