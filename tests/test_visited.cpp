// Tests for the epoch-counter visited array, including the wraparound
// reset the paper's counter trick requires and the concurrent atomic_ref
// claim protocol (std::thread so the TSan preset sees the synchronization;
// GCC libgomp's barriers are invisible to TSan).

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "bfs/visited.hpp"

namespace fdiam {
namespace {

TEST(EpochVisited, FreshEpochClearsEverything) {
  EpochVisited v(8);
  v.new_epoch();
  v.visit(3);
  EXPECT_TRUE(v.is_visited(3));
  EXPECT_FALSE(v.is_visited(4));
  v.new_epoch();
  EXPECT_FALSE(v.is_visited(3));
}

TEST(EpochVisited, TryVisitClaimsOnce) {
  EpochVisited v(4);
  v.new_epoch();
  EXPECT_TRUE(v.try_visit(2));
  EXPECT_FALSE(v.try_visit(2));
  EXPECT_TRUE(v.is_visited(2));
}

TEST(EpochVisited, WraparoundResetsCells) {
  EpochVisited v(4);
  v.new_epoch();
  v.visit(1);  // cell[1] = 1
  v.force_epoch_for_testing(UINT32_MAX);
  v.visit(2);  // cell[2] = UINT32_MAX
  v.new_epoch();  // wraps: full reset, epoch restarts at 1
  EXPECT_EQ(v.epoch(), 1u);
  // Cell 1 holds the stale value 1 == epoch 1 — the wraparound reset must
  // have cleared it or this would be a false positive.
  EXPECT_FALSE(v.is_visited(1));
  EXPECT_FALSE(v.is_visited(2));
  v.visit(0);
  EXPECT_TRUE(v.is_visited(0));
}

TEST(EpochVisited, ConcurrentTryVisitClaimsEachVertexExactlyOnce) {
  constexpr vid_t kN = 50000;
  constexpr int kThreads = 8;
  EpochVisited v(kN);
  v.new_epoch();
  std::vector<std::atomic<int>> claims(kN);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    // Every thread races for every vertex; exactly one claim may succeed.
    threads.emplace_back([&] {
      for (vid_t w = 0; w < kN; ++w) {
        if (v.try_visit(w)) claims[w].fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& th : threads) th.join();
  for (vid_t w = 0; w < kN; ++w) {
    ASSERT_EQ(claims[w].load(), 1) << "vertex " << w;
    ASSERT_TRUE(v.is_visited(w));
  }
}

TEST(EpochVisited, ResizeResets) {
  EpochVisited v(2);
  v.new_epoch();
  v.visit(0);
  v.resize(5);
  EXPECT_EQ(v.size(), 5u);
  v.new_epoch();
  EXPECT_FALSE(v.is_visited(0));
}

}  // namespace
}  // namespace fdiam
