// Tests for the structured JSON-lines logger, the crash flight recorder,
// and the solver-event -> logger/ring bridge (obs/log/).

#include <gtest/gtest.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/fdiam.hpp"
#include "gen/generators.hpp"
#include "obs/json.hpp"
#include "obs/log/flight.hpp"
#include "obs/log/log.hpp"
#include "obs/log/log_sink.hpp"

namespace fdiam {
namespace {

using obs::FlightRecorder;
using obs::Logger;
using obs::LogLevel;

/// Everything written to a tmpfile-backed stream so far.
std::string slurp(std::FILE* f) {
  std::fflush(f);
  std::rewind(f);
  std::string out;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  return out;
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::size_t end = eol == std::string::npos ? text.size() : eol;
    if (end > pos) lines.push_back(text.substr(pos, end - pos));
    pos = end + 1;
  }
  return lines;
}

TEST(LoggerTest, LevelNamesRoundTrip) {
  for (const LogLevel l : {LogLevel::kTrace, LogLevel::kDebug, LogLevel::kInfo,
                           LogLevel::kWarn, LogLevel::kError, LogLevel::kOff}) {
    const auto parsed = obs::log_level_from_name(obs::log_level_name(l));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, l);
  }
  EXPECT_EQ(obs::log_level_from_name("INFO"), LogLevel::kInfo);  // any case
  EXPECT_FALSE(obs::log_level_from_name("loud").has_value());
  EXPECT_FALSE(obs::log_level_from_name("").has_value());
}

TEST(LoggerTest, LevelThresholdFiltersRecords) {
  Logger lg;
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  lg.set_output(f);

  // Default is off: nothing passes, not even errors.
  EXPECT_FALSE(lg.enabled(LogLevel::kError));
  lg.log(LogLevel::kError, "test", "dropped");
  EXPECT_EQ(lg.records(), 0u);

  lg.set_level(LogLevel::kWarn);
  EXPECT_FALSE(lg.enabled(LogLevel::kInfo));
  EXPECT_TRUE(lg.enabled(LogLevel::kWarn));
  EXPECT_TRUE(lg.enabled(LogLevel::kError));
  EXPECT_FALSE(lg.enabled(LogLevel::kOff));  // never a record level
  lg.log(LogLevel::kInfo, "test", "filtered");
  lg.log(LogLevel::kWarn, "test", "kept");
  EXPECT_EQ(lg.records(), 1u);

  const auto lines = lines_of(slurp(f));
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"msg\":\"kept\""), std::string::npos);
  lg.set_output(nullptr);
  std::fclose(f);
}

TEST(LoggerTest, RecordsAreOneValidJsonObjectPerLine) {
  Logger lg;
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  lg.set_output(f);
  lg.set_level(LogLevel::kTrace);

  lg.log(LogLevel::kInfo, "solver", "bound raised",
         {{"old", -1}, {"new", std::uint64_t{42}}, {"ratio", 0.5},
          {"final", false}, {"witness", "v17"}});
  lg.log(LogLevel::kDebug, "io", "weird payload",
         {{"text", "quote\" backslash\\ newline\n tab\t"}});
  lg.log(LogLevel::kError, "cli", "nan stays json", {{"x", 0.0 / 0.0}});

  const auto lines = lines_of(slurp(f));
  ASSERT_EQ(lines.size(), 3u);
  for (const std::string& line : lines) {
    EXPECT_EQ(obs::json_diagnose(line), std::nullopt) << line;
  }
  EXPECT_NE(lines[0].find("\"level\":\"info\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"sub\":\"solver\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"old\":-1"), std::string::npos);
  EXPECT_NE(lines[0].find("\"new\":42"), std::string::npos);
  EXPECT_NE(lines[0].find("\"final\":false"), std::string::npos);
  EXPECT_NE(lines[0].find("\"ts\":\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"mono_s\":"), std::string::npos);
  EXPECT_NE(lines[1].find("\\\""), std::string::npos);   // escaped quote
  EXPECT_NE(lines[2].find("\"x\":null"), std::string::npos);  // NaN -> null
  lg.set_output(nullptr);
  std::fclose(f);
}

TEST(LoggerTest, ConcurrentRecordsNeverInterleaveMidLine) {
  Logger lg;
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  lg.set_output(f);
  lg.set_level(LogLevel::kInfo);

  constexpr int kThreads = 8;
  constexpr int kRecords = 200;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&lg, t] {
      // Per-thread payload lengths differ so a torn line would almost
      // surely fail JSON validation below.
      const std::string payload(17 + 13 * static_cast<std::size_t>(t), 'x');
      for (int r = 0; r < kRecords; ++r) {
        lg.log(LogLevel::kInfo, "worker", payload, {{"t", t}, {"r", r}});
      }
    });
  }
  for (std::thread& w : workers) w.join();

  const auto lines = lines_of(slurp(f));
  ASSERT_EQ(lines.size(),
            static_cast<std::size_t>(kThreads) * kRecords);
  EXPECT_EQ(lg.records(), static_cast<std::uint64_t>(kThreads) * kRecords);
  for (const std::string& line : lines) {
    ASSERT_EQ(obs::json_diagnose(line), std::nullopt) << line;
  }
  lg.set_output(nullptr);
  std::fclose(f);
}

TEST(LoggerTest, OpenOutputFailureLeavesLoggerUsable) {
  Logger lg;
  EXPECT_FALSE(lg.open_output("/nonexistent-dir/fdiam-test.log"));
  EXPECT_TRUE(lg.ok());
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  lg.set_output(f);
  lg.set_level(LogLevel::kInfo);
  lg.log(LogLevel::kInfo, "test", "still alive");
  EXPECT_EQ(lg.records(), 1u);
  EXPECT_TRUE(lg.ok());
  lg.set_output(nullptr);
  std::fclose(f);
}

#ifdef __linux__
TEST(LoggerTest, WriteFailureIsStickyUntilOutputSwitch) {
  // /dev/full: writes succeed into the stdio buffer, the flush fails
  // with ENOSPC — exactly the failure mode ok() exists to surface.
  std::FILE* full = std::fopen("/dev/full", "w");
  if (full == nullptr) GTEST_SKIP() << "/dev/full unavailable";
  Logger lg;
  lg.set_output(full);
  lg.set_level(LogLevel::kInfo);
  lg.log(LogLevel::kInfo, "test", "doomed record");
  lg.flush();
  EXPECT_FALSE(lg.ok());
  lg.flush();
  EXPECT_FALSE(lg.ok());  // sticky
  lg.set_output(nullptr);  // switching the stream clears the flag
  EXPECT_TRUE(lg.ok());
  std::fclose(full);
}
#endif

TEST(FlightRecorderTest, DumpCarriesContextAndEventsInOrder) {
  FlightRecorder fr;
  fr.set_stage(UtilStage::kEcc);
  fr.set_bounds(4);
  fr.record(FlightRecorder::EventKind::kSpanBegin, LogLevel::kInfo, "first",
            7);
  fr.record(FlightRecorder::EventKind::kBound, LogLevel::kInfo, "raise", 4,
            6);
  fr.record(FlightRecorder::EventKind::kHeartbeat, LogLevel::kInfo, "beat",
            12, 6);
  EXPECT_EQ(fr.recorded(), 3u);

  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  fr.dump(fileno(f), SIGSEGV);
  const std::string text = slurp(f);
  std::fclose(f);

  // The crash-context header is one line so a death-test regex can match
  // it; bound_upper stays "?" until the solver proves optimality.
  EXPECT_NE(text.find("crash: signal=11 stage=ecc bound_lower=4 "
                      "bound_upper=? events=3"),
            std::string::npos)
      << text;
  const std::size_t p_first = text.find("span_begin/info tid=");
  const std::size_t p_raise = text.find("bound/info");
  const std::size_t p_beat = text.find("heartbeat/info");
  ASSERT_NE(p_first, std::string::npos) << text;
  ASSERT_NE(p_raise, std::string::npos);
  ASSERT_NE(p_beat, std::string::npos);
  EXPECT_LT(p_first, p_raise);
  EXPECT_LT(p_raise, p_beat);
  EXPECT_NE(text.find("raise a=4 b=6"), std::string::npos) << text;
}

TEST(FlightRecorderTest, RingWrapsKeepingTheNewestEvents) {
  FlightRecorder fr;
  const std::size_t total = FlightRecorder::kSlots + 50;
  for (std::size_t i = 0; i < total; ++i) {
    fr.record(FlightRecorder::EventKind::kLog, LogLevel::kDebug,
              "ev" + std::to_string(i));
  }
  EXPECT_EQ(fr.recorded(), total);

  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  fr.dump(fileno(f));
  const std::string text = slurp(f);
  std::fclose(f);

  // Events 0..49 were overwritten; 50..total-1 survive, oldest first.
  EXPECT_EQ(text.find(" ev49\n"), std::string::npos) << text;
  const std::size_t p_oldest = text.find(" ev50\n");
  const std::size_t p_newest =
      text.find(" ev" + std::to_string(total - 1) + "\n");
  ASSERT_NE(p_oldest, std::string::npos) << text;
  ASSERT_NE(p_newest, std::string::npos);
  EXPECT_LT(p_oldest, p_newest);
  // Dump without a signal: programmatic header, unknown stage/bounds.
  EXPECT_NE(text.find("crash: signal=-1 stage=? bound_lower=? bound_upper=?"),
            std::string::npos)
      << text;
}

TEST(FlightRecorderTest, ConcurrentRecordsAllGetTickets) {
  FlightRecorder fr;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&fr, t] {
      for (int i = 0; i < kPerThread; ++i) {
        fr.record(FlightRecorder::EventKind::kLog, LogLevel::kInfo, "c",
                  t, i);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(fr.recorded(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(FlightRecorderTest, InstallReturnsThePreviousRecorder) {
  FlightRecorder a, b;
  FlightRecorder* before = FlightRecorder::install(&a);
  EXPECT_EQ(FlightRecorder::active(), &a);
  EXPECT_EQ(FlightRecorder::install(&b), &a);
  EXPECT_EQ(FlightRecorder::active(), &b);
  FlightRecorder::install(before);
}

TEST(LogSinkTest, BridgesSolverEventsToLoggerAndRing) {
  Logger lg;
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  lg.set_output(f);
  lg.set_level(LogLevel::kDebug);

  FlightRecorder fr;
  FlightRecorder* before = FlightRecorder::install(&fr);

  const Csr g = make_barabasi_albert(400, 3.0, 11);
  FDiamOptions opt;
  opt.trace = obs::make_log_trace_sink(lg);
  const DiameterResult r = fdiam_diameter(g, opt);
  FlightRecorder::install(before);

  EXPECT_GE(r.diameter, 1);
  EXPECT_GT(lg.records(), 0u);
  EXPECT_GT(fr.recorded(), 0u);

  const std::string text = slurp(f);
  std::fclose(f);
  for (const std::string& line : lines_of(text)) {
    ASSERT_EQ(obs::json_diagnose(line), std::nullopt) << line;
  }
  EXPECT_NE(text.find("\"msg\":\"solve start\""), std::string::npos);
  EXPECT_NE(text.find("\"msg\":\"initial bound\""), std::string::npos);
  EXPECT_NE(text.find("\"msg\":\"solve done\""), std::string::npos);

  // Milestones stay at info; the per-vertex firehose must not.
  lg.set_level(LogLevel::kInfo);
  const std::uint64_t info_before = lg.records();
  std::FILE* f2 = std::tmpfile();
  ASSERT_NE(f2, nullptr);
  lg.set_output(f2);
  FDiamOptions opt2;
  opt2.trace = obs::make_log_trace_sink(lg);
  fdiam_diameter(g, opt2);
  const std::string info_text = slurp(f2);
  lg.set_output(nullptr);
  std::fclose(f2);
  EXPECT_GT(lg.records(), info_before);
  EXPECT_EQ(info_text.find("\"level\":\"debug\""), std::string::npos);
}

TEST(CrashDumpDeathTest, FatalSignalDumpsStageAndBounds) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const Csr g = make_path(200);
  // Crash mid-solve from the winnow milestone: by then the solver has
  // published both a stage and an initial lower bound to the recorder,
  // and the single-line crash context must carry them to stderr.
  EXPECT_DEATH(
      {
        obs::FlightRecorder fr;
        obs::FlightRecorder::install(&fr);
        obs::FlightRecorder::install_crash_handlers();
        FDiamOptions opt;
        opt.trace = [](const FDiamEvent& e) {
          if (e.kind == FDiamEvent::Kind::kWinnow) std::raise(SIGSEGV);
        };
        fdiam_diameter(g, opt);
      },
      "crash: signal=[0-9]+ stage=winnow bound_lower=[0-9]+ bound_upper=\\?");
}

}  // namespace
}  // namespace fdiam
