// Tests for the hardware perf-counter layer: HwCounters sample
// arithmetic, PerfSession graceful degradation (these tests must pass
// identically on machines with a PMU, without one, and with
// perf_event_paranoid locked down), memory watermarks, and the
// hardware/memory blocks of the run report.

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "core/fdiam.hpp"
#include "gen/generators.hpp"
#include "graph/stats.hpp"
#include "obs/json.hpp"
#include "obs/perf/hw_counters.hpp"
#include "obs/perf/perf_session.hpp"
#include "obs/report.hpp"

namespace fdiam {
namespace {

using obs::HwCounters;
using obs::HwEvent;

// --- HwCounters (pure data, no syscalls) ----------------------------------

TEST(HwCounters, DefaultIsEmpty) {
  const HwCounters hw;
  EXPECT_FALSE(hw.any());
  EXPECT_FALSE(hw.any_hardware());
  EXPECT_FALSE(hw.has(HwEvent::kCycles));
  EXPECT_EQ(hw.get(HwEvent::kCycles), 0u);
  EXPECT_FALSE(hw.ipc().has_value());
  EXPECT_FALSE(hw.cache_miss_rate().has_value());
}

TEST(HwCounters, SetGetAndAvailabilitySplit) {
  HwCounters hw;
  hw.set(HwEvent::kTaskClockNs, 1000);
  EXPECT_TRUE(hw.any());
  EXPECT_FALSE(hw.any_hardware());  // task-clock is a software event
  hw.set(HwEvent::kCycles, 5000);
  EXPECT_TRUE(hw.any_hardware());
}

TEST(HwCounters, DeltaClampsAndRespectsValidity) {
  HwCounters earlier, later;
  earlier.set(HwEvent::kCycles, 100);
  later.set(HwEvent::kCycles, 350);
  later.set(HwEvent::kInstructions, 40);  // not valid in `earlier`
  earlier.set(HwEvent::kCacheMisses, 9);  // not valid in `later`

  const HwCounters d = HwCounters::delta(later, earlier);
  EXPECT_EQ(d.get(HwEvent::kCycles), 250u);
  // An event must be valid on BOTH sides to produce a delta.
  EXPECT_FALSE(d.has(HwEvent::kInstructions));
  EXPECT_FALSE(d.has(HwEvent::kCacheMisses));

  // A counter that (impossibly) went backwards clamps to 0, not wraps.
  const HwCounters back = HwCounters::delta(earlier, later);
  EXPECT_EQ(back.get(HwEvent::kCycles), 0u);
}

TEST(HwCounters, AccumulateAddsValidEventsOnly) {
  HwCounters a, b;
  a.set(HwEvent::kCycles, 10);
  b.set(HwEvent::kCycles, 5);
  b.set(HwEvent::kPageFaults, 2);
  a += b;
  EXPECT_EQ(a.get(HwEvent::kCycles), 15u);
  EXPECT_EQ(a.get(HwEvent::kPageFaults), 2u);
  EXPECT_TRUE(a.has(HwEvent::kPageFaults));
}

TEST(HwCounters, DerivedMetricsNeedBothInputs) {
  HwCounters hw;
  hw.set(HwEvent::kInstructions, 400);
  EXPECT_FALSE(hw.ipc().has_value());  // cycles missing
  hw.set(HwEvent::kCycles, 200);
  ASSERT_TRUE(hw.ipc().has_value());
  EXPECT_DOUBLE_EQ(*hw.ipc(), 2.0);

  hw.set(HwEvent::kCacheReferences, 100);
  hw.set(HwEvent::kCacheMisses, 25);
  ASSERT_TRUE(hw.cache_miss_rate().has_value());
  EXPECT_DOUBLE_EQ(*hw.cache_miss_rate(), 0.25);

  EXPECT_FALSE(hw.per(HwEvent::kBranchMisses, 10.0).has_value());
  ASSERT_TRUE(hw.per(HwEvent::kCycles, 100.0).has_value());
  EXPECT_DOUBLE_EQ(*hw.per(HwEvent::kCycles, 100.0), 2.0);
  EXPECT_FALSE(hw.per(HwEvent::kCycles, 0.0).has_value());  // no div by 0
}

TEST(HwCounters, EventNamesAreStableJsonKeys) {
  // These names are schema: renaming one is a report-schema break.
  EXPECT_EQ(obs::hw_event_name(HwEvent::kCycles), "cycles");
  EXPECT_EQ(obs::hw_event_name(HwEvent::kInstructions), "instructions");
  EXPECT_EQ(obs::hw_event_name(HwEvent::kCacheReferences),
            "cache_references");
  EXPECT_EQ(obs::hw_event_name(HwEvent::kCacheMisses), "cache_misses");
  EXPECT_EQ(obs::hw_event_name(HwEvent::kBranchMisses), "branch_misses");
  EXPECT_EQ(obs::hw_event_name(HwEvent::kStalledCycles), "stalled_cycles");
  EXPECT_EQ(obs::hw_event_name(HwEvent::kTaskClockNs), "task_clock_ns");
  EXPECT_EQ(obs::hw_event_name(HwEvent::kPageFaults), "page_faults");
  EXPECT_EQ(obs::hw_event_name(HwEvent::kContextSwitches),
            "context_switches");
}

// --- PerfSession ----------------------------------------------------------

TEST(PerfSession, DegradesGracefullyWhateverTheKernelAllows) {
  obs::PerfSession session;
  if (!session.available()) {
    // Fully unavailable (non-Linux, seccomp, paranoid=3): the reason must
    // say why, and reads must stay harmless.
    EXPECT_FALSE(session.reason().empty());
    session.start();
    session.stop();
    EXPECT_FALSE(session.read().any());
    return;
  }
  // At least partially available: counting a busy loop must move at least
  // one counter, and every reported event must round-trip through delta.
  session.start();
  volatile std::uint64_t sink = 0;
  for (int i = 0; i < 2000000; ++i) sink += static_cast<std::uint64_t>(i);
  const HwCounters sample = session.read();
  session.stop();
  EXPECT_TRUE(sample.any());
  EXPECT_GE(session.multiplex_scale(), 1.0);
  bool some_nonzero = false;
  for (std::size_t i = 0; i < obs::kHwEventCount; ++i) {
    const auto ev = static_cast<HwEvent>(i);
    if (sample.has(ev) && sample.get(ev) > 0) some_nonzero = true;
  }
  EXPECT_TRUE(some_nonzero);
}

TEST(PerfSession, StartResetsTheCount) {
  obs::PerfSession session;
  if (!session.available()) GTEST_SKIP() << session.reason();
  session.start();
  volatile std::uint64_t sink = 0;
  for (int i = 0; i < 1000000; ++i) sink += static_cast<std::uint64_t>(i);
  session.stop();
  session.start();  // reset + enable: prior work must not carry over
  const HwCounters fresh = session.read();
  session.stop();
  if (fresh.has(HwEvent::kTaskClockNs)) {
    EXPECT_LT(fresh.get(HwEvent::kTaskClockNs), 1000000000u);  // < 1 s
  }
}

TEST(MemWatermark, ReportsPlausibleRss) {
  const obs::MemWatermark mem = obs::read_mem_watermark();
  if (!mem.available) GTEST_SKIP() << "no RSS source on this platform";
  // A running test binary occupies at least 1 MB and (sanity bound)
  // under 1 TB; the high-water mark can never undercut the current RSS.
  EXPECT_GT(mem.current_rss_bytes, 1u << 20);
  EXPECT_LT(mem.peak_rss_bytes, 1ull << 40);
  EXPECT_GE(mem.peak_rss_bytes, mem.current_rss_bytes);
}

// --- Solver integration ---------------------------------------------------

TEST(FDiamHwCounters, OffByDefaultOnByOption) {
  const Csr g = make_grid(20, 20);
  const DiameterResult off = fdiam_diameter(g, {});
  EXPECT_FALSE(off.hardware.any());

  FDiamOptions opt;
  opt.hw_counters = true;
  const DiameterResult on = fdiam_diameter(g, opt);
  EXPECT_EQ(on.diameter, off.diameter);
  // Memory watermarks have no perf_event dependency: they must be
  // available on any Linux. Counter availability is machine-dependent,
  // but either way the run must have succeeded (checked above) and the
  // reason string must be set iff something was refused.
  if (!on.hardware.any()) {
    EXPECT_FALSE(on.hw_unavailable_reason.empty());
  }
#ifdef __linux__
  EXPECT_TRUE(on.memory.available);
  EXPECT_GT(on.memory.peak_rss_bytes, 0u);
#endif
}

TEST(FDiamHwCounters, PerStageDeltasSumBelowTotal) {
  FDiamOptions opt;
  opt.hw_counters = true;
  const DiameterResult r = fdiam_diameter(make_grid(40, 40), opt);
  if (!r.hardware.has(HwEvent::kTaskClockNs)) {
    GTEST_SKIP() << "no counters on this machine";
  }
  const std::uint64_t total = r.hardware.get(HwEvent::kTaskClockNs);
  std::uint64_t stage_sum = 0;
  for (const HwCounters* stage :
       {&r.stats.hw_init, &r.stats.hw_winnow, &r.stats.hw_chain,
        &r.stats.hw_eliminate, &r.stats.hw_ecc}) {
    stage_sum += stage->get(HwEvent::kTaskClockNs);
  }
  // Stages are disjoint slices of the run, so their sum cannot exceed the
  // whole (glue work between stages makes it strictly smaller usually).
  EXPECT_LE(stage_sum, total);
  EXPECT_GT(total, 0u);
}

TEST(FDiamHwCounters, EventStreamCarriesSamplesWhenEnabled) {
  FDiamOptions opt;
  opt.hw_counters = true;
  bool saw_done_hw = false;
  opt.trace = [&](const FDiamEvent& e) {
    if (e.kind == FDiamEvent::Kind::kDone && e.hw != nullptr) {
      saw_done_hw = e.hw->any();
    }
  };
  const DiameterResult r = fdiam_diameter(make_grid(25, 25), opt);
  if (!r.hardware.any()) GTEST_SKIP() << "no counters on this machine";
  EXPECT_TRUE(saw_done_hw);
}

// --- Run report blocks ----------------------------------------------------

TEST(RunReportHardware, BlocksAlwaysPresentAndValid) {
  const Csr g = make_grid(25, 25);
  const GraphStats s = compute_stats(g);
  FDiamOptions opt;
  opt.hw_counters = true;
  const DiameterResult r = fdiam_diameter(g, opt);

  std::ostringstream os;
  obs::make_run_report("grid", s, opt, r).write_json(os);
  const std::string doc = os.str();
  ASSERT_TRUE(obs::json_valid(doc)) << doc;

  // The blocks are unconditional; their contents depend on the machine.
  ASSERT_TRUE(obs::json_lookup(doc, "hardware.available").has_value());
  ASSERT_TRUE(obs::json_lookup(doc, "memory.available").has_value());
  EXPECT_EQ(obs::json_lookup(doc, "options.hw_counters"), "true");
  if (r.hardware.any()) {
    // Every event name is a key — refused ones as null, not absent.
    for (std::size_t i = 0; i < obs::kHwEventCount; ++i) {
      const auto ev = static_cast<HwEvent>(i);
      const std::string path =
          "hardware.counters." + std::string(obs::hw_event_name(ev));
      ASSERT_TRUE(obs::json_lookup(doc, path).has_value()) << path;
      EXPECT_EQ(obs::json_lookup(doc, path) == "null", !r.hardware.has(ev));
    }
    EXPECT_TRUE(obs::json_lookup(doc, "hardware.per_stage.ecc").has_value());
    EXPECT_TRUE(obs::json_lookup(doc, "hardware.derived.ipc").has_value());
  } else {
    EXPECT_EQ(obs::json_lookup(doc, "hardware.available"), "false");
    EXPECT_TRUE(obs::json_string(doc, "hardware.reason").has_value());
  }
  if (r.memory.available) {
    EXPECT_GT(obs::json_number(doc, "memory.peak_rss_bytes").value_or(0), 0);
  }
}

TEST(RunReportHardware, UncollectedRunSaysUnavailable) {
  const Csr g = make_grid(10, 10);
  const GraphStats s = compute_stats(g);
  const FDiamOptions opt;  // hw_counters off
  const DiameterResult r = fdiam_diameter(g, opt);
  std::ostringstream os;
  obs::make_run_report("grid", s, opt, r).write_json(os);
  ASSERT_TRUE(obs::json_valid(os.str()));
  EXPECT_EQ(obs::json_lookup(os.str(), "hardware.available"), "false");
  EXPECT_EQ(obs::json_lookup(os.str(), "options.hw_counters"), "false");
}

// --- Env provenance -------------------------------------------------------

TEST(EnvProvenance, CapturesBuildAndMachineIdentity) {
  const obs::EnvInfo env = obs::capture_env();
  EXPECT_FALSE(env.compiler_id.empty());
  EXPECT_FALSE(env.git_sha.empty());
  EXPECT_FALSE(env.cpu_model.empty());
#if defined(__GNUC__) && !defined(__clang__)
  EXPECT_EQ(env.compiler_id, "gcc");
#endif
  // Tarball builds legitimately record "unknown"; a captured SHA must be
  // plain lowercase hex (it is spliced into file names downstream).
  if (env.git_sha != "unknown") {
    EXPECT_GE(env.git_sha.size(), 7u);
    for (const char ch : env.git_sha) {
      EXPECT_TRUE((ch >= '0' && ch <= '9') || (ch >= 'a' && ch <= 'f'))
          << env.git_sha;
    }
  }

  std::ostringstream os;
  obs::JsonWriter w(os);
  w.begin_object();
  obs::write_env_fields(w, env);
  w.end_object();
  ASSERT_TRUE(obs::json_valid(os.str())) << os.str();
  EXPECT_EQ(obs::json_string(os.str(), "env.git_sha"), env.git_sha);
  EXPECT_EQ(obs::json_string(os.str(), "env.cpu_model"), env.cpu_model);
  EXPECT_EQ(obs::json_string(os.str(), "env.compiler_id"), env.compiler_id);
}

}  // namespace
}  // namespace fdiam
