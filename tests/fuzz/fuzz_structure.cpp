// Graph-structure fuzzing (tentpole harness (b)).
//
// The byte stream is decoded as a tiny graph-building program — edges,
// self-loops, duplicates, component breaks, isolated blocks, path / star /
// cycle bursts — so random bytes systematically produce the degenerate
// shapes that break diameter solvers: empty graphs, singletons, forests
// of isolated vertices, many components, multigraph input to the CSR
// builder. The first byte picks which engine + reorder combination to
// run; the result is checked against the serial-BFS oracle.

#include <cstddef>
#include <stdexcept>
#include <string>

#include "fuzz_harness.hpp"
#include "fuzz_rng.hpp"
#include "graph/edge_list.hpp"

namespace fdiam::fuzz {

namespace {

// Bounds keep a worst-case program (every byte grows the graph) cheap
// enough for the per-input oracle (one BFS per vertex).
constexpr vid_t kMaxProgramVertices = 512;
constexpr std::size_t kMaxProgramEdges = 4096;

/// Decode `data[1..]` into an edge list. Never throws: every byte
/// sequence is a valid program (libFuzzer requirement — the interesting
/// crashes must come from the library, not the decoder).
Csr decode_graph(const std::uint8_t* data, std::size_t size) {
  EdgeList el;
  vid_t base = 0;   // current component's first vertex id
  vid_t span = 8;   // current component's width; ids are base + x % span
  vid_t last_u = 0, last_v = 0;
  const auto full = [&el] {
    return el.num_vertices() >= kMaxProgramVertices ||
           el.size() >= kMaxProgramEdges;
  };
  const auto vertex = [&](std::uint8_t raw) {
    return static_cast<vid_t>(base + raw % span);
  };
  std::size_t i = 1;  // data[0] is the mode selector
  while (i < size && !full()) {
    const std::uint8_t op = data[i];
    const std::uint8_t a1 = i + 1 < size ? data[i + 1] : 0;
    const std::uint8_t a2 = i + 2 < size ? data[i + 2] : 0;
    switch (op % 8) {
      case 0: {  // plain edge
        last_u = vertex(a1);
        last_v = vertex(a2);
        el.add(last_u, last_v);
        i += 3;
        break;
      }
      case 1: {  // self-loop (the CSR builder must drop it)
        const vid_t v = vertex(a1);
        el.add(v, v);
        i += 2;
        break;
      }
      case 2: {  // duplicate the previous edge (parallel edge)
        el.add(last_u, last_v);
        i += 1;
        break;
      }
      case 3: {  // component break, optionally leaving an isolated gap
        base = el.num_vertices() + static_cast<vid_t>(a1 % 4);
        span = static_cast<vid_t>(1 + a2 % 16);
        i += 3;
        break;
      }
      case 4: {  // block of isolated vertices
        el.ensure_vertices(el.num_vertices() +
                           static_cast<vid_t>(1 + a1 % 8));
        i += 2;
        break;
      }
      case 5: {  // chain burst
        const vid_t start = vertex(a1);
        const vid_t len = static_cast<vid_t>(1 + a2 % 12);
        for (vid_t s = 0; s < len && !full(); ++s) {
          el.add(start + s, start + s + 1);
        }
        i += 3;
        break;
      }
      case 6: {  // star burst
        const vid_t center = vertex(a1);
        const vid_t leaves = static_cast<vid_t>(1 + a2 % 12);
        const vid_t first_leaf = el.num_vertices();
        for (vid_t s = 0; s < leaves && !full(); ++s) {
          el.add(center, first_leaf + s);
        }
        i += 3;
        break;
      }
      default: {  // cycle burst
        const vid_t start = vertex(a1);
        const vid_t len = static_cast<vid_t>(3 + a2 % 10);
        for (vid_t s = 0; s + 1 < len && !full(); ++s) {
          el.add(start + s, start + s + 1);
        }
        el.add(start + len - 1, start);
        i += 3;
        break;
      }
    }
  }
  return Csr::from_edges(std::move(el));
}

std::string hex_prefix(const std::uint8_t* data, std::size_t size,
                       std::size_t limit = 96) {
  static const char* hex = "0123456789abcdef";
  std::string out;
  for (std::size_t i = 0; i < size && i < limit; ++i) {
    out += hex[data[i] >> 4];
    out += hex[data[i] & 15];
  }
  if (size > limit) out += "...";
  return out;
}

}  // namespace

void check_structure_bytes(const std::uint8_t* data, std::size_t size) {
  const int mode_index = size == 0 ? 0 : data[0];
  const Csr g = decode_graph(data, size);
  check_graph_against_oracle(
      g,
      "structure input=" + hex_prefix(data, size) + " (n=" +
          std::to_string(g.num_vertices()) + ", m=" +
          std::to_string(g.num_edges()) + ")",
      mode_index);
}

void run_structure_campaign(std::uint64_t seed, int iterations) {
  Rng rng(seed);
  for (int iter = 0; iter < iterations; ++iter) {
    std::string program;
    const std::uint64_t len = rng.below(120);
    program.reserve(len);
    for (std::uint64_t i = 0; i < len; ++i) {
      program.push_back(static_cast<char>(rng.below(256)));
    }
    try {
      check_structure_bytes(
          reinterpret_cast<const std::uint8_t*>(program.data()),
          program.size());
    } catch (const std::exception& e) {
      throw std::logic_error("structure campaign seed=" +
                             std::to_string(seed) + " iter=" +
                             std::to_string(iter) + ": " + e.what());
    }
  }
}

}  // namespace fdiam::fuzz
