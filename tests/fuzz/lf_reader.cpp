// libFuzzer entry for one src/io reader; the format is chosen at compile
// time (FDIAM_LF_FORMAT, one executable per format — see the FDIAM_FUZZ
// section of tests/fuzz/CMakeLists.txt). Clang only: GCC has no libFuzzer
// runtime, so plain builds run the seeded campaigns in smoke_main.cpp
// instead. An uncaught exception (the harness's finding signal) aborts,
// which libFuzzer reports with a reproducer file.

#include <cstddef>
#include <cstdint>

#include "fuzz_harness.hpp"

#ifndef FDIAM_LF_FORMAT
#define FDIAM_LF_FORMAT kDimacs
#endif

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  fdiam::fuzz::check_reader_bytes(fdiam::fuzz::Format::FDIAM_LF_FORMAT, data,
                                  size);
  return 0;
}
