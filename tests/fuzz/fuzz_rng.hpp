#pragma once
// Tiny deterministic PRNG for the fuzz harnesses (splitmix64). Not
// std::mt19937 because the harness contract is "same seed, same campaign,
// forever" across standard libraries and platforms — reproducer seeds in
// bug reports must replay bit-identically.

#include <cstdint>

namespace fdiam::fuzz {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed ^ 0x9e3779b97f4a7c15ULL) {}

  std::uint64_t u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, n); 0 when n == 0.
  std::uint64_t below(std::uint64_t n) { return n == 0 ? 0 : u64() % n; }

  /// True with probability ~p.
  bool chance(double p) {
    return static_cast<double>(u64() >> 11) * 0x1.0p-53 < p;
  }

 private:
  std::uint64_t state_;
};

}  // namespace fdiam::fuzz
