// Mutational fuzzing of the src/io/ readers (tentpole harness (a)).
//
// Contract under test — the io.hpp validation guarantee: arbitrary bytes
// fed to any reader either produce a structurally valid Csr within the
// requested IoLimits or throw std::runtime_error. A crash, a hang, any
// other exception type, an invalid graph, or a graph that ignores the
// limits is a bug in src/io/.

#include <cctype>
#include <cstring>
#include <iterator>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "fuzz_harness.hpp"
#include "fuzz_rng.hpp"
#include "gen/generators.hpp"
#include "io/io.hpp"

namespace fdiam::fuzz {

namespace {

// Tight ceilings so a mutated header declaring 2^60 vertices throws
// instead of exhausting memory — fuzzing must be safe to run unattended.
constexpr std::uint64_t kFuzzMaxVertices = std::uint64_t{1} << 12;
constexpr std::uint64_t kFuzzMaxEdges = std::uint64_t{1} << 16;

io::IoLimits fuzz_limits() { return {kFuzzMaxVertices, kFuzzMaxEdges}; }

using Reader = Csr (*)(std::istream&, const std::string&, io::IoLimits);

Reader reader_for(Format format) {
  using Fn = Reader;
  switch (format) {
    case Format::kDimacs:
      return static_cast<Fn>(&io::read_dimacs);
    case Format::kSnap:
      return static_cast<Fn>(&io::read_snap);
    case Format::kMatrixMarket:
      return static_cast<Fn>(&io::read_matrix_market);
    case Format::kMetis:
      return static_cast<Fn>(&io::read_metis);
    case Format::kCsrBin:
      return static_cast<Fn>(&io::read_binary);
  }
  return static_cast<Fn>(&io::read_dimacs);  // unreachable
}

/// Serialize a Csr into the .csrbin wire format in memory (the writer in
/// binary.cpp is path-based; the corpus wants bytes). Emits either the
/// legacy packed v1 layout or the aligned v2 layout with its endianness
/// marker and section table — both versions stay fuzzed forever.
std::string binary_bytes(const Csr& g, std::uint32_t version) {
  std::string out;
  const auto put = [&out](const void* p, std::size_t bytes) {
    out.append(static_cast<const char*>(p), bytes);
  };
  put("FDIAMCSR", 8);
  const std::uint64_t n = g.num_vertices();
  const std::uint64_t arcs = g.num_arcs();
  put(&version, sizeof version);
  if (version == io::csrbin::kVersionLegacy) {
    put(&n, sizeof n);
    put(&arcs, sizeof arcs);
  } else {
    put(&io::csrbin::kEndianMark, sizeof io::csrbin::kEndianMark);
    put(&n, sizeof n);
    put(&arcs, sizeof arcs);
    const std::uint64_t offsets_off = io::csrbin::kHeaderBytes;
    const std::uint64_t neighbors_off =
        io::csrbin::align_up(offsets_off + (n + 1) * sizeof(eid_t));
    put(&offsets_off, sizeof offsets_off);
    put(&neighbors_off, sizeof neighbors_off);
    out.append(io::csrbin::kHeaderBytes - out.size(), '\0');  // reserved
  }
  static constexpr eid_t kZeroOffset = 0;
  if (g.offsets().empty()) {
    put(&kZeroOffset, sizeof kZeroOffset);
  } else {
    put(g.offsets().data(), g.offsets().size() * sizeof(eid_t));
  }
  if (version != io::csrbin::kVersionLegacy) {
    const std::uint64_t payload =
        out.size() - io::csrbin::kHeaderBytes;  // offsets written so far
    out.append(io::csrbin::align_up(payload) - payload, '\0');  // pad
  }
  put(g.raw_neighbors().data(), g.raw_neighbors().size() * sizeof(vid_t));
  return out;
}

/// Valid + edge-case seed documents per format. Every document in a
/// format's own corpus must PARSE cleanly — the campaign checks that
/// before mutating, so a reader that rots into rejecting good files
/// fails the smoke run too.
std::vector<std::string> corpus_for(Format format) {
  switch (format) {
    case Format::kDimacs:
      return {
          "c tiny path\np sp 4 3\na 1 2 1\na 2 3 1\na 3 4 1\n",
          "p sp 0 0\n",
          "p sp 1 0\n",
          "c self loop and duplicate arcs\n"
          "p sp 3 4\na 1 1 5\na 1 2 1\na 2 1 7\na 2 3 1\n",
          "c isolated vertex 5\np sp 5 2\na 1 2 1\na 3 4 1\n",
      };
    case Format::kSnap:
      return {
          "# Directed graph (each unordered pair once)\n# Nodes: 3 Edges: "
          "3\n0 1\n1 2\n2 0\n",
          "",
          "# only comments\n# nothing else\n",
          "0 0\n",
          "# extra columns are tolerated\n0 1 1462312310 0.5\n1 2 1462312311 "
          "0.25\n",
          "5 7\n\n7 9\n",
      };
    case Format::kMatrixMarket:
      return {
          "%%MatrixMarket matrix coordinate pattern symmetric\n"
          "% comment\n3 3 2\n1 2\n2 3\n",
          "%%MatrixMarket matrix coordinate real general\n"
          "4 4 3\n1 2 1.5\n2 3 -2.0\n3 4 1e-3\n",
          "%%MatrixMarket matrix coordinate integer symmetric\n1 1 0\n",
          "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n\n1 2\n",
      };
    case Format::kMetis:
      return {
          "% path on three vertices\n3 2\n2\n1 3\n2\n",
          "0 0\n",
          "1 0\n\n",
          "% fmt=011: vertex + edge weights\n3 2 11 2\n7 8 2 4\n3 3 1 9 3 "
          "2\n1 1 2 2\n",
      };
    case Format::kCsrBin: {
      std::vector<std::string> docs;
      for (const std::uint32_t v :
           {io::csrbin::kVersionLegacy, io::csrbin::kVersion}) {
        docs.push_back(binary_bytes(make_path(5), v));
        docs.push_back(binary_bytes(make_star(4), v));
        docs.push_back(binary_bytes(Csr{}, v));  // empty graph round-trip
      }
      return docs;
    }
  }
  return {};
}

const char* const kNastyTokens[] = {
    "4294967294",  "4294967295",           "4294967296",
    "18446744073709551615",                "18446744073709551616",
    "-1",          "-99999999999999999999", "0",
    "1e9",         "3.14",                 "0x10",
    "+7",          "nan",                  "999999999999999999999999999",
};

/// One random structure-aware-ish mutation. Operates on raw bytes; the
/// token replacement is what drives the overflow / sign / float paths.
void mutate(std::string& doc, Rng& rng) {
  switch (rng.below(9)) {
    case 0: {  // flip one bit
      if (doc.empty()) break;
      doc[rng.below(doc.size())] ^= static_cast<char>(1 << rng.below(8));
      break;
    }
    case 1: {  // overwrite a byte with anything (embedded NUL included)
      if (doc.empty()) break;
      doc[rng.below(doc.size())] = static_cast<char>(rng.below(256));
      break;
    }
    case 2: {  // insert a short burst of random bytes
      std::string burst;
      for (std::uint64_t i = 0, k = 1 + rng.below(8); i < k; ++i) {
        burst.push_back(static_cast<char>(rng.below(256)));
      }
      doc.insert(rng.below(doc.size() + 1), burst);
      break;
    }
    case 3: {  // erase a random range
      if (doc.empty()) break;
      const std::size_t begin = rng.below(doc.size());
      doc.erase(begin, 1 + rng.below(doc.size() - begin));
      break;
    }
    case 4: {  // truncate (the classic partial-download)
      doc.resize(rng.below(doc.size() + 1));
      break;
    }
    case 5: {  // duplicate a chunk (repeated headers, repeated arcs)
      if (doc.empty()) break;
      const std::size_t begin = rng.below(doc.size());
      const std::size_t len = 1 + rng.below(doc.size() - begin);
      doc.insert(rng.below(doc.size() + 1), doc.substr(begin, len));
      break;
    }
    case 6: {  // replace a whitespace-delimited token with a nasty one
      if (doc.empty()) break;
      const std::size_t at = rng.below(doc.size());
      std::size_t begin = at;
      while (begin > 0 && !std::isspace(static_cast<unsigned char>(
                              doc[begin - 1]))) {
        --begin;
      }
      std::size_t end = at;
      while (end < doc.size() &&
             !std::isspace(static_cast<unsigned char>(doc[end]))) {
        ++end;
      }
      doc.replace(begin, end - begin,
                  kNastyTokens[rng.below(std::size(kNastyTokens))]);
      break;
    }
    case 7: {  // append a nasty line
      doc += "\n";
      for (std::uint64_t i = 0, k = 1 + rng.below(4); i < k; ++i) {
        doc += kNastyTokens[rng.below(std::size(kNastyTokens))];
        doc += " ";
      }
      doc += "\n";
      break;
    }
    case 8: {  // swap two halves (header after body, body before banner)
      if (doc.size() < 2) break;
      const std::size_t cut = 1 + rng.below(doc.size() - 1);
      doc = doc.substr(cut) + doc.substr(0, cut);
      break;
    }
  }
}

/// Printable escape of the first bytes of a failing input, so a smoke
/// failure message alone is enough to reproduce by hand.
std::string escaped_prefix(const std::string& doc, std::size_t limit = 160) {
  std::string out;
  for (std::size_t i = 0; i < doc.size() && i < limit; ++i) {
    const auto c = static_cast<unsigned char>(doc[i]);
    if (c == '\n') {
      out += "\\n";
    } else if (c == '\\') {
      out += "\\\\";
    } else if (c >= 32 && c < 127) {
      out += static_cast<char>(c);
    } else {
      static const char* hex = "0123456789abcdef";
      out += "\\x";
      out += hex[c >> 4];
      out += hex[c & 15];
    }
  }
  if (doc.size() > limit) out += "...";
  return out;
}

}  // namespace

const char* format_name(Format format) {
  switch (format) {
    case Format::kDimacs: return "dimacs";
    case Format::kSnap: return "snap";
    case Format::kMatrixMarket: return "matrix-market";
    case Format::kMetis: return "metis";
    case Format::kCsrBin: return "csrbin";
  }
  return "?";
}

void check_reader_bytes(Format format, const std::uint8_t* data,
                        std::size_t size) {
  std::istringstream in(
      std::string(reinterpret_cast<const char*>(data), size),
      std::ios::in | std::ios::binary);
  Csr g;
  try {
    g = reader_for(format)(in, "fuzz-input", fuzz_limits());
  } catch (const std::runtime_error&) {
    return;  // clean rejection — the one acceptable failure mode
  }
  // The reader accepted the bytes, so the result must be a real graph.
  const std::string who = format_name(format);
  if (!g.validate()) {
    throw std::logic_error(who +
                           " reader accepted input but built a structurally "
                           "invalid Csr");
  }
  if (g.num_vertices() > kFuzzMaxVertices) {
    throw std::logic_error(who + " reader ignored IoLimits.max_vertices (" +
                           std::to_string(g.num_vertices()) + " > " +
                           std::to_string(kFuzzMaxVertices) + ")");
  }
  if (g.num_edges() > kFuzzMaxEdges) {
    throw std::logic_error(who + " reader ignored IoLimits.max_edges (" +
                           std::to_string(g.num_edges()) + " > " +
                           std::to_string(kFuzzMaxEdges) + ")");
  }
}

void run_io_campaign(Format format, std::uint64_t seed, int iterations) {
  Rng rng(seed * 0x100 + static_cast<std::uint64_t>(format));
  const std::vector<std::string> own = corpus_for(format);

  // The unmutated corpus must parse: every document above is valid for
  // its format, and check_reader_bytes additionally enforces the
  // valid-or-reject contract.
  for (std::size_t i = 0; i < own.size(); ++i) {
    std::istringstream in(own[i], std::ios::in | std::ios::binary);
    try {
      Csr g = reader_for(format)(in, "corpus", fuzz_limits());
      if (!g.validate()) throw std::runtime_error("invalid Csr");
    } catch (const std::exception& e) {
      throw std::logic_error(std::string(format_name(format)) +
                             " reader rejected its own seed corpus doc #" +
                             std::to_string(i) + ": " + e.what());
    }
  }

  // Mutation pool: own corpus plus every other format's first document —
  // the cross-format confusions (an .mtx banner handed to the DIMACS
  // reader, binary bytes handed to a text parser) are classic crashes.
  std::vector<std::string> pool = own;
  for (const Format other : {Format::kDimacs, Format::kSnap,
                             Format::kMatrixMarket, Format::kMetis,
                             Format::kCsrBin}) {
    if (other == format) continue;
    std::vector<std::string> docs = corpus_for(other);
    if (!docs.empty()) pool.push_back(docs.front());
  }

  for (int iter = 0; iter < iterations; ++iter) {
    std::string doc;
    if (rng.below(16) == 0) {
      // Occasionally pure noise, to keep the first-bytes paths honest.
      const std::uint64_t len = rng.below(512);
      doc.reserve(len);
      for (std::uint64_t i = 0; i < len; ++i) {
        doc.push_back(static_cast<char>(rng.below(256)));
      }
    } else {
      doc = pool[rng.below(pool.size())];
      for (std::uint64_t i = 0, k = 1 + rng.below(8); i < k; ++i) {
        mutate(doc, rng);
      }
    }
    try {
      check_reader_bytes(format,
                         reinterpret_cast<const std::uint8_t*>(doc.data()),
                         doc.size());
    } catch (const std::exception& e) {
      // Anything escaping check_reader_bytes is a finding; re-throw with
      // the reproduction recipe attached.
      throw std::logic_error(
          std::string(format_name(format)) + " io campaign seed=" +
          std::to_string(seed) + " iter=" + std::to_string(iter) + ": " +
          e.what() + "\n  input: \"" + escaped_prefix(doc) + "\"");
    }
  }
}

}  // namespace fdiam::fuzz
