// libFuzzer entry for the graph-structure + differential-oracle harness:
// bytes become a degenerate graph and an engine/reorder mode, and the
// solver's answer is checked against the serial-BFS oracle. An uncaught
// std::logic_error (oracle mismatch) aborts, which libFuzzer reports
// with a reproducer file. Clang only — see tests/fuzz/CMakeLists.txt.

#include <cstddef>
#include <cstdint>

#include "fuzz_harness.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  fdiam::fuzz::check_structure_bytes(data, size);
  return 0;
}
