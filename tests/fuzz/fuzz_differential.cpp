// The differential oracle (tentpole harness (c)).
//
// Ground truth is one serial BFS per vertex (the only implementation
// simple enough to trust unconditionally). Everything else in the library
// that claims to know the diameter is checked against it, on thousands of
// seeded random degenerate graphs per run: F-Diam under every engine
// mode, every reorder path, all four baselines, and the metrics layer.
// The shared disconnected-graph convention (docs/ALGORITHM.md) is what
// makes the comparison exact rather than merely approximate.

#include <algorithm>
#include <cstddef>
#include <iterator>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "baselines/baselines.hpp"
#include "bfs/bfs.hpp"
#include "core/fdiam.hpp"
#include "core/metrics.hpp"
#include "fuzz_harness.hpp"
#include "fuzz_rng.hpp"
#include "gen/generators.hpp"
#include "graph/components.hpp"
#include "graph/edge_list.hpp"
#include "graph/reorder.hpp"
#include "util/types.hpp"

namespace fdiam::fuzz {

namespace {

struct EngineMode {
  const char* name;
  FDiamOptions opt;
};

/// The engine-mode matrix: the paper's design point, both BFS execution
/// axes, every feature ablation, each start policy, the rejected
/// candidate-batch alternative, and the randomized scan order.
const std::vector<EngineMode>& engine_modes() {
  static const std::vector<EngineMode> modes = [] {
    std::vector<EngineMode> m;
    const auto add = [&m](const char* name, auto&& tweak) {
      FDiamOptions opt;
      tweak(opt);
      m.push_back({name, opt});
    };
    add("default", [](FDiamOptions&) {});
    add("serial", [](FDiamOptions& o) {
      o.parallel = false;
      o.direction_optimizing = false;
    });
    add("serial-dirop", [](FDiamOptions& o) { o.parallel = false; });
    add("parallel-topdown",
        [](FDiamOptions& o) { o.direction_optimizing = false; });
    add("no-winnow", [](FDiamOptions& o) { o.use_winnow = false; });
    add("no-eliminate", [](FDiamOptions& o) { o.use_eliminate = false; });
    add("no-chain", [](FDiamOptions& o) { o.use_chain = false; });
    add("no-features", [](FDiamOptions& o) {
      o.use_winnow = o.use_eliminate = o.use_chain = false;
    });
    add("vertex-zero+random-scan", [](FDiamOptions& o) {
      o.start_policy = StartPolicy::kVertexZero;
      o.randomize_scan = true;
    });
    add("four-sweep-center", [](FDiamOptions& o) {
      o.start_policy = StartPolicy::kFourSweepCenter;
    });
    add("batch4", [](FDiamOptions& o) { o.candidate_batch = 4; });
    return m;
  }();
  return modes;
}

constexpr ReorderMode kReorderModes[] = {ReorderMode::kNone,
                                         ReorderMode::kDegree,
                                         ReorderMode::kBfs,
                                         ReorderMode::kRandom};

struct Truth {
  dist_t diameter = 0;
  bool connected = true;
  std::vector<dist_t> ecc;  // per-vertex in-component eccentricity
};

Truth ground_truth(const Csr& g) {
  Truth t;
  const vid_t n = g.num_vertices();
  t.ecc.resize(n, 0);
  std::vector<dist_t> dist;
  for (vid_t v = 0; v < n; ++v) {
    t.ecc[v] = bfs_distances_serial(g, v, dist);
    t.diameter = std::max(t.diameter, t.ecc[v]);
    if (v == 0) {
      // One source suffices for connectivity: BFS from 0 misses a vertex
      // iff the graph has >= 2 components.
      for (const dist_t d : dist) {
        if (d == kUnreached) {
          t.connected = false;
          break;
        }
      }
    }
  }
  return t;
}

[[noreturn]] void fail(const std::string& context, const std::string& what) {
  throw std::logic_error(context + ": " + what);
}

void expect(bool ok, const std::string& context, const std::string& what) {
  if (!ok) fail(context, what);
}

void check_diameter_result(const DiameterResult& r, const Truth& truth,
                           vid_t n, const std::string& context) {
  expect(!r.timed_out, context, "timed out with no budget set");
  expect(r.diameter == truth.diameter, context,
         "diameter " + std::to_string(r.diameter) + " != oracle " +
             std::to_string(truth.diameter));
  expect(r.connected == truth.connected, context,
         std::string("connected flag ") + (r.connected ? "true" : "false") +
             " != oracle " + (truth.connected ? "true" : "false"));
  if (n == 0) return;
  expect(r.witness < n, context,
         "witness " + std::to_string(r.witness) + " out of range (n=" +
             std::to_string(n) + ")");
  expect(truth.ecc[r.witness] == truth.diameter, context,
         "witness " + std::to_string(r.witness) + " has eccentricity " +
             std::to_string(truth.ecc[r.witness]) +
             ", not the reported diameter " + std::to_string(truth.diameter));
}

void check_metrics(const Csr& g, const Truth& truth, const Components& cc,
                   const std::string& context) {
  const vid_t n = g.num_vertices();

  const ExactEccResult ex = exact_eccentricities(g);
  expect(ex.ecc.size() == n, context + " [exact_eccentricities]",
         "eccentricity vector has wrong size");
  for (vid_t v = 0; v < n; ++v) {
    expect(ex.ecc[v] == truth.ecc[v], context + " [exact_eccentricities]",
           "ecc(" + std::to_string(v) + ") = " + std::to_string(ex.ecc[v]) +
               " != oracle " + std::to_string(truth.ecc[v]));
  }

  const GraphMetrics met = graph_metrics(g);
  const std::string mctx = context + " [graph_metrics]";
  expect(met.diameter == truth.diameter, mctx, "diameter mismatch");
  expect(met.connected == truth.connected, mctx, "connected mismatch");

  dist_t radius = 0;
  if (n > 0) {
    const std::uint32_t big = cc.largest();
    radius = std::numeric_limits<dist_t>::max();
    for (vid_t v = 0; v < n; ++v) {
      if (cc.label[v] == big) radius = std::min(radius, truth.ecc[v]);
    }
  }
  expect(met.radius == radius, mctx,
         "radius " + std::to_string(met.radius) + " != oracle " +
             std::to_string(radius));
  expect(n == 0 || !met.periphery.empty(), mctx, "empty periphery");
  expect(n == 0 || !met.center.empty(), mctx, "empty center");
  for (const vid_t v : met.periphery) {
    expect(v < n && truth.ecc[v] == truth.diameter, mctx,
           "periphery vertex " + std::to_string(v) + " is not peripheral");
  }
  for (const vid_t v : met.center) {
    expect(v < n && truth.ecc[v] == radius && cc.label[v] == cc.largest(),
           mctx, "center vertex " + std::to_string(v) + " is not central");
  }
}

/// One random degenerate graph. `depth` guards the recursive union case.
Csr random_degenerate_graph(Rng& rng, int depth) {
  const std::uint64_t family = rng.below(depth >= 2 ? 14 : 16);
  switch (family) {
    case 0:
      return Csr{};  // empty graph
    case 1:
      return Csr::from_edges(EdgeList(1));  // single vertex
    case 2:  // only isolated vertices
      return Csr::from_edges(
          EdgeList(static_cast<vid_t>(1 + rng.below(8))));
    case 3:
      return make_path(static_cast<vid_t>(1 + rng.below(40)));
    case 4:
      return make_cycle(static_cast<vid_t>(3 + rng.below(37)));
    case 5:
      return make_star(static_cast<vid_t>(1 + rng.below(39)));
    case 6:
      return make_complete(static_cast<vid_t>(1 + rng.below(12)));
    case 7: {  // sparse ER: frequently disconnected, sometimes empty
      const vid_t n = static_cast<vid_t>(2 + rng.below(30));
      const eid_t m = rng.below(2 * static_cast<eid_t>(n));
      return make_erdos_renyi(n, m, rng.u64());
    }
    case 8:
      return make_random_tree(static_cast<vid_t>(1 + rng.below(40)),
                              rng.u64());
    case 9:
      return make_balanced_tree(static_cast<vid_t>(2 + rng.below(3)),
                                static_cast<vid_t>(1 + rng.below(4)));
    case 10:
      return make_caterpillar(static_cast<vid_t>(1 + rng.below(10)),
                              static_cast<vid_t>(rng.below(4)));
    case 11:
      return make_lollipop(static_cast<vid_t>(3 + rng.below(6)),
                           static_cast<vid_t>(1 + rng.below(8)));
    case 12:
      return make_barbell(static_cast<vid_t>(3 + rng.below(5)),
                          static_cast<vid_t>(1 + rng.below(6)));
    case 13:
      return make_grid(static_cast<vid_t>(1 + rng.below(6)),
                       static_cast<vid_t>(1 + rng.below(6)));
    case 14:  // disjoint union of two smaller degenerates
      return disjoint_union(random_degenerate_graph(rng, depth + 1),
                            random_degenerate_graph(rng, depth + 1));
    default: {  // "dirty rebuild": self-loops, parallel edges, isolated pad
      const Csr base = random_degenerate_graph(rng, depth + 1);
      EdgeList el(static_cast<vid_t>(base.num_vertices() + rng.below(4)));
      for (vid_t u = 0; u < base.num_vertices(); ++u) {
        for (const vid_t w : base.neighbors(u)) {
          if (w >= u) el.add(u, w);
        }
      }
      const std::size_t originals = el.size();
      for (std::uint64_t i = 0, k = rng.below(8); i < k && originals > 0;
           ++i) {  // parallel edges
        const Edge e = el.edges()[rng.below(originals)];
        el.add(e.u, e.v);
      }
      if (el.num_vertices() > 0) {  // self-loops
        for (std::uint64_t i = 0, k = rng.below(4); i < k; ++i) {
          const vid_t v = static_cast<vid_t>(rng.below(el.num_vertices()));
          el.add(v, v);
        }
      }
      return Csr::from_edges(std::move(el));
    }
  }
}

}  // namespace

void check_graph_against_oracle(const Csr& g, const std::string& context,
                                int mode_index) {
  const vid_t n = g.num_vertices();
  const Truth truth = ground_truth(g);

  const Components cc = connected_components(g);
  expect(cc.connected() == truth.connected, context,
         "connected_components() disagrees with the BFS oracle about "
         "connectivity");

  // --- F-Diam engine modes -----------------------------------------------
  const auto& modes = engine_modes();
  const std::size_t first =
      mode_index < 0 ? 0
                     : static_cast<std::size_t>(mode_index) % modes.size();
  const std::size_t last = mode_index < 0 ? modes.size() : first + 1;
  for (std::size_t i = first; i < last; ++i) {
    check_diameter_result(fdiam_diameter(g, modes[i].opt), truth, n,
                          context + " [fdiam/" + modes[i].name + "]");
  }

  // --- Reorder paths ------------------------------------------------------
  const std::size_t rfirst =
      mode_index < 0
          ? 0
          : (static_cast<std::size_t>(mode_index) / modes.size()) %
                std::size(kReorderModes);
  const std::size_t rlast =
      mode_index < 0 ? std::size(kReorderModes) : rfirst + 1;
  for (std::size_t i = rfirst; i < rlast; ++i) {
    check_diameter_result(
        fdiam_diameter_reordered(g, kReorderModes[i], {}, /*seed=*/42),
        truth, n,
        context + " [reorder/" +
            std::string(reorder_mode_name(kReorderModes[i])) + "]");
  }

  // --- Baselines ----------------------------------------------------------
  struct Baseline {
    const char* name;
    BaselineResult (*fn)(const Csr&, BaselineOptions);
  };
  constexpr Baseline kBaselines[] = {
      {"apsp", &apsp_diameter},
      {"ifub", &ifub_diameter},
      {"graph-diameter", &graph_diameter},
      {"korf", &korf_diameter},
  };
  for (const auto& b : kBaselines) {
    const BaselineResult r = b.fn(g, {});
    const std::string bctx = context + " [" + b.name + "]";
    expect(!r.timed_out, bctx, "timed out with no budget set");
    expect(r.diameter == truth.diameter, bctx,
           "diameter " + std::to_string(r.diameter) + " != oracle " +
               std::to_string(truth.diameter));
    expect(r.connected == truth.connected, bctx, "connected flag mismatch");
  }
  if (mode_index < 0) {
    BaselineOptions par;
    par.parallel = true;
    const BaselineResult r = apsp_diameter(g, par);
    expect(r.diameter == truth.diameter && r.connected == truth.connected,
           context + " [apsp/parallel]", "mismatch against serial oracle");
  }

  // --- Metrics layer (only in the full sweep; it is the slow part) --------
  if (mode_index < 0) check_metrics(g, truth, cc, context);
}

void run_differential_campaign(std::uint64_t seed, int graphs) {
  Rng rng(seed);
  for (int i = 0; i < graphs; ++i) {
    const std::uint64_t graph_seed = rng.u64();
    Rng grng(graph_seed);
    const Csr g = random_degenerate_graph(grng, 0);
    check_graph_against_oracle(
        g, "differential seed=" + std::to_string(seed) + " graph=" +
               std::to_string(i) + " graph_seed=" +
               std::to_string(graph_seed) + " (n=" +
               std::to_string(g.num_vertices()) + ", m=" +
               std::to_string(g.num_edges()) + ")",
        /*mode_index=*/-1);
  }
}

}  // namespace fdiam::fuzz
