// Deterministic seeded fuzz campaigns as a CLI — the form ctest runs
// (label "fuzz", including under the ASan+UBSan preset) and the form a
// human replays a failure seed with:
//
//   fdiam_fuzz_smoke --target io-dimacs --seed 1 --iters 400
//   fdiam_fuzz_smoke --target differential --seed 1 --graphs 2200
//
// Exit code 0 = the campaign found nothing; 1 = a finding (the message
// carries the seed/iteration recipe); 2 = bad usage.

#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "fuzz_harness.hpp"
#include "util/cli.hpp"

namespace {

using fdiam::fuzz::Format;

struct IoTarget {
  const char* name;
  Format format;
};

constexpr IoTarget kIoTargets[] = {
    {"io-dimacs", Format::kDimacs},
    {"io-snap", Format::kSnap},
    {"io-mtx", Format::kMatrixMarket},
    {"io-metis", Format::kMetis},
    {"io-csrbin", Format::kCsrBin},
};

}  // namespace

int main(int argc, char** argv) {
  fdiam::Cli cli;
  cli.add_option("target",
                 "io-dimacs|io-snap|io-mtx|io-metis|io-csrbin|io-all|"
                 "structure|differential|all",
                 "all");
  cli.add_option("seed", "campaign seed (failures print it back)", "1");
  cli.add_option("iters", "iterations per io/structure campaign", "400");
  cli.add_option("graphs", "graphs for the differential campaign", "2200");
  if (!cli.parse(argc, argv)) {
    std::fprintf(stderr, "fdiam_fuzz_smoke: %s\n%s", cli.error().c_str(),
                 cli.usage("fdiam_fuzz_smoke").c_str());
    return 2;
  }
  if (cli.help_requested()) {
    std::printf("%s", cli.usage("fdiam_fuzz_smoke").c_str());
    return 0;
  }

  try {
    const std::string target = cli.get("target", "all");
    const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
    const int iters = static_cast<int>(cli.get_int("iters", 400));
    const int graphs = static_cast<int>(cli.get_int("graphs", 2200));

    bool matched = false;
    for (const auto& io : kIoTargets) {
      if (target == io.name || target == "io-all" || target == "all") {
        matched = true;
        fdiam::fuzz::run_io_campaign(io.format, seed, iters);
        std::printf("[fuzz] %-10s %d mutated inputs, contract held\n",
                    io.name, iters);
      }
    }
    if (target == "structure" || target == "all") {
      matched = true;
      fdiam::fuzz::run_structure_campaign(seed, iters);
      std::printf("[fuzz] structure  %d programs, oracle held\n", iters);
    }
    if (target == "differential" || target == "all") {
      matched = true;
      fdiam::fuzz::run_differential_campaign(seed, graphs);
      std::printf("[fuzz] differential %d graphs x every engine/reorder "
                  "mode, oracle held\n",
                  graphs);
    }
    if (!matched) {
      std::fprintf(stderr, "fdiam_fuzz_smoke: unknown --target '%s'\n%s",
                   target.c_str(), cli.usage("fdiam_fuzz_smoke").c_str());
      return 2;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fdiam_fuzz_smoke: FINDING\n%s\n", e.what());
    return 1;
  }
  return 0;
}
