#pragma once
// Differential-fuzzing and input-hardening harnesses (docs/HARDENING.md).
//
// Three harness families, each usable two ways:
//   * as libFuzzer entry points (tests/fuzz/lf_*.cpp, -DFDIAM_FUZZ=ON,
//     Clang only) for open-ended coverage-guided campaigns, and
//   * as deterministic seeded campaigns registered with ctest (label
//     "fuzz") so every build — including the ASan+UBSan preset — replays
//     a bounded sweep on every test run.
//
// Failure convention: a harness THROWS (std::logic_error for an oracle
// mismatch, anything non-runtime_error escaping a reader) when it finds a
// bug. The smoke driver turns that into a nonzero exit; libFuzzer turns
// the uncaught exception into a crash + reproducer file.

#include <cstddef>
#include <cstdint>
#include <string>

#include "graph/csr.hpp"

namespace fdiam::fuzz {

/// File formats with a reader in src/io/.
enum class Format { kDimacs, kSnap, kMatrixMarket, kMetis, kCsrBin };

const char* format_name(Format format);

/// Feed `size` bytes to the `format` reader (in-memory, tight IoLimits so
/// lying headers cannot exhaust memory). Contract checked here: the bytes
/// are either rejected with std::runtime_error or produce a Csr that
/// passes Csr::validate(). Silent acceptance of garbage that builds an
/// invalid graph, any other exception type, or a crash is a bug.
void check_reader_bytes(Format format, const std::uint8_t* data,
                        std::size_t size);

/// Interpret bytes as a little graph-building program (edges, self-loops,
/// duplicates, isolated blocks, path/star/cycle bursts, component breaks)
/// plus a solver-mode selector; run F-Diam on the result and check it
/// against the APSP oracle.
void check_structure_bytes(const std::uint8_t* data, std::size_t size);

/// Verify one graph against the ground-truth oracle: APSP diameter +
/// connectivity + per-vertex eccentricities, F-Diam engine modes, reorder
/// modes, the iFUB / Graph-Diameter / Korf baselines, the witness
/// contract, and the metrics layer. `mode_index < 0` runs every engine
/// and reorder mode (the differential campaign); `mode_index >= 0` picks
/// one engine+reorder combination from it (the structure fuzzer, where
/// the byte stream chooses the mode). Throws std::logic_error describing
/// the first mismatch; `context` is prepended so campaign failures name
/// their seed.
void check_graph_against_oracle(const Csr& g, const std::string& context,
                                int mode_index = -1);

// --- Deterministic seeded campaigns (the ctest smoke runs) ---------------

/// Mutational fuzzing of one reader: start from that format's seed corpus
/// (valid files, edge-case files, other formats' files), apply 1..8 random
/// byte/token mutations per iteration, and check_reader_bytes each result.
void run_io_campaign(Format format, std::uint64_t seed, int iterations);

/// Randomized degenerate-graph programs through check_structure_bytes.
void run_structure_campaign(std::uint64_t seed, int iterations);

/// The differential oracle: `graphs` seeded random degenerate graphs
/// (empty, single vertex, isolated vertices, multi-component, self-loops,
/// parallel edges, stars, chains, cliques, unions thereof), each through
/// check_graph_against_oracle with every engine and reorder mode.
void run_differential_campaign(std::uint64_t seed, int graphs);

}  // namespace fdiam::fuzz
