// Tests for witness tracking and diametral-path extraction.

#include <gtest/gtest.h>

#include "baselines/baselines.hpp"
#include "core/diametral_path.hpp"
#include "core/eccentricity.hpp"
#include "gen/generators.hpp"

namespace fdiam {
namespace {

void expect_valid_path(const Csr& g, const DiametralPath& p) {
  ASSERT_EQ(p.path.size(), static_cast<std::size_t>(p.diameter) + 1);
  for (std::size_t i = 0; i + 1 < p.path.size(); ++i) {
    EXPECT_TRUE(g.has_edge(p.path[i], p.path[i + 1]))
        << "gap at step " << i;
  }
}

TEST(Witness, EccentricityEqualsDiameter) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const Csr g = make_erdos_renyi(250, 600, seed);
    const DiameterResult r = fdiam_diameter(g);
    EXPECT_EQ(eccentricity(g, r.witness), r.diameter) << "seed " << seed;
  }
}

TEST(Witness, TracksBoundRaisesAcrossComponents) {
  const Csr g = disjoint_union(make_star(50), make_cycle(44));
  const DiameterResult r = fdiam_diameter(g);
  EXPECT_EQ(r.diameter, 22);
  EXPECT_GE(r.witness, 51u);  // must be a cycle vertex
  EXPECT_EQ(eccentricity(g, r.witness), 22);
}

TEST(DiametralPathTest, PathOnAPathGraph) {
  const DiametralPath p = diametral_path(make_path(30));
  EXPECT_EQ(p.diameter, 29);
  expect_valid_path(make_path(30), p);
  EXPECT_TRUE((p.path.front() == 0 && p.path.back() == 29) ||
              (p.path.front() == 29 && p.path.back() == 0));
}

TEST(DiametralPathTest, PathIsShortest) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Csr g = make_barabasi_albert(300, 2.0, seed);
    const DiametralPath p = diametral_path(g);
    EXPECT_EQ(p.diameter, apsp_diameter(g).diameter) << "seed " << seed;
    expect_valid_path(g, p);
    // Endpoints realize the diameter.
    EXPECT_EQ(eccentricity(g, p.path.front()), p.diameter);
    EXPECT_EQ(eccentricity(g, p.path.back()), p.diameter);
  }
}

TEST(DiametralPathTest, GridCornerToCorner) {
  const Csr g = make_grid(9, 7);
  const DiametralPath p = diametral_path(g);
  EXPECT_EQ(p.diameter, 14);
  expect_valid_path(g, p);
}

TEST(DiametralPathTest, DisconnectedUsesLargestEccComponent) {
  const Csr g = disjoint_union(make_path(8), make_cycle(40));
  const DiametralPath p = diametral_path(g);
  EXPECT_FALSE(p.connected);
  EXPECT_EQ(p.diameter, 20);
  expect_valid_path(g, p);
  for (const vid_t v : p.path) EXPECT_GE(v, 8u);  // inside the cycle
}

TEST(DiametralPathTest, TinyGraphs) {
  EXPECT_TRUE(diametral_path(Csr::from_edges(EdgeList{})).path.empty());
  EdgeList one;
  one.ensure_vertices(1);
  const DiametralPath p1 = diametral_path(Csr::from_edges(std::move(one)));
  EXPECT_EQ(p1.path.size(), 1u);
  EXPECT_EQ(p1.diameter, 0);
  EdgeList two;
  two.add(0, 1);
  const DiametralPath p2 = diametral_path(Csr::from_edges(std::move(two)));
  EXPECT_EQ(p2.diameter, 1);
  EXPECT_EQ(p2.path.size(), 2u);
}

TEST(DiametralPathTest, FromKnownWitness) {
  const Csr g = make_lollipop(10, 15);
  const DiameterResult r = fdiam_diameter(g);
  const DiametralPath p = diametral_path_from(g, r.witness);
  EXPECT_EQ(p.diameter, 16);
  expect_valid_path(g, p);
}

}  // namespace
}  // namespace fdiam
