// F-Diam correctness on deterministic shapes and edge cases, plus the
// result/stat invariants of the solver itself.

#include <gtest/gtest.h>

#include "baselines/baselines.hpp"
#include "core/fdiam.hpp"
#include "gen/generators.hpp"

namespace fdiam {
namespace {

TEST(FDiam, EmptyGraph) {
  const DiameterResult r = fdiam_diameter(Csr::from_edges(EdgeList{}));
  EXPECT_EQ(r.diameter, 0);
  EXPECT_TRUE(r.connected);
  EXPECT_FALSE(r.timed_out);
}

TEST(FDiam, SingleVertex) {
  EdgeList e;
  e.ensure_vertices(1);
  const DiameterResult r = fdiam_diameter(Csr::from_edges(std::move(e)));
  EXPECT_EQ(r.diameter, 0);
  EXPECT_TRUE(r.connected);
}

TEST(FDiam, SingleEdge) {
  EdgeList e;
  e.add(0, 1);
  const DiameterResult r = fdiam_diameter(Csr::from_edges(std::move(e)));
  EXPECT_EQ(r.diameter, 1);
  EXPECT_TRUE(r.connected);
}

TEST(FDiam, EdgeFreeGraphWithManyVertices) {
  EdgeList e(7);
  const DiameterResult r = fdiam_diameter(Csr::from_edges(std::move(e)));
  EXPECT_EQ(r.diameter, 0);
  EXPECT_FALSE(r.connected);
  EXPECT_EQ(r.stats.degree0_vertices, 7u);
}

struct ShapeCase {
  const char* name;
  Csr (*build)();
  dist_t diameter;
};

class FDiamShapes : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(FDiamShapes, ExactDiameter) {
  const auto& param = GetParam();
  const Csr g = param.build();
  const DiameterResult r = fdiam_diameter(g);
  EXPECT_EQ(r.diameter, param.diameter);
  EXPECT_TRUE(r.connected);
  EXPECT_FALSE(r.timed_out);
}

TEST_P(FDiamShapes, ExactDiameterSerial) {
  const auto& param = GetParam();
  FDiamOptions opt;
  opt.parallel = false;
  EXPECT_EQ(fdiam_diameter(param.build(), opt).diameter, param.diameter);
}

INSTANTIATE_TEST_SUITE_P(
    KnownShapes, FDiamShapes,
    ::testing::Values(
        ShapeCase{"path", [] { return make_path(57); }, 56},
        ShapeCase{"even_cycle", [] { return make_cycle(24); }, 12},
        ShapeCase{"odd_cycle", [] { return make_cycle(25); }, 12},
        ShapeCase{"star", [] { return make_star(30); }, 2},
        ShapeCase{"complete", [] { return make_complete(16); }, 1},
        ShapeCase{"tree", [] { return make_balanced_tree(2, 6); }, 12},
        ShapeCase{"caterpillar", [] { return make_caterpillar(10, 3); }, 11},
        ShapeCase{"lollipop", [] { return make_lollipop(10, 7); }, 8},
        ShapeCase{"barbell", [] { return make_barbell(5, 6); }, 9},
        ShapeCase{"grid", [] { return make_grid(13, 9); }, 20},
        ShapeCase{"triangle", [] { return make_cycle(3); }, 1},
        ShapeCase{"two_path", [] { return make_path(2); }, 1}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(FDiam, DisconnectedReportsLargestComponentEccentricity) {
  // Paper §1/§5: disconnected inputs are flagged and the largest
  // eccentricity over all components is reported.
  const Csr g = disjoint_union(make_path(12), make_cycle(30));
  const DiameterResult r = fdiam_diameter(g);
  EXPECT_FALSE(r.connected);
  EXPECT_EQ(r.diameter, 15);  // cycle's diameter beats the path's 11
}

TEST(FDiam, DisconnectedWithIsolatedVertices) {
  EdgeList e(20);
  for (vid_t v = 0; v + 1 < 10; ++v) e.add(v, v + 1);  // path on 0..9
  const Csr g = Csr::from_edges(std::move(e));
  const DiameterResult r = fdiam_diameter(g);
  EXPECT_FALSE(r.connected);
  EXPECT_EQ(r.diameter, 9);
  EXPECT_EQ(r.stats.degree0_vertices, 10u);
}

TEST(FDiam, ManyComponents) {
  Csr g = disjoint_union(make_path(5), make_path(9));
  g = disjoint_union(g, make_star(4));
  g = disjoint_union(g, make_complete(6));
  const DiameterResult r = fdiam_diameter(g);
  EXPECT_FALSE(r.connected);
  EXPECT_EQ(r.diameter, 8);
}

TEST(FDiam, NoVertexLeftActive) {
  const Csr g = make_barabasi_albert(2000, 2.5, 3);
  FDiam solver(g);
  solver.run();
  for (const dist_t s : solver.state()) {
    EXPECT_NE(s, FDiam::kActiveState);
  }
}

TEST(FDiam, StageAttributionSumsToN) {
  const Csr g = make_barabasi_albert(3000, 3.0, 7);
  const DiameterResult r = fdiam_diameter(g);
  const auto& s = r.stats;
  EXPECT_EQ(s.removed_by_winnow + s.removed_by_eliminate +
                s.removed_by_chain + s.degree0_vertices + s.evaluated,
            g.num_vertices());
}

TEST(FDiam, BfsCallCountingMatchesTable3Rule) {
  // Table 3 counts eccentricity computations plus Winnow invocations.
  const Csr g = make_grid(40, 40);
  const DiameterResult r = fdiam_diameter(g);
  EXPECT_EQ(r.stats.bfs_calls,
            r.stats.ecc_computations + r.stats.winnow_calls);
  EXPECT_GE(r.stats.ecc_computations, 2u);  // at least the 2-sweep
  EXPECT_GE(r.stats.winnow_calls, 1u);
}

TEST(FDiam, RecordedBoundsAreValidUpperBounds) {
  // Every recorded state value (except winnowed/chain sentinels) must be a
  // genuine upper bound on the vertex's true eccentricity — the invariant
  // the Eliminate machinery rests on.
  const Csr g = make_erdos_renyi(400, 1200, 19);
  FDiam solver(g);
  solver.run();
  BfsEngine engine(g);
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    const dist_t s = solver.state()[v];
    if (s == FDiam::kWinnowedState || s > FDiam::kChainMax - 1000) continue;
    EXPECT_GE(s, engine.eccentricity(v)) << "vertex " << v;
  }
}

TEST(FDiam, RunIsRepeatable) {
  const Csr g = make_rmat(10, 8.0, 0.45, 0.15, 0.15, 5);
  FDiam solver(g);
  const DiameterResult first = solver.run();
  const DiameterResult second = solver.run();
  EXPECT_EQ(first.diameter, second.diameter);
  EXPECT_EQ(first.stats.bfs_calls, second.stats.bfs_calls);
  EXPECT_EQ(first.stats.evaluated, second.stats.evaluated);
}

TEST(FDiam, TimeBudgetProducesLowerBound) {
  const Csr g = make_grid(120, 120);
  FDiamOptions opt;
  opt.max_bfs_calls = 3;  // abort almost immediately
  const DiameterResult r = fdiam_diameter(g, opt);
  EXPECT_TRUE(r.timed_out);
  EXPECT_LE(r.diameter, 238);
  EXPECT_GT(r.diameter, 0);
}

TEST(FDiam, RandomizedScanOrderIsExactAndDeterministic) {
  // Paper §4.5 describes a random evaluation order; it must not change
  // the result and must be reproducible for a fixed seed.
  FDiamOptions opt;
  opt.randomize_scan = true;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Csr g = make_erdos_renyi(250, 600, seed);
    const BaselineResult truth = apsp_diameter(g);
    const DiameterResult a = fdiam_diameter(g, opt);
    const DiameterResult b = fdiam_diameter(g, opt);
    EXPECT_EQ(a.diameter, truth.diameter) << "seed " << seed;
    EXPECT_EQ(a.stats.bfs_calls, b.stats.bfs_calls);
  }
}

TEST(FDiam, ScanSeedChangesWorkNotResult) {
  const Csr g = make_erdos_renyi(400, 900, 77);
  FDiamOptions a, b;
  a.randomize_scan = b.randomize_scan = true;
  a.scan_seed = 1;
  b.scan_seed = 2;
  EXPECT_EQ(fdiam_diameter(g, a).diameter, fdiam_diameter(g, b).diameter);
}

TEST(FDiam, StageTimersCoverTotal) {
  const Csr g = make_barabasi_albert(5000, 4.0, 13);
  const DiameterResult r = fdiam_diameter(g);
  const auto& s = r.stats;
  EXPECT_GE(s.time_total, 0.0);
  EXPECT_GE(s.time_other(), -1e-6);  // stage times never exceed the total
}

}  // namespace
}  // namespace fdiam
