// Zero-copy mmap loading of .csrbin files (io::map_binary): format
// version round-trips, bit-identical solves against the eager loader
// across the engine x reorder matrix, and hand-corrupted negatives.

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "core/fdiam.hpp"
#include "gen/generators.hpp"
#include "graph/reorder.hpp"
#include "io/io.hpp"
#include "util/memory.hpp"

namespace fdiam {
namespace {

namespace fs = std::filesystem;

class MmapTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("fdiam_mmap_test_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] fs::path file(const std::string& name) const {
    return dir_ / name;
  }

  static void expect_same_graph(const Csr& a, const Csr& b) {
    ASSERT_EQ(a.num_vertices(), b.num_vertices());
    ASSERT_EQ(a.num_arcs(), b.num_arcs());
    EXPECT_TRUE(std::ranges::equal(a.offsets(), b.offsets()));
    EXPECT_TRUE(std::ranges::equal(a.raw_neighbors(), b.raw_neighbors()));
  }

  [[nodiscard]] std::string slurp(const fs::path& p) const {
    std::ifstream in(p, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    return bytes;
  }

  void spit(const fs::path& p, const std::string& bytes) const {
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  fs::path dir_;
};

TEST_F(MmapTest, V2RoundTripsThroughReaderAndMapper) {
  const Csr g = make_rmat(10, 8.0, 0.45, 0.15, 0.15, 7);
  io::write_binary(g, file("g.csrbin"));  // v2 by default

  const Csr eager = io::read_binary(file("g.csrbin"));
  EXPECT_FALSE(eager.is_mapped());
  expect_same_graph(g, eager);

  const Csr mapped = io::map_binary(file("g.csrbin"));
  EXPECT_TRUE(mapped.is_mapped());
  expect_same_graph(g, mapped);
}

TEST_F(MmapTest, LegacyV1StillReadsAndMapperFallsBack) {
  const Csr g = make_barabasi_albert(400, 2.0, 11);
  io::BinaryWriteOptions v1;
  v1.version = io::csrbin::kVersionLegacy;
  io::write_binary(g, file("v1.csrbin"), v1);

  // The v1 file is the old 28-byte-packed layout byte for byte.
  EXPECT_EQ(fs::file_size(file("v1.csrbin")),
            io::csrbin::kLegacyHeaderBytes +
                (g.num_vertices() + 1ull) * sizeof(eid_t) +
                g.num_arcs() * sizeof(vid_t));
  expect_same_graph(g, io::read_binary(file("v1.csrbin")));

  // v1 sections are unaligned, so map_binary must fall back to an eager
  // load — same graph, but not a mapping.
  const Csr fallback = io::map_binary(file("v1.csrbin"));
  EXPECT_FALSE(fallback.is_mapped());
  expect_same_graph(g, fallback);
}

TEST_F(MmapTest, V1ToV2RewriteRoundTrips) {
  const Csr g = make_grid(23, 17);
  io::BinaryWriteOptions v1;
  v1.version = io::csrbin::kVersionLegacy;
  io::write_binary(g, file("old.csrbin"), v1);

  // The upgrade path a cache directory goes through: read v1, write v2.
  const Csr loaded = io::read_binary(file("old.csrbin"));
  io::write_binary(loaded, file("new.csrbin"));
  const Csr mapped = io::map_binary(file("new.csrbin"));
  EXPECT_TRUE(mapped.is_mapped());
  expect_same_graph(g, mapped);
}

TEST_F(MmapTest, V2SectionsAreAligned) {
  const Csr g = make_path(37);  // n+1 = 38 offsets: forces real padding
  io::write_binary(g, file("a.csrbin"));
  const std::string bytes = slurp(file("a.csrbin"));
  ASSERT_GE(bytes.size(), io::csrbin::kHeaderBytes);
  std::uint64_t offsets_off = 0, neighbors_off = 0;
  std::memcpy(&offsets_off, bytes.data() + 32, 8);
  std::memcpy(&neighbors_off, bytes.data() + 40, 8);
  EXPECT_EQ(offsets_off % io::csrbin::kSectionAlign, 0u);
  EXPECT_EQ(neighbors_off % io::csrbin::kSectionAlign, 0u);
  EXPECT_EQ(bytes.size(), neighbors_off + g.num_arcs() * sizeof(vid_t));
}

TEST_F(MmapTest, EmptyGraphMapsCleanly) {
  io::write_binary(Csr{}, file("e.csrbin"));
  const Csr mapped = io::map_binary(file("e.csrbin"));
  EXPECT_TRUE(mapped.is_mapped());
  EXPECT_EQ(mapped.num_vertices(), 0u);
  EXPECT_EQ(mapped.num_arcs(), 0u);
}

// The whole point of the zero-copy path: a mapped graph must be
// indistinguishable from an owned one to every solver configuration.
TEST_F(MmapTest, MappedSolvesBitIdenticalAcrossEngineReorderMatrix) {
  const Csr base = make_rmat(11, 8.0, 0.45, 0.15, 0.15, 3);

  for (const ReorderMode mode : {ReorderMode::kNone, ReorderMode::kDegree,
                                 ReorderMode::kBfs, ReorderMode::kRandom}) {
    const Csr owned = apply_permutation(base, make_order(base, mode, 5));
    const fs::path p = file(std::string("m_") + reorder_mode_name(mode) +
                            ".csrbin");
    io::write_binary(owned, p);
    const Csr mapped = io::map_binary(p);
    ASSERT_TRUE(mapped.is_mapped());
    expect_same_graph(owned, mapped);

    for (const bool parallel : {false, true}) {
      for (const bool dopt : {false, true}) {
        FDiamOptions opt;
        opt.parallel = parallel;
        opt.direction_optimizing = dopt;
        const DiameterResult a = fdiam_diameter(owned, opt);
        const DiameterResult b = fdiam_diameter(mapped, opt);
        const std::string cfg = std::string(reorder_mode_name(mode)) +
                                (parallel ? "/par" : "/ser") +
                                (dopt ? "/dopt" : "/plain");
        EXPECT_EQ(a.diameter, b.diameter) << cfg;
        EXPECT_EQ(a.witness, b.witness) << cfg;
        EXPECT_EQ(a.connected, b.connected) << cfg;
        EXPECT_EQ(a.stats.bfs_calls, b.stats.bfs_calls) << cfg;
      }
    }
  }
}

TEST_F(MmapTest, MappedCsrSurvivesCopyAndMove) {
  const Csr g = make_cycle(64);
  io::write_binary(g, file("cm.csrbin"));
  Csr mapped = io::map_binary(file("cm.csrbin"));

  const Csr copy = mapped;  // shares the mapping
  EXPECT_TRUE(copy.is_mapped());
  expect_same_graph(g, copy);

  const Csr moved = std::move(mapped);
  EXPECT_TRUE(moved.is_mapped());
  expect_same_graph(g, moved);

  // Both alive at once: the shared_ptr keeps the pages valid.
  EXPECT_EQ(copy.degree(0), moved.degree(0));
}

TEST_F(MmapTest, MappedBytesCounterTracksLiveMappings) {
  const Csr g = make_path(100);
  io::write_binary(g, file("acct.csrbin"));
  const std::uint64_t before = util::mapped_bytes();
  {
    const Csr mapped = io::map_binary(file("acct.csrbin"));
    ASSERT_TRUE(mapped.is_mapped());
    EXPECT_EQ(util::mapped_bytes(),
              before + fs::file_size(file("acct.csrbin")));
  }
  EXPECT_EQ(util::mapped_bytes(), before);
}

// --- Negatives: every corruption must throw, never crash or misparse ---

TEST_F(MmapTest, RejectsTruncatedFiles) {
  const Csr g = make_path(20);
  io::write_binary(g, file("t.csrbin"));
  const std::string bytes = slurp(file("t.csrbin"));
  for (const std::size_t cut :
       {bytes.size() - 1, bytes.size() - 9, io::csrbin::kHeaderBytes + 3,
        std::size_t{40}, std::size_t{9}}) {
    spit(file("cut.csrbin"), bytes.substr(0, cut));
    EXPECT_THROW(io::map_binary(file("cut.csrbin")), std::runtime_error)
        << "cut at " << cut;
  }
  spit(file("junk.csrbin"), bytes + "extra");
  EXPECT_THROW(io::map_binary(file("junk.csrbin")), std::runtime_error);
}

TEST_F(MmapTest, RejectsForeignEndiannessAndBadVersions) {
  const Csr g = make_path(8);
  io::write_binary(g, file("h.csrbin"));
  std::string bytes = slurp(file("h.csrbin"));

  {
    std::string bad = bytes;  // byte-swapped endian marker
    const std::uint32_t swapped = 0x04030201;
    std::memcpy(bad.data() + 12, &swapped, 4);
    spit(file("endian.csrbin"), bad);
    try {
      io::map_binary(file("endian.csrbin"));
      FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("endian"), std::string::npos);
    }
  }
  {
    std::string bad = bytes;  // a version from the future
    const std::uint32_t v9 = 9;
    std::memcpy(bad.data() + 8, &v9, 4);
    spit(file("v9.csrbin"), bad);
    EXPECT_THROW(io::map_binary(file("v9.csrbin")), std::runtime_error);
  }
}

TEST_F(MmapTest, RejectsCorruptSectionTables) {
  const Csr g = make_path(8);
  io::write_binary(g, file("s.csrbin"));
  const std::string bytes = slurp(file("s.csrbin"));

  const auto with_u64_at = [&](std::size_t at, std::uint64_t v) {
    std::string bad = bytes;
    std::memcpy(bad.data() + at, &v, 8);
    return bad;
  };
  // offsets_off inside the header
  spit(file("b1.csrbin"), with_u64_at(32, 8));
  EXPECT_THROW(io::map_binary(file("b1.csrbin")), std::runtime_error);
  // offsets_off misaligned for eid_t (file-size check can't save us: keep
  // total_bytes plausible by also shifting neighbors_off is NOT done —
  // the parser must reject the misalignment on its own)
  spit(file("b2.csrbin"), with_u64_at(32, 68));
  EXPECT_THROW(io::map_binary(file("b2.csrbin")), std::runtime_error);
  // neighbors_off overlapping the offsets section
  spit(file("b3.csrbin"), with_u64_at(40, 64));
  EXPECT_THROW(io::map_binary(file("b3.csrbin")), std::runtime_error);
  // neighbors_off chosen so total_bytes wraps to something tiny
  spit(file("b4.csrbin"),
       with_u64_at(40, std::numeric_limits<std::uint64_t>::max() - 8));
  EXPECT_THROW(io::map_binary(file("b4.csrbin")), std::runtime_error);
}

TEST_F(MmapTest, RejectsCorruptPayload) {
  const Csr g = make_path(6);
  io::write_binary(g, file("p.csrbin"));
  std::string bytes = slurp(file("p.csrbin"));

  // Decreasing offsets: from_mapped's invariant check must fire.
  const eid_t bogus = 1u << 20;
  std::memcpy(bytes.data() + io::csrbin::kHeaderBytes + sizeof(eid_t),
              &bogus, sizeof bogus);
  spit(file("badoff.csrbin"), bytes);
  EXPECT_THROW(io::map_binary(file("badoff.csrbin")), std::runtime_error);
}

TEST_F(MmapTest, NeighborRangeScanIsOptionalButOffsetsAreNot) {
  const Csr g = make_path(6);
  io::write_binary(g, file("nv.csrbin"));
  std::string bytes = slurp(file("nv.csrbin"));
  // Corrupt one neighbor id to an out-of-range vertex.
  std::uint64_t neighbors_off = 0;
  std::memcpy(&neighbors_off, bytes.data() + 40, 8);
  const vid_t bogus = 1u << 30;
  std::memcpy(bytes.data() + neighbors_off, &bogus, sizeof bogus);
  spit(file("badnbr.csrbin"), bytes);

  // The default verifying load catches it...
  EXPECT_THROW(io::map_binary(file("badnbr.csrbin")), std::runtime_error);
  // ...the trusted fast path (just-written cache files) maps it anyway.
  const Csr trusted =
      io::map_binary(file("badnbr.csrbin"), {}, /*verify_neighbors=*/false);
  EXPECT_TRUE(trusted.is_mapped());
}

TEST_F(MmapTest, MissingFileThrows) {
  EXPECT_THROW(io::map_binary(file("absent.csrbin")), std::runtime_error);
}

}  // namespace
}  // namespace fdiam
