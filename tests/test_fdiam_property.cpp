// The heavyweight property suite: F-Diam (in several configurations) must
// produce exactly the APSP ground-truth diameter — and the same
// connectivity verdict — across a broad randomized sweep of graph
// families, sizes, and densities.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <tuple>

#include "baselines/baselines.hpp"
#include "core/fdiam.hpp"
#include "gen/generators.hpp"

namespace fdiam {
namespace {

struct Family {
  const char* name;
  Csr (*build)(vid_t n, std::uint64_t seed);
};

const Family kFamilies[] = {
    {"erdos_renyi_sparse",
     [](vid_t n, std::uint64_t s) {
       return make_erdos_renyi(n, static_cast<eid_t>(n) * 3 / 2, s);
     }},
    {"erdos_renyi_dense",
     [](vid_t n, std::uint64_t s) {
       return make_erdos_renyi(n, static_cast<eid_t>(n) * 5, s);
     }},
    {"barabasi_albert",
     [](vid_t n, std::uint64_t s) { return make_barabasi_albert(n, 2.0, s); }},
    {"watts_strogatz",
     [](vid_t n, std::uint64_t s) {
       return make_watts_strogatz(n, 2, 0.1, s);
     }},
    {"rmat",
     [](vid_t n, std::uint64_t s) {
       int scale = 1;
       while ((vid_t{1} << scale) < n) ++scale;
       return make_rmat(scale, 4.0, 0.45, 0.15, 0.15, s);
     }},
    {"geometric",
     [](vid_t n, std::uint64_t s) {
       return make_random_geometric(n, 0.08, s);
     }},
    {"delaunay",
     [](vid_t n, std::uint64_t s) { return make_delaunay(n, s); }},
    {"road",
     [](vid_t n, std::uint64_t s) {
       RoadOptions opt;
       opt.grid_width = opt.grid_height =
           std::max<vid_t>(4, static_cast<vid_t>(std::sqrt(n / 2)));
       return make_road_network(opt, s);
     }},
};

using PropertyParam = std::tuple<int /*family*/, vid_t /*n*/, int /*seed*/>;

class FDiamMatchesApsp : public ::testing::TestWithParam<PropertyParam> {};

TEST_P(FDiamMatchesApsp, ParallelHybrid) {
  const auto [family, n, seed] = GetParam();
  const Csr g = kFamilies[family].build(n, static_cast<std::uint64_t>(seed));
  const BaselineResult truth = apsp_diameter(g);
  const DiameterResult r = fdiam_diameter(g);
  EXPECT_EQ(r.diameter, truth.diameter);
  EXPECT_EQ(r.connected, truth.connected);
  EXPECT_FALSE(r.timed_out);
}

TEST_P(FDiamMatchesApsp, SerialTopDown) {
  const auto [family, n, seed] = GetParam();
  const Csr g =
      kFamilies[family].build(n, static_cast<std::uint64_t>(seed) + 1000);
  FDiamOptions opt;
  opt.parallel = false;
  opt.direction_optimizing = false;
  const BaselineResult truth = apsp_diameter(g);
  const DiameterResult r = fdiam_diameter(g, opt);
  EXPECT_EQ(r.diameter, truth.diameter);
  EXPECT_EQ(r.connected, truth.connected);
}

TEST_P(FDiamMatchesApsp, AggressiveBottomUp) {
  const auto [family, n, seed] = GetParam();
  const Csr g =
      kFamilies[family].build(n, static_cast<std::uint64_t>(seed) + 2000);
  FDiamOptions opt;
  opt.bottomup_threshold = 0.01;  // hybrid switches almost immediately
  EXPECT_EQ(fdiam_diameter(g, opt).diameter, apsp_diameter(g).diameter);
}

std::string property_name(
    const ::testing::TestParamInfo<PropertyParam>& info) {
  const auto [family, n, seed] = info.param;
  return std::string(kFamilies[family].name) + "_n" + std::to_string(n) +
         "_s" + std::to_string(seed);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FDiamMatchesApsp,
    ::testing::Combine(::testing::Range(0, 8),
                       ::testing::Values<vid_t>(60, 350),
                       ::testing::Values(1, 2, 3)),
    property_name);

// Disconnected property sweep: unions of two random components plus
// isolated vertices must match APSP's maximum component eccentricity.
class FDiamDisconnected : public ::testing::TestWithParam<int> {};

TEST_P(FDiamDisconnected, MatchesApsp) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  Csr g = disjoint_union(
      make_erdos_renyi(150, 350, seed),
      make_barabasi_albert(100, 1.5, seed + 7));
  EdgeList extra(g.num_vertices() + 5);  // 5 isolated vertices
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    for (const vid_t w : g.neighbors(v)) {
      if (v < w) extra.add(v, w);
    }
  }
  g = Csr::from_edges(std::move(extra));

  const BaselineResult truth = apsp_diameter(g);
  const DiameterResult r = fdiam_diameter(g);
  EXPECT_FALSE(r.connected);
  EXPECT_EQ(r.diameter, truth.diameter);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FDiamDisconnected, ::testing::Range(0, 8));

}  // namespace
}  // namespace fdiam
