// Structural tests for the Bowyer-Watson Delaunay generator. A correct
// Delaunay triangulation of n points in general position is planar and
// connected with close to 3n - 6 edges (boundary effects subtract the
// convex-hull edge count), average degree just under 6, and the empty-
// circumcircle property on every triangle. We validate the graph-level
// consequences (the ones the diameter experiments depend on).

#include <gtest/gtest.h>

#include "baselines/baselines.hpp"
#include "gen/generators.hpp"
#include "graph/components.hpp"
#include "graph/stats.hpp"

namespace fdiam {
namespace {

class DelaunaySizes : public ::testing::TestWithParam<vid_t> {};

TEST_P(DelaunaySizes, PlanarConnectedAndNearlyMaximal) {
  const vid_t n = GetParam();
  const Csr g = make_delaunay(n, 1234 + n);
  ASSERT_EQ(g.num_vertices(), n);
  ASSERT_TRUE(g.validate());
  EXPECT_TRUE(connected_components(g).connected());
  // Planarity upper bound and triangulation lower bound: a triangulation
  // of n >= 3 points has between 2n - 3 (all collinear-ish hull) and
  // 3n - 6 edges; uniform random points sit near the top.
  EXPECT_LE(g.num_edges(), 3 * static_cast<eid_t>(n) - 6);
  if (n >= 100) {
    // Hull effects dominate tiny inputs; from ~100 points on, uniform
    // random Delaunay has average degree comfortably above 5.
    EXPECT_GE(g.num_edges(), (5 * static_cast<eid_t>(n)) / 2);
  } else {
    EXPECT_GE(g.num_edges(), 2 * static_cast<eid_t>(n) - 3);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, DelaunaySizes,
                         ::testing::Values(10, 100, 1000, 5000),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param);
                         });

TEST(Delaunay, TinyInputs) {
  EXPECT_EQ(make_delaunay(0, 1).num_vertices(), 0u);
  EXPECT_EQ(make_delaunay(1, 1).num_vertices(), 1u);
  const Csr two = make_delaunay(2, 1);
  EXPECT_EQ(two.num_vertices(), 2u);
  EXPECT_EQ(two.num_edges(), 1u);
  const Csr three = make_delaunay(3, 1);
  EXPECT_EQ(three.num_edges(), 3u);
}

TEST(Delaunay, DiameterScalesLikeSqrtN) {
  // Mesh-like: diameter grows roughly with sqrt(n) (the property that
  // makes delaunay_n24 the paper's hardest instance).
  const dist_t d1 = apsp_diameter(make_delaunay(256, 3)).diameter;
  const dist_t d2 = apsp_diameter(make_delaunay(4096, 3)).diameter;
  EXPECT_GT(d2, 2 * d1);
  EXPECT_LT(d2, 16 * d1);
}

TEST(Delaunay, MaxDegreeStaysModerate) {
  const Csr g = make_delaunay(4000, 9);
  // Random Delaunay max degree is O(log n / log log n) in expectation;
  // anything beyond ~25 signals a broken cavity.
  EXPECT_LE(g.max_degree(), 25u);
  const GraphStats s = compute_stats(g);
  EXPECT_NEAR(s.avg_degree, 6.0, 0.5);
}

}  // namespace
}  // namespace fdiam
