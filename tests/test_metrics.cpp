// Tests for exact all-vertex eccentricities and the radius / center /
// periphery metrics built on them.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/eccentricity.hpp"
#include "core/fdiam.hpp"
#include "core/metrics.hpp"
#include "gen/generators.hpp"
#include "obs/counters.hpp"
#include "obs/json.hpp"
#include "obs/metrics/metrics_report.hpp"
#include "obs/metrics/openmetrics.hpp"
#include "util/histogram.hpp"

namespace fdiam {
namespace {

TEST(ExactEccentricities, MatchesApspOnRandomGraphs) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const Csr g = make_erdos_renyi(250, 700, seed);
    const auto truth = all_eccentricities(g);
    const ExactEccResult r = exact_eccentricities(g);
    EXPECT_EQ(r.ecc, truth) << "seed " << seed;
    EXPECT_LE(r.bfs_calls, g.num_vertices());
  }
}

TEST(ExactEccentricities, FewerTraversalsThanVerticesOnSmallWorld) {
  // Random BA graphs are the bounding algorithm's hard case (the
  // eccentricity distribution spans only 3-4 distinct values, so many
  // vertices stay within lb+1 == ub until individually evaluated); even
  // there it beats one-BFS-per-vertex.
  const Csr g = make_barabasi_albert(5000, 4.0, 3);
  const ExactEccResult r = exact_eccentricities(g);
  EXPECT_LT(r.bfs_calls, g.num_vertices() / 2);
  EXPECT_EQ(r.ecc, all_eccentricities(g));
}

TEST(ExactEccentricities, SettlesHighDiameterGraphsInFewTraversals) {
  // Wide eccentricity spread (the favorable, real-world case): a long
  // path settles after a handful of traversals.
  const Csr g = make_path(3000);
  const ExactEccResult r = exact_eccentricities(g);
  EXPECT_LE(r.bfs_calls, 10u);
  EXPECT_EQ(r.ecc, all_eccentricities(g));
}

TEST(ExactEccentricities, HandlesDisconnectedGraphs) {
  const Csr g = disjoint_union(make_path(15), make_star(6));
  const ExactEccResult r = exact_eccentricities(g);
  EXPECT_EQ(r.ecc, all_eccentricities(g));
}

TEST(ExactEccentricities, IsolatedVerticesAreFree) {
  EdgeList e(20);
  e.add(0, 1);
  const Csr g = Csr::from_edges(std::move(e));
  const ExactEccResult r = exact_eccentricities(g);
  for (vid_t v = 2; v < 20; ++v) EXPECT_EQ(r.ecc[v], 0);
  EXPECT_LE(r.bfs_calls, 2u);
}

TEST(ExactEccentricities, EmptyGraph) {
  const ExactEccResult r = exact_eccentricities(Csr::from_edges(EdgeList{}));
  EXPECT_TRUE(r.ecc.empty());
  EXPECT_EQ(r.bfs_calls, 0u);
}

TEST(GraphMetrics, PathCenterAndPeriphery) {
  const Csr g = make_path(21);
  const GraphMetrics m = graph_metrics(g);
  EXPECT_EQ(m.diameter, 20);
  EXPECT_EQ(m.radius, 10);
  ASSERT_EQ(m.center.size(), 1u);
  EXPECT_EQ(m.center[0], 10u);
  ASSERT_EQ(m.periphery.size(), 2u);
  EXPECT_EQ(m.periphery[0], 0u);
  EXPECT_EQ(m.periphery[1], 20u);
}

TEST(GraphMetrics, EvenPathHasTwoCenters) {
  const Csr g = make_path(10);
  const GraphMetrics m = graph_metrics(g);
  EXPECT_EQ(m.radius, 5);
  EXPECT_EQ(m.center.size(), 2u);
}

TEST(GraphMetrics, CycleIsAllCenterAllPeriphery) {
  const Csr g = make_cycle(12);
  const GraphMetrics m = graph_metrics(g);
  EXPECT_EQ(m.diameter, 6);
  EXPECT_EQ(m.radius, 6);
  EXPECT_EQ(m.center.size(), 12u);
  EXPECT_EQ(m.periphery.size(), 12u);
}

TEST(GraphMetrics, StarCenterIsTheHub) {
  const GraphMetrics m = graph_metrics(make_star(9));
  EXPECT_EQ(m.radius, 1);
  ASSERT_EQ(m.center.size(), 1u);
  EXPECT_EQ(m.center[0], 0u);
  EXPECT_EQ(m.periphery.size(), 9u);
}

TEST(GraphMetrics, RadiusSatisfiesTheorem3) {
  // Paper Theorem 3: radius >= diameter / 2.
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Csr g = make_barabasi_albert(300, 2.0, seed);
    const GraphMetrics m = graph_metrics(g);
    EXPECT_GE(2 * m.radius, m.diameter) << "seed " << seed;
    EXPECT_GE(m.periphery.size(), 2u);  // Theorem 2
  }
}

TEST(GraphMetrics, DiameterAgreesWithFDiam) {
  for (std::uint64_t seed = 10; seed < 16; ++seed) {
    const Csr g = make_erdos_renyi(300, 700, seed);
    const GraphMetrics m = graph_metrics(g);
    const DiameterResult f = fdiam_diameter(g);
    EXPECT_EQ(m.diameter, f.diameter) << "seed " << seed;
    EXPECT_EQ(m.connected, f.connected);
  }
}

TEST(GraphMetrics, DisconnectedUsesLargestComponentForRadius) {
  // Largest component: cycle(20) with radius 10; the small path would
  // have radius 1.
  const Csr g = disjoint_union(make_path(3), make_cycle(20));
  const GraphMetrics m = graph_metrics(g);
  EXPECT_FALSE(m.connected);
  EXPECT_EQ(m.diameter, 10);
  EXPECT_EQ(m.radius, 10);
  for (const vid_t c : m.center) EXPECT_GE(c, 3u);  // in the cycle
}

// ---- log-linear histogram (util/histogram.hpp) --------------------------

TEST(HistogramTest, BucketBoundariesAreExactlyInclusive) {
  // Spot-check the whole range: a bound is the last value of its own
  // bucket, and the next representable double already spills over.
  for (const std::size_t i : {std::size_t{1}, std::size_t{7},
                              std::size_t{16}, std::size_t{100},
                              std::size_t{500}, Histogram::kBucketCount - 2}) {
    const double le = Histogram::bucket_le(i);
    ASSERT_TRUE(std::isfinite(le)) << i;
    EXPECT_EQ(Histogram::bucket_index(le), i);
    EXPECT_EQ(Histogram::bucket_index(
                  std::nextafter(le, std::numeric_limits<double>::infinity())),
              i + 1);
  }
  // Underflow: everything <= kMinValue, negatives, and NaN.
  EXPECT_EQ(Histogram::bucket_index(Histogram::kMinValue), 0u);
  EXPECT_EQ(Histogram::bucket_index(0.0), 0u);
  EXPECT_EQ(Histogram::bucket_index(-5.0), 0u);
  EXPECT_EQ(Histogram::bucket_index(std::nan("")), 0u);
  // Overflow: beyond the last octave lands in the +inf bucket.
  EXPECT_EQ(Histogram::bucket_index(1e30), Histogram::kBucketCount - 1);
  EXPECT_TRUE(std::isinf(Histogram::bucket_le(Histogram::kBucketCount - 1)));
}

TEST(HistogramTest, RecordTracksCountSumMinMax) {
  Histogram h;
  EXPECT_EQ(h.snapshot().quantile(0.5), 0.0);  // empty
  for (const double v : {0.25, 0.5, 0.125, 4.0}) h.record(v);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 4u);
  EXPECT_NEAR(s.sum, 4.875, 1e-12);
  EXPECT_EQ(s.min, 0.125);
  EXPECT_EQ(s.max, 4.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.snapshot().buckets.size(), 0u);
}

TEST(HistogramTest, QuantilesMatchSortedOracleWithinBucketError) {
  Histogram h;
  std::mt19937_64 rng(42);
  // Log-uniform over six decades: every octave in range gets traffic.
  std::uniform_real_distribution<double> exp10(-6.0, 0.0);
  std::vector<double> values;
  values.reserve(4000);
  for (int i = 0; i < 4000; ++i) {
    const double v = std::pow(10.0, exp10(rng));
    values.push_back(v);
    h.record(v);
  }
  std::sort(values.begin(), values.end());
  const HistogramSnapshot s = h.snapshot();
  ASSERT_EQ(s.count, values.size());
  for (const double q : {0.5, 0.9, 0.99, 1.0}) {
    const auto rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(values.size())));
    const double exact = values[rank - 1];
    const double est = s.quantile(q);
    // The estimate is the bucket's inclusive upper bound (clamped to the
    // observed max): never below the true order statistic, and at most
    // one sub-bucket width (1/16 relative) above it.
    EXPECT_GE(est, exact * (1.0 - 1e-12)) << "q=" << q;
    EXPECT_LE(est, exact * (1.0 + 1.0 / Histogram::kSubBuckets + 1e-9))
        << "q=" << q;
  }
  EXPECT_EQ(s.quantile(1.0), s.max);
}

TEST(HistogramTest, ConcurrentRecordsAreLossless) {
  Histogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.record(1e-6 * (1 + t) * (1 + i % 97));
      }
    });
  }
  for (std::thread& w : workers) w.join();
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  std::uint64_t bucket_total = 0;
  for (const auto& b : s.buckets) bucket_total += b.count;
  EXPECT_EQ(bucket_total, s.count);  // quiescent: pinning loses nothing
  EXPECT_EQ(s.min, 1e-6);
  EXPECT_NEAR(s.max, 1e-6 * kThreads * 97, 1e-15);
}

// ---- OpenMetrics exposition + lint (obs/metrics/openmetrics.hpp) --------

TEST(OpenMetricsTest, FamilyAndLabelMapping) {
  EXPECT_EQ(obs::openmetrics_family("fdiam.bfs.seconds[stage=ecc]"),
            "fdiam_bfs_seconds");
  EXPECT_EQ(obs::openmetrics_family("fdiam.bfs.calls"), "fdiam_bfs_calls");
  EXPECT_EQ(obs::openmetrics_family("weird name!"), "fdiam_weird_name_");
  EXPECT_EQ(obs::openmetrics_labels("fdiam.bfs.seconds[stage=ecc]"),
            "{stage=\"ecc\"}");
  EXPECT_EQ(obs::openmetrics_labels("x[a=1,b=two]"), "{a=\"1\",b=\"two\"}");
  EXPECT_EQ(obs::openmetrics_labels("fdiam.bfs.calls"), "");
}

TEST(OpenMetricsTest, WriterOutputPassesLint) {
  obs::MetricRegistry reg;
  reg.counter("fdiam.bfs.calls").inc(5);
  reg.gauge("fdiam.bfs.calls").set(2.5);  // family collision with counter
  reg.gauge("threads").set(8.0);
  obs::SolveHistograms sh(reg);
  for (const double v : {0.001, 0.002, 0.004, 0.1}) sh.bfs_ecc.record(v);
  sh.bfs_init.record(0.05);
  sh.frontier.record(128.0);
  sh.frontier.record(1e30);  // overflow -> folded into the +Inf bucket

  std::ostringstream os;
  obs::write_openmetrics(os, reg);
  const std::string text = os.str();

  const auto diag = obs::openmetrics_lint(text);
  EXPECT_EQ(diag, std::nullopt) << *diag << "\n" << text;
  EXPECT_NE(text.find("# TYPE fdiam_bfs_calls counter"), std::string::npos);
  EXPECT_NE(text.find("fdiam_bfs_calls_total 5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE fdiam_bfs_calls_gauge gauge"),
            std::string::npos)
      << "gauge colliding with a counter family must be renamed";
  EXPECT_NE(text.find("# TYPE fdiam_bfs_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("# UNIT fdiam_bfs_seconds seconds"), std::string::npos);
  EXPECT_NE(text.find("stage=\"ecc\""), std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);
  EXPECT_NE(text.find("fdiam_bfs_frontier_vertices_count 2"),
            std::string::npos);
  ASSERT_GE(text.size(), 6u);
  EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");
}

TEST(OpenMetricsTest, LintRejectsMalformedExpositions) {
  const auto reject = [](std::string_view text, std::string_view why) {
    const auto diag = obs::openmetrics_lint(text);
    ASSERT_TRUE(diag.has_value()) << "accepted: " << text;
    EXPECT_NE(diag->find(why), std::string::npos) << *diag;
  };
  reject("# TYPE fdiam_x counter\nfdiam_x_total 1\n",
         "missing terminating # EOF");
  reject("fdiam_x_total 1\n# EOF\n", "no preceding # TYPE");
  reject(
      "# TYPE fdiam_h histogram\n"
      "fdiam_h_bucket{le=\"2.0\"} 5\n"
      "fdiam_h_bucket{le=\"1.0\"} 6\n"
      "fdiam_h_bucket{le=\"+Inf\"} 6\n"
      "fdiam_h_sum 3.0\nfdiam_h_count 6\n# EOF\n",
      "strictly ascending");
  reject(
      "# TYPE fdiam_h histogram\n"
      "fdiam_h_bucket{le=\"+Inf\"} 5\n"
      "fdiam_h_sum 3.0\nfdiam_h_count 6\n# EOF\n",
      "!= _count");
  reject(
      "# TYPE fdiam_h histogram\n"
      "fdiam_h_sum 3.0\nfdiam_h_count 0\n# EOF\n",
      "missing the +Inf bucket");
  reject("# TYPE fdiam_c counter\nfdiam_c_total 5\n# TYPE fdiam_c counter\n"
         "# EOF\n",
         "duplicate TYPE");
  reject("# TYPE fdiam_g gauge\nfdiam_g -1\n\n# EOF\n", "blank lines");
  reject("# EOF\nfdiam_g 1\n", "content after # EOF");
  reject("# TYPE fdiam_c counter\nfdiam_c_total -2\n# EOF\n", "negative");
  reject("# TYPE fdiam_c counter\nfdiam_c 5\n# EOF\n", "_total");
  reject("fdiam_g 1\n# TYPE fdiam_g gauge\n# EOF\n", "no preceding # TYPE");
}

// ---- fdiam.metrics/v1 report block (obs/metrics/metrics_report.hpp) -----

namespace {

/// Wrap `series` the way RunReport does: {"histograms": {<block>}}.
std::string metrics_document(
    const std::vector<std::pair<std::string, HistogramSnapshot>>& series) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.begin_object();
  w.key("histograms").begin_object();
  obs::write_metrics_block(w, series);
  w.end_object();
  w.end_object();
  return os.str();
}

}  // namespace

TEST(MetricsBlockTest, WriterRoundTripValidates) {
  obs::MetricRegistry reg;
  obs::SolveHistograms sh(reg);
  for (const double v : {0.001, 0.002, 0.004, 0.1}) sh.bfs_ecc.record(v);
  sh.bfs_init.record(0.05);
  sh.frontier.record(1e30);  // overflow bucket -> null le in JSON
  const std::string doc = metrics_document(reg.snapshot_histograms());

  const auto parse = obs::json_diagnose(doc);
  ASSERT_EQ(parse, std::nullopt) << *parse << "\n" << doc;
  const auto diag = obs::diagnose_metrics_block(doc);
  EXPECT_EQ(diag, std::nullopt) << *diag << "\n" << doc;
  EXPECT_EQ(obs::json_string(doc, "histograms.schema"), "fdiam.metrics/v1");
  // Empty series (chain/eliminate/... never recorded) are omitted.
  EXPECT_EQ(doc.find("stage=chain"), std::string::npos);
  // The +inf bucket must serialize as null, not as an Infinity token.
  EXPECT_NE(doc.find("\"le\": null"), std::string::npos) << doc;
}

TEST(MetricsBlockTest, RejectsHandcraftedViolations) {
  const auto reject = [](std::string_view doc, std::string_view why) {
    const auto diag = obs::diagnose_metrics_block(doc);
    ASSERT_TRUE(diag.has_value()) << "accepted: " << doc;
    EXPECT_NE(diag->find(why), std::string::npos) << *diag;
  };
  // No histograms block at all is fine (older reports).
  EXPECT_EQ(obs::diagnose_metrics_block(R"({"result":{}})"), std::nullopt);
  reject(R"({"histograms":{"schema":"bogus/v9","series":[]}})",
         "histograms.schema");
  reject(R"({"histograms":{"schema":"fdiam.metrics/v1","series":[
    {"name":"x","count":2,"sum":3.0,"min":1.0,"max":2.0,
     "p50":1.9,"p90":1.5,"p99":2.0,
     "buckets":[{"le":2.0,"count":2}]}]}})",
         "quantiles");
  reject(R"({"histograms":{"schema":"fdiam.metrics/v1","series":[
    {"name":"x","count":3,"sum":4.5,"min":1.0,"max":2.0,
     "p50":1.5,"p90":2.0,"p99":2.0,
     "buckets":[{"le":2.0,"count":2}]}]}})",
         "bucket counts sum");
  reject(R"({"histograms":{"schema":"fdiam.metrics/v1","series":[
    {"name":"x","count":2,"sum":3.0,"min":1.0,"max":2.0,
     "p50":1.5,"p90":2.0,"p99":2.0,
     "buckets":[{"le":null,"count":1},{"le":2.0,"count":1}]}]}})",
         "after the +inf overflow");
  reject(R"({"histograms":{"schema":"fdiam.metrics/v1","series":[
    {"name":"x","count":2,"sum":99.0,"min":1.0,"max":2.0,
     "p50":1.5,"p90":2.0,"p99":2.0,
     "buckets":[{"le":2.0,"count":2}]}]}})",
         "sum outside");
}

TEST(MetricsBlockTest, ConsistencyCrossChecksBfsCallsAndUtilization) {
  const auto report = [](int bfs_calls, double busy_s) {
    std::ostringstream os;
    os << R"({"stages":{"counts":{"bfs_calls":)" << bfs_calls
       << R"(},"times_s":{"total":2.0}},)"
       << R"("utilization":{"threads":4,"total":{"busy_s":)" << busy_s
       << R"(}},"histograms":{"schema":"fdiam.metrics/v1","series":[)"
       << R"({"name":"fdiam.bfs.seconds[stage=ecc]","count":3},)"
       << R"({"name":"fdiam.bfs.seconds[stage=init]","count":2},)"
       << R"({"name":"fdiam.stage.seconds[stage=chain]","count":99}]}})";
    return os.str();
  };
  EXPECT_EQ(obs::diagnose_report_consistency(report(5, 7.9)), std::nullopt);

  const auto bad_calls = obs::diagnose_report_consistency(report(6, 7.9));
  ASSERT_TRUE(bad_calls.has_value());
  EXPECT_NE(bad_calls->find("bfs_calls"), std::string::npos) << *bad_calls;

  // 5% + 1ms slack over wall x threads = 2.0 x 4: 9.0 is over the line.
  const auto bad_busy = obs::diagnose_report_consistency(report(5, 9.0));
  ASSERT_TRUE(bad_busy.has_value());
  EXPECT_NE(bad_busy->find("exceeds wall"), std::string::npos) << *bad_busy;

  // Without any fdiam.bfs.seconds series the count check is vacuous.
  EXPECT_EQ(obs::diagnose_report_consistency(
                R"({"stages":{"counts":{"bfs_calls":7}},)"
                R"("histograms":{"schema":"fdiam.metrics/v1","series":[)"
                R"({"name":"fdiam.stage.seconds[stage=chain]","count":99}]}})"),
            std::nullopt);
}

TEST(MemoryBlockTest, AcceptsWellFormedAndAbsentBlocks) {
  // No memory block at all is fine (older reports).
  EXPECT_EQ(obs::diagnose_memory_block(R"({"result":{}})"), std::nullopt);

  const std::string_view good = R"({"memory":{
    "available": true, "peak_rss_bytes": 4734976,
    "rss_start_bytes": 1000000, "rss_end_bytes": 2000000,
    "numa_mode": "interleave", "huge_pages": "auto",
    "numa_nodes": 2, "mapped_bytes": 168, "anon_rss_bytes": 380928}})";
  const auto diag = obs::diagnose_memory_block(good);
  EXPECT_EQ(diag, std::nullopt) << *diag;

  // Watermark profile absent (available=false): only the placement
  // provenance fields are required.
  EXPECT_EQ(obs::diagnose_memory_block(
                R"({"memory":{"available": false, "numa_mode": "none",
                  "huge_pages": "off", "numa_nodes": 1,
                  "mapped_bytes": 0}})"),
            std::nullopt);
}

TEST(MemoryBlockTest, RejectsMalformedMemoryBlocks) {
  const auto reject = [](std::string_view doc, std::string_view why) {
    const auto diag = obs::diagnose_memory_block(doc);
    ASSERT_TRUE(diag.has_value()) << "accepted: " << doc;
    EXPECT_NE(diag->find(why), std::string::npos) << *diag;
  };
  reject(R"({"memory":{"numa_mode": "banana", "huge_pages": "auto",
             "numa_nodes": 1, "mapped_bytes": 0}})",
         "numa_mode");
  reject(R"({"memory":{"numa_mode": "none", "huge_pages": 7,
             "numa_nodes": 1, "mapped_bytes": 0}})",
         "huge_pages");
  reject(R"({"memory":{"numa_mode": "none", "huge_pages": "on",
             "numa_nodes": 0, "mapped_bytes": 0}})",
         "numa_nodes");
  reject(R"({"memory":{"numa_mode": "none", "huge_pages": "on",
             "numa_nodes": 1, "mapped_bytes": -5}})",
         "mapped_bytes");
  reject(R"({"memory":{"numa_mode": "none", "huge_pages": "on",
             "numa_nodes": 1, "mapped_bytes": 0,
             "anon_rss_bytes": 1.5}})",
         "anon_rss_bytes");
  // available=true demands the watermark fields...
  reject(R"({"memory":{"available": true, "numa_mode": "none",
             "huge_pages": "on", "numa_nodes": 1, "mapped_bytes": 0}})",
         "peak_rss_bytes");
  // ...and a high-water mark below the closing sample is impossible.
  reject(R"({"memory":{"available": true, "peak_rss_bytes": 100,
             "rss_start_bytes": 0, "rss_end_bytes": 200,
             "numa_mode": "none", "huge_pages": "on", "numa_nodes": 1,
             "mapped_bytes": 0}})",
         "high-water");
}

}  // namespace
}  // namespace fdiam
